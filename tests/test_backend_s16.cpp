// Tests for the INT16 deployment kernels and batch-norm folding — the
// backend extensions the paper could not evaluate ("INT16 measurements are
// not currently supported in Arm Compute Library", §5.3).
#include <gtest/gtest.h>

#include "backend/bn_fold.hpp"
#include "backend/conv_kernels.hpp"
#include "backend/conv_kernels_s16.hpp"
#include "backend/conv_kernels_s8.hpp"
#include "tensor/rng.hpp"

namespace wa::backend {
namespace {

ConvGeometry geo(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w, std::int64_t k,
                 std::int64_t kernel = 3, std::int64_t pad = 1) {
  ConvGeometry g;
  g.batch = n;
  g.in_channels = c;
  g.height = h;
  g.width = w;
  g.out_channels = k;
  g.kernel = kernel;
  g.pad = pad;
  return g;
}

float rel_err(const Tensor& ref, const Tensor& got) {
  return Tensor::max_abs_diff(ref, got) / std::max(ref.abs_max(), 1e-6F);
}

// ---- int16 GEMM -------------------------------------------------------------

TEST(GemmS16, MatchesScalarReference) {
  Rng rng(1);
  const std::int64_t m = 5, n = 7, k = 9;
  std::vector<std::int16_t> a(static_cast<std::size_t>(m * k)), b(static_cast<std::size_t>(k * n));
  for (auto& v : a) v = static_cast<std::int16_t>(rng.randint(-1000, 1000));
  for (auto& v : b) v = static_cast<std::int16_t>(rng.randint(-1000, 1000));
  std::vector<std::int64_t> c(static_cast<std::size_t>(m * n));
  gemm_s16_s64(m, n, k, a.data(), b.data(), c.data());
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      std::int64_t acc = 0;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        acc += static_cast<std::int64_t>(a[static_cast<std::size_t>(i * k + kk)]) *
               b[static_cast<std::size_t>(kk * n + j)];
      }
      EXPECT_EQ(c[static_cast<std::size_t>(i * n + j)], acc);
    }
  }
}

TEST(GemmS16, DeepReductionNeedsInt64) {
  // Extreme values times a deep reduction overflow int32; the int64
  // accumulator must carry it exactly.
  const std::int64_t k = 4096;
  std::vector<std::int16_t> a(static_cast<std::size_t>(k), 32000);
  std::vector<std::int16_t> b(static_cast<std::size_t>(k), 32000);
  std::vector<std::int64_t> c(1);
  gemm_s16_s64(1, 1, k, a.data(), b.data(), c.data());
  EXPECT_EQ(c[0], 32000LL * 32000LL * k);  // ~4.2e12, far beyond int32
}

// ---- quantize round trips ----------------------------------------------------

TEST(QTensor16, RoundTripWithinHalfScale) {
  Rng rng(2);
  const Tensor x = Tensor::randn({4, 4, 6, 6}, rng, 2.F);
  const QTensor16 q = quantize_s16(x);
  EXPECT_LE(Tensor::max_abs_diff(x, dequantize(q)), q.scale * 0.501F);
}

TEST(QTensor16, Int16BeatsInt8Precision) {
  Rng rng(3);
  const Tensor x = Tensor::randn({128}, rng);
  const Tensor r16 = dequantize(quantize_s16(x));
  const Tensor r8 = dequantize(quantize_s8(x));
  EXPECT_LT(Tensor::max_abs_diff(x, r16), Tensor::max_abs_diff(x, r8) / 10.F);
}

// ---- int16 convolutions -------------------------------------------------------

class S16ConvShapes : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(S16ConvShapes, Im2rowMatchesFp32Closely) {
  const auto [h, c, k] = GetParam();
  Rng rng(static_cast<std::uint64_t>(h * 100 + c));
  const auto g = geo(2, c, h, h, k);
  const Tensor x = Tensor::randn({g.batch, g.in_channels, g.height, g.width}, rng);
  const Tensor w = Tensor::randn({g.out_channels, g.in_channels, g.kernel, g.kernel}, rng, 0.3F);
  const Tensor ref = im2row_conv(x, w, g);
  const QTensor16 out = im2row_conv_s16(quantize_s16(x), quantize_s16(w), g);
  // int16 keeps ~4 decimal digits; 1% relative error is generous headroom.
  EXPECT_LT(rel_err(ref, dequantize(out)), 0.01F);
}

INSTANTIATE_TEST_SUITE_P(Shapes, S16ConvShapes,
                         ::testing::Values(std::tuple{8, 3, 4}, std::tuple{10, 8, 8},
                                           std::tuple{6, 16, 4}));

TEST(S16Conv, WinogradF2MatchesFp32Closely) {
  Rng rng(4);
  const auto g = geo(1, 4, 8, 8, 4);
  const Tensor x = Tensor::randn({1, 4, 8, 8}, rng);
  const Tensor w = Tensor::randn({4, 4, 3, 3}, rng, 0.3F);
  const Tensor ref = im2row_conv(x, w, g);
  const auto tr = wino::make_transforms(2, 3);
  const QTensor16 out = winograd_conv_s16(quantize_s16(x), w, g, tr);
  EXPECT_LT(rel_err(ref, dequantize(out)), 0.01F);
}

TEST(S16Conv, WinogradF4BeatsInt8Winograd) {
  // The point of INT16 deployment: F4 in int16 carries far less numerical
  // error than F4 in int8 (Fig. 4's INT16 rows work, INT8 needs flex).
  Rng rng(5);
  const auto g = geo(1, 8, 12, 12, 8);
  const Tensor x = Tensor::randn({1, 8, 12, 12}, rng);
  const Tensor w = Tensor::randn({8, 8, 3, 3}, rng, 0.3F);
  const Tensor ref = im2row_conv(x, w, g);
  const auto tr = wino::make_transforms(4, 3);
  const float e16 = rel_err(ref, dequantize(winograd_conv_s16(quantize_s16(x), w, g, tr)));
  const float e8 = rel_err(ref, dequantize(winograd_conv_s8(quantize_s8(x), w, g, tr)));
  EXPECT_LT(e16, e8 / 4.F);
}

TEST(S16Conv, RejectsGroupedAndMismatchedKernels) {
  Rng rng(6);
  auto g = geo(1, 4, 8, 8, 4);
  const Tensor x = Tensor::randn({1, 4, 8, 8}, rng);
  const Tensor w = Tensor::randn({4, 4, 3, 3}, rng);
  const auto tr5 = wino::make_transforms(2, 5);
  EXPECT_THROW(winograd_conv_s16(quantize_s16(x), w, g, tr5), std::invalid_argument);
  g.groups = 2;
  EXPECT_THROW(im2row_conv_s16(quantize_s16(x), quantize_s16(w), g), std::invalid_argument);
}

// ---- int8 conv bias path -------------------------------------------------------

TEST(S8ConvBias, Im2rowBiasMatchesFp32) {
  Rng rng(7);
  const auto g = geo(1, 4, 8, 8, 6);
  const Tensor x = Tensor::randn({1, 4, 8, 8}, rng);
  const Tensor w = Tensor::randn({6, 4, 3, 3}, rng, 0.3F);
  const Tensor b = Tensor::randn({6}, rng);
  Tensor ref = im2row_conv(x, w, g);
  for (std::int64_t k = 0; k < 6; ++k)
    for (std::int64_t i = 0; i < ref.size(2); ++i)
      for (std::int64_t j = 0; j < ref.size(3); ++j) ref(0, k, i, j) += b.at(k);
  const QTensor out = im2row_conv_s8(quantize_s8(x), quantize_s8(w), g, -1.F, &b);
  EXPECT_LT(rel_err(ref, dequantize(out)), 0.05F);
}

TEST(S8ConvBias, WinogradBiasMatchesFp32) {
  Rng rng(8);
  const auto g = geo(1, 4, 8, 8, 4);
  const Tensor x = Tensor::randn({1, 4, 8, 8}, rng);
  const Tensor w = Tensor::randn({4, 4, 3, 3}, rng, 0.3F);
  const Tensor b = Tensor::randn({4}, rng);
  Tensor ref = im2row_conv(x, w, g);
  for (std::int64_t k = 0; k < 4; ++k)
    for (std::int64_t i = 0; i < ref.size(2); ++i)
      for (std::int64_t j = 0; j < ref.size(3); ++j) ref(0, k, i, j) += b.at(k);
  const auto tr = wino::make_transforms(2, 3);
  const QTensor out = winograd_conv_s8(quantize_s8(x), w, g, tr, {}, &b);
  EXPECT_LT(rel_err(ref, dequantize(out)), 0.06F);
}

TEST(S8ConvBias, MismatchedBiasThrows) {
  Rng rng(9);
  const auto g = geo(1, 2, 6, 6, 4);
  const Tensor x = Tensor::randn({1, 2, 6, 6}, rng);
  const Tensor w = Tensor::randn({4, 2, 3, 3}, rng);
  const Tensor bad = Tensor::randn({3}, rng);
  EXPECT_THROW(im2row_conv_s8(quantize_s8(x), quantize_s8(w), g, -1.F, &bad),
               std::invalid_argument);
}

// ---- batch-norm folding ---------------------------------------------------------

TEST(BnFold, FoldedConvMatchesConvPlusBn) {
  Rng rng(10);
  const auto g = geo(2, 3, 8, 8, 5);
  const Tensor x = Tensor::randn({2, 3, 8, 8}, rng);
  const Tensor w = Tensor::randn({5, 3, 3, 3}, rng, 0.4F);
  const Tensor gamma = Tensor::rand({5}, rng, 0.5F, 1.5F);
  const Tensor beta = Tensor::randn({5}, rng);
  const Tensor mean = Tensor::randn({5}, rng, 0.2F);
  Tensor var = Tensor::rand({5}, rng, 0.25F, 2.F);

  // Reference: conv, then affine batch-norm with the running stats.
  Tensor ref = im2row_conv(x, w, g);
  for (std::int64_t k = 0; k < 5; ++k) {
    const float inv_std = 1.F / std::sqrt(var.at(k) + 1e-5F);
    for (std::int64_t n = 0; n < 2; ++n)
      for (std::int64_t i = 0; i < ref.size(2); ++i)
        for (std::int64_t j = 0; j < ref.size(3); ++j) {
          ref(n, k, i, j) = gamma.at(k) * (ref(n, k, i, j) - mean.at(k)) * inv_std + beta.at(k);
        }
  }

  const FoldedConv folded = fold_batchnorm(w, Tensor(), gamma, beta, mean, var);
  Tensor got = im2row_conv(x, folded.weights, g);
  for (std::int64_t k = 0; k < 5; ++k)
    for (std::int64_t n = 0; n < 2; ++n)
      for (std::int64_t i = 0; i < got.size(2); ++i)
        for (std::int64_t j = 0; j < got.size(3); ++j) got(n, k, i, j) += folded.bias.at(k);

  EXPECT_LE(Tensor::max_abs_diff(ref, got), 1e-4F);
}

TEST(BnFold, ExistingBiasFoldsThrough) {
  Rng rng(11);
  const Tensor w = Tensor::randn({2, 1, 3, 3}, rng);
  const Tensor b = Tensor({2}, {1.F, -2.F});
  const Tensor gamma = Tensor({2}, {2.F, 0.5F});
  const Tensor beta = Tensor({2}, {0.F, 1.F});
  const Tensor mean = Tensor({2}, {0.5F, -0.5F});
  const Tensor var = Tensor({2}, {1.F, 4.F});
  const FoldedConv f = fold_batchnorm(w, b, gamma, beta, mean, var, 0.F);
  // channel 0: s = 2/1 = 2 -> bias = 0 + 2*(1 - 0.5) = 1
  EXPECT_NEAR(f.bias.at(0), 1.F, 1e-6F);
  // channel 1: s = 0.5/2 = 0.25 -> bias = 1 + 0.25*(-2 + 0.5) = 0.625
  EXPECT_NEAR(f.bias.at(1), 0.625F, 1e-6F);
}

TEST(BnFold, ShapeMismatchThrows) {
  Rng rng(12);
  const Tensor w = Tensor::randn({2, 1, 3, 3}, rng);
  const Tensor ok = Tensor::ones({2});
  const Tensor bad = Tensor::ones({3});
  EXPECT_THROW(fold_batchnorm(w, Tensor(), bad, ok, ok, ok), std::invalid_argument);
  EXPECT_THROW(fold_batchnorm(w, bad, ok, ok, ok, ok), std::invalid_argument);
}

}  // namespace
}  // namespace wa::backend
