// Tests for gradient checkpointing (recompute-in-backward) and the no-grad
// tape mode it is built on.
#include <gtest/gtest.h>

#include "autograd/checkpoint.hpp"
#include "autograd/ops.hpp"
#include "models/resnet.hpp"
#include "nn/layers.hpp"
#include "tensor/rng.hpp"

namespace wa::ag {
namespace {

TEST(NoGradGuard, SuppressesTapeRecording) {
  Rng rng(1);
  Variable a(Tensor::randn({3, 3}, rng), true);
  EXPECT_TRUE(grad_mode_enabled());
  {
    NoGradGuard guard;
    EXPECT_FALSE(grad_mode_enabled());
    Variable b = relu(matmul(a, a));
    EXPECT_FALSE(b.requires_grad());
    EXPECT_TRUE(b.node()->parents.empty());
  }
  EXPECT_TRUE(grad_mode_enabled());
  Variable c = relu(matmul(a, a));
  EXPECT_TRUE(c.requires_grad());
}

TEST(NoGradGuard, NestsAndRestores) {
  NoGradGuard outer;
  {
    NoGradGuard inner;
    EXPECT_FALSE(grad_mode_enabled());
  }
  EXPECT_FALSE(grad_mode_enabled());  // still inside the outer guard
}

TEST(GraphStats, CountsReachableNodesAndBytes) {
  Rng rng(2);
  Variable a(Tensor::randn({4, 4}, rng), true);
  Variable b = relu(matmul(a, a));
  const GraphStats st = graph_stats(b);
  EXPECT_EQ(st.nodes, 3u);  // a, matmul, relu
  EXPECT_EQ(st.value_bytes, 3 * 16 * 4);
  EXPECT_EQ(st.grad_bytes, 0);  // no backward yet
}

TEST(Checkpoint, MatchesPlainBackwardBitExactly) {
  // A stateless segment: y = relu(x W1) W2. Checkpointed and plain versions
  // must produce identical outputs AND identical gradients for x, W1, W2.
  Rng rng(3);
  const Tensor x0 = Tensor::randn({5, 8}, rng);
  const Tensor w1 = Tensor::randn({8, 8}, rng, 0.5F);
  const Tensor w2 = Tensor::randn({8, 4}, rng, 0.5F);

  auto run = [&](bool use_checkpoint) {
    Variable x(x0, true, "x");
    Variable a(w1, true, "w1");
    Variable b(w2, true, "w2");
    auto segment = [&a, &b](const Variable& v) { return matmul(relu(matmul(v, a)), b); };
    Variable y = use_checkpoint ? checkpoint(segment, x, {a, b}) : segment(x);
    sum(y).backward();
    return std::tuple{y.value(), x.grad(), a.grad(), b.grad()};
  };

  const auto [y_plain, dx_plain, da_plain, db_plain] = run(false);
  const auto [y_ckpt, dx_ckpt, da_ckpt, db_ckpt] = run(true);
  EXPECT_TRUE(Tensor::allclose(y_plain, y_ckpt, 0.F));
  EXPECT_TRUE(Tensor::allclose(dx_plain, dx_ckpt, 0.F));
  EXPECT_TRUE(Tensor::allclose(da_plain, da_ckpt, 0.F));
  EXPECT_TRUE(Tensor::allclose(db_plain, db_ckpt, 0.F));
}

TEST(Checkpoint, ShrinksTheRetainedGraph) {
  Rng rng(4);
  Variable x(Tensor::randn({4, 16}, rng), true);
  Variable w(Tensor::randn({16, 16}, rng, 0.3F), true);
  auto deep = [&w](const Variable& v) {
    Variable h = v;
    for (int i = 0; i < 6; ++i) h = relu(matmul(h, w));
    return h;
  };
  const GraphStats plain = graph_stats(deep(x));
  const GraphStats ckpt = graph_stats(checkpoint(deep, x, {w}));
  EXPECT_GT(plain.nodes, 12u);  // 6 matmuls + 6 relus + leaves
  EXPECT_EQ(ckpt.nodes, 3u);    // x, w, checkpoint node
  // Both graphs retain the leaves (x, w); the checkpoint drops all twelve
  // interior activations.
  EXPECT_LT(ckpt.value_bytes, plain.value_bytes / 2);
}

TEST(Checkpoint, GradientsFlowToParamsOnlyUsedInside) {
  // Input does not require grad; only the enclosed parameter does.
  Rng rng(5);
  Variable x(Tensor::randn({2, 4}, rng), false);
  Variable w(Tensor::randn({4, 4}, rng), true);
  Variable y = checkpoint([&w](const Variable& v) { return matmul(v, w); }, x, {w});
  EXPECT_TRUE(y.requires_grad());
  sum(y).backward();
  EXPECT_GT(w.grad().abs_max(), 0.F);
}

TEST(Checkpoint, NoGradInputsProduceNoGraph) {
  Rng rng(6);
  Variable x(Tensor::randn({2, 4}, rng), false);
  Variable w(Tensor::randn({4, 4}, rng), false);
  Variable y = checkpoint([&w](const Variable& v) { return matmul(v, w); }, x, {w});
  EXPECT_FALSE(y.requires_grad());
}

TEST(Checkpoint, NestedCheckpointsCompose) {
  Rng rng(7);
  Variable x(Tensor::randn({3, 6}, rng), true);
  Variable w(Tensor::randn({6, 6}, rng, 0.4F), true);
  auto inner = [&w](const Variable& v) { return relu(matmul(v, w)); };
  auto outer = [&](const Variable& v) {
    return matmul(checkpoint(inner, v, {w}), w);
  };
  Variable plain_y = matmul(inner(x), w);
  sum(plain_y).backward();
  const Tensor dx_plain = x.grad();
  const Tensor dw_plain = w.grad();

  Variable x2(x.value(), true);
  Variable y = checkpoint(outer, x2, {w});
  w.zero_grad();
  sum(y).backward();
  EXPECT_TRUE(Tensor::allclose(dx_plain, x2.grad(), 0.F));
  EXPECT_TRUE(Tensor::allclose(dw_plain, w.grad(), 0.F));
}

TEST(Checkpoint, UndefinedInputThrows) {
  EXPECT_THROW(checkpoint([](const Variable& v) { return v; }, Variable()),
               std::invalid_argument);
}

TEST(Checkpoint, NonDeterministicSegmentDetected) {
  Rng rng(8);
  Variable x(Tensor::randn({2, 2}, rng), true);
  int calls = 0;
  auto shifty = [&calls](const Variable& v) {
    ++calls;
    return calls > 1 ? reshape(concat({v, v}, 0), {4, 2}) : v;
  };
  Variable y = checkpoint(shifty, x);
  EXPECT_THROW(sum(y).backward(), std::logic_error);
}

TEST(Checkpoint, ConvLayerSegmentMatchesPlain) {
  // A real module segment (FP32 conv, stateless in eval mode).
  Rng rng(9);
  nn::Conv2dOptions opts;
  opts.in_channels = 3;
  opts.out_channels = 4;
  nn::Conv2d conv(opts, rng);
  conv.set_training(false);

  const Tensor x0 = Tensor::randn({2, 3, 8, 8}, rng);
  auto segment = [&conv](const Variable& v) { return relu(conv.forward(v)); };

  Variable xa(x0, true);
  sum(segment(xa)).backward();
  const Tensor dx_plain = xa.grad();
  const Tensor dw_plain = conv.weight().grad();

  conv.weight().zero_grad();
  Variable xb(x0, true);
  sum(checkpoint(segment, xb, conv.parameters())).backward();
  EXPECT_TRUE(Tensor::allclose(dx_plain, xb.grad(), 0.F));
  EXPECT_TRUE(Tensor::allclose(dw_plain, conv.weight().grad(), 0.F));
}

TEST(Checkpoint, ResNetBlockCheckpointingMatchesPlainGradients) {
  // Whole-model contract (FP32: batch-norm uses batch statistics, so the
  // recomputation is bit-identical). Same seed, same batch, with and
  // without grad_checkpoint: every parameter gradient must match.
  const Tensor x0 = [] {
    Rng r(11);
    return Tensor::randn({2, 3, 16, 16}, r);
  }();
  auto grads = [&](bool ckpt) {
    Rng rng(10);
    models::ResNetConfig cfg;
    cfg.width_mult = 0.125F;
    cfg.grad_checkpoint = ckpt;
    models::ResNet18 net(cfg, rng);
    Variable x(x0, false);
    Variable loss = softmax_cross_entropy(net.forward(x), {1, 3});
    loss.backward();
    std::vector<Tensor> out;
    for (auto& p : net.parameters()) out.push_back(p.grad());
    return out;
  };
  const auto plain = grads(false);
  const auto ckpt = grads(true);
  ASSERT_EQ(plain.size(), ckpt.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_TRUE(Tensor::allclose(plain[i], ckpt[i], 1e-6F)) << "param " << i;
  }
}

}  // namespace
}  // namespace wa::ag
