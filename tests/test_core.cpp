// Tests for the Winograd-aware convolution op and layer — the paper's core.
//
// The two load-bearing properties:
//  1. with static Cook-Toom transforms and FP32, the op computes exactly a
//     standard convolution (so swapping algorithms preserves semantics);
//  2. gradients — including the bilinear-form gradients for the learnable
//     transforms G/Bᵀ/Aᵀ — match finite differences.
#include <gtest/gtest.h>

#include "autograd/gradcheck.hpp"
#include "autograd/ops.hpp"
#include "backend/conv_kernels.hpp"
#include "core/wa_conv2d.hpp"
#include "core/wa_conv_op.hpp"
#include "nn/layers.hpp"
#include "winograd/cook_toom.hpp"

namespace wa::core {
namespace {

backend::ConvGeometry geo(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w,
                          std::int64_t k, std::int64_t kernel = 3, std::int64_t pad = 1,
                          std::int64_t groups = 1) {
  backend::ConvGeometry g;
  g.batch = n;
  g.in_channels = c;
  g.height = h;
  g.width = w;
  g.out_channels = k;
  g.kernel = kernel;
  g.pad = pad;
  g.groups = groups;
  return g;
}

ag::Variable leaf(Tensor t) { return ag::Variable(std::move(t), true); }

struct WaOpTestFixture {
  backend::ConvGeometry g;
  int m;
  ag::Variable x, w, gm, btm, atm;
  WaQuantStages stages;

  WaOpTestFixture(int m_out, backend::ConvGeometry geom, Rng& rng, bool flex = true)
      : g(geom), m(m_out) {
    const auto tr = wino::make_transforms(m, static_cast<int>(g.kernel));
    x = leaf(Tensor::randn({g.batch, g.in_channels, g.height, g.width}, rng));
    w = leaf(Tensor::randn({g.out_channels, g.in_channels / g.groups, g.kernel, g.kernel}, rng,
                           0.4F));
    gm = ag::Variable(tr.g_mat, flex, "G");
    btm = ag::Variable(tr.bt_mat, flex, "Bt");
    atm = ag::Variable(tr.at_mat, flex, "At");
  }

  ag::Variable run(bool training = true) {
    return winograd_aware_conv2d(x, w, ag::Variable(), gm, btm, atm, g, m, stages, training);
  }
};

// ---- forward equivalence ----------------------------------------------------

class WaForwardEquivalence
    : public ::testing::TestWithParam<std::tuple<int, std::int64_t, std::int64_t, std::int64_t>> {};

TEST_P(WaForwardEquivalence, Fp32MatchesDirectConv) {
  const auto [m, h, w, groups] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 100 + h));
  const auto g = geo(2, 4, h, w, 4, 3, 1, groups);
  WaOpTestFixture fx(m, g, rng);
  const Tensor direct = backend::direct_conv(fx.x.value(), fx.w.value(), g);
  const Tensor got = fx.run().value();
  EXPECT_LE(Tensor::max_abs_diff(direct, got), 1e-2F)
      << "F" << m << " " << h << "x" << w << " groups=" << groups;
}

INSTANTIATE_TEST_SUITE_P(Configs, WaForwardEquivalence,
                         ::testing::Values(std::tuple{2, 8, 8, 1}, std::tuple{4, 8, 8, 1},
                                           std::tuple{6, 12, 12, 1}, std::tuple{4, 9, 11, 1},
                                           std::tuple{2, 8, 8, 2}, std::tuple{4, 10, 10, 4},
                                           std::tuple{6, 7, 9, 1}));

TEST(WaForward, FiveByFiveFilters) {
  // The LeNet configuration: F(m, 5x5) with 10x10 tiles at m=6.
  for (int m : {2, 4, 6}) {
    Rng rng(static_cast<std::uint64_t>(m));
    const auto g = geo(1, 2, 12, 12, 3, 5, 2, 1);
    WaOpTestFixture fx(m, g, rng);
    const Tensor direct = backend::direct_conv(fx.x.value(), fx.w.value(), g);
    EXPECT_LE(Tensor::max_abs_diff(direct, fx.run().value()), 5e-2F) << "F(" << m << ",5)";
  }
}

TEST(WaForward, BiasIsApplied) {
  Rng rng(3);
  const auto g = geo(1, 1, 4, 4, 2, 3, 1, 1);
  const auto tr = wino::make_transforms(2, 3);
  ag::Variable x = leaf(Tensor::zeros({1, 1, 4, 4}));
  ag::Variable w = leaf(Tensor::zeros({2, 1, 3, 3}));
  ag::Variable bias = leaf(Tensor(Shape{2}, {0.5F, -1.F}));
  WaQuantStages stages;
  ag::Variable out = winograd_aware_conv2d(x, w, bias, ag::Variable(tr.g_mat, false),
                                           ag::Variable(tr.bt_mat, false),
                                           ag::Variable(tr.at_mat, false), g, 2, stages, true);
  EXPECT_FLOAT_EQ(out.value()(0, 0, 1, 1), 0.5F);
  EXPECT_FLOAT_EQ(out.value()(0, 1, 1, 1), -1.F);
}

TEST(WaForward, RejectsMismatchedTransformShapes) {
  Rng rng(4);
  const auto g = geo(1, 1, 4, 4, 1);
  const auto tr = wino::make_transforms(4, 3);  // t=6 but we claim m=2
  WaQuantStages stages;
  EXPECT_THROW(winograd_aware_conv2d(leaf(Tensor::zeros({1, 1, 4, 4})),
                                     leaf(Tensor::zeros({1, 1, 3, 3})), ag::Variable(),
                                     ag::Variable(tr.g_mat, false), ag::Variable(tr.bt_mat, false),
                                     ag::Variable(tr.at_mat, false), g, 2, stages, true),
               std::invalid_argument);
}

// ---- gradient checks ---------------------------------------------------------

class WaGradCheck : public ::testing::TestWithParam<std::tuple<int, std::int64_t>> {};

TEST_P(WaGradCheck, AllInputsIncludingTransforms) {
  const auto [m, groups] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 7 + groups));
  const auto g = geo(1, 2 * groups, 6, 6, 2 * groups, 3, 1, groups);
  WaOpTestFixture fx(m, g, rng, /*flex=*/true);
  std::vector<ag::Variable> inputs{fx.x, fx.w, fx.gm, fx.btm, fx.atm};
  auto fn = [&fx](std::vector<ag::Variable>& in) {
    WaQuantStages stages;  // fp32: observers unused
    ag::Variable y = winograd_aware_conv2d(in[0], in[1], ag::Variable(), in[2], in[3], in[4],
                                           fx.g, fx.m, stages, true);
    return ag::mean(ag::mul(y, y));
  };
  const auto res = ag::grad_check(fn, inputs, 1e-2F, 8e-2F);
  EXPECT_TRUE(res.ok) << "F" << m << " groups=" << groups << ": " << res.detail;
}

INSTANTIATE_TEST_SUITE_P(Configs, WaGradCheck,
                         ::testing::Values(std::tuple{2, 1}, std::tuple{4, 1}, std::tuple{2, 2}),
                         [](const auto& info) {
                           return "F" + std::to_string(std::get<0>(info.param)) + "_g" +
                                  std::to_string(std::get<1>(info.param));
                         });

TEST(WaGradCheckExtra, BiasGradient) {
  Rng rng(5);
  const auto g = geo(1, 1, 4, 4, 2);
  const auto tr = wino::make_transforms(2, 3);
  std::vector<ag::Variable> inputs{leaf(Tensor::randn({1, 1, 4, 4}, rng)),
                                   leaf(Tensor::randn({2, 1, 3, 3}, rng, 0.4F)),
                                   leaf(Tensor::randn({2}, rng))};
  auto fn = [&g, &tr](std::vector<ag::Variable>& in) {
    WaQuantStages stages;
    ag::Variable y = winograd_aware_conv2d(in[0], in[1], in[2], ag::Variable(tr.g_mat, false),
                                           ag::Variable(tr.bt_mat, false),
                                           ag::Variable(tr.at_mat, false), g, 2, stages, true);
    return ag::mean(ag::mul(y, y));
  };
  const auto res = ag::grad_check(fn, inputs, 1e-2F, 8e-2F);
  EXPECT_TRUE(res.ok) << res.detail;
}

TEST(WaGradCheckExtra, FiveByFiveFlexTransforms) {
  Rng rng(6);
  const auto g = geo(1, 1, 6, 6, 1, 5, 2, 1);
  WaOpTestFixture fx(2, g, rng, /*flex=*/true);
  std::vector<ag::Variable> inputs{fx.w, fx.gm, fx.btm, fx.atm};
  auto fn = [&fx](std::vector<ag::Variable>& in) {
    WaQuantStages stages;
    ag::Variable y = winograd_aware_conv2d(fx.x, in[0], ag::Variable(), in[1], in[2], in[3], fx.g,
                                           fx.m, stages, true);
    return ag::mean(ag::mul(y, y));
  };
  const auto res = ag::grad_check(fn, inputs, 1e-2F, 8e-2F);
  EXPECT_TRUE(res.ok) << res.detail;
}

// ---- quantized behaviour -------------------------------------------------------

TEST(WaQuantized, Int8OutputsTrackFp32ForF2) {
  Rng rng(7);
  const auto g = geo(1, 4, 8, 8, 4);
  WaOpTestFixture fp(2, g, rng, false);
  WaOpTestFixture q(2, g, rng, false);
  q.x.value() = fp.x.value();
  q.w.value() = fp.w.value();
  q.stages.spec = quant::QuantSpec{8};
  const Tensor a = fp.run().value();
  const Tensor b = q.run().value();
  EXPECT_LE(Tensor::max_abs_diff(a, b) / std::max(a.abs_max(), 1e-6F), 0.15F);
}

TEST(WaQuantized, ErrorGrowsWithTileSizeAtInt8) {
  Rng rng(8);
  const auto g = geo(1, 4, 12, 12, 4);
  auto rel_err = [&](int m) {
    Rng local(8);
    WaOpTestFixture fp(m, g, local, false);
    Rng local2(8);
    WaOpTestFixture q(m, g, local2, false);
    q.stages.spec = quant::QuantSpec{8};
    const Tensor a = fp.run().value();
    const Tensor b = q.run().value();
    return Tensor::max_abs_diff(a, b) / std::max(a.abs_max(), 1e-6F);
  };
  EXPECT_LT(rel_err(2), rel_err(6));
}

TEST(WaQuantized, TrainingUpdatesObservers) {
  Rng rng(9);
  const auto g = geo(1, 2, 8, 8, 2);
  WaOpTestFixture fx(2, g, rng, false);
  fx.stages.spec = quant::QuantSpec{8};
  EXPECT_FALSE(fx.stages.v.initialized());
  fx.run(/*training=*/true);
  EXPECT_TRUE(fx.stages.v.initialized());
  EXPECT_TRUE(fx.stages.m.initialized());
  EXPECT_TRUE(fx.stages.y.initialized());
}

TEST(WaQuantized, EvalDoesNotUpdateObservers) {
  Rng rng(10);
  const auto g = geo(1, 2, 8, 8, 2);
  WaOpTestFixture fx(2, g, rng, false);
  fx.stages.spec = quant::QuantSpec{8};
  fx.run(true);  // warm up
  const float before = fx.stages.v.tracked_abs_max();
  fx.x.value() *= 100.F;
  fx.run(/*training=*/false);
  EXPECT_FLOAT_EQ(fx.stages.v.tracked_abs_max(), before);
}

// ---- layer + factory ------------------------------------------------------------

TEST(WaLayer, FlexRegistersTransformsAsParameters) {
  Rng rng(11);
  nn::Conv2dOptions opts;
  opts.in_channels = 2;
  opts.out_channels = 2;
  opts.algo = nn::ConvAlgo::kWinograd4;
  opts.flex_transforms = true;
  WinogradAwareConv2d flex(opts, rng);
  opts.flex_transforms = false;
  Rng rng2(11);
  WinogradAwareConv2d fixed(opts, rng2);
  EXPECT_EQ(flex.parameters().size(), 4u);   // weight + G + Bt + At
  EXPECT_EQ(fixed.parameters().size(), 1u);  // weight only
  // Both still serialize the transforms.
  EXPECT_TRUE(flex.named_parameters().contains("g_mat"));
  EXPECT_TRUE(fixed.named_parameters().contains("g_mat"));
}

TEST(WaLayer, ForwardShapeAndTileSizes) {
  Rng rng(12);
  nn::Conv2dOptions opts;
  opts.in_channels = 3;
  opts.out_channels = 8;
  opts.algo = nn::ConvAlgo::kWinograd6;
  WinogradAwareConv2d conv(opts, rng);
  EXPECT_EQ(conv.output_tile(), 6);
  EXPECT_EQ(conv.input_tile(), 8);
  ag::Variable x(Tensor::randn({2, 3, 16, 16}, rng), false);
  EXPECT_EQ(conv.forward(x).shape(), (Shape{2, 8, 16, 16}));
}

TEST(WaLayer, RejectsNonWinogradOptions) {
  Rng rng(13);
  nn::Conv2dOptions opts;
  EXPECT_THROW(WinogradAwareConv2d(opts, rng), std::invalid_argument);
}

TEST(ConvFactory, DispatchesOnAlgo) {
  Rng rng(14);
  nn::Conv2dOptions opts;
  opts.in_channels = 2;
  opts.out_channels = 2;
  EXPECT_NE(std::dynamic_pointer_cast<nn::Conv2d>(make_conv(opts, rng)), nullptr);
  opts.algo = nn::ConvAlgo::kWinograd2;
  EXPECT_NE(std::dynamic_pointer_cast<WinogradAwareConv2d>(make_conv(opts, rng)), nullptr);
}

TEST(WaLayer, PerStageSpecOverridesFallBackToDefault) {
  WaQuantStages stages;
  stages.spec = quant::QuantSpec{8};
  EXPECT_EQ(stages.u_spec().bits, 8);
  stages.spec_m = quant::QuantSpec{16};
  EXPECT_EQ(stages.m_spec().bits, 16);
  EXPECT_EQ(stages.v_spec().bits, 8);  // untouched stages keep the default
  EXPECT_EQ(stages.y_spec().bits, 8);
}

TEST(WaLayer, StageDiversityReducesQuantizationError) {
  // Quantization diversity (§3.2): promoting the Hadamard stage to INT16
  // while the rest stays INT8 must bring the output closer to the FP32
  // Winograd result than the all-INT8 configuration.
  Rng rng(21);
  const auto g = geo(1, 8, 12, 12, 8);
  auto run_with = [&](quant::QuantSpec base, std::optional<quant::QuantSpec> m_override) {
    Rng local(21);  // identical weights/inputs across runs
    WaOpTestFixture fx(4, g, local, /*flex=*/false);
    fx.stages.spec = base;
    fx.stages.spec_m = m_override;
    return fx.run(/*training=*/true).value();
  };
  const Tensor fp32 = run_with(quant::QuantSpec{32}, {});
  const Tensor all8 = run_with(quant::QuantSpec{8}, {});
  const Tensor mixed = run_with(quant::QuantSpec{8}, quant::QuantSpec{16});
  EXPECT_LT(Tensor::max_abs_diff(fp32, mixed), Tensor::max_abs_diff(fp32, all8));
}

TEST(WaLayer, PerChannelWeightsForwardRuns) {
  Rng rng(22);
  nn::Conv2dOptions opts;
  opts.in_channels = 4;
  opts.out_channels = 6;
  opts.algo = nn::ConvAlgo::kWinograd4;
  opts.qspec = quant::QuantSpec{8};
  opts.per_channel_weights = true;
  WinogradAwareConv2d conv(opts, rng);
  ag::Variable x(Tensor::randn({2, 4, 8, 8}, rng), false);
  const auto out = conv.forward(x);
  EXPECT_EQ(out.shape(), (Shape{2, 6, 8, 8}));
}

TEST(WaLayer, PerChannelWeightsReduceErrorWithDisparateFilters) {
  // Scale filter k by 3^k: a per-layer scale sacrifices the small filters,
  // per-channel keeps each one's precision.
  Rng rng(23);
  nn::Conv2dOptions opts;
  opts.in_channels = 2;
  opts.out_channels = 4;
  opts.algo = nn::ConvAlgo::kWinograd2;
  opts.qspec = quant::QuantSpec{8};

  auto build = [&](bool per_channel) {
    Rng local(23);
    nn::Conv2dOptions o = opts;
    o.per_channel_weights = per_channel;
    auto conv = std::make_shared<WinogradAwareConv2d>(o, local);
    Tensor w = conv->weight().value();
    auto d = w.data();
    const std::int64_t per_filter = w.numel() / 4;
    for (std::int64_t k = 0; k < 4; ++k) {
      const float s = std::pow(3.F, static_cast<float>(k));
      for (std::int64_t i = 0; i < per_filter; ++i) d[static_cast<std::size_t>(k * per_filter + i)] *= s;
    }
    conv->weight().value() = w;
    return conv;
  };

  Rng xr(24);
  const Tensor xin = Tensor::randn({1, 2, 8, 8}, xr);

  nn::Conv2dOptions fp = opts;
  fp.qspec = quant::QuantSpec{32};
  Rng fr(23);
  WinogradAwareConv2d ref_conv(fp, fr);
  {
    Tensor w = build(false)->weight().value();
    ref_conv.weight().value() = w;
  }
  ref_conv.set_training(false);
  const Tensor ref = ref_conv.forward(ag::Variable(xin, false)).value();

  auto err = [&](bool per_channel) {
    auto conv = build(per_channel);
    conv->forward(ag::Variable(xin, false));  // calibrate observers
    conv->set_training(false);
    const Tensor y = conv->forward(ag::Variable(xin, false)).value();
    return Tensor::max_abs_diff(ref, y);
  };
  EXPECT_LT(err(true), err(false));
}

TEST(WaLayer, AdaptationLoadsConvWeightsOnly) {
  // Fig. 6 workflow: weights from a direct-conv layer transfer into the
  // Winograd-aware counterpart; transforms stay at their Cook-Toom values.
  Rng rng(15);
  nn::Conv2dOptions direct_opts;
  direct_opts.in_channels = 2;
  direct_opts.out_channels = 4;
  nn::Conv2d direct(direct_opts, rng);

  nn::Conv2dOptions wa_opts = direct_opts;
  wa_opts.algo = nn::ConvAlgo::kWinograd4;
  wa_opts.flex_transforms = true;
  Rng rng2(99);
  WinogradAwareConv2d wa(wa_opts, rng2);

  const Tensor g_before = wa.g_mat().value();
  const auto loaded = wa.load_state_intersect(direct.state_dict());
  EXPECT_EQ(loaded, 1u);  // just the weight
  EXPECT_TRUE(Tensor::allclose(wa.weight().value(), direct.weight().value(), 0.F));
  EXPECT_TRUE(Tensor::allclose(wa.g_mat().value(), g_before, 0.F));
}

}  // namespace
}  // namespace wa::core
