// Shape, parameter and configuration tests for the four model families.
#include <gtest/gtest.h>

#include "core/wa_conv2d.hpp"
#include "models/lenet.hpp"
#include "models/resnet.hpp"
#include "models/resnext.hpp"
#include "models/squeezenet.hpp"

namespace wa::models {
namespace {

TEST(ScaledChannels, RoundsAndClamps) {
  EXPECT_EQ(scaled_channels(64, 1.0F), 64);
  EXPECT_EQ(scaled_channels(64, 0.125F), 8);
  EXPECT_EQ(scaled_channels(3, 0.125F), 1);  // never 0
}

TEST(ResNet18, ForwardShape) {
  Rng rng(1);
  ResNetConfig cfg;
  cfg.width_mult = 0.125F;
  ResNet18 net(cfg, rng);
  ag::Variable x(Tensor::randn({2, 3, 32, 32}, rng), false);
  EXPECT_EQ(net.forward(x).shape(), (Shape{2, 10}));
}

TEST(ResNet18, ParameterCountMatchesPaperRange) {
  // Paper §5.1: width multipliers 0.125..1.0 span ~215K..11M parameters.
  Rng rng(2);
  ResNetConfig small;
  small.width_mult = 0.125F;
  ResNetConfig full;
  full.width_mult = 1.0F;
  const auto small_n = ResNet18(small, rng).parameter_count();
  const auto full_n = ResNet18(full, rng).parameter_count();
  EXPECT_GT(small_n, 120'000);
  EXPECT_LT(small_n, 400'000);
  EXPECT_GT(full_n, 9'000'000);
  EXPECT_LT(full_n, 13'000'000);
}

TEST(ResNet18, SearchableLayerNames) {
  const auto names = ResNet18::searchable_layer_names();
  EXPECT_EQ(names.size(), 16u);
  EXPECT_EQ(names.front(), "stage1.block0.conv1");
  EXPECT_EQ(names.back(), "stage4.block1.conv2");
}

TEST(ResNet18, BuilderReceivesAllSearchableLayers) {
  Rng rng(3);
  std::vector<std::string> seen;
  ConvBuilder spy = [&](const nn::Conv2dOptions& opts, const std::string& name) {
    seen.push_back(name);
    return core::make_conv(opts, rng);
  };
  ResNetConfig cfg;
  cfg.width_mult = 0.125F;
  ResNet18 net(cfg, spy, rng);
  EXPECT_EQ(seen, ResNet18::searchable_layer_names());
}

TEST(ResNet18, LastStagePinnedToF2WhenWinograd) {
  Rng rng(4);
  std::map<std::string, nn::ConvAlgo> algos;
  ConvBuilder spy = [&](const nn::Conv2dOptions& opts, const std::string& name) {
    algos[name] = opts.algo;
    return core::make_conv(opts, rng);
  };
  ResNetConfig cfg;
  cfg.width_mult = 0.125F;
  cfg.algo = nn::ConvAlgo::kWinograd4;
  ResNet18 net(cfg, spy, rng);
  EXPECT_EQ(algos.at("stage1.block0.conv1"), nn::ConvAlgo::kWinograd4);
  EXPECT_EQ(algos.at("stage4.block0.conv1"), nn::ConvAlgo::kWinograd2);  // §5.1 constraint
  EXPECT_EQ(algos.at("stage4.block1.conv2"), nn::ConvAlgo::kWinograd2);
}

TEST(ResNet18, WinogradAwareVariantRuns) {
  Rng rng(5);
  ResNetConfig cfg;
  cfg.width_mult = 0.125F;
  cfg.algo = nn::ConvAlgo::kWinograd4;
  cfg.qspec = quant::QuantSpec{8};
  cfg.flex_transforms = true;
  ResNet18 net(cfg, rng);
  ag::Variable x(Tensor::randn({1, 3, 32, 32}, rng), false);
  EXPECT_EQ(net.forward(x).shape(), (Shape{1, 10}));
}

TEST(ResNet18, StateDictTransfersToWinogradVariant) {
  // The Fig. 6 adaptation path: direct-conv weights seed the WA model.
  Rng rng(6);
  ResNetConfig direct;
  direct.width_mult = 0.125F;
  ResNet18 src(direct, rng);

  ResNetConfig wa = direct;
  wa.algo = nn::ConvAlgo::kWinograd4;
  wa.flex_transforms = true;
  Rng rng2(7);
  ResNet18 dst(wa, rng2);
  const auto loaded = dst.load_state_intersect(src.state_dict());
  // Everything except the Winograd transform matrices matches by name/shape.
  const auto dst_names = dst.named_parameters();
  std::size_t transforms = 0;
  for (const auto& [name, v] : dst_names) {
    if (name.ends_with("g_mat") || name.ends_with("bt_mat") || name.ends_with("at_mat")) {
      ++transforms;
    }
  }
  EXPECT_EQ(loaded + transforms, dst_names.size());
}

TEST(LeNet5, ForwardShapeOnMnistGeometry) {
  Rng rng(8);
  LeNetConfig cfg;
  LeNet5 net(cfg, rng);
  ag::Variable x(Tensor::randn({2, 1, 28, 28}, rng), false);
  EXPECT_EQ(net.forward(x).shape(), (Shape{2, 10}));
}

TEST(LeNet5, WinogradFiveByFiveVariantRuns) {
  Rng rng(9);
  LeNetConfig cfg;
  cfg.algo = nn::ConvAlgo::kWinograd2;  // F(2x2, 5x5): 6x6 tiles
  cfg.qspec = quant::QuantSpec{8};
  cfg.flex_transforms = true;
  LeNet5 net(cfg, rng);
  ag::Variable x(Tensor::randn({1, 1, 28, 28}, rng), false);
  EXPECT_EQ(net.forward(x).shape(), (Shape{1, 10}));
}

TEST(SqueezeNet, ForwardShapeAndFireCount) {
  Rng rng(10);
  SqueezeNetConfig cfg;
  cfg.width_mult = 0.25F;
  SqueezeNet net(cfg, rng);
  ag::Variable x(Tensor::randn({1, 3, 32, 32}, rng), false);
  EXPECT_EQ(net.forward(x).shape(), (Shape{1, 10}));
  EXPECT_EQ(SqueezeNet::searchable_layer_names().size(), 8u);  // paper: 8 3x3 layers
}

TEST(SqueezeNet, BuilderSeesEightExpandLayers) {
  Rng rng(11);
  int count = 0;
  ConvBuilder spy = [&](const nn::Conv2dOptions& opts, const std::string&) {
    ++count;
    EXPECT_EQ(opts.kernel, 3);
    return core::make_conv(opts, rng);
  };
  SqueezeNetConfig cfg;
  cfg.width_mult = 0.25F;
  SqueezeNet net(cfg, spy, rng);
  EXPECT_EQ(count, 8);
}

TEST(ResNeXt20, ForwardShapeAndGroupedSearchables) {
  Rng rng(12);
  ResNeXtConfig cfg;
  cfg.width_mult = 0.125F;
  int grouped = 0;
  ConvBuilder spy = [&](const nn::Conv2dOptions& opts, const std::string&) {
    if (opts.groups > 1) ++grouped;
    EXPECT_EQ(opts.groups, cfg.cardinality);
    return core::make_conv(opts, rng);
  };
  ResNeXt20 net(cfg, spy, rng);
  EXPECT_EQ(grouped, 6);  // paper: ResNeXt has 6 searchable 3x3 layers
  ag::Variable x(Tensor::randn({1, 3, 32, 32}, rng), false);
  EXPECT_EQ(net.forward(x).shape(), (Shape{1, 10}));
}

TEST(ResNeXt20, WinogradGroupedVariantRuns) {
  Rng rng(13);
  ResNeXtConfig cfg;
  cfg.width_mult = 0.125F;
  cfg.algo = nn::ConvAlgo::kWinograd2;
  cfg.qspec = quant::QuantSpec{8};
  cfg.flex_transforms = true;
  ResNeXt20 net(cfg, rng);
  ag::Variable x(Tensor::randn({1, 3, 32, 32}, rng), false);
  EXPECT_EQ(net.forward(x).shape(), (Shape{1, 10}));
}

TEST(ResNet18, ExtensionKnobsPropagateToBlockConvs) {
  // per_channel_weights and the per-stage overrides must reach every
  // searchable block convolution (not the im2row stem).
  Rng rng(21);
  ResNetConfig cfg;
  cfg.width_mult = 0.125F;
  cfg.algo = nn::ConvAlgo::kWinograd4;
  cfg.qspec = quant::QuantSpec{8};
  cfg.per_channel_weights = true;
  cfg.qspec_m = quant::QuantSpec{16};
  int seen = 0;
  ConvBuilder builder = [&](const nn::Conv2dOptions& opts,
                            const std::string& name) -> std::shared_ptr<nn::Module> {
    EXPECT_TRUE(opts.per_channel_weights) << name;
    EXPECT_TRUE(opts.qspec_m.has_value()) << name;
    if (opts.qspec_m) EXPECT_EQ(opts.qspec_m->bits, 16) << name;
    ++seen;
    return core::make_conv(opts, rng);
  };
  ResNet18 net(cfg, builder, rng);
  EXPECT_EQ(seen, 16);
}

TEST(ResNet18, GradCheckpointVariantTrainsAndEvaluates) {
  Rng rng(22);
  ResNetConfig cfg;
  cfg.width_mult = 0.125F;
  cfg.grad_checkpoint = true;
  ResNet18 net(cfg, rng);
  ag::Variable x(Tensor::randn({2, 3, 32, 32}, rng), false);
  const auto has_checkpoint_node = [](const ag::Variable& out) {
    for (const ag::Node* n : ag::reverse_topo_order(out)) {
      if (n->name == "checkpoint") return true;
    }
    return false;
  };
  net.set_training(true);
  const auto train_out = net.forward(x);
  EXPECT_EQ(train_out.shape(), (Shape{2, 10}));
  EXPECT_TRUE(has_checkpoint_node(train_out));
  // Eval skips the checkpoint wrapper (blocks run inline, no recompute).
  net.set_training(false);
  EXPECT_FALSE(has_checkpoint_node(net.forward(x)));
}

TEST(LeNet5, NamedChildrenExposeDeployableStructure) {
  // The deployment compiler keys off these names; a rename must fail tests
  // here before it fails in compile_lenet.
  Rng rng(23);
  LeNetConfig cfg;
  LeNet5 net(cfg, rng);
  std::vector<std::string> names;
  for (const auto& [name, child] : net.named_children()) names.push_back(name);
  const std::vector<std::string> expect{"conv1", "pool1", "conv2", "pool2",
                                        "flatten", "fc1", "fc2", "fc3"};
  EXPECT_EQ(names, expect);
}

TEST(OverrideBuilder, AppliesPerLayerTable) {
  Rng rng(14);
  std::map<std::string, LayerOverride> table;
  table["stage1.block0.conv1"] = {nn::ConvAlgo::kWinograd4, quant::QuantSpec{8}, true};
  auto build = override_builder(table, rng);
  nn::Conv2dOptions opts;
  opts.in_channels = 4;
  opts.out_channels = 4;
  auto overridden = build(opts, "stage1.block0.conv1");
  auto untouched = build(opts, "stage1.block0.conv2");
  EXPECT_NE(std::dynamic_pointer_cast<core::WinogradAwareConv2d>(overridden), nullptr);
  EXPECT_NE(std::dynamic_pointer_cast<nn::Conv2d>(untouched), nullptr);
}

}  // namespace
}  // namespace wa::models
