// Tests for the layer stack: module system, conv/pool/batch-norm ops.
#include <gtest/gtest.h>

#include "autograd/gradcheck.hpp"
#include "autograd/ops.hpp"
#include "nn/conv_ops.hpp"
#include "nn/layers.hpp"
#include "nn/module.hpp"

namespace wa::nn {
namespace {

backend::ConvGeometry geo(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w,
                          std::int64_t k, std::int64_t kernel = 3, std::int64_t pad = 1,
                          std::int64_t groups = 1) {
  backend::ConvGeometry g;
  g.batch = n;
  g.in_channels = c;
  g.height = h;
  g.width = w;
  g.out_channels = k;
  g.kernel = kernel;
  g.pad = pad;
  g.groups = groups;
  return g;
}

ag::Variable leaf(Tensor t) { return ag::Variable(std::move(t), true); }

// ---- module system ----------------------------------------------------------

class TinyModule : public Module {
 public:
  explicit TinyModule(Rng& rng) {
    w_ = register_parameter("w", Tensor::randn({3, 2}, rng));
    buf_ = register_buffer("buf", Tensor::ones({2}));
  }
  ag::Variable forward(const ag::Variable& x) override { return x; }
  ag::Variable w_, buf_;
};

class NestedModule : public Module {
 public:
  explicit NestedModule(Rng& rng) { child_ = register_module<TinyModule>("child", rng); }
  ag::Variable forward(const ag::Variable& x) override { return child_->forward(x); }
  std::shared_ptr<TinyModule> child_;
};

TEST(Module, ParameterCollectionSkipsBuffers) {
  Rng rng(1);
  NestedModule m(rng);
  EXPECT_EQ(m.parameters().size(), 1u);
  EXPECT_EQ(m.parameter_count(), 6);
  const auto named = m.named_parameters();
  EXPECT_TRUE(named.contains("child.w"));
  EXPECT_TRUE(named.contains("child.buf"));  // buffers appear in state, not in parameters()
}

TEST(Module, TrainingModePropagates) {
  Rng rng(2);
  NestedModule m(rng);
  EXPECT_TRUE(m.training());
  m.set_training(false);
  EXPECT_FALSE(m.child_->training());
}

TEST(Module, StateDictRoundTrip) {
  Rng rng(3);
  NestedModule a(rng), b(rng);
  b.child_->w_.value().fill(0.F);
  b.load_state(a.state_dict());
  EXPECT_TRUE(Tensor::allclose(a.child_->w_.value(), b.child_->w_.value(), 0.F));
}

TEST(Module, LoadStateMissingKeyThrows) {
  Rng rng(4);
  NestedModule m(rng);
  EXPECT_THROW(m.load_state({}), std::runtime_error);
}

TEST(Module, LoadStateIntersectCountsMatches) {
  Rng rng(5);
  NestedModule a(rng), b(rng);
  auto partial = a.state_dict();
  partial.erase("child.buf");
  EXPECT_EQ(b.load_state_intersect(partial), 1u);
}

TEST(Sequential, RunsInOrder) {
  Rng rng(6);
  Sequential seq;
  seq.append("relu1", std::make_shared<ReLU>());
  seq.append("relu2", std::make_shared<ReLU>());
  EXPECT_EQ(seq.size(), 2u);
  ag::Variable x(Tensor(Shape{2}, {-1.F, 2.F}), false);
  EXPECT_FLOAT_EQ(seq.forward(x).value().at(0), 0.F);
}

// ---- conv op ----------------------------------------------------------------

TEST(Conv2dIm2row, ForwardMatchesBackendKernel) {
  Rng rng(7);
  const auto g = geo(2, 3, 8, 8, 4);
  Tensor x = Tensor::randn({2, 3, 8, 8}, rng);
  Tensor w = Tensor::randn({4, 3, 3, 3}, rng, 0.2F);
  ag::Variable out = conv2d_im2row(leaf(x), leaf(w), ag::Variable(), g);
  EXPECT_TRUE(Tensor::allclose(out.value(), backend::im2row_conv(x, w, g), 1e-5F));
}

TEST(Conv2dIm2row, BiasIsPerChannel) {
  Rng rng(8);
  const auto g = geo(1, 1, 4, 4, 2);
  Tensor x = Tensor::zeros({1, 1, 4, 4});
  Tensor w = Tensor::zeros({2, 1, 3, 3});
  Tensor b(Shape{2}, {1.F, -2.F});
  ag::Variable out = conv2d_im2row(leaf(x), leaf(w), leaf(b), g);
  EXPECT_FLOAT_EQ(out.value()(0, 0, 2, 2), 1.F);
  EXPECT_FLOAT_EQ(out.value()(0, 1, 2, 2), -2.F);
}

struct ConvGradCase {
  std::string name;
  std::int64_t n, c, h, w, k, kernel, pad, groups;
  bool bias;
};

class ConvGradCheck : public ::testing::TestWithParam<ConvGradCase> {};

TEST_P(ConvGradCheck, AnalyticMatchesNumeric) {
  const auto p = GetParam();
  const auto g = geo(p.n, p.c, p.h, p.w, p.k, p.kernel, p.pad, p.groups);
  Rng rng(static_cast<std::uint64_t>(p.c * 13 + p.h));
  std::vector<ag::Variable> inputs;
  inputs.push_back(leaf(Tensor::randn({p.n, p.c, p.h, p.w}, rng)));
  inputs.push_back(leaf(Tensor::randn({p.k, p.c / p.groups, p.kernel, p.kernel}, rng, 0.4F)));
  if (p.bias) inputs.push_back(leaf(Tensor::randn({p.k}, rng)));
  auto fn = [&g, &p](std::vector<ag::Variable>& in) {
    ag::Variable b = p.bias ? in[2] : ag::Variable();
    ag::Variable y = conv2d_im2row(in[0], in[1], b, g);
    return ag::mean(ag::mul(y, y));  // quadratic head exercises dY != const
  };
  const auto res = ag::grad_check(fn, inputs, 1e-2F, 6e-2F);
  EXPECT_TRUE(res.ok) << p.name << ": " << res.detail;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ConvGradCheck,
    ::testing::Values(ConvGradCase{"plain", 1, 2, 5, 5, 3, 3, 1, 1, false},
                      ConvGradCase{"bias", 1, 2, 4, 4, 2, 3, 1, 1, true},
                      ConvGradCase{"nopad", 1, 2, 5, 5, 2, 3, 0, 1, false},
                      ConvGradCase{"grouped", 1, 4, 4, 4, 4, 3, 1, 2, false},
                      ConvGradCase{"one_by_one", 2, 3, 3, 3, 4, 1, 0, 1, true},
                      ConvGradCase{"five_by_five", 1, 1, 7, 7, 2, 5, 2, 1, false}),
    [](const auto& info) { return info.param.name; });

TEST(Row2Im, AdjointOfIm2Row) {
  // <im2row(x), R> == <x, row2im(R)> for random R: the defining adjoint identity.
  Rng rng(9);
  const auto g = geo(1, 2, 5, 5, 1);
  Tensor x = Tensor::randn({1, 2, 5, 5}, rng);
  Tensor rows = backend::im2row_lower(x, g);
  Tensor r = Tensor::randn(rows.shape(), rng);
  Tensor back = row2im_accumulate(r, g);
  double lhs = 0, rhs = 0;
  for (std::int64_t i = 0; i < rows.numel(); ++i) lhs += static_cast<double>(rows.at(i)) * r.at(i);
  for (std::int64_t i = 0; i < x.numel(); ++i) rhs += static_cast<double>(x.at(i)) * back.at(i);
  EXPECT_NEAR(lhs, rhs, 1e-2);
}

// ---- pooling ------------------------------------------------------------------

TEST(MaxPool, ForwardPicksMaxima) {
  Tensor x(Shape{1, 1, 2, 2}, {1.F, 5.F, 3.F, 2.F});
  ag::Variable out = max_pool2d(leaf(x), 2, 2);
  EXPECT_EQ(out.shape(), (Shape{1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(out.value().at(0), 5.F);
}

TEST(MaxPool, BackwardRoutesToArgmax) {
  Tensor x(Shape{1, 1, 2, 2}, {1.F, 5.F, 3.F, 2.F});
  ag::Variable in = leaf(x);
  ag::sum(max_pool2d(in, 2, 2)).backward();
  EXPECT_FLOAT_EQ(in.grad().at(1), 1.F);
  EXPECT_FLOAT_EQ(in.grad().at(0), 0.F);
}

TEST(MaxPool, GradCheck) {
  Rng rng(10);
  std::vector<ag::Variable> inputs{leaf(Tensor::randn({1, 2, 4, 4}, rng))};
  auto fn = [](std::vector<ag::Variable>& in) {
    auto y = max_pool2d(in[0], 2, 2);
    return ag::mean(ag::mul(y, y));
  };
  const auto res = ag::grad_check(fn, inputs, 1e-3F, 6e-2F);
  EXPECT_TRUE(res.ok) << res.detail;
}

TEST(GlobalAvgPool, ForwardAndGradCheck) {
  Rng rng(11);
  Tensor x = Tensor::randn({2, 3, 4, 4}, rng);
  ag::Variable out = global_avg_pool(leaf(x));
  EXPECT_EQ(out.shape(), (Shape{2, 3}));
  std::vector<ag::Variable> inputs{leaf(x)};
  auto fn = [](std::vector<ag::Variable>& in) {
    auto y = global_avg_pool(in[0]);
    return ag::sum(ag::mul(y, y));
  };
  const auto res = ag::grad_check(fn, inputs);
  EXPECT_TRUE(res.ok) << res.detail;
}

// ---- batch norm ----------------------------------------------------------------

TEST(BatchNorm, NormalizesToZeroMeanUnitVar) {
  Rng rng(12);
  Tensor x = Tensor::randn({4, 2, 8, 8}, rng, 3.F);
  BatchNormState st;
  st.running_mean = Tensor::zeros({2});
  st.running_var = Tensor::ones({2});
  ag::Variable out =
      batch_norm2d(leaf(x), leaf(Tensor::ones({2})), leaf(Tensor::zeros({2})), st, true);
  EXPECT_NEAR(out.value().mean(), 0.F, 1e-4F);
  // Per-element variance ~1.
  const float var = out.value().map([](float v) { return v * v; }).mean();
  EXPECT_NEAR(var, 1.F, 1e-2F);
}

TEST(BatchNorm, RunningStatsUpdate) {
  Rng rng(13);
  Tensor x = Tensor::randn({8, 1, 4, 4}, rng);
  BatchNormState st;
  st.running_mean = Tensor::zeros({1});
  st.running_var = Tensor::ones({1});
  st.momentum = 1.F;  // take the batch stats wholesale
  batch_norm2d(leaf(x), leaf(Tensor::ones({1})), leaf(Tensor::zeros({1})), st, true);
  EXPECT_NEAR(st.running_mean.at(0), x.mean(), 1e-4F);
}

TEST(BatchNorm, EvalUsesRunningStats) {
  Tensor x(Shape{1, 1, 1, 2}, {10.F, 10.F});
  BatchNormState st;
  st.running_mean = Tensor(Shape{1}, {10.F});
  st.running_var = Tensor::ones({1});
  ag::Variable out =
      batch_norm2d(leaf(x), leaf(Tensor::ones({1})), leaf(Tensor::zeros({1})), st, false);
  EXPECT_NEAR(out.value().at(0), 0.F, 1e-3F);
}

TEST(BatchNorm, GradCheckTrainingMode) {
  Rng rng(14);
  std::vector<ag::Variable> inputs{leaf(Tensor::randn({2, 2, 3, 3}, rng)),
                                   leaf(Tensor::rand({2}, rng, 0.5F, 1.5F)),
                                   leaf(Tensor::randn({2}, rng))};
  BatchNormState st;
  st.running_mean = Tensor::zeros({2});
  st.running_var = Tensor::ones({2});
  st.momentum = 0.F;  // keep state constant across grad_check re-evaluations
  auto fn = [&st](std::vector<ag::Variable>& in) {
    auto y = batch_norm2d(in[0], in[1], in[2], st, true);
    return ag::mean(ag::mul(y, y));
  };
  const auto res = ag::grad_check(fn, inputs, 1e-2F, 8e-2F);
  EXPECT_TRUE(res.ok) << res.detail;
}

// ---- layers -------------------------------------------------------------------

TEST(Conv2dLayer, RejectsWinogradAlgo) {
  Rng rng(15);
  Conv2dOptions opts;
  opts.algo = ConvAlgo::kWinograd4;
  EXPECT_THROW(Conv2d(opts, rng), std::invalid_argument);
}

TEST(Conv2dLayer, ForwardShape) {
  Rng rng(16);
  Conv2dOptions opts;
  opts.in_channels = 3;
  opts.out_channels = 8;
  Conv2d conv(opts, rng);
  ag::Variable x(Tensor::randn({2, 3, 16, 16}, rng), false);
  EXPECT_EQ(conv.forward(x).shape(), (Shape{2, 8, 16, 16}));
  EXPECT_EQ(conv.parameters().size(), 1u);  // no bias by default
}

TEST(Conv2dLayer, QuantizedForwardCloseToFloat) {
  Rng rng(17);
  Conv2dOptions opts;
  opts.in_channels = 2;
  opts.out_channels = 4;
  Conv2dOptions qopts = opts;
  qopts.qspec = quant::QuantSpec{8};
  Conv2d conv(opts, rng);
  Rng rng2(17);
  Conv2d qconv(qopts, rng2);  // same seed -> same weights
  ag::Variable x(Tensor::randn({1, 2, 8, 8}, rng), false);
  const Tensor a = conv.forward(x).value();
  const Tensor b = qconv.forward(x).value();
  EXPECT_LE(Tensor::max_abs_diff(a, b) / std::max(a.abs_max(), 1e-6F), 0.08F);
}

TEST(LinearLayer, ForwardShapeAndParams) {
  Rng rng(18);
  Linear fc(10, 4, quant::QuantSpec{32}, rng);
  ag::Variable x(Tensor::randn({3, 10}, rng), false);
  EXPECT_EQ(fc.forward(x).shape(), (Shape{3, 4}));
  EXPECT_EQ(fc.parameters().size(), 2u);
}

TEST(FlattenLayer, CollapsesSpatial) {
  Flatten f;
  ag::Variable x(Tensor::randn({2, 3, 4, 5}, global_rng()), false);
  EXPECT_EQ(f.forward(x).shape(), (Shape{2, 60}));
}

TEST(ConvAlgoNames, RoundTrip) {
  EXPECT_EQ(to_string(ConvAlgo::kIm2row), "im2row");
  EXPECT_EQ(to_string(ConvAlgo::kWinograd6), "F6");
  EXPECT_EQ(winograd_m(ConvAlgo::kWinograd4), 4);
  EXPECT_THROW(winograd_m(ConvAlgo::kIm2row), std::invalid_argument);
  EXPECT_TRUE(is_winograd(ConvAlgo::kWinograd2));
  EXPECT_FALSE(is_winograd(ConvAlgo::kIm2col));
}

}  // namespace
}  // namespace wa::nn
