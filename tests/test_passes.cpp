// Unit tests for the compiler middle-end (src/deploy/passes): stage fusion
// preserves bits and collapses chains, dead-stage elimination prunes
// unreachable work, the static memory planner's predicted peak equals what
// the executor measures, the arena offsets never alias two live values, and
// a plan is honored (and safely re-checked) at shapes other than the
// reference. The broad randomized lockdown lives in test_pipeline_fuzz.cpp;
// these are the targeted cases.
#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "deploy/passes/passes.hpp"
#include "deploy/pipeline.hpp"
#include "winograd/cook_toom.hpp"

namespace wa::deploy {
namespace {

using passes::OptimizeOptions;
using passes::OptimizeReport;
using passes::optimize_pipeline;

StageIO io(const char* in, const char* in2, const char* out, const char* label) {
  StageIO o;
  o.input = in;
  o.input2 = in2;
  o.output = out;
  o.label = label;
  return o;
}

ConvStage im2row_conv(Rng& rng, std::int64_t in_ch, std::int64_t out_ch, float in_s, float out_s,
                      bool relu = false, std::int64_t kernel = 3, std::int64_t pad = 1) {
  ConvStage st;
  st.algo = nn::ConvAlgo::kIm2row;
  st.in_channels = in_ch;
  st.out_channels = out_ch;
  st.kernel = kernel;
  st.pad = pad;
  st.input_scale = in_s;
  st.output_scale = out_s;
  st.relu_after = relu;
  st.weights_q = backend::quantize_s8(Tensor::randn({out_ch, in_ch, kernel, kernel}, rng, 0.3F));
  return st;
}

ConvStage wino_conv(Rng& rng, std::int64_t ch, float in_s, float out_s, int m = 2) {
  ConvStage st;
  st.algo = m == 2 ? nn::ConvAlgo::kWinograd2 : nn::ConvAlgo::kWinograd4;
  st.in_channels = ch;
  st.out_channels = ch;
  st.kernel = 3;
  st.pad = 1;
  st.input_scale = in_s;
  st.weights_f = Tensor::randn({ch, ch, 3, 3}, rng, 0.3F);
  st.transforms = wino::make_transforms(m, 3);
  st.stage_scales.input_transformed = 0.07F;
  st.stage_scales.hadamard = 0.2F;
  st.stage_scales.output = out_s;
  st.output_scale = out_s;
  return st;
}

BnStage bn_stage(Rng& rng, std::int64_t ch, float in_s, float out_s, bool relu = false) {
  BnStage st;
  st.input_scale = in_s;
  st.output_scale = out_s;
  st.relu_after = relu;
  st.scale = Tensor::randn({ch}, rng, 0.5F);
  st.bias = Tensor::randn({ch}, rng, 0.2F);
  return st;
}

LinearStage linear_stage(Rng& rng, std::int64_t in_f, std::int64_t out_f, float in_s,
                         float out_s) {
  LinearStage st;
  st.input_scale = in_s;
  st.output_scale = out_s;
  st.weights_q = backend::quantize_s8(Tensor::randn({out_f, in_f}, rng, 0.2F));
  return st;
}

/// conv -> bn -> relu -> requant chain plus a residual join — every fusable
/// stage kind in one graph, with the scales chained so fusion can fire.
Int8Pipeline fusable_pipeline(Rng& rng) {
  Int8Pipeline pipe;
  pipe.push(im2row_conv(rng, 3, 4, 0.05F, 0.1F), io("", "", "x", "stem"));
  pipe.push(wino_conv(rng, 4, 0.1F, 0.09F), io("x", "", "", "main"));
  pipe.push(bn_stage(rng, 4, 0.09F, 0.11F), io("", "", "", "main.bn"));
  pipe.push(ReluStage{}, io("", "", "", "main.relu"));
  RequantStage rq;
  rq.input_scale = 0.11F;
  rq.output_scale = 0.08F;
  pipe.push(std::move(rq), io("", "", "", "main.requant"));
  AddStage add;
  add.lhs_scale = 0.08F;
  add.rhs_scale = 0.1F;
  add.output_scale = 0.07F;
  pipe.push(std::move(add), io("", "x", "", "join"));
  pipe.push(AvgPoolStage{}, io("", "", "", "gap"));
  pipe.push(linear_stage(rng, 4, 5, 0.07F, 0.2F), io("", "", "", "fc"));
  return pipe;
}

OptimizeOptions ref_opts(Shape s) {
  OptimizeOptions o;
  o.reference_input = std::move(s);
  return o;
}

// ---- fusion -----------------------------------------------------------------

TEST(FuseStages, FoldsBnReluRequantChainsBitExactly) {
  Rng rng(71);
  Int8Pipeline ref = fusable_pipeline(rng);
  Int8Pipeline opt = ref;
  const OptimizeReport report = optimize_pipeline(opt, ref_opts({2, 3, 9, 9}));

  // bn, relu and requant all fold into the Winograd conv.
  EXPECT_EQ(report.fused_stages, 3u);
  EXPECT_EQ(opt.size(), ref.size() - 3);
  bool found_epilogues = false;
  for (const auto& node : opt.nodes()) {
    if (node.epilogue.size() == 3) {
      found_epilogues = true;
      EXPECT_EQ(node.epilogue[0].kind, EpilogueOp::Kind::kAffine);
      EXPECT_EQ(node.epilogue[1].kind, EpilogueOp::Kind::kRelu);
      EXPECT_EQ(node.epilogue[2].kind, EpilogueOp::Kind::kRequant);
    }
  }
  EXPECT_TRUE(found_epilogues);

  Rng data_rng(5);
  for (int i = 0; i < 3; ++i) {
    const Tensor x = Tensor::randn({2, 3, 9, 9}, data_rng);
    EXPECT_EQ(Tensor::max_abs_diff(opt.run(x), ref.run(x)), 0.F) << "forward " << i;
  }
}

TEST(FuseStages, ScaleMismatchBlocksBnAndRequantFolding) {
  Rng rng(72);
  Int8Pipeline pipe;
  pipe.push(im2row_conv(rng, 3, 4, 0.05F, 0.1F), io("", "", "", "conv"));
  // Expects 0.09 but the conv produces 0.1: the executor's rescale between
  // them is NOT the identity, so folding would change bits — must not fuse.
  pipe.push(bn_stage(rng, 4, 0.09F, 0.11F), io("", "", "", "bn"));
  Int8Pipeline opt = pipe;
  const OptimizeReport report = optimize_pipeline(opt, ref_opts({1, 3, 8, 8}));
  EXPECT_EQ(report.fused_stages, 0u);
  EXPECT_EQ(opt.size(), pipe.size());
  Rng data_rng(6);
  const Tensor x = Tensor::randn({1, 3, 8, 8}, data_rng);
  EXPECT_EQ(Tensor::max_abs_diff(opt.run(x), pipe.run(x)), 0.F);
}

TEST(FuseStages, SlotMediatedSingleReaderChainFusesAndDropsTheSlot) {
  Rng rng(73);
  Int8Pipeline pipe;
  pipe.push(im2row_conv(rng, 3, 4, 0.05F, 0.1F), io("", "", "y", "conv"));
  pipe.push(ReluStage{}, io("y", "", "", "relu"));
  pipe.push(AvgPoolStage{}, io("", "", "", "gap"));
  pipe.push(linear_stage(rng, 4, 3, 0.1F, 0.2F), io("", "", "", "fc"));
  Int8Pipeline opt = pipe;
  const OptimizeReport report = optimize_pipeline(opt, ref_opts({1, 3, 6, 6}));
  EXPECT_EQ(report.fused_stages, 1u);
  // The slot disappeared with the fold.
  for (const auto& node : opt.nodes()) {
    EXPECT_NE(node.io.output, "y");
    EXPECT_NE(node.io.input, "y");
  }
  Rng data_rng(7);
  const Tensor x = Tensor::randn({1, 3, 6, 6}, data_rng);
  EXPECT_EQ(Tensor::max_abs_diff(opt.run(x), pipe.run(x)), 0.F);
}

TEST(FuseStages, MultiReaderSlotIsNotFused) {
  Rng rng(74);
  Int8Pipeline pipe;
  pipe.push(im2row_conv(rng, 3, 4, 0.05F, 0.1F), io("", "", "y", "conv"));
  pipe.push(ReluStage{}, io("y", "", "", "relu"));  // reader 1, adjacent
  AddStage add;
  add.lhs_scale = 0.1F;
  add.rhs_scale = 0.1F;
  add.output_scale = 0.09F;
  pipe.push(std::move(add), io("", "y", "", "join"));  // reader 2
  Int8Pipeline opt = pipe;
  const OptimizeReport report = optimize_pipeline(opt, ref_opts({1, 3, 8, 8}));
  EXPECT_EQ(report.fused_stages, 0u) << "slot y has two readers — folding would break the join";
  Rng data_rng(8);
  const Tensor x = Tensor::randn({1, 3, 8, 8}, data_rng);
  EXPECT_EQ(Tensor::max_abs_diff(opt.run(x), pipe.run(x)), 0.F);
}

// ---- dead-stage elimination -------------------------------------------------

TEST(DeadStageElimination, PrunesUnconsumedBranchesTransitively) {
  Rng rng(75);
  Int8Pipeline pipe;
  pipe.push(im2row_conv(rng, 3, 4, 0.05F, 0.1F), io("", "", "x", "stem"));
  // Dead branch: published, transitively consumed only by another dead
  // publisher. run() rejects this graph; DCE removes both stages.
  pipe.push(im2row_conv(rng, 4, 2, 0.1F, 0.2F), io("x", "", "dead1", "dead.conv"));
  pipe.push(ReluStage{}, io("dead1", "", "dead2", "dead.relu"));
  pipe.push(AvgPoolStage{}, io("x", "", "", "gap"));
  pipe.push(linear_stage(rng, 4, 3, 0.1F, 0.2F), io("", "", "", "fc"));

  Rng data_rng(9);
  const Tensor x = Tensor::randn({1, 3, 8, 8}, data_rng);
  EXPECT_THROW(pipe.run(x), std::invalid_argument);  // dead dataflow rejected

  Int8Pipeline opt = pipe;
  const OptimizeReport report = optimize_pipeline(opt, ref_opts({1, 3, 8, 8}));
  // Fusion first folds dead.relu into dead.conv (it cannot know the chain is
  // dead), then DCE deletes the fused node — both dead stages are gone.
  EXPECT_EQ(report.fused_stages + report.removed_stages, 2u);
  EXPECT_GE(report.removed_stages, 1u);
  EXPECT_EQ(opt.size(), 3u);

  // The pruned graph equals the one that never had the dead branch.
  Int8Pipeline clean;
  {
    Rng r2(75);
    clean.push(im2row_conv(r2, 3, 4, 0.05F, 0.1F), io("", "", "x", "stem"));
    im2row_conv(r2, 4, 2, 0.1F, 0.2F);  // burn the same rng draws
    clean.push(AvgPoolStage{}, io("x", "", "", "gap"));
    clean.push(linear_stage(r2, 4, 3, 0.1F, 0.2F), io("", "", "", "fc"));
  }
  EXPECT_EQ(Tensor::max_abs_diff(opt.run(x), clean.run(x)), 0.F);
}

// ---- memory planner ---------------------------------------------------------

TEST(MemoryPlan, PredictedPeakMatchesMeasuredPeakOnFrozenPipelines) {
  Rng rng(76);
  Int8Pipeline ref = fusable_pipeline(rng);
  Int8Pipeline opt = ref;
  const Shape shape{2, 3, 12, 12};
  const OptimizeReport report = optimize_pipeline(opt, ref_opts(shape));
  ASSERT_NE(opt.plan(), nullptr);
  EXPECT_EQ(opt.plan()->peak_bytes, report.planned_peak_bytes);

  Rng data_rng(10);
  const Tensor x = Tensor::randn(shape, data_rng);
  RunStats on{}, off{};
  const Tensor got = opt.run(x, nullptr, &on);
  const Tensor want = ref.run(x, nullptr, &off);
  EXPECT_EQ(Tensor::max_abs_diff(got, want), 0.F);
  EXPECT_EQ(on.peak_activation_bytes, report.planned_peak_bytes)
      << "the plan must predict exactly what the executor measures";
  EXPECT_EQ(off.peak_activation_bytes, report.naive_peak_bytes)
      << "the naive baseline must match the unoptimized executor";
  EXPECT_LT(on.peak_activation_bytes, off.peak_activation_bytes);
  EXPECT_GT(on.inplace_reuses, 0);
}

TEST(MemoryPlan, OffsetsNeverAliasTwoConcurrentlyLiveValues) {
  Rng rng(77);
  Int8Pipeline opt = fusable_pipeline(rng);
  optimize_pipeline(opt, ref_opts({1, 3, 10, 10}));
  const MemoryPlan* plan = opt.plan();
  ASSERT_NE(plan, nullptr);
  const auto w = opt.resolve_wiring();
  const std::size_t values = plan->value_bytes.size();

  const auto death = [&](std::size_t v) {
    // Conservative interval: birth at production, death one past last use.
    return w.last_use[v] >= 0 ? static_cast<std::int64_t>(w.last_use[v]) + 2
                              : static_cast<std::int64_t>(v) + 1;
  };
  for (std::size_t a = 0; a < values; ++a) {
    for (std::size_t b = a + 1; b < values; ++b) {
      const bool time_overlap =
          static_cast<std::int64_t>(a) < death(b) && static_cast<std::int64_t>(b) < death(a);
      const bool space_overlap = plan->offsets[a] < plan->offsets[b] + plan->value_bytes[b] &&
                                 plan->offsets[b] < plan->offsets[a] + plan->value_bytes[a];
      const bool shared_buffer = plan->offsets[a] == plan->offsets[b];  // planned reuse
      if (time_overlap && space_overlap && !shared_buffer) {
        FAIL() << "values " << a << " and " << b << " overlap in time and space";
      }
    }
  }
  EXPECT_GE(plan->arena_bytes, plan->peak_bytes - plan->peak_bytes / 4)
      << "arena layout should be in the same ballpark as the live-byte peak";
}

TEST(MemoryPlan, ResNet18PeakDropsAtLeastThirtyPercentAndStaysBitExact) {
  Rng rng(42);
  models::ResNetConfig cfg;
  cfg.width_mult = 0.25F;
  cfg.qspec = quant::QuantSpec{8};
  cfg.algo = nn::ConvAlgo::kWinograd2;
  models::ResNet18 net(cfg, rng);
  net.set_training(true);
  for (int i = 0; i < 2; ++i) {
    net.forward(ag::Variable(Tensor::randn({8, 3, 32, 32}, rng), false));
  }
  Int8Pipeline ref = deploy::compile_resnet18(net);
  ref.freeze_scales(Tensor::randn({4, 3, 32, 32}, rng));

  Int8Pipeline opt = ref;
  const OptimizeReport report = optimize_pipeline(opt, ref_opts({1, 3, 32, 32}));
  EXPECT_GT(report.fused_stages, 0u);

  const Tensor x = Tensor::randn({1, 3, 32, 32}, rng);
  RunStats on{}, off{};
  const Tensor got = opt.run(x, nullptr, &on);
  const Tensor want = ref.run(x, nullptr, &off);
  EXPECT_EQ(Tensor::max_abs_diff(got, want), 0.F);
  EXPECT_EQ(on.peak_activation_bytes, report.planned_peak_bytes);
  EXPECT_EQ(off.peak_activation_bytes, report.naive_peak_bytes);
  EXPECT_LE(static_cast<double>(on.peak_activation_bytes),
            0.7 * static_cast<double>(off.peak_activation_bytes))
      << "the paper-model acceptance bar: >= 30% peak activation reduction";

  // A batch the plan was NOT computed for still runs bit-identically (the
  // executor re-checks every in-place mark against actual shapes).
  const Tensor xb = Tensor::randn({5, 3, 32, 32}, rng);
  EXPECT_EQ(Tensor::max_abs_diff(opt.run(xb), ref.run(xb)), 0.F);
}

TEST(MemoryPlan, LenetOptimizedPipelineIsBitExact) {
  Rng rng(31);
  models::LeNetConfig cfg;
  cfg.algo = nn::ConvAlgo::kWinograd2;
  cfg.qspec = quant::QuantSpec{8};
  models::LeNet5 net(cfg, rng);
  net.set_training(true);
  for (int i = 0; i < 2; ++i) {
    net.forward(ag::Variable(Tensor::randn({4, 1, 28, 28}, rng), false));
  }
  Int8Pipeline ref = deploy::compile_lenet(net);
  ref.freeze_scales(Tensor::randn({4, 1, 28, 28}, rng));
  Int8Pipeline opt = ref;
  const OptimizeReport report = optimize_pipeline(opt, ref_opts({2, 1, 28, 28}));
  ASSERT_NE(opt.plan(), nullptr);
  // LeNet's peak is the max-pool point (pool input and output genuinely
  // coexist), which no buffer reuse can shrink — the plan must predict that
  // honestly rather than over-promise.
  EXPECT_LE(report.planned_peak_bytes, report.naive_peak_bytes);

  const Tensor x = Tensor::randn({2, 1, 28, 28}, rng);
  RunStats on{};
  const Tensor got = opt.run(x, nullptr, &on);
  EXPECT_EQ(Tensor::max_abs_diff(got, ref.run(x)), 0.F);
  EXPECT_EQ(on.peak_activation_bytes, report.planned_peak_bytes);
}

// ---- plan validation and robustness -----------------------------------------

TEST(MemoryPlan, SetPlanRejectsInconsistentPlans) {
  Rng rng(78);
  Int8Pipeline pipe = fusable_pipeline(rng);
  Int8Pipeline donor = pipe;
  optimize_pipeline(donor, ref_opts({1, 3, 8, 8}));
  ASSERT_NE(donor.plan(), nullptr);

  {
    MemoryPlan p = *donor.plan();
    p.in_place.pop_back();  // wrong stage count
    EXPECT_THROW(donor.set_plan(std::move(p)), std::invalid_argument);
  }
  {
    MemoryPlan p = *donor.plan();
    p.in_place[0] = 7;  // mark out of range
    EXPECT_THROW(donor.set_plan(std::move(p)), std::invalid_argument);
  }
  {
    MemoryPlan p = *donor.plan();
    p.offsets[1] = p.arena_bytes + 1;  // value past the arena
    EXPECT_THROW(donor.set_plan(std::move(p)), std::invalid_argument);
  }
  {
    MemoryPlan p = *donor.plan();
    p.last_use[0] = static_cast<std::int32_t>(donor.size());  // out of range
    EXPECT_THROW(donor.set_plan(std::move(p)), std::invalid_argument);
  }
  // The stale-plan guard: pushing a stage after planning clears the plan.
  optimize_pipeline(donor, ref_opts({1, 3, 8, 8}));
  ASSERT_NE(donor.plan(), nullptr);
  donor.push(ReluStage{}, io("", "", "", "tail.relu"));
  EXPECT_EQ(donor.plan(), nullptr);
}

TEST(InferValueShapes, RejectsShapeInconsistentGraphsWithTheStageName) {
  Rng rng(79);
  {
    // Conv fed a flattened activation.
    Int8Pipeline pipe;
    pipe.push(im2row_conv(rng, 3, 4, 0.05F, 0.1F), io("", "", "", "conv-a"));
    pipe.push(FlattenStage{}, io("", "", "", "flat"));
    pipe.push(linear_stage(rng, 4 * 8 * 8, 3, 0.1F, 0.2F), io("", "", "", "fc"));
    Int8Pipeline bad;
    bad.push(im2row_conv(rng, 3, 4, 0.05F, 0.1F), io("", "", "", "conv-a"));
    bad.push(FlattenStage{}, io("", "", "", "flat"));
    bad.push(im2row_conv(rng, 4, 2, 0.1F, 0.2F), io("", "", "", "conv-on-flat"));
    try {
      passes::infer_value_shapes(bad, {1, 3, 8, 8});
      FAIL() << "expected invalid_argument";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("conv-on-flat"), std::string::npos) << e.what();
    }
  }
  {
    // Residual join with mismatched branch shapes.
    Int8Pipeline bad;
    bad.push(im2row_conv(rng, 3, 4, 0.05F, 0.1F), io("", "", "x", "stem"));
    bad.push(im2row_conv(rng, 4, 4, 0.1F, 0.09F, false, 3, 0), io("x", "", "", "shrink"));
    AddStage add;
    add.lhs_scale = 0.09F;
    add.rhs_scale = 0.1F;
    add.output_scale = 0.08F;
    bad.push(std::move(add), io("", "x", "", "join-mismatch"));
    try {
      passes::infer_value_shapes(bad, {1, 3, 8, 8});
      FAIL() << "expected invalid_argument";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("join-mismatch"), std::string::npos) << e.what();
    }
  }
}

// ---- epilogue serialization neutrality --------------------------------------

TEST(FuseStages, TimingEntriesCollapseWithTheFusedStages) {
  Rng rng(80);
  Int8Pipeline ref = fusable_pipeline(rng);
  Int8Pipeline opt = ref;
  optimize_pipeline(opt, ref_opts({1, 3, 9, 9}));
  Rng data_rng(11);
  const Tensor x = Tensor::randn({1, 3, 9, 9}, data_rng);
  std::vector<StageTiming> t_ref, t_opt;
  ref.run(x, &t_ref);
  opt.run(x, &t_opt);
  EXPECT_EQ(t_ref.size(), ref.size());
  EXPECT_EQ(t_opt.size(), opt.size());
  EXPECT_LT(t_opt.size(), t_ref.size());
  // Fused labels advertise what they absorbed.
  bool merged_label = false;
  for (const auto& t : t_opt) merged_label |= t.label.find('+') != std::string::npos;
  EXPECT_TRUE(merged_label);
}

}  // namespace
}  // namespace wa::deploy
