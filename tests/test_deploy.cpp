// Tests for the int8 deployment pipeline: integer ops, scale chaining, and
// the QAT-to-integer-inference contract on a full LeNet-5.
#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "deploy/pipeline.hpp"
#include "train/trainer.hpp"

namespace wa::deploy {
namespace {

using backend::QTensor;

QTensor q_of(const Tensor& t, float scale = -1.F) { return backend::quantize_s8(t, scale); }

// ---- integer ops ------------------------------------------------------------

TEST(Int8Ops, ReluZeroesNegativeLevels) {
  QTensor x;
  x.shape = Shape{4};
  x.scale = 0.1F;
  x.data = {-5, 0, 3, -1};
  const QTensor y = relu_s8(x);
  EXPECT_EQ(y.data, (std::vector<std::int8_t>{0, 0, 3, 0}));
  EXPECT_FLOAT_EQ(y.scale, 0.1F);
}

TEST(Int8Ops, MaxPoolMatchesFloatPath) {
  Rng rng(1);
  const Tensor x = Tensor::randn({2, 3, 8, 8}, rng);
  const QTensor q = q_of(x);
  const QTensor pooled = max_pool_s8(q, 2, 2);
  EXPECT_EQ(pooled.shape, (Shape{2, 3, 4, 4}));
  // Max commutes with the (positive) scale: pool(dequant(q)) == dequant(pool(q)).
  const Tensor deq = backend::dequantize(q);
  for (std::int64_t n = 0; n < 2; ++n)
    for (std::int64_t c = 0; c < 3; ++c)
      for (std::int64_t i = 0; i < 4; ++i)
        for (std::int64_t j = 0; j < 4; ++j) {
          float best = -1e30F;
          for (int a = 0; a < 2; ++a)
            for (int b = 0; b < 2; ++b) best = std::max(best, deq(n, c, 2 * i + a, 2 * j + b));
          EXPECT_FLOAT_EQ(backend::dequantize(pooled)(n, c, i, j), best);
        }
}

TEST(Int8Ops, MaxPoolRejectsBadGeometry) {
  QTensor x;
  x.shape = Shape{1, 1, 2, 2};
  x.data.assign(4, 1);
  EXPECT_THROW(max_pool_s8(x, 3, 1), std::invalid_argument);
  EXPECT_THROW(max_pool_s8(x, 0, 1), std::invalid_argument);
  x.shape = Shape{4};
  EXPECT_THROW(max_pool_s8(x, 2, 2), std::invalid_argument);
}

TEST(Int8Ops, GlobalAvgPoolRoundsLevelMean) {
  QTensor x;
  x.shape = Shape{1, 2, 2, 2};
  x.scale = 1.F;
  x.data = {1, 2, 3, 4, 10, 10, 10, 11};
  const QTensor y = global_avg_pool_s8(x);
  EXPECT_EQ(y.shape, (Shape{1, 2}));
  EXPECT_EQ(y.data[0], 2);   // mean 2.5, round-half-to-even -> 2
  EXPECT_EQ(y.data[1], 10);  // mean 10.25 -> 10
}

TEST(Int8Ops, FlattenKeepsLevels) {
  QTensor x;
  x.shape = Shape{2, 3, 2, 2};
  x.scale = 0.5F;
  x.data.assign(24, 7);
  const QTensor y = flatten_s8(x);
  EXPECT_EQ(y.shape, (Shape{2, 12}));
  EXPECT_EQ(y.data.size(), 24u);
  EXPECT_FLOAT_EQ(y.scale, 0.5F);
}

TEST(Int8Ops, LinearMatchesFloatReference) {
  Rng rng(2);
  const Tensor x = Tensor::randn({3, 8}, rng);
  const Tensor w = Tensor::randn({5, 8}, rng, 0.5F);
  const Tensor b = Tensor::randn({5}, rng);
  const QTensor out = linear_s8(q_of(x), q_of(w), b);
  // Float reference.
  Tensor ref(Shape{3, 5});
  for (std::int64_t n = 0; n < 3; ++n)
    for (std::int64_t o = 0; o < 5; ++o) {
      float acc = b.at(o);
      for (std::int64_t f = 0; f < 8; ++f) acc += x(n, f) * w(o, f);
      ref(n, o) = acc;
    }
  const float rel = Tensor::max_abs_diff(ref, backend::dequantize(out)) /
                    std::max(ref.abs_max(), 1e-6F);
  EXPECT_LT(rel, 0.05F);
}

TEST(Int8Ops, LinearShapeMismatchThrows) {
  Rng rng(3);
  const QTensor x = q_of(Tensor::randn({2, 8}, rng));
  const QTensor w = q_of(Tensor::randn({5, 7}, rng));
  EXPECT_THROW(linear_s8(x, w, Tensor()), std::invalid_argument);
}

// ---- pipeline ----------------------------------------------------------------

TEST(Pipeline, EmptyAndHeadlessPipelinesThrow) {
  Int8Pipeline empty;
  Rng rng(4);
  const Tensor x = Tensor::randn({1, 1, 8, 8}, rng);
  EXPECT_THROW(empty.run(x), std::invalid_argument);
  Int8Pipeline headless;
  headless.push(PoolStage{2, 2});
  EXPECT_THROW(headless.run(x), std::invalid_argument);
}

TEST(Pipeline, CompileRejectsUncalibratedModel) {
  Rng rng(5);
  models::LeNetConfig cfg;
  cfg.qspec = quant::QuantSpec{8};
  models::LeNet5 net(cfg, rng);  // never saw a batch: observers cold
  EXPECT_THROW(compile_lenet(net), std::invalid_argument);
}

TEST(Pipeline, CompiledLenetFreezesItsOnlyDynamicStage) {
  // compile_lenet leaves exactly one dynamic scale — the fc3 logits stage —
  // and freeze_scales() pins it, which is what the serving load path needs
  // before coalescing unrelated requests into one forward.
  Rng rng(7);
  models::LeNetConfig cfg;
  cfg.qspec = quant::QuantSpec{8};
  models::LeNet5 net(cfg, rng);
  net.set_training(true);
  for (int i = 0; i < 2; ++i) {
    net.forward(ag::Variable(Tensor::randn({4, 1, 28, 28}, rng), false));  // calibrate observers
  }
  Int8Pipeline pipe = compile_lenet(net);
  const auto dynamic = pipe.dynamic_scale_labels();
  ASSERT_EQ(dynamic.size(), 1u);
  EXPECT_EQ(dynamic[0], "fc3");

  pipe.freeze_scales(Tensor::randn({4, 1, 28, 28}, rng));
  EXPECT_TRUE(pipe.all_scales_frozen());
  const Tensor x = Tensor::randn({6, 1, 28, 28}, rng);
  EXPECT_EQ(Tensor::max_abs_diff(pipe.run_batched(x, 2), pipe.run(x)), 0.F)
      << "frozen pipeline must be independent of batch composition";
}

class LenetDeployContract : public ::testing::TestWithParam<nn::ConvAlgo> {};

TEST_P(LenetDeployContract, IntegerPipelineTracksQatModel) {
  // Train a small INT8 LeNet (any conv algorithm), compile it to the integer
  // pipeline, and check the deployed network classifies like the QAT model.
  // This is the paper's end-goal: winograd-aware INT8 training must survive
  // genuine integer execution.
  const nn::ConvAlgo algo = GetParam();
  Rng rng(6);
  models::LeNetConfig cfg;
  cfg.algo = algo;
  cfg.qspec = quant::QuantSpec{8};
  cfg.flex_transforms = nn::is_winograd(algo);
  models::LeNet5 net(cfg, rng);

  // The agreement check needs a confidently-trained model: near-tie logits
  // make argmax agreement meaningless. The Winograd variant uses t=6 tiles
  // whose intermediate requantization carries inherent ±1-level rounding
  // noise (amplified by the output transform — the same mechanism behind the
  // paper's Table 1), so small logit deviations are expected and the
  // contract is checked at the level of predictions and accuracy.
  auto spec = data::mnist_like();
  spec.train_size = 512;
  spec.test_size = 96;
  const auto train_set = data::generate(spec, true);
  const auto val_set = data::generate(spec, false);
  train::TrainerOptions topts;
  topts.epochs = 4;
  topts.batch_size = 16;
  topts.lr = 3e-3F;
  train::Trainer trainer(net, train_set, val_set, topts);
  trainer.fit();
  const float qat_acc = trainer.evaluate(val_set);

  Int8Pipeline pipe = compile_lenet(net);
  EXPECT_EQ(pipe.size(), 8u);

  std::int64_t agree = 0;
  std::int64_t correct = 0;
  data::DataLoader loader(val_set, 16, false);
  net.set_training(false);
  for (std::int64_t b = 0; b < loader.batches(); ++b) {
    const auto batch = loader.get(b);
    const auto deployed = pipe.classify(batch.images);
    const Tensor logits = net.forward(ag::Variable(batch.images, false)).value();
    const std::int64_t classes = logits.numel() / logits.size(0);
    for (std::size_t i = 0; i < deployed.size(); ++i) {
      std::int64_t qat_pred = 0;
      for (std::int64_t c = 1; c < classes; ++c) {
        if (logits.at(static_cast<std::int64_t>(i) * classes + c) >
            logits.at(static_cast<std::int64_t>(i) * classes + qat_pred))
          qat_pred = c;
      }
      agree += deployed[i] == qat_pred;
      correct += deployed[i] == batch.labels[i];
    }
  }
  const float agreement = static_cast<float>(agree) / static_cast<float>(val_set.size());
  const float deployed_acc = static_cast<float>(correct) / static_cast<float>(val_set.size());
  EXPECT_GT(agreement, 0.85F) << "deployed disagrees with QAT model";
  EXPECT_GT(deployed_acc, qat_acc - 0.1F) << "deployment lost too much accuracy";
}

INSTANTIATE_TEST_SUITE_P(Algos, LenetDeployContract,
                         ::testing::Values(nn::ConvAlgo::kIm2row, nn::ConvAlgo::kWinograd2));

}  // namespace
}  // namespace wa::deploy
