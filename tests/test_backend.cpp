// Equivalence tests across the deployment convolution kernels.
#include <gtest/gtest.h>

#include "backend/conv_kernels.hpp"
#include "backend/conv_kernels_s8.hpp"
#include "backend/qtensor.hpp"

namespace wa::backend {
namespace {

ConvGeometry geo(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w, std::int64_t k,
                 std::int64_t kernel = 3, std::int64_t pad = 1, std::int64_t groups = 1) {
  ConvGeometry g;
  g.batch = n;
  g.in_channels = c;
  g.height = h;
  g.width = w;
  g.out_channels = k;
  g.kernel = kernel;
  g.pad = pad;
  g.groups = groups;
  return g;
}

TEST(ConvGeometry, Validation) {
  EXPECT_NO_THROW(geo(1, 3, 8, 8, 4).validate());
  EXPECT_THROW(geo(0, 3, 8, 8, 4).validate(), std::invalid_argument);
  EXPECT_THROW(geo(1, 3, 8, 8, 4, 3, 1, 2).validate(), std::invalid_argument);  // 3 % 2 != 0
  ConvGeometry g = geo(1, 3, 1, 1, 4, 3, 0);
  EXPECT_THROW(g.validate(), std::invalid_argument);  // empty output
}

TEST(ConvGeometry, OutputDims) {
  const auto g = geo(1, 3, 32, 32, 8);
  EXPECT_EQ(g.out_height(), 32);
  EXPECT_EQ(g.out_width(), 32);
  const auto valid = geo(1, 3, 32, 32, 8, 3, 0);
  EXPECT_EQ(valid.out_height(), 30);
}

TEST(DirectConv, IdentityKernelPassesThrough) {
  // 1x1 kernel with single 1.0 weight: output == input channel mix.
  auto g = geo(1, 1, 4, 4, 1, 1, 0);
  Rng rng(1);
  Tensor in = Tensor::randn({1, 1, 4, 4}, rng);
  Tensor w = Tensor::ones({1, 1, 1, 1});
  Tensor out = direct_conv(in, w, g);
  EXPECT_TRUE(Tensor::allclose(in, out, 0.F));
}

TEST(DirectConv, ShapeMismatchThrows) {
  auto g = geo(1, 2, 4, 4, 1);
  EXPECT_THROW(direct_conv(Tensor::ones({1, 3, 4, 4}), Tensor::ones({1, 2, 3, 3}), g),
               std::invalid_argument);
  EXPECT_THROW(direct_conv(Tensor::ones({1, 2, 4, 4}), Tensor::ones({1, 2, 5, 5}), g),
               std::invalid_argument);
}

struct KernelCase {
  std::int64_t n, c, h, w, k, kernel, pad, groups;
};

class KernelEquivalence : public ::testing::TestWithParam<KernelCase> {};

TEST_P(KernelEquivalence, Im2RowIm2ColMatchDirect) {
  const auto p = GetParam();
  const auto g = geo(p.n, p.c, p.h, p.w, p.k, p.kernel, p.pad, p.groups);
  Rng rng(static_cast<std::uint64_t>(p.c * 31 + p.h));
  const Tensor in = Tensor::randn({p.n, p.c, p.h, p.w}, rng);
  const Tensor w = Tensor::randn({p.k, p.c / p.groups, p.kernel, p.kernel}, rng, 0.2F);
  const Tensor ref = direct_conv(in, w, g);
  EXPECT_LE(Tensor::max_abs_diff(ref, im2row_conv(in, w, g)), 2e-3F);
  EXPECT_LE(Tensor::max_abs_diff(ref, im2col_conv(in, w, g)), 2e-3F);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, KernelEquivalence,
    ::testing::Values(KernelCase{1, 1, 5, 5, 1, 3, 1, 1}, KernelCase{2, 3, 8, 8, 4, 3, 1, 1},
                      KernelCase{1, 4, 7, 9, 6, 3, 1, 1}, KernelCase{1, 3, 8, 8, 4, 5, 2, 1},
                      KernelCase{1, 8, 6, 6, 8, 3, 1, 4},   // grouped (ResNeXt-style)
                      KernelCase{2, 4, 8, 8, 4, 1, 0, 1},   // 1x1 (SqueezeNet squeeze)
                      KernelCase{1, 2, 16, 16, 3, 3, 0, 1}  // no padding
                      ));

class WinogradKernelEquivalence : public ::testing::TestWithParam<std::pair<int, KernelCase>> {};

TEST_P(WinogradKernelEquivalence, WinogradMatchesDirect) {
  const auto [m, p] = GetParam();
  const auto g = geo(p.n, p.c, p.h, p.w, p.k, p.kernel, p.pad, 1);
  const auto tr = wino::make_transforms(m, static_cast<int>(p.kernel));
  Rng rng(static_cast<std::uint64_t>(m * 17 + p.h));
  const Tensor in = Tensor::randn({p.n, p.c, p.h, p.w}, rng);
  const Tensor w = Tensor::randn({p.k, p.c, p.kernel, p.kernel}, rng, 0.2F);
  const Tensor ref = direct_conv(in, w, g);
  const Tensor got = winograd_conv(in, w, g, tr);
  const float tol = 2e-3F * static_cast<float>(m) * static_cast<float>(std::max<std::int64_t>(p.c, 1));
  EXPECT_LE(Tensor::max_abs_diff(ref, got), tol);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, WinogradKernelEquivalence,
    ::testing::Values(std::pair{2, KernelCase{1, 2, 8, 8, 3, 3, 1, 1}},
                      std::pair{4, KernelCase{1, 2, 8, 8, 3, 3, 1, 1}},
                      std::pair{6, KernelCase{1, 2, 16, 16, 3, 3, 1, 1}},
                      std::pair{4, KernelCase{2, 3, 9, 11, 4, 3, 1, 1}},  // ragged tiles
                      std::pair{2, KernelCase{1, 4, 6, 6, 2, 3, 0, 1}},   // no padding
                      std::pair{2, KernelCase{1, 1, 10, 10, 1, 5, 2, 1}}  // 5x5 filter
                      ));

TEST(WinogradConv, RejectsGroupsAndKernelMismatch) {
  const auto tr = wino::make_transforms(2, 3);
  auto g = geo(1, 4, 8, 8, 4, 3, 1, 2);
  EXPECT_THROW(winograd_conv(Tensor::ones({1, 4, 8, 8}), Tensor::ones({4, 2, 3, 3}), g, tr),
               std::invalid_argument);
  auto g2 = geo(1, 2, 8, 8, 2, 5, 2, 1);
  EXPECT_THROW(winograd_conv(Tensor::ones({1, 2, 8, 8}), Tensor::ones({2, 2, 5, 5}), g2, tr),
               std::invalid_argument);
}

TEST(WinogradTransformWeights, ShapeAndAmortization) {
  const auto tr = wino::make_transforms(4, 3);
  Rng rng(3);
  const Tensor w = Tensor::randn({8, 4, 3, 3}, rng);
  const Tensor u = winograd_transform_weights(w, tr);
  EXPECT_EQ(u.shape(), (Shape{36, 8, 4}));  // t*t = 36: the 4x memory blow-up of F4
}

// ---- int8 kernels -----------------------------------------------------------

TEST(QTensor, QuantizeDequantizeRoundTrip) {
  Rng rng(4);
  Tensor t = Tensor::randn({2, 3, 4, 4}, rng);
  const QTensor q = quantize_s8(t);
  const Tensor back = dequantize(q);
  EXPECT_LE(Tensor::max_abs_diff(t, back), q.scale / 2.F + 1e-6F);
}

TEST(GemmS8, MatchesFloatGemmOnSmallInts) {
  const std::int64_t m = 3, n = 4, k = 5;
  std::vector<std::int8_t> a(static_cast<std::size_t>(m * k)), b(static_cast<std::size_t>(k * n));
  Rng rng(5);
  for (auto& v : a) v = static_cast<std::int8_t>(rng.randint(-20, 20));
  for (auto& v : b) v = static_cast<std::int8_t>(rng.randint(-20, 20));
  std::vector<std::int32_t> c(static_cast<std::size_t>(m * n));
  gemm_s8_s32(m, n, k, a.data(), b.data(), c.data());
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      std::int32_t want = 0;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        want += static_cast<std::int32_t>(a[static_cast<std::size_t>(i * k + kk)]) *
                b[static_cast<std::size_t>(kk * n + j)];
      }
      EXPECT_EQ(c[static_cast<std::size_t>(i * n + j)], want);
    }
  }
}

TEST(Im2RowS8, CloseToFloatReference) {
  const auto g = geo(1, 3, 8, 8, 4);
  Rng rng(6);
  const Tensor in = Tensor::randn({1, 3, 8, 8}, rng);
  const Tensor w = Tensor::randn({4, 3, 3, 3}, rng, 0.3F);
  const Tensor ref = im2row_conv(in, w, g);

  const QTensor qin = quantize_s8(in);
  const QTensor qw = quantize_s8(w);
  const QTensor qout = im2row_conv_s8(qin, qw, g);
  const Tensor got = dequantize(qout);
  // int8 end-to-end: expect small relative error vs the fp32 result.
  EXPECT_LE(Tensor::max_abs_diff(ref, got) / std::max(ref.abs_max(), 1e-6F), 0.06F);
}

TEST(WinogradS8, F2CloseToFloatReference) {
  const auto g = geo(1, 4, 8, 8, 4);
  const auto tr = wino::make_transforms(2, 3);
  Rng rng(7);
  const Tensor in = Tensor::randn({1, 4, 8, 8}, rng);
  const Tensor w = Tensor::randn({4, 4, 3, 3}, rng, 0.3F);
  const Tensor ref = im2row_conv(in, w, g);
  const QTensor qout = winograd_conv_s8(quantize_s8(in), w, g, tr);
  const Tensor got = dequantize(qout);
  EXPECT_LE(Tensor::max_abs_diff(ref, got) / std::max(ref.abs_max(), 1e-6F), 0.12F);
}

TEST(WinogradS8, F6WorseThanF2AtInt8) {
  // The deployment kernels show the same error-vs-tile-size behaviour the
  // training study is built around.
  const auto g = geo(1, 4, 16, 16, 4);
  Rng rng(8);
  const Tensor in = Tensor::randn({1, 4, 16, 16}, rng);
  const Tensor w = Tensor::randn({4, 4, 3, 3}, rng, 0.3F);
  const Tensor ref = im2row_conv(in, w, g);

  auto rel_err = [&](int m) {
    const auto tr = wino::make_transforms(m, 3);
    const Tensor got = dequantize(winograd_conv_s8(quantize_s8(in), w, g, tr));
    return Tensor::max_abs_diff(ref, got) / std::max(ref.abs_max(), 1e-6F);
  };
  EXPECT_GT(rel_err(6), rel_err(2));
}

}  // namespace
}  // namespace wa::backend
