// Tests for optimizers, schedules and the training loop.
#include <gtest/gtest.h>

#include "autograd/ops.hpp"
#include "models/lenet.hpp"
#include "train/trainer.hpp"

namespace wa::train {
namespace {

ag::Variable leaf(Tensor t) { return ag::Variable(std::move(t), true); }

// Minimise f(w) = ||w - target||² with each optimizer.
template <typename Opt, typename Opts>
float optimize_quadratic(Opts opts, int steps) {
  ag::Variable w = leaf(Tensor::full({4}, 5.F));
  const Tensor target = Tensor::full({4}, 1.F);
  Opt opt({w}, opts);
  for (int i = 0; i < steps; ++i) {
    ag::Variable diff = ag::sub(w, ag::Variable(target, false));
    ag::Variable loss = ag::sum(ag::mul(diff, diff));
    opt.zero_grad();
    loss.backward();
    opt.step();
  }
  return Tensor::max_abs_diff(w.value(), target);
}

TEST(Sgd, ConvergesOnQuadratic) {
  SgdOptions o;
  o.lr = 0.05F;
  EXPECT_LT(optimize_quadratic<Sgd>(o, 100), 1e-3F);
}

TEST(Sgd, NesterovConvergesFasterThanPlain) {
  SgdOptions plain;
  plain.lr = 0.02F;
  plain.momentum = 0.9F;
  plain.nesterov = false;
  SgdOptions nest = plain;
  nest.nesterov = true;
  EXPECT_LE(optimize_quadratic<Sgd>(nest, 30), optimize_quadratic<Sgd>(plain, 30) + 1e-4F);
}

TEST(Sgd, WeightDecayShrinksWeights) {
  ag::Variable w = leaf(Tensor::full({2}, 1.F));
  SgdOptions o;
  o.lr = 0.1F;
  o.momentum = 0.F;
  o.weight_decay = 1.F;
  Sgd opt({w}, o);
  // Zero loss gradient: only decay acts.
  ag::sum(ag::scale(w, 0.F)).backward();
  opt.step();
  EXPECT_LT(w.value().at(0), 1.F);
}

TEST(Adam, ConvergesOnQuadratic) {
  AdamOptions o;
  o.lr = 0.1F;
  EXPECT_LT(optimize_quadratic<Adam>(o, 200), 1e-2F);
}

TEST(Adam, Beta1ZeroOnlyMovesParamsWithGradient) {
  // wiNAS uses Adam(β1=0) so that unsampled paths (zero grad) don't drift.
  AdamOptions o;
  o.beta1 = 0.F;
  ag::Variable w = leaf(Tensor::full({2}, 1.F));
  Adam opt({w}, o);
  // First step WITH gradient on element 0 only.
  w.grad();  // ensure allocated
  w.node()->grad.at(0) = 1.F;
  opt.step();
  const float moved = w.value().at(0);
  EXPECT_LT(moved, 1.F);
  EXPECT_FLOAT_EQ(w.value().at(1), 1.F);  // untouched
}

TEST(CosineSchedule, EndpointsAndMonotonicity) {
  CosineSchedule s(1.F, 100, 0.F);
  EXPECT_NEAR(s.at(0), 1.F, 1e-5F);
  EXPECT_NEAR(s.at(99), 0.F, 1e-5F);
  EXPECT_GT(s.at(10), s.at(50));
  EXPECT_GT(s.at(50), s.at(90));
}

TEST(Trainer, LearnsSyntheticMnistQuickly) {
  // End-to-end smoke: a LeNet on the MNIST-analog should beat chance by a
  // wide margin within a few epochs — otherwise the experiment harnesses
  // upstream have no signal to work with.
  Rng rng(1);
  auto spec = data::mnist_like();
  spec.train_size = 256;
  spec.test_size = 128;
  const auto train_set = data::generate(spec, true);
  const auto val_set = data::generate(spec, false);

  models::LeNetConfig cfg;
  models::LeNet5 net(cfg, rng);
  TrainerOptions opts;
  opts.epochs = 3;
  opts.batch_size = 32;
  opts.lr = 2e-3F;
  Trainer trainer(net, train_set, val_set, opts);
  const auto history = trainer.fit();
  ASSERT_EQ(history.size(), 3u);
  EXPECT_GT(history.back().val_acc, 0.5F);  // chance is 0.1
  EXPECT_LT(history.back().train_loss, history.front().train_loss * 1.2F);
}

TEST(Trainer, WarmupObserversDoesNotChangeWeights) {
  Rng rng(2);
  auto spec = data::mnist_like();
  spec.train_size = 32;
  spec.test_size = 16;
  const auto train_set = data::generate(spec, true);
  const auto val_set = data::generate(spec, false);
  models::LeNetConfig cfg;
  cfg.qspec = quant::QuantSpec{8};
  models::LeNet5 net(cfg, rng);
  const auto before = net.state_dict();
  TrainerOptions opts;
  Trainer trainer(net, train_set, val_set, opts);
  trainer.warmup_observers();
  for (const auto& [name, t] : net.state_dict()) {
    if (name.find("running_") != std::string::npos) continue;  // BN buffers may move
    EXPECT_TRUE(Tensor::allclose(before.at(name), t, 0.F)) << name;
  }
}

TEST(Trainer, EvaluateIsDeterministic) {
  Rng rng(3);
  auto spec = data::mnist_like();
  spec.train_size = 32;
  spec.test_size = 32;
  const auto train_set = data::generate(spec, true);
  const auto val_set = data::generate(spec, false);
  models::LeNetConfig cfg;
  models::LeNet5 net(cfg, rng);
  TrainerOptions opts;
  Trainer trainer(net, train_set, val_set, opts);
  EXPECT_FLOAT_EQ(trainer.evaluate(val_set), trainer.evaluate(val_set));
}

}  // namespace
}  // namespace wa::train
