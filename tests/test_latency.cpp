// Tests for the A73/A53 cost model. The assertions encode the *qualitative*
// findings of the paper's Figs. 7/8 and §6.2 — who wins where — which are
// the properties the model exists to reproduce.
#include <gtest/gtest.h>

#include "latency/cost_model.hpp"
#include "latency/resnet_profile.hpp"

namespace wa::latency {
namespace {

backend::ConvGeometry geom(std::int64_t cin, std::int64_t cout, std::int64_t hw,
                           std::int64_t kernel = 3) {
  backend::ConvGeometry g;
  g.batch = 1;
  g.in_channels = cin;
  g.out_channels = cout;
  g.height = hw;
  g.width = hw;
  g.kernel = kernel;
  g.pad = 1;
  return g;
}

LayerDesc layer(std::int64_t cin, std::int64_t cout, std::int64_t hw, nn::ConvAlgo algo,
                DType d = DType::kFp32) {
  LayerDesc l;
  l.geom = geom(cin, cout, hw);
  l.algo = algo;
  l.dtype = d;
  return l;
}

double total(const LatencyModel& m, const LayerDesc& l) { return m.conv_cost(l).total_ms(); }

TEST(DTypeMapping, FromQuantSpec) {
  EXPECT_EQ(dtype_for(quant::QuantSpec{32}), DType::kFp32);
  EXPECT_EQ(dtype_for(quant::QuantSpec{16}), DType::kInt16);
  EXPECT_EQ(dtype_for(quant::QuantSpec{10}), DType::kInt16);
  EXPECT_EQ(dtype_for(quant::QuantSpec{8}), DType::kInt8);
}

TEST(CoreSpecs, MatchTable2) {
  EXPECT_DOUBLE_EQ(cortex_a73().clock_ghz, 2.4);
  EXPECT_DOUBLE_EQ(cortex_a53().clock_ghz, 1.8);
  EXPECT_DOUBLE_EQ(cortex_a73().l2_kb, 2048);
  EXPECT_DOUBLE_EQ(cortex_a53().l2_kb, 512);
}

TEST(RowOpCost, SparseCheaperThanDense) {
  const auto tr = wino::make_transforms(2, 3);
  const double sparse = row_op_cost(tr.bt_mat);
  const double dense = 2.0 * static_cast<double>(tr.bt_mat.numel());
  EXPECT_LT(sparse, dense);
}

// ---- Fig. 7 findings --------------------------------------------------------

TEST(Fig7Findings, Im2RowWinsOnInputLayer) {
  // "(1) im2row is consistently the optimal algorithm for the input layer".
  const LatencyModel a73(cortex_a73());
  for (std::int64_t hw : {8, 16, 24, 32}) {
    const double base = total(a73, layer(3, 32, hw, nn::ConvAlgo::kIm2row));
    EXPECT_LT(base, total(a73, layer(3, 32, hw, nn::ConvAlgo::kWinograd2))) << hw;
    EXPECT_LT(base, total(a73, layer(3, 32, hw, nn::ConvAlgo::kWinograd4))) << hw;
    EXPECT_LT(base, total(a73, layer(3, 32, hw, nn::ConvAlgo::kWinograd6))) << hw;
  }
}

TEST(Fig7Findings, WinogradWinsOnDeepLayers) {
  const LatencyModel a73(cortex_a73());
  const double base = total(a73, layer(128, 192, 24, nn::ConvAlgo::kIm2row));
  EXPECT_LT(total(a73, layer(128, 192, 24, nn::ConvAlgo::kWinograd4)), base);
  EXPECT_LT(total(a73, layer(128, 192, 24, nn::ConvAlgo::kWinograd6)), base);
}

TEST(Fig7Findings, TileAlternationF4VsF6) {
  // Output sizes that divide 6 favour F6; sizes that divide 4 but not 6
  // favour F4 (edge waste): the alternation visible down Fig. 7's columns.
  const LatencyModel a73(cortex_a73());
  const double f4_at6 = total(a73, layer(128, 192, 6, nn::ConvAlgo::kWinograd4));
  const double f6_at6 = total(a73, layer(128, 192, 6, nn::ConvAlgo::kWinograd6));
  EXPECT_LT(f6_at6, f4_at6);
  const double f4_at8 = total(a73, layer(128, 192, 8, nn::ConvAlgo::kWinograd4));
  const double f6_at8 = total(a73, layer(128, 192, 8, nn::ConvAlgo::kWinograd6));
  EXPECT_LT(f4_at8, f6_at8);
}

TEST(Fig7Findings, F6ConsistentlyFastestBeyond40) {
  const LatencyModel a73(cortex_a73());
  for (std::int64_t hw : {48, 56, 64}) {
    const double f6 = total(a73, layer(64, 64, hw, nn::ConvAlgo::kWinograd6));
    EXPECT_LT(f6, total(a73, layer(64, 64, hw, nn::ConvAlgo::kWinograd4))) << hw;
    EXPECT_LT(f6, total(a73, layer(64, 64, hw, nn::ConvAlgo::kIm2row))) << hw;
  }
}

TEST(Fig7Findings, Im2ColSlowerThanIm2Row) {
  const LatencyModel a73(cortex_a73());
  EXPECT_GT(total(a73, layer(128, 128, 16, nn::ConvAlgo::kIm2col)),
            total(a73, layer(128, 128, 16, nn::ConvAlgo::kIm2row)));
}

// ---- Fig. 8 / §6.2 findings ---------------------------------------------------

TEST(Fig8Findings, TransformShareLargeOnInputLayer) {
  // Transforms are "up to 65-75%" of the total on the 3->32 input layer.
  const LatencyModel a73(cortex_a73());
  const auto bd = a73.conv_cost(layer(3, 32, 32, nn::ConvAlgo::kWinograd4));
  const double tf_share = (bd.input_transform_ms + bd.output_transform_ms) / bd.total_ms();
  EXPECT_GT(tf_share, 0.5);
}

TEST(Fig8Findings, TransformShareModestOnDeepLayers) {
  const LatencyModel a73(cortex_a73());
  const auto bd = a73.conv_cost(layer(256, 256, 8, nn::ConvAlgo::kWinograd2));
  const double tf_share = (bd.input_transform_ms + bd.output_transform_ms) / bd.total_ms();
  EXPECT_LT(tf_share, 0.6);
}

TEST(Sec62Findings, A53WinogradSpeedupSmallerThanA73AtFp32) {
  // §6.2: "On A53, the speedups from FP32 Winograd convolutions are smaller
  // than on A73" (memory subsystem limits).
  const LatencyModel a73(cortex_a73());
  const LatencyModel a53(cortex_a53());
  auto speedup = [&](const LatencyModel& m) {
    return total(m, layer(128, 128, 16, nn::ConvAlgo::kIm2row)) /
           total(m, layer(128, 128, 16, nn::ConvAlgo::kWinograd4));
  };
  EXPECT_GT(speedup(a73), speedup(a53));
}

TEST(Sec62Findings, Int8RecoversWinogradSpeedupOnA53) {
  // Table 3 on the A53: WF4 fp32 97 ms -> WAF4 int8 82 ms (1.18x), while
  // im2row barely moves. The gain comes from transform traffic shrinking 4x.
  const LatencyModel a53(cortex_a53());
  const double fp32 = total(a53, layer(128, 128, 16, nn::ConvAlgo::kWinograd4, DType::kFp32));
  const double int8 = total(a53, layer(128, 128, 16, nn::ConvAlgo::kWinograd4, DType::kInt8));
  EXPECT_GT(fp32 / int8, 1.12);
}

TEST(Sec62Findings, Int8Im2RowBarelyFasterOnA53) {
  // Table 3: im2row 118ms fp32 vs 117ms int8 on the A53.
  const LatencyModel a53(cortex_a53());
  const double fp32 = total(a53, layer(128, 128, 16, nn::ConvAlgo::kIm2row, DType::kFp32));
  const double int8 = total(a53, layer(128, 128, 16, nn::ConvAlgo::kIm2row, DType::kInt8));
  EXPECT_LT(fp32 / int8, 1.35);
  EXPECT_GE(fp32 / int8, 0.95);
}

// ---- A.2 dense-transform overhead ----------------------------------------------

TEST(A2Findings, DenseTransformsCostMore) {
  const LatencyModel a73(cortex_a73());
  LayerDesc sparse = layer(64, 64, 16, nn::ConvAlgo::kWinograd4);
  LayerDesc dense = sparse;
  dense.dense_transforms = true;
  const double s = total(a73, sparse), d = total(a73, dense);
  EXPECT_GT(d, s);
  // The paper reports ~17-20% whole-network impact; per-layer overhead
  // should be noticeable but bounded.
  EXPECT_LT(d / s, 2.0);
}

// ---- whole-network profile -------------------------------------------------------

TEST(ResNetProfile, LayerInventory) {
  const auto layers = resnet18_conv_layers(1.0F);
  // 1 input conv + 16 block convs + 4 projection shortcuts (the 32-channel
  // stem means stage1.block0 also projects).
  EXPECT_EQ(layers.size(), 21u);
  int searchable = 0;
  for (const auto& l : layers) searchable += l.searchable ? 1 : 0;
  EXPECT_EQ(searchable, 16);
  EXPECT_EQ(layers.front().name, "conv_in");
  EXPECT_EQ(layers.front().geom.in_channels, 3);
}

TEST(ResNetProfile, SpatialHalvingPerStage) {
  const auto layers = resnet18_conv_layers(1.0F);
  for (const auto& l : layers) {
    if (l.name.starts_with("stage4")) {
      EXPECT_EQ(l.geom.height, 4) << l.name;
    }
    if (l.name.starts_with("stage1")) {
      EXPECT_EQ(l.geom.height, 32) << l.name;
    }
  }
}

TEST(ResNetProfile, WidthMultiplierScalesChannels) {
  const auto full = resnet18_conv_layers(1.0F);
  const auto half = resnet18_conv_layers(0.5F);
  EXPECT_EQ(full.back().geom.out_channels, 512);
  EXPECT_EQ(half.back().geom.out_channels, 256);
}

TEST(NetworkCost, WinogradNetworkFasterThanIm2RowOnA73) {
  // Table 3's headline: WF4 beats im2row at FP32 on the A73.
  const LatencyModel a73(cortex_a73());
  std::vector<LayerDesc> base, wino;
  for (const auto& l : resnet18_conv_layers(1.0F)) {
    LayerDesc d;
    d.geom = l.geom;
    d.algo = nn::ConvAlgo::kIm2row;
    base.push_back(d);
    d.algo = (l.searchable && l.geom.kernel == 3) ? nn::ConvAlgo::kWinograd4
                                                  : nn::ConvAlgo::kIm2row;
    wino.push_back(d);
  }
  EXPECT_LT(a73.network_cost_ms(wino), a73.network_cost_ms(base));
}

}  // namespace
}  // namespace wa::latency
