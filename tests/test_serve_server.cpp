// Tests for the concurrent batched inference server: request/response
// correctness, dynamic micro-batch coalescing, bounded-queue backpressure,
// stats accounting, drain-on-shutdown, and the headline concurrency
// contract — N client threads hammering a shared compiled pipeline must get
// results bit-identical to single-threaded Int8Pipeline::run().
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>

#include "backend/perf_counters.hpp"
#include "deploy/pipeline.hpp"
#include "serve/server.hpp"
#include "telemetry/metrics.hpp"

namespace wa::serve {
namespace {

using backend::snapshot_counters;
using deploy::ConvStage;
using deploy::FlattenStage;
using deploy::Int8Pipeline;
using deploy::LinearStage;
using deploy::PoolStage;

/// Small fully-frozen conv->pool->flatten->fc pipeline; fast enough that the
/// concurrency tests stress the server, not the kernels.
Int8Pipeline tiny_pipeline(Rng& rng, std::int64_t out_classes = 10) {
  ConvStage conv;
  conv.algo = nn::ConvAlgo::kIm2row;
  conv.in_channels = 3;
  conv.out_channels = 8;
  conv.kernel = 3;
  conv.pad = 1;
  conv.input_scale = 0.05F;
  conv.output_scale = 0.1F;
  conv.relu_after = true;
  conv.weights_q = backend::quantize_s8(Tensor::randn({8, 3, 3, 3}, rng, 0.3F));

  LinearStage fc;
  fc.input_scale = 0.1F;
  fc.output_scale = 0.2F;
  fc.weights_q = backend::quantize_s8(Tensor::randn({out_classes, 8 * 4 * 4}, rng, 0.2F));

  Int8Pipeline pipe;
  pipe.push(std::move(conv));
  pipe.push(PoolStage{2, 2});
  pipe.push(FlattenStage{});
  pipe.push(std::move(fc));
  EXPECT_TRUE(pipe.all_scales_frozen());
  return pipe;
}

Tensor request_input(Rng& rng, std::int64_t n = 1) { return Tensor::randn({n, 3, 8, 8}, rng); }

// ---- basic correctness ------------------------------------------------------

TEST(InferenceServer, ServesExactlyWhatRunProduces) {
  Rng rng(41);
  Int8Pipeline pipe = tiny_pipeline(rng);
  const Int8Pipeline reference = pipe;  // value copy: the server adopts `pipe`

  ServerOptions opts;
  opts.workers = 2;
  InferenceServer server(opts);
  server.add_model("tiny", std::move(pipe));
  EXPECT_EQ(server.model_names(), std::vector<std::string>{"tiny"});

  std::vector<Tensor> inputs;
  std::vector<std::future<Tensor>> futures;
  for (const std::int64_t n : {1, 3, 1, 2, 4}) {
    inputs.push_back(request_input(rng, n));
    futures.push_back(server.submit("tiny", inputs.back()));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const Tensor got = futures[i].get();
    const Tensor want = reference.run(inputs[i]);
    ASSERT_EQ(got.shape(), want.shape()) << "request " << i;
    EXPECT_EQ(Tensor::max_abs_diff(got, want), 0.F) << "request " << i;
  }
  const ModelStats s = server.stats("tiny");
  EXPECT_EQ(s.requests, 5u);
  EXPECT_EQ(s.samples, 11u);
  EXPECT_EQ(s.failed, 0u);
  EXPECT_GT(s.latency.p50_ms, 0.0);
  EXPECT_GE(s.latency.p99_ms, s.latency.p50_ms);
}

TEST(InferenceServer, CoalescesQueuedRequestsIntoMicroBatches) {
  Rng rng(42);
  Int8Pipeline pipe = tiny_pipeline(rng);
  const Int8Pipeline reference = pipe;

  ServerOptions opts;
  opts.workers = 1;
  opts.batch.max_batch = 4;
  opts.batch.max_delay_us = 50'000;  // plenty of linger for a tight submit loop
  InferenceServer server(opts);
  server.add_model("tiny", std::move(pipe));

  std::vector<Tensor> inputs;
  std::vector<std::future<Tensor>> futures;
  for (int i = 0; i < 8; ++i) {
    inputs.push_back(request_input(rng));
    futures.push_back(server.submit("tiny", inputs.back()));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    EXPECT_EQ(Tensor::max_abs_diff(futures[i].get(), reference.run(inputs[i])), 0.F)
        << "coalescing must not change request " << i << "'s logits";
  }
  const ModelStats s = server.stats("tiny");
  EXPECT_EQ(s.requests, 8u);
  EXPECT_EQ(s.samples, 8u);
  EXPECT_LT(s.batches, s.requests) << "a lingering scheduler must coalesce a tight burst";
  std::uint64_t hist_samples = 0;
  for (std::size_t k = 1; k < s.batch_size_hist.size(); ++k) {
    hist_samples += k * s.batch_size_hist[k];
  }
  EXPECT_EQ(hist_samples, s.samples) << "histogram must account for every sample";
}

TEST(InferenceServer, MixedShapesAreNeverCoalescedTogether) {
  Rng rng(43);
  // Headless conv->pool->flatten pipeline: accepts any spatial size, so two
  // request shapes are both valid yet must not share a forward.
  Int8Pipeline pipe;
  {
    ConvStage conv;
    conv.algo = nn::ConvAlgo::kIm2row;
    conv.in_channels = 3;
    conv.out_channels = 8;
    conv.kernel = 3;
    conv.pad = 1;
    conv.input_scale = 0.05F;
    conv.output_scale = 0.1F;
    conv.relu_after = true;
    conv.weights_q = backend::quantize_s8(Tensor::randn({8, 3, 3, 3}, rng, 0.3F));
    pipe.push(std::move(conv));
    pipe.push(PoolStage{2, 2});
    pipe.push(FlattenStage{});
  }
  const Int8Pipeline reference = pipe;

  ServerOptions opts;
  opts.workers = 1;
  opts.batch.max_batch = 8;
  opts.batch.max_delay_us = 20'000;
  InferenceServer server(opts);
  server.add_model("tiny", std::move(pipe));

  // 8x8 and 6x6 inputs interleaved: both are valid for the conv stage but
  // cannot share a forward; FIFO order must still hold per shape.
  std::vector<Tensor> inputs;
  std::vector<std::future<Tensor>> futures;
  for (int i = 0; i < 6; ++i) {
    inputs.push_back(i % 2 == 0 ? Tensor::randn({1, 3, 8, 8}, rng) : Tensor::randn({1, 3, 6, 6}, rng));
    futures.push_back(server.submit("tiny", inputs.back()));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    EXPECT_EQ(Tensor::max_abs_diff(futures[i].get(), reference.run(inputs[i])), 0.F)
        << "request " << i;
  }
}

// ---- backpressure -----------------------------------------------------------

TEST(InferenceServer, TrySubmitRejectsWhenQueueIsFull) {
  Rng rng(44);
  Int8Pipeline pipe = tiny_pipeline(rng);

  ServerOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 2;
  opts.batch.max_batch = 64;          // never fills from 3 requests...
  opts.batch.max_delay_us = 200'000;  // ...so the worker lingers, queue stays full
  InferenceServer server(opts);
  server.add_model("tiny", std::move(pipe));

  auto f1 = server.try_submit("tiny", request_input(rng));
  auto f2 = server.try_submit("tiny", request_input(rng));
  ASSERT_TRUE(f1.has_value());
  ASSERT_TRUE(f2.has_value());
  auto f3 = server.try_submit("tiny", request_input(rng));
  EXPECT_FALSE(f3.has_value()) << "third request must bounce off the bounded queue";
  EXPECT_GE(server.stats("tiny").rejected, 1u);

  // The queued work still completes once the linger deadline fires.
  f1->get();
  f2->get();
  EXPECT_EQ(server.stats("tiny").requests, 2u);
}

// ---- registry and lifecycle -------------------------------------------------

TEST(InferenceServer, RejectsUnknownModelsEmptyAndDynamicPipelines) {
  Rng rng(45);
  InferenceServer server;
  EXPECT_THROW(server.submit("nope", request_input(rng)), std::invalid_argument);
  EXPECT_THROW(server.stats("nope"), std::invalid_argument);
  EXPECT_THROW(server.add_model("empty", Int8Pipeline{}), std::invalid_argument);

  // A pipeline whose logits stage re-derives its scale per batch would let
  // coalesced neighbours perturb each other — registration must refuse.
  Int8Pipeline dynamic = tiny_pipeline(rng);
  {
    ConvStage head;
    head.algo = nn::ConvAlgo::kIm2row;
    head.in_channels = 3;
    head.out_channels = 3;
    head.kernel = 3;
    head.pad = 1;
    head.input_scale = 0.05F;
    head.output_scale = -1.F;  // dynamic
    head.weights_q = backend::quantize_s8(Tensor::randn({3, 3, 3, 3}, rng, 0.3F));
    Int8Pipeline p;
    p.push(std::move(head));
    try {
      server.add_model("dyn", std::move(p));
      FAIL() << "expected invalid_argument";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("freeze_scales"), std::string::npos) << e.what();
    }
  }

  server.add_model("ok", tiny_pipeline(rng));
  EXPECT_THROW(server.add_model("ok", tiny_pipeline(rng)), std::invalid_argument)
      << "duplicate names must be rejected";
}

TEST(InferenceServer, RoutesBetweenModelsAndDrainsOnShutdown) {
  Rng rng(46);
  Int8Pipeline a = tiny_pipeline(rng, 10);
  Int8Pipeline b = tiny_pipeline(rng, 7);
  const Int8Pipeline ref_a = a;
  const Int8Pipeline ref_b = b;

  ServerOptions opts;
  opts.workers = 1;
  opts.batch.max_delay_us = 100'000;  // queue builds up before shutdown drains it
  InferenceServer server(opts);
  server.add_model("a", std::move(a));
  server.add_model("b", std::move(b));

  std::vector<Tensor> inputs;
  std::vector<std::future<Tensor>> futures;
  std::vector<const Int8Pipeline*> refs;
  for (int i = 0; i < 6; ++i) {
    inputs.push_back(request_input(rng));
    refs.push_back(i % 2 == 0 ? &ref_a : &ref_b);
    futures.push_back(server.submit(i % 2 == 0 ? "a" : "b", inputs.back()));
  }
  server.shutdown();  // must complete every queued request before joining
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const Tensor got = futures[i].get();
    EXPECT_EQ(Tensor::max_abs_diff(got, refs[i]->run(inputs[i])), 0.F) << "request " << i;
  }
  EXPECT_THROW(server.submit("a", request_input(rng)), std::runtime_error)
      << "submissions after shutdown must fail loudly";
}

TEST(InferenceServer, ForwardErrorsPropagateThroughTheFuture) {
  Rng rng(47);
  InferenceServer server;
  server.add_model("tiny", tiny_pipeline(rng));
  // Wrong channel count: the pipeline's own validation throws inside the
  // worker; the future must carry that exception, not hang or crash.
  auto fut = server.submit("tiny", Tensor::randn({1, 5, 8, 8}, rng));
  EXPECT_THROW(fut.get(), std::invalid_argument);
  EXPECT_EQ(server.stats("tiny").failed, 1u);
}

// ---- the headline contract: hammer == single-threaded run -------------------

TEST(InferenceServer, HammerNClientsTimesMRequestsMatchesRunExactly) {
  Rng rng(48);
  Int8Pipeline pipe = tiny_pipeline(rng);
  const Int8Pipeline reference = pipe;

  ServerOptions opts;
  opts.workers = 4;
  opts.batch.max_batch = 8;
  opts.batch.max_delay_us = 200;
  InferenceServer server(opts);
  server.add_model("tiny", std::move(pipe));

  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 32;

  // Pre-generate every input and its single-threaded reference so client
  // threads only submit and compare.
  std::vector<std::vector<Tensor>> inputs(kClients);
  std::vector<std::vector<Tensor>> want(kClients);
  for (int c = 0; c < kClients; ++c) {
    for (int i = 0; i < kRequestsPerClient; ++i) {
      inputs[c].push_back(request_input(rng, 1 + (c + i) % 3));
      want[c].push_back(reference.run(inputs[c].back()));
    }
  }

  const auto counters_before = snapshot_counters();
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::vector<std::future<Tensor>> futures;
      futures.reserve(inputs[c].size());
      for (const Tensor& in : inputs[c]) futures.push_back(server.submit("tiny", in));
      for (std::size_t i = 0; i < futures.size(); ++i) {
        const Tensor got = futures[i].get();
        if (got.shape() != want[c][i].shape() ||
            Tensor::max_abs_diff(got, want[c][i]) != 0.F) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(mismatches.load(), 0)
      << "coalesced concurrent serving must be bit-identical to run()";
  EXPECT_EQ(snapshot_counters(), counters_before)
      << "no weight transform/repack may happen while serving";
  const ModelStats s = server.stats("tiny");
  EXPECT_EQ(s.requests, static_cast<std::uint64_t>(kClients * kRequestsPerClient));
  EXPECT_EQ(s.failed, 0u);
  EXPECT_EQ(s.queue_depth, 0u);
}

// ---- register/unregister soak -----------------------------------------------

// The lifecycle race the registry must survive (run under TSan in CI):
// mixed submit/try_submit traffic against stable models while a churn
// thread registers and unregisters a third model the whole time. Contract:
// every accepted future resolves (value or exception — never lost), results
// for the stable models stay bit-identical to single-threaded run(), only
// the churned model may fail requests, the perf counters stay flat (no
// hidden re-preparation anywhere in the lifecycle), and the stats ledger
// balances at the end.
TEST(InferenceServer, RegisterUnregisterSoakNeverLosesAFuture) {
  Rng rng(61);
  Int8Pipeline pa = tiny_pipeline(rng, 10);
  Int8Pipeline pb = tiny_pipeline(rng, 7);
  const Int8Pipeline ref_a = pa;
  const Int8Pipeline ref_b = pb;
  const Int8Pipeline ref_c = tiny_pipeline(rng, 4);  // churned; re-registered by copy

  std::vector<Tensor> inputs;
  for (const std::int64_t n : {1, 2, 1, 3}) inputs.push_back(request_input(rng, n));
  std::vector<std::vector<Tensor>> want(3);
  for (const Tensor& in : inputs) {
    want[0].push_back(ref_a.run(in));
    want[1].push_back(ref_b.run(in));
    want[2].push_back(ref_c.run(in));
  }

  ServerOptions opts;
  opts.workers = 3;
  opts.queue_capacity = 8;  // small: backpressure and try_submit rejections do happen
  opts.batch.max_batch = 4;
  opts.batch.max_delay_us = 200;
  InferenceServer server(opts);
  server.add_model("a", std::move(pa));
  server.add_model("b", std::move(pb));

  const auto counters_before = snapshot_counters();

  struct Pending {
    int model;
    std::size_t input;
    std::future<Tensor> fut;
  };
  std::mutex pending_mu;
  std::vector<Pending> pending;
  std::atomic<int> submit_refusals{0};  // throws for the churned model — allowed
  std::atomic<int> queue_rejections{0};

  constexpr int kClients = 4;
  constexpr int kRounds = 150;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      std::mt19937 r(100u + static_cast<unsigned>(t));
      for (int i = 0; i < kRounds; ++i) {
        const int model = static_cast<int>(r() % 3u);
        const char* name = model == 0 ? "a" : (model == 1 ? "b" : "c");
        const std::size_t idx = r() % inputs.size();
        try {
          if (r() % 2 == 0) {
            Pending p{model, idx, server.submit(name, inputs[idx])};
            std::lock_guard<std::mutex> lk(pending_mu);
            pending.push_back(std::move(p));
          } else if (auto fut = server.try_submit(name, inputs[idx])) {
            Pending p{model, idx, std::move(*fut)};
            std::lock_guard<std::mutex> lk(pending_mu);
            pending.push_back(std::move(p));
          } else {
            queue_rejections.fetch_add(1, std::memory_order_relaxed);
          }
        } catch (const std::invalid_argument&) {
          // "c" between unregister and the next register — by contract.
          submit_refusals.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::thread churn([&] {
    for (int i = 0; i < 40; ++i) {
      server.add_model("c", ref_c);  // value copy: prepared stages, no repacks
      std::this_thread::sleep_for(std::chrono::microseconds(400));
      server.remove_model("c");
    }
  });
  for (std::thread& t : clients) t.join();
  churn.join();

  std::size_t resolved_ok = 0, failed_churned = 0, failed_stable = 0;
  for (Pending& p : pending) {
    try {
      const Tensor got = p.fut.get();
      const Tensor& expect = want[static_cast<std::size_t>(p.model)][p.input];
      if (got.shape() != expect.shape() || Tensor::max_abs_diff(got, expect) != 0.F) {
        ADD_FAILURE() << "model " << p.model << " input " << p.input << ": logits diverged";
      }
      ++resolved_ok;
    } catch (const std::exception&) {
      (p.model == 2 ? failed_churned : failed_stable) += 1;
    }
  }
  EXPECT_EQ(failed_stable, 0u) << "requests for never-removed models must all succeed";
  EXPECT_EQ(resolved_ok + failed_churned + failed_stable, pending.size())
      << "every accepted future must resolve";
  EXPECT_EQ(snapshot_counters(), counters_before)
      << "registry churn must not re-transform or repack any weights";

  // Ledger balance on the stable models: accepted == completed, and the
  // measured peak-activation stat is live once traffic flowed.
  for (const char* name : {"a", "b"}) {
    const ModelStats s = server.stats(name);
    EXPECT_EQ(s.failed, 0u) << name;
    EXPECT_EQ(s.queue_depth, 0u) << name;
    if (s.requests > 0) {
      EXPECT_GT(s.peak_activation_bytes, 0) << name;
    }
  }
  // The churned model ends unregistered: stats must say unknown, and a late
  // submit must be refused, not crash.
  EXPECT_THROW(server.stats("c"), std::invalid_argument);
  EXPECT_THROW(server.submit("c", inputs[0]), std::invalid_argument);

  // Gauge-drift regression: after the dust settles, every model's exported
  // queue-depth gauge must read exactly zero — failed dispatches, removals
  // and churn must never leave residue in the live series (the on-call
  // dashboard's "is work stuck?" signal).
  auto& reg = telemetry::Registry::global();
  for (const char* name : {"a", "b", "c"}) {
    EXPECT_EQ(reg.gauge(std::string("wa_serve_queue_depth{model=\"") + name + "\"}").value(),
              0.0)
        << "queue_depth gauge drifted for model " << name;
  }
}

// ---- admission control ------------------------------------------------------

TEST(InferenceServer, HighPriorityDispatchesBeforeAQueuedLowBurst) {
  Rng rng(81);
  Int8Pipeline pipe = tiny_pipeline(rng);

  ServerOptions opts;
  opts.workers = 1;  // one worker: dispatch order IS pop order
  opts.batch.max_batch = 1;
  opts.batch.max_delay_us = 0;
  InferenceServer server(opts);
  server.add_model("tiny", std::move(pipe));

  // Occupy the worker, then stack three more heavy normal-priority blockers
  // behind it: the whole burst below is submitted while the worker is still
  // chewing blocker work, so pop order is decided purely by priority. The
  // blockers themselves gate the lows too (normal > low) and the late highs
  // jump everything, so the extra requests never perturb the ranks asserted.
  auto blocker = server.submit("tiny", request_input(rng, 64));
  std::vector<std::future<Tensor>> blockers;
  for (int i = 0; i < 3; ++i) {
    blockers.push_back(server.submit("tiny", request_input(rng, 256)));
  }

  std::atomic<int> next_rank{0};
  std::vector<int> low_rank(20, -1), high_rank(4, -1);
  std::vector<std::future<void>> done;
  const auto submit_ranked = [&](Priority prio, int* slot) {
    auto promise = std::make_shared<std::promise<void>>();
    done.push_back(promise->get_future());
    SubmitOptions so;
    so.priority = prio;
    const Admission a = server.submit_async(
        "tiny", request_input(rng), so,
        [&next_rank, slot, promise](std::exception_ptr err, Tensor) {
          if (err == nullptr) *slot = next_rank.fetch_add(1);
          promise->set_value();
        });
    ASSERT_EQ(a, Admission::kAccepted);
  };
  // The low burst arrives FIRST — strict priority must still dispatch the
  // late-arriving high requests ahead of all of it.
  for (int i = 0; i < 20; ++i) submit_ranked(Priority::kLow, &low_rank[i]);
  for (int i = 0; i < 4; ++i) submit_ranked(Priority::kHigh, &high_rank[i]);

  blocker.get();
  for (auto& f : blockers) f.get();
  for (auto& f : done) f.get();

  int max_high = -1, min_low = 1000;
  for (const int r : high_rank) max_high = std::max(max_high, r);
  for (const int r : low_rank) min_low = std::min(min_low, r);
  EXPECT_LT(max_high, min_low)
      << "every high-priority request must complete before the first low one";

  const ModelStats s = server.stats("tiny");
  EXPECT_EQ(s.class_requests[0], 4u);
  EXPECT_EQ(s.class_requests[2], 20u);
}

// ---- stats windowing across re-registration ---------------------------------

TEST(InferenceServer, StatsWindowResetsWhenAModelIsReAdded) {
  Rng rng(71);
  Int8Pipeline pipe = tiny_pipeline(rng);
  const Int8Pipeline copy = pipe;

  InferenceServer server;
  server.add_model("m", std::move(pipe));
  for (int i = 0; i < 6; ++i) {
    server.submit("m", request_input(rng)).get();
  }
  const ModelStats before = server.stats("m");
  EXPECT_EQ(before.requests, 6u);
  EXPECT_GT(before.latency.p50_ms, 0.0);

  // remove_model blocks until the last in-flight dispatch is accounted, so
  // the re-registration below captures a baseline no straggler can race.
  server.remove_model("m");
  server.add_model("m", copy);

  // Regression (stats-staleness bug): the fresh incarnation must start a
  // clean window — zero counters and zero quantiles, never the previous
  // incarnation's numbers and never negative values from a baseline that
  // outran the series.
  const ModelStats fresh = server.stats("m");
  EXPECT_EQ(fresh.requests, 0u);
  EXPECT_EQ(fresh.samples, 0u);
  EXPECT_EQ(fresh.batches, 0u);
  EXPECT_EQ(fresh.failed, 0u);
  EXPECT_EQ(fresh.queue_depth, 0u);
  EXPECT_EQ(fresh.latency.p50_ms, 0.0);
  EXPECT_EQ(fresh.latency.p95_ms, 0.0);
  EXPECT_EQ(fresh.latency.p99_ms, 0.0);
  EXPECT_EQ(fresh.latency.mean_ms, 0.0);
  EXPECT_EQ(fresh.latency.max_ms, 0.0);

  // And the new window counts only new traffic.
  for (int i = 0; i < 3; ++i) {
    server.submit("m", request_input(rng)).get();
  }
  const ModelStats after = server.stats("m");
  EXPECT_EQ(after.requests, 3u);
  EXPECT_GE(after.latency.p50_ms, 0.0);
  EXPECT_GE(after.latency.mean_ms, 0.0);
  EXPECT_GE(after.latency.p99_ms, after.latency.p50_ms);

  // The exported Prometheus series, by contrast, stays cumulative across
  // the re-registration (same registry cells).
  const auto snap = telemetry::Registry::global().snapshot();
  const auto* total = snap.find("wa_serve_requests_total{model=\"m\"}");
  ASSERT_NE(total, nullptr);
  EXPECT_GE(total->value, 9.0);
}

}  // namespace
}  // namespace wa::serve
