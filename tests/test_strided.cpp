// Tests for stride-2 convolution via polyphase decomposition with a
// Winograd fast path (the paper's "open research question", §5.1).
#include <gtest/gtest.h>

#include "winograd/strided.hpp"

namespace wa::wino {
namespace {

TEST(PolyphaseSplit, ComponentsCoverEveryTapOnce) {
  Rng rng(1);
  const Tensor g = Tensor::randn({5, 5}, rng);
  const auto phases = polyphase_split(g);
  EXPECT_EQ(phases.g[0][0].shape(), (Shape{3, 3}));
  EXPECT_EQ(phases.g[0][1].shape(), (Shape{3, 2}));
  EXPECT_EQ(phases.g[1][0].shape(), (Shape{2, 3}));
  EXPECT_EQ(phases.g[1][1].shape(), (Shape{2, 2}));
  std::int64_t taps = 0;
  for (int s = 0; s < 2; ++s)
    for (int t = 0; t < 2; ++t) taps += phases.g[s][t].numel();
  EXPECT_EQ(taps, 25);
  // Spot-check the mapping g_st[a,b] = g[2a+s, 2b+t].
  EXPECT_FLOAT_EQ(phases.g[1][0](1, 2), g(3, 4));
  EXPECT_FLOAT_EQ(phases.g[0][1](2, 0), g(4, 1));
}

TEST(PolyphaseSplit, RejectsNon2d) {
  Rng rng(2);
  EXPECT_THROW(polyphase_split(Tensor::randn({3, 3, 3}, rng)), std::invalid_argument);
}

TEST(Subsample2, ExtractsPhases) {
  const Tensor x({3, 4}, {0, 1, 2, 3, 10, 11, 12, 13, 20, 21, 22, 23});
  const Tensor even = subsample2(x, 0, 0);
  EXPECT_EQ(even.shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ(even(1, 1), 22.F);
  const Tensor odd = subsample2(x, 1, 1);
  EXPECT_EQ(odd.shape(), (Shape{1, 2}));
  EXPECT_FLOAT_EQ(odd(0, 0), 11.F);
  EXPECT_THROW(subsample2(x, 2, 0), std::invalid_argument);
}

TEST(Stride2Direct, MatchesHandComputedExample) {
  // 4x4 input, 3x3 ones filter, stride 2 -> single output = sum of the
  // top-left 3x3 block.
  Rng rng(3);
  Tensor x = Tensor::randn({4, 4}, rng);
  const Tensor g = Tensor::ones({3, 3});
  const Tensor y = conv2d_stride2_direct(x, g);
  EXPECT_EQ(y.shape(), (Shape{1, 1}));
  double expect = 0;
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) expect += x(i, j);
  EXPECT_NEAR(y(0, 0), expect, 1e-5);
}

class PolyphaseEquivalence
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t, std::int64_t, bool>> {};

TEST_P(PolyphaseEquivalence, MatchesDirectStride2) {
  const auto [h, w, r, winograd] = GetParam();
  Rng rng(static_cast<std::uint64_t>(h * 1000 + w * 10 + r));
  const Tensor x = Tensor::randn({h, w}, rng);
  const Tensor g = Tensor::randn({r, r}, rng);
  const Tensor ref = conv2d_stride2_direct(x, g);
  const Tensor got = conv2d_stride2_polyphase(x, g, winograd);
  EXPECT_EQ(ref.shape(), got.shape());
  EXPECT_LE(Tensor::max_abs_diff(ref, got), 1e-3F)
      << h << "x" << w << " r=" << r << " wino=" << winograd;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PolyphaseEquivalence,
    ::testing::Values(std::tuple{8, 8, 3, false}, std::tuple{8, 8, 3, true},
                      std::tuple{9, 11, 3, true}, std::tuple{12, 12, 3, true},
                      std::tuple{11, 11, 5, false}, std::tuple{11, 11, 5, true},
                      std::tuple{16, 13, 5, true}, std::tuple{7, 7, 5, true},
                      std::tuple{6, 6, 1, true}));

TEST(PolyphaseEquivalence, LargerOutputTileStillMatches) {
  Rng rng(4);
  const Tensor x = Tensor::randn({20, 20}, rng);
  const Tensor g = Tensor::randn({5, 5}, rng);
  const Tensor ref = conv2d_stride2_direct(x, g);
  const Tensor got = conv2d_stride2_polyphase(x, g, true, /*m_out=*/4);
  EXPECT_LE(Tensor::max_abs_diff(ref, got), 1e-3F);
}

TEST(PolyphaseEquivalence, TooSmallInputThrows) {
  Rng rng(5);
  const Tensor x = Tensor::randn({2, 2}, rng);
  const Tensor g = Tensor::randn({3, 3}, rng);
  EXPECT_THROW(conv2d_stride2_polyphase(x, g), std::invalid_argument);
  EXPECT_THROW(conv2d_stride2_direct(x, g), std::invalid_argument);
}

TEST(Stride2Cost, WinogradPathSavesMultiplications) {
  // 5x5 stride-2 on a 32x32 input: the 3x3 polyphase component through
  // F(2x2, 3x3) replaces 9 mults per output with 4 on that component.
  const Stride2Cost c = stride2_cost(32, 32, 5);
  EXPECT_EQ(c.polyphase_direct_macs, c.direct_macs);  // rewrite is free
  EXPECT_LT(c.polyphase_winograd_macs, static_cast<double>(c.direct_macs));
  EXPECT_GT(c.winograd_speedup(), 1.15);
}

TEST(Stride2Cost, BiggerTilesSaveMore) {
  const Stride2Cost m2 = stride2_cost(64, 64, 5, 2);
  const Stride2Cost m4 = stride2_cost(64, 64, 5, 4);
  EXPECT_LT(m4.polyphase_winograd_macs, m2.polyphase_winograd_macs);
}

TEST(Stride2Cost, RejectsBadGeometry) {
  EXPECT_THROW(stride2_cost(2, 2, 3), std::invalid_argument);
  EXPECT_THROW(stride2_cost(8, 8, 1), std::invalid_argument);
}

}  // namespace
}  // namespace wa::wino
