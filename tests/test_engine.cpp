// Tests for the cached-weight, arena-backed inference engine: prepared
// kernels must match the per-call paths bit-for-bit, U = G g Gᵀ must be
// computed once per layer (never per forward), and the scratch arena must
// reuse its capacity across calls.
#include <gtest/gtest.h>

#include "backend/conv_kernels.hpp"
#include "backend/conv_kernels_s8.hpp"
#include "backend/perf_counters.hpp"
#include "core/wa_conv_op.hpp"
#include "deploy/pipeline.hpp"
#include "tensor/arena.hpp"
#include "winograd/cook_toom.hpp"

namespace wa {
namespace {

using backend::ConvGeometry;
using backend::PerfCounters;
using backend::QTensor;

ConvGeometry geo(std::int64_t n, std::int64_t c, std::int64_t hw, std::int64_t k) {
  ConvGeometry g;
  g.batch = n;
  g.in_channels = c;
  g.height = hw;
  g.width = hw;
  g.out_channels = k;
  g.kernel = 3;
  g.pad = 1;
  return g;
}

std::uint64_t transforms_run() {
  return PerfCounters::weight_transforms.load(std::memory_order_relaxed);
}

// ---- arena ------------------------------------------------------------------

TEST(ScratchArena, ReusesCapacityAcrossScopes) {
  ScratchArena arena;
  float* first = nullptr;
  {
    ScratchArena::Scope frame(arena);
    first = arena.alloc<float>(1000);
    ASSERT_NE(first, nullptr);
    first[999] = 1.F;  // the span is writable
  }
  const std::size_t cap = arena.capacity();
  EXPECT_GT(cap, 0u);
  {
    ScratchArena::Scope frame(arena);
    float* second = arena.alloc<float>(1000);
    EXPECT_EQ(second, first) << "rewound arena should hand back the same storage";
  }
  EXPECT_EQ(arena.capacity(), cap) << "no growth for a repeated identical pass";
}

TEST(ScratchArena, GrowsAndAligns) {
  ScratchArena arena;
  ScratchArena::Scope frame(arena);
  for (const std::int64_t n : {3, 17, 100000, 5}) {
    auto* p = arena.alloc<std::int32_t>(n);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
    p[n - 1] = 7;
  }
}

TEST(ScratchArena, NestedScopesRewindToTheirOwnMark) {
  ScratchArena arena;
  ScratchArena::Scope outer(arena);
  float* a = arena.alloc<float>(64);
  float* inner_ptr = nullptr;
  {
    ScratchArena::Scope inner(arena);
    inner_ptr = arena.alloc<float>(64);
    EXPECT_NE(inner_ptr, a);
  }
  EXPECT_EQ(arena.alloc<float>(64), inner_ptr) << "inner frame should have been rewound";
}

// ---- prepared kernels == per-call kernels ----------------------------------

TEST(Engine, PreparedWinogradS8MatchesPerCall) {
  Rng rng(21);
  const auto g = geo(2, 5, 9, 7);
  const auto tr = wino::make_transforms(2, 3);
  const Tensor w = Tensor::randn({g.out_channels, g.in_channels, 3, 3}, rng, 0.4F);
  const Tensor x = Tensor::randn({g.batch, g.in_channels, g.height, g.width}, rng);
  const Tensor b = Tensor::randn({g.out_channels}, rng);
  const QTensor qx = backend::quantize_s8(x);

  const QTensor seed = backend::winograd_conv_s8(qx, w, g, tr, {}, &b);
  const auto prepared = backend::prepare_winograd_weights_s8(w, tr);
  backend::WinogradStageScales scales;
  scales.weights_transformed = prepared.scale;
  const QTensor cached = backend::winograd_conv_s8_prepared(qx, prepared, g, tr, scales, &b);

  EXPECT_FLOAT_EQ(cached.scale, seed.scale);
  ASSERT_EQ(cached.shape, seed.shape);
  EXPECT_EQ(cached.data, seed.data) << "cached-U path must be bit-identical";
}

TEST(Engine, PreparedIm2rowS8MatchesPerCall) {
  Rng rng(22);
  const auto g = geo(1, 4, 8, 6);
  const Tensor w = Tensor::randn({g.out_channels, g.in_channels, 3, 3}, rng, 0.4F);
  const Tensor x = Tensor::randn({g.batch, g.in_channels, g.height, g.width}, rng);
  const QTensor qx = backend::quantize_s8(x);
  const QTensor qw = backend::quantize_s8(w);

  const QTensor seed = backend::im2row_conv_s8(qx, qw, g);
  const QTensor cached = backend::im2row_conv_s8_prepared(qx, backend::prepare_im2row_weights_s8(qw), g);
  EXPECT_FLOAT_EQ(cached.scale, seed.scale);
  EXPECT_EQ(cached.data, seed.data);
}

TEST(Engine, PreparedFp32WinogradMatchesPerCall) {
  Rng rng(23);
  const auto g = geo(2, 3, 10, 4);
  const auto tr = wino::make_transforms(4, 3);
  const Tensor w = Tensor::randn({g.out_channels, g.in_channels, 3, 3}, rng, 0.4F);
  const Tensor x = Tensor::randn({g.batch, g.in_channels, g.height, g.width}, rng);

  const Tensor seed = backend::winograd_conv(x, w, g, tr);
  const Tensor u = backend::winograd_transform_weights(w, tr);
  const Tensor cached = backend::winograd_conv_prepared(x, u, g, tr);
  EXPECT_EQ(Tensor::max_abs_diff(seed, cached), 0.F);
}

TEST(Engine, PreparedKernelsRejectMismatchedGeometry) {
  Rng rng(24);
  const auto g = geo(1, 4, 8, 6);
  const auto tr = wino::make_transforms(2, 3);
  const Tensor w = Tensor::randn({g.out_channels, g.in_channels, 3, 3}, rng);
  const auto prepared = backend::prepare_winograd_weights_s8(w, tr);
  auto bad = geo(1, 4, 8, 5);  // wrong out_channels
  QTensor qx = backend::quantize_s8(Tensor::randn({1, 4, 8, 8}, rng));
  EXPECT_THROW(backend::winograd_conv_s8_prepared(qx, prepared, bad, tr),
               std::invalid_argument);
}

// ---- no per-forward weight transforms --------------------------------------

TEST(Engine, PreparedPathNeverRetransformsWeights) {
  Rng rng(25);
  const auto g = geo(1, 6, 12, 8);
  const auto tr = wino::make_transforms(2, 3);
  const Tensor w = Tensor::randn({g.out_channels, g.in_channels, 3, 3}, rng, 0.4F);
  const QTensor qx = backend::quantize_s8(Tensor::randn({1, 6, 12, 12}, rng));

  const auto prepared = backend::prepare_winograd_weights_s8(w, tr);
  const std::uint64_t before = transforms_run();
  for (int i = 0; i < 5; ++i) backend::winograd_conv_s8_prepared(qx, prepared, g, tr);
  EXPECT_EQ(transforms_run(), before) << "prepared forwards must not rebuild U";

  backend::winograd_conv_s8(qx, w, g, tr);  // the seed per-call path does
  EXPECT_EQ(transforms_run(), before + 1);
}

TEST(Engine, PipelinePreparesWeightsAtLoadOnly) {
  Rng rng(26);
  const auto tr = wino::make_transforms(2, 3);
  deploy::ConvStage st;
  st.algo = nn::ConvAlgo::kWinograd2;
  st.in_channels = 3;
  st.out_channels = 5;
  st.kernel = 3;
  st.pad = 1;
  st.input_scale = 0.05F;
  st.weights_f = Tensor::randn({5, 3, 3, 3}, rng, 0.4F);
  st.transforms = tr;
  st.output_scale = 0.1F;

  deploy::Int8Pipeline pipe;
  const std::uint64_t before = transforms_run();
  pipe.push(std::move(st));
  EXPECT_EQ(transforms_run(), before + 1) << "push() builds U exactly once";

  const Tensor x = Tensor::randn({2, 3, 8, 8}, rng);
  const Tensor y1 = pipe.run(x);
  const Tensor y2 = pipe.run(x);
  EXPECT_EQ(transforms_run(), before + 1) << "forwards must reuse the cached U";
  EXPECT_EQ(Tensor::max_abs_diff(y1, y2), 0.F);
}

TEST(Engine, CoreOpCachesUAcrossEvalForwards) {
  Rng rng(27);
  backend::ConvGeometry g = geo(1, 3, 8, 4);
  const auto tr = wino::make_transforms(2, 3);
  ag::Variable x(Tensor::randn({1, 3, 8, 8}, rng), false);
  ag::Variable w(Tensor::randn({4, 3, 3, 3}, rng, 0.4F), false);
  ag::Variable gm(tr.g_mat, false), btm(tr.bt_mat, false), atm(tr.at_mat, false);
  core::WaQuantStages stages;
  stages.spec = quant::QuantSpec{8};

  // Warm the observers once (training), then eval twice: one transform for
  // the warm-up, one for the first eval forward, none for the second.
  core::winograd_aware_conv2d(x, w, ag::Variable(), gm, btm, atm, g, 2, stages, true);
  const std::uint64_t before = transforms_run();
  const Tensor y1 =
      core::winograd_aware_conv2d(x, w, ag::Variable(), gm, btm, atm, g, 2, stages, false).value();
  EXPECT_EQ(transforms_run(), before + 1);
  const Tensor y2 =
      core::winograd_aware_conv2d(x, w, ag::Variable(), gm, btm, atm, g, 2, stages, false).value();
  EXPECT_EQ(transforms_run(), before + 1) << "second eval forward must hit the U cache";
  EXPECT_EQ(Tensor::max_abs_diff(y1, y2), 0.F);

  // Editing the weights must invalidate the cache (content-keyed).
  w.value().at(0) += 0.25F;
  const Tensor y3 =
      core::winograd_aware_conv2d(x, w, ag::Variable(), gm, btm, atm, g, 2, stages, false).value();
  EXPECT_EQ(transforms_run(), before + 2) << "weight edit must recompute U";
  EXPECT_GT(Tensor::max_abs_diff(y1, y3), 0.F);

  // Training forwards never consult the cache (observers must observe).
  core::winograd_aware_conv2d(x, w, ag::Variable(), gm, btm, atm, g, 2, stages, true);
  core::winograd_aware_conv2d(x, w, ag::Variable(), gm, btm, atm, g, 2, stages, true);
  EXPECT_EQ(transforms_run(), before + 4);
}

// ---- batched engine ---------------------------------------------------------

TEST(Engine, RunBatchedMatchesRun) {
  Rng rng(28);
  const auto tr = wino::make_transforms(2, 3);
  deploy::ConvStage st;
  st.algo = nn::ConvAlgo::kWinograd2;
  st.in_channels = 2;
  st.out_channels = 4;
  st.kernel = 3;
  st.pad = 1;
  st.input_scale = 0.05F;
  st.weights_f = Tensor::randn({4, 2, 3, 3}, rng, 0.4F);
  st.transforms = tr;
  // Freeze every stage scale so micro-batches cannot re-derive them from
  // their own chunk statistics.
  st.stage_scales.input_transformed = 0.06F;
  st.stage_scales.hadamard = 0.02F;
  st.stage_scales.output = 0.08F;
  st.output_scale = 0.08F;

  deploy::Int8Pipeline pipe;
  pipe.push(std::move(st));

  const Tensor x = Tensor::randn({7, 2, 8, 8}, rng);
  const Tensor whole = pipe.run(x);
  for (const std::int64_t mb : {1, 2, 3, 7, 100}) {
    const Tensor chunked = pipe.run_batched(x, mb);
    ASSERT_EQ(chunked.shape(), whole.shape());
    EXPECT_EQ(Tensor::max_abs_diff(whole, chunked), 0.F) << "micro_batch=" << mb;
  }
}

deploy::ConvStage dynamic_output_conv(Rng& rng) {
  deploy::ConvStage st;
  st.algo = nn::ConvAlgo::kIm2row;
  st.in_channels = 2;
  st.out_channels = 4;
  st.kernel = 3;
  st.pad = 1;
  st.input_scale = 0.05F;
  st.output_scale = -1.F;  // dynamic: requantized from each batch's abs-max
  st.weights_q = backend::quantize_s8(Tensor::randn({4, 2, 3, 3}, rng, 0.4F));
  return st;
}

TEST(Engine, RunBatchedRejectsSplittingAcrossDynamicScales) {
  // A dynamic output scale makes a sample's logits depend on which
  // neighbours shared its chunk — run_batched must refuse to split rather
  // than silently perturb results (the serving-coalescing hazard).
  Rng rng(29);
  deploy::Int8Pipeline pipe;
  pipe.push(dynamic_output_conv(rng));
  ASSERT_FALSE(pipe.all_scales_frozen());

  const Tensor x = Tensor::randn({6, 2, 8, 8}, rng);
  EXPECT_NO_THROW(pipe.run_batched(x, 0));   // whole batch: no split, fine
  EXPECT_NO_THROW(pipe.run_batched(x, 6));   // micro_batch >= n: no split
  try {
    pipe.run_batched(x, 2);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("freeze_scales"), std::string::npos) << e.what();
  }
}

TEST(Engine, FreezeScalesMakesRunBatchedBitExact) {
  Rng rng(30);
  deploy::Int8Pipeline pipe;
  pipe.push(dynamic_output_conv(rng));
  const Tensor calib = Tensor::randn({5, 2, 8, 8}, rng);
  const Tensor before = pipe.run(calib);

  pipe.freeze_scales(calib);
  EXPECT_TRUE(pipe.all_scales_frozen());
  // The captured scale is exactly the scale the calibration forward derived,
  // so the calibration batch itself must be bit-identical before/after.
  EXPECT_EQ(Tensor::max_abs_diff(pipe.run(calib), before), 0.F);

  const Tensor x = Tensor::randn({7, 2, 8, 8}, rng);
  const Tensor whole = pipe.run(x);
  for (const std::int64_t mb : {1, 2, 3}) {
    EXPECT_EQ(Tensor::max_abs_diff(pipe.run_batched(x, mb), whole), 0.F)
        << "micro_batch=" << mb;
  }
}

TEST(Engine, FreezeScalesCapturesDynamicInputQuantizer) {
  // input_scale <= 0 means the input quantizer derives its scale from the
  // whole submitted batch — also batch-composition dependent, also frozen.
  Rng rng(31);
  deploy::ConvStage st = dynamic_output_conv(rng);
  st.input_scale = -1.F;
  deploy::Int8Pipeline pipe;
  pipe.push(std::move(st));
  const auto dynamic = pipe.dynamic_scale_labels();
  ASSERT_EQ(dynamic.size(), 2u);
  EXPECT_NE(dynamic[0].find("input-quantizer"), std::string::npos) << dynamic[0];

  pipe.freeze_scales(Tensor::randn({4, 2, 8, 8}, rng));
  EXPECT_TRUE(pipe.all_scales_frozen());
  const Tensor x = Tensor::randn({6, 2, 8, 8}, rng);
  EXPECT_EQ(Tensor::max_abs_diff(pipe.run_batched(x, 2), pipe.run(x)), 0.F);
}

TEST(Engine, FreezeScalesRejectsDynamicInternalWinogradScales) {
  // The V/M scales live inside the kernel; a calibration forward cannot
  // capture them, so freezing must fail loudly instead of half-freezing.
  Rng rng(32);
  deploy::ConvStage st;
  st.algo = nn::ConvAlgo::kWinograd2;
  st.in_channels = 2;
  st.out_channels = 4;
  st.kernel = 3;
  st.pad = 1;
  st.input_scale = 0.05F;
  st.weights_f = Tensor::randn({4, 2, 3, 3}, rng, 0.4F);
  st.transforms = wino::make_transforms(2, 3);
  // stage_scales left fully dynamic (V, M, Y all derived per call).
  deploy::Int8Pipeline pipe;
  pipe.push(std::move(st));
  EXPECT_THROW(pipe.freeze_scales(Tensor::randn({2, 2, 8, 8}, rng)), std::invalid_argument);
}

}  // namespace
}  // namespace wa
