// Conformance suite for the multi-backend SIMD dispatch layer
// (backend/simd/kernel_table.hpp), parametrized over every compiled-in
// backend (unavailable ISAs are skipped at runtime).
//
// Two layers of guarantees:
//   1. Kernel conformance: every dispatched kernel reproduces the scalar
//      reference exactly — random shapes, odd vector tails, saturation
//      edges, the shift regimes the vector requant code falls back on.
//   2. End-to-end bit-identity: a compiled LeNet-5 and ResNet-18 produce
//      bit-identical Int8Pipeline logits under every available backend.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "backend/conv_kernels_s8.hpp"
#include "backend/simd/kernel_table.hpp"
#include "deploy/pipeline.hpp"
#include "quant/requant.hpp"
#include "winograd/cook_toom.hpp"

namespace wa::backend::simd {
namespace {

std::vector<std::string> backend_names() {
  std::vector<std::string> names;
  for (const BackendDesc& b : registered_backends()) names.push_back(b.name);
  return names;
}

bool backend_available(const std::string& name) {
  for (const BackendDesc& b : registered_backends()) {
    if (b.name == name) return b.available;
  }
  return false;
}

class SimdBackendTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    previous_ = active_backend();
    if (!backend_available(GetParam())) {
      GTEST_SKIP() << "backend " << GetParam() << " is compiled in but this CPU cannot run it";
    }
    ASSERT_TRUE(set_backend(GetParam()));
  }
  void TearDown() override { set_backend(previous_); }

 private:
  std::string previous_;
};

// ---- registry ---------------------------------------------------------------

// MUST run first in this binary: it observes the one-time lazy resolution of
// the active table, before any test calls set_backend(). This is what makes
// the CI jobs that pin WA_BACKEND=avx2 / WA_BACKEND=scalar fail loudly if
// the override ever regresses to a silent fallback.
TEST(SimdRegistry, AWaBackendEnvPinIsHonoredOnFirstResolution) {
  const char* env = std::getenv("WA_BACKEND");
  const std::string active = active_backend();  // forces resolution if first
  if (env != nullptr && *env != '\0' && backend_available(env)) {
    EXPECT_EQ(active, std::string(env))
        << "WA_BACKEND=" << env << " is available but was not selected";
  }
  // Pinned or not, the active table must be one of the available backends.
  const auto avail = available_backends();
  EXPECT_NE(std::find(avail.begin(), avail.end(), active), avail.end());
}

TEST(SimdRegistry, ScalarIsAlwaysFirstAndAvailable) {
  const auto regs = registered_backends();
  ASSERT_FALSE(regs.empty());
  EXPECT_EQ(regs.front().name, "scalar");
  EXPECT_TRUE(regs.front().available);
  const auto avail = available_backends();
  EXPECT_FALSE(avail.empty());
  EXPECT_EQ(avail.front(), "scalar");
}

TEST(SimdRegistry, UnknownBackendIsRejectedWithoutSideEffects) {
  const std::string before = active_backend();
  EXPECT_FALSE(set_backend("sse42-from-the-future"));
  EXPECT_EQ(active_backend(), before);
}

TEST(SimdRegistry, EveryResolvedEntryIsCallable) {
  // Per-kernel scalar fallback: even a backend that only accelerates the
  // GEMM must expose a full table.
  const std::string before = active_backend();
  for (const std::string& name : available_backends()) {
    ASSERT_TRUE(set_backend(name));
    const KernelTable& t = kernels();
    EXPECT_NE(t.gemm_s8_s32, nullptr);
    EXPECT_NE(t.gemm_f32_packed_nn, nullptr);
    EXPECT_NE(t.quantize_f32_s8, nullptr);
    EXPECT_NE(t.requant_s32_s8, nullptr);
    EXPECT_NE(t.wino_scatter_f32, nullptr);
    EXPECT_NE(t.wino_gather_f32, nullptr);
  }
  set_backend(before);
}

// ---- kernel conformance -----------------------------------------------------

std::vector<std::int8_t> random_s8(Rng& rng, std::int64_t n, bool with_rails = true) {
  std::vector<std::int8_t> v(static_cast<std::size_t>(n));
  for (auto& x : v) {
    const double u = rng.uniform();
    if (with_rails && u < 0.05) {
      x = (u < 0.025) ? std::int8_t{127} : std::int8_t{-127};
    } else {
      x = static_cast<std::int8_t>(std::lround(rng.uniform() * 254.0 - 127.0));
    }
  }
  return v;
}

TEST_P(SimdBackendTest, GemmS8MatchesScalarOnRandomShapesAndTails) {
  Rng rng(91);
  // Shapes chosen to hit every tail: m % 4, n % 16 and k % 2 all nonzero
  // somewhere, plus degenerate 1s and GEMM-bound sizes.
  const std::int64_t shapes[][3] = {{1, 1, 1},   {1, 16, 2},  {3, 5, 7},    {4, 16, 8},
                                    {5, 17, 3},  {7, 48, 9},  {8, 33, 13},  {2, 15, 1},
                                    {13, 31, 27}, {64, 64, 32}, {16, 128, 65}, {33, 19, 40}};
  for (const auto& s : shapes) {
    const std::int64_t m = s[0], n = s[1], k = s[2];
    SCOPED_TRACE("m=" + std::to_string(m) + " n=" + std::to_string(n) + " k=" + std::to_string(k));
    const auto a = random_s8(rng, m * k);
    const auto b = random_s8(rng, k * n);
    std::vector<std::int32_t> got(static_cast<std::size_t>(m * n), -1);
    std::vector<std::int32_t> want(static_cast<std::size_t>(m * n), -2);
    kernels().gemm_s8_s32(m, n, k, a.data(), b.data(), got.data());
    scalar_kernels().gemm_s8_s32(m, n, k, a.data(), b.data(), want.data());
    EXPECT_EQ(got, want);
  }
}

TEST_P(SimdBackendTest, GemmS8SaturationHeadroom) {
  // All-rail operands at the longest k the engine meets (512 channels * 25
  // patch) stay far inside int32, and every backend agrees exactly.
  const std::int64_t m = 3, n = 17, k = 12800;
  std::vector<std::int8_t> a(static_cast<std::size_t>(m * k), std::int8_t{127});
  std::vector<std::int8_t> b(static_cast<std::size_t>(k * n), std::int8_t{-127});
  std::vector<std::int32_t> got(static_cast<std::size_t>(m * n));
  kernels().gemm_s8_s32(m, n, k, a.data(), b.data(), got.data());
  for (const std::int32_t v : got) EXPECT_EQ(v, -127 * 127 * k);
}

TEST_P(SimdBackendTest, QuantizeMatchesScalarIncludingSaturationAndTails) {
  Rng rng(92);
  for (const std::int64_t n : {std::int64_t{1}, std::int64_t{7}, std::int64_t{31},
                               std::int64_t{32}, std::int64_t{33}, std::int64_t{1023}}) {
    SCOPED_TRACE("n=" + std::to_string(n));
    std::vector<float> src(static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < src.size(); ++i) {
      switch (i % 9) {
        case 0: src[i] = static_cast<float>(rng.normal()) * 100.F; break;
        case 1: src[i] = static_cast<float>(rng.normal()) * 1e6F; break;  // saturates
        case 2: src[i] = static_cast<float>(rng.normal()) * 1e-6F; break;
        case 3: src[i] = 126.5F; break;   // round-to-even boundary
        case 4: src[i] = -127.5F; break;  // rounds to -128 pre-clamp in fp
        case 5: src[i] = 0.F; break;
        case 6:  // non-finite: every backend must clamp like the scalar
                 // reference (NaN -> -127 via std::max's argument order)
          src[i] = std::numeric_limits<float>::quiet_NaN();
          break;
        case 7:
          src[i] = (i % 2 != 0) ? std::numeric_limits<float>::infinity()
                                : -std::numeric_limits<float>::infinity();
          break;
        default: src[i] = static_cast<float>(rng.normal()); break;
      }
    }
    for (const float inv : {1.F, 0.37F, 113.7F, 1e-8F, 1e8F}) {
      std::vector<std::int8_t> got(src.size(), 99), want(src.size(), -99);
      kernels().quantize_f32_s8(src.data(), got.data(), n, inv);
      scalar_kernels().quantize_f32_s8(src.data(), want.data(), n, inv);
      EXPECT_EQ(got, want) << "inv_scale=" << inv;
    }
  }
}

TEST_P(SimdBackendTest, RequantMatchesScalarAcrossShiftRegimesAndRails) {
  Rng rng(93);
  std::vector<std::int32_t> acc;
  acc.push_back(0);
  acc.push_back(1);
  acc.push_back(-1);
  acc.push_back(std::numeric_limits<std::int32_t>::max());
  acc.push_back(std::numeric_limits<std::int32_t>::min());
  acc.push_back(std::numeric_limits<std::int32_t>::min() + 1);
  acc.push_back(127);
  acc.push_back(-128);
  while (acc.size() < 1031) {  // odd size: exercises the vector tail
    acc.push_back(static_cast<std::int32_t>(std::lround((rng.uniform() * 2.0 - 1.0) *
                                                        2147483000.0)));
  }
  // Ratios covering: vector path (shift 1..31), ratio >= 1 (shift <= 0,
  // scalar fallback), sub-2^-31 ratios (shift > 31, the historical UB bug).
  for (const double ratio : {1e-12, 1e-10, 4.7e-10, 1e-6, 1e-3, 0.25, 0.5, 0.77, 0.9999, 1.0,
                             1.0001, 2.0, 1e3, 1e9}) {
    SCOPED_TRACE("ratio=" + std::to_string(ratio));
    const auto mult = quant::quantize_multiplier(ratio);
    std::vector<std::int8_t> got(acc.size(), 5), want(acc.size(), -5);
    kernels().requant_s32_s8(acc.data(), got.data(), static_cast<std::int64_t>(acc.size()), mult);
    scalar_kernels().requant_s32_s8(acc.data(), want.data(),
                                    static_cast<std::int64_t>(acc.size()), mult);
    EXPECT_EQ(got, want);
  }
}

TEST_P(SimdBackendTest, WinogradScatterMatchesScalarOnEdgeTilesAndPads) {
  Rng rng(94);
  struct Cfg {
    int m, r;
    std::int64_t hw, pad;
  };
  // F2/F4 on sizes that produce interior vector groups, partial groups and
  // clipped edge tiles, with and without padding.
  for (const Cfg cfg : {Cfg{2, 3, 8, 1}, Cfg{2, 3, 7, 1}, Cfg{2, 3, 34, 1}, Cfg{4, 3, 13, 1},
                        Cfg{4, 3, 32, 1}, Cfg{2, 3, 6, 0}, Cfg{4, 5, 16, 2}}) {
    SCOPED_TRACE("m=" + std::to_string(cfg.m) + " r=" + std::to_string(cfg.r) +
                 " hw=" + std::to_string(cfg.hw) + " pad=" + std::to_string(cfg.pad));
    const auto tr = wino::make_transforms(cfg.m, cfg.r);
    const std::int64_t t = tr.tile, m = tr.m;
    const std::int64_t oh = cfg.hw + 2 * cfg.pad - cfg.r + 1;
    const std::int64_t th = (oh + m - 1) / m, tw = th;
    const std::int64_t tiles = th * tw;
    const auto plane = random_s8(rng, cfg.hw * cfg.hw);
    std::vector<float> got(static_cast<std::size_t>(t * t * tiles), 1e9F);
    std::vector<float> want(static_cast<std::size_t>(t * t * tiles), -1e9F);
    kernels().wino_scatter_f32(plane.data(), cfg.hw, cfg.hw, cfg.pad, 0.043F, tr.bt_mat.raw(), t,
                               m, th, tw, got.data(), tiles);
    scalar_kernels().wino_scatter_f32(plane.data(), cfg.hw, cfg.hw, cfg.pad, 0.043F,
                                      tr.bt_mat.raw(), t, m, th, tw, want.data(), tiles);
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], want[i]) << "element " << i;
    }
  }
}

TEST_P(SimdBackendTest, WinogradGatherMatchesScalarOnEdgeTilesAndBias) {
  Rng rng(95);
  struct Cfg {
    int m, r;
    std::int64_t oh;
  };
  // oh not a multiple of m forces clipped edge tiles; oh = 4/16 exercises
  // the full-vector interior; oh = 34 a partial last vector group.
  for (const Cfg cfg : {Cfg{2, 3, 8}, Cfg{2, 3, 7}, Cfg{2, 3, 34}, Cfg{4, 3, 16}, Cfg{4, 3, 13},
                        Cfg{4, 5, 12}}) {
    SCOPED_TRACE("m=" + std::to_string(cfg.m) + " r=" + std::to_string(cfg.r) +
                 " oh=" + std::to_string(cfg.oh));
    const auto tr = wino::make_transforms(cfg.m, cfg.r);
    const std::int64_t t = tr.tile, m = tr.m;
    const std::int64_t th = (cfg.oh + m - 1) / m, tw = th;
    const std::int64_t tiles = th * tw;
    const auto levels = random_s8(rng, t * t * tiles);
    for (const float bias : {0.F, -1.375F}) {
      std::vector<float> got(static_cast<std::size_t>(cfg.oh * cfg.oh), 1e9F);
      std::vector<float> want(static_cast<std::size_t>(cfg.oh * cfg.oh), -1e9F);
      kernels().wino_gather_f32(levels.data(), tiles, 0.0217F, tr.at_mat.raw(), t, m, th, tw,
                                cfg.oh, cfg.oh, bias, got.data());
      scalar_kernels().wino_gather_f32(levels.data(), tiles, 0.0217F, tr.at_mat.raw(), t, m, th,
                                       tw, cfg.oh, cfg.oh, bias, want.data());
      for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i], want[i]) << "element " << i << " bias " << bias;
      }
    }
  }
}

TEST_P(SimdBackendTest, GemmF32StaysWithinToleranceOfScalar) {
  // fp32 GEMM is the one table entry allowed FMA, so it carries a tolerance
  // instead of a bit check (consumers are the float training/eval paths).
  Rng rng(96);
  const std::int64_t m = 9, n = 37, k = 23;
  std::vector<float> a(static_cast<std::size_t>(m * k)), b(static_cast<std::size_t>(k * n));
  for (auto& v : a) v = static_cast<float>(rng.normal());
  for (auto& v : b) v = static_cast<float>(rng.normal());
  std::vector<float> got(static_cast<std::size_t>(m * n), 0.5F);
  std::vector<float> want(static_cast<std::size_t>(m * n), 0.5F);
  kernels().gemm_f32_packed_nn(m, n, k, 1.3F, a.data(), k, b.data(), n, 0.25F, got.data(), n);
  scalar_kernels().gemm_f32_packed_nn(m, n, k, 1.3F, a.data(), k, b.data(), n, 0.25F,
                                      want.data(), n);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], 1e-4F) << "element " << i;
  }
}

// ---- end-to-end bit-identity ------------------------------------------------

deploy::Int8Pipeline compiled_lenet(nn::ConvAlgo algo) {
  Rng rng(97);
  models::LeNetConfig cfg;
  cfg.algo = algo;
  cfg.qspec = quant::QuantSpec{8};
  models::LeNet5 net(cfg, rng);
  net.set_training(true);
  for (int i = 0; i < 2; ++i) {
    net.forward(ag::Variable(Tensor::randn({4, 1, 28, 28}, rng), false));
  }
  deploy::Int8Pipeline pipe = deploy::compile_lenet(net);
  pipe.freeze_scales(Tensor::randn({4, 1, 28, 28}, rng));
  return pipe;
}

deploy::Int8Pipeline compiled_resnet18() {
  Rng rng(98);
  models::ResNetConfig cfg;
  cfg.width_mult = 0.125F;
  cfg.algo = nn::ConvAlgo::kWinograd2;
  cfg.qspec = quant::QuantSpec{8};
  models::ResNet18 net(cfg, rng);
  net.set_training(true);
  for (int i = 0; i < 2; ++i) {
    net.forward(ag::Variable(Tensor::randn({4, 3, 32, 32}, rng), false));
  }
  deploy::Int8Pipeline pipe = deploy::compile_resnet18(net);
  pipe.freeze_scales(Tensor::randn({4, 3, 32, 32}, rng));
  return pipe;
}

TEST_P(SimdBackendTest, LenetLogitsBitIdenticalToScalarBackend) {
  for (const nn::ConvAlgo algo : {nn::ConvAlgo::kIm2row, nn::ConvAlgo::kWinograd2}) {
    SCOPED_TRACE(nn::to_string(algo));
    // Compile under the scalar reference so preparation is backend-neutral,
    // then run the same input under both backends.
    ASSERT_TRUE(set_backend("scalar"));
    const deploy::Int8Pipeline pipe = compiled_lenet(algo);
    Rng rng(99);
    const Tensor x = Tensor::randn({5, 1, 28, 28}, rng);
    const Tensor want = pipe.run(x);
    ASSERT_TRUE(set_backend(GetParam()));
    const Tensor got = pipe.run(x);
    ASSERT_EQ(got.shape(), want.shape());
    EXPECT_EQ(Tensor::max_abs_diff(got, want), 0.F)
        << "backend " << GetParam() << " diverged from the scalar reference";
  }
}

TEST_P(SimdBackendTest, ResNet18LogitsBitIdenticalToScalarBackend) {
  ASSERT_TRUE(set_backend("scalar"));
  const deploy::Int8Pipeline pipe = compiled_resnet18();
  Rng rng(100);
  const Tensor x = Tensor::randn({3, 3, 32, 32}, rng);
  const Tensor want = pipe.run(x);
  ASSERT_TRUE(set_backend(GetParam()));
  const Tensor got = pipe.run(x);
  ASSERT_EQ(got.shape(), want.shape());
  EXPECT_EQ(Tensor::max_abs_diff(got, want), 0.F)
      << "backend " << GetParam() << " diverged from the scalar reference";
}

INSTANTIATE_TEST_SUITE_P(AllBackends, SimdBackendTest, ::testing::ValuesIn(backend_names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

}  // namespace
}  // namespace wa::backend::simd
