// Conformance suite for the multi-backend SIMD dispatch layer
// (backend/simd/kernel_table.hpp), parametrized over every compiled-in
// backend (unavailable ISAs are skipped at runtime).
//
// Two layers of guarantees:
//   1. Kernel conformance: every dispatched kernel reproduces the scalar
//      reference exactly — random shapes, odd vector tails, saturation
//      edges, the shift regimes the vector requant code falls back on.
//   2. End-to-end bit-identity: a compiled LeNet-5 and ResNet-18 produce
//      bit-identical Int8Pipeline logits under every available backend.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "backend/conv_kernels_s8.hpp"
#include "backend/simd/kernel_table.hpp"
#include "deploy/pipeline.hpp"
#include "quant/requant.hpp"
#include "winograd/cook_toom.hpp"

namespace wa::backend::simd {
namespace {

std::vector<std::string> backend_names() {
  std::vector<std::string> names;
  for (const BackendDesc& b : registered_backends()) names.push_back(b.name);
  return names;
}

bool backend_available(const std::string& name) {
  for (const BackendDesc& b : registered_backends()) {
    if (b.name == name) return b.available;
  }
  return false;
}

class SimdBackendTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    previous_ = active_backend();
    if (!backend_available(GetParam())) {
      GTEST_SKIP() << "backend " << GetParam() << " is compiled in but this CPU cannot run it";
    }
    ASSERT_TRUE(set_backend(GetParam()));
  }
  void TearDown() override { set_backend(previous_); }

 private:
  std::string previous_;
};

// ---- registry ---------------------------------------------------------------

// MUST run first in this binary: its threads race through the one-time lazy
// resolution of the active table while it is still unresolved. ensure_active
// serializes that resolution with std::call_once; this test locks down the
// regression where two concurrent first users could each run pick_default
// and disagree about the active table (or one could observe a half-written
// pointer). Every thread must land on the same fully-resolved table.
TEST(SimdRegistry, AAConcurrentFirstUseResolvesExactlyOnce) {
  constexpr int kThreads = 8;
  std::vector<const KernelTable*> tables(kThreads, nullptr);
  std::vector<std::string> names(kThreads);
  {
    std::vector<std::thread> pool;
    pool.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i) {
      pool.emplace_back([&tables, &names, i] {
        tables[static_cast<std::size_t>(i)] = &kernels();  // first call resolves
        names[static_cast<std::size_t>(i)] = active_backend();
      });
    }
    for (auto& th : pool) th.join();
  }
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(tables[static_cast<std::size_t>(i)], tables[0]) << "thread " << i;
    EXPECT_EQ(names[static_cast<std::size_t>(i)], names[0]) << "thread " << i;
  }
  ASSERT_NE(tables[0], nullptr);
  EXPECT_NE(tables[0]->gemm_s8_s32, nullptr) << "winner published an unresolved table";
}

// Runs second, after the concurrent test above forced resolution: whichever
// thread won the call_once race, a WA_BACKEND pin must have been honored.
// This is what makes the CI jobs that pin WA_BACKEND=avx2 / WA_BACKEND=scalar
// fail loudly if the override ever regresses to a silent fallback.
TEST(SimdRegistry, AWaBackendEnvPinIsHonoredOnFirstResolution) {
  const char* env = std::getenv("WA_BACKEND");
  const std::string active = active_backend();  // forces resolution if first
  if (env != nullptr && *env != '\0' && backend_available(env)) {
    EXPECT_EQ(active, std::string(env))
        << "WA_BACKEND=" << env << " is available but was not selected";
  }
  // Pinned or not, the active table must be one of the available backends.
  const auto avail = available_backends();
  EXPECT_NE(std::find(avail.begin(), avail.end(), active), avail.end());
}

TEST(SimdRegistry, ScalarIsAlwaysFirstAndAvailable) {
  const auto regs = registered_backends();
  ASSERT_FALSE(regs.empty());
  EXPECT_EQ(regs.front().name, "scalar");
  EXPECT_TRUE(regs.front().available);
  const auto avail = available_backends();
  EXPECT_FALSE(avail.empty());
  EXPECT_EQ(avail.front(), "scalar");
}

TEST(SimdRegistry, UnknownBackendIsRejectedWithoutSideEffects) {
  const std::string before = active_backend();
  EXPECT_FALSE(set_backend("sse42-from-the-future"));
  EXPECT_EQ(active_backend(), before);
}

TEST(SimdRegistry, UnavailableBackendIsRejectedWithoutSideEffects) {
  // A backend that is compiled in but that this CPU cannot run (e.g. the
  // avx512 table on a pre-Ice-Lake host) must behave exactly like an unknown
  // name: set_backend refuses, the active table is untouched. The matching
  // WA_BACKEND=avx512 env path warns and falls back in pick_default; CI's
  // avx512 job exercises that on hosts without the ISA.
  const std::string before = active_backend();
  for (const BackendDesc& b : registered_backends()) {
    if (b.available) continue;
    EXPECT_FALSE(set_backend(b.name)) << b.name;
    EXPECT_EQ(active_backend(), before) << b.name;
  }
  EXPECT_EQ(active_backend(), before);
}

TEST(SimdRegistry, EveryResolvedEntryIsCallable) {
  // Per-kernel scalar fallback: even a backend that only accelerates the
  // GEMM must expose a full table.
  const std::string before = active_backend();
  for (const std::string& name : available_backends()) {
    ASSERT_TRUE(set_backend(name));
    const KernelTable& t = kernels();
    EXPECT_NE(t.gemm_s8_s32, nullptr);
    EXPECT_NE(t.gemm_f32_packed_nn, nullptr);
    EXPECT_NE(t.quantize_f32_s8, nullptr);
    EXPECT_NE(t.quantize_f32_s8_taps, nullptr);
    EXPECT_NE(t.requant_s32_s8, nullptr);
    EXPECT_NE(t.requant_s32_s8_taps, nullptr);
    EXPECT_NE(t.wino_scatter_f32, nullptr);
    EXPECT_NE(t.wino_gather_f32, nullptr);
    EXPECT_NE(t.wino_scatter_block_f32, nullptr);
    EXPECT_NE(t.gemm_u8s8_s32_k4, nullptr);
    EXPECT_NE(t.wino_gather_q_s8, nullptr);
  }
  set_backend(before);
}

// ---- kernel conformance -----------------------------------------------------

std::vector<std::int8_t> random_s8(Rng& rng, std::int64_t n, bool with_rails = true) {
  std::vector<std::int8_t> v(static_cast<std::size_t>(n));
  for (auto& x : v) {
    const double u = rng.uniform();
    if (with_rails && u < 0.05) {
      x = (u < 0.025) ? std::int8_t{127} : std::int8_t{-127};
    } else {
      x = static_cast<std::int8_t>(std::lround(rng.uniform() * 254.0 - 127.0));
    }
  }
  return v;
}

TEST_P(SimdBackendTest, GemmS8MatchesScalarOnRandomShapesAndTails) {
  Rng rng(91);
  // Shapes chosen to hit every tail: m % 4, n % 16 and k % 2 all nonzero
  // somewhere, plus degenerate 1s and GEMM-bound sizes.
  const std::int64_t shapes[][3] = {{1, 1, 1},   {1, 16, 2},  {3, 5, 7},    {4, 16, 8},
                                    {5, 17, 3},  {7, 48, 9},  {8, 33, 13},  {2, 15, 1},
                                    {13, 31, 27}, {64, 64, 32}, {16, 128, 65}, {33, 19, 40}};
  for (const auto& s : shapes) {
    const std::int64_t m = s[0], n = s[1], k = s[2];
    SCOPED_TRACE("m=" + std::to_string(m) + " n=" + std::to_string(n) + " k=" + std::to_string(k));
    const auto a = random_s8(rng, m * k);
    const auto b = random_s8(rng, k * n);
    std::vector<std::int32_t> got(static_cast<std::size_t>(m * n), -1);
    std::vector<std::int32_t> want(static_cast<std::size_t>(m * n), -2);
    kernels().gemm_s8_s32(m, n, k, a.data(), b.data(), got.data());
    scalar_kernels().gemm_s8_s32(m, n, k, a.data(), b.data(), want.data());
    EXPECT_EQ(got, want);
  }
}

TEST_P(SimdBackendTest, GemmS8SaturationHeadroom) {
  // All-rail operands at the longest k the engine meets (512 channels * 25
  // patch) stay far inside int32, and every backend agrees exactly.
  const std::int64_t m = 3, n = 17, k = 12800;
  std::vector<std::int8_t> a(static_cast<std::size_t>(m * k), std::int8_t{127});
  std::vector<std::int8_t> b(static_cast<std::size_t>(k * n), std::int8_t{-127});
  std::vector<std::int32_t> got(static_cast<std::size_t>(m * n));
  kernels().gemm_s8_s32(m, n, k, a.data(), b.data(), got.data());
  for (const std::int32_t v : got) EXPECT_EQ(v, -127 * 127 * k);
}

TEST_P(SimdBackendTest, QuantizeMatchesScalarIncludingSaturationAndTails) {
  Rng rng(92);
  for (const std::int64_t n : {std::int64_t{1}, std::int64_t{7}, std::int64_t{31},
                               std::int64_t{32}, std::int64_t{33}, std::int64_t{1023}}) {
    SCOPED_TRACE("n=" + std::to_string(n));
    std::vector<float> src(static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < src.size(); ++i) {
      switch (i % 9) {
        case 0: src[i] = static_cast<float>(rng.normal()) * 100.F; break;
        case 1: src[i] = static_cast<float>(rng.normal()) * 1e6F; break;  // saturates
        case 2: src[i] = static_cast<float>(rng.normal()) * 1e-6F; break;
        case 3: src[i] = 126.5F; break;   // round-to-even boundary
        case 4: src[i] = -127.5F; break;  // rounds to -128 pre-clamp in fp
        case 5: src[i] = 0.F; break;
        case 6:  // non-finite: every backend must clamp like the scalar
                 // reference (NaN -> -127 via std::max's argument order)
          src[i] = std::numeric_limits<float>::quiet_NaN();
          break;
        case 7:
          src[i] = (i % 2 != 0) ? std::numeric_limits<float>::infinity()
                                : -std::numeric_limits<float>::infinity();
          break;
        default: src[i] = static_cast<float>(rng.normal()); break;
      }
    }
    for (const float inv : {1.F, 0.37F, 113.7F, 1e-8F, 1e8F}) {
      std::vector<std::int8_t> got(src.size(), 99), want(src.size(), -99);
      kernels().quantize_f32_s8(src.data(), got.data(), n, inv);
      scalar_kernels().quantize_f32_s8(src.data(), want.data(), n, inv);
      EXPECT_EQ(got, want) << "inv_scale=" << inv;
    }
  }
}

TEST_P(SimdBackendTest, RequantMatchesScalarAcrossShiftRegimesAndRails) {
  Rng rng(93);
  std::vector<std::int32_t> acc;
  acc.push_back(0);
  acc.push_back(1);
  acc.push_back(-1);
  acc.push_back(std::numeric_limits<std::int32_t>::max());
  acc.push_back(std::numeric_limits<std::int32_t>::min());
  acc.push_back(std::numeric_limits<std::int32_t>::min() + 1);
  acc.push_back(127);
  acc.push_back(-128);
  while (acc.size() < 1031) {  // odd size: exercises the vector tail
    acc.push_back(static_cast<std::int32_t>(std::lround((rng.uniform() * 2.0 - 1.0) *
                                                        2147483000.0)));
  }
  // Ratios covering: vector path (shift 1..31), ratio >= 1 (shift <= 0,
  // scalar fallback), sub-2^-31 ratios (shift > 31, the historical UB bug).
  for (const double ratio : {1e-12, 1e-10, 4.7e-10, 1e-6, 1e-3, 0.25, 0.5, 0.77, 0.9999, 1.0,
                             1.0001, 2.0, 1e3, 1e9}) {
    SCOPED_TRACE("ratio=" + std::to_string(ratio));
    const auto mult = quant::quantize_multiplier(ratio);
    std::vector<std::int8_t> got(acc.size(), 5), want(acc.size(), -5);
    kernels().requant_s32_s8(acc.data(), got.data(), static_cast<std::int64_t>(acc.size()), mult);
    scalar_kernels().requant_s32_s8(acc.data(), want.data(),
                                    static_cast<std::int64_t>(acc.size()), mult);
    EXPECT_EQ(got, want);
  }
}

TEST_P(SimdBackendTest, RequantTapsMatchesScalarAndPerBlockSweeps) {
  // The per-tap entry point (one fixed-point multiplier per t² tap block):
  // every backend must match the scalar reference AND its own flat kernel
  // applied block by block — the vector table is just a loop of the flat
  // requant over contiguous blocks.
  Rng rng(98);
  const std::int64_t taps = 16;      // t² for F(2x2, 3x3)
  const std::int64_t per_tap = 133;  // odd: exercises each block's vector tail
  std::vector<std::int32_t> acc(static_cast<std::size_t>(taps * per_tap));
  for (auto& v : acc) {
    v = static_cast<std::int32_t>(std::lround((rng.uniform() * 2.0 - 1.0) * 2147483000.0));
  }
  std::vector<quant::FixedPointMultiplier> mults(static_cast<std::size_t>(taps));
  for (std::size_t ab = 0; ab < mults.size(); ++ab) {
    // Spread the ratios across the vector regime and both scalar-fallback
    // regimes so adjacent blocks take different code paths.
    const double ratio = (ab % 5 == 0) ? 1e-10 : (ab % 5 == 1) ? 1.5 : 0.03 * (1.0 + ab);
    mults[ab] = quant::quantize_multiplier(ratio);
  }
  std::vector<std::int8_t> got(acc.size(), 7), want(acc.size(), -7), blockwise(acc.size(), 9);
  kernels().requant_s32_s8_taps(acc.data(), got.data(), taps, per_tap, mults.data());
  scalar_kernels().requant_s32_s8_taps(acc.data(), want.data(), taps, per_tap, mults.data());
  EXPECT_EQ(got, want);
  for (std::int64_t ab = 0; ab < taps; ++ab) {
    kernels().requant_s32_s8(acc.data() + ab * per_tap, blockwise.data() + ab * per_tap, per_tap,
                             mults[static_cast<std::size_t>(ab)]);
  }
  EXPECT_EQ(got, blockwise);
}

TEST_P(SimdBackendTest, QuantizeTapsMatchesScalarAndPerBlockSweeps) {
  // Same contract for the per-tap quantize entry: equivalent to `taps` calls
  // of the backend's own flat quantize_f32_s8, and bit-identical to the
  // scalar reference.
  Rng rng(99);
  const std::int64_t taps = 36;     // t² for F(4x4, 3x3)
  const std::int64_t per_tap = 29;  // odd: exercises each block's vector tail
  std::vector<float> src(static_cast<std::size_t>(taps * per_tap));
  for (auto& v : src) v = static_cast<float>((rng.uniform() * 2.0 - 1.0) * 40.0);
  std::vector<float> inv(static_cast<std::size_t>(taps));
  for (std::size_t ab = 0; ab < inv.size(); ++ab) {
    inv[ab] = 1.F / (0.01F + 0.02F * static_cast<float>(ab));  // includes saturating taps
  }
  std::vector<std::int8_t> got(src.size(), 7), want(src.size(), -7), blockwise(src.size(), 9);
  kernels().quantize_f32_s8_taps(src.data(), got.data(), taps, per_tap, inv.data());
  scalar_kernels().quantize_f32_s8_taps(src.data(), want.data(), taps, per_tap, inv.data());
  EXPECT_EQ(got, want);
  for (std::int64_t ab = 0; ab < taps; ++ab) {
    kernels().quantize_f32_s8(src.data() + ab * per_tap, blockwise.data() + ab * per_tap, per_tap,
                              inv[static_cast<std::size_t>(ab)]);
  }
  EXPECT_EQ(got, blockwise);
}

TEST_P(SimdBackendTest, WinogradScatterMatchesScalarOnEdgeTilesAndPads) {
  Rng rng(94);
  struct Cfg {
    int m, r;
    std::int64_t hw, pad;
  };
  // F2/F4 on sizes that produce interior vector groups, partial groups and
  // clipped edge tiles, with and without padding.
  for (const Cfg cfg : {Cfg{2, 3, 8, 1}, Cfg{2, 3, 7, 1}, Cfg{2, 3, 34, 1}, Cfg{4, 3, 13, 1},
                        Cfg{4, 3, 32, 1}, Cfg{2, 3, 6, 0}, Cfg{4, 5, 16, 2}}) {
    SCOPED_TRACE("m=" + std::to_string(cfg.m) + " r=" + std::to_string(cfg.r) +
                 " hw=" + std::to_string(cfg.hw) + " pad=" + std::to_string(cfg.pad));
    const auto tr = wino::make_transforms(cfg.m, cfg.r);
    const std::int64_t t = tr.tile, m = tr.m;
    const std::int64_t oh = cfg.hw + 2 * cfg.pad - cfg.r + 1;
    const std::int64_t th = (oh + m - 1) / m, tw = th;
    const std::int64_t tiles = th * tw;
    const auto plane = random_s8(rng, cfg.hw * cfg.hw);
    std::vector<float> got(static_cast<std::size_t>(t * t * tiles), 1e9F);
    std::vector<float> want(static_cast<std::size_t>(t * t * tiles), -1e9F);
    kernels().wino_scatter_f32(plane.data(), cfg.hw, cfg.hw, cfg.pad, 0.043F, tr.bt_mat.raw(), t,
                               m, th, tw, got.data(), tiles);
    scalar_kernels().wino_scatter_f32(plane.data(), cfg.hw, cfg.hw, cfg.pad, 0.043F,
                                      tr.bt_mat.raw(), t, m, th, tw, want.data(), tiles);
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], want[i]) << "element " << i;
    }
  }
}

TEST_P(SimdBackendTest, WinogradGatherMatchesScalarOnEdgeTilesAndBias) {
  Rng rng(95);
  struct Cfg {
    int m, r;
    std::int64_t oh;
  };
  // oh not a multiple of m forces clipped edge tiles; oh = 4/16 exercises
  // the full-vector interior; oh = 34 a partial last vector group.
  for (const Cfg cfg : {Cfg{2, 3, 8}, Cfg{2, 3, 7}, Cfg{2, 3, 34}, Cfg{4, 3, 16}, Cfg{4, 3, 13},
                        Cfg{4, 5, 12}}) {
    SCOPED_TRACE("m=" + std::to_string(cfg.m) + " r=" + std::to_string(cfg.r) +
                 " oh=" + std::to_string(cfg.oh));
    const auto tr = wino::make_transforms(cfg.m, cfg.r);
    const std::int64_t t = tr.tile, m = tr.m;
    const std::int64_t th = (cfg.oh + m - 1) / m, tw = th;
    const std::int64_t tiles = th * tw;
    const auto levels = random_s8(rng, t * t * tiles);
    // Splat and per-tap M-scale vectors — the gather dequantizes each tap at
    // its own entry, so distinct entries catch any tap-index mix-up.
    std::vector<float> sm_splat(static_cast<std::size_t>(t * t), 0.0217F);
    std::vector<float> sm_taps(static_cast<std::size_t>(t * t));
    for (std::size_t ab = 0; ab < sm_taps.size(); ++ab) {
      sm_taps[ab] = 0.01F + 0.003F * static_cast<float>(ab);
    }
    for (const auto* sm : {&sm_splat, &sm_taps}) {
      for (const float bias : {0.F, -1.375F}) {
        std::vector<float> got(static_cast<std::size_t>(cfg.oh * cfg.oh), 1e9F);
        std::vector<float> want(static_cast<std::size_t>(cfg.oh * cfg.oh), -1e9F);
        kernels().wino_gather_f32(levels.data(), tiles, sm->data(), tr.at_mat.raw(), t, m, th, tw,
                                  cfg.oh, cfg.oh, bias, got.data());
        scalar_kernels().wino_gather_f32(levels.data(), tiles, sm->data(), tr.at_mat.raw(), t, m,
                                         th, tw, cfg.oh, cfg.oh, bias, want.data());
        for (std::size_t i = 0; i < got.size(); ++i) {
          ASSERT_EQ(got[i], want[i]) << "element " << i << " bias " << bias;
        }
      }
    }
  }
}

// ---- blocked-layout kernels (the fused Winograd streaming executor) ---------

TEST_P(SimdBackendTest, WinogradScatterBlockMatchesScalarOnTileRanges) {
  Rng rng(194);
  struct Cfg {
    int m, r;
    std::int64_t hw, pad;
  };
  for (const Cfg cfg : {Cfg{2, 3, 8, 1}, Cfg{2, 3, 7, 1}, Cfg{2, 3, 34, 1}, Cfg{4, 3, 13, 1},
                        Cfg{4, 3, 32, 1}, Cfg{2, 3, 6, 0}, Cfg{4, 5, 16, 2}}) {
    const auto tr = wino::make_transforms(cfg.m, cfg.r);
    const std::int64_t t = tr.tile, m = tr.m;
    const std::int64_t oh = cfg.hw + 2 * cfg.pad - cfg.r + 1;
    const std::int64_t th = (oh + m - 1) / m, tw = th;
    const std::int64_t tiles = th * tw;
    const auto plane = random_s8(rng, cfg.hw * cfg.hw);
    // Block starts that land mid-row, at row boundaries and on the last
    // partial block, mirroring how the streaming executor walks tile ranges.
    for (const std::int64_t bs : {std::int64_t{1}, std::int64_t{3}, tiles}) {
      SCOPED_TRACE("m=" + std::to_string(cfg.m) + " hw=" + std::to_string(cfg.hw) +
                   " block=" + std::to_string(bs));
      for (std::int64_t tile0 = 0; tile0 < tiles; tile0 += bs) {
        const std::int64_t nt = std::min(bs, tiles - tile0);
        std::vector<float> got(static_cast<std::size_t>(t * t * nt), 1e9F);
        std::vector<float> want(static_cast<std::size_t>(t * t * nt), -1e9F);
        kernels().wino_scatter_block_f32(plane.data(), cfg.hw, cfg.hw, cfg.pad, 0.043F,
                                         tr.bt_mat.raw(), t, m, th, tw, tile0, nt, got.data(), nt);
        scalar_kernels().wino_scatter_block_f32(plane.data(), cfg.hw, cfg.hw, cfg.pad, 0.043F,
                                                tr.bt_mat.raw(), t, m, th, tw, tile0, nt,
                                                want.data(), nt);
        for (std::size_t i = 0; i < got.size(); ++i) {
          ASSERT_EQ(got[i], want[i]) << "tile0=" << tile0 << " element " << i;
        }
      }
    }
    // The full-range block is the flat scatter with a different stride
    // convention: same floats, so the two kernels must agree bit-for-bit.
    std::vector<float> blocked(static_cast<std::size_t>(t * t * tiles), 1e9F);
    std::vector<float> flat(static_cast<std::size_t>(t * t * tiles), -1e9F);
    kernels().wino_scatter_block_f32(plane.data(), cfg.hw, cfg.hw, cfg.pad, 0.043F,
                                     tr.bt_mat.raw(), t, m, th, tw, 0, tiles, blocked.data(),
                                     tiles);
    kernels().wino_scatter_f32(plane.data(), cfg.hw, cfg.hw, cfg.pad, 0.043F, tr.bt_mat.raw(), t,
                               m, th, tw, flat.data(), tiles);
    EXPECT_EQ(blocked, flat);
  }
}

std::vector<std::uint8_t> random_u8(Rng& rng, std::int64_t n) {
  std::vector<std::uint8_t> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<std::uint8_t>(std::lround(rng.uniform() * 255.0));
  return v;
}

TEST_P(SimdBackendTest, GemmU8S8K4MatchesScalarOnRandomShapesAndTails) {
  Rng rng(195);
  // kpad always a multiple of the channel block; n chosen to hit the 16-col
  // AVX-512 main loop, the 4-col tail and the scalar remainder.
  const std::int64_t shapes[][3] = {{1, 1, 4},   {3, 17, 8},   {8, 33, 12}, {5, 16, 4},
                                    {13, 31, 28}, {64, 40, 32}, {7, 64, 48}, {2, 15, 128}};
  for (const auto& s : shapes) {
    const std::int64_t m = s[0], n = s[1], kpad = s[2];
    SCOPED_TRACE("m=" + std::to_string(m) + " n=" + std::to_string(n) +
                 " kpad=" + std::to_string(kpad));
    // a: offset-binary u8 (any byte is a legal level+128); b: interleaved s8.
    const auto a = random_u8(rng, m * kpad);
    const auto b = random_s8(rng, kpad * n);
    std::vector<std::int32_t> got(static_cast<std::size_t>(m * n), -1);
    std::vector<std::int32_t> want(static_cast<std::size_t>(m * n), -2);
    kernels().gemm_u8s8_s32_k4(m, n, kpad, a.data(), b.data(), got.data());
    scalar_kernels().gemm_u8s8_s32_k4(m, n, kpad, a.data(), b.data(), want.data());
    EXPECT_EQ(got, want);
  }
}

TEST_P(SimdBackendTest, GemmU8S8K4OffsetCancellationIsExact) {
  // A row of 128s is a zero row in offset-binary: whatever b holds, the
  // -128*colsum correction must cancel it to exactly zero.
  Rng rng(196);
  const std::int64_t m = 3, n = 19, kpad = 24;
  std::vector<std::uint8_t> a(static_cast<std::size_t>(m * kpad), std::uint8_t{128});
  const auto b = random_s8(rng, kpad * n);
  std::vector<std::int32_t> got(static_cast<std::size_t>(m * n), -1);
  kernels().gemm_u8s8_s32_k4(m, n, kpad, a.data(), b.data(), got.data());
  for (const std::int32_t v : got) EXPECT_EQ(v, 0);
}

TEST_P(SimdBackendTest, WinogradGatherQMatchesScalarOnTileRangesAndBias) {
  Rng rng(197);
  struct Cfg {
    int m, r;
    std::int64_t oh;
  };
  for (const Cfg cfg : {Cfg{2, 3, 8}, Cfg{2, 3, 7}, Cfg{2, 3, 34}, Cfg{4, 3, 16}, Cfg{4, 3, 13},
                        Cfg{4, 5, 12}}) {
    const auto tr = wino::make_transforms(cfg.m, cfg.r);
    const std::int64_t t = tr.tile, m = tr.m;
    const std::int64_t th = (cfg.oh + m - 1) / m, tw = th;
    const std::int64_t tiles = th * tw;
    // Per-tap M-scale vector with distinct entries (a splat reduces to the
    // legacy scalar behaviour, covered by the executor differential tests).
    std::vector<float> sm_taps(static_cast<std::size_t>(t * t));
    for (std::size_t ab = 0; ab < sm_taps.size(); ++ab) {
      sm_taps[ab] = 0.0217F + 0.002F * static_cast<float>(ab);
    }
    for (const std::int64_t bs : {std::int64_t{1}, std::int64_t{5}, tiles}) {
      for (const float bias : {0.F, -1.375F}) {
        SCOPED_TRACE("m=" + std::to_string(cfg.m) + " oh=" + std::to_string(cfg.oh) +
                     " block=" + std::to_string(bs) + " bias=" + std::to_string(bias));
        std::vector<std::int8_t> got(static_cast<std::size_t>(cfg.oh * cfg.oh), 42);
        std::vector<std::int8_t> want(got);
        for (std::int64_t tile0 = 0; tile0 < tiles; tile0 += bs) {
          const std::int64_t nt = std::min(bs, tiles - tile0);
          const auto levels = random_s8(rng, t * t * nt);
          kernels().wino_gather_q_s8(levels.data(), nt, sm_taps.data(), tr.at_mat.raw(), t, m, th,
                                     tw, tile0, nt, cfg.oh, cfg.oh, bias, 1.F / 0.11F, got.data());
          scalar_kernels().wino_gather_q_s8(levels.data(), nt, sm_taps.data(), tr.at_mat.raw(), t,
                                            m, th, tw, tile0, nt, cfg.oh, cfg.oh, bias,
                                            1.F / 0.11F, want.data());
        }
        // After walking every block both planes are fully written; comparing
        // whole planes also proves neither kernel touched out-of-range rows.
        EXPECT_EQ(got, want);
      }
    }
  }
}

TEST_P(SimdBackendTest, GemmF32StaysWithinToleranceOfScalar) {
  // fp32 GEMM is the one table entry allowed FMA, so it carries a tolerance
  // instead of a bit check (consumers are the float training/eval paths).
  Rng rng(96);
  const std::int64_t m = 9, n = 37, k = 23;
  std::vector<float> a(static_cast<std::size_t>(m * k)), b(static_cast<std::size_t>(k * n));
  for (auto& v : a) v = static_cast<float>(rng.normal());
  for (auto& v : b) v = static_cast<float>(rng.normal());
  std::vector<float> got(static_cast<std::size_t>(m * n), 0.5F);
  std::vector<float> want(static_cast<std::size_t>(m * n), 0.5F);
  kernels().gemm_f32_packed_nn(m, n, k, 1.3F, a.data(), k, b.data(), n, 0.25F, got.data(), n);
  scalar_kernels().gemm_f32_packed_nn(m, n, k, 1.3F, a.data(), k, b.data(), n, 0.25F,
                                      want.data(), n);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], 1e-4F) << "element " << i;
  }
}

// ---- end-to-end bit-identity ------------------------------------------------

deploy::Int8Pipeline compiled_lenet(nn::ConvAlgo algo) {
  Rng rng(97);
  models::LeNetConfig cfg;
  cfg.algo = algo;
  cfg.qspec = quant::QuantSpec{8};
  models::LeNet5 net(cfg, rng);
  net.set_training(true);
  for (int i = 0; i < 2; ++i) {
    net.forward(ag::Variable(Tensor::randn({4, 1, 28, 28}, rng), false));
  }
  deploy::Int8Pipeline pipe = deploy::compile_lenet(net);
  pipe.freeze_scales(Tensor::randn({4, 1, 28, 28}, rng));
  return pipe;
}

deploy::Int8Pipeline compiled_resnet18() {
  Rng rng(98);
  models::ResNetConfig cfg;
  cfg.width_mult = 0.125F;
  cfg.algo = nn::ConvAlgo::kWinograd2;
  cfg.qspec = quant::QuantSpec{8};
  models::ResNet18 net(cfg, rng);
  net.set_training(true);
  for (int i = 0; i < 2; ++i) {
    net.forward(ag::Variable(Tensor::randn({4, 3, 32, 32}, rng), false));
  }
  deploy::Int8Pipeline pipe = deploy::compile_resnet18(net);
  pipe.freeze_scales(Tensor::randn({4, 3, 32, 32}, rng));
  return pipe;
}

TEST_P(SimdBackendTest, LenetLogitsBitIdenticalToScalarBackend) {
  for (const nn::ConvAlgo algo : {nn::ConvAlgo::kIm2row, nn::ConvAlgo::kWinograd2}) {
    SCOPED_TRACE(nn::to_string(algo));
    // Compile under the scalar reference so preparation is backend-neutral,
    // then run the same input under both backends.
    ASSERT_TRUE(set_backend("scalar"));
    const deploy::Int8Pipeline pipe = compiled_lenet(algo);
    Rng rng(99);
    const Tensor x = Tensor::randn({5, 1, 28, 28}, rng);
    const Tensor want = pipe.run(x);
    ASSERT_TRUE(set_backend(GetParam()));
    const Tensor got = pipe.run(x);
    ASSERT_EQ(got.shape(), want.shape());
    EXPECT_EQ(Tensor::max_abs_diff(got, want), 0.F)
        << "backend " << GetParam() << " diverged from the scalar reference";
  }
}

TEST_P(SimdBackendTest, ResNet18LogitsBitIdenticalToScalarBackend) {
  ASSERT_TRUE(set_backend("scalar"));
  const deploy::Int8Pipeline pipe = compiled_resnet18();
  Rng rng(100);
  const Tensor x = Tensor::randn({3, 3, 32, 32}, rng);
  const Tensor want = pipe.run(x);
  ASSERT_TRUE(set_backend(GetParam()));
  const Tensor got = pipe.run(x);
  ASSERT_EQ(got.shape(), want.shape());
  EXPECT_EQ(Tensor::max_abs_diff(got, want), 0.F)
      << "backend " << GetParam() << " diverged from the scalar reference";
}

// ---- fused blocked executor vs flat reference -------------------------------

// RAII: force the flat Winograd path for a scope, restoring on exit.
struct FlatWinogradScope {
  FlatWinogradScope() : previous_(winograd_blocked_enabled()) {
    set_winograd_blocked_enabled(false);
  }
  ~FlatWinogradScope() { set_winograd_blocked_enabled(previous_); }

 private:
  bool previous_;
};

QTensor random_activation(Rng& rng, std::int64_t n, std::int64_t c, std::int64_t h,
                          std::int64_t w, float scale) {
  QTensor q;
  q.shape = {n, c, h, w};
  q.scale = scale;
  q.data = random_s8(rng, n * c * h * w);
  return q;
}

TEST_P(SimdBackendTest, BlockedWinogradIsBitIdenticalToFlatAcrossShapes) {
  ASSERT_TRUE(winograd_blocked_enabled()) << "another test leaked the flat override";
  Rng rng(198);
  struct Cfg {
    int m;
    std::int64_t c, k, hw;
  };
  // Odd H/W force clipped edge tiles; C = 1/3/5 are not multiples of the
  // channel block (pad-lane cancellation); C = 8 divides it exactly.
  for (const Cfg cfg : {Cfg{2, 1, 4, 7}, Cfg{2, 3, 8, 9}, Cfg{2, 8, 8, 12}, Cfg{4, 5, 8, 9},
                        Cfg{4, 3, 4, 13}, Cfg{4, 8, 16, 16}}) {
    SCOPED_TRACE("m=" + std::to_string(cfg.m) + " c=" + std::to_string(cfg.c) +
                 " k=" + std::to_string(cfg.k) + " hw=" + std::to_string(cfg.hw));
    const auto tr = wino::make_transforms(cfg.m, 3);
    Tensor w = Tensor::randn({cfg.k, cfg.c, 3, 3}, rng);
    const auto prep = prepare_winograd_weights_s8(w, tr, 0.02F);
    ASSERT_FALSE(prep.u_blocked.empty());
    const QTensor in = random_activation(rng, 2, cfg.c, cfg.hw, cfg.hw, 0.05F);
    ConvGeometry g;
    g.batch = 2;
    g.in_channels = cfg.c;
    g.height = cfg.hw;
    g.width = cfg.hw;
    g.out_channels = cfg.k;
    g.kernel = 3;
    g.pad = 1;
    const WinogradStageScales frozen{0.02F, 0.1F, 0.05F, 0.1F};
    Tensor bias = Tensor::randn({cfg.k}, rng);
    const QTensor blocked = winograd_conv_s8_prepared(in, prep, g, tr, frozen, &bias);
    QTensor flat;
    {
      FlatWinogradScope force_flat;
      flat = winograd_conv_s8_prepared(in, prep, g, tr, frozen, &bias);
    }
    EXPECT_EQ(blocked.scale, flat.scale);
    EXPECT_EQ(blocked.shape, flat.shape);
    EXPECT_EQ(blocked.data, flat.data);
  }
}

TEST_P(SimdBackendTest, BlockedWinogradHonorsDonatedStorage) {
  // The streaming executor stages into the arena before consuming a donated
  // buffer (which may alias the input); the donated run must be bit-identical
  // to the fresh-allocation run and must consume the donation.
  Rng rng(199);
  const auto tr = wino::make_transforms(4, 3);
  Tensor w = Tensor::randn({8, 5, 3, 3}, rng);
  const auto prep = prepare_winograd_weights_s8(w, tr, 0.02F);
  const QTensor in = random_activation(rng, 2, 5, 9, 9, 0.05F);
  ConvGeometry g;
  g.batch = 2;
  g.in_channels = 5;
  g.height = 9;
  g.width = 9;
  g.out_channels = 8;
  g.kernel = 3;
  g.pad = 1;
  const WinogradStageScales frozen{0.02F, 0.1F, 0.05F, 0.1F};
  const QTensor fresh = winograd_conv_s8_prepared(in, prep, g, tr, frozen);
  // Donate a copy of the input's bytes: the aliasing-shaped case.
  std::vector<std::int8_t> donated = in.data;
  const QTensor reused = winograd_conv_s8_prepared(in, prep, g, tr, frozen, nullptr, &donated);
  EXPECT_TRUE(donated.empty()) << "donated storage was not consumed";
  EXPECT_EQ(fresh.data, reused.data);
  EXPECT_EQ(fresh.scale, reused.scale);
}

TEST(BlockedWinogradPacking, BlockedUIsOffsetBinaryWithPadLanesAt128) {
  Rng rng(200);
  const auto tr = wino::make_transforms(4, 3);
  Tensor w = Tensor::randn({4, 6, 3, 3}, rng);  // C=6: one real + two pad lanes
  const auto prep = prepare_winograd_weights_s8(w, tr, 0.02F);
  const std::int64_t t2 = tr.tile * tr.tile;
  ASSERT_EQ(prep.padded_in_channels, 8);
  ASSERT_EQ(static_cast<std::int64_t>(prep.u_blocked.size()), t2 * 4 * 8);
  for (std::int64_t abk = 0; abk < t2 * 4; ++abk) {
    const std::int8_t* src = prep.u_q.data() + abk * 6;
    const std::uint8_t* dst = prep.u_blocked.data() + abk * 8;
    for (std::int64_t c = 0; c < 6; ++c) {
      ASSERT_EQ(static_cast<std::int32_t>(dst[c]), static_cast<std::int32_t>(src[c]) + 128);
    }
    ASSERT_EQ(dst[6], 128);  // pad lanes are level 0 in offset-binary
    ASSERT_EQ(dst[7], 128);
  }
}

TEST(BlockedWinogradGate, DynamicScalesAlwaysTakeTheFlatPath) {
  // Any non-frozen internal scale needs a whole-tensor abs-max before the
  // next stage can quantize, which the streaming executor cannot provide;
  // with such scales the toggle must be a no-op on the numbers.
  Rng rng(201);
  const auto tr = wino::make_transforms(2, 3);
  Tensor w = Tensor::randn({4, 3, 3, 3}, rng);
  const auto prep = prepare_winograd_weights_s8(w, tr, 0.02F);
  const QTensor in = random_activation(rng, 1, 3, 8, 8, 0.05F);
  ConvGeometry g;
  g.batch = 1;
  g.in_channels = 3;
  g.height = 8;
  g.width = 8;
  g.out_channels = 4;
  g.kernel = 3;
  g.pad = 1;
  const WinogradStageScales dynamic{0.02F, -1.F, 0.05F, 0.1F};
  const QTensor with_toggle = winograd_conv_s8_prepared(in, prep, g, tr, dynamic);
  QTensor without;
  {
    FlatWinogradScope force_flat;
    without = winograd_conv_s8_prepared(in, prep, g, tr, dynamic);
  }
  EXPECT_EQ(with_toggle.data, without.data);
  EXPECT_EQ(with_toggle.scale, without.scale);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, SimdBackendTest, ::testing::ValuesIn(backend_names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

}  // namespace
}  // namespace wa::backend::simd
