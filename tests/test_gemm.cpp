// Edge-case coverage for the dependency-free GEMM kernels: degenerate k with
// beta scaling, all four transpose layouts, panel-parallel row ranges and
// batched strides.
#include <gtest/gtest.h>

#include <vector>

#include "tensor/gemm.hpp"
#include "tensor/tensor.hpp"

namespace wa {
namespace {

/// Naive reference: C = alpha * op(A) * op(B) + beta * C.
void ref_gemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n, std::int64_t k,
              float alpha, const float* a, const float* b, float beta, float* c) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      float acc = 0.F;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float av = trans_a ? a[kk * m + i] : a[i * k + kk];
        const float bv = trans_b ? b[j * k + kk] : b[kk * n + j];
        acc += av * bv;
      }
      c[i * n + j] = alpha * acc + beta * c[i * n + j];
    }
  }
}

std::vector<float> filled(std::int64_t n, Rng& rng) {
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = rng.normal();
  return v;
}

TEST(Gemm, KZeroAppliesBetaOnEveryPath) {
  // With an empty reduction the product term vanishes and C = beta * C must
  // still happen — on the no-transpose fast path AND the packed general path
  // (the seed's general path skipped its k-loop and left C untouched).
  for (const bool trans_a : {false, true}) {
    for (const bool trans_b : {false, true}) {
      std::vector<float> c(12, 2.F);
      gemm_f32(trans_a, trans_b, 3, 4, 0, 1.F, nullptr, nullptr, 0.5F, c.data());
      for (const float v : c) {
        EXPECT_FLOAT_EQ(v, 1.F) << "trans_a=" << trans_a << " trans_b=" << trans_b;
      }
      gemm_f32(trans_a, trans_b, 3, 4, 0, 1.F, nullptr, nullptr, 0.F, c.data());
      for (const float v : c) EXPECT_FLOAT_EQ(v, 0.F);
    }
  }
}

TEST(Gemm, AllTransposeCombosMatchReference) {
  Rng rng(7);
  const std::int64_t m = 9, n = 11, k = 13;
  const auto a = filled(m * k, rng);
  const auto b = filled(k * n, rng);
  const auto c0 = filled(m * n, rng);
  for (const bool trans_a : {false, true}) {
    for (const bool trans_b : {false, true}) {
      std::vector<float> got = c0, want = c0;
      gemm_f32(trans_a, trans_b, m, n, k, 1.3F, a.data(), b.data(), 0.7F, got.data());
      ref_gemm(trans_a, trans_b, m, n, k, 1.3F, a.data(), b.data(), 0.7F, want.data());
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_NEAR(got[i], want[i], 1e-4F)
            << "trans_a=" << trans_a << " trans_b=" << trans_b << " i=" << i;
      }
    }
  }
}

TEST(Gemm, MidSizeRowsUseParallelPanelsCorrectly) {
  // m in [8, 64) is the out-channels-per-group range of the Winograd GEMMs;
  // the row-panel split must not change results there.
  Rng rng(8);
  const std::int64_t m = 32, n = 300, k = 40;
  const auto a = filled(m * k, rng);
  const auto b = filled(k * n, rng);
  std::vector<float> got(static_cast<std::size_t>(m * n), 3.F);
  std::vector<float> want = got;
  gemm_f32(false, false, m, n, k, 1.F, a.data(), b.data(), 1.F, got.data());
  ref_gemm(false, false, m, n, k, 1.F, a.data(), b.data(), 1.F, want.data());
  for (std::size_t i = 0; i < got.size(); ++i) EXPECT_NEAR(got[i], want[i], 1e-3F);
  // And the packed general path over flattened (row, column) blocks.
  std::vector<float> got_t(static_cast<std::size_t>(m * n), 3.F);
  std::vector<float> at(static_cast<std::size_t>(k * m));
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t kk = 0; kk < k; ++kk)
      at[static_cast<std::size_t>(kk * m + i)] = a[static_cast<std::size_t>(i * k + kk)];
  gemm_f32(true, false, m, n, k, 1.F, at.data(), b.data(), 1.F, got_t.data());
  for (std::size_t i = 0; i < got_t.size(); ++i) EXPECT_NEAR(got_t[i], want[i], 1e-3F);
}

TEST(Gemm, BatchedStridesAdvancePerBatch) {
  Rng rng(9);
  const std::int64_t batch = 3, m = 4, n = 5, k = 6;
  const auto a = filled(batch * m * k, rng);
  const auto b = filled(batch * k * n, rng);
  std::vector<float> got(static_cast<std::size_t>(batch * m * n));
  gemm_batched_f32(false, false, batch, m, n, k, a.data(), m * k, b.data(), k * n, got.data(),
                   m * n);
  for (std::int64_t i = 0; i < batch; ++i) {
    std::vector<float> want(static_cast<std::size_t>(m * n), 0.F);
    ref_gemm(false, false, m, n, k, 1.F, a.data() + i * m * k, b.data() + i * k * n, 0.F,
             want.data());
    for (std::int64_t j = 0; j < m * n; ++j) {
      EXPECT_NEAR(got[static_cast<std::size_t>(i * m * n + j)],
                  want[static_cast<std::size_t>(j)], 1e-4F)
          << "batch " << i;
    }
  }
}

TEST(Gemm, BatchedZeroStrideBroadcasts) {
  // stride 0 shares one operand across the batch (e.g. one weight matrix
  // against per-batch activations).
  Rng rng(10);
  const std::int64_t batch = 4, m = 3, n = 7, k = 5;
  const auto a = filled(m * k, rng);  // shared
  const auto b = filled(batch * k * n, rng);
  std::vector<float> got(static_cast<std::size_t>(batch * m * n));
  gemm_batched_f32(false, false, batch, m, n, k, a.data(), 0, b.data(), k * n, got.data(), m * n);
  for (std::int64_t i = 0; i < batch; ++i) {
    std::vector<float> want(static_cast<std::size_t>(m * n), 0.F);
    ref_gemm(false, false, m, n, k, 1.F, a.data(), b.data() + i * k * n, 0.F, want.data());
    for (std::int64_t j = 0; j < m * n; ++j) {
      EXPECT_NEAR(got[static_cast<std::size_t>(i * m * n + j)],
                  want[static_cast<std::size_t>(j)], 1e-4F);
    }
  }
}

TEST(Gemm, TransposedBatchMatchesReference) {
  Rng rng(11);
  const std::int64_t batch = 2, m = 6, n = 4, k = 8;
  const auto a = filled(batch * k * m, rng);  // stored [k, m] per batch
  const auto b = filled(batch * n * k, rng);  // stored [n, k] per batch
  std::vector<float> got(static_cast<std::size_t>(batch * m * n));
  gemm_batched_f32(true, true, batch, m, n, k, a.data(), k * m, b.data(), n * k, got.data(),
                   m * n);
  for (std::int64_t i = 0; i < batch; ++i) {
    std::vector<float> want(static_cast<std::size_t>(m * n), 0.F);
    ref_gemm(true, true, m, n, k, 1.F, a.data() + i * k * m, b.data() + i * n * k, 0.F,
             want.data());
    for (std::int64_t j = 0; j < m * n; ++j) {
      EXPECT_NEAR(got[static_cast<std::size_t>(i * m * n + j)],
                  want[static_cast<std::size_t>(j)], 1e-4F);
    }
  }
}

}  // namespace
}  // namespace wa
