// Tests for the serving network stack: wire-protocol round trips and
// malformed-frame rejection, slab recycling, byte-reproducible Poisson
// schedules, and the headline contract — logits served over a real TCP
// connection are bit-identical to the in-process submit() path.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>
#include <vector>

#include "deploy/pipeline.hpp"
#include "serve/net/client.hpp"
#include "serve/net/frontend.hpp"
#include "serve/net/poisson.hpp"
#include "serve/net/protocol.hpp"
#include "serve/net/slab.hpp"
#include "serve/server.hpp"

namespace wa::serve::net {
namespace {

using deploy::ConvStage;
using deploy::FlattenStage;
using deploy::Int8Pipeline;
using deploy::LinearStage;
using deploy::PoolStage;

/// Same tiny frozen pipeline the server tests use: fast enough that these
/// tests stress the frontend, not the kernels.
Int8Pipeline tiny_pipeline(Rng& rng, std::int64_t out_classes = 10) {
  ConvStage conv;
  conv.algo = nn::ConvAlgo::kIm2row;
  conv.in_channels = 3;
  conv.out_channels = 8;
  conv.kernel = 3;
  conv.pad = 1;
  conv.input_scale = 0.05F;
  conv.output_scale = 0.1F;
  conv.relu_after = true;
  conv.weights_q = backend::quantize_s8(Tensor::randn({8, 3, 3, 3}, rng, 0.3F));

  LinearStage fc;
  fc.input_scale = 0.1F;
  fc.output_scale = 0.2F;
  fc.weights_q = backend::quantize_s8(Tensor::randn({out_classes, 8 * 4 * 4}, rng, 0.2F));

  Int8Pipeline pipe;
  pipe.push(std::move(conv));
  pipe.push(PoolStage{2, 2});
  pipe.push(FlattenStage{});
  pipe.push(std::move(fc));
  EXPECT_TRUE(pipe.all_scales_frozen());
  return pipe;
}

// ---- Poisson schedule -------------------------------------------------------

TEST(PoissonArrivals, SameSeedProducesByteIdenticalSchedule) {
  PoissonArrivals a(250.0, 7);
  PoissonArrivals b(250.0, 7);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_gap_sec(), b.next_gap_sec()) << "gap " << i;
  }
  PoissonArrivals c(250.0, 7);
  PoissonArrivals d(250.0, 8);
  bool any_differ = false;
  for (int i = 0; i < 32; ++i) any_differ |= c.next_gap_sec() != d.next_gap_sec();
  EXPECT_TRUE(any_differ) << "different seeds must give different schedules";
}

TEST(PoissonArrivals, MatchesPinnedGoldenGaps) {
  // mt19937_64's output stream and the manual inverse transform are both
  // fully specified, so these exact doubles must reproduce on every
  // toolchain. Golden values: seed 123, rate 100/s.
  PoissonArrivals p(100.0, 123);
  EXPECT_EQ(p.next_gap_sec(), 0.0037571241011969884);
  EXPECT_EQ(p.next_gap_sec(), 0.008118836892657539);
  EXPECT_EQ(p.next_gap_sec(), 0.027852300186480061);
  EXPECT_EQ(p.next_gap_sec(), 0.013330270454996882);
}

TEST(PoissonArrivals, GapsAverageToTheOfferedRate) {
  PoissonArrivals p(500.0, 99);
  double total = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) total += p.next_gap_sec();
  const double mean = total / kN;
  EXPECT_NEAR(mean, 1.0 / 500.0, 0.1 / 500.0);  // within 10% of 2ms
}

// ---- wire protocol ----------------------------------------------------------

TEST(Protocol, RequestFrameRoundTrips) {
  Rng rng(3);
  const Tensor input = Tensor::randn({2, 3, 4, 4}, rng);
  SubmitOptions opts;
  opts.priority = Priority::kHigh;
  opts.deadline_us = 1234;
  const std::vector<std::uint8_t> frame = encode_request(77, "mnist", input, opts);

  ASSERT_GE(frame.size(), 4u + kRequestHeadBytes);
  EXPECT_EQ(load_u32(frame.data()), frame.size() - 4);

  RequestHead head;
  ASSERT_EQ(parse_request_head({frame.data() + 4, kRequestHeadBytes}, head), "");
  EXPECT_EQ(head.request_id, 77u);
  EXPECT_EQ(head.priority, Priority::kHigh);
  EXPECT_EQ(head.deadline_us, 1234u);
  EXPECT_EQ(head.ndim, 4);
  EXPECT_EQ(head.model_len, 5);

  std::string model;
  Shape dims;
  const std::span<const std::uint8_t> meta{frame.data() + 4 + kRequestHeadBytes,
                                           request_meta_bytes(head)};
  ASSERT_EQ(parse_request_meta(meta, head, model, dims), "");
  EXPECT_EQ(model, "mnist");
  EXPECT_EQ(dims, (Shape{2, 3, 4, 4}));

  const std::uint8_t* payload = frame.data() + 4 + kRequestHeadBytes + meta.size();
  ASSERT_EQ(frame.size() - 4 - kRequestHeadBytes - meta.size(),
            static_cast<std::size_t>(input.numel()) * sizeof(float));
  EXPECT_EQ(std::memcmp(payload, input.raw(), input.numel() * sizeof(float)), 0);
}

TEST(Protocol, ResponseFramesRoundTrip) {
  Rng rng(4);
  const Tensor logits = Tensor::randn({3, 10}, rng);
  const std::vector<std::uint8_t> ok = encode_ok_response(42, logits);
  Response resp;
  ASSERT_EQ(decode_response({ok.data() + 4, ok.size() - 4}, resp), "");
  EXPECT_EQ(resp.request_id, 42u);
  EXPECT_EQ(resp.status, Status::kOk);
  ASSERT_EQ(resp.logits.shape(), logits.shape());
  EXPECT_EQ(std::memcmp(resp.logits.raw(), logits.raw(), logits.numel() * sizeof(float)), 0);

  const std::vector<std::uint8_t> err =
      encode_error_response(43, Status::kQueueFull, "queue_full");
  ASSERT_EQ(decode_response({err.data() + 4, err.size() - 4}, resp), "");
  EXPECT_EQ(resp.request_id, 43u);
  EXPECT_EQ(resp.status, Status::kQueueFull);
  EXPECT_EQ(resp.error, "queue_full");
  EXPECT_TRUE(resp.logits.empty());
}

TEST(Protocol, RejectsMalformedHeads) {
  Rng rng(5);
  std::vector<std::uint8_t> frame = encode_request(1, "m", Tensor::randn({1, 2}, rng), {});
  RequestHead head;

  std::vector<std::uint8_t> bad = frame;
  bad[4] ^= 0xFF;  // magic
  EXPECT_NE(parse_request_head({bad.data() + 4, kRequestHeadBytes}, head), "");

  bad = frame;
  bad[4 + 4] = 99;  // version
  EXPECT_NE(parse_request_head({bad.data() + 4, kRequestHeadBytes}, head), "");

  bad = frame;
  bad[4 + 5] = 7;  // priority out of range
  EXPECT_NE(parse_request_head({bad.data() + 4, kRequestHeadBytes}, head), "");

  bad = frame;
  bad[4 + 6] = 0;  // ndim 0
  EXPECT_NE(parse_request_head({bad.data() + 4, kRequestHeadBytes}, head), "");

  bad = frame;
  bad[4 + 6] = kMaxNdim + 1;
  EXPECT_NE(parse_request_head({bad.data() + 4, kRequestHeadBytes}, head), "");
}

TEST(Protocol, CheckedNumelRejectsWrappingProducts) {
  std::uint64_t n = 0;
  EXPECT_TRUE(checked_numel({2, 3, 4}, 1u << 20, n));
  EXPECT_EQ(n, 24u);
  // (2^54 + 1) * 3 * 32 * 32 wraps mod 2^64 to 3072 — the naive product
  // would claim a tiny payload for an absurd shape.
  n = 0;
  EXPECT_FALSE(checked_numel({(std::int64_t{1} << 54) + 1, 3, 32, 32}, 1u << 30, n));
  EXPECT_EQ(n, 0u) << "out must be untouched on rejection";
  EXPECT_FALSE(checked_numel({1 << 20}, (1 << 20) - 1, n)) << "cap is inclusive";
  EXPECT_TRUE(checked_numel({1 << 20}, 1 << 20, n));
  EXPECT_FALSE(checked_numel({0, 4}, 1 << 20, n)) << "non-positive dims rejected";
}

TEST(Protocol, DecodeResponseRejectsOverflowingDims) {
  // Hand-crafted ok-response body: dims whose product wraps to 3072 over a
  // 3072-float payload. Before the overflow guard this passed the size check
  // and built a Tensor whose shape lied about its storage.
  std::vector<std::uint8_t> body;
  const auto put = [&body](const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    body.insert(body.end(), b, b + n);
  };
  const std::uint32_t magic = kResponseMagic;
  put(&magic, 4);
  body.push_back(static_cast<std::uint8_t>(Status::kOk));
  body.push_back(4);  // ndim
  body.push_back(0);
  body.push_back(0);  // reserved u16
  const std::uint64_t id = 7;
  put(&id, 8);
  const std::int64_t dims[4] = {(std::int64_t{1} << 54) + 1, 3, 32, 32};
  put(dims, sizeof dims);
  const std::vector<float> payload(3072, 1.0F);
  put(payload.data(), payload.size() * sizeof(float));
  Response resp;
  EXPECT_EQ(decode_response(body, resp), "response payload size mismatch");
}

// ---- slab pool --------------------------------------------------------------

TEST(SlabPool, RecyclesReleasedStorage) {
  SlabPool pool;
  std::vector<float> a = pool.acquire(1000);
  EXPECT_EQ(a.size(), 1000u);
  EXPECT_GE(a.capacity(), 1024u) << "allocations round up to the bucket boundary";
  const float* ptr = a.data();
  pool.release(std::move(a));
  // Any request in the same power-of-two class must reuse the slab.
  std::vector<float> b = pool.acquire(600);
  EXPECT_EQ(b.data(), ptr);
  EXPECT_EQ(b.size(), 600u);
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 1u);
}

TEST(SlabPool, DropsSlabsBeyondTheByteCap) {
  SlabPool pool(/*max_pooled_bytes=*/1024);  // 256 floats
  std::vector<float> big = pool.acquire(10000);
  pool.release(std::move(big));
  EXPECT_EQ(pool.pooled_bytes(), 0u) << "an over-cap slab is freed, not pooled";
  std::vector<float> small = pool.acquire(100);
  pool.release(std::move(small));
  EXPECT_GT(pool.pooled_bytes(), 0u);
}

// ---- end-to-end over TCP ----------------------------------------------------

TEST(NetFrontend, LogitsBitIdenticalToInProcessSubmit) {
  Rng rng(11);
  Int8Pipeline pipe = tiny_pipeline(rng);
  InferenceServer server;
  server.add_model("tiny", std::move(pipe));
  NetFrontend frontend(server);
  Client client("127.0.0.1", frontend.port());

  for (int i = 0; i < 8; ++i) {
    const Tensor input = Tensor::randn({1 + i % 3, 3, 8, 8}, rng);
    const Tensor in_process = server.submit("tiny", input).get();
    const Tensor over_network = client.infer("tiny", input);
    ASSERT_EQ(over_network.shape(), in_process.shape()) << "request " << i;
    ASSERT_EQ(std::memcmp(over_network.raw(), in_process.raw(),
                          in_process.numel() * sizeof(float)),
              0)
        << "network logits must be bit-identical to submit(), request " << i;
  }
}

TEST(NetFrontend, ManyConnectionsPipelinedRequestsAllComplete) {
  Rng rng(12);
  Int8Pipeline pipe = tiny_pipeline(rng);
  const Int8Pipeline reference = pipe;
  ServerOptions opts;
  opts.workers = 2;
  InferenceServer server(opts);
  server.add_model("tiny", std::move(pipe));
  NetFrontend frontend(server);

  constexpr int kConns = 8;
  constexpr int kPerConn = 16;
  Rng in_rng(13);
  const Tensor input = Tensor::randn({1, 3, 8, 8}, in_rng);
  const Tensor want = reference.run(input);

  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int c = 0; c < kConns; ++c) {
    threads.emplace_back([&, c] {
      Client client("127.0.0.1", frontend.port());
      // Pipelined: all sends first, then all receives.
      for (int i = 0; i < kPerConn; ++i) {
        client.send(static_cast<std::uint64_t>(c) * 1000 + i, "tiny", input);
      }
      std::vector<bool> seen(kPerConn, false);
      for (int i = 0; i < kPerConn; ++i) {
        const Response resp = client.recv();
        if (resp.status != Status::kOk ||
            std::memcmp(resp.logits.raw(), want.raw(), want.numel() * sizeof(float)) != 0) {
          failures.fetch_add(1);
          continue;
        }
        const auto seq = static_cast<int>(resp.request_id - static_cast<std::uint64_t>(c) * 1000);
        if (seq < 0 || seq >= kPerConn || seen[seq]) {
          failures.fetch_add(1);
        } else {
          seen[seq] = true;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(NetFrontend, UnknownModelGetsAnErrorFrameNotAHangup) {
  Rng rng(14);
  InferenceServer server;
  Int8Pipeline pipe = tiny_pipeline(rng);
  server.add_model("tiny", std::move(pipe));
  NetFrontend frontend(server);
  Client client("127.0.0.1", frontend.port());

  const Tensor input = Tensor::randn({1, 3, 8, 8}, rng);
  client.send(5, "nope", input);
  const Response resp = client.recv();
  EXPECT_EQ(resp.request_id, 5u);
  EXPECT_EQ(resp.status, Status::kUnknownModel);

  // The connection survives a rejected request: the next one still works.
  const Tensor logits = client.infer("tiny", input);
  EXPECT_EQ(logits.size(1), 10);
}

TEST(NetFrontend, InfeasibleDeadlineIsRefusedOverTheWire) {
  Rng rng(15);
  Int8Pipeline pipe = tiny_pipeline(rng);
  ServerOptions opts;
  opts.workers = 1;
  opts.batch.max_delay_us = 0;
  InferenceServer server(opts);
  server.add_model("tiny", std::move(pipe));
  NetFrontend frontend(server);
  Client client("127.0.0.1", frontend.port());

  const Tensor input = Tensor::randn({1, 3, 8, 8}, rng);
  // Warm the dispatch-time EMA past its warmup window.
  for (int i = 0; i < 12; ++i) client.infer("tiny", input);

  SubmitOptions req;
  req.deadline_us = 1;  // far below any real dispatch
  client.send(99, "tiny", input, req);
  const Response resp = client.recv();
  EXPECT_EQ(resp.request_id, 99u);
  EXPECT_EQ(resp.status, Status::kDeadlineInfeasible);
}

TEST(NetFrontend, MalformedFrameGetsBadRequestThenClose) {
  Rng rng(16);
  InferenceServer server;
  Int8Pipeline pipe = tiny_pipeline(rng);
  server.add_model("tiny", std::move(pipe));
  NetFrontend frontend(server);

  // Raw socket: the Client refuses to build malformed frames.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(frontend.port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);

  std::vector<std::uint8_t> frame =
      encode_request(21, "tiny", Tensor::randn({1, 3, 8, 8}, rng), {});
  frame[4] ^= 0xFF;  // corrupt the magic
  ASSERT_EQ(::write(fd, frame.data(), frame.size()), static_cast<ssize_t>(frame.size()));

  std::uint8_t len_buf[4];
  std::size_t got = 0;
  while (got < 4) {
    const ssize_t n = ::read(fd, len_buf + got, 4 - got);
    ASSERT_GT(n, 0);
    got += static_cast<std::size_t>(n);
  }
  std::vector<std::uint8_t> body(load_u32(len_buf));
  got = 0;
  while (got < body.size()) {
    const ssize_t n = ::read(fd, body.data() + got, body.size() - got);
    ASSERT_GT(n, 0);
    got += static_cast<std::size_t>(n);
  }
  Response resp;
  ASSERT_EQ(decode_response(body, resp), "");
  EXPECT_EQ(resp.status, Status::kBadRequest);

  // The stream cannot be resynchronized: the server closes after replying.
  // EOF, or ECONNRESET when our corrupted frame's tail was still unread at
  // close (the kernel turns that into an RST) — either way, closed.
  std::uint8_t extra;
  const ssize_t n = ::read(fd, &extra, 1);
  EXPECT_TRUE(n == 0 || (n < 0 && errno == ECONNRESET))
      << "connection must be closed after a framing error (read returned " << n << ")";
  ::close(fd);
}

TEST(NetFrontend, OverflowingDimsProductIsRejectedNotDispatched) {
  Rng rng(18);
  InferenceServer server;
  Int8Pipeline pipe = tiny_pipeline(rng);
  server.add_model("tiny", std::move(pipe));
  NetFrontend frontend(server);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(frontend.port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);

  // Start from a valid {1, 3, 32, 32} frame (3072 floats), then rewrite the
  // batch dim to 2^54 + 1: the dims product wraps mod 2^64 right back to
  // 3072, so the frame-length check alone would admit a tensor claiming
  // ~5 * 10^19 elements over a 12 KiB payload.
  std::vector<std::uint8_t> frame =
      encode_request(31, "tiny", Tensor::randn({1, 3, 32, 32}, rng), {});
  const std::int64_t huge = (std::int64_t{1} << 54) + 1;
  std::memcpy(frame.data() + 4 + kRequestHeadBytes + 4 /* "tiny" */, &huge, sizeof huge);
  ASSERT_EQ(::write(fd, frame.data(), frame.size()), static_cast<ssize_t>(frame.size()));

  std::uint8_t len_buf[4];
  std::size_t got = 0;
  while (got < 4) {
    const ssize_t n = ::read(fd, len_buf + got, 4 - got);
    ASSERT_GT(n, 0);
    got += static_cast<std::size_t>(n);
  }
  std::vector<std::uint8_t> body(load_u32(len_buf));
  got = 0;
  while (got < body.size()) {
    const ssize_t n = ::read(fd, body.data() + got, body.size() - got);
    ASSERT_GT(n, 0);
    got += static_cast<std::size_t>(n);
  }
  Response resp;
  ASSERT_EQ(decode_response(body, resp), "");
  EXPECT_EQ(resp.request_id, 31u);
  EXPECT_EQ(resp.status, Status::kBadRequest);
  EXPECT_NE(resp.error.find("dims product"), std::string::npos) << resp.error;
  std::uint8_t extra;
  const ssize_t n = ::read(fd, &extra, 1);
  EXPECT_TRUE(n == 0 || (n < 0 && errno == ECONNRESET))
      << "connection must close after the rejected frame (read returned " << n << ")";
  ::close(fd);
}

TEST(NetFrontend, StopWithInFlightRequestsIsSafe) {
  Rng rng(17);
  Int8Pipeline pipe = tiny_pipeline(rng);
  ServerOptions opts;
  opts.workers = 1;
  InferenceServer server(opts);
  server.add_model("tiny", std::move(pipe));

  auto frontend = std::make_unique<NetFrontend>(server, FrontendOptions{});
  Client client("127.0.0.1", frontend->port());
  const Tensor input = Tensor::randn({4, 3, 8, 8}, rng);
  for (int i = 0; i < 32; ++i) client.send(static_cast<std::uint64_t>(i), "tiny", input);
  // Tear the frontend down while dispatches are still in flight: straggler
  // completions must land in orphaned outboxes, not crash.
  frontend.reset();
  server.shutdown();
}

}  // namespace
}  // namespace wa::serve::net
