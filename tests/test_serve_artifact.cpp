// Tests for the .wam compiled-model artifact: save/load must round-trip a
// compiled pipeline bit-exactly WITHOUT recomputing any weight cache (the
// weight_transforms / weight_repacks counters stay flat across a load), and
// the loader must reject corrupted, truncated and wrong-version artifacts
// before materializing anything.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "backend/perf_counters.hpp"
#include "deploy/passes/passes.hpp"
#include "deploy/pipeline.hpp"
#include "serve/artifact.hpp"
#include "tensor/io.hpp"
#include "winograd/cook_toom.hpp"

namespace wa::serve {
namespace {

using backend::PerfSnapshot;
using backend::snapshot_counters;
using deploy::AddStage;
using deploy::ConcatStage;
using deploy::ConvStage;
using deploy::Int8Pipeline;
using deploy::StageIO;

// Calibrate (observer warm-up, no full training needed — "compiled" is the
// contract under test, not accuracy) and compile the two paper models.

Int8Pipeline compiled_lenet(nn::ConvAlgo algo, Rng& rng) {
  models::LeNetConfig cfg;
  cfg.algo = algo;
  cfg.qspec = quant::QuantSpec{8};
  models::LeNet5 net(cfg, rng);
  net.set_training(true);
  for (int i = 0; i < 2; ++i) {
    net.forward(ag::Variable(Tensor::randn({4, 1, 28, 28}, rng), false));
  }
  Int8Pipeline pipe = deploy::compile_lenet(net);
  // The logits stage keeps a dynamic scale out of the compiler; serving (and
  // bit-stable round-trip comparison across batches) wants it frozen.
  pipe.freeze_scales(Tensor::randn({4, 1, 28, 28}, rng));
  return pipe;
}

Int8Pipeline compiled_resnet18(nn::ConvAlgo algo, Rng& rng, std::int64_t tap_group_size = 0) {
  models::ResNetConfig cfg;
  cfg.width_mult = 0.125F;
  cfg.algo = algo;
  cfg.qspec = quant::QuantSpec{8};
  cfg.tap_group_size = tap_group_size;
  models::ResNet18 net(cfg, rng);
  net.set_training(true);
  for (int i = 0; i < 2; ++i) {
    net.forward(ag::Variable(Tensor::randn({4, 3, 32, 32}, rng), false));
  }
  Int8Pipeline pipe = deploy::compile_resnet18(net);
  pipe.freeze_scales(Tensor::randn({4, 3, 32, 32}, rng));
  return pipe;
}

std::string saved_bytes(const Int8Pipeline& pipe) {
  std::ostringstream os(std::ios::binary);
  save_pipeline(os, pipe);
  return os.str();
}

Int8Pipeline loaded_from(const std::string& bytes) {
  std::istringstream is(bytes, std::ios::binary);
  return load_pipeline(is);
}

// ---- round trips ------------------------------------------------------------

TEST(WamArtifact, LenetRoundTripIsBitExactAndTransformFree) {
  for (const nn::ConvAlgo algo : {nn::ConvAlgo::kIm2row, nn::ConvAlgo::kWinograd2}) {
    Rng rng(31);
    const Int8Pipeline pipe = compiled_lenet(algo, rng);
    const std::string bytes = saved_bytes(pipe);

    const PerfSnapshot before = snapshot_counters();
    const Int8Pipeline loaded = loaded_from(bytes);
    EXPECT_EQ(snapshot_counters(), before)
        << "load must deserialize the prepared caches, not rebuild them";

    ASSERT_EQ(loaded.size(), pipe.size());
    EXPECT_TRUE(loaded.all_scales_frozen());
    const Tensor x = Tensor::randn({5, 1, 28, 28}, rng);
    const Tensor want = pipe.run(x);
    const Tensor got = loaded.run(x);
    ASSERT_EQ(got.shape(), want.shape());
    EXPECT_EQ(Tensor::max_abs_diff(got, want), 0.F)
        << "algo " << nn::to_string(algo) << ": loaded pipeline must match bit-exactly";
    EXPECT_EQ(snapshot_counters(), before)
        << "forwards after load must stay on the cached hot path";
  }
}

TEST(WamArtifact, ResNet18RoundTripIsBitExactAndTransformFree) {
  // The full graph surface in one artifact: Winograd block convs with frozen
  // Qx scales + integer BnStages, folded GEMM stem/shortcut convs, pool
  // stages, level-aligned AddStages reading named slots, global avg-pool and
  // the final linear stage.
  Rng rng(32);
  const Int8Pipeline pipe = compiled_resnet18(nn::ConvAlgo::kWinograd2, rng);
  const std::string bytes = saved_bytes(pipe);

  const PerfSnapshot before = snapshot_counters();
  const Int8Pipeline loaded = loaded_from(bytes);
  EXPECT_EQ(snapshot_counters(), before) << "zero weight transforms/repacks during load";

  ASSERT_EQ(loaded.size(), pipe.size());
  const Tensor x = Tensor::randn({3, 3, 32, 32}, rng);
  const Tensor want = pipe.run(x);
  const Tensor got = loaded.run(x);
  ASSERT_EQ(got.shape(), want.shape());
  EXPECT_EQ(Tensor::max_abs_diff(got, want), 0.F);
  loaded.run(x);
  EXPECT_EQ(snapshot_counters(), before);
}

TEST(WamArtifact, FileRoundTripPreservesGraphWiringAndTimingLabels) {
  Rng rng(33);
  const Int8Pipeline pipe = compiled_resnet18(nn::ConvAlgo::kIm2row, rng);
  const std::string path = "test_artifact_roundtrip.wam";
  save_pipeline(path, pipe);
  const Int8Pipeline loaded = load_pipeline(path);
  std::remove(path.c_str());

  const Tensor x = Tensor::randn({2, 3, 32, 32}, rng);
  std::vector<deploy::StageTiming> want_t, got_t;
  const Tensor want = pipe.run(x, &want_t);
  const Tensor got = loaded.run(x, &got_t);
  EXPECT_EQ(Tensor::max_abs_diff(got, want), 0.F);
  ASSERT_EQ(got_t.size(), want_t.size());
  for (std::size_t i = 0; i < got_t.size(); ++i) {
    EXPECT_EQ(got_t[i].label, want_t[i].label) << "stage " << i;
  }
}

// ---- rejection --------------------------------------------------------------

TEST(WamArtifact, RejectsForeignAndGarbageFiles) {
  {
    std::istringstream is(std::string("not a wam file at all, sorry"), std::ios::binary);
    EXPECT_THROW(load_pipeline(is), std::runtime_error);
  }
  {
    std::istringstream is(std::string(), std::ios::binary);  // empty
    EXPECT_THROW(load_pipeline(is), std::runtime_error);
  }
}

TEST(WamArtifact, RejectsWrongVersion) {
  Rng rng(34);
  std::string bytes = saved_bytes(compiled_lenet(nn::ConvAlgo::kIm2row, rng));
  bytes[4] = static_cast<char>(kWamVersion + 1);  // version field follows the magic
  try {
    loaded_from(bytes);
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos) << e.what();
  }
}

TEST(WamArtifact, RejectsTruncation) {
  Rng rng(35);
  const std::string bytes = saved_bytes(compiled_lenet(nn::ConvAlgo::kIm2row, rng));
  // Cut inside the header, inside the stage list, and one byte short.
  for (const std::size_t keep :
       {std::size_t{2}, std::size_t{11}, bytes.size() / 3, bytes.size() - 1}) {
    SCOPED_TRACE("keep=" + std::to_string(keep));
    EXPECT_THROW(loaded_from(bytes.substr(0, keep)), std::runtime_error);
  }
}

TEST(WamArtifact, RejectsCorruptedPayload) {
  Rng rng(36);
  const std::string bytes = saved_bytes(compiled_lenet(nn::ConvAlgo::kWinograd2, rng));
  const std::size_t header = 4 + 4 + 8 + 8;
  for (const std::size_t victim : {header, header + (bytes.size() - header) / 2, bytes.size() - 1}) {
    SCOPED_TRACE("victim=" + std::to_string(victim));
    std::string corrupt = bytes;
    corrupt[victim] = static_cast<char>(corrupt[victim] ^ 0x5A);
    try {
      loaded_from(corrupt);
      FAIL() << "expected runtime_error";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos) << e.what();
    }
  }
}

TEST(WamArtifact, RejectsPayloadLargerThanTheStageList) {
  Rng rng(37);
  const std::string bytes = saved_bytes(compiled_lenet(nn::ConvAlgo::kIm2row, rng));
  EXPECT_NO_THROW(loaded_from(bytes));  // sanity: intact artifact loads
  // Declare 16 extra payload bytes (header offset 8 holds payload_bytes as a
  // little-endian u64) and append them: the stage list then fails to consume
  // the full payload. The checksum guard fires first unless we recompute it,
  // so corrupting only the size field must still reject — via either check.
  std::string padded = bytes + std::string(16, '\0');
  auto declared = static_cast<std::uint64_t>(bytes.size() - (4 + 4 + 8 + 8)) + 16;
  for (int i = 0; i < 8; ++i) {
    padded[8 + i] = static_cast<char>((declared >> (8 * i)) & 0xFF);
  }
  EXPECT_THROW(loaded_from(padded), std::runtime_error);
}

// ---- v1 back-compat: the checked-in golden fixture --------------------------

// tests/data/golden_v1.wam was written by the version-1 serializer (before
// epilogues and the memory plan existed) over a hand-wired graph covering
// both conv kinds, integer batch-norm, a residual join, pooling and a linear
// head; golden_v1_input.bin / golden_v1_logits.bin pin its exact behavior.
// The v2 reader must keep loading it bit-for-bit forever.

std::string fixture_path(const char* name) {
  return std::string(WA_SOURCE_DIR) + "/tests/data/" + name;
}

Tensor load_fixture_tensor(const char* name) {
  std::ifstream is(fixture_path(name), std::ios::binary);
  EXPECT_TRUE(is.good()) << "missing fixture " << name;
  return load_tensor(is);
}

TEST(WamArtifact, GoldenV1FixtureLoadsBitExactlyUnderTheV2Reader) {
  const PerfSnapshot before = snapshot_counters();
  const Int8Pipeline pipe = load_pipeline(fixture_path("golden_v1.wam"));
  EXPECT_EQ(snapshot_counters(), before) << "v1 load must not rebuild any weight cache";
  EXPECT_EQ(pipe.size(), 8u);
  EXPECT_EQ(pipe.plan(), nullptr) << "a v1 artifact carries no memory plan";

  const Tensor input = load_fixture_tensor("golden_v1_input.bin");
  const Tensor want = load_fixture_tensor("golden_v1_logits.bin");
  const Tensor got = pipe.run(input);
  ASSERT_EQ(got.shape(), want.shape());
  EXPECT_EQ(Tensor::max_abs_diff(got, want), 0.F)
      << "the v2 reader changed the meaning of a v1 artifact";
}

TEST(WamArtifact, GoldenV1FixtureSurvivesV2RewriteAndOptimization) {
  Int8Pipeline pipe = load_pipeline(fixture_path("golden_v1.wam"));
  const Tensor input = load_fixture_tensor("golden_v1_input.bin");
  const Tensor want = load_fixture_tensor("golden_v1_logits.bin");

  // Rewritten as v2 (no plan) it still means the same thing.
  const Int8Pipeline rewritten = loaded_from(saved_bytes(pipe));
  EXPECT_EQ(Tensor::max_abs_diff(rewritten.run(input), want), 0.F);

  // Optimized (fusion + plan) it STILL means the same thing, and the plan
  // round-trips with it.
  deploy::passes::OptimizeOptions opts;
  opts.reference_input = input.shape();
  deploy::passes::optimize_pipeline(pipe, opts);
  ASSERT_NE(pipe.plan(), nullptr);
  const Int8Pipeline opt_loaded = loaded_from(saved_bytes(pipe));
  ASSERT_NE(opt_loaded.plan(), nullptr);
  EXPECT_EQ(opt_loaded.plan()->peak_bytes, pipe.plan()->peak_bytes);
  EXPECT_EQ(opt_loaded.plan()->in_place, pipe.plan()->in_place);
  EXPECT_EQ(Tensor::max_abs_diff(opt_loaded.run(input), want), 0.F);
}

// ---- v2: plan round trip and corrupted-plan rejection -----------------------

std::uint64_t test_fnv1a64(const char* data, std::size_t n) {
  std::uint64_t h = 14695981039346656037ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ULL;
  }
  return h;
}

constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 8;

/// Re-seal a tampered artifact: recompute the payload checksum so the
/// corruption reaches the PLAN validator instead of the checksum guard.
void reseal(std::string& bytes) {
  const std::uint64_t sum = test_fnv1a64(bytes.data() + kHeaderBytes, bytes.size() - kHeaderBytes);
  for (int i = 0; i < 8; ++i) bytes[16 + i] = static_cast<char>((sum >> (8 * i)) & 0xFF);
}

TEST(WamArtifact, V2RoundTripPreservesEpiloguesAndPlan) {
  Rng rng(39);
  Int8Pipeline pipe = compiled_resnet18(nn::ConvAlgo::kWinograd2, rng);
  deploy::passes::OptimizeOptions opts;
  opts.reference_input = {2, 3, 32, 32};
  const auto report = deploy::passes::optimize_pipeline(pipe, opts);
  ASSERT_GT(report.fused_stages, 0u);
  ASSERT_NE(pipe.plan(), nullptr);

  const PerfSnapshot before = snapshot_counters();
  const Int8Pipeline loaded = loaded_from(saved_bytes(pipe));
  EXPECT_EQ(snapshot_counters(), before);
  ASSERT_EQ(loaded.size(), pipe.size());
  ASSERT_NE(loaded.plan(), nullptr);
  EXPECT_EQ(loaded.plan()->peak_bytes, pipe.plan()->peak_bytes);
  EXPECT_EQ(loaded.plan()->naive_peak_bytes, pipe.plan()->naive_peak_bytes);
  EXPECT_EQ(loaded.plan()->arena_bytes, pipe.plan()->arena_bytes);
  EXPECT_EQ(loaded.plan()->in_place, pipe.plan()->in_place);
  EXPECT_EQ(loaded.plan()->offsets, pipe.plan()->offsets);

  const Tensor x = Tensor::randn({3, 3, 32, 32}, rng);
  deploy::RunStats a{}, b{};
  const Tensor want = pipe.run(x, nullptr, &a);
  const Tensor got = loaded.run(x, nullptr, &b);
  EXPECT_EQ(Tensor::max_abs_diff(got, want), 0.F);
  EXPECT_EQ(a.peak_activation_bytes, b.peak_activation_bytes)
      << "the loaded plan must reproduce the planned memory behavior";
}

// ---- v3: the pre-blocked Winograd U cache -----------------------------------

TEST(WamArtifact, V3RoundTripCarriesTheBlockedUCacheVerbatim) {
  // The saver writes u_blocked + padded_in_channels after the flat levels;
  // the v3 reader must deserialize them (counters stay flat — the round-trip
  // tests above pin that), byte-identical to the compiled originals, so the
  // loaded pipeline starts on the fused streaming path with zero repacking.
  Rng rng(41);
  const Int8Pipeline pipe = compiled_resnet18(nn::ConvAlgo::kWinograd2, rng);
  const Int8Pipeline loaded = loaded_from(saved_bytes(pipe));
  ASSERT_EQ(loaded.size(), pipe.size());
  std::size_t wino_stages = 0;
  for (std::size_t i = 0; i < pipe.size(); ++i) {
    const auto* want = std::get_if<ConvStage>(&pipe.nodes()[i].op);
    if (want == nullptr || want->wino_cache.empty()) continue;
    const auto* got = std::get_if<ConvStage>(&loaded.nodes()[i].op);
    ASSERT_NE(got, nullptr);
    EXPECT_FALSE(want->wino_cache.u_blocked.empty())
        << "stage " << i << ": compile must pre-block the Winograd U";
    EXPECT_EQ(got->wino_cache.u_blocked, want->wino_cache.u_blocked);
    EXPECT_EQ(got->wino_cache.padded_in_channels, want->wino_cache.padded_in_channels);
    ++wino_stages;
  }
  EXPECT_GT(wino_stages, 0u) << "the fixture model must exercise Winograd stages";
}

TEST(WamArtifact, GoldenV1FixtureRebuildsTheBlockedUCacheOnLoad) {
  // Pre-v3 artifacts carry only the flat levels; the loader rebuilds the
  // blocked layout so old models still run the fused path (and, per the
  // golden logits test above, produce the same bytes while doing so).
  const Int8Pipeline pipe = load_pipeline(fixture_path("golden_v1.wam"));
  std::size_t wino_stages = 0;
  for (const auto& node : pipe.nodes()) {
    const auto* st = std::get_if<ConvStage>(&node.op);
    if (st == nullptr || st->wino_cache.empty()) continue;
    EXPECT_FALSE(st->wino_cache.u_blocked.empty())
        << "v1 load must rebuild the blocked U from the flat levels";
    EXPECT_EQ(st->wino_cache.padded_in_channels,
              (st->in_channels + backend::kWinoChannelBlock - 1) / backend::kWinoChannelBlock *
                  backend::kWinoChannelBlock);
    ++wino_stages;
  }
  EXPECT_GT(wino_stages, 0u) << "the golden fixture must contain a Winograd stage";
}

// ---- v4: per-tap scale vectors ----------------------------------------------

TEST(WamArtifact, V4RoundTripCarriesPerTapScaleVectorsVerbatim) {
  // A fully tap-wise F4 pipeline (one scale per transform-domain tap): the
  // saver writes the U/V/M tap vectors and the per-tap U-cache scales; the
  // loader must bring every entry back bit-exactly, and the loaded pipeline
  // must produce the same bytes.
  Rng rng(42);
  const Int8Pipeline pipe = compiled_resnet18(nn::ConvAlgo::kWinograd4, rng, /*tap_group_size=*/1);

  const PerfSnapshot before = snapshot_counters();
  const Int8Pipeline loaded = loaded_from(saved_bytes(pipe));
  EXPECT_EQ(snapshot_counters(), before) << "v4 load must not rebuild any weight cache";
  ASSERT_EQ(loaded.size(), pipe.size());

  std::size_t per_tap_stages = 0;
  for (std::size_t i = 0; i < pipe.size(); ++i) {
    const auto* want = std::get_if<ConvStage>(&pipe.nodes()[i].op);
    if (want == nullptr || want->wino_cache.empty()) continue;
    const auto* got = std::get_if<ConvStage>(&loaded.nodes()[i].op);
    ASSERT_NE(got, nullptr);
    const std::int64_t t2 = want->transforms.tile * want->transforms.tile;
    ASSERT_EQ(static_cast<std::int64_t>(want->stage_scales.weights_transformed_taps.size()), t2)
        << "stage " << i << ": per-tap compile must emit a full U tap vector";
    EXPECT_EQ(got->stage_scales.weights_transformed_taps,
              want->stage_scales.weights_transformed_taps);
    EXPECT_EQ(got->stage_scales.input_transformed_taps, want->stage_scales.input_transformed_taps);
    EXPECT_EQ(got->stage_scales.hadamard_taps, want->stage_scales.hadamard_taps);
    EXPECT_EQ(got->wino_cache.tap_scales, want->wino_cache.tap_scales);
    EXPECT_EQ(got->wino_cache.u_q, want->wino_cache.u_q);
    ++per_tap_stages;
  }
  EXPECT_GT(per_tap_stages, 0u) << "the fixture model must exercise per-tap Winograd stages";

  const Tensor x = Tensor::randn({3, 3, 32, 32}, rng);
  EXPECT_EQ(Tensor::max_abs_diff(loaded.run(x), pipe.run(x)), 0.F);
  EXPECT_EQ(snapshot_counters(), before);
}

TEST(WamArtifact, RejectsV4ArtifactWithInconsistentTapVectors) {
  // A checksum-valid artifact whose U tap vector disagrees with the cached
  // U's tap scales (or carries a wrong-sized / non-positive vector) must be
  // rejected at load — the executor trusts these unchecked.
  Rng rng(43);
  const Int8Pipeline pipe = compiled_resnet18(nn::ConvAlgo::kWinograd4, rng, /*tap_group_size=*/1);
  const std::string bytes = saved_bytes(pipe);
  EXPECT_NO_THROW(loaded_from(bytes));  // sanity: intact artifact loads

  // Find the first per-tap U stage-scale vector in the payload byte stream by
  // searching for its exact float pattern, then perturb one entry.
  const ConvStage* wino = nullptr;
  for (const auto& node : pipe.nodes()) {
    if (const auto* st = std::get_if<ConvStage>(&node.op);
        st != nullptr && !st->wino_cache.empty()) {
      wino = st;
      break;
    }
  }
  ASSERT_NE(wino, nullptr);
  ASSERT_FALSE(wino->stage_scales.weights_transformed_taps.empty());
  const auto& taps = wino->stage_scales.weights_transformed_taps;
  const std::string needle(reinterpret_cast<const char*>(taps.data()),
                           taps.size() * sizeof(float));
  const std::size_t pos = bytes.find(needle);
  ASSERT_NE(pos, std::string::npos);
  std::string corrupt = bytes;
  const float bumped = taps.front() * 2.F;
  std::memcpy(corrupt.data() + pos, &bumped, sizeof(float));
  reseal(corrupt);
  try {
    loaded_from(corrupt);
    FAIL() << "expected runtime_error for the inconsistent tap vector";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("tap"), std::string::npos) << e.what();
  }
}

// ---- v3 back-compat: the checked-in golden fixture --------------------------

// tests/data/golden_v3.wam was written by the version-3 serializer (blocked U
// cache, no tap vectors) over an optimized Winograd ResNet-18 pipeline;
// golden_v3_input.bin / golden_v3_logits.bin pin its exact behavior. The v4
// reader must keep loading it bit-for-bit forever, with empty (per-tensor)
// tap vectors.

TEST(WamArtifact, GoldenV3FixtureLoadsBitExactlyUnderTheV4Reader) {
  const PerfSnapshot before = snapshot_counters();
  const Int8Pipeline pipe = load_pipeline(fixture_path("golden_v3.wam"));
  EXPECT_EQ(snapshot_counters(), before) << "v3 load must not rebuild any weight cache";
  ASSERT_NE(pipe.plan(), nullptr) << "the v3 fixture was saved optimized, with its plan";

  std::size_t wino_stages = 0;
  for (const auto& node : pipe.nodes()) {
    const auto* st = std::get_if<ConvStage>(&node.op);
    if (st == nullptr || st->wino_cache.empty()) continue;
    EXPECT_TRUE(st->stage_scales.weights_transformed_taps.empty())
        << "a v3 stage must load with per-tensor (empty) tap vectors";
    EXPECT_TRUE(st->stage_scales.input_transformed_taps.empty());
    EXPECT_TRUE(st->stage_scales.hadamard_taps.empty());
    EXPECT_TRUE(st->wino_cache.tap_scales.empty());
    ++wino_stages;
  }
  EXPECT_GT(wino_stages, 0u) << "the golden fixture must contain Winograd stages";

  const Tensor input = load_fixture_tensor("golden_v3_input.bin");
  const Tensor want = load_fixture_tensor("golden_v3_logits.bin");
  const Tensor got = pipe.run(input);
  ASSERT_EQ(got.shape(), want.shape());
  EXPECT_EQ(Tensor::max_abs_diff(got, want), 0.F)
      << "the v4 reader changed the meaning of a v3 artifact";
}

TEST(WamArtifact, GoldenV3FixtureSurvivesV4Rewrite) {
  const Int8Pipeline pipe = load_pipeline(fixture_path("golden_v3.wam"));
  const Tensor input = load_fixture_tensor("golden_v3_input.bin");
  const Tensor want = load_fixture_tensor("golden_v3_logits.bin");
  // Rewritten by the v4 writer (empty tap vectors appended) it still means
  // the same thing, plan included.
  const Int8Pipeline rewritten = loaded_from(saved_bytes(pipe));
  ASSERT_NE(rewritten.plan(), nullptr);
  EXPECT_EQ(rewritten.plan()->peak_bytes, pipe.plan()->peak_bytes);
  EXPECT_EQ(Tensor::max_abs_diff(rewritten.run(input), want), 0.F);
}

TEST(WamArtifact, RejectsV2ArtifactWithCorruptedPlanSection) {
  Rng rng(40);
  Int8Pipeline pipe = compiled_lenet(nn::ConvAlgo::kIm2row, rng);
  deploy::passes::OptimizeOptions opts;
  opts.reference_input = {1, 1, 28, 28};
  deploy::passes::optimize_pipeline(pipe, opts);
  ASSERT_NE(pipe.plan(), nullptr);
  const std::string bytes = saved_bytes(pipe);
  const std::size_t stages = pipe.size();
  EXPECT_NO_THROW(loaded_from(bytes));  // sanity: intact artifact loads

  // The plan tail layout (docs/WAM_FORMAT.md): [in_place len u64][marks
  // stages][arena i64][peak i64][naive i64]. Both corruptions below keep the
  // artifact checksummed-valid, so the PLAN validator must reject them.
  {
    std::string corrupt = bytes;  // negative byte total
    for (std::size_t i = corrupt.size() - 8; i < corrupt.size(); ++i) {
      corrupt[i] = static_cast<char>(0xFF);
    }
    reseal(corrupt);
    try {
      loaded_from(corrupt);
      FAIL() << "expected runtime_error for the corrupted plan";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("plan"), std::string::npos) << e.what();
    }
  }
  {
    std::string corrupt = bytes;  // in_place mark out of range
    corrupt[corrupt.size() - 24 - stages] = static_cast<char>(9);
    reseal(corrupt);
    try {
      loaded_from(corrupt);
      FAIL() << "expected runtime_error for the corrupted plan";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("plan"), std::string::npos) << e.what();
    }
  }
  // And without resealing, the checksum guard still fires first.
  {
    std::string corrupt = bytes;
    corrupt[corrupt.size() - 1] = static_cast<char>(corrupt.back() ^ 0x5A);
    EXPECT_THROW(loaded_from(corrupt), std::runtime_error);
  }
}

// ---- hand-built graph with explicit slots -----------------------------------

TEST(WamArtifact, HandWiredResidualGraphRoundTrips) {
  Rng rng(38);
  const auto conv = [&rng](std::int64_t in_ch, std::int64_t out_ch, float in_s, float out_s,
                           bool relu, std::int64_t kernel, std::int64_t pad) {
    ConvStage st;
    st.algo = nn::ConvAlgo::kIm2row;
    st.in_channels = in_ch;
    st.out_channels = out_ch;
    st.kernel = kernel;
    st.pad = pad;
    st.input_scale = in_s;
    st.output_scale = out_s;
    st.relu_after = relu;
    st.weights_q = backend::quantize_s8(Tensor::randn({out_ch, in_ch, kernel, kernel}, rng, 0.3F));
    return st;
  };
  const auto io = [](const char* in, const char* in2, const char* out, const char* label) {
    StageIO o;
    o.input = in;
    o.input2 = in2;
    o.output = out;
    o.label = label;
    return o;
  };

  Int8Pipeline pipe;
  pipe.push(conv(3, 4, 0.05F, 0.1F, true, 3, 1), io("", "", "x", "stem"));
  pipe.push(conv(4, 6, 0.1F, 0.12F, false, 1, 0), io("x", "", "skip", "proj"));
  pipe.push(conv(4, 6, 0.1F, 0.09F, false, 3, 1), io("x", "", "", "main"));
  AddStage add;
  add.lhs_scale = 0.09F;
  add.rhs_scale = 0.12F;
  add.output_scale = 0.08F;
  add.relu_after = true;
  pipe.push(std::move(add), io("", "skip", "", "join"));

  const Int8Pipeline loaded = loaded_from(saved_bytes(pipe));
  const Tensor x = Tensor::randn({2, 3, 8, 8}, rng);
  EXPECT_EQ(Tensor::max_abs_diff(loaded.run(x), pipe.run(x)), 0.F);
}

// ---- v4 back-compat: the checked-in golden fixture --------------------------

// tests/data/golden_v4.wam was written by the version-4 serializer (per-tap
// scale vectors, no groups/stride fields, no tap mask) over an optimized
// fully tap-wise Winograd ResNet-18 pipeline; golden_v4_input.bin /
// golden_v4_logits.bin pin its exact behavior. The v5 reader must keep
// loading it bit-for-bit forever, with the pre-v5 defaults: dense stride-1
// ungrouped stages and an empty sparse tap mask.

TEST(WamArtifact, GoldenV4FixtureLoadsBitExactlyUnderTheV5Reader) {
  const PerfSnapshot before = snapshot_counters();
  const Int8Pipeline pipe = load_pipeline(fixture_path("golden_v4.wam"));
  EXPECT_EQ(snapshot_counters(), before) << "v4 load must not rebuild any weight cache";
  ASSERT_NE(pipe.plan(), nullptr) << "the v4 fixture was saved optimized, with its plan";

  std::size_t wino_stages = 0;
  for (const auto& node : pipe.nodes()) {
    const auto* st = std::get_if<ConvStage>(&node.op);
    if (st == nullptr) continue;
    EXPECT_EQ(st->groups, 1) << "a pre-v5 stage must load ungrouped";
    EXPECT_EQ(st->stride, 1) << "a pre-v5 stage must load stride-1";
    EXPECT_TRUE(st->strided_cache.empty());
    if (st->wino_cache.empty()) continue;
    EXPECT_FALSE(st->stage_scales.weights_transformed_taps.empty())
        << "the v4 fixture was compiled fully tap-wise";
    EXPECT_FALSE(st->wino_cache.tap_scales.empty());
    EXPECT_TRUE(st->wino_cache.tap_mask.empty())
        << "a pre-v5 stage must load with an empty (dense) tap mask";
    ++wino_stages;
  }
  EXPECT_GT(wino_stages, 0u) << "the golden fixture must contain Winograd stages";

  const Tensor input = load_fixture_tensor("golden_v4_input.bin");
  const Tensor want = load_fixture_tensor("golden_v4_logits.bin");
  const Tensor got = pipe.run(input);
  ASSERT_EQ(got.shape(), want.shape());
  EXPECT_EQ(Tensor::max_abs_diff(got, want), 0.F)
      << "the v5 reader changed the meaning of a v4 artifact";
}

TEST(WamArtifact, GoldenV4FixtureSurvivesV5Rewrite) {
  const Int8Pipeline pipe = load_pipeline(fixture_path("golden_v4.wam"));
  const Tensor input = load_fixture_tensor("golden_v4_input.bin");
  const Tensor want = load_fixture_tensor("golden_v4_logits.bin");
  // Rewritten by the v5 writer (groups/stride fields and an empty tap mask
  // appended) it still means the same thing, plan included.
  const Int8Pipeline rewritten = loaded_from(saved_bytes(pipe));
  ASSERT_NE(rewritten.plan(), nullptr);
  EXPECT_EQ(rewritten.plan()->peak_bytes, pipe.plan()->peak_bytes);
  EXPECT_EQ(Tensor::max_abs_diff(rewritten.run(input), want), 0.F);
}

// ---- v5: the model-zoo stage shapes -----------------------------------------

StageIO make_io(const char* in, const char* in2, const char* out, const char* label) {
  StageIO io;
  io.input = in;
  io.input2 = in2;
  io.output = out;
  io.label = label;
  return io;
}

TEST(WamArtifact, V5RoundTripCarriesGroupedCachesVerbatim) {
  // Grouped im2row and grouped Winograd conv stages: the loader must bring
  // back the groups field and the per-group caches byte-identically, with
  // the counters flat and the loaded pipeline bit-exact.
  Rng rng(60);
  Int8Pipeline pipe;
  {
    ConvStage st;  // grouped 3x3 im2row, 6ch -> 8ch in 2 groups
    st.algo = nn::ConvAlgo::kIm2row;
    st.in_channels = 6;
    st.out_channels = 8;
    st.kernel = 3;
    st.pad = 1;
    st.groups = 2;
    st.input_scale = 0.05F;
    st.output_scale = 0.08F;
    st.relu_after = true;
    st.weights_q = backend::quantize_s8(Tensor::randn({8, 3, 3, 3}, rng, 0.3F));
    pipe.push(std::move(st), make_io("", "", "", "g-im2row"));
  }
  {
    ConvStage st;  // grouped F(2,3) Winograd, 8ch -> 4ch in 2 groups
    st.algo = nn::ConvAlgo::kWinograd2;
    st.in_channels = 8;
    st.out_channels = 4;
    st.kernel = 3;
    st.pad = 1;
    st.groups = 2;
    st.input_scale = 0.08F;
    st.output_scale = 0.09F;
    st.weights_f = Tensor::randn({4, 4, 3, 3}, rng, 0.3F);
    st.transforms = wino::make_transforms(2, 3);
    st.stage_scales.weights_transformed = 0.02F;
    st.stage_scales.input_transformed = 0.05F;
    st.stage_scales.hadamard = 0.1F;
    st.stage_scales.output = 0.09F;
    pipe.push(std::move(st), make_io("", "", "", "g-wino"));
  }

  const PerfSnapshot before = snapshot_counters();
  const Int8Pipeline loaded = loaded_from(saved_bytes(pipe));
  EXPECT_EQ(snapshot_counters(), before) << "v5 load must not rebuild any weight cache";
  ASSERT_EQ(loaded.size(), pipe.size());

  const auto* want_gemm = std::get_if<ConvStage>(&pipe.nodes()[0].op);
  const auto* got_gemm = std::get_if<ConvStage>(&loaded.nodes()[0].op);
  ASSERT_NE(got_gemm, nullptr);
  EXPECT_EQ(got_gemm->groups, 2);
  EXPECT_EQ(got_gemm->im2row_cache.groups, 2);
  EXPECT_EQ(got_gemm->im2row_cache.out_channels, want_gemm->im2row_cache.out_channels)
      << "im2row out_channels is per-group";
  EXPECT_EQ(got_gemm->im2row_cache.patch, want_gemm->im2row_cache.patch);
  EXPECT_EQ(got_gemm->im2row_cache.wt, want_gemm->im2row_cache.wt);

  const auto* want_wino = std::get_if<ConvStage>(&pipe.nodes()[1].op);
  const auto* got_wino = std::get_if<ConvStage>(&loaded.nodes()[1].op);
  ASSERT_NE(got_wino, nullptr);
  EXPECT_EQ(got_wino->groups, 2);
  EXPECT_EQ(got_wino->wino_cache.groups, 2);
  EXPECT_EQ(got_wino->wino_cache.in_channels, want_wino->wino_cache.in_channels)
      << "wino in_channels is per-group (C/g)";
  EXPECT_EQ(got_wino->wino_cache.u_q, want_wino->wino_cache.u_q);
  EXPECT_EQ(got_wino->wino_cache.u_blocked, want_wino->wino_cache.u_blocked);
  EXPECT_EQ(got_wino->wino_cache.padded_in_channels, want_wino->wino_cache.padded_in_channels);

  const Tensor x = Tensor::randn({2, 6, 12, 12}, rng);
  EXPECT_EQ(Tensor::max_abs_diff(loaded.run(x), pipe.run(x)), 0.F);
  EXPECT_EQ(snapshot_counters(), before);
}

TEST(WamArtifact, V5RoundTripCarriesTheStridedPolyphaseCacheVerbatim) {
  // A stride-2 Winograd stage serializes as cache kind 2: the F(m,2) u00
  // cache plus the rect-phase im2row weights. Every byte must come back.
  // Forced polyphase: 3->5 channels sit below the selection crossover and
  // the subject here is the kind-2 wire format, not the cost model.
  const backend::StridedPolicy prev_policy = backend::strided_polyphase_policy();
  backend::set_strided_polyphase_policy(backend::StridedPolicy::kForcePolyphase);
  struct Restore {
    backend::StridedPolicy p;
    ~Restore() { backend::set_strided_polyphase_policy(p); }
  } restore{prev_policy};
  Rng rng(61);
  Int8Pipeline pipe;
  {
    ConvStage st;
    st.algo = nn::ConvAlgo::kWinograd2;
    st.in_channels = 3;
    st.out_channels = 5;
    st.kernel = 3;
    st.pad = 1;
    st.stride = 2;
    st.input_scale = 0.05F;
    st.output_scale = 0.08F;
    st.weights_f = Tensor::randn({5, 3, 3, 3}, rng, 0.3F);
    st.transforms = wino::make_transforms(2, 3);  // prepare() swaps in F(2,2)
    st.stage_scales.weights_transformed = 0.02F;
    st.stage_scales.output = 0.08F;
    st.bias = Tensor::randn({5}, rng, 0.1F);
    pipe.push(std::move(st), make_io("", "", "", "strided"));
  }
  const auto* want = std::get_if<ConvStage>(&pipe.nodes()[0].op);
  ASSERT_NE(want, nullptr);
  ASSERT_FALSE(want->strided_cache.empty()) << "stride-2 Winograd fell back to im2row";

  const PerfSnapshot before = snapshot_counters();
  const Int8Pipeline loaded = loaded_from(saved_bytes(pipe));
  EXPECT_EQ(snapshot_counters(), before) << "v5 load must not rebuild any weight cache";
  const auto* got = std::get_if<ConvStage>(&loaded.nodes()[0].op);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->stride, 2);
  ASSERT_FALSE(got->strided_cache.empty());
  EXPECT_EQ(got->transforms.r, 2) << "the strided stage loads with its canonical F(m,2) set";
  EXPECT_EQ(got->strided_cache.u00.u_q, want->strided_cache.u00.u_q);
  EXPECT_EQ(got->strided_cache.u00.u_blocked, want->strided_cache.u00.u_blocked);
  EXPECT_EQ(got->strided_cache.u00.scale, want->strided_cache.u00.scale);
  EXPECT_EQ(got->strided_cache.rect_wt, want->strided_cache.rect_wt);
  EXPECT_EQ(got->strided_cache.rect_scale, want->strided_cache.rect_scale);

  const Tensor x = Tensor::randn({2, 3, 11, 11}, rng);
  EXPECT_EQ(Tensor::max_abs_diff(loaded.run(x), pipe.run(x)), 0.F);
  EXPECT_EQ(snapshot_counters(), before);
}

TEST(WamArtifact, V5RoundTripCarriesTheSparseTapMaskVerbatim) {
  // A Winograd stage pruned by a whole-tap-zero mask caches tap_mask != {};
  // the loaded stage must skip the same taps (same mask, same zeroed levels,
  // same bytes out).
  Rng rng(62);
  const std::int64_t in_ch = 4, out_ch = 4, t = 4;  // F(2,3): tile 4
  Int8Pipeline pipe;
  {
    ConvStage st;
    st.algo = nn::ConvAlgo::kWinograd2;
    st.in_channels = in_ch;
    st.out_channels = out_ch;
    st.kernel = 3;
    st.pad = 1;
    st.input_scale = 0.05F;
    st.output_scale = 0.08F;
    st.weights_f = Tensor::randn({out_ch, in_ch, 3, 3}, rng, 0.3F);
    st.transforms = wino::make_transforms(2, 3);
    st.stage_scales.weights_transformed = 0.02F;
    st.stage_scales.input_transformed = 0.05F;
    st.stage_scales.hadamard = 0.1F;
    st.stage_scales.output = 0.08F;
    // Kill taps 5 and 10 outright, plus one (k, c) slice of tap 0.
    Tensor mask(Shape{1, t * t, out_ch, in_ch});
    for (std::int64_t i = 0; i < mask.numel(); ++i) mask.at(i) = 1.F;
    for (std::int64_t i = 0; i < out_ch * in_ch; ++i) {
      mask.at(5 * out_ch * in_ch + i) = 0.F;
      mask.at(10 * out_ch * in_ch + i) = 0.F;
    }
    mask.at(0) = 0.F;
    st.sparse_mask = std::move(mask);
    pipe.push(std::move(st), make_io("", "", "", "sparse"));
  }
  const auto* want = std::get_if<ConvStage>(&pipe.nodes()[0].op);
  ASSERT_NE(want, nullptr);
  ASSERT_EQ(static_cast<std::int64_t>(want->wino_cache.tap_mask.size()), t * t)
      << "whole-tap-dead slices must materialize the skip mask";
  EXPECT_EQ(want->wino_cache.tap_mask[5], 1);
  EXPECT_EQ(want->wino_cache.tap_mask[10], 1);
  EXPECT_EQ(want->wino_cache.tap_mask[0], 0) << "a partially dead tap is not skippable";

  const PerfSnapshot before = snapshot_counters();
  const Int8Pipeline loaded = loaded_from(saved_bytes(pipe));
  EXPECT_EQ(snapshot_counters(), before) << "v5 load must not rebuild any weight cache";
  const auto* got = std::get_if<ConvStage>(&loaded.nodes()[0].op);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->wino_cache.tap_mask, want->wino_cache.tap_mask);
  EXPECT_EQ(got->wino_cache.u_q, want->wino_cache.u_q);

  const Tensor x = Tensor::randn({2, in_ch, 12, 12}, rng);
  EXPECT_EQ(Tensor::max_abs_diff(loaded.run(x), pipe.run(x)), 0.F);
}

TEST(WamArtifact, HandWiredConcatGraphRoundTrips) {
  // A fire-style fan-out/concat graph: stem publishes, two expand branches
  // read it, a kConcat stage joins them. The v5 writer serializes the concat
  // stage; the loaded graph must produce the same bytes.
  Rng rng(63);
  const auto conv = [&rng](std::int64_t in_ch, std::int64_t out_ch, float in_s, float out_s,
                           bool relu, std::int64_t kernel, std::int64_t pad) {
    ConvStage st;
    st.algo = nn::ConvAlgo::kIm2row;
    st.in_channels = in_ch;
    st.out_channels = out_ch;
    st.kernel = kernel;
    st.pad = pad;
    st.input_scale = in_s;
    st.output_scale = out_s;
    st.relu_after = relu;
    st.weights_q = backend::quantize_s8(Tensor::randn({out_ch, in_ch, kernel, kernel}, rng, 0.3F));
    return st;
  };

  Int8Pipeline pipe;
  pipe.push(conv(3, 4, 0.05F, 0.1F, true, 3, 1), make_io("", "", "s", "squeeze"));
  pipe.push(conv(4, 6, 0.1F, 0.12F, false, 1, 0), make_io("s", "", "e1", "expand1"));
  pipe.push(conv(4, 6, 0.1F, 0.09F, false, 3, 1), make_io("s", "", "", "expand3"));
  ConcatStage cat;
  cat.lhs_scale = 0.09F;
  cat.rhs_scale = 0.12F;
  cat.output_scale = 0.08F;
  cat.relu_after = true;
  pipe.push(std::move(cat), make_io("", "e1", "", "join"));

  const Int8Pipeline loaded = loaded_from(saved_bytes(pipe));
  ASSERT_EQ(loaded.size(), pipe.size());
  const auto* got = std::get_if<ConcatStage>(&loaded.nodes()[3].op);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->lhs_scale, 0.09F);
  EXPECT_EQ(got->rhs_scale, 0.12F);
  EXPECT_EQ(got->output_scale, 0.08F);
  EXPECT_TRUE(got->relu_after);
  const Tensor x = Tensor::randn({2, 3, 8, 8}, rng);
  EXPECT_EQ(Tensor::max_abs_diff(loaded.run(x), pipe.run(x)), 0.F);
}

TEST(WamArtifact, RejectsConcatTagInPreV5Artifact) {
  // A pre-v5 version header whose payload contains the kConcat tag is a
  // forgery (no v4 writer ever emitted it) — reject instead of parsing. The
  // graph below avoids conv stages entirely, so its payload bytes parse
  // identically under the v4 and v5 readers right up to the kConcat tag.
  Int8Pipeline pipe;
  pipe.push(deploy::ReluStage{}, make_io("", "", "e1", "branch"));
  ConcatStage cat;
  cat.lhs_scale = 0.08F;
  cat.rhs_scale = 0.08F;
  cat.output_scale = 0.08F;
  pipe.push(std::move(cat), make_io("e1", "e1", "", "join"));

  std::string bytes = saved_bytes(pipe);
  EXPECT_NO_THROW(loaded_from(bytes));  // sanity: the v5 header loads
  bytes[4] = 4;  // downgrade the little-endian version field to 4
  bytes[5] = bytes[6] = bytes[7] = 0;
  reseal(bytes);
  try {
    loaded_from(bytes);
    FAIL() << "expected runtime_error for the concat tag under a v4 header";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("pre-v5"), std::string::npos) << e.what();
  }
}

TEST(WamArtifact, RejectsV5ArtifactWithCorruptedZooFields) {
  // Checksum-valid artifacts whose v5 fields are internally inconsistent
  // must be rejected by the field validators, not executed. The payload
  // offsets below follow docs/WAM_FORMAT.md for a single-stage graph with
  // all-empty StageIO strings: header 24B, stage count 8B, four empty
  // strings 32B, stage tag 1B, algo 1B, then four i64 geometry fields
  // before groups (offset 98) and stride (offset 106); the cache-kind byte
  // sits after two f32 scales + relu byte + four f32 stage scales (139).
  constexpr std::size_t kGroupsOff = 24 + 8 + 32 + 1 + 1 + 4 * 8;
  constexpr std::size_t kStrideOff = kGroupsOff + 8;
  constexpr std::size_t kKindOff = kStrideOff + 8 + 4 + 4 + 1 + 4 * 4;

  Rng rng(65);
  Int8Pipeline pipe;
  {
    ConvStage st;  // dense stride-1 F(2,3) Winograd stage, kind byte = 1
    st.algo = nn::ConvAlgo::kWinograd2;
    st.in_channels = 4;
    st.out_channels = 4;
    st.kernel = 3;
    st.pad = 1;
    st.input_scale = 0.05F;
    st.output_scale = 0.08F;
    st.weights_f = Tensor::randn({4, 4, 3, 3}, rng, 0.3F);
    st.transforms = wino::make_transforms(2, 3);
    st.stage_scales.weights_transformed = 0.02F;
    st.stage_scales.output = 0.08F;
    pipe.push(std::move(st), StageIO{});
  }
  const std::string bytes = saved_bytes(pipe);
  EXPECT_NO_THROW(loaded_from(bytes));  // sanity: intact artifact loads
  ASSERT_EQ(static_cast<unsigned>(bytes[kKindOff]), 1u) << "offset map drifted";

  const auto expect_rejected = [&](std::size_t off, std::int64_t value, const char* needle) {
    std::string corrupt = bytes;
    std::memcpy(corrupt.data() + off, &value, sizeof(value));
    reseal(corrupt);
    try {
      loaded_from(corrupt);
      FAIL() << "expected runtime_error for corrupted field at offset " << off;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos) << e.what();
    }
  };
  // groups = 3 does not divide the 4-channel counts.
  expect_rejected(kGroupsOff, 3, "groups");
  // stride = 0 is not a convolution.
  expect_rejected(kStrideOff, 0, "stride");
  // stride = 2 on a kind-1 (dense Winograd) cache: the polyphase kind is 2.
  expect_rejected(kStrideOff, 2, "dense Winograd cache requires stride 1");
  {
    std::string corrupt = bytes;  // kind 0 (im2row) under a Winograd algo
    corrupt[kKindOff] = 0;
    reseal(corrupt);
    try {
      loaded_from(corrupt);
      FAIL() << "expected runtime_error for the flipped cache kind";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("kind"), std::string::npos) << e.what();
    }
  }
}

}  // namespace
}  // namespace wa::serve
