// Tests for the synthetic dataset generators and loader.
#include <gtest/gtest.h>

#include <set>

#include "data/synthetic.hpp"

namespace wa::data {
namespace {

TEST(Specs, MatchPaperGeometry) {
  const auto c10 = cifar10_like();
  EXPECT_EQ(c10.channels, 3);
  EXPECT_EQ(c10.height, 32);
  EXPECT_EQ(c10.num_classes, 10);
  const auto c100 = cifar100_like();
  EXPECT_EQ(c100.num_classes, 100);
  const auto mn = mnist_like();
  EXPECT_EQ(mn.channels, 1);
  EXPECT_EQ(mn.height, 28);
}

TEST(Generate, ShapesAndLabels) {
  auto spec = cifar10_like();
  spec.train_size = 64;
  spec.test_size = 32;
  const auto train = generate(spec, true);
  const auto test = generate(spec, false);
  EXPECT_EQ(train.images.shape(), (Shape{64, 3, 32, 32}));
  EXPECT_EQ(test.images.shape(), (Shape{32, 3, 32, 32}));
  for (auto l : train.labels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, 10);
  }
}

TEST(Generate, Deterministic) {
  auto spec = cifar10_like();
  spec.train_size = 16;
  const auto a = generate(spec, true);
  const auto b = generate(spec, true);
  EXPECT_TRUE(Tensor::allclose(a.images, b.images, 0.F));
  EXPECT_EQ(a.labels, b.labels);
}

TEST(Generate, TrainTestDiffer) {
  auto spec = cifar10_like();
  spec.train_size = 16;
  spec.test_size = 16;
  const auto train = generate(spec, true);
  const auto test = generate(spec, false);
  EXPECT_GT(Tensor::max_abs_diff(train.images, test.images), 1e-3F);
}

TEST(Generate, SeedChangesData) {
  auto spec = cifar10_like();
  spec.train_size = 8;
  const auto a = generate(spec, true);
  spec.seed += 1;
  const auto b = generate(spec, true);
  EXPECT_GT(Tensor::max_abs_diff(a.images, b.images), 1e-3F);
}

TEST(Generate, ClassesAreSeparable) {
  // Same-class samples must correlate more than cross-class ones, otherwise
  // no network could learn — the datasets would not exercise training at all.
  auto spec = cifar10_like();
  spec.train_size = 200;
  spec.noise = 0.1F;
  spec.jitter = 0.5F;
  const auto ds = generate(spec, true);
  const std::int64_t stride = ds.images.numel() / ds.size();
  auto corr = [&](std::int64_t i, std::int64_t j) {
    double dot = 0, ni = 0, nj = 0;
    const float* a = ds.images.raw() + i * stride;
    const float* b = ds.images.raw() + j * stride;
    for (std::int64_t k = 0; k < stride; ++k) {
      dot += static_cast<double>(a[k]) * b[k];
      ni += static_cast<double>(a[k]) * a[k];
      nj += static_cast<double>(b[k]) * b[k];
    }
    return dot / std::sqrt(ni * nj + 1e-12);
  };
  double same = 0, cross = 0;
  int same_n = 0, cross_n = 0;
  for (std::int64_t i = 0; i < 60; ++i) {
    for (std::int64_t j = i + 1; j < 60; ++j) {
      if (ds.labels[static_cast<std::size_t>(i)] == ds.labels[static_cast<std::size_t>(j)]) {
        same += corr(i, j);
        ++same_n;
      } else {
        cross += corr(i, j);
        ++cross_n;
      }
    }
  }
  ASSERT_GT(same_n, 0);
  ASSERT_GT(cross_n, 0);
  EXPECT_GT(same / same_n, cross / cross_n + 0.2);
}

TEST(DataLoader, BatchCountAndSizes) {
  auto spec = cifar10_like();
  spec.train_size = 10;
  const auto ds = generate(spec, true);
  DataLoader loader(ds, 4, false);
  EXPECT_EQ(loader.batches(), 3);
  EXPECT_EQ(loader.get(0).images.size(0), 4);
  EXPECT_EQ(loader.get(2).images.size(0), 2);  // ragged tail
  EXPECT_THROW(loader.get(5), std::out_of_range);
}

TEST(DataLoader, ShuffleChangesOrderButNotContent) {
  auto spec = cifar10_like();
  spec.train_size = 32;
  const auto ds = generate(spec, true);
  DataLoader a(ds, 32, false);
  DataLoader b(ds, 32, true, 123);
  const auto ba = a.get(0);
  const auto bb = b.get(0);
  std::multiset<std::int64_t> la(ba.labels.begin(), ba.labels.end());
  std::multiset<std::int64_t> lb(bb.labels.begin(), bb.labels.end());
  EXPECT_EQ(la, lb);  // same multiset of labels
  EXPECT_GT(Tensor::max_abs_diff(ba.images, bb.images), 1e-4F);  // different order
}

TEST(DataLoader, RejectsBadBatchSize) {
  auto spec = cifar10_like();
  spec.train_size = 4;
  const auto ds = generate(spec, true);
  EXPECT_THROW(DataLoader(ds, 0, false), std::invalid_argument);
}

}  // namespace
}  // namespace wa::data
