// Tests for the telemetry subsystem (src/telemetry): the lock-free metrics
// registry (counters / gauges / striped histograms, snapshot merging,
// Prometheus exposition), histogram quantiles vs the exact sorted-window
// percentiles they replaced in InferenceServer::stats, request-scoped
// tracing end to end (submit -> queue_wait -> coalesce -> dispatch ->
// pipeline stages -> blocked-Winograd phases), ring-buffer bounds, the
// tracing-changes-nothing bit-identity contract across SIMD backends, and a
// TSan-targeted hammer: concurrent traced clients vs snapshot readers.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <random>
#include <sstream>
#include <thread>
#include <vector>

#include "backend/perf_counters.hpp"
#include "backend/simd/kernel_table.hpp"
#include "deploy/pipeline.hpp"
#include "serve/server.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace wa::telemetry {
namespace {

/// Restore tracer sampling + metrics gate after a test body that flips them;
/// every test leaves the process-global telemetry the way it found it.
struct TelemetryGuard {
  std::uint32_t sampling = Tracer::instance().sampling();
  bool metrics = metrics_enabled();
  ~TelemetryGuard() {
    Tracer::instance().set_sampling(sampling);
    set_metrics_enabled(metrics);
    Tracer::instance().clear();
  }
};

// ---- registry basics --------------------------------------------------------

TEST(MetricsRegistry, CountersGaugesHistogramsRoundTrip) {
  Registry reg;
  Counter c = reg.counter("t_requests_total");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);

  Gauge g = reg.gauge("t_depth");
  g.set(3.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  g.add(-1.5);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);

  Histogram h = reg.histogram("t_latency", {1.0, 2.0, 4.0});
  h.observe(0.5);
  h.observe(3.0);
  h.observe(100.0);  // overflow bucket
  const HistogramSnapshot s = h.snapshot();
  ASSERT_EQ(s.counts.size(), 4u);
  EXPECT_EQ(s.counts[0], 1u);
  EXPECT_EQ(s.counts[2], 1u);
  EXPECT_EQ(s.counts[3], 1u);
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.sum, 103.5);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.mean(), 34.5);
}

TEST(MetricsRegistry, GetOrCreateIsIdempotentAndTypeChecked) {
  Registry reg;
  Counter a = reg.counter("t_shared");
  Counter b = reg.counter("t_shared");
  a.inc(5);
  EXPECT_EQ(b.value(), 5u);  // same cell

  EXPECT_THROW(reg.gauge("t_shared"), std::invalid_argument);
  EXPECT_THROW(reg.counter(""), std::invalid_argument);
  EXPECT_THROW(reg.histogram("t_h", {}), std::invalid_argument);
  EXPECT_THROW(reg.histogram("t_h2", {1.0, 1.0}), std::invalid_argument);
  // A histogram re-request ignores the bounds and returns the same cell.
  Histogram h1 = reg.histogram("t_h3", {1.0, 2.0});
  Histogram h2 = reg.histogram("t_h3", {9.0});
  h1.observe(1.5);
  EXPECT_EQ(h2.snapshot().count, 1u);
}

TEST(MetricsRegistry, ConcurrentCountersAreExact) {
  Registry reg;
  Counter c = reg.counter("t_conc_total");
  Histogram h = reg.histogram("t_conc_lat", exponential_bounds(0.01, 2.0, 16));
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c.inc();
        h.observe(1.0);
      }
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.snapshot().count, static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistry, DisableGateStopsMutationsNotReads) {
  TelemetryGuard guard;
  Registry reg;
  Counter c = reg.counter("t_gated_total");
  c.inc(3);
  set_metrics_enabled(false);
  c.inc(100);
  Histogram h = reg.histogram("t_gated_lat", {1.0});
  h.observe(0.5);
  EXPECT_EQ(c.value(), 3u);  // reads still work, the writes were dropped
  EXPECT_EQ(h.snapshot().count, 0u);
  set_metrics_enabled(true);
  c.inc();
  EXPECT_EQ(c.value(), 4u);
}

TEST(MetricsRegistry, SnapshotAbsorbsBackendPerfCounters) {
  const Snapshot snap = Registry::global().snapshot();
  const MetricSnapshot* wt = snap.find("wa_backend_weight_transforms_total");
  const MetricSnapshot* wr = snap.find("wa_backend_weight_repacks_total");
  ASSERT_NE(wt, nullptr);
  ASSERT_NE(wr, nullptr);
  EXPECT_EQ(static_cast<std::uint64_t>(wt->value),
            backend::snapshot_counters().weight_transforms);
  // snapshot() returns name-sorted metrics.
  for (std::size_t i = 1; i < snap.metrics.size(); ++i) {
    EXPECT_LT(snap.metrics[i - 1].name, snap.metrics[i].name);
  }
}

// ---- quantiles --------------------------------------------------------------

TEST(HistogramQuantile, EdgeCases) {
  HistogramSnapshot empty;
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);

  Registry reg;
  Histogram h = reg.histogram("t_q", {1.0, 2.0, 4.0});
  h.observe(0.25);
  const HistogramSnapshot one = h.snapshot();
  // Single sample in [0, 1): every quantile interpolates inside that bucket
  // and stays positive — the ModelStats "p50 > 0 after one request" case.
  EXPECT_GT(one.quantile(0.5), 0.0);
  EXPECT_LE(one.quantile(0.99), 1.0);
  // Overflow bucket answers with the exact max.
  h.observe(1000.0);
  h.observe(1000.0);
  h.observe(1000.0);
  EXPECT_DOUBLE_EQ(h.snapshot().quantile(0.99), 1000.0);
  // Monotone in q — the p99 >= p95 >= p50 contract.
  const HistogramSnapshot s = h.snapshot();
  EXPECT_LE(s.quantile(0.50), s.quantile(0.95));
  EXPECT_LE(s.quantile(0.95), s.quantile(0.99));
}

TEST(HistogramQuantile, MinusWindowsCountsAndSum) {
  Registry reg;
  Histogram h = reg.histogram("t_win", {1.0, 2.0});
  h.observe(0.5);
  h.observe(1.5);
  const HistogramSnapshot base = h.snapshot();
  h.observe(1.5);
  h.observe(5.0);
  const HistogramSnapshot delta = h.snapshot().minus(base);
  EXPECT_EQ(delta.count, 2u);
  EXPECT_EQ(delta.counts[1], 1u);
  EXPECT_EQ(delta.counts[2], 1u);
  EXPECT_DOUBLE_EQ(delta.sum, 6.5);
}

TEST(PercentileSorted, EdgeCases) {
  EXPECT_DOUBLE_EQ(percentile_sorted({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(percentile_sorted({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile_sorted({7.0}, 1.0), 7.0);
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 1.0), 4.0);
  // Out-of-range q is clamped, never an out-of-bounds read.
  EXPECT_DOUBLE_EQ(percentile_sorted(v, -3.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 9.0), 4.0);
}

TEST(HistogramQuantile, TracksSortedPercentilesWithinBucketWidth) {
  // The regression the histogram replacement of the server's sorted latency
  // window must pass: p50/p95/p99 within one bucket width (edges grow 1.25x,
  // so <= 25% relative) of the exact nearest-rank percentiles.
  Registry reg;
  Histogram h = reg.histogram("t_reg", exponential_bounds(0.005, 1.25, 56));
  std::mt19937 rng(7);
  std::lognormal_distribution<double> lat(0.0, 0.75);  // ms-scale long tail
  std::vector<double> window;
  for (int i = 0; i < 4096; ++i) {
    const double v = lat(rng);
    window.push_back(v);
    h.observe(v);
  }
  std::sort(window.begin(), window.end());
  const HistogramSnapshot s = h.snapshot();
  for (const double q : {0.50, 0.95, 0.99}) {
    const double exact = percentile_sorted(window, q);
    EXPECT_NEAR(s.quantile(q), exact, 0.25 * exact) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(s.max, window.back());
}

// ---- prometheus exposition --------------------------------------------------

TEST(Prometheus, ExpositionFormat) {
  Registry reg;
  reg.counter("t_total{model=\"m\"}").inc(3);
  reg.gauge("t_depth").set(2.0);
  Histogram h = reg.histogram("t_lat{model=\"m\"}", {1.0, 2.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(9.0);
  std::ostringstream os;
  write_prometheus(os, reg.snapshot());
  const std::string text = os.str();
  EXPECT_NE(text.find("# TYPE t_total counter"), std::string::npos);
  EXPECT_NE(text.find("t_total{model=\"m\"} 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE t_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("t_depth 2"), std::string::npos);
  // Histogram: cumulative buckets with the label block merged, then sum/count.
  EXPECT_NE(text.find("t_lat_bucket{model=\"m\",le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("t_lat_bucket{model=\"m\",le=\"2\"} 2"), std::string::npos);
  EXPECT_NE(text.find("t_lat_bucket{model=\"m\",le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("t_lat_count{model=\"m\"} 3"), std::string::npos);
}

// ---- EMA --------------------------------------------------------------------

TEST(EmaNs, WarmupMeanThenBlend) {
  EmaNs e;
  EXPECT_EQ(e.count(), 0u);
  // First kWarmup observations average arithmetically.
  for (int i = 1; i <= 4; ++i) e.observe(100 * i);
  EXPECT_DOUBLE_EQ(e.value_ns(), 250.0);  // mean of 100..400
  EXPECT_EQ(e.count(), 4u);
  // Steady state: blends toward new values without jumping.
  EmaNs f;
  for (int i = 0; i < 64; ++i) f.observe(1000);
  EXPECT_DOUBLE_EQ(f.value_ns(), 1000.0);
  f.observe(9000);
  EXPECT_GT(f.value_ns(), 1000.0);
  EXPECT_LT(f.value_ns(), 9000.0);
  // Copyable (Node carries one by value).
  const EmaNs g = f;
  EXPECT_DOUBLE_EQ(g.value_ns(), f.value_ns());
}

TEST(EmaNs, PipelineNodesAccumulateStageTimings) {
  TelemetryGuard guard;
  set_metrics_enabled(true);
  Rng rng(11);
  deploy::ConvStage conv;
  conv.algo = nn::ConvAlgo::kIm2row;
  conv.in_channels = 3;
  conv.out_channels = 4;
  conv.input_scale = 0.05F;
  conv.output_scale = 0.1F;
  conv.weights_q = backend::quantize_s8(Tensor::randn({4, 3, 3, 3}, rng, 0.3F));
  deploy::Int8Pipeline pipe;
  pipe.push(std::move(conv));
  const Tensor x = Tensor::randn({1, 3, 8, 8}, rng);
  pipe.run(x);
  pipe.run(x);
  ASSERT_EQ(pipe.nodes().size(), 1u);
  EXPECT_EQ(pipe.nodes()[0].ema.count(), 2u);
  EXPECT_GT(pipe.nodes()[0].ema.value_ns(), 0.0);
  // The gate also stops EMA feeding (the A/B off-arm measures zero-cost).
  set_metrics_enabled(false);
  pipe.run(x);
  EXPECT_EQ(pipe.nodes()[0].ema.count(), 2u);
}

// ---- tracer -----------------------------------------------------------------

TEST(Tracer, SamplingEveryNth) {
  TelemetryGuard guard;
  auto& tracer = Tracer::instance();
  tracer.set_sampling(0);
  EXPECT_FALSE(tracer.sample().valid());
  tracer.set_sampling(1);
  EXPECT_TRUE(tracer.sample().valid());
  tracer.set_sampling(4);
  int sampled = 0;
  for (int i = 0; i < 40; ++i) sampled += tracer.sample().valid() ? 1 : 0;
  EXPECT_EQ(sampled, 10);
  // begin_trace mints regardless of the rate, with distinct ids.
  tracer.set_sampling(0);
  const TraceContext a = tracer.begin_trace();
  const TraceContext b = tracer.begin_trace();
  EXPECT_TRUE(a.valid());
  EXPECT_NE(a.id, b.id);
}

TEST(Tracer, RingOverwritesOldestAndCountsDrops) {
  TelemetryGuard guard;
  auto& tracer = Tracer::instance();
  tracer.clear();
  const std::size_t cap0 = tracer.ring_capacity();
  tracer.set_ring_capacity(8);
  const std::uint64_t emitted0 = tracer.emitted();
  // Fresh thread -> fresh ring at the small capacity.
  std::thread([&] {
    for (int i = 0; i < 20; ++i) {
      tracer.emit({"ring_test_" + std::to_string(i), "test", 1, i, 1, {}});
    }
  }).join();
  tracer.set_ring_capacity(cap0);
  EXPECT_EQ(tracer.emitted() - emitted0, 20u);
  EXPECT_GE(tracer.dropped(), 12u);
  const std::vector<Span> spans = tracer.collect();
  int mine = 0;
  bool saw_newest = false;
  for (const Span& s : spans) {
    if (s.name.rfind("ring_test_", 0) == 0) {
      ++mine;
      saw_newest = saw_newest || s.name == "ring_test_19";
    }
  }
  EXPECT_EQ(mine, 8);  // bounded at capacity...
  EXPECT_TRUE(saw_newest);  // ...holding the most recent window
}

TEST(Tracer, ChromeTraceWriterEmitsLoadableJson) {
  std::vector<Span> spans;
  spans.push_back({"request", "serve", 7, 1000, 5000, "\"batch\":2"});
  spans.push_back({"weird \"name\"\n", "", 7, 2000, 1000, {}});
  std::ostringstream os;
  write_chrome_trace(os, spans);
  const std::string text = os.str();
  EXPECT_EQ(text.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"tid\":7"), std::string::npos);
  EXPECT_NE(text.find("\"ts\":1.000"), std::string::npos);  // ns -> us
  EXPECT_NE(text.find("\"dur\":5.000"), std::string::npos);
  EXPECT_NE(text.find("\"args\":{\"batch\":2}"), std::string::npos);
  EXPECT_NE(text.find("weird \\\"name\\\"\\n"), std::string::npos);
  EXPECT_NE(text.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

// ---- end-to-end: server + pipeline + kernel ---------------------------------

/// Frozen F2 Winograd conv pipeline — blocked-executor path, so traced runs
/// must produce wino.* phase sub-spans.
deploy::Int8Pipeline wino_pipeline(Rng& rng) {
  deploy::ConvStage st;
  st.algo = nn::ConvAlgo::kWinograd2;
  st.in_channels = 3;
  st.out_channels = 8;
  st.kernel = 3;
  st.pad = 1;
  st.input_scale = 0.05F;
  st.weights_f = Tensor::randn({8, 3, 3, 3}, rng, 0.3F);
  st.transforms = wino::make_transforms(2, 3);
  st.stage_scales.input_transformed = 0.06F;
  st.stage_scales.hadamard = 0.02F;
  st.stage_scales.output = 0.1F;
  st.output_scale = 0.1F;
  st.relu_after = true;
  deploy::Int8Pipeline pipe;
  pipe.push(std::move(st));
  return pipe;
}

TEST(TracingEndToEnd, ServerRequestNestsQueueCoalesceDispatchStages) {
  TelemetryGuard guard;
  auto& tracer = Tracer::instance();
  tracer.set_sampling(1);
  tracer.clear();

  Rng rng(5);
  serve::ServerOptions opts;
  opts.workers = 1;
  serve::InferenceServer server(opts);
  server.add_model("traced", wino_pipeline(rng));
  const Tensor x = Tensor::randn({1, 3, 8, 8}, rng);
  server.submit("traced", x).get();
  const serve::ModelStats stats = server.stats("traced");
  server.shutdown();

  const std::vector<Span> spans = tracer.collect();
  const Span* request = nullptr;
  for (const Span& s : spans) {
    if (s.name == "request") request = &s;
  }
  ASSERT_NE(request, nullptr);
  const std::uint64_t tid = request->tid;
  const std::int64_t req_end = request->ts_ns + request->dur_ns;

  bool saw_queue = false, saw_coalesce = false, saw_dispatch = false, saw_stage = false,
       saw_wino = false;
  for (const Span& s : spans) {
    if (s.tid != tid) continue;
    // Every span of the trace nests inside the request interval.
    EXPECT_GE(s.ts_ns, request->ts_ns) << s.name;
    EXPECT_LE(s.ts_ns + s.dur_ns, req_end) << s.name;
    saw_queue = saw_queue || s.name == "queue_wait";
    saw_coalesce = saw_coalesce || s.name == "coalesce";
    saw_dispatch = saw_dispatch || s.name == "dispatch";
    saw_stage = saw_stage || s.name.rfind("stage:", 0) == 0;
    saw_wino = saw_wino || s.name.rfind("wino.", 0) == 0;
  }
  EXPECT_TRUE(saw_queue);
  EXPECT_TRUE(saw_coalesce);
  EXPECT_TRUE(saw_dispatch);
  EXPECT_TRUE(saw_stage);
  EXPECT_TRUE(saw_wino);

  // The request span and the server's measured latency are the same
  // interval (acceptance bar: within 5%).
  const double span_ms = static_cast<double>(request->dur_ns) / 1e6;
  EXPECT_NEAR(span_ms, stats.latency.max_ms, 0.05 * stats.latency.max_ms + 1e-6);
}

TEST(TracingEndToEnd, LogitsBitIdenticalTracedOrNotAcrossBackends) {
  TelemetryGuard guard;
  auto& tracer = Tracer::instance();
  Rng rng(17);
  const deploy::Int8Pipeline pipe = wino_pipeline(rng);
  const Tensor x = Tensor::randn({2, 3, 8, 8}, rng);

  const std::string active = backend::simd::active_backend();
  for (const auto& b : backend::simd::available_backends()) {
    backend::simd::set_backend(b);
    tracer.set_sampling(0);
    const Tensor plain = pipe.run(x);
    tracer.set_sampling(1);
    const Tensor traced = pipe.run(x, nullptr, nullptr, tracer.begin_trace());
    EXPECT_EQ(Tensor::max_abs_diff(plain, traced), 0.F) << "backend " << b;
    // Flat path (blocked executor off) must stay bit-identical too.
    backend::set_winograd_blocked_enabled(false);
    const Tensor flat_traced = pipe.run(x, nullptr, nullptr, tracer.begin_trace());
    backend::set_winograd_blocked_enabled(true);
    EXPECT_EQ(Tensor::max_abs_diff(plain, flat_traced), 0.F) << "backend " << b << " (flat)";
  }
  backend::simd::set_backend(active);
}

TEST(TracingEndToEnd, HammerTracedClientsVsSnapshotReaders) {
  // The TSan target: 4 client threads submitting traced requests while
  // readers pull registry snapshots and span collections mid-traffic.
  TelemetryGuard guard;
  auto& tracer = Tracer::instance();
  tracer.set_sampling(1);
  tracer.clear();
  const std::uint64_t emitted0 = tracer.emitted();
  const std::uint64_t dropped0 = tracer.dropped();

  Rng rng(23);
  serve::ServerOptions opts;
  opts.workers = 2;
  opts.batch.max_batch = 4;
  opts.batch.max_delay_us = 100;
  serve::InferenceServer server(opts);
  server.add_model("hammer", wino_pipeline(rng));

  constexpr int kClients = 4;
  constexpr int kPerClient = 16;
  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (int i = 0; i < 2; ++i) {
    readers.emplace_back([&] {
      std::uint64_t last_requests = 0;
      while (!done.load()) {
        const Snapshot snap = Registry::global().snapshot();
        const MetricSnapshot* req = snap.find("wa_serve_requests_total{model=\"hammer\"}");
        if (req != nullptr) {
          // Counters are monotone even while 4 clients hammer them.
          EXPECT_GE(static_cast<std::uint64_t>(req->value), last_requests);
          last_requests = static_cast<std::uint64_t>(req->value);
        }
        (void)tracer.collect();
        (void)server.stats("hammer");
      }
    });
  }
  std::vector<std::thread> clients;
  Tensor input = Tensor::randn({1, 3, 8, 8}, rng);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&server, &input] {
      for (int i = 0; i < kPerClient; ++i) server.submit("hammer", input).get();
    });
  }
  for (auto& t : clients) t.join();
  done.store(true);
  for (auto& t : readers) t.join();

  const serve::ModelStats stats = server.stats("hammer");
  EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(kClients) * kPerClient);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_GE(stats.latency.p99_ms, stats.latency.p50_ms);
  EXPECT_GT(stats.latency.p50_ms, 0.0);
  server.shutdown();

  // Well under the default ring capacity: nothing may be dropped, and the
  // collected window holds every span emitted by the hammer.
  EXPECT_EQ(tracer.dropped(), dropped0);
  std::uint64_t collected = 0;
  for (const Span& s : tracer.collect()) {
    (void)s;
    ++collected;
  }
  EXPECT_EQ(collected, tracer.emitted() - emitted0);
}

TEST(TracingEndToEnd, DumpMetricsExposesServerSeries) {
  Rng rng(29);
  serve::ServerOptions opts;
  opts.workers = 1;
  serve::InferenceServer server(opts);
  server.add_model("dumped", wino_pipeline(rng));
  server.submit("dumped", Tensor::randn({1, 3, 8, 8}, rng)).get();
  server.shutdown();
  std::ostringstream os;
  serve::dump_metrics(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("wa_serve_requests_total{model=\"dumped\"}"), std::string::npos);
  EXPECT_NE(text.find("wa_serve_latency_ms_bucket{model=\"dumped\",le="), std::string::npos);
  EXPECT_NE(text.find("wa_backend_weight_transforms_total"), std::string::npos);
}

}  // namespace
}  // namespace wa::telemetry
