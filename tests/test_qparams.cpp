// Tests for generalized quantization parameters: affine (asymmetric)
// quantization, per-channel granularity, and the observers/STE ops built on
// them. These are the extensions the paper's discussion section recommends
// ("per-channel affine quantization, as in Jacob et al. (2018)").
#include <gtest/gtest.h>

#include <cmath>

#include "autograd/gradcheck.hpp"
#include "quant/fake_quant_op.hpp"
#include "quant/observer.hpp"
#include "quant/qparams.hpp"
#include "tensor/rng.hpp"

namespace wa::quant {
namespace {

TEST(QRange, SymmetricExcludesNegativeExtreme) {
  const QRange r = range_of(QuantSpec{8});
  EXPECT_EQ(r.qmin, -127);
  EXPECT_EQ(r.qmax, 127);
}

TEST(QRange, AffineUsesFullTwosComplementRange) {
  QuantSpec spec{8, QuantScheme::kAffine};
  const QRange r = range_of(spec);
  EXPECT_EQ(r.qmin, -128);
  EXPECT_EQ(r.qmax, 127);
}

TEST(ChooseQParams, PerTensorSymmetricMatchesScaleFor) {
  Rng rng(1);
  const Tensor x = Tensor::randn({4, 8}, rng, 2.F);
  const QParams p = choose_qparams(x, QuantSpec{8});
  ASSERT_EQ(p.num_channels(), 1);
  EXPECT_FALSE(p.per_channel());
  EXPECT_FLOAT_EQ(p.scales[0], scale_for(x.abs_max(), QuantSpec{8}));
  EXPECT_EQ(p.zero_points[0], 0);
}

TEST(ChooseQParams, AffineRepresentsZeroExactly) {
  // A strictly positive tensor: affine must still map 0.0 onto an integer
  // level so zero padding quantizes exactly (Jacob et al. 2018 §2.1).
  Tensor x({2, 3}, {1.F, 2.F, 3.F, 4.F, 5.F, 6.F});
  QuantSpec spec{8, QuantScheme::kAffine};
  const QParams p = choose_qparams(x, spec);
  const float s = p.scales[0];
  const auto z = p.zero_points[0];
  // Quantizing 0.0 and dequantizing must return exactly 0.0.
  const float q0 = std::nearbyint(0.F / s) + static_cast<float>(z);
  EXPECT_FLOAT_EQ((q0 - static_cast<float>(z)) * s, 0.F);
  const QRange r = range_of(spec);
  EXPECT_GE(z, r.qmin);
  EXPECT_LE(z, r.qmax);
}

TEST(ChooseQParams, AffineBeatsSymmetricOnSkewedData) {
  // All-positive data wastes half the symmetric range; affine reclaims it.
  Rng rng(2);
  Tensor x = Tensor::rand({64, 64}, rng, 0.F, 1.F);
  const float sym = quantization_rmse_qparams(x, QuantSpec{8});
  const float aff = quantization_rmse_qparams(x, QuantSpec{8, QuantScheme::kAffine});
  EXPECT_LT(aff, sym * 0.75F);
}

TEST(ChooseQParams, PerChannelTracksEachSliceRange) {
  // Channel 0 in [-1, 1], channel 1 in [-100, 100]: per-tensor forces one
  // scale; per-channel gives each slice its own.
  Tensor x({2, 4}, {-1.F, 0.5F, 1.F, -0.25F, -100.F, 50.F, 100.F, -25.F});
  const QParams p = choose_qparams(x, QuantSpec{8}, 0);
  ASSERT_EQ(p.num_channels(), 2);
  EXPECT_TRUE(p.per_channel());
  EXPECT_FLOAT_EQ(p.scales[0], scale_for(1.F, QuantSpec{8}));
  EXPECT_FLOAT_EQ(p.scales[1], scale_for(100.F, QuantSpec{8}));
}

TEST(ChooseQParams, PerChannelReducesRmseWithDisparateChannels) {
  Rng rng(3);
  Tensor x(Shape{8, 16, 3, 3});
  auto d = x.data();
  for (std::int64_t k = 0; k < 8; ++k) {
    const float scale = std::pow(4.F, static_cast<float>(k % 4));
    for (std::int64_t i = 0; i < 16 * 9; ++i) {
      d[static_cast<std::size_t>(k * 16 * 9 + i)] = rng.normal(0.F, scale);
    }
  }
  const float per_tensor = quantization_rmse_qparams(x, QuantSpec{8});
  const float per_channel = quantization_rmse_qparams(x, QuantSpec{8}, 0);
  EXPECT_LT(per_channel, per_tensor * 0.5F);
}

TEST(ChooseQParams, InnerAxisGranularityWorks) {
  // channel_dim does not have to be the leading axis.
  Tensor x({2, 3}, {1.F, 10.F, 100.F, -1.F, -10.F, -100.F});
  const QParams p = choose_qparams(x, QuantSpec{8}, 1);
  ASSERT_EQ(p.num_channels(), 3);
  EXPECT_FLOAT_EQ(p.scales[0], scale_for(1.F, QuantSpec{8}));
  EXPECT_FLOAT_EQ(p.scales[2], scale_for(100.F, QuantSpec{8}));
}

TEST(ChooseQParams, BadAxisThrows) {
  Rng rng(4);
  const Tensor x = Tensor::randn({2, 2}, rng);
  EXPECT_THROW(choose_qparams(x, QuantSpec{8}, 2), std::invalid_argument);
}

TEST(ChooseQParams, FloatSpecIsIdentity) {
  Rng rng(5);
  const Tensor x = Tensor::randn({3, 3}, rng);
  const QParams p = choose_qparams(x, QuantSpec{32}, 0);
  EXPECT_EQ(p.num_channels(), 1);
  EXPECT_FLOAT_EQ(p.scales[0], 1.F);
  Tensor y = x;
  EXPECT_EQ(fake_quant_qparams_(y, p, QuantSpec{32}), 0);
  EXPECT_TRUE(Tensor::allclose(x, y));
}

TEST(FakeQuantQParams, RoundTripStaysWithinHalfScale) {
  Rng rng(6);
  const Tensor x = Tensor::randn({16, 16}, rng);
  for (const auto scheme : {QuantScheme::kSymmetric, QuantScheme::kAffine}) {
    QuantSpec spec{8, scheme};
    const QParams p = choose_qparams(x, spec);
    const Tensor q = fake_quant_qparams(x, p, spec);
    EXPECT_LE(Tensor::max_abs_diff(x, q), p.scales[0] * 0.501F) << spec.to_string();
  }
}

TEST(FakeQuantQParams, ClipMaskMarksSaturatedElements) {
  Tensor x({4}, {0.1F, -0.2F, 5.F, -5.F});
  QParams p = QParams::per_tensor(0.01F);  // range ±1.27: the 5s saturate
  std::vector<std::uint8_t> mask;
  const auto clipped = fake_quant_qparams_(x, p, QuantSpec{8}, &mask);
  EXPECT_EQ(clipped, 2);
  EXPECT_EQ(mask[0], 1);
  EXPECT_EQ(mask[1], 1);
  EXPECT_EQ(mask[2], 0);
  EXPECT_EQ(mask[3], 0);
}

TEST(FakeQuantQParams, ChannelCountMismatchThrows) {
  Rng rng(7);
  Tensor x = Tensor::randn({4, 4}, rng);
  QParams p;
  p.channel_dim = 0;
  p.scales = {1.F, 1.F};  // axis has 4 channels
  p.zero_points = {0, 0};
  EXPECT_THROW(fake_quant_qparams_(x, p, QuantSpec{8}), std::invalid_argument);
}

TEST(FakeQuantQParams, MalformedParamsThrow) {
  Rng rng(8);
  Tensor x = Tensor::randn({4}, rng);
  QParams p;  // empty scales
  EXPECT_THROW(fake_quant_qparams_(x, p, QuantSpec{8}), std::invalid_argument);
}

TEST(QuantizeLevels, RoundTripPerChannelAffine) {
  Rng rng(9);
  const Tensor x = Tensor::rand({3, 8}, rng, -2.F, 5.F);
  QuantSpec spec{8, QuantScheme::kAffine};
  const QParams p = choose_qparams(x, spec, 0);
  const auto q = quantize_levels_qparams(x, p, spec);
  const Tensor back = dequantize_levels_qparams(q, x.shape(), p);
  float max_scale = 0.F;
  for (float s : p.scales) max_scale = std::max(max_scale, s);
  EXPECT_LE(Tensor::max_abs_diff(x, back), max_scale * 0.501F);
}

TEST(QuantizeLevels, LevelsStayInRange) {
  Rng rng(10);
  const Tensor x = Tensor::randn({64}, rng, 10.F);
  for (int bits : {2, 4, 8, 16}) {
    QuantSpec spec{bits, QuantScheme::kAffine};
    const QParams p = choose_qparams(x, spec);
    const QRange r = range_of(spec);
    for (auto v : quantize_levels_qparams(x, p, spec)) {
      EXPECT_GE(v, r.qmin);
      EXPECT_LE(v, r.qmax);
    }
  }
}

// ---- parameterized sweep: error shrinks as bits grow, both schemes --------

class QParamsBitSweep : public ::testing::TestWithParam<int> {};

TEST_P(QParamsBitSweep, MoreBitsNeverHurt) {
  const int bits = GetParam();
  Rng rng(42);
  const Tensor x = Tensor::randn({32, 32}, rng, 3.F);
  for (const auto scheme : {QuantScheme::kSymmetric, QuantScheme::kAffine}) {
    const float coarse = quantization_rmse_qparams(x, QuantSpec{bits, scheme});
    const float fine = quantization_rmse_qparams(x, QuantSpec{bits + 2, scheme});
    EXPECT_LT(fine, coarse) << "scheme " << static_cast<int>(scheme) << " bits " << bits;
  }
}

INSTANTIATE_TEST_SUITE_P(Bits2To12, QParamsBitSweep, ::testing::Values(2, 4, 6, 8, 10, 12));

// ---- observer min/max + affine qparams -------------------------------------

TEST(Observer, TracksMinAndMaxSeparately) {
  RangeObserver obs(RangeObserver::Mode::kMinMax);
  Tensor x({4}, {-3.F, -1.F, 0.5F, 2.F});
  obs.observe(x);
  EXPECT_FLOAT_EQ(obs.tracked_min(), -3.F);
  EXPECT_FLOAT_EQ(obs.tracked_max(), 2.F);
  EXPECT_FLOAT_EQ(obs.tracked_abs_max(), 3.F);
}

TEST(Observer, EmaBlendsBothEnds) {
  RangeObserver obs(RangeObserver::Mode::kEma, 0.5F);
  obs.observe(Tensor({2}, {-4.F, 4.F}));
  obs.observe(Tensor({2}, {-2.F, 8.F}));
  EXPECT_FLOAT_EQ(obs.tracked_min(), -3.F);  // 0.5*-4 + 0.5*-2
  EXPECT_FLOAT_EQ(obs.tracked_max(), 6.F);   // 0.5*4  + 0.5*8
}

TEST(Observer, AffineQParamsCoverObservedInterval) {
  RangeObserver obs(RangeObserver::Mode::kMinMax);
  obs.observe(Tensor({2}, {0.F, 10.F}));  // relu-style skew
  QuantSpec spec{8, QuantScheme::kAffine};
  const QParams p = obs.qparams(spec);
  // Interval [0, 10] over 255 levels.
  EXPECT_NEAR(p.scales[0], 10.F / 255.F, 1e-6F);
  EXPECT_EQ(p.zero_points[0], -128);  // real 0 sits at qmin
}

TEST(Observer, SymmetricQParamsHaveZeroPointZero) {
  RangeObserver obs(RangeObserver::Mode::kMinMax);
  obs.observe(Tensor({2}, {-1.F, 3.F}));
  const QParams p = obs.qparams(QuantSpec{8});
  EXPECT_EQ(p.zero_points[0], 0);
  EXPECT_FLOAT_EQ(p.scales[0], scale_for(3.F, QuantSpec{8}));
}

TEST(Observer, ResetClearsRange) {
  RangeObserver obs;
  obs.observe(Tensor({1}, {7.F}));
  obs.reset();
  EXPECT_FALSE(obs.initialized());
  EXPECT_FLOAT_EQ(obs.scale(QuantSpec{8}), scale_for(1.F, QuantSpec{8}));
}

// ---- STE ops ----------------------------------------------------------------

TEST(FakeQuantSte, AffineForwardMatchesQParamsPath) {
  Rng rng(11);
  const Tensor x = Tensor::rand({4, 4}, rng, 0.F, 2.F);
  QuantSpec spec{8, QuantScheme::kAffine};
  RangeObserver obs(RangeObserver::Mode::kMinMax);
  ag::Variable v(x, true);
  const ag::Variable out = fake_quant_ste(v, obs, spec, /*training=*/true);
  const Tensor expect = fake_quant_qparams(x, obs.qparams(spec), spec);
  EXPECT_TRUE(Tensor::allclose(out.value(), expect));
}

TEST(FakeQuantSte, PerChannelWeightsMatchReference) {
  Rng rng(12);
  const Tensor w = Tensor::randn({8, 4, 3, 3}, rng);
  ag::Variable wv(w, true);
  const ag::Variable out = fake_quant_weights_ste(wv, QuantSpec{8}, /*per_channel=*/true);
  const QParams p = choose_qparams(w, QuantSpec{8}, 0);
  EXPECT_TRUE(Tensor::allclose(out.value(), fake_quant_qparams(w, p, QuantSpec{8})));
}

TEST(FakeQuantSte, WeightsAffineSpecIsForcedSymmetric) {
  // Weight quantization stays symmetric even when the layer spec is affine.
  Rng rng(13);
  const Tensor w = Tensor::rand({4, 2, 3, 3}, rng, 0.F, 1.F);  // skewed positive
  ag::Variable wv(w, true);
  QuantSpec affine{8, QuantScheme::kAffine};
  const ag::Variable out = fake_quant_weights_ste(wv, affine, false);
  const QParams p = choose_qparams(w, QuantSpec{8}, -1);
  EXPECT_TRUE(Tensor::allclose(out.value(), fake_quant_qparams(w, p, QuantSpec{8})));
}

TEST(FakeQuantSte, GradientPassesWhereUnclippedPerChannel) {
  Rng rng(14);
  const Tensor w = Tensor::randn({4, 2, 3, 3}, rng);
  ag::Variable wv(w, true);
  ag::Variable out = fake_quant_weights_ste(wv, QuantSpec{8}, true);
  out.backward();
  // Per-channel minmax scale never clips the extreme value; all gradients 1.
  for (auto g : wv.grad().data()) EXPECT_FLOAT_EQ(g, 1.F);
}

TEST(FakeQuantSte, GradientBlockedWhereClipped) {
  Tensor x({3}, {0.1F, 9.F, -9.F});
  ag::Variable xv(x, true);
  QParams p = QParams::per_tensor(0.01F);  // representable range ±1.27
  ag::Variable out = fake_quant_qparams_ste(xv, p, QuantSpec{8});
  out.backward();
  EXPECT_FLOAT_EQ(xv.grad().at(0), 1.F);
  EXPECT_FLOAT_EQ(xv.grad().at(1), 0.F);
  EXPECT_FLOAT_EQ(xv.grad().at(2), 0.F);
}

// ---- per-tap scale vectors (Winograd transform-domain quantization) ---------

TEST(ScaleVector, SplatIsUniformAndRecordsProvenance) {
  const ScaleVector sv = ScaleVector::splat(0.04F, 16);
  EXPECT_FALSE(sv.empty());
  EXPECT_EQ(sv.taps(), 16);
  EXPECT_EQ(sv.group_size, 16);
  EXPECT_TRUE(sv.uniform());
  ScaleVector mixed = sv;
  mixed.scales[7] = 0.08F;
  EXPECT_FALSE(mixed.uniform());
  EXPECT_TRUE(ScaleVector{}.empty());
}

TEST(FakeQuantTaps, SplatVectorIsBitIdenticalToScalarFakeQuant) {
  Rng rng(21);
  const QuantSpec spec{8};
  const float scale = 0.031F;
  Tensor a = Tensor::randn({2, 9, 5}, rng);
  Tensor b = a;
  std::vector<std::uint8_t> mask_a, mask_b;
  const std::int64_t clip_a = fake_quant_(a, scale, spec, &mask_a);
  const std::int64_t clip_b =
      fake_quant_taps_(b, ScaleVector::splat(scale, 9), /*tap_dim=*/1, spec, &mask_b);
  EXPECT_EQ(clip_a, clip_b);
  EXPECT_EQ(mask_a, mask_b);
  EXPECT_EQ(Tensor::max_abs_diff(a, b), 0.F)
      << "a constant scale vector must reproduce the scalar grid exactly";
}

TEST(FakeQuantTaps, EachTapSnapsToItsOwnGrid) {
  Rng rng(22);
  const QuantSpec spec{8};
  ScaleVector sv;
  sv.scales = {0.02F, 0.1F, 0.004F};
  sv.group_size = 1;
  Tensor x = Tensor::randn({2, 3, 7}, rng);  // tap axis = dim 1
  const Tensor orig = x;
  fake_quant_taps_(x, sv, /*tap_dim=*/1, spec);
  for (std::int64_t n = 0; n < 2; ++n) {
    for (std::int64_t tap = 0; tap < 3; ++tap) {
      const float s = sv.scales[static_cast<std::size_t>(tap)];
      for (std::int64_t i = 0; i < 7; ++i) {
        const std::int64_t idx = (n * 3 + tap) * 7 + i;
        Tensor one({1}, {orig.at(idx)});
        fake_quant_(one, s, spec);
        EXPECT_EQ(x.at(idx), one.at(0)) << "n=" << n << " tap=" << tap << " i=" << i;
      }
    }
  }
}

TEST(FakeQuantTaps, TapCountMismatchThrows) {
  Tensor x = Tensor::zeros({1, 4, 2});
  EXPECT_THROW(fake_quant_taps_(x, ScaleVector::splat(0.1F, 5), 1, QuantSpec{8}),
               std::invalid_argument);
}

TEST(TapObserver, GroupsContiguousTapsAndExpandsTheVector) {
  // 4 taps in groups of 2: taps {0,1} share a scale from max(|1|, |2|) = 2,
  // taps {2,3} from max(|8|, |-4|) = 8.
  TapRangeObserver obs(RangeObserver::Mode::kMinMax);
  obs.configure(/*taps=*/4, /*group_size=*/2);
  const Tensor x({1, 4, 2}, {1.F, -1.F, 2.F, 0.5F, 8.F, 3.F, -4.F, 0.F});
  obs.observe(x, /*tap_dim=*/1);
  ASSERT_TRUE(obs.initialized());
  const ScaleVector sv = obs.scale_vector(QuantSpec{8});
  ASSERT_EQ(sv.taps(), 4);
  EXPECT_EQ(sv.group_size, 2);
  EXPECT_FLOAT_EQ(sv.scales[0], scale_for(2.F, QuantSpec{8}));
  EXPECT_FLOAT_EQ(sv.scales[1], sv.scales[0]);
  EXPECT_FLOAT_EQ(sv.scales[2], scale_for(8.F, QuantSpec{8}));
  EXPECT_FLOAT_EQ(sv.scales[3], sv.scales[2]);
}

TEST(TapObserver, OneGroupDegeneratesToThePerTensorObserver) {
  Rng rng(23);
  const Tensor x = Tensor::randn({2, 6, 3}, rng);
  TapRangeObserver taps(RangeObserver::Mode::kEma, 0.5F);
  taps.configure(6, 6);  // one group spanning every tap == per-tensor
  RangeObserver scalar(RangeObserver::Mode::kEma, 0.5F);
  for (int i = 0; i < 3; ++i) {
    taps.observe(x, 1);
    scalar.observe(x);
  }
  const ScaleVector sv = taps.scale_vector(QuantSpec{8});
  ASSERT_EQ(sv.taps(), 6);
  EXPECT_TRUE(sv.uniform());
  EXPECT_FLOAT_EQ(sv.scales[0], scalar.scale(QuantSpec{8}));
}

TEST(TapObserver, ReconfigureWithNewGeometryResetsState) {
  TapRangeObserver obs(RangeObserver::Mode::kMinMax);
  obs.configure(4, 2);
  obs.observe(Tensor({1, 4, 1}, {1.F, 2.F, 3.F, 4.F}), 1);
  EXPECT_TRUE(obs.initialized());
  obs.configure(4, 2);  // same geometry: a no-op, state kept
  EXPECT_TRUE(obs.initialized());
  obs.configure(4, 1);  // new grouping: stale group ranges must not leak
  EXPECT_FALSE(obs.initialized());
  EXPECT_EQ(obs.group_size(), 1);
  EXPECT_THROW(obs.configure(4, 0), std::invalid_argument);
}

}  // namespace
}  // namespace wa::quant
