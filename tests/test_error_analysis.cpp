// Tests for the numerical-error analysis utilities (src/winograd/
// error_analysis): analytic amplification, dynamic-range expansion, the
// error-growth table, and the exhaustive quantization-aware point search.
#include <gtest/gtest.h>

#include <set>

#include "winograd/error_analysis.hpp"

namespace wa::wino {
namespace {

TEST(Amplification, GrowsWithTileSize) {
  // Barabasz et al.: error grows at least exponentially with tile size.
  // The analytic norm-product proxy must be strictly increasing — and
  // super-linearly so — in m for the default points.
  const double a2 = amplification_factor(make_transforms(2, 3));
  const double a4 = amplification_factor(make_transforms(4, 3));
  const double a6 = amplification_factor(make_transforms(6, 3));
  EXPECT_GT(a4, 2 * a2);
  EXPECT_GT(a6, 2 * a4);
}

TEST(Amplification, LargerFiltersAmplifyMore) {
  const double r3 = amplification_factor(make_transforms(4, 3));
  const double r5 = amplification_factor(make_transforms(4, 5));
  EXPECT_GT(r5, r3);
}

TEST(Amplification, PositiveAndFiniteForAllSupportedConfigs) {
  for (const int r : {3, 5}) {
    for (const int m : {2, 4, 6}) {
      const double a = amplification_factor(make_transforms(m, r));
      EXPECT_GT(a, 0.0) << "F(" << m << "," << r << ")";
      EXPECT_TRUE(std::isfinite(a)) << "F(" << m << "," << r << ")";
    }
  }
}

TEST(RangeExpansion, AtLeastOneAndGrowsWithTile) {
  Rng rng(1);
  const double e2 = range_expansion(make_transforms(2, 3), 64, rng);
  const double e6 = range_expansion(make_transforms(6, 3), 64, rng);
  EXPECT_GE(e2, 1.0);  // some intermediate always at least matches the input
  EXPECT_GT(e6, e2);   // bigger tiles stretch the dynamic range further
}

TEST(RangeExpansion, RejectsNonPositiveTrials) {
  Rng rng(2);
  EXPECT_THROW(range_expansion(make_transforms(2, 3), 0, rng), std::invalid_argument);
}

TEST(ErrorGrowthTable, RowsMatchRequestAndInt8Dominates) {
  Rng rng(3);
  const auto rows = error_growth_table(3, {2, 4}, 50, rng);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].m, 2);
  EXPECT_EQ(rows[0].tile, 4);
  EXPECT_EQ(rows[1].tile, 6);
  for (const auto& row : rows) {
    // Coarser quantization always hurts at least as much.
    EXPECT_LE(row.fp32.rel_rmse, row.int16.rel_rmse + 1e-12);
    EXPECT_LE(row.int16.rel_rmse, row.int8.rel_rmse + 1e-12);
  }
  // The Table 1 pattern: int8 error at F4 well above F2.
  EXPECT_GT(rows[1].int8.rel_rmse, rows[0].int8.rel_rmse);
}

TEST(PointPool, CanonicalPoolIsDistinctAndContainsDefaults) {
  const auto pool = canonical_point_pool();
  EXPECT_GE(pool.size(), 12u);
  EXPECT_EQ(std::set<double>(pool.begin(), pool.end()).size(), pool.size());
  for (const double p : {0.0, 1.0, -1.0, 2.0, -2.0}) {
    EXPECT_NE(std::find(pool.begin(), pool.end(), p), pool.end()) << p;
  }
}

TEST(ExhaustiveSearch, EnumeratesAllSubsets) {
  // Pool of 5, F(2,3) needs 3 finite points: C(5,3) = 10 candidates. The
  // search keeps top_k, so ask for more than exist and count.
  Rng rng(4);
  const std::vector<double> pool = {0, 1, -1, 2, -2};
  const auto ranked = exhaustive_point_search(2, 3, pool, quant::QuantSpec{32}, 8, rng, 100);
  EXPECT_EQ(ranked.size(), 10u);
}

TEST(ExhaustiveSearch, RankedByScoreAscending) {
  Rng rng(5);
  const auto ranked = exhaustive_point_search(2, 3, canonical_point_pool(),
                                              quant::QuantSpec{8}, 16, rng, 20);
  for (std::size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_LE(ranked[i - 1].score, ranked[i].score);
  }
}

TEST(ExhaustiveSearch, TopKTruncates) {
  Rng rng(6);
  const auto ranked = exhaustive_point_search(2, 3, canonical_point_pool(),
                                              quant::QuantSpec{8}, 8, rng, 3);
  EXPECT_EQ(ranked.size(), 3u);
}

TEST(ExhaustiveSearch, PoolTooSmallThrows) {
  Rng rng(7);
  const std::vector<double> tiny = {0, 1};
  EXPECT_THROW(exhaustive_point_search(4, 3, tiny, quant::QuantSpec{8}, 4, rng),
               std::invalid_argument);
}

TEST(ExhaustiveSearch, GoodPointsBeatNaiveLadderAtInt8) {
  // The integer ladder {0,1,-1,2,-2,3,-3} is known-bad for F6 (huge powers);
  // the best pool subset must beat it comfortably at INT8.
  Rng rng(8);
  const std::vector<double> ladder = {0, 1, -1, 2, -2, 3, -3};
  const auto naive = search_points(6, 3, {ladder}, quant::QuantSpec{8}, 24, rng);
  const auto best = exhaustive_point_search(6, 3, canonical_point_pool(),
                                            quant::QuantSpec{8}, 24, rng, 1);
  EXPECT_LT(best[0].score, naive[0].score);
}

}  // namespace
}  // namespace wa::wino
