// Property tests for the Cook-Toom construction and Winograd references.
//
// The central identity — Aᵀ[(G g) ⊙ (Bᵀ d)] equals direct correlation — is
// checked in FP64 for every F(m, r) the paper uses (3×3 filters with m ∈
// {2,4,6}; 5×5 filters for the LeNet experiments) plus extras, and the 2-D
// lift against direct 2-D correlation. The error analyzer is then checked to
// reproduce the paper's motivating observations (error grows with tile size,
// explodes under quantization).
#include <gtest/gtest.h>

#include <cmath>

#include "winograd/cook_toom.hpp"
#include "winograd/point_search.hpp"
#include "winograd/winograd_ref.hpp"

namespace wa::wino {
namespace {

// ---- construction ---------------------------------------------------------

TEST(CookToom, RejectsBadInputs) {
  EXPECT_THROW(cook_toom_1d(2, 3, {0.0}), std::invalid_argument);        // wrong count
  EXPECT_THROW(cook_toom_1d(2, 3, {0.0, 1.0, 1.0}), std::invalid_argument);  // duplicate
  EXPECT_THROW(cook_toom_1d(0, 3, {}), std::invalid_argument);
}

TEST(CookToom, F23MatrixShapes) {
  const auto td = cook_toom_1d(2, 3, default_points(4));
  EXPECT_EQ(td.g_mat.size(), 4u);
  EXPECT_EQ(td.g_mat[0].size(), 3u);
  EXPECT_EQ(td.bt_mat.size(), 4u);
  EXPECT_EQ(td.bt_mat[0].size(), 4u);
  EXPECT_EQ(td.at_mat.size(), 2u);
  EXPECT_EQ(td.at_mat[0].size(), 4u);
}

TEST(DefaultPoints, DistinctAndSized) {
  for (int n : {4, 6, 8, 10, 12}) {
    const auto pts = default_points(n);
    EXPECT_EQ(static_cast<int>(pts.size()), n - 1);
    for (std::size_t i = 0; i < pts.size(); ++i)
      for (std::size_t j = i + 1; j < pts.size(); ++j) EXPECT_NE(pts[i], pts[j]);
  }
}

TEST(PolyMul, MatchesManual) {
  // (1 + x)(2 - x) = 2 + x - x².
  const auto p = poly_mul({1, 1}, {2, -1});
  ASSERT_EQ(p.size(), 3u);
  EXPECT_DOUBLE_EQ(p[0], 2);
  EXPECT_DOUBLE_EQ(p[1], 1);
  EXPECT_DOUBLE_EQ(p[2], -1);
}

// ---- 1-D identity in FP64 --------------------------------------------------

class Winograd1dIdentity : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(Winograd1dIdentity, MatchesDirectCorrelation) {
  const auto [m, r] = GetParam();
  const auto td = cook_toom_1d(m, r, default_points(m + r - 1));
  Rng rng(static_cast<std::uint64_t>(m * 100 + r));
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> d(static_cast<std::size_t>(m + r - 1));
    std::vector<double> g(static_cast<std::size_t>(r));
    for (auto& v : d) v = rng.normal();
    for (auto& v : g) v = rng.normal();
    const auto direct = correlate_1d_d(d, g);
    const auto wino = winograd_1d_d(td, d, g);
    ASSERT_EQ(direct.size(), wino.size());
    for (std::size_t i = 0; i < direct.size(); ++i) {
      EXPECT_NEAR(direct[i], wino[i], 1e-9) << "F(" << m << "," << r << ") output " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, Winograd1dIdentity,
    ::testing::Values(std::pair{2, 3}, std::pair{4, 3}, std::pair{6, 3},  // the paper's F2/F4/F6
                      std::pair{2, 5}, std::pair{4, 5}, std::pair{6, 5},  // LeNet 5x5 configs
                      std::pair{1, 3}, std::pair{3, 3}, std::pair{5, 3},
                      std::pair{2, 2}, std::pair{4, 4}, std::pair{8, 3}),
    [](const auto& info) {
      return "F" + std::to_string(info.param.first) + "x" + std::to_string(info.param.second);
    });

// ---- 2-D equivalence --------------------------------------------------------

class Winograd2dEquivalence : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(Winograd2dEquivalence, FullImageMatchesDirect) {
  const auto [m, r, h, w] = GetParam();
  const Transforms tr = make_transforms(m, r);
  Rng rng(static_cast<std::uint64_t>(m * 1000 + r * 100 + h * 10 + w));
  const Tensor input = Tensor::randn({h, w}, rng);
  const Tensor filter = Tensor::randn({r, r}, rng);
  const Tensor direct = correlate_2d(input, filter);
  const Tensor wino = winograd_conv_2d(tr, input, filter);
  // FP32 tolerance scales with tile size (that is the paper's point!), but
  // remains small in absolute terms for sane input magnitudes.
  const float tol = 1e-3F * static_cast<float>(m + r);
  EXPECT_LE(Tensor::max_abs_diff(direct, wino), tol)
      << "F(" << m << "," << r << ") on " << h << "x" << w;
}

INSTANTIATE_TEST_SUITE_P(Shapes, Winograd2dEquivalence,
                         ::testing::Values(std::tuple{2, 3, 8, 8}, std::tuple{2, 3, 9, 11},
                                           std::tuple{4, 3, 12, 12}, std::tuple{4, 3, 10, 13},
                                           std::tuple{6, 3, 16, 16}, std::tuple{6, 3, 13, 17},
                                           std::tuple{2, 5, 12, 12}, std::tuple{4, 5, 14, 15},
                                           std::tuple{6, 5, 20, 20}));

TEST(Winograd2d, TileEdgePaddingIsZeroNotGarbage) {
  // Output sizes that do not divide by m exercise the edge-waste path.
  const Transforms tr = make_transforms(4, 3);
  Rng rng(7);
  const Tensor input = Tensor::randn({7, 7}, rng);  // out 5x5, tiles of 4 -> ragged
  const Tensor filter = Tensor::randn({3, 3}, rng);
  EXPECT_LE(Tensor::max_abs_diff(correlate_2d(input, filter), winograd_conv_2d(tr, input, filter)),
            5e-3F);
}

TEST(Winograd2d, RejectsMismatchedFilter) {
  const Transforms tr = make_transforms(2, 3);
  EXPECT_THROW(winograd_conv_2d(tr, Tensor::ones({8, 8}), Tensor::ones({5, 5})),
               std::invalid_argument);
}

// ---- numerical error behaviour (the paper's Table 1 motivation) -------------

TEST(NumericalError, GrowsWithTileSizeFp32) {
  Rng rng(11);
  const auto e2 = winograd_error(make_transforms(2, 3), quant::QuantSpec{32}, 200, rng);
  const auto e4 = winograd_error(make_transforms(4, 3), quant::QuantSpec{32}, 200, rng);
  const auto e6 = winograd_error(make_transforms(6, 3), quant::QuantSpec{32}, 200, rng);
  EXPECT_LT(e2.rel_rmse, e4.rel_rmse);
  EXPECT_LT(e4.rel_rmse, e6.rel_rmse);
  EXPECT_LT(e6.rel_rmse, 1e-3);  // still fine in fp32 — exactly the paper's story
}

TEST(NumericalError, ExplodesUnderInt8ForLargeTiles) {
  Rng rng(12);
  const auto f2 = winograd_error(make_transforms(2, 3), quant::QuantSpec{8}, 200, rng);
  const auto f6 = winograd_error(make_transforms(6, 3), quant::QuantSpec{8}, 200, rng);
  EXPECT_GT(f6.rel_rmse, 3.0 * f2.rel_rmse);
  EXPECT_GT(f6.rel_rmse, 0.05);  // F6@int8 is badly wrong, cf. Table 1 (11% acc)
}

TEST(NumericalError, Int16MildForF2) {
  Rng rng(13);
  const auto f2 = winograd_error(make_transforms(2, 3), quant::QuantSpec{16}, 100, rng);
  EXPECT_LT(f2.rel_rmse, 0.01);
}

TEST(NumericalError, FiveByFiveWorseThanThreeByThree) {
  // Larger filters need more points -> worse conditioning (Fig. 5 story).
  Rng rng(14);
  const auto f33 = winograd_error(make_transforms(4, 3), quant::QuantSpec{8}, 150, rng);
  const auto f55 = winograd_error(make_transforms(4, 5), quant::QuantSpec{8}, 150, rng);
  EXPECT_GT(f55.rel_rmse, f33.rel_rmse);
}

// ---- transform sparsity (A.2 dense-transform overhead) ----------------------

TEST(MatrixCost, DefaultF2TransformsAreSparse) {
  const Transforms tr = make_transforms(2, 3);
  const auto bt = matrix_cost(tr.bt_mat);
  const auto at = matrix_cost(tr.at_mat);
  EXPECT_GT(bt.zeros, 0);
  EXPECT_GT(at.zeros, 0);
  // F2's Bᵀ/Aᵀ are ±1/0 only: no general multiplies at all.
  EXPECT_EQ(bt.general, 0);
  EXPECT_EQ(at.general, 0);
}

TEST(MatrixCost, DenseMatrixCostsMultiplies) {
  Rng rng(15);
  const auto c = matrix_cost(Tensor::randn({4, 4}, rng));
  EXPECT_EQ(c.zeros, 0);
  EXPECT_EQ(c.general, 16);
  EXPECT_DOUBLE_EQ(c.multiply_fraction(), 1.0);
}

// ---- point search ------------------------------------------------------------

TEST(PointSearch, CandidatesAreValid) {
  for (int n : {4, 6, 8, 10}) {
    const auto cands = candidate_point_sets(n);
    EXPECT_GE(cands.size(), 2u) << "n=" << n;
    for (const auto& c : cands) {
      EXPECT_NO_THROW(make_transforms(n - 2, 3, c));  // m = n - r + 1 with r=3
    }
  }
}

TEST(PointSearch, RanksByQuantizedError) {
  Rng rng(16);
  const auto ranked = search_points(4, 3, candidate_point_sets(6), quant::QuantSpec{8}, 60, rng);
  ASSERT_GE(ranked.size(), 2u);
  for (std::size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_LE(ranked[i - 1].score, ranked[i].score);
  }
}

TEST(PointSearch, PointsToStringReadable) {
  EXPECT_EQ(points_to_string({0, 1, -1}), "{0, 1, -1}");
}

}  // namespace
}  // namespace wa::wino
