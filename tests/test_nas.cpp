// Tests for the wiNAS search machinery.
#include <gtest/gtest.h>

#include "autograd/gradcheck.hpp"
#include "autograd/ops.hpp"
#include "nas/mixed_conv.hpp"
#include "nas/winas.hpp"

namespace wa::nas {
namespace {

ag::Variable leaf(Tensor t) { return ag::Variable(std::move(t), true); }

TEST(WeightedPair, ForwardIsConvexCombination) {
  ag::Variable a(Tensor::full({4}, 1.F), false);
  ag::Variable b(Tensor::full({4}, 3.F), false);
  ag::Variable alpha = leaf(Tensor::zeros({2}));  // equal weights
  ag::Variable out = weighted_pair(a, b, alpha, 0, 1);
  EXPECT_NEAR(out.value().at(0), 2.F, 1e-5F);
}

TEST(WeightedPair, GradCheckAllInputs) {
  Rng rng(1);
  std::vector<ag::Variable> inputs{leaf(Tensor::randn({5}, rng)), leaf(Tensor::randn({5}, rng)),
                                   leaf(Tensor::randn({3}, rng))};
  auto fn = [](std::vector<ag::Variable>& in) {
    ag::Variable y = weighted_pair(in[0], in[1], in[2], 0, 2);
    return ag::sum(ag::mul(y, y));
  };
  const auto res = ag::grad_check(fn, inputs, 1e-3F, 5e-2F);
  EXPECT_TRUE(res.ok) << res.detail;
}

TEST(SoftmaxExpectation, UniformAlphaGivesMean) {
  ag::Variable alpha = leaf(Tensor::zeros({4}));
  ag::Variable e = softmax_expectation(alpha, {1.0, 2.0, 3.0, 4.0});
  EXPECT_NEAR(e.value().at(0), 2.5F, 1e-5F);
}

TEST(SoftmaxExpectation, GradCheck) {
  Rng rng(2);
  std::vector<ag::Variable> inputs{leaf(Tensor::randn({4}, rng))};
  auto fn = [](std::vector<ag::Variable>& in) {
    return softmax_expectation(in[0], {0.5, 1.5, 4.0, 2.0});
  };
  const auto res = ag::grad_check(fn, inputs, 1e-3F, 5e-2F);
  EXPECT_TRUE(res.ok) << res.detail;
}

TEST(SoftmaxExpectation, GradientPushesTowardCheaper) {
  // Minimising E{latency} should raise the probability of the cheapest op.
  ag::Variable alpha = leaf(Tensor::zeros({3}));
  for (int step = 0; step < 50; ++step) {
    alpha.zero_grad();
    softmax_expectation(alpha, {5.0, 1.0, 3.0}).backward();
    alpha.sgd_step(0.5F);
  }
  EXPECT_EQ(alpha.value().argmax(), 1);
}

TEST(CandidateSets, SizesAndContents) {
  const auto wa = winas_wa_candidates(quant::QuantSpec{8});
  EXPECT_EQ(wa.size(), 4u);
  EXPECT_EQ(wa[0].algo, nn::ConvAlgo::kIm2row);
  EXPECT_TRUE(wa[1].flex);  // WA layers learn their transforms
  const auto waq = winas_wa_q_candidates();
  EXPECT_EQ(waq.size(), 12u);  // {im2row,F2,F4,F6} x {fp32,int16,int8}
}

nn::Conv2dOptions small_opts() {
  nn::Conv2dOptions o;
  o.in_channels = 4;
  o.out_channels = 4;
  return o;
}

std::vector<Candidate> two_candidates() {
  auto c = winas_wa_candidates(quant::QuantSpec{32});
  c.resize(2);
  c[0].latency_ms = 3.0;
  c[1].latency_ms = 1.0;
  return c;
}

TEST(MixedConv2d, RequiresTwoCandidates) {
  Rng rng(3);
  auto c = two_candidates();
  c.resize(1);
  EXPECT_THROW(MixedConv2d(small_opts(), c, rng), std::invalid_argument);
}

TEST(MixedConv2d, SingleModeRunsActiveOpOnly) {
  Rng rng(4);
  MixedConv2d mixed(small_opts(), two_candidates(), rng);
  ag::Variable x(Tensor::randn({1, 4, 8, 8}, rng), false);
  mixed.set_active(0);
  const Tensor y0 = mixed.forward(x).value();
  mixed.set_active(1);
  const Tensor y1 = mixed.forward(x).value();
  EXPECT_EQ(y0.shape(), y1.shape());
  EXPECT_GT(Tensor::max_abs_diff(y0, y1), 1e-4F);  // different weights -> different out
}

TEST(MixedConv2d, PairModeGradsFlowToAlpha) {
  Rng rng(5);
  MixedConv2d mixed(small_opts(), two_candidates(), rng);
  mixed.set_mode(MixedConv2d::Mode::kPair);
  mixed.sample(rng);
  ag::Variable x(Tensor::randn({1, 4, 8, 8}, rng), false);
  ag::Variable y = mixed.forward(x);
  ag::mean(ag::mul(y, y)).backward();
  EXPECT_GT(mixed.alpha().grad().abs_max(), 0.F);
}

TEST(MixedConv2d, ProbabilitiesSumToOne) {
  Rng rng(6);
  MixedConv2d mixed(small_opts(), two_candidates(), rng);
  const auto p = mixed.probabilities();
  double sum = 0;
  for (double v : p) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(MixedConv2d, BestFollowsAlpha) {
  Rng rng(7);
  MixedConv2d mixed(small_opts(), two_candidates(), rng);
  mixed.alpha().value().at(1) = 5.F;
  EXPECT_EQ(mixed.best(), 1u);
}

TEST(MixedConv2d, LatencyPressureSelectsCheapOp) {
  // Pure-latency optimisation (no data): alpha must converge to the cheaper
  // candidate — the λ2 mechanism of Eq. 3 in isolation.
  Rng rng(8);
  MixedConv2d mixed(small_opts(), two_candidates(), rng);
  for (int i = 0; i < 100; ++i) {
    mixed.alpha().zero_grad();
    mixed.expected_latency().backward();
    mixed.alpha().sgd_step(0.5F);
  }
  EXPECT_EQ(mixed.best(), 1u);  // candidate 1 has latency 1.0 vs 3.0
}

// ---- end-to-end (small) search -------------------------------------------------

class WinasEndToEnd : public ::testing::Test {
 protected:
  static data::Dataset train_set_, val_set_;
  static void SetUpTestSuite() {
    auto spec = data::cifar10_like();
    spec.train_size = 96;
    spec.test_size = 48;
    train_set_ = data::generate(spec, true);
    val_set_ = data::generate(spec, false);
  }
};
data::Dataset WinasEndToEnd::train_set_;
data::Dataset WinasEndToEnd::val_set_;

TEST_F(WinasEndToEnd, SearchProducesFullAssignment) {
  WinasOptions opts;
  opts.epochs = 1;
  opts.width_mult = 0.125F;
  opts.fixed_spec = quant::QuantSpec{32};
  WinasSearch search(opts, train_set_, val_set_);
  EXPECT_EQ(search.mixed_layers().size(), 16u);
  const auto result = search.run();
  EXPECT_EQ(result.choices.size(), 16u);
  EXPECT_EQ(result.assignment.size(), 16u);
  EXPECT_GT(result.expected_latency_ms, 0.0);
  // The derived table names match the ResNet-18 searchable layers.
  for (const auto& name : models::ResNet18::searchable_layer_names()) {
    EXPECT_TRUE(result.assignment.contains(name)) << name;
  }
  // The report is printable.
  EXPECT_FALSE(format_architecture(result).empty());
}

TEST_F(WinasEndToEnd, HighLambdaPrefersFasterOps) {
  // λ2 = 10 (huge): latency dominates the arch loss, so the found network
  // must be no slower than the one found with λ2 = 0.
  WinasOptions fast_opts;
  fast_opts.epochs = 1;
  fast_opts.width_mult = 0.125F;
  fast_opts.fixed_spec = quant::QuantSpec{32};
  fast_opts.lambda2 = 10.F;
  fast_opts.seed = 11;
  const auto fast = WinasSearch(fast_opts, train_set_, val_set_).run();

  WinasOptions acc_opts = fast_opts;
  acc_opts.lambda2 = 0.F;
  const auto free = WinasSearch(acc_opts, train_set_, val_set_).run();
  EXPECT_LE(fast.expected_latency_ms, free.expected_latency_ms + 1e-9);
}

}  // namespace
}  // namespace wa::nas
