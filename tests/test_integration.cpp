// Cross-module integration tests: training <-> deployment consistency,
// checkpointing across model variants, and micro-scale versions of the
// paper's headline effects.
#include <gtest/gtest.h>

#include "backend/conv_kernels_s8.hpp"
#include "core/wa_conv2d.hpp"
#include "data/synthetic.hpp"
#include "models/resnet.hpp"
#include "nas/winas.hpp"
#include "tensor/io.hpp"
#include "train/trainer.hpp"

namespace wa {
namespace {

data::Dataset tiny_set(bool train, int classes = 10) {
  auto spec = data::cifar10_like();
  spec.num_classes = classes;
  spec.train_size = 192;
  spec.test_size = 96;
  spec.noise = 0.1F;
  spec.jitter = 1.F;
  return data::generate(spec, train);
}

// Small batches give the tiny train sets enough optimizer steps per epoch to
// learn reliably; large-batch few-step runs are seed-lottery.
train::TrainerOptions tiny_opts(int epochs, float lr = 3e-3F) {
  train::TrainerOptions opts;
  opts.batch_size = 16;
  opts.epochs = epochs;
  opts.lr = lr;
  return opts;
}

TEST(Integration, DirectFp32LearnsTinyDataset) {
  Rng rng(1);
  models::ResNetConfig cfg;
  cfg.width_mult = 0.125F;
  models::ResNet18 net(cfg, rng);
  const auto train_set = tiny_set(true);
  const auto val_set = tiny_set(false);
  train::TrainerOptions opts = tiny_opts(5);
  train::Trainer t(net, train_set, val_set, opts);
  t.fit();
  EXPECT_GT(t.evaluate(val_set), 0.5F);  // chance = 0.1
}

TEST(Integration, WinogradAwareF2Int8LearnsTinyDataset) {
  // The headline capability: an INT8 network executing Winograd convolutions
  // trains to high accuracy when training is winograd-aware.
  Rng rng(2);
  models::ResNetConfig cfg;
  cfg.width_mult = 0.125F;
  cfg.algo = nn::ConvAlgo::kWinograd2;
  cfg.qspec = quant::QuantSpec{8};
  models::ResNet18 net(cfg, rng);
  const auto train_set = tiny_set(true);
  const auto val_set = tiny_set(false);
  train::TrainerOptions opts = tiny_opts(5);
  train::Trainer t(net, train_set, val_set, opts);
  t.fit();
  EXPECT_GT(t.evaluate(val_set), 0.4F);
}

TEST(Integration, PostTrainingSwapToF6Int8Collapses) {
  // Micro Table 1: train direct fp32, swap conv algo at eval.
  Rng rng(3);
  models::ResNetConfig cfg;
  cfg.width_mult = 0.125F;
  models::ResNet18 source(cfg, rng);
  const auto train_set = tiny_set(true);
  const auto val_set = tiny_set(false);
  train::TrainerOptions opts = tiny_opts(5);
  train::Trainer t(source, train_set, val_set, opts);
  t.fit();
  const float direct_acc = t.evaluate(val_set);
  ASSERT_GT(direct_acc, 0.5F);

  auto swap = [&](nn::ConvAlgo algo, int bits) {
    Rng r2(4);
    models::ResNetConfig sc = cfg;
    sc.algo = algo;
    sc.qspec = quant::QuantSpec{bits};
    sc.pin_last_stage_to_f2 = false;
    models::ResNet18 swapped(sc, r2);
    swapped.load_state_intersect(source.state_dict());
    train::Trainer ev(swapped, train_set, val_set, opts);
    ev.warmup_observers(4);
    return ev.evaluate(val_set);
  };

  const float f2_fp32 = swap(nn::ConvAlgo::kWinograd2, 32);
  const float f6_int8 = swap(nn::ConvAlgo::kWinograd6, 8);
  EXPECT_GT(f2_fp32, direct_acc - 0.05F);          // fp32 F2 swap is free
  EXPECT_LT(f6_int8, direct_acc - 0.25F);          // int8 F6 swap collapses
}

TEST(Integration, CheckpointRoundTripAcrossProcessBoundary) {
  Rng rng(5);
  models::ResNetConfig cfg;
  cfg.width_mult = 0.125F;
  cfg.algo = nn::ConvAlgo::kWinograd4;
  cfg.flex_transforms = true;
  models::ResNet18 a(cfg, rng);
  const std::string path = ::testing::TempDir() + "/wa_resnet.ckpt";
  save_tensor_map(path, a.state_dict());

  Rng rng2(99);
  models::ResNet18 b(cfg, rng2);
  b.load_state(load_tensor_map(path));
  ag::Variable x(Tensor::randn({1, 3, 32, 32}, rng), false);
  a.set_training(false);
  b.set_training(false);
  EXPECT_TRUE(Tensor::allclose(a.forward(x).value(), b.forward(x).value(), 1e-5F));
}

TEST(Integration, TrainedScalesTransferToInt8DeploymentKernels) {
  // Train a single winograd-aware layer, freeze its stage scales, and run
  // the int8 deployment kernel with those scales: outputs must agree with
  // the training-time forward pass (the QAT -> integer-inference contract).
  Rng rng(6);
  nn::Conv2dOptions opts;
  opts.in_channels = 4;
  opts.out_channels = 4;
  opts.algo = nn::ConvAlgo::kWinograd2;
  opts.qspec = quant::QuantSpec{8};
  core::WinogradAwareConv2d layer(opts, rng);

  // "Calibrate" observers with a few batches.
  for (int i = 0; i < 4; ++i) {
    ag::Variable x(Tensor::randn({2, 4, 8, 8}, rng), false);
    layer.forward(x);
  }
  layer.set_training(false);

  const Tensor probe = Tensor::randn({1, 4, 8, 8}, rng);
  ag::Variable xv(probe, false);
  const Tensor train_path = layer.forward(xv).value();

  backend::ConvGeometry g;
  g.batch = 1;
  g.in_channels = 4;
  g.out_channels = 4;
  g.height = 8;
  g.width = 8;
  g.kernel = 3;
  g.pad = 1;
  const auto tr = wino::make_transforms(2, 3);
  backend::WinogradStageScales scales;
  scales.weights_transformed = layer.stages().u.scale(opts.qspec);
  scales.input_transformed = layer.stages().v.scale(opts.qspec);
  scales.hadamard = layer.stages().m.scale(opts.qspec);
  scales.output = layer.stages().y.scale(opts.qspec);

  // Input through the layer's own input observer, as at deployment.
  const float in_scale = layer.input_observer().scale(opts.qspec);
  const auto q_in = backend::quantize_s8(probe, in_scale);
  const auto q_out =
      backend::winograd_conv_s8(q_in, layer.weight().value(), g, tr, scales);
  const Tensor deploy_path = backend::dequantize(q_out);

  const float rel = Tensor::max_abs_diff(train_path, deploy_path) /
                    std::max(train_path.abs_max(), 1e-6F);
  EXPECT_LT(rel, 0.08F);
}

TEST(Integration, WinasAssignmentRetrainsEndToEnd) {
  const auto train_set = tiny_set(true);
  const auto val_set = tiny_set(false);
  nas::WinasOptions wopts;
  wopts.epochs = 1;
  wopts.width_mult = 0.125F;
  wopts.fixed_spec = quant::QuantSpec{32};
  nas::WinasSearch search(wopts, train_set, val_set);
  const auto result = search.run();

  Rng rng(7);
  models::ResNetConfig cfg;
  cfg.width_mult = 0.125F;
  auto build = models::override_builder(result.assignment, rng);
  models::ResNet18 found(cfg, build, rng);
  train::TrainerOptions opts = tiny_opts(4);
  train::Trainer t(found, train_set, val_set, opts);
  t.fit();
  EXPECT_GT(t.evaluate(val_set), 0.3F);
}

TEST(Integration, HundredClassDatasetTrains) {
  // CIFAR-100-analog smoke: the 100-way head wires up and learns something.
  Rng rng(8);
  models::ResNetConfig cfg;
  cfg.width_mult = 0.125F;
  cfg.num_classes = 100;
  models::ResNet18 net(cfg, rng);
  auto spec = data::cifar100_like();
  spec.train_size = 400;
  spec.noise = 0.15F;
  spec.test_size = 100;
  const auto train_set = data::generate(spec, true);
  const auto val_set = data::generate(spec, false);
  train::TrainerOptions opts = tiny_opts(3);
  train::Trainer t(net, train_set, val_set, opts);
  t.fit();
  EXPECT_GT(t.evaluate(val_set), 0.05F);  // chance = 0.01
}

}  // namespace
}  // namespace wa
