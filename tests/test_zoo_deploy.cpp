// Model-zoo deployment lockdown: SqueezeNet (fire-module concat joins) and
// ResNeXt-20 (grouped bottleneck convs) must compile to pure-int8 pipelines
// that classify like their QAT eval forwards, the new stage shapes must be
// bit-exact against hand-wired compositions of the underlying int8 ops
// (concat vs concat_s8, grouped conv vs per-group dense convs, strided
// Winograd vs the polyphase kernel), and every prepared cache must keep the
// weight_transforms / weight_repacks counters flat across forwards — the
// compiled-once contract extended to the whole zoo.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <sstream>

#include "backend/perf_counters.hpp"
#include "data/synthetic.hpp"
#include "deploy/pipeline.hpp"
#include "serve/artifact.hpp"
#include "train/trainer.hpp"
#include "winograd/cook_toom.hpp"

namespace wa::deploy {
namespace {

using backend::PerfSnapshot;
using backend::QTensor;
using backend::snapshot_counters;

data::Dataset zoo_set(bool train) {
  auto spec = data::cifar10_like();
  spec.train_size = 192;
  spec.test_size = 96;
  spec.noise = 0.1F;
  spec.jitter = 1.F;
  return data::generate(spec, train);
}

struct AgreementReport {
  float agreement = 0.F;
  float deployed_acc = 0.F;
  float qat_acc = 0.F;
  std::int64_t samples = 0;
};

template <typename Model>
AgreementReport compare_deployed(Model& net, const Int8Pipeline& pipe, const data::Dataset& ds) {
  net.set_training(false);
  data::DataLoader loader(ds, 16, false);
  std::int64_t agree = 0, correct = 0, qat_correct = 0, total = 0;
  for (std::int64_t bi = 0; bi < loader.batches(); ++bi) {
    const auto batch = loader.get(bi);
    const auto deployed = pipe.classify(batch.images);
    const Tensor logits = net.forward(ag::Variable(batch.images, false)).value();
    const std::int64_t classes = logits.numel() / logits.size(0);
    for (std::size_t i = 0; i < deployed.size(); ++i) {
      std::int64_t qat_pred = 0;
      for (std::int64_t c = 1; c < classes; ++c) {
        if (logits.at(static_cast<std::int64_t>(i) * classes + c) >
            logits.at(static_cast<std::int64_t>(i) * classes + qat_pred))
          qat_pred = c;
      }
      agree += deployed[i] == qat_pred;
      correct += deployed[i] == batch.labels[i];
      qat_correct += qat_pred == batch.labels[i];
      ++total;
    }
  }
  AgreementReport r;
  r.samples = total;
  r.agreement = static_cast<float>(agree) / static_cast<float>(total);
  r.deployed_acc = static_cast<float>(correct) / static_cast<float>(total);
  r.qat_acc = static_cast<float>(qat_correct) / static_cast<float>(total);
  return r;
}

template <typename Model, typename Compile>
AgreementReport train_compile_compare(Model& net, Compile&& compile, Int8Pipeline* out_pipe,
                                      int epochs) {
  const auto train_set = zoo_set(true);
  const auto val_set = zoo_set(false);
  train::TrainerOptions opts;
  opts.batch_size = 16;
  opts.epochs = epochs;
  opts.lr = 3e-3F;
  train::Trainer t(net, train_set, val_set, opts);
  t.fit();
  Int8Pipeline pipe = compile(net);
  AgreementReport r = compare_deployed(net, pipe, val_set);
  if (out_pipe != nullptr) *out_pipe = std::move(pipe);
  return r;
}

// ---- QAT -> integer-inference agreement over the zoo ------------------------

TEST(ZooDeploy, SqueezeNetCompileRejectsUncalibratedModel) {
  Rng rng(50);
  models::SqueezeNetConfig cfg;
  cfg.width_mult = 0.25F;
  cfg.qspec = quant::QuantSpec{8};
  models::SqueezeNet net(cfg, rng);  // observers never warmed
  EXPECT_THROW(compile_squeezenet(net), std::invalid_argument);
}

TEST(ZooDeploy, ResNeXtCompileRejectsUncalibratedModel) {
  Rng rng(51);
  models::ResNeXtConfig cfg;
  cfg.width_mult = 0.25F;
  cfg.qspec = quant::QuantSpec{8};
  models::ResNeXt20 net(cfg, rng);
  EXPECT_THROW(compile_resnext(net), std::invalid_argument);
}

TEST(ZooDeploy, SqueezeNetIm2rowPipelineAgreesWithQatModel) {
  // Fire modules deploy as squeeze -> two parallel expands -> ConcatStage ->
  // integer bn+relu; the whole-graph contract is the same as ResNet-18's:
  // the int8 pipeline classifies like the QAT eval forward.
  Rng rng(52);
  models::SqueezeNetConfig cfg;
  cfg.width_mult = 0.5F;  // the 0.25 squeeze bottleneck (4ch) undertrains
  cfg.qspec = quant::QuantSpec{8};
  models::SqueezeNet net(cfg, rng);
  const AgreementReport r = train_compile_compare(
      net, [](models::SqueezeNet& m) { return compile_squeezenet(m); }, nullptr, 6);
  std::printf("[          ] squeezenet im2row agreement %.4f, deployed acc %.3f, qat acc %.3f\n",
              static_cast<double>(r.agreement), static_cast<double>(r.deployed_acc),
              static_cast<double>(r.qat_acc));
  EXPECT_GE(r.agreement, 0.99F);
  EXPECT_GT(r.deployed_acc, r.qat_acc - 0.05F) << "deployment lost too much accuracy";
}

TEST(ZooDeploy, SqueezeNetWinogradF2PipelineAgreesWithQatModel) {
  // Expand-3x3 convs deploy through the Winograd path with frozen Qx scales
  // (±1-level tile rounding, hence the lower bar — the Table 1 mechanism).
  Rng rng(53);
  models::SqueezeNetConfig cfg;
  cfg.width_mult = 0.5F;
  cfg.algo = nn::ConvAlgo::kWinograd2;
  cfg.qspec = quant::QuantSpec{8};
  models::SqueezeNet net(cfg, rng);
  const AgreementReport r = train_compile_compare(
      net, [](models::SqueezeNet& m) { return compile_squeezenet(m); }, nullptr, 4);
  std::printf("[          ] squeezenet F2 agreement %.4f, deployed acc %.3f, qat acc %.3f\n",
              static_cast<double>(r.agreement), static_cast<double>(r.deployed_acc),
              static_cast<double>(r.qat_acc));
  EXPECT_GT(r.agreement, 0.9F) << "deployed disagrees with QAT model";
  EXPECT_GT(r.deployed_acc, r.qat_acc - 0.1F);
}

TEST(ZooDeploy, ResNeXtIm2rowPipelineAgreesWithQatModel) {
  // Grouped 3x3 bottleneck convs deploy group-wise through the im2row
  // executor; residual joins and projection shortcuts follow the ResNet-18
  // pattern.
  Rng rng(54);
  models::ResNeXtConfig cfg;
  cfg.width_mult = 0.25F;
  cfg.qspec = quant::QuantSpec{8};
  models::ResNeXt20 net(cfg, rng);
  const AgreementReport r = train_compile_compare(
      net, [](models::ResNeXt20& m) { return compile_resnext(m); }, nullptr, 4);
  std::printf("[          ] resnext im2row agreement %.4f, deployed acc %.3f, qat acc %.3f\n",
              static_cast<double>(r.agreement), static_cast<double>(r.deployed_acc),
              static_cast<double>(r.qat_acc));
  EXPECT_GE(r.agreement, 0.99F);
  EXPECT_GT(r.deployed_acc, r.qat_acc - 0.05F) << "deployment lost too much accuracy";
}

TEST(ZooDeploy, ResNeXtWinogradF2PipelineAgreesWithQatModel) {
  Rng rng(55);
  models::ResNeXtConfig cfg;
  cfg.width_mult = 0.25F;
  cfg.algo = nn::ConvAlgo::kWinograd2;
  cfg.qspec = quant::QuantSpec{8};
  models::ResNeXt20 net(cfg, rng);
  const AgreementReport r = train_compile_compare(
      net, [](models::ResNeXt20& m) { return compile_resnext(m); }, nullptr, 3);
  std::printf("[          ] resnext F2 agreement %.4f, deployed acc %.3f, qat acc %.3f\n",
              static_cast<double>(r.agreement), static_cast<double>(r.deployed_acc),
              static_cast<double>(r.qat_acc));
  EXPECT_GT(r.agreement, 0.9F) << "deployed disagrees with QAT model";
  EXPECT_GT(r.deployed_acc, r.qat_acc - 0.1F);
}

// ---- bit-exactness of the new stage shapes vs hand-wired ops ----------------

StageIO zio(std::string in, std::string in2, std::string out, std::string label) {
  StageIO o;
  o.input = std::move(in);
  o.input2 = std::move(in2);
  o.output = std::move(out);
  o.label = std::move(label);
  return o;
}

ConvStage dense_conv(Rng& rng, std::int64_t in_ch, std::int64_t out_ch, std::int64_t kernel,
                     std::int64_t pad, float in_s, float out_s) {
  ConvStage st;
  st.algo = nn::ConvAlgo::kIm2row;
  st.in_channels = in_ch;
  st.out_channels = out_ch;
  st.kernel = kernel;
  st.pad = pad;
  st.input_scale = in_s;
  st.output_scale = out_s;
  st.weights_q = backend::quantize_s8(Tensor::randn({out_ch, in_ch, kernel, kernel}, rng, 0.3F));
  return st;
}

TEST(ZooDeploy, ConcatStageMatchesHandWiredConcatS8) {
  // A stem fanning out into two convs joined by a ConcatStage must produce
  // exactly the bytes of running the branches through single-branch pipelines
  // and calling concat_s8 on their recovered levels — at identity scales AND
  // through genuine requantization.
  Rng rng(56);
  const float stem_out = 0.08F, e1_out = 0.11F, e3_out = 0.07F;
  // Fixed weight tensors so every pipeline below carries identical stages.
  const ConvStage stem_proto = dense_conv(rng, 3, 4, 3, 1, 0.05F, stem_out);
  const ConvStage e1_proto = dense_conv(rng, 4, 5, 1, 0, stem_out, e1_out);
  const ConvStage e3_proto = dense_conv(rng, 4, 6, 3, 1, stem_out, e3_out);

  const Tensor x = Tensor::randn({2, 3, 9, 9}, rng, 1.2F);
  for (const float cat_scale : {e3_out /* identity on lhs */, 0.09F /* both requantize */}) {
    SCOPED_TRACE("cat_scale=" + std::to_string(cat_scale));
    Int8Pipeline full;
    full.push(ConvStage(stem_proto), zio("", "", "s", "stem"));
    full.push(ConvStage(e1_proto), zio("s", "", "e1", "e1"));
    full.push(ConvStage(e3_proto), zio("s", "", "", "e3"));
    ConcatStage cat;
    cat.lhs_scale = e3_out;  // lhs = the chained e3 output
    cat.rhs_scale = e1_out;  // rhs = the published e1 slot
    cat.output_scale = cat_scale;
    full.push(std::move(cat), zio("", "e1", "", "cat"));
    const Tensor got = full.run(x);

    Int8Pipeline lhs_pipe, rhs_pipe;
    lhs_pipe.push(ConvStage(stem_proto), zio("", "", "", "stem"));
    lhs_pipe.push(ConvStage(e3_proto), zio("", "", "", "e3"));
    rhs_pipe.push(ConvStage(stem_proto), zio("", "", "", "stem"));
    rhs_pipe.push(ConvStage(e1_proto), zio("", "", "", "e1"));
    const Tensor a = lhs_pipe.run(x);
    const Tensor b = rhs_pipe.run(x);

    // Recover the exact int8 levels from the dequantized branch outputs and
    // join them with the raw kernel.
    const auto to_levels = [](const Tensor& t, float scale) {
      QTensor q;
      q.shape = t.shape();
      q.scale = scale;
      q.data.resize(static_cast<std::size_t>(t.numel()));
      for (std::int64_t i = 0; i < t.numel(); ++i) {
        q.data[static_cast<std::size_t>(i)] =
            static_cast<std::int8_t>(std::lround(t.at(i) / scale));
      }
      return q;
    };
    const QTensor want_q =
        concat_s8(to_levels(a, e3_out), to_levels(b, e1_out), make_requant_ratio(e3_out, cat_scale),
                  make_requant_ratio(e1_out, cat_scale), cat_scale, /*relu=*/false);
    ASSERT_EQ(got.shape(), want_q.shape);
    for (std::int64_t i = 0; i < got.numel(); ++i) {
      ASSERT_EQ(got.at(i), static_cast<float>(want_q.data[static_cast<std::size_t>(i)]) * cat_scale)
          << "element " << i;
    }
  }
}

/// Copy channel range [c0, c0+cn) of a [N, C, H, W] tensor.
Tensor slice_channels(const Tensor& t, std::int64_t c0, std::int64_t cn) {
  const std::int64_t n = t.size(0), c = t.size(1), hw = t.size(2) * t.size(3);
  Tensor out(Shape{n, cn, t.size(2), t.size(3)});
  for (std::int64_t ni = 0; ni < n; ++ni) {
    for (std::int64_t ci = 0; ci < cn; ++ci) {
      for (std::int64_t i = 0; i < hw; ++i) {
        out.at((ni * cn + ci) * hw + i) = t.at((ni * c + c0 + ci) * hw + i);
      }
    }
  }
  return out;
}

TEST(ZooDeploy, GroupedIm2rowConvMatchesPerGroupDenseConvs) {
  // A grouped conv stage must be exactly the per-group dense convs run on the
  // channel slices: same weights, same scales, bit-identical output bytes.
  Rng rng(57);
  const std::int64_t groups = 2, in_ch = 6, out_ch = 8, k = 3;
  const float in_s = 0.06F, out_s = 0.09F;
  const Tensor w_f = Tensor::randn({out_ch, in_ch / groups, k, k}, rng, 0.3F);
  const QTensor w_q = backend::quantize_s8(w_f);

  ConvStage grouped;
  grouped.algo = nn::ConvAlgo::kIm2row;
  grouped.in_channels = in_ch;
  grouped.out_channels = out_ch;
  grouped.kernel = k;
  grouped.pad = 1;
  grouped.groups = groups;
  grouped.input_scale = in_s;
  grouped.output_scale = out_s;
  grouped.weights_q = w_q;
  Int8Pipeline gp;
  gp.push(std::move(grouped), zio("", "", "", "grouped"));

  const Tensor x = Tensor::randn({2, in_ch, 10, 10}, rng, 1.1F);
  const Tensor got = gp.run(x);

  const std::int64_t kg = out_ch / groups, cg = in_ch / groups;
  std::vector<Tensor> parts;
  for (std::int64_t gi = 0; gi < groups; ++gi) {
    ConvStage dense;
    dense.algo = nn::ConvAlgo::kIm2row;
    dense.in_channels = cg;
    dense.out_channels = kg;
    dense.kernel = k;
    dense.pad = 1;
    dense.input_scale = in_s;
    dense.output_scale = out_s;
    QTensor wq;
    wq.shape = Shape{kg, cg, k, k};
    wq.scale = w_q.scale;  // one shared weight scale, exactly as the grouped cache
    const std::size_t chunk = static_cast<std::size_t>(kg * cg * k * k);
    wq.data.assign(w_q.data.begin() + static_cast<std::ptrdiff_t>(gi) * chunk,
                   w_q.data.begin() + static_cast<std::ptrdiff_t>(gi + 1) * chunk);
    dense.weights_q = std::move(wq);
    Int8Pipeline dp;
    dp.push(std::move(dense), zio("", "", "", "dense"));
    parts.push_back(dp.run(slice_channels(x, gi * cg, cg)));
  }

  ASSERT_EQ(got.shape(), (Shape{2, out_ch, 10, 10}));
  for (std::int64_t gi = 0; gi < groups; ++gi) {
    const Tensor want = slice_channels(got, gi * kg, kg);
    EXPECT_EQ(Tensor::max_abs_diff(want, parts[static_cast<std::size_t>(gi)]), 0.F)
        << "group " << gi << " diverged from its dense twin";
  }
}

TEST(ZooDeploy, GroupedWinogradConvMatchesPerGroupDenseConvs) {
  // Same twin-check through the Winograd executor: every internal scale is
  // pinned so the grouped cache and the per-group dense caches quantize U at
  // identical scales — the group loop must then be bit-exact.
  Rng rng(58);
  const std::int64_t groups = 2, in_ch = 6, out_ch = 4, k = 3;
  const float in_s = 0.06F, out_s = 0.09F;
  const float u_s = 0.02F, v_s = 0.05F, m_s = 0.1F;
  const Tensor w_f = Tensor::randn({out_ch, in_ch / groups, k, k}, rng, 0.3F);

  const auto wino_stage = [&](std::int64_t g_count, std::int64_t ic, std::int64_t oc,
                              Tensor weights) {
    ConvStage st;
    st.algo = nn::ConvAlgo::kWinograd2;
    st.in_channels = ic;
    st.out_channels = oc;
    st.kernel = k;
    st.pad = 1;
    st.groups = g_count;
    st.input_scale = in_s;
    st.output_scale = out_s;
    st.weights_f = std::move(weights);
    st.transforms = wino::make_transforms(2, 3);
    st.stage_scales.weights_transformed = u_s;
    st.stage_scales.input_transformed = v_s;
    st.stage_scales.hadamard = m_s;
    st.stage_scales.output = out_s;
    return st;
  };

  Int8Pipeline gp;
  gp.push(wino_stage(groups, in_ch, out_ch, w_f), zio("", "", "", "grouped"));
  const Tensor x = Tensor::randn({2, in_ch, 12, 12}, rng, 1.1F);
  const Tensor got = gp.run(x);

  const std::int64_t kg = out_ch / groups, cg = in_ch / groups;
  for (std::int64_t gi = 0; gi < groups; ++gi) {
    Tensor wg(Shape{kg, cg, k, k});
    for (std::int64_t i = 0; i < wg.numel(); ++i) {
      wg.at(i) = w_f.at(gi * wg.numel() + i);
    }
    Int8Pipeline dp;
    dp.push(wino_stage(1, cg, kg, std::move(wg)), zio("", "", "", "dense"));
    const Tensor part = dp.run(slice_channels(x, gi * cg, cg));
    const Tensor want = slice_channels(got, gi * kg, kg);
    EXPECT_EQ(Tensor::max_abs_diff(want, part), 0.F)
        << "group " << gi << " diverged from its dense twin";
  }
}

TEST(ZooDeploy, StridedWinogradStageMatchesHandWiredKernel) {
  // A stride-2 Winograd conv stage must run the polyphase kernel the stage
  // prepared — identical bytes to calling strided_winograd_conv_s8_prepared
  // on the same quantized input with the same cache. The channel counts here
  // sit below the cost model's crossover, so the polyphase path is forced —
  // the subject is the kernel agreement, not the prepare-time selection.
  const backend::StridedPolicy prev_policy = backend::strided_polyphase_policy();
  backend::set_strided_polyphase_policy(backend::StridedPolicy::kForcePolyphase);
  struct Restore {
    backend::StridedPolicy p;
    ~Restore() { backend::set_strided_polyphase_policy(p); }
  } restore{prev_policy};
  Rng rng(59);
  const std::int64_t in_ch = 3, out_ch = 5;
  const float in_s = 0.05F, out_s = 0.08F;
  ConvStage st;
  st.algo = nn::ConvAlgo::kWinograd2;
  st.in_channels = in_ch;
  st.out_channels = out_ch;
  st.kernel = 3;
  st.pad = 1;
  st.stride = 2;
  st.input_scale = in_s;
  st.output_scale = out_s;
  st.weights_f = Tensor::randn({out_ch, in_ch, 3, 3}, rng, 0.3F);
  st.transforms = wino::make_transforms(2, 3);
  st.stage_scales.weights_transformed = 0.02F;
  st.stage_scales.output = out_s;
  st.bias = Tensor::randn({out_ch}, rng, 0.1F);
  const Tensor w_f = st.weights_f;
  const Tensor bias = st.bias;
  const auto scales = st.stage_scales;
  // prepare() swaps the stage's F(2,3) set for the canonical F(2,2) one the
  // polyphase kernel requires; the hand-wired call must do the same.
  const auto tr = wino::make_transforms(2, 2);

  Int8Pipeline pipe;
  pipe.push(std::move(st), zio("", "", "", "strided"));
  // The stage must have lowered to the polyphase cache, not im2row fallback.
  const auto* pushed = std::get_if<ConvStage>(&pipe.nodes().front().op);
  ASSERT_NE(pushed, nullptr);
  ASSERT_FALSE(pushed->strided_cache.empty()) << "stride-2 Winograd fell back to im2row";
  ASSERT_TRUE(pushed->im2row_cache.empty());

  const Tensor x = Tensor::randn({2, in_ch, 11, 11}, rng, 1.3F);
  const Tensor got = pipe.run(x);

  const auto cache =
      backend::prepare_strided_winograd_weights_s8(w_f, tr, scales.weights_transformed);
  backend::ConvGeometry g;
  g.batch = 2;
  g.in_channels = in_ch;
  g.height = 11;
  g.width = 11;
  g.out_channels = out_ch;
  g.kernel = 3;
  g.pad = 1;
  g.stride = 2;
  const QTensor qx = backend::quantize_s8(x, in_s);
  const QTensor want_q = backend::strided_winograd_conv_s8_prepared(qx, cache, g, tr, scales, &bias);
  ASSERT_EQ(got.shape(), want_q.shape);
  for (std::int64_t i = 0; i < got.numel(); ++i) {
    ASSERT_EQ(got.at(i),
              static_cast<float>(want_q.data[static_cast<std::size_t>(i)]) * want_q.scale)
        << "element " << i;
  }
}

// ---- counter-flatness: the compiled-once contract over the zoo --------------

TEST(ZooDeploy, PreparedZooStagesKeepCountersFlatAcrossForwards) {
  // Grouped, strided and concat stages pay their weight transforms/repacks
  // exactly once, at push(); forwards after that must never recompute.
  Rng rng(60);
  Int8Pipeline pipe;
  {
    ConvStage stem;
    stem.algo = nn::ConvAlgo::kWinograd2;
    stem.in_channels = 3;
    stem.out_channels = 4;
    stem.kernel = 3;
    stem.pad = 1;
    stem.stride = 2;  // strided polyphase cache
    stem.input_scale = 0.05F;
    stem.output_scale = 0.1F;
    stem.weights_f = Tensor::randn({4, 3, 3, 3}, rng, 0.3F);
    stem.transforms = wino::make_transforms(2, 3);
    stem.stage_scales.weights_transformed = 0.02F;
    stem.stage_scales.output = 0.1F;
    pipe.push(std::move(stem), zio("", "", "s", "stem"));
  }
  {
    ConvStage grouped = dense_conv(rng, 4, 6, 3, 1, 0.1F, 0.12F);
    grouped.groups = 2;
    grouped.weights_q = backend::quantize_s8(Tensor::randn({6, 2, 3, 3}, rng, 0.3F));
    pipe.push(std::move(grouped), zio("s", "", "e1", "grouped"));
  }
  pipe.push(dense_conv(rng, 4, 5, 3, 1, 0.1F, 0.12F), zio("s", "", "", "e3"));
  {
    ConcatStage cat;
    cat.lhs_scale = 0.12F;  // lhs = the chained e3 output
    cat.rhs_scale = 0.12F;  // rhs = the published grouped-conv slot
    cat.output_scale = 0.11F;
    pipe.push(std::move(cat), zio("", "e1", "", "cat"));
  }

  const Tensor x = Tensor::randn({2, 3, 12, 12}, rng, 1.2F);
  pipe.run(x);  // warm any lazy path once
  const PerfSnapshot before = snapshot_counters();
  for (int i = 0; i < 3; ++i) pipe.run(x);
  EXPECT_EQ(snapshot_counters(), before)
      << "a prepared zoo pipeline recomputed weight caches at run time";
}

TEST(ZooDeploy, CompiledZooModelsRoundTripThroughWamAndStayCached) {
  // The end-to-end serve contract for both new models: compile -> save ->
  // load -> forward is bit-exact vs the compiled pipeline, and the load pays
  // zero weight transforms/repacks (the v5 artifact carries every cache,
  // grouped and concat stages included).
  Rng rng(61);
  const Tensor x = Tensor::randn({2, 3, 32, 32}, rng, 1.0F);

  const auto round_trip = [&x](Int8Pipeline pipe, const char* what) {
    pipe.freeze_scales(x);
    std::ostringstream os(std::ios::binary);
    serve::save_pipeline(os, pipe);
    const PerfSnapshot before = snapshot_counters();
    std::istringstream is(os.str(), std::ios::binary);
    const Int8Pipeline loaded = serve::load_pipeline(is);
    EXPECT_EQ(snapshot_counters(), before) << what << ": load must not rebuild caches";
    const Tensor want = pipe.run(x);
    const Tensor got = loaded.run(x);
    ASSERT_EQ(got.shape(), want.shape()) << what;
    EXPECT_EQ(Tensor::max_abs_diff(got, want), 0.F) << what << ": loaded pipeline diverged";
    EXPECT_EQ(snapshot_counters(), before) << what << ": forwards left the cached path";
  };

  {
    models::SqueezeNetConfig cfg;
    cfg.width_mult = 0.25F;
    cfg.algo = nn::ConvAlgo::kWinograd2;
    cfg.qspec = quant::QuantSpec{8};
    models::SqueezeNet net(cfg, rng);
    net.set_training(true);
    for (int i = 0; i < 2; ++i) {
      net.forward(ag::Variable(Tensor::randn({4, 3, 32, 32}, rng), false));
    }
    round_trip(compile_squeezenet(net), "squeezenet");
  }
  {
    models::ResNeXtConfig cfg;
    cfg.width_mult = 0.25F;
    cfg.algo = nn::ConvAlgo::kWinograd2;
    cfg.qspec = quant::QuantSpec{8};
    models::ResNeXt20 net(cfg, rng);
    net.set_training(true);
    for (int i = 0; i < 2; ++i) {
      net.forward(ag::Variable(Tensor::randn({4, 3, 32, 32}, rng), false));
    }
    round_trip(compile_resnext(net), "resnext");
  }
}

}  // namespace
}  // namespace wa::deploy
