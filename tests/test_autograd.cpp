// Unit and property tests for the reverse-mode autograd engine.
#include <gtest/gtest.h>

#include "autograd/gradcheck.hpp"
#include "autograd/ops.hpp"

namespace wa::ag {
namespace {

Variable leaf(Tensor t, const std::string& name = "leaf") {
  return Variable(std::move(t), /*requires_grad=*/true, name);
}

TEST(Variable, LeafHasNoBackwardFn) {
  Variable v = leaf(Tensor::ones({2, 2}));
  EXPECT_TRUE(v.requires_grad());
  EXPECT_EQ(v.node()->parents.size(), 0u);
}

TEST(Variable, BackwardSeedsOnes) {
  Variable v = leaf(Tensor::ones({3}));
  Variable s = sum(v);
  s.backward();
  EXPECT_TRUE(Tensor::allclose(v.grad(), Tensor::ones({3}), 0.F));
}

TEST(Variable, GradAccumulatesAcrossUses) {
  Variable v = leaf(Tensor::ones({2}));
  Variable s = sum(add(v, v));  // d/dv = 2
  s.backward();
  EXPECT_TRUE(Tensor::allclose(v.grad(), Tensor::full({2}, 2.F), 0.F));
}

TEST(Variable, ZeroGradClears) {
  Variable v = leaf(Tensor::ones({2}));
  sum(v).backward();
  v.zero_grad();
  EXPECT_FLOAT_EQ(v.grad().sum(), 0.F);
}

TEST(Variable, NoGradLeafGetsNoGradient) {
  Variable a(Tensor::ones({2}), /*requires_grad=*/false);
  Variable b = leaf(Tensor::ones({2}));
  Variable s = sum(add(a, b));
  s.backward();
  EXPECT_FLOAT_EQ(a.grad().sum(), 0.F);
  EXPECT_FLOAT_EQ(b.grad().sum(), 2.F);
}

TEST(Variable, DiamondGraphTopoOrder) {
  // f = sum((a+a) * a) = sum(2a²): gradient 4a elementwise.
  Variable a = leaf(Tensor::full({3}, 2.F));
  Variable s = sum(mul(add(a, a), a));
  s.backward();
  EXPECT_TRUE(Tensor::allclose(a.grad(), Tensor::full({3}, 8.F), 1e-5F));
}

TEST(Ops, AddShapeMismatchThrows) {
  EXPECT_THROW(add(leaf(Tensor::ones({2})), leaf(Tensor::ones({3}))), std::invalid_argument);
}

TEST(Ops, ReluForward) {
  Variable x = leaf(Tensor(Shape{4}, {-1.F, 0.F, 2.F, -3.F}));
  Variable y = relu(x);
  EXPECT_FLOAT_EQ(y.value().at(0), 0.F);
  EXPECT_FLOAT_EQ(y.value().at(2), 2.F);
}

TEST(Ops, SoftmaxCrossEntropyUniformLogits) {
  Variable logits = leaf(Tensor::zeros({2, 4}));
  Variable loss = softmax_cross_entropy(logits, {0, 3});
  EXPECT_NEAR(loss.value().at(0), std::log(4.F), 1e-5F);
}

TEST(Ops, SoftmaxCrossEntropyLabelOutOfRangeThrows) {
  Variable logits = leaf(Tensor::zeros({1, 3}));
  EXPECT_THROW(softmax_cross_entropy(logits, {5}), std::out_of_range);
}

TEST(Ops, AccuracyCountsArgmaxHits) {
  Tensor logits = Tensor::from_rows({{1.F, 2.F}, {3.F, 0.F}, {0.F, 1.F}});
  EXPECT_FLOAT_EQ(accuracy(logits, {1, 0, 0}), 2.F / 3.F);
}

// ---- grad-check property suite -------------------------------------------

struct OpCase {
  std::string name;
  std::function<Variable(std::vector<Variable>&)> fn;
  std::vector<Shape> input_shapes;
};

class GradCheckSuite : public ::testing::TestWithParam<int> {};

std::vector<OpCase> op_cases() {
  std::vector<OpCase> cases;
  cases.push_back({"add", [](std::vector<Variable>& in) { return sum(add(in[0], in[1])); },
                   {{3, 4}, {3, 4}}});
  cases.push_back({"sub_mul",
                   [](std::vector<Variable>& in) { return sum(mul(sub(in[0], in[1]), in[1])); },
                   {{2, 5}, {2, 5}}});
  cases.push_back({"scale", [](std::vector<Variable>& in) { return sum(scale(in[0], 2.5F)); },
                   {{4}}});
  cases.push_back({"matmul", [](std::vector<Variable>& in) { return sum(matmul(in[0], in[1])); },
                   {{3, 4}, {4, 2}}});
  cases.push_back({"linear",
                   [](std::vector<Variable>& in) { return sum(linear(in[0], in[1], in[2])); },
                   {{2, 3}, {4, 3}, {4}}});
  cases.push_back({"relu_mean", [](std::vector<Variable>& in) { return mean(relu(in[0])); },
                   {{3, 3}}});
  cases.push_back({"reshape",
                   [](std::vector<Variable>& in) { return sum(reshape(in[0], {6})); },
                   {{2, 3}}});
  cases.push_back({"concat",
                   [](std::vector<Variable>& in) {
                     return sum(concat({in[0], in[1]}, 1));
                   },
                   {{2, 2}, {2, 3}}});
  cases.push_back({"softmax_ce",
                   [](std::vector<Variable>& in) {
                     return softmax_cross_entropy(in[0], {1, 0, 2});
                   },
                   {{3, 4}}});
  cases.push_back({"composite",
                   [](std::vector<Variable>& in) {
                     Variable h = relu(matmul(in[0], in[1]));
                     return mean(mul(h, h));
                   },
                   {{3, 3}, {3, 3}}});
  return cases;
}

TEST_P(GradCheckSuite, AnalyticMatchesNumeric) {
  const OpCase c = op_cases()[static_cast<std::size_t>(GetParam())];
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 11);
  std::vector<Variable> inputs;
  inputs.reserve(c.input_shapes.size());
  for (const auto& s : c.input_shapes) {
    inputs.push_back(leaf(Tensor::randn(s, rng), c.name));
  }
  const auto res = grad_check(c.fn, inputs);
  EXPECT_TRUE(res.ok) << c.name << ": " << res.detail;
}

INSTANTIATE_TEST_SUITE_P(AllOps, GradCheckSuite,
                         ::testing::Range(0, static_cast<int>(op_cases().size())),
                         [](const auto& info) { return op_cases()[static_cast<std::size_t>(info.param)].name; });

TEST(ReverseTopo, VisitsEachNodeOnce) {
  Variable a = leaf(Tensor::ones({2}));
  Variable b = add(a, a);
  Variable c = add(b, b);
  auto order = reverse_topo_order(c);
  EXPECT_EQ(order.size(), 3u);  // c, b, a
}

}  // namespace
}  // namespace wa::ag
