// Tests for the graph-based int8 deployment pipeline: level-aligned skip-add
// edges, integer batch-norm, slot wiring/validation, and the ResNet-18
// QAT-to-integer-inference contract (the paper's Tables 2-3 workload).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "backend/perf_counters.hpp"
#include "data/synthetic.hpp"
#include "deploy/pipeline.hpp"
#include "train/trainer.hpp"

namespace wa::deploy {
namespace {

using backend::PerfCounters;
using backend::QTensor;

QTensor levels(Shape shape, std::vector<std::int8_t> data, float scale) {
  QTensor q;
  q.shape = std::move(shape);
  q.data = std::move(data);
  q.scale = scale;
  return q;
}

// ---- add_s8: saturation and scale-ratio edges -------------------------------

TEST(AddS8, RequantizesBothBranchesOntoOutputScale) {
  // lhs: 10 levels at 0.1 = 1.0; rhs: 40 levels at 0.05 = 2.0; out at 0.1.
  const QTensor lhs = levels(Shape{4}, {10, -10, 0, 100}, 0.1F);
  const QTensor rhs = levels(Shape{4}, {40, 20, -40, 4}, 0.05F);
  const QTensor y = add_s8(lhs, rhs, make_requant_ratio(0.1F, 0.1F),
                           make_requant_ratio(0.05F, 0.1F), 0.1F, /*relu=*/false);
  EXPECT_FLOAT_EQ(y.scale, 0.1F);
  EXPECT_EQ(y.data, (std::vector<std::int8_t>{30, 0, -20, 102}));
}

TEST(AddS8, SaturatesInsteadOfWrapping) {
  const QTensor lhs = levels(Shape{2}, {127, -127}, 1.F);
  const QTensor rhs = levels(Shape{2}, {127, -127}, 1.F);
  const QTensor y = add_s8(lhs, rhs, make_requant_ratio(1.F, 1.F), make_requant_ratio(1.F, 1.F),
                           1.F, /*relu=*/false);
  EXPECT_EQ(y.data[0], 127) << "254 must clamp, not wrap";
  EXPECT_EQ(y.data[1], -127);
}

TEST(AddS8, ExtremeScaleRatiosStayDefined) {
  // A branch 12 orders of magnitude hotter than the join scale must saturate
  // cleanly; one 12 orders colder must vanish — both through the (now
  // 64-bit-safe) fixed-point path.
  const QTensor big = levels(Shape{2}, {100, -100}, 1e6F);
  const QTensor tiny = levels(Shape{2}, {100, -100}, 1e-12F);
  const QTensor y = add_s8(big, tiny, make_requant_ratio(1e6F, 1e-6F),
                           make_requant_ratio(1e-12F, 1e-6F), 1e-6F, /*relu=*/false);
  EXPECT_EQ(y.data[0], 127);
  EXPECT_EQ(y.data[1], -127);
  const QTensor z = add_s8(tiny, tiny, make_requant_ratio(1e-12F, 1e-6F),
                           make_requant_ratio(1e-12F, 1e-6F), 1e-6F, /*relu=*/false);
  EXPECT_EQ(z.data[0], 0);
  EXPECT_EQ(z.data[1], 0);
}

TEST(AddS8, FusedReluClampsNegativeSums) {
  const QTensor lhs = levels(Shape{3}, {10, -50, 5}, 0.1F);
  const QTensor rhs = levels(Shape{3}, {-30, 10, 5}, 0.1F);
  const QTensor y = add_s8(lhs, rhs, make_requant_ratio(0.1F, 0.1F),
                           make_requant_ratio(0.1F, 0.1F), 0.1F, /*relu=*/true);
  EXPECT_EQ(y.data, (std::vector<std::int8_t>{0, 0, 10}));
}

TEST(AddS8, MismatchedShapesThrow) {
  const QTensor a = levels(Shape{2}, {1, 2}, 1.F);
  const QTensor b = levels(Shape{3}, {1, 2, 3}, 1.F);
  EXPECT_THROW(add_s8(a, b, make_requant_ratio(1.F, 1.F), make_requant_ratio(1.F, 1.F), 1.F, false),
               std::invalid_argument);
}

// ---- channel_affine_s8: deployed batch-norm ---------------------------------

TEST(ChannelAffineS8, MatchesFloatBatchNormWithinOneLevel) {
  Rng rng(11);
  const std::int64_t n = 2, c = 5, hw = 9;
  const float s_in = 0.07F, s_out = 0.11F;
  const Tensor a = Tensor::randn({c}, rng, 1.5F);  // gamma/sigma, both signs
  const Tensor b = Tensor::randn({c}, rng, 2.0F);
  QTensor x;
  x.shape = Shape{n, c, 3, 3};
  x.scale = s_in;
  for (std::int64_t i = 0; i < n * c * hw; ++i) {
    x.data.push_back(static_cast<std::int8_t>((i * 37 + 11) % 255 - 127));
  }
  const auto p = prepare_channel_affine_s8(a, b, s_in, s_out);
  const QTensor y = channel_affine_s8(x, p, /*relu=*/false);
  EXPECT_FLOAT_EQ(y.scale, s_out);
  for (std::int64_t ni = 0; ni < n; ++ni) {
    for (std::int64_t ci = 0; ci < c; ++ci) {
      for (std::int64_t i = 0; i < hw; ++i) {
        const std::size_t idx = static_cast<std::size_t>((ni * c + ci) * hw + i);
        const float real = a.at(ci) * s_in * static_cast<float>(x.data[idx]) + b.at(ci);
        const float want = std::min(127.F, std::max(-127.F, real / s_out));
        EXPECT_NEAR(static_cast<float>(y.data[idx]), want, 1.01F)
            << "channel " << ci << " (A=" << a.at(ci) << ")";
      }
    }
  }
}

TEST(ChannelAffineS8, CollapsedChannelIsBiasOnly) {
  const Tensor a = Tensor(Shape{1}, {0.F});
  const Tensor b = Tensor(Shape{1}, {0.5F});
  QTensor x = levels(Shape{1, 1, 1, 2}, {100, -100}, 1.F);
  const QTensor y = channel_affine_s8(x, prepare_channel_affine_s8(a, b, 1.F, 0.1F), false);
  EXPECT_EQ(y.data, (std::vector<std::int8_t>{5, 5}));
}

// ---- graph wiring and stage-input validation --------------------------------

ConvStage im2row_stage(Rng& rng, std::int64_t in_ch, std::int64_t out_ch, float in_scale,
                       float out_scale, bool relu, std::int64_t kernel = 3, std::int64_t pad = 1) {
  ConvStage st;
  st.algo = nn::ConvAlgo::kIm2row;
  st.in_channels = in_ch;
  st.out_channels = out_ch;
  st.kernel = kernel;
  st.pad = pad;
  st.input_scale = in_scale;
  st.output_scale = out_scale;
  st.relu_after = relu;
  st.weights_q = backend::quantize_s8(Tensor::randn({out_ch, in_ch, kernel, kernel}, rng, 0.3F));
  return st;
}

StageIO io(std::string input, std::string input2, std::string output, std::string label) {
  StageIO o;
  o.input = std::move(input);
  o.input2 = std::move(input2);
  o.output = std::move(output);
  o.label = std::move(label);
  return o;
}

TEST(PipelineGraph, ProjectionShortcutExecutesAndMatchesManualOps) {
  Rng rng(12);
  ConvStage stem = im2row_stage(rng, 3, 4, 0.05F, 0.1F, true);
  ConvStage main = im2row_stage(rng, 4, 6, 0.1F, 0.09F, false);
  ConvStage proj = im2row_stage(rng, 4, 6, 0.1F, 0.12F, false, /*kernel=*/1, /*pad=*/0);

  // Manual reference with the raw ops, mirroring the graph below bit-exactly.
  const Tensor x = Tensor::randn({2, 3, 8, 8}, rng);
  const auto conv = [](const ConvStage& st, const QTensor& in) {
    backend::ConvGeometry g;
    g.batch = in.shape[0];
    g.in_channels = st.in_channels;
    g.height = in.shape[2];
    g.width = in.shape[3];
    g.out_channels = st.out_channels;
    g.kernel = st.kernel;
    g.pad = st.pad;
    QTensor y = backend::im2row_conv_s8_prepared(in, backend::prepare_im2row_weights_s8(st.weights_q),
                                                 g, st.output_scale, nullptr);
    return st.relu_after ? relu_s8(std::move(y)) : y;
  };
  const QTensor q0 = backend::quantize_s8(x, stem.input_scale);
  const QTensor stem_out = conv(stem, q0);
  const QTensor main_out = conv(main, stem_out);
  const QTensor skip_out = conv(proj, stem_out);
  const QTensor joined = add_s8(main_out, skip_out, make_requant_ratio(0.09F, 0.08F),
                                make_requant_ratio(0.12F, 0.08F), 0.08F, /*relu=*/true);
  const Tensor want = backend::dequantize(joined);

  Int8Pipeline pipe;
  pipe.push(std::move(stem), io("", "", "x", "stem"));
  pipe.push(std::move(proj), io("x", "", "skip", "proj"));
  pipe.push(std::move(main), io("x", "", "", "main"));
  AddStage add;
  add.lhs_scale = 0.09F;
  add.rhs_scale = 0.12F;
  add.output_scale = 0.08F;
  add.relu_after = true;
  pipe.push(std::move(add), io("", "skip", "", "join"));

  std::vector<StageTiming> timings;
  const Tensor got = pipe.run(x, &timings);
  ASSERT_EQ(got.shape(), want.shape());
  EXPECT_EQ(Tensor::max_abs_diff(got, want), 0.F)
      << "graph execution must match the hand-wired ops bit-exactly";
  ASSERT_EQ(timings.size(), 4u);
  EXPECT_EQ(timings[1].label, "proj");
}

TEST(PipelineGraph, PushRejectsBadWiring) {
  Rng rng(13);
  {
    Int8Pipeline pipe;  // reading a slot nobody published
    EXPECT_THROW(pipe.push(im2row_stage(rng, 3, 4, 0.1F, 0.1F, false), io("nope", "", "", "")),
                 std::invalid_argument);
  }
  {
    Int8Pipeline pipe;  // publishing the same slot twice
    pipe.push(im2row_stage(rng, 3, 4, 0.1F, 0.1F, false), io("", "", "x", ""));
    EXPECT_THROW(pipe.push(im2row_stage(rng, 4, 4, 0.1F, 0.1F, false), io("x", "", "x", "")),
                 std::invalid_argument);
  }
  {
    Int8Pipeline pipe;  // AddStage without a second operand
    AddStage add;
    add.lhs_scale = add.rhs_scale = add.output_scale = 0.1F;
    EXPECT_THROW(pipe.push(std::move(add)), std::invalid_argument);
  }
  {
    Int8Pipeline pipe;  // input2 on a non-add stage
    pipe.push(im2row_stage(rng, 3, 4, 0.1F, 0.1F, false), io("", "", "x", ""));
    EXPECT_THROW(pipe.push(PoolStage{2, 2}, io("x", "x", "", "")), std::invalid_argument);
  }
  {
    Int8Pipeline pipe;  // implicit input after the producer published to a slot
    pipe.push(im2row_stage(rng, 3, 4, 0.1F, 0.1F, false), io("", "", "x", ""));
    EXPECT_THROW(pipe.push(PoolStage{2, 2}), std::invalid_argument);
  }
  {
    // Reading a named slot while the previous stage chains implicitly would
    // silently drop the previous stage's output.
    Int8Pipeline pipe;
    pipe.push(im2row_stage(rng, 3, 4, 0.1F, 0.1F, false), io("", "", "x", ""));
    pipe.push(im2row_stage(rng, 4, 4, 0.1F, 0.1F, false), io("x", "", "", ""));  // chains
    EXPECT_THROW(pipe.push(PoolStage{2, 2}, io("x", "", "", "")), std::invalid_argument);
  }
}

TEST(PipelineGraph, RunRejectsDeadPublishedSlots) {
  // A mid-pipeline stage publishing a slot nobody reads is dead dataflow.
  Rng rng(19);
  Int8Pipeline pipe;
  pipe.push(im2row_stage(rng, 3, 4, 0.1F, 0.1F, false), io("", "", "x", ""));
  pipe.push(im2row_stage(rng, 4, 4, 0.1F, 0.1F, false), io("x", "", "unread", ""));
  pipe.push(im2row_stage(rng, 4, 4, 0.1F, 0.1F, false), io("x", "", "", ""));
  EXPECT_THROW(pipe.run(Tensor::randn({1, 3, 8, 8}, rng)), std::invalid_argument);
}

TEST(PipelineGraph, RunValidatesStageInputsWithClearErrors) {
  Rng rng(14);
  const Tensor x = Tensor::randn({1, 3, 8, 8}, rng);
  {
    // Channel mismatch: second conv expects 8 channels, gets 4.
    Int8Pipeline pipe;
    pipe.push(im2row_stage(rng, 3, 4, 0.1F, 0.1F, false));
    pipe.push(im2row_stage(rng, 8, 8, 0.1F, 0.1F, false));
    try {
      pipe.run(x);
      FAIL() << "expected invalid_argument";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("channels"), std::string::npos) << e.what();
    }
  }
  {
    // Convolution fed a flattened activation must throw, not read OOB dims.
    Int8Pipeline pipe;
    pipe.push(im2row_stage(rng, 3, 4, 0.1F, 0.1F, false));
    pipe.push(FlattenStage{});
    pipe.push(im2row_stage(rng, 4, 4, 0.1F, 0.1F, false));
    EXPECT_THROW(pipe.run(x), std::invalid_argument);
  }
  {
    // Linear feature mismatch reports the stage, not a bare GEMM error.
    Int8Pipeline pipe;
    pipe.push(im2row_stage(rng, 3, 4, 0.1F, 0.1F, false));
    pipe.push(FlattenStage{});
    LinearStage fc;
    fc.input_scale = 0.1F;
    fc.weights_q = backend::quantize_s8(Tensor::randn({10, 99}, rng));
    pipe.push(std::move(fc), io("", "", "", "fc"));
    try {
      pipe.run(x);
      FAIL() << "expected invalid_argument";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("fc"), std::string::npos) << e.what();
      EXPECT_NE(std::string(e.what()).find("features"), std::string::npos) << e.what();
    }
  }
  {
    // Skip-add with mismatched branch shapes.
    Int8Pipeline pipe;
    pipe.push(im2row_stage(rng, 3, 4, 0.1F, 0.1F, false), io("", "", "x", ""));
    pipe.push(im2row_stage(rng, 4, 6, 0.1F, 0.1F, false), io("x", "", "", ""));
    AddStage add;
    add.lhs_scale = add.rhs_scale = add.output_scale = 0.1F;
    pipe.push(std::move(add), io("", "x", "", "join"));
    EXPECT_THROW(pipe.run(x), std::invalid_argument);
  }
}

// ---- compile_resnet18: the QAT -> integer-inference contract ----------------

data::Dataset resnet_set(bool train) {
  auto spec = data::cifar10_like();
  spec.train_size = 192;
  spec.test_size = 96;
  spec.noise = 0.1F;
  spec.jitter = 1.F;
  return data::generate(spec, train);
}

struct AgreementReport {
  float agreement = 0.F;
  float deployed_acc = 0.F;
  float qat_acc = 0.F;
  std::int64_t samples = 0;
};

AgreementReport compare_deployed(models::ResNet18& net, const Int8Pipeline& pipe,
                                 const data::Dataset& ds) {
  net.set_training(false);
  data::DataLoader loader(ds, 16, false);
  std::int64_t agree = 0, correct = 0, qat_correct = 0, total = 0;
  for (std::int64_t bi = 0; bi < loader.batches(); ++bi) {
    const auto batch = loader.get(bi);
    const auto deployed = pipe.classify(batch.images);
    const Tensor logits = net.forward(ag::Variable(batch.images, false)).value();
    const std::int64_t classes = logits.numel() / logits.size(0);
    for (std::size_t i = 0; i < deployed.size(); ++i) {
      std::int64_t qat_pred = 0;
      for (std::int64_t c = 1; c < classes; ++c) {
        if (logits.at(static_cast<std::int64_t>(i) * classes + c) >
            logits.at(static_cast<std::int64_t>(i) * classes + qat_pred))
          qat_pred = c;
      }
      agree += deployed[i] == qat_pred;
      correct += deployed[i] == batch.labels[i];
      qat_correct += qat_pred == batch.labels[i];
      ++total;
    }
  }
  AgreementReport r;
  r.samples = total;
  r.agreement = static_cast<float>(agree) / static_cast<float>(total);
  r.deployed_acc = static_cast<float>(correct) / static_cast<float>(total);
  r.qat_acc = static_cast<float>(qat_correct) / static_cast<float>(total);
  return r;
}

TEST(ResNetDeploy, CompileRejectsUncalibratedModel) {
  Rng rng(15);
  models::ResNetConfig cfg;
  cfg.width_mult = 0.125F;
  cfg.qspec = quant::QuantSpec{8};
  models::ResNet18 net(cfg, rng);  // never saw a batch: observers cold
  EXPECT_THROW(compile_resnet18(net), std::invalid_argument);
}

TEST(ResNetDeploy, Im2rowPipelineAgreesWithQatModel) {
  // The headline contract: a QAT-trained ResNet-18 (the paper's
  // pool-instead-of-stride variant) compiles to a pure-int8 graph pipeline
  // and classifies like the QAT eval forward.
  Rng rng(16);
  models::ResNetConfig cfg;
  cfg.width_mult = 0.125F;
  cfg.qspec = quant::QuantSpec{8};
  models::ResNet18 net(cfg, rng);
  const auto train_set = resnet_set(true);
  const auto val_set = resnet_set(false);
  train::TrainerOptions opts;
  opts.batch_size = 16;
  opts.epochs = 6;
  opts.lr = 3e-3F;
  train::Trainer t(net, train_set, val_set, opts);
  t.fit();

  const Int8Pipeline pipe = compile_resnet18(net);
  const AgreementReport on_val = compare_deployed(net, pipe, val_set);
  const AgreementReport on_train = compare_deployed(net, pipe, train_set);
  const float agreement =
      (on_val.agreement * static_cast<float>(on_val.samples) +
       on_train.agreement * static_cast<float>(on_train.samples)) /
      static_cast<float>(on_val.samples + on_train.samples);
  std::printf("[          ] im2row agreement %.4f (val %.4f, train %.4f), deployed acc %.3f, "
              "qat acc %.3f\n",
              static_cast<double>(agreement), static_cast<double>(on_val.agreement),
              static_cast<double>(on_train.agreement), static_cast<double>(on_val.deployed_acc),
              static_cast<double>(on_val.qat_acc));
  EXPECT_GE(agreement, 0.99F) << "val agreement " << on_val.agreement << ", train agreement "
                              << on_train.agreement;
  EXPECT_GT(on_val.deployed_acc, on_val.qat_acc - 0.05F) << "deployment lost too much accuracy";
}

TEST(ResNetDeploy, WinogradF2PipelineAgreesWithQatModel) {
  // Same contract through the Winograd path: block convs deploy with frozen
  // per-stage Qx scales and integer batch-norm stages. Winograd tiles carry
  // inherent ±1-level requant rounding (the paper's Table 1 mechanism), so
  // the bar sits below the GEMM path's.
  Rng rng(17);
  models::ResNetConfig cfg;
  cfg.width_mult = 0.125F;
  cfg.algo = nn::ConvAlgo::kWinograd2;
  cfg.qspec = quant::QuantSpec{8};
  models::ResNet18 net(cfg, rng);
  const auto train_set = resnet_set(true);
  const auto val_set = resnet_set(false);
  train::TrainerOptions opts;
  opts.batch_size = 16;
  opts.epochs = 3;
  opts.lr = 3e-3F;
  train::Trainer t(net, train_set, val_set, opts);
  t.fit();

  const Int8Pipeline pipe = compile_resnet18(net);
  const AgreementReport r = compare_deployed(net, pipe, val_set);
  std::printf("[          ] F2 agreement %.4f, deployed acc %.3f, qat acc %.3f\n",
              static_cast<double>(r.agreement), static_cast<double>(r.deployed_acc),
              static_cast<double>(r.qat_acc));
  EXPECT_GT(r.agreement, 0.9F) << "deployed disagrees with QAT model";
  EXPECT_GT(r.deployed_acc, r.qat_acc - 0.1F) << "deployment lost too much accuracy";
}

TEST(ResNetDeploy, WinogradF4PerTapPipelineAgreesWithQatModel) {
  // The tentpole contract: F4 deployed with per-tap scale vectors (one scale
  // per transform-domain tap, tap_group_size=1) must agree with its QAT model
  // at least as well as the F2 figure above — per-tensor F4 is what made the
  // larger tiles undeployable, per-tap is what fixes it (LANCE-style
  // requantization in the transform domain).
  Rng rng(17);  // same seed/bar as the F2 test for a like-for-like comparison
  models::ResNetConfig cfg;
  cfg.width_mult = 0.125F;
  cfg.algo = nn::ConvAlgo::kWinograd4;
  cfg.qspec = quant::QuantSpec{8};
  cfg.tap_group_size = 1;
  models::ResNet18 net(cfg, rng);
  const auto train_set = resnet_set(true);
  const auto val_set = resnet_set(false);
  train::TrainerOptions opts;
  opts.batch_size = 16;
  opts.epochs = 3;
  opts.lr = 3e-3F;
  train::Trainer t(net, train_set, val_set, opts);
  t.fit();

  const Int8Pipeline pipe = compile_resnet18(net);

  // The compiled graph must actually carry per-tap vectors on its F4 stages
  // (36 = 6x6 taps); the last residual stage stays pinned to F2 (16 taps).
  std::int64_t per_tap_stages = 0;
  for (const auto& node : pipe.nodes()) {
    const auto* conv = std::get_if<ConvStage>(&node.op);
    if (conv == nullptr || !nn::is_winograd(conv->algo)) continue;
    const std::int64_t t = nn::winograd_m(conv->algo) + 2;
    ASSERT_EQ(static_cast<std::int64_t>(conv->stage_scales.input_transformed_taps.size()), t * t)
        << node.io.label;
    ASSERT_EQ(static_cast<std::int64_t>(conv->stage_scales.hadamard_taps.size()), t * t)
        << node.io.label;
    ASSERT_EQ(static_cast<std::int64_t>(conv->stage_scales.weights_transformed_taps.size()), t * t)
        << node.io.label;
    ++per_tap_stages;
  }
  EXPECT_EQ(per_tap_stages, 16) << "all searchable block convs deploy per-tap";

  const AgreementReport r = compare_deployed(net, pipe, val_set);
  std::printf("[          ] F4 per-tap agreement %.4f, deployed acc %.3f, qat acc %.3f\n",
              static_cast<double>(r.agreement), static_cast<double>(r.deployed_acc),
              static_cast<double>(r.qat_acc));
  EXPECT_GT(r.agreement, 0.9F) << "per-tap F4 must hold the F2 agreement bar";
  EXPECT_GT(r.deployed_acc, r.qat_acc - 0.1F) << "deployment lost too much accuracy";
}

TEST(ResNetDeploy, CompiledPipelineNeverTransformsOrRepacksAtRunTime) {
  // Calibration (not full training) is enough to compile; the perf counters
  // then prove the prepared pipeline pays zero weight transforms/repacks per
  // forward across every stage type (conv, linear).
  Rng rng(18);
  models::ResNetConfig cfg;
  cfg.width_mult = 0.125F;
  cfg.algo = nn::ConvAlgo::kWinograd2;  // mixed: wino blocks + folded GEMM stem/shortcuts
  cfg.qspec = quant::QuantSpec{8};
  models::ResNet18 net(cfg, rng);
  net.set_training(true);
  for (int i = 0; i < 2; ++i) {
    net.forward(ag::Variable(Tensor::randn({4, 3, 32, 32}, rng), false));
  }
  const Int8Pipeline pipe = compile_resnet18(net);

  const Tensor x = Tensor::randn({2, 3, 32, 32}, rng);
  pipe.run(x);  // cold run outside the measured window (first-touch arenas)
  const std::uint64_t transforms = PerfCounters::weight_transforms.load();
  const std::uint64_t repacks = PerfCounters::weight_repacks.load();
  pipe.run(x);
  pipe.run(x);
  EXPECT_EQ(PerfCounters::weight_transforms.load(), transforms)
      << "forwards must reuse the cached U = G g Gᵀ";
  EXPECT_EQ(PerfCounters::weight_repacks.load(), repacks)
      << "forwards must reuse the packed GEMM weights";
}

}  // namespace
}  // namespace wa::deploy
