// Tests for symmetric uniform quantization, observers, STE and requantization.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "autograd/gradcheck.hpp"
#include "autograd/ops.hpp"
#include "quant/fake_quant_op.hpp"
#include "quant/observer.hpp"
#include "quant/quant.hpp"
#include "quant/requant.hpp"

namespace wa::quant {
namespace {

TEST(QuantSpec, QmaxPerBits) {
  EXPECT_EQ(QuantSpec{8}.qmax(), 127);
  EXPECT_EQ(QuantSpec{10}.qmax(), 511);
  EXPECT_EQ(QuantSpec{16}.qmax(), 32767);
  EXPECT_TRUE(QuantSpec{32}.is_float());
  EXPECT_FALSE(QuantSpec{8}.is_float());
}

TEST(QuantSpec, ToString) {
  EXPECT_EQ(QuantSpec{8}.to_string(), "int8");
  EXPECT_EQ(QuantSpec{32}.to_string(), "fp32");
}

TEST(ScaleFor, MapsAbsMaxToQmax) {
  const float s = scale_for(12.7F, QuantSpec{8});
  EXPECT_NEAR(12.7F / s, 127.F, 1e-4F);
}

TEST(ScaleFor, DegenerateRangeIsSafe) {
  const float s = scale_for(0.F, QuantSpec{8});
  EXPECT_GT(s, 0.F);
}

TEST(FakeQuant, Fp32IsIdentity) {
  Rng rng(1);
  Tensor x = Tensor::randn({16}, rng);
  Tensor y = fake_quant(x, 1.F, QuantSpec{32});
  EXPECT_TRUE(Tensor::allclose(x, y, 0.F));
}

TEST(FakeQuant, RoundTripOnGrid) {
  // Values already on the grid pass through exactly.
  const float s = 0.5F;
  Tensor x(Shape{4}, {-1.F, -0.5F, 0.F, 1.5F});
  Tensor y = fake_quant(x, s, QuantSpec{8});
  EXPECT_TRUE(Tensor::allclose(x, y, 0.F));
}

TEST(FakeQuant, ClipsAndCounts) {
  const float s = 1.F;  // representable range ±127
  Tensor x(Shape{3}, {500.F, -500.F, 3.F});
  std::vector<std::uint8_t> mask;
  const auto clipped = fake_quant_(x, s, QuantSpec{8}, &mask);
  EXPECT_EQ(clipped, 2);
  EXPECT_FLOAT_EQ(x.at(0), 127.F);
  EXPECT_FLOAT_EQ(x.at(1), -127.F);
  EXPECT_FLOAT_EQ(x.at(2), 3.F);
  EXPECT_EQ(mask[0], 0);
  EXPECT_EQ(mask[1], 0);
  EXPECT_EQ(mask[2], 1);
}

TEST(FakeQuant, ErrorBoundedByHalfScale) {
  Rng rng(2);
  Tensor x = Tensor::randn({256}, rng);
  const float s = scale_for(x.abs_max(), QuantSpec{8});
  Tensor y = fake_quant(x, s, QuantSpec{8});
  EXPECT_LE(Tensor::max_abs_diff(x, y), s / 2.F + 1e-6F);
}

class BitWidthSweep : public ::testing::TestWithParam<int> {};

TEST_P(BitWidthSweep, RmseShrinksWithMoreBits) {
  Rng rng(3);
  Tensor x = Tensor::randn({512}, rng);
  const int bits = GetParam();
  const float coarse = quantization_rmse(x, QuantSpec{bits});
  const float fine = quantization_rmse(x, QuantSpec{bits + 2});
  EXPECT_LT(fine, coarse);
}

INSTANTIATE_TEST_SUITE_P(Bits, BitWidthSweep, ::testing::Values(4, 6, 8, 10, 12));

TEST(QuantizeLevels, RoundTrip) {
  Rng rng(4);
  Tensor x = Tensor::randn({64}, rng);
  const float s = scale_for(x.abs_max(), QuantSpec{8});
  auto q = quantize_levels(x, s, QuantSpec{8});
  Tensor y = dequantize_levels(q, x.shape(), s);
  EXPECT_LE(Tensor::max_abs_diff(x, y), s / 2.F + 1e-6F);
}

TEST(Observer, MinMaxTracksCurrentBatch) {
  RangeObserver obs(RangeObserver::Mode::kMinMax);
  obs.observe(Tensor(Shape{2}, {1.F, -3.F}));
  EXPECT_FLOAT_EQ(obs.tracked_abs_max(), 3.F);
  obs.observe(Tensor(Shape{2}, {0.5F, -0.25F}));
  EXPECT_FLOAT_EQ(obs.tracked_abs_max(), 0.5F);  // follows, does not average
}

TEST(Observer, EmaSmoothsUpdates) {
  RangeObserver obs(RangeObserver::Mode::kEma, 0.9F);
  obs.observe(Tensor(Shape{1}, {10.F}));  // first observation initializes
  obs.observe(Tensor(Shape{1}, {0.F}));
  EXPECT_NEAR(obs.tracked_abs_max(), 9.F, 1e-5F);
}

TEST(Observer, ColdScaleIsFinite) {
  RangeObserver obs;
  EXPECT_GT(obs.scale(QuantSpec{8}), 0.F);
}

TEST(FakeQuantSte, GradientPassesInsideRange) {
  Rng rng(5);
  RangeObserver obs(RangeObserver::Mode::kMinMax);
  auto fn = [&obs](std::vector<ag::Variable>& in) {
    // Observe on the fly; all values stay within range, so STE == identity.
    return ag::sum(fake_quant_ste(in[0], obs, QuantSpec{16}, /*training=*/true));
  };
  std::vector<ag::Variable> inputs{ag::Variable(Tensor::randn({8}, rng), true)};
  const auto res = ag::grad_check(fn, inputs, 1e-2F, 6e-2F);
  EXPECT_TRUE(res.ok) << res.detail;
}

TEST(FakeQuantSte, ClippedElementsGetZeroGrad) {
  RangeObserver obs(RangeObserver::Mode::kMinMax);
  obs.observe(Tensor(Shape{2}, {1.F, 1.F}));  // range = 1 -> anything above clips
  obs.set_mode(RangeObserver::Mode::kEma);    // freeze-ish: next observe barely moves it
  ag::Variable x(Tensor(Shape{2}, {100.F, 0.5F}), true);
  ag::Variable y = fake_quant_ste(x, obs, QuantSpec{8}, /*training=*/false);
  ag::sum(y).backward();
  EXPECT_FLOAT_EQ(x.grad().at(0), 0.F);  // clipped -> no gradient
  EXPECT_FLOAT_EQ(x.grad().at(1), 1.F);
}

TEST(FakeQuantSte, Fp32AddsNoNode) {
  RangeObserver obs;
  ag::Variable x(Tensor::ones({2}), true);
  ag::Variable y = fake_quant_ste(x, obs, QuantSpec{32}, true);
  EXPECT_EQ(y.node().get(), x.node().get());
}

TEST(Requant, MultiplierRoundTrip) {
  for (double mult : {0.0003, 0.02, 0.25, 0.7, 0.99}) {
    const auto fp = quantize_multiplier(mult);
    // Apply to a spread of accumulators and compare to float math.
    for (std::int32_t acc : {-100000, -1234, -1, 0, 1, 999, 123456}) {
      const auto got = apply_multiplier(acc, fp);
      const auto want = static_cast<std::int32_t>(std::llround(acc * mult));
      EXPECT_NEAR(got, want, 1) << "mult=" << mult << " acc=" << acc;
    }
  }
}

TEST(Requant, MultiplierAboveOne) {
  const auto fp = quantize_multiplier(3.5);
  EXPECT_NEAR(apply_multiplier(1000, fp), 3500, 1);
}

TEST(Requant, ExtremeSmallMultiplierRoundsToZeroNotUB) {
  // A scale ratio below 2^-31 (e.g. wide logits requantized onto a very
  // tight consumer scale) produces shift >= 31, where the old int32 mask
  // computation was undefined behavior. The result must round to zero for
  // any int32 accumulator.
  for (const double mult : {1e-10, 1e-12, 1e-300}) {
    const auto fp = quantize_multiplier(mult);
    EXPECT_GE(fp.shift, 31) << "mult=" << mult;
    for (const std::int32_t acc :
         {std::numeric_limits<std::int32_t>::min() + 1, -123456789, -1, 0, 1, 123456789,
          std::numeric_limits<std::int32_t>::max()}) {
      EXPECT_EQ(apply_multiplier(acc, fp), 0) << "mult=" << mult << " acc=" << acc;
    }
  }
}

TEST(Requant, ShiftBoundaryAroundThirtyOneStaysExact) {
  // Multipliers just above/below 2^-31: shift lands on 30/31/32. Compare
  // against float math (±1 for the double rounding).
  for (const int exp : {-30, -31, -32, -35}) {
    const double mult = std::ldexp(0.75, exp);
    const auto fp = quantize_multiplier(mult);
    for (const std::int32_t acc : {1 << 30, -(1 << 30), 2047483647, -2047483647}) {
      const auto want = static_cast<std::int32_t>(std::llround(acc * mult));
      EXPECT_NEAR(apply_multiplier(acc, fp), want, 1) << "exp=" << exp << " acc=" << acc;
    }
  }
}

TEST(Requant, ExtremeLargeMultiplierSaturates) {
  // The mirror edge: a huge ratio left-shifts far past int32 — saturate,
  // do not overflow the int64 intermediate.
  for (const double mult : {1e10, 1e12, 1e300}) {
    const auto fp = quantize_multiplier(mult);
    EXPECT_EQ(apply_multiplier(1, fp), std::numeric_limits<std::int32_t>::max()) << mult;
    EXPECT_EQ(apply_multiplier(-1, fp), std::numeric_limits<std::int32_t>::min()) << mult;
    EXPECT_EQ(apply_multiplier(0, fp), 0) << mult;
  }
}

TEST(Requant, NonPositiveMultiplierThrows) {
  EXPECT_THROW(quantize_multiplier(0.0), std::invalid_argument);
  EXPECT_THROW(quantize_multiplier(-1.0), std::invalid_argument);
}

TEST(Requant, SaturateClampsToBits) {
  EXPECT_EQ(saturate(300, 8), 127);
  EXPECT_EQ(saturate(-300, 8), -127);
  EXPECT_EQ(saturate(100, 8), 100);
  EXPECT_EQ(saturate(40000, 16), 32767);
}

}  // namespace
}  // namespace wa::quant
