// Unit tests for the dense tensor substrate.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "tensor/gemm.hpp"
#include "tensor/io.hpp"
#include "tensor/tensor.hpp"

namespace wa {
namespace {

TEST(Shape, NumelAndStrides) {
  EXPECT_EQ(numel({2, 3, 4}), 24);
  EXPECT_EQ(numel({}), 1);
  EXPECT_EQ(strides_for({2, 3, 4}), (Shape{12, 4, 1}));
  EXPECT_THROW(numel({2, -1}), std::invalid_argument);
}

TEST(Shape, NumelOverflowThrowsInsteadOfWrapping) {
  // (2^54 + 1) * 3 * 32 * 32 wraps mod 2^64 to 3072; a shape from untrusted
  // bytes must never validate against storage through a wrapped product.
  const std::int64_t huge = (std::int64_t{1} << 54) + 1;
  EXPECT_THROW(numel({huge, 3, 32, 32}), std::overflow_error);
  EXPECT_THROW(numel({std::numeric_limits<std::int64_t>::max(), 2}), std::overflow_error);
  EXPECT_EQ(numel({huge, 0}), 0) << "zero dims still collapse the product";
  EXPECT_THROW((Tensor{Shape{huge, 3, 32, 32}, std::vector<float>(3072)}), std::overflow_error);
}

TEST(Tensor, ConstructionAndFill) {
  Tensor t(Shape{2, 3}, 1.5F);
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.dim(), 2);
  EXPECT_FLOAT_EQ(t(1, 2), 1.5F);
  t.fill(0.F);
  EXPECT_FLOAT_EQ(t.sum(), 0.F);
}

TEST(Tensor, ValueMismatchThrows) {
  EXPECT_THROW(Tensor(Shape{2, 2}, std::vector<float>{1.F, 2.F}), std::invalid_argument);
}

TEST(Tensor, FromRows) {
  Tensor t = Tensor::from_rows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(t.shape(), (Shape{2, 3}));
  EXPECT_FLOAT_EQ(t(1, 0), 4.F);
  EXPECT_THROW(Tensor::from_rows({{1, 2}, {3}}), std::invalid_argument);
}

TEST(Tensor, IndexingRoundTrip4d) {
  Tensor t(Shape{2, 3, 4, 5});
  t(1, 2, 3, 4) = 42.F;
  EXPECT_FLOAT_EQ(t.at(t.numel() - 1), 42.F);
}

TEST(Tensor, ArithmeticAndReductions) {
  Rng rng(1);
  Tensor a = Tensor::randn(Shape{4, 4}, rng);
  Tensor b = Tensor::ones(Shape{4, 4});
  Tensor c = a + b;
  EXPECT_NEAR(c.sum(), a.sum() + 16.F, 1e-4F);
  Tensor d = c - b;
  EXPECT_TRUE(Tensor::allclose(a, d, 1e-6F));
  EXPECT_GE(a.abs_max(), std::fabs(a.mean()));
  EXPECT_LE(a.min(), a.max());
}

TEST(Tensor, HadamardMatchesManual) {
  Tensor a = Tensor::from_rows({{1, 2}, {3, 4}});
  Tensor b = Tensor::from_rows({{5, 6}, {7, 8}});
  Tensor c = a * b;
  EXPECT_FLOAT_EQ(c(0, 0), 5.F);
  EXPECT_FLOAT_EQ(c(1, 1), 32.F);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t = Tensor::arange(12).reshape({3, 4});
  EXPECT_FLOAT_EQ(t(2, 3), 11.F);
  EXPECT_THROW(t.reshape({5, 5}), std::invalid_argument);
}

TEST(Tensor, TransposeIsInvolution) {
  Rng rng(2);
  Tensor t = Tensor::randn(Shape{3, 5}, rng);
  EXPECT_TRUE(Tensor::allclose(t, t.transposed().transposed(), 0.F));
  EXPECT_FLOAT_EQ(t.transposed()(4, 2), t(2, 4));
}

TEST(Tensor, ConcatAxis0And1) {
  Tensor a = Tensor::from_rows({{1, 2}});
  Tensor b = Tensor::from_rows({{3, 4}});
  Tensor c0 = Tensor::concat({a, b}, 0);
  EXPECT_EQ(c0.shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ(c0(1, 1), 4.F);
  Tensor c1 = Tensor::concat({a, b}, 1);
  EXPECT_EQ(c1.shape(), (Shape{1, 4}));
  EXPECT_FLOAT_EQ(c1(0, 2), 3.F);
}

TEST(Tensor, ConcatChannelsAxis1For4d) {
  Tensor a(Shape{2, 1, 2, 2}, 1.F);
  Tensor b(Shape{2, 3, 2, 2}, 2.F);
  Tensor c = Tensor::concat({a, b}, 1);
  EXPECT_EQ(c.shape(), (Shape{2, 4, 2, 2}));
  EXPECT_FLOAT_EQ(c(0, 0, 0, 0), 1.F);
  EXPECT_FLOAT_EQ(c(1, 3, 1, 1), 2.F);
}

TEST(Tensor, Slice0) {
  Tensor t = Tensor::arange(12).reshape({4, 3});
  Tensor s = t.slice0(1, 3);
  EXPECT_EQ(s.shape(), (Shape{2, 3}));
  EXPECT_FLOAT_EQ(s(0, 0), 3.F);
  EXPECT_THROW(t.slice0(3, 5), std::out_of_range);
}

TEST(Tensor, ArgmaxFirstOnTies) {
  Tensor t(Shape{4}, 1.F);
  EXPECT_EQ(t.argmax(), 0);
  t.at(2) = 5.F;
  EXPECT_EQ(t.argmax(), 2);
}

TEST(Matmul, MatchesManualSmall) {
  Tensor a = Tensor::from_rows({{1, 2}, {3, 4}});
  Tensor b = Tensor::from_rows({{5, 6}, {7, 8}});
  Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c(0, 0), 19.F);
  EXPECT_FLOAT_EQ(c(0, 1), 22.F);
  EXPECT_FLOAT_EQ(c(1, 0), 43.F);
  EXPECT_FLOAT_EQ(c(1, 1), 50.F);
}

TEST(Matmul, ShapeMismatchThrows) {
  Tensor a(Shape{2, 3});
  Tensor b(Shape{4, 2});
  EXPECT_THROW(matmul(a, b), std::invalid_argument);
}

// Property: all transpose variants agree with explicit transposition.
class GemmProperty : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmProperty, TransposeVariantsAgree) {
  const auto [m, n, k] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 73 + n * 7 + k));
  Tensor a = Tensor::randn(Shape{m, k}, rng);
  Tensor b = Tensor::randn(Shape{k, n}, rng);
  Tensor ref = matmul(a, b);
  EXPECT_TRUE(Tensor::allclose(ref, matmul_tn(a.transposed(), b), 1e-3F));
  EXPECT_TRUE(Tensor::allclose(ref, matmul_nt(a, b.transposed()), 1e-3F));
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmProperty,
                         ::testing::Values(std::tuple{1, 1, 1}, std::tuple{2, 3, 4},
                                           std::tuple{7, 5, 3}, std::tuple{16, 16, 16},
                                           std::tuple{33, 65, 17}, std::tuple{128, 64, 96},
                                           std::tuple{1, 128, 256}, std::tuple{100, 1, 100}));

TEST(Gemm, AlphaBetaAccumulate) {
  Rng rng(3);
  Tensor a = Tensor::randn(Shape{4, 5}, rng);
  Tensor b = Tensor::randn(Shape{5, 6}, rng);
  Tensor c = Tensor::ones(Shape{4, 6});
  Tensor expect = matmul(a, b) * 2.F + c * 0.5F;
  gemm_f32(false, false, 4, 6, 5, 2.F, a.raw(), b.raw(), 0.5F, c.raw());
  EXPECT_TRUE(Tensor::allclose(expect, c, 1e-4F));
}

TEST(GemmBatched, MatchesLoop) {
  Rng rng(4);
  const std::int64_t batch = 3, m = 4, n = 5, k = 6;
  Tensor a = Tensor::randn(Shape{batch, m, k}, rng);
  Tensor b = Tensor::randn(Shape{batch, k, n}, rng);
  Tensor c(Shape{batch, m, n});
  gemm_batched_f32(false, false, batch, m, n, k, a.raw(), m * k, b.raw(), k * n, c.raw(), m * n);
  for (std::int64_t i = 0; i < batch; ++i) {
    Tensor ai = a.slice0(i, i + 1).reshape({m, k});
    Tensor bi = b.slice0(i, i + 1).reshape({k, n});
    Tensor ci = c.slice0(i, i + 1).reshape({m, n});
    EXPECT_TRUE(Tensor::allclose(ci, matmul(ai, bi), 1e-4F));
  }
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.normal(), b.normal());
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(7);
  int hits = 0;
  for (int i = 0; i < 1000; ++i) {
    if (rng.categorical({0.0, 1.0, 0.0}) == 1) ++hits;
  }
  EXPECT_EQ(hits, 1000);
}

TEST(TensorIo, MapRoundTrip) {
  Rng rng(5);
  std::map<std::string, Tensor> m;
  m["a.weight"] = Tensor::randn(Shape{3, 4}, rng);
  m["b.bias"] = Tensor::randn(Shape{7}, rng);
  const std::string path = ::testing::TempDir() + "/ckpt.bin";
  save_tensor_map(path, m);
  auto loaded = load_tensor_map(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_TRUE(Tensor::allclose(loaded.at("a.weight"), m.at("a.weight"), 0.F));
  EXPECT_TRUE(Tensor::allclose(loaded.at("b.bias"), m.at("b.bias"), 0.F));
}

TEST(TensorIo, MissingFileThrows) {
  EXPECT_THROW(load_tensor_map("/nonexistent/path/x.bin"), std::runtime_error);
}

}  // namespace
}  // namespace wa
