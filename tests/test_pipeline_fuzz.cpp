// Differential fuzz harness for the pass-based optimizer: hundreds of
// seeded, randomly generated — but valid — StageIO graphs (im2row/F2/F4/F6
// convs — the Winograd ones mixing per-tensor and per-tap stage scales with
// random tap group sizes, random grouped cardinalities dividing both channel
// counts, whole-tap-zero sparse skip masks, and stride-2 polyphase lowering —
// linears, batch-norms, requants, relus, max/avg pools, branchy residual and
// channel-concat wirings, odd shapes, mixed frozen/dynamic scales) must
// produce
// BIT-IDENTICAL logits with the optimizer on and off, on every SIMD backend
// this machine can run. This is the lockdown that lets fusion, dead-stage
// elimination and the memory planner's in-place rewrites evolve without a
// reviewer re-deriving their bit-exactness by hand.
//
// The same seeded graphs also lock down the fused Winograd executor: every
// graph runs once on the blocked streaming path and once with the flat
// reference forced (set_winograd_blocked_enabled(false)), on every backend,
// and the logits must be bit-identical with the same measured peak — the
// generator's odd spatial sizes (7..16) and channel counts (1..6, mostly not
// multiples of the channel block) are exactly the shapes where a blocked
// layout could slip in padding artifacts.
//
// The harness also fuzzes the failure surface: invalid wirings (unknown
// slots, double publishes, missing/extra add operands, dropped chained
// outputs, dead dataflow, shape-mismatched joins) must be rejected with the
// offending stage's name in the error, not executed or silently "fixed".
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "backend/conv_kernels_s8.hpp"
#include "backend/simd/kernel_table.hpp"
#include "deploy/passes/passes.hpp"
#include "deploy/pipeline.hpp"
#include "winograd/cook_toom.hpp"

namespace wa::deploy {
namespace {

using backend::simd::available_backends;
using backend::simd::set_backend;
using passes::OptimizeOptions;
using passes::optimize_pipeline;

constexpr int kFuzzGraphs = 220;  // acceptance bar: >= 200

struct Gen {
  std::mt19937 rng;
  explicit Gen(std::uint32_t seed) : rng(seed) {}
  std::int64_t pick(std::int64_t lo, std::int64_t hi) {  // inclusive
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(rng);
  }
  float scale() {  // plausible activation scales, occasionally extreme
    const float base = std::uniform_real_distribution<float>(0.01F, 0.3F)(rng);
    const std::int64_t r = pick(0, 19);
    if (r == 0) return base * 1e-3F;
    if (r == 1) return base * 1e3F;
    return base;
  }
  bool chance(double p) { return std::uniform_real_distribution<>(0.0, 1.0)(rng) < p; }
};

/// Running state of the sequential generator walk.
struct Cursor {
  Shape shape;   // current chained activation shape
  float scl;     // current chained activation scale
};

struct SlotInfo {
  std::string name;
  Shape shape;
  float scl;
};

/// A frozen per-tap scale vector: t2 positive entries, constant within each
/// contiguous run of `gs` taps — the shape the tap-grouped observers emit.
std::vector<float> make_tap_scales(Gen& g, std::int64_t t2) {
  const std::int64_t gs_pick = g.pick(0, 2);
  const std::int64_t gs = gs_pick == 0 ? 1 : gs_pick == 1 ? t2 : g.pick(2, t2 - 1);
  std::vector<float> taps(static_cast<std::size_t>(t2));
  float cur = g.scale();
  for (std::int64_t i = 0; i < t2; ++i) {
    if (i % gs == 0) cur = g.scale();
    taps[static_cast<std::size_t>(i)] = cur;
  }
  return taps;
}

/// A random grouped cardinality: 1 most of the time, otherwise a common
/// divisor of both channel counts (the only legal grouped configurations).
std::int64_t pick_groups(Gen& g, std::int64_t in_ch, std::int64_t out_ch) {
  if (!g.chance(0.3)) return 1;
  std::vector<std::int64_t> divisors;
  for (std::int64_t d = 2; d <= std::min(in_ch, out_ch); ++d) {
    if (in_ch % d == 0 && out_ch % d == 0) divisors.push_back(d);
  }
  if (divisors.empty()) return 1;
  return divisors[static_cast<std::size_t>(g.pick(0, static_cast<std::int64_t>(divisors.size()) - 1))];
}

/// A random winograd_prune-style mask [g, t², K/g, C/g]: some taps die
/// whole-[K/g,C/g] (those must lower to the tap_mask skip), others lose a
/// few individual (k, c) slices (those just zero levels in u_q).
Tensor make_sparse_mask(Gen& g, std::int64_t groups, std::int64_t t2, std::int64_t kpg,
                        std::int64_t cpg) {
  Tensor mask(Shape{groups, t2, kpg, cpg});
  for (std::int64_t i = 0; i < mask.numel(); ++i) mask.at(i) = 1.F;
  for (std::int64_t gi = 0; gi < groups; ++gi) {
    for (std::int64_t ab = 0; ab < t2; ++ab) {
      const bool whole_tap_dead = g.chance(0.15);
      for (std::int64_t i = 0; i < kpg * cpg; ++i) {
        if (whole_tap_dead || g.chance(0.1)) {
          mask.at((gi * t2 + ab) * kpg * cpg + i) = 0.F;
        }
      }
    }
  }
  return mask;
}

ConvStage make_conv(Gen& g, Rng& wrng, std::int64_t in_ch, std::int64_t out_ch,
                    std::int64_t kernel, std::int64_t pad, float in_s, float out_s,
                    bool winograd_ok) {
  ConvStage st;
  const std::int64_t algo_pick = winograd_ok && kernel == 3 ? g.pick(0, 3) : 0;
  st.in_channels = in_ch;
  st.out_channels = out_ch;
  st.kernel = kernel;
  st.pad = pad;
  st.groups = pick_groups(g, in_ch, out_ch);
  st.input_scale = in_s;
  st.relu_after = g.chance(0.4);
  if (algo_pick == 0) {
    st.algo = nn::ConvAlgo::kIm2row;
    st.weights_q =
        backend::quantize_s8(Tensor::randn({out_ch, in_ch / st.groups, kernel, kernel}, wrng, 0.3F));
    st.output_scale = out_s;
  } else {
    const int m = algo_pick == 1 ? 2 : algo_pick == 2 ? 4 : 6;
    st.algo = algo_pick == 1   ? nn::ConvAlgo::kWinograd2
              : algo_pick == 2 ? nn::ConvAlgo::kWinograd4
                               : nn::ConvAlgo::kWinograd6;
    st.weights_f = Tensor::randn({out_ch, in_ch / st.groups, 3, 3}, wrng, 0.3F);
    st.transforms = wino::make_transforms(m, 3);
    if (g.chance(0.3)) {
      // winograd_prune output: whole-dead taps must ride the skip mask.
      st.sparse_mask = make_sparse_mask(g, st.groups, static_cast<std::int64_t>(m + 2) * (m + 2),
                                        out_ch / st.groups, in_ch / st.groups);
    }
    st.stage_scales.input_transformed = g.scale();
    st.stage_scales.hadamard = g.scale();
    st.stage_scales.output = out_s;
    st.output_scale = out_s;
    // Per-tap scale vectors (the production F4/F6 config): each transform-
    // domain stage independently stays scalar or goes vector, with random
    // contiguous group sizes, so graphs mix per-tensor and per-tap stages.
    // Scalar fields keep the vector's representative (front) so the frozen
    // predicates and the blocked-path gate behave exactly as the deploy
    // compiler arranges them.
    if (g.chance(0.5)) {
      const std::int64_t t2 = static_cast<std::int64_t>(m + 2) * (m + 2);
      if (g.chance(0.7)) {
        st.stage_scales.input_transformed_taps = make_tap_scales(g, t2);
        st.stage_scales.input_transformed = st.stage_scales.input_transformed_taps.front();
      }
      if (g.chance(0.7)) {
        st.stage_scales.hadamard_taps = make_tap_scales(g, t2);
        st.stage_scales.hadamard = st.stage_scales.hadamard_taps.front();
      }
      if (g.chance(0.5)) {
        // prepare() bakes the per-tap U cache from this vector.
        st.stage_scales.weights_transformed_taps = make_tap_scales(g, t2);
        st.stage_scales.weights_transformed = st.stage_scales.weights_transformed_taps.front();
      }
    }
  }
  if (g.chance(0.5)) st.bias = Tensor::randn({out_ch}, wrng, 0.1F);
  return st;
}

StageIO gio(std::string in, std::string in2, std::string out, std::string label) {
  StageIO o;
  o.input = std::move(in);
  o.input2 = std::move(in2);
  o.output = std::move(out);
  o.label = std::move(label);
  return o;
}

/// Generate one random valid pipeline; returns it plus the input shape it
/// expects. Every published slot ends up consumed, adds join equal shapes,
/// and the walk keeps spatial dims >= 1, so the graph always runs.
Int8Pipeline fuzz_graph(std::uint32_t seed, Shape* input_shape) {
  Gen g(seed);
  Rng wrng(seed * 7919U + 13U);
  Int8Pipeline pipe;
  int label_id = 0;
  const auto label = [&label_id](const char* kind) {
    return std::string(kind) + "#" + std::to_string(label_id++);
  };

  const std::int64_t in_ch = g.pick(1, 3);
  const std::int64_t h = g.pick(7, 16), w = g.pick(7, 16);
  *input_shape = {0, in_ch, h, w};  // batch filled by the caller

  Cursor cur;
  cur.scl = g.scale();
  {
    const std::int64_t out_ch = g.pick(1, 6);
    const std::int64_t kernel = g.chance(0.7) ? 3 : (g.chance(0.5) ? 1 : 5);
    const std::int64_t pad = kernel == 5 ? 2 : g.pick(0, 1);
    const float out_s = g.scale();
    pipe.push(
        make_conv(g, wrng, in_ch, out_ch, kernel, pad,
                  g.chance(0.85) ? cur.scl : -1.F,  // sometimes a dynamic input quantizer
                  out_s, /*winograd_ok=*/true),
        gio("", "", "", label("conv")));
    cur.shape = {0, out_ch, h + 2 * pad - kernel + 1, w + 2 * pad - kernel + 1};
    cur.scl = out_s;
  }

  std::vector<SlotInfo> slots;      // published, must all be consumed
  std::string pending_slot;         // slot the NEXT stage must read (just published)
  const std::int64_t ops = g.pick(3, 10);
  std::int64_t residual_countdown = -1;  // stages until the pending residual join
  SlotInfo residual_slot;

  for (std::int64_t k = 0; k < ops; ++k) {
    const std::string read_from = pending_slot;  // "" = chain
    pending_slot.clear();

    // Close an open residual block when its countdown expires and shapes
    // still match (shape-preserving ops only ran in between) — half the
    // closes join by skip-add, half by channel concat (the fire-module
    // shape: same spatial dims, channel counts sum).
    if (residual_countdown == 0) {
      residual_countdown = -1;
      if (g.chance(0.4)) {
        ConcatStage cat;
        cat.lhs_scale = g.chance(0.8) ? cur.scl : g.scale();
        cat.rhs_scale = g.chance(0.8) ? residual_slot.scl : g.scale();
        cat.output_scale = g.scale();
        cat.relu_after = g.chance(0.6);
        const float out_s = cat.output_scale;
        pipe.push(std::move(cat), gio(read_from, residual_slot.name, "", label("cat")));
        cur.shape[1] += residual_slot.shape[1];
        cur.scl = out_s;
      } else {
        AddStage add;
        add.lhs_scale = g.chance(0.8) ? cur.scl : g.scale();
        add.rhs_scale = g.chance(0.8) ? residual_slot.scl : g.scale();
        add.output_scale = g.scale();
        add.relu_after = g.chance(0.6);
        const float out_s = add.output_scale;
        pipe.push(std::move(add), gio(read_from, residual_slot.name, "", label("add")));
        cur.scl = out_s;
      }
      continue;
    }
    if (residual_countdown > 0) --residual_countdown;

    // Open a residual block: publish the current value, then run
    // shape-preserving stages until the join. Requires a 4-d activation.
    if (residual_countdown < 0 && cur.shape.size() == 4 && g.chance(0.25) && k + 2 < ops) {
      const std::string slot = "res" + std::to_string(label_id++);
      // Re-publish through a shape/scale-preserving stage so the chain
      // continues from the same value.
      pipe.push(ReluStage{}, gio(read_from, "", slot, label("publish")));
      residual_slot = {slot, cur.shape, cur.scl};
      residual_countdown = g.pick(1, 2);
      pending_slot = slot;  // next stage must name it (previous stage published)
      continue;
    }

    const bool spatial = cur.shape.size() == 4;
    const std::int64_t choice = g.pick(0, 5);
    if (choice == 0 && spatial && residual_countdown < 0) {
      // conv (shape-changing: not inside an open residual block); a 3x3
      // sometimes runs at stride 2 through the polyphase Winograd lowering.
      const std::int64_t kernel = g.chance(0.7) ? 3 : 1;
      const std::int64_t pad = g.pick(0, 1);
      const std::int64_t stride =
          kernel == 3 && cur.shape[2] >= 5 && cur.shape[3] >= 5 && g.chance(0.25) ? 2 : 1;
      const std::int64_t oh = (cur.shape[2] + 2 * pad - kernel) / stride + 1;
      const std::int64_t ow = (cur.shape[3] + 2 * pad - kernel) / stride + 1;
      if (oh >= 1 && ow >= 1) {
        const std::int64_t out_ch = g.pick(1, 6);
        const float out_s = g.scale();
        const float in_s = g.chance(0.8) ? cur.scl : g.scale();
        if (stride == 2) {
          // The strided cache is per-tensor, ungrouped, 3x3 by construction.
          ConvStage st;
          st.algo = g.chance(0.5) ? nn::ConvAlgo::kWinograd2 : nn::ConvAlgo::kWinograd4;
          st.in_channels = cur.shape[1];
          st.out_channels = out_ch;
          st.kernel = 3;
          st.pad = pad;
          st.stride = 2;
          st.input_scale = in_s;
          st.output_scale = out_s;
          st.relu_after = g.chance(0.4);
          st.weights_f = Tensor::randn({out_ch, cur.shape[1], 3, 3}, wrng, 0.3F);
          st.transforms =
              wino::make_transforms(st.algo == nn::ConvAlgo::kWinograd2 ? 2 : 4, 3);
          st.stage_scales.weights_transformed = g.scale();
          st.stage_scales.output = out_s;
          if (g.chance(0.5)) st.bias = Tensor::randn({out_ch}, wrng, 0.1F);
          pipe.push(std::move(st), gio(read_from, "", "", label("sconv")));
        } else {
          pipe.push(make_conv(g, wrng, cur.shape[1], out_ch, kernel, pad, in_s, out_s, true),
                    gio(read_from, "", "", label("conv")));
        }
        cur.shape = {0, out_ch, oh, ow};
        cur.scl = out_s;
        continue;
      }
    }
    if (choice == 1 && spatial) {
      // batch-norm: half the time at the chained scale (fusable), half at a
      // mismatched scale (must NOT fuse — rescale semantics differ).
      BnStage st;
      st.input_scale = g.chance(0.5) ? cur.scl : g.scale();
      st.output_scale = g.scale();
      st.relu_after = g.chance(0.5);
      st.scale = Tensor::randn({cur.shape[1]}, wrng, 0.5F);
      st.bias = Tensor::randn({cur.shape[1]}, wrng, 0.2F);
      const float out_s = st.output_scale;
      pipe.push(std::move(st), gio(read_from, "", "", label("bn")));
      cur.scl = out_s;
      continue;
    }
    if (choice == 2) {
      pipe.push(ReluStage{}, gio(read_from, "", "", label("relu")));
      continue;
    }
    if (choice == 3) {
      RequantStage st;
      st.input_scale = g.chance(0.6) ? cur.scl : g.scale();
      st.output_scale = g.scale();
      const float out_s = st.output_scale;
      pipe.push(std::move(st), gio(read_from, "", "", label("requant")));
      cur.scl = out_s;
      continue;
    }
    if (choice == 4 && spatial && residual_countdown < 0 && cur.shape[2] >= 3 &&
        cur.shape[3] >= 3) {
      const std::int64_t kernel = g.pick(2, 3);
      const std::int64_t stride = g.pick(1, 2);
      const std::int64_t oh = (cur.shape[2] - kernel) / stride + 1;
      const std::int64_t ow = (cur.shape[3] - kernel) / stride + 1;
      if (oh >= 1 && ow >= 1) {
        pipe.push(PoolStage{kernel, stride}, gio(read_from, "", "", label("pool")));
        cur.shape = {0, cur.shape[1], oh, ow};
        continue;
      }
    }
    // Fallback: relu keeps the walk moving without changing shape/scale.
    pipe.push(ReluStage{}, gio(read_from, "", "", label("relu")));
  }

  // Close a still-open residual block before the tail.
  if (residual_countdown >= 0) {
    const float out_s = g.scale();
    if (g.chance(0.4)) {
      ConcatStage cat;
      cat.lhs_scale = cur.scl;
      cat.rhs_scale = residual_slot.scl;
      cat.output_scale = out_s;
      pipe.push(std::move(cat), gio(pending_slot, residual_slot.name, "", label("cat")));
      cur.shape[1] += residual_slot.shape[1];
    } else {
      AddStage add;
      add.lhs_scale = cur.scl;
      add.rhs_scale = residual_slot.scl;
      add.output_scale = out_s;
      pipe.push(std::move(add), gio(pending_slot, residual_slot.name, "", label("add")));
    }
    pending_slot.clear();
    cur.scl = out_s;
  }

  // Tail: reduce to [N, F], then a linear head (sometimes dynamic logits).
  std::int64_t features;
  if (cur.shape.size() == 4 && g.chance(0.5)) {
    pipe.push(AvgPoolStage{}, gio(pending_slot, "", "", label("gap")));
    features = cur.shape[1];
  } else {
    pipe.push(FlattenStage{}, gio(pending_slot, "", "", label("flatten")));
    features = 1;
    for (std::size_t d = 1; d < cur.shape.size(); ++d) features *= cur.shape[d];
  }
  LinearStage fc;
  fc.input_scale = g.chance(0.8) ? cur.scl : g.scale();
  fc.output_scale = g.chance(0.7) ? g.scale() : -1.F;  // sometimes dynamic logits
  fc.weights_q = backend::quantize_s8(Tensor::randn({g.pick(2, 5), features}, wrng, 0.2F));
  pipe.push(std::move(fc), gio("", "", "", label("fc")));
  return pipe;
}

// ---- the differential lockdown ------------------------------------------------

TEST(PipelineFuzz, OptimizedGraphsAreBitIdenticalAcrossBackends) {
  const std::vector<std::string> backends = available_backends();
  ASSERT_FALSE(backends.empty());
  const std::string before = backend::simd::active_backend();

  int planned_reuse_graphs = 0;
  int fused_graphs = 0;
  for (int graph = 0; graph < kFuzzGraphs; ++graph) {
    SCOPED_TRACE("graph seed " + std::to_string(graph));
    Shape in_shape;
    Int8Pipeline ref = fuzz_graph(static_cast<std::uint32_t>(graph), &in_shape);
    const std::int64_t batch = 1 + graph % 3;
    in_shape[0] = batch;

    Int8Pipeline opt = ref;
    OptimizeOptions o;
    o.reference_input = in_shape;
    const auto report = optimize_pipeline(opt, o);
    if (report.fused_stages > 0) ++fused_graphs;

    Rng data_rng(static_cast<unsigned>(graph) * 31U + 5U);
    const Tensor x = Tensor::randn(in_shape, data_rng, 1.5F);
    // A second shape the plan was NOT computed for (different batch).
    Shape alt_shape = in_shape;
    alt_shape[0] = batch == 1 ? 2 : 1;
    const Tensor x_alt = Tensor::randn(alt_shape, data_rng, 1.5F);

    Tensor scalar_ref_logits;
    for (const std::string& backend_name : backends) {
      ASSERT_TRUE(set_backend(backend_name));
      RunStats on{}, off{};
      const Tensor want = ref.run(x, nullptr, &off);
      const Tensor got = opt.run(x, nullptr, &on);
      ASSERT_EQ(got.shape(), want.shape());
      ASSERT_EQ(Tensor::max_abs_diff(got, want), 0.F)
          << "backend " << backend_name << ": planner-on logits diverged";
      ASSERT_EQ(Tensor::max_abs_diff(opt.run(x_alt), ref.run(x_alt)), 0.F)
          << "backend " << backend_name << ": non-reference shape diverged";
      EXPECT_LE(on.peak_activation_bytes, off.peak_activation_bytes)
          << "backend " << backend_name << ": the plan must never use MORE memory";
      if (on.inplace_reuses > 0) ++planned_reuse_graphs;
      if (backend_name == backends.front()) {
        scalar_ref_logits = want;
      } else {
        ASSERT_EQ(Tensor::max_abs_diff(want, scalar_ref_logits), 0.F)
            << "backend " << backend_name << ": cross-backend divergence (planner-off)";
      }
    }
  }
  set_backend(before);
  // The generator must actually exercise the optimizer, not no-op graphs.
  EXPECT_GT(fused_graphs, kFuzzGraphs / 10);
  EXPECT_GT(planned_reuse_graphs, kFuzzGraphs / 4);
}

TEST(PipelineFuzz, BlockedAndFlatWinogradAreBitIdenticalOnEveryBackend) {
  const std::vector<std::string> backends = available_backends();
  ASSERT_FALSE(backends.empty());
  const std::string before = backend::simd::active_backend();
  ASSERT_TRUE(backend::winograd_blocked_enabled()) << "another test leaked the flat override";

  // RAII so an ASSERT mid-loop cannot leak the flat override into later tests.
  struct FlatScope {
    explicit FlatScope(bool flat) { backend::set_winograd_blocked_enabled(!flat); }
    ~FlatScope() { backend::set_winograd_blocked_enabled(true); }
  };

  for (int graph = 0; graph < kFuzzGraphs; ++graph) {
    SCOPED_TRACE("graph seed " + std::to_string(graph));
    Shape in_shape;
    Int8Pipeline opt = fuzz_graph(static_cast<std::uint32_t>(graph), &in_shape);
    in_shape[0] = 1 + graph % 2;
    OptimizeOptions o;
    o.reference_input = in_shape;
    optimize_pipeline(opt, o);

    Rng data_rng(static_cast<unsigned>(graph) * 41U + 7U);
    const Tensor x = Tensor::randn(in_shape, data_rng, 1.5F);
    for (const std::string& backend_name : backends) {
      ASSERT_TRUE(set_backend(backend_name));
      RunStats blocked_stats{}, flat_stats{};
      Tensor blocked_logits, flat_logits;
      {
        FlatScope scope(false);
        blocked_logits = opt.run(x, nullptr, &blocked_stats);
      }
      {
        FlatScope scope(true);
        flat_logits = opt.run(x, nullptr, &flat_stats);
      }
      ASSERT_EQ(blocked_logits.shape(), flat_logits.shape());
      ASSERT_EQ(Tensor::max_abs_diff(blocked_logits, flat_logits), 0.F)
          << "backend " << backend_name << ": fused blocked executor diverged from flat";
      // The streaming executor's V/M slab is kernel-internal ScratchArena
      // memory, invisible to the activation accounting: both paths must
      // report the same peak, and stay under the plan.
      EXPECT_EQ(blocked_stats.peak_activation_bytes, flat_stats.peak_activation_bytes)
          << "backend " << backend_name;
      if (opt.plan() != nullptr) {
        EXPECT_LE(blocked_stats.peak_activation_bytes, opt.plan()->peak_bytes)
            << "backend " << backend_name;
      }
    }
  }
  set_backend(before);
}

TEST(PipelineFuzz, MeasuredPeakNeverExceedsThePlanAtTheReferenceShape) {
  for (int graph = 0; graph < 60; ++graph) {
    SCOPED_TRACE("graph seed " + std::to_string(graph));
    Shape in_shape;
    Int8Pipeline opt = fuzz_graph(static_cast<std::uint32_t>(graph), &in_shape);
    in_shape[0] = 1 + graph % 2;
    OptimizeOptions o;
    o.reference_input = in_shape;
    optimize_pipeline(opt, o);
    ASSERT_NE(opt.plan(), nullptr);

    Rng data_rng(static_cast<unsigned>(graph) * 17U + 3U);
    const Tensor x = Tensor::randn(in_shape, data_rng);
    RunStats stats{};
    opt.run(x, nullptr, &stats);
    // Dynamic scales make the plan's copy analysis conservative, so the
    // plan is an upper bound; with every scale frozen it is exact.
    EXPECT_LE(stats.peak_activation_bytes, opt.plan()->peak_bytes);
    if (opt.all_scales_frozen()) {
      EXPECT_EQ(stats.peak_activation_bytes, opt.plan()->peak_bytes);
    }
  }
}

TEST(PipelineFuzz, GeneratorCoversTheZooStageShapes) {
  // The differential lockdowns above only mean something if the generator
  // actually emits the zoo shapes: grouped convs, stride-2 polyphase convs,
  // whole-tap sparse skip masks and concat joins must all appear across the
  // seed range, or a generator regression would silently shrink coverage.
  int grouped = 0, strided = 0, masked = 0, concats = 0;
  for (int graph = 0; graph < kFuzzGraphs; ++graph) {
    Shape in_shape;
    const Int8Pipeline pipe = fuzz_graph(static_cast<std::uint32_t>(graph), &in_shape);
    for (const auto& node : pipe.nodes()) {
      if (const auto* st = std::get_if<ConvStage>(&node.op)) {
        grouped += st->groups > 1;
        strided += st->stride == 2;
        masked += !st->wino_cache.tap_mask.empty();
      }
      concats += std::holds_alternative<ConcatStage>(node.op);
    }
  }
  EXPECT_GE(grouped, 10) << "grouped convs vanished from the generator";
  EXPECT_GE(strided, 10) << "stride-2 polyphase convs vanished from the generator";
  EXPECT_GE(masked, 10) << "whole-tap sparse masks vanished from the generator";
  EXPECT_GE(concats, 10) << "concat joins vanished from the generator";
}

// ---- invalid wirings are rejected with the stage name -------------------------

ConvStage small_conv(Rng& rng) {
  ConvStage st;
  st.algo = nn::ConvAlgo::kIm2row;
  st.in_channels = 3;
  st.out_channels = 4;
  st.kernel = 3;
  st.pad = 1;
  st.input_scale = 0.05F;
  st.output_scale = 0.1F;
  st.weights_q = backend::quantize_s8(Tensor::randn({4, 3, 3, 3}, rng, 0.3F));
  return st;
}

template <typename Fn>
void expect_rejected_with(const std::string& needle, Fn&& build_and_run) {
  try {
    build_and_run();
    FAIL() << "expected std::invalid_argument naming '" << needle << "'";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos) << e.what();
  }
}

TEST(PipelineFuzz, InvalidWiringsAreRejectedWithTheStageName) {
  Rng rng(90);

  // Unknown input slot.
  expect_rejected_with("bad-reader", [&] {
    Int8Pipeline pipe;
    pipe.push(small_conv(rng), gio("", "", "x", "stem"));
    pipe.push(ReluStage{}, gio("nonexistent", "", "", "bad-reader"));
  });
  // Double-published slot.
  expect_rejected_with("second-writer", [&] {
    Int8Pipeline pipe;
    pipe.push(small_conv(rng), gio("", "", "x", "stem"));
    pipe.push(ReluStage{}, gio("x", "", "x", "second-writer"));
  });
  // AddStage without a second operand.
  expect_rejected_with("lonely-add", [&] {
    Int8Pipeline pipe;
    pipe.push(small_conv(rng), gio("", "", "", "stem"));
    AddStage add;
    add.lhs_scale = add.rhs_scale = 0.1F;
    add.output_scale = 0.1F;
    pipe.push(std::move(add), gio("", "", "", "lonely-add"));
  });
  // input2 on a non-add stage.
  expect_rejected_with("greedy-relu", [&] {
    Int8Pipeline pipe;
    pipe.push(small_conv(rng), gio("", "", "x", "stem"));
    pipe.push(ReluStage{}, gio("x", "x", "", "greedy-relu"));
  });
  // Named read that would drop the previous stage's chained output.
  expect_rejected_with("drops-chain", [&] {
    Int8Pipeline pipe;
    pipe.push(small_conv(rng), gio("", "", "x", "stem"));
    pipe.push(ReluStage{}, gio("x", "", "", "chained"));
    pipe.push(ReluStage{}, gio("x", "", "", "drops-chain"));
  });
  // Implicit read when the previous stage published instead of chaining.
  expect_rejected_with("expects-chain", [&] {
    Int8Pipeline pipe;
    pipe.push(small_conv(rng), gio("", "", "x", "stem"));
    pipe.push(ReluStage{}, gio("", "", "", "expects-chain"));
  });
  // Dead dataflow is rejected at run() (and only DCE may remove it).
  expect_rejected_with("dead-writer", [&] {
    Int8Pipeline pipe;
    pipe.push(small_conv(rng), gio("", "", "x", "stem"));
    pipe.push(ReluStage{}, gio("x", "", "dead", "dead-writer"));
    pipe.push(ReluStage{}, gio("x", "", "", "tail"));
    pipe.run(Tensor::randn({1, 3, 8, 8}, rng));
  });
  // Shape-mismatched join is rejected at run() with the add's label.
  expect_rejected_with("bad-join", [&] {
    Int8Pipeline pipe;
    pipe.push(small_conv(rng), gio("", "", "x", "stem"));
    ConvStage shrink = small_conv(rng);
    shrink.in_channels = 4;
    shrink.pad = 0;
    shrink.weights_q = backend::quantize_s8(Tensor::randn({4, 4, 3, 3}, rng, 0.3F));
    pipe.push(std::move(shrink), gio("x", "", "", "shrink"));
    AddStage add;
    add.lhs_scale = add.rhs_scale = 0.1F;
    add.output_scale = 0.1F;
    pipe.push(std::move(add), gio("", "x", "", "bad-join"));
    pipe.run(Tensor::randn({1, 3, 8, 8}, rng));
  });
  // ConcatStage without a second operand.
  expect_rejected_with("lonely-cat", [&] {
    Int8Pipeline pipe;
    pipe.push(small_conv(rng), gio("", "", "", "stem"));
    ConcatStage cat;
    cat.lhs_scale = cat.rhs_scale = 0.1F;
    cat.output_scale = 0.1F;
    pipe.push(std::move(cat), gio("", "", "", "lonely-cat"));
  });
  // Spatially mismatched concat join is rejected at run() with its label.
  expect_rejected_with("bad-cat", [&] {
    Int8Pipeline pipe;
    pipe.push(small_conv(rng), gio("", "", "x", "stem"));
    ConvStage shrink = small_conv(rng);
    shrink.in_channels = 4;
    shrink.pad = 0;
    shrink.weights_q = backend::quantize_s8(Tensor::randn({4, 4, 3, 3}, rng, 0.3F));
    pipe.push(std::move(shrink), gio("x", "", "", "shrink"));
    ConcatStage cat;
    cat.lhs_scale = cat.rhs_scale = 0.1F;
    cat.output_scale = 0.1F;
    pipe.push(std::move(cat), gio("", "x", "", "bad-cat"));
    pipe.run(Tensor::randn({1, 3, 8, 8}, rng));
  });
  // Channel-mismatched activation is rejected at run() with the conv's name.
  expect_rejected_with("wrong-channels", [&] {
    Int8Pipeline pipe;
    pipe.push(small_conv(rng), gio("", "", "", "stem"));
    ConvStage next = small_conv(rng);  // expects 3 channels, gets 4
    StageIO o = gio("", "", "", "wrong-channels");
    pipe.push(std::move(next), std::move(o));
    pipe.run(Tensor::randn({1, 3, 8, 8}, rng));
  });
}

}  // namespace
}  // namespace wa::deploy
