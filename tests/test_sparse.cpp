// Tests for Winograd-domain pruning (src/sparse) and the pruning-mask path
// through the Winograd-aware op.
#include <gtest/gtest.h>

#include <cmath>

#include "backend/conv_kernels.hpp"
#include "latency/cost_model.hpp"
#include "models/resnet.hpp"
#include "sparse/winograd_prune.hpp"

namespace wa::sparse {
namespace {

core::WinogradAwareConv2d make_layer(Rng& rng, int m = 4, std::int64_t cin = 4,
                                     std::int64_t cout = 4, std::int64_t groups = 1) {
  nn::Conv2dOptions opts;
  opts.in_channels = cin;
  opts.out_channels = cout;
  opts.groups = groups;
  opts.algo = m == 2   ? nn::ConvAlgo::kWinograd2
              : m == 4 ? nn::ConvAlgo::kWinograd4
                       : nn::ConvAlgo::kWinograd6;
  return core::WinogradAwareConv2d(opts, rng);
}

TEST(TransformedWeights, MatchesBackendTransform) {
  Rng rng(1);
  auto layer = make_layer(rng);
  const Tensor u = transformed_weights(layer);
  EXPECT_EQ(u.shape(), (Shape{1, 36, 4, 4}));
  // Same values as the deployment-side weight transform, modulo layout.
  const wino::Transforms tr = wino::make_transforms(4, 3);
  const Tensor u_backend = backend::winograd_transform_weights(layer.weight().value(), tr);
  for (std::int64_t ab = 0; ab < 36; ++ab)
    for (std::int64_t k = 0; k < 4; ++k)
      for (std::int64_t c = 0; c < 4; ++c)
        EXPECT_NEAR(u.at(((0 * 36 + ab) * 4 + k) * 4 + c), u_backend(ab, k, c), 1e-5F);
}

TEST(MagnitudeMask, GlobalSchemeKeepsExactCount) {
  Rng rng(2);
  const Tensor u = Tensor::randn({2, 16, 4, 4}, rng);
  for (const double sparsity : {0.0, 0.25, 0.5, 0.9}) {
    const Tensor mask = magnitude_mask(u, sparsity, PruneScheme::kGlobal);
    const auto pruned = static_cast<std::int64_t>(mask.numel() - mask.sum());
    EXPECT_EQ(pruned, static_cast<std::int64_t>(std::floor(sparsity * 512))) << sparsity;
  }
}

TEST(MagnitudeMask, PerPositionPrunesSameCountEverySlice) {
  Rng rng(20);
  const Tensor u = Tensor::randn({1, 16, 4, 4}, rng);
  const Tensor mask = magnitude_mask(u, 0.5);  // 8 of 16 per slice
  for (std::int64_t xy = 0; xy < 16; ++xy) {
    double kept = 0;
    for (std::int64_t i = 0; i < 16; ++i) kept += mask.at(xy * 16 + i);
    EXPECT_DOUBLE_EQ(kept, 8.0) << "slice " << xy;
  }
}

TEST(MagnitudeMask, GlobalPrunesTheSmallestEntries) {
  Tensor u({1, 4, 1, 1}, {0.1F, -5.F, 0.2F, 3.F});
  const Tensor mask = magnitude_mask(u, 0.5, PruneScheme::kGlobal);
  EXPECT_FLOAT_EQ(mask.at(0), 0.F);
  EXPECT_FLOAT_EQ(mask.at(1), 1.F);
  EXPECT_FLOAT_EQ(mask.at(2), 0.F);
  EXPECT_FLOAT_EQ(mask.at(3), 1.F);
}

TEST(MagnitudeMask, RejectsBadSparsity) {
  Rng rng(3);
  const Tensor u = Tensor::randn({4}, rng);
  EXPECT_THROW(magnitude_mask(u, -0.1), std::invalid_argument);
  EXPECT_THROW(magnitude_mask(u, 1.0), std::invalid_argument);
  EXPECT_THROW(magnitude_mask(Tensor(), 0.5), std::invalid_argument);
}

TEST(WaLayerMask, RejectsWrongShapeAndNonBinary) {
  Rng rng(4);
  auto layer = make_layer(rng);
  EXPECT_THROW(layer.set_winograd_mask(Tensor::ones({1, 36, 4, 3})), std::invalid_argument);
  Tensor bad = Tensor::ones({1, 36, 4, 4});
  bad.at(0) = 0.5F;
  EXPECT_THROW(layer.set_winograd_mask(std::move(bad)), std::invalid_argument);
}

TEST(WaLayerMask, FullMaskIsIdentityZeroMaskKillsOutput) {
  Rng rng(5);
  auto layer = make_layer(rng);
  layer.set_training(false);
  const Tensor x = Tensor::randn({1, 4, 8, 8}, rng);
  const Tensor dense = layer.forward(ag::Variable(x, false)).value();

  layer.set_winograd_mask(Tensor::ones({1, 36, 4, 4}));
  EXPECT_TRUE(Tensor::allclose(dense, layer.forward(ag::Variable(x, false)).value()));
  EXPECT_DOUBLE_EQ(layer.winograd_density(), 1.0);

  layer.set_winograd_mask(Tensor::zeros({1, 36, 4, 4}));
  const Tensor zeroed = layer.forward(ag::Variable(x, false)).value();
  EXPECT_FLOAT_EQ(zeroed.abs_max(), 0.F);
  EXPECT_DOUBLE_EQ(layer.winograd_density(), 0.0);

  layer.clear_winograd_mask();
  EXPECT_TRUE(Tensor::allclose(dense, layer.forward(ag::Variable(x, false)).value()));
}

TEST(WaLayerMask, MagnitudeOrderingIsTheRightImportanceProxy) {
  // Without fine-tuning, pruning is lossy (the dropped products are not
  // tiny: V entries at the same tile position can be large — this is why
  // the workflow retrains). The invariant that must hold regardless is the
  // ordering: dropping the SMALLEST |U| entries per position hurts less
  // than dropping the LARGEST ones.
  Rng rng(6);
  auto layer = make_layer(rng);
  layer.set_training(false);
  const Tensor x = Tensor::randn({1, 4, 8, 8}, rng);
  const Tensor dense = layer.forward(ag::Variable(x, false)).value();

  const Tensor u = transformed_weights(layer);
  const Tensor keep_large = magnitude_mask(u, 0.3);  // drops the smallest 30%
  // Inverting the importance ranking (1/|u|) makes the mask drop the
  // LARGEST 30% per slice instead.
  const Tensor inverted = u.map([](float v) { return 1.F / (std::fabs(v) + 1e-12F); });
  const Tensor drop_large = magnitude_mask(inverted, 0.3);

  auto error_with = [&](Tensor mask) {
    layer.set_winograd_mask(std::move(mask));
    const Tensor out = layer.forward(ag::Variable(x, false)).value();
    layer.clear_winograd_mask();
    return Tensor::max_abs_diff(dense, out);
  };
  const float err_smallest = error_with(keep_large);
  const float err_largest = error_with(drop_large);
  EXPECT_GT(err_smallest, 0.F);            // something was actually pruned
  EXPECT_LT(err_smallest, err_largest);    // magnitude ordering is meaningful
}

TEST(WaLayerMask, MaskedGradientsStayZero) {
  // Fine-tuning must preserve the sparsity pattern: gradients through
  // masked U entries are dropped, so a weight step cannot resurrect them
  // through the masked positions.
  Rng rng(7);
  auto layer = make_layer(rng, 2);
  prune_winograd_layer(layer, 0.5);
  const Tensor mask = layer.winograd_mask();

  ag::Variable x(Tensor::randn({1, 4, 8, 8}, rng), false);
  ag::Variable out = layer.forward(x);
  out.backward();

  // The forward's masked U entries contribute nothing, so pruned positions
  // must leave the output invariant: flip the weights only where ALL their
  // Winograd-domain images are masked — infeasible to construct in general,
  // so instead check the op-level contract: a layer with a zero mask gets
  // exactly zero weight gradient.
  auto layer2 = make_layer(rng, 2);
  layer2.set_winograd_mask(Tensor::zeros({1, 16, 4, 4}));
  ag::Variable out2 = layer2.forward(x);
  out2.backward();
  EXPECT_FLOAT_EQ(layer2.weight().grad().abs_max(), 0.F);
}

TEST(PruneModel, WalksAllWinogradLayersInResNet) {
  Rng rng(8);
  models::ResNetConfig cfg;
  cfg.width_mult = 0.125F;
  cfg.algo = nn::ConvAlgo::kWinograd4;
  models::ResNet18 net(cfg, rng);
  const auto reports = prune_model(net, 0.6);
  EXPECT_EQ(reports.size(), 16u);  // all block convs are winograd-aware
  for (const auto& r : reports) {
    EXPECT_NEAR(r.achieved_density, 0.4, 0.02) << r.layer;
    EXPECT_FALSE(r.layer.empty());
  }
  EXPECT_NEAR(model_hadamard_density(net), 0.4, 0.02);
}

TEST(PruneModel, DensityOneWithoutMasks) {
  Rng rng(9);
  models::ResNetConfig cfg;
  cfg.width_mult = 0.125F;
  models::ResNet18 net(cfg, rng);  // im2row model: no winograd layers at all
  EXPECT_DOUBLE_EQ(model_hadamard_density(net), 1.0);
}

TEST(CostModel, HadamardDensityCutsGemmTime) {
  latency::LatencyModel model(latency::cortex_a73());
  latency::LayerDesc desc;
  desc.geom.batch = 1;
  desc.geom.in_channels = 128;
  desc.geom.out_channels = 128;
  desc.geom.height = 16;
  desc.geom.width = 16;
  desc.algo = nn::ConvAlgo::kWinograd4;
  const double dense = model.conv_cost(desc).gemm_ms;
  desc.hadamard_density = 0.1;
  const double sparse = model.conv_cost(desc).gemm_ms;
  EXPECT_LT(sparse, dense * 0.7);
  // Transforms are untouched by Hadamard sparsity.
  desc.hadamard_density = 1.0;
  const auto a = model.conv_cost(desc);
  desc.hadamard_density = 0.1;
  const auto b = model.conv_cost(desc);
  EXPECT_DOUBLE_EQ(a.input_transform_ms, b.input_transform_ms);
  EXPECT_DOUBLE_EQ(a.output_transform_ms, b.output_transform_ms);
}

}  // namespace
}  // namespace wa::sparse
