// Figure 9 / appendix A.3 reproduction: the architectures wiNAS finds.
//
// Runs wiNAS-WA (fixed INT8) and wiNAS-WA-Q (bit-width in the search space)
// on the CIFAR-10 analog and prints the chosen algorithm/bit-width per layer
// in the style of the paper's Fig. 9 columns, plus a λ2 sweep showing the
// latency pressure mechanism (§6.3: high λ2 converges to WAF4-like
// assignments; low λ2 trades latency back for accuracy).
#include <cstdio>

#include "bench_common.hpp"
#include "nas/winas.hpp"

int main() {
  using namespace wa;
  const auto scale = bench::scale_from_env();
  bench::banner("Figure 9 / A.3 — architectures found by wiNAS");

  const auto train_set = bench::make_split(data::cifar10_like(), scale, true);
  const auto val_set = bench::make_split(data::cifar10_like(), scale, false);

  std::printf(
      "paper reference (CIFAR-10, wiNAS-WA-Q): first layers kept at high precision\n"
      "(im2row/F4 FP32-INT16), middle layers F4 INT8, last stage F2/im2row INT8.\n");

  nas::WinasOptions base;
  base.epochs = std::max(1, scale.epochs / 2);
  base.batch_size = scale.batch;
  base.width_mult = scale.width_mult;
  base.seed = scale.seed;

  // ---- wiNAS-WA at two latency pressures -------------------------------------
  for (float lambda2 : {0.1F, 1e-3F}) {
    nas::WinasOptions opts = base;
    opts.fixed_spec = quant::QuantSpec{8};
    opts.lambda2 = lambda2;
    std::printf("\nwiNAS-WA (INT8 space), lambda2 = %g:\n", static_cast<double>(lambda2));
    nas::WinasSearch search(opts, train_set, val_set);
    const auto result = search.run();
    std::printf("%s", nas::format_architecture(result).c_str());
    std::printf("  supernet argmax-path val acc: %s\n", bench::pct(result.final_val_acc).c_str());
  }

  // ---- wiNAS-WA-Q --------------------------------------------------------------
  {
    nas::WinasOptions opts = base;
    opts.search_quant = true;
    opts.lambda2 = 0.05F;
    std::printf("\nwiNAS-WA-Q ({im2row,F2,F4,F6} x {fp32,int16,int8}), lambda2 = 0.05:\n");
    nas::WinasSearch search(opts, train_set, val_set);
    const auto result = search.run();
    std::printf("%s", nas::format_architecture(result).c_str());
    std::printf("  supernet argmax-path val acc: %s\n", bench::pct(result.final_val_acc).c_str());
  }
  return 0;
}
