// Figure 5 reproduction: INT8 LeNet (5x5 filters) on the MNIST analog.
// Winograd-aware layers with STATIC transforms degrade sharply as the output
// tile grows — F(6x6, 5x5) uses 10x10 tiles — while learning the transforms
// (-flex) recovers most of the accuracy.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "models/lenet.hpp"

namespace {

using namespace wa;

struct Config {
  const char* label;
  nn::ConvAlgo algo;
  bool flex;
  double paper_final;  // paper's reported INT8 end-of-training accuracy (%)
};

// Fig. 5: im2row ~99, F2 ~98.5, F2-flex ~99, F4 73, F4-flex ~97, F6 51,
// F6-flex ~96 (F4/F6 static quoted in the caption).
const Config kConfigs[] = {
    {"im2row", nn::ConvAlgo::kIm2row, false, 99.0},
    {"F2", nn::ConvAlgo::kWinograd2, false, 98.5},
    {"F2-flex", nn::ConvAlgo::kWinograd2, true, 99.0},
    {"F4", nn::ConvAlgo::kWinograd4, false, 73.0},
    {"F4-flex", nn::ConvAlgo::kWinograd4, true, 97.0},
    {"F6", nn::ConvAlgo::kWinograd6, false, 51.0},
    {"F6-flex", nn::ConvAlgo::kWinograd6, true, 96.0},
};

}  // namespace

int main() {
  using namespace wa;
  auto scale = bench::scale_from_env();
  // The flex-vs-static gap for 5x5 filters needs real optimization time to
  // open: the INT8 t=8/t=10 pipelines start in the collapsed regime and the
  // learnt transforms climb out only after several hundred steps (~epoch 4-5
  // at 2000 samples; the paper trains far longer). Give this harness its own
  // scale floor; the explicit smoke preset and env overrides still win.
  // Liftoff is sensitive to the optimization recipe: batch 32 with lr 2e-3
  // climbs out reliably (~epoch 4-5); smaller batches with higher lr keep
  // the learnt transforms too noisy to reduce the arithmetic error.
  const char* preset = std::getenv("WINO_SCALE");
  if (preset == nullptr || std::string(preset) != "smoke") {
    scale.train_size = std::max<std::int64_t>(scale.train_size, 2000);
    scale.test_size = std::max<std::int64_t>(scale.test_size, 400);
    scale.epochs = std::max(scale.epochs * 3, 8);
    scale.batch = 32;
  }
  bench::banner("Figure 5 — INT8 LeNet with 5x5 filters (static vs learnt transforms)");

  const auto train_set = bench::make_split(data::mnist_like(), scale, true);
  const auto val_set = bench::make_split(data::mnist_like(), scale, false);

  std::printf("validation accuracy per epoch (INT8, 5x5 filters):\n");
  std::vector<std::pair<const Config*, float>> finals;
  for (const auto& cfg : kConfigs) {
    Rng rng(scale.seed);
    models::LeNetConfig lc;
    lc.algo = cfg.algo;
    lc.qspec = quant::QuantSpec{8};
    lc.flex_transforms = cfg.flex;
    models::LeNet5 net(lc, rng);

    std::printf("  %-8s :", cfg.label);
    std::fflush(stdout);
    auto opts = bench::trainer_options(scale, 2e-3F);
    opts.on_epoch = [](const train::EpochStats& st) {
      std::printf(" %5.1f", 100.F * st.val_acc);
      std::fflush(stdout);
    };
    train::Trainer trainer(net, train_set, val_set, opts);
    const auto history = trainer.fit();
    const float final_acc = history.back().val_acc;
    finals.emplace_back(&cfg, final_acc);
    std::printf("   (paper final ~%.0f%%)\n", cfg.paper_final);
  }

  bench::banner("Findings check");
  auto get = [&](const char* label) {
    for (const auto& [cfg, acc] : finals) {
      if (std::string(cfg->label) == label) return acc;
    }
    return 0.F;
  };
  bench::row("flex >= static for F4", "always better",
             get("F4-flex") >= get("F4") ? "yes" : "NO");
  bench::row("flex >= static for F6", "always better",
             get("F6-flex") >= get("F6") ? "yes" : "NO");
  bench::row("static degrades with tile size (F2>F4>F6)", "monotone drop",
             (get("F2") >= get("F4") && get("F4") >= get("F6")) ? "yes" : "NO");
  return 0;
}
