// Table 3 reproduction — the paper's headline results table:
// ResNet-18 accuracy (CIFAR-10 analog) and latency/speedups on Cortex-A53 /
// Cortex-A73 for im2row, im2col, post-training Winograd (WF2/WF4),
// winograd-aware training (WAF2*/WAF4) and wiNAS, at FP32 and INT8.
//
// Accuracy comes from scaled-down trainings on the synthetic dataset;
// latency comes from the cost model at width 1.0 (the paper's deployment
// network), including the dense-transform penalty (†) for learnt transforms.
#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "latency/cost_model.hpp"
#include "latency/resnet_profile.hpp"
#include "models/resnet.hpp"
#include "nas/winas.hpp"

namespace {

using namespace wa;

/// Whole-network conv latency for a uniform algorithm assignment.
double network_ms(const latency::LatencyModel& model, nn::ConvAlgo algo, latency::DType dtype,
                  bool dense_transforms, bool pin_last_stage_f2) {
  std::vector<latency::LayerDesc> layers;
  for (const auto& l : latency::resnet18_conv_layers(1.0F)) {
    latency::LayerDesc d;
    d.geom = l.geom;
    d.dtype = dtype;
    if (l.searchable) {
      d.algo = algo;
      if (pin_last_stage_f2 && nn::is_winograd(algo) && l.name.starts_with("stage4")) {
        d.algo = nn::ConvAlgo::kWinograd2;
      }
      d.dense_transforms = dense_transforms && nn::is_winograd(d.algo);
    } else {
      d.algo = nn::ConvAlgo::kIm2row;  // input conv + 1x1 shortcuts
      // im2col rows charge the whole network with the im2col lowering.
      if (algo == nn::ConvAlgo::kIm2col) d.algo = nn::ConvAlgo::kIm2col;
    }
    layers.push_back(d);
  }
  return model.network_cost_ms(layers);
}

/// Latency of a wiNAS-derived per-layer assignment.
double network_ms(const latency::LatencyModel& model,
                  const std::map<std::string, models::LayerOverride>& assignment) {
  std::vector<latency::LayerDesc> layers;
  for (const auto& l : latency::resnet18_conv_layers(1.0F)) {
    latency::LayerDesc d;
    d.geom = l.geom;
    d.algo = nn::ConvAlgo::kIm2row;
    d.dtype = latency::DType::kFp32;
    if (const auto it = assignment.find(l.name); it != assignment.end()) {
      d.algo = it->second.algo;
      d.dtype = latency::dtype_for(it->second.qspec);
      d.dense_transforms = it->second.flex && nn::is_winograd(it->second.algo);
    }
    layers.push_back(d);
  }
  return model.network_cost_ms(layers);
}

struct PaperRow {
  const char* label;
  double acc_c10;      // paper CIFAR-10 accuracy (%)
  double a53_ms, a73_ms;
};

const PaperRow kPaperFp32[] = {
    {"im2row", 93.16, 118, 85},  {"im2col", 93.16, 156, 102}, {"WF2 (swap)", 93.16, 126, 56},
    {"WF4 (swap)", 93.14, 97, 46}, {"WAF2*", 93.46, 126, 56},   {"WAF4 (flex)", 93.54, 122, 54},
};
const PaperRow kPaperInt8[] = {
    {"im2row", 93.20, 117, 54},
    {"im2col", 93.20, 124, 59},
    {"WAF2*", 93.72, 91, 38},
    {"WAF4 (flex)", 92.46, 82, 35},
    {"wiNAS-WA", 92.71, 88, 35},
    {"wiNAS-WA-Q", 92.89, 74, 32},
};

}  // namespace

int main() {
  using namespace wa;
  const auto scale = bench::scale_from_env();
  bench::banner("Table 3 — main results: accuracy + latency for every convolution strategy");

  const auto train_set = bench::make_split(data::cifar10_like(), scale, true);
  const auto val_set = bench::make_split(data::cifar10_like(), scale, false);
  const latency::LatencyModel a53(latency::cortex_a53());
  const latency::LatencyModel a73(latency::cortex_a73());

  auto train_config = [&](nn::ConvAlgo algo, int bits, bool flex) {
    Rng rng(scale.seed);
    models::ResNetConfig cfg;
    cfg.width_mult = scale.width_mult;
    cfg.algo = algo;
    cfg.qspec = quant::QuantSpec{bits};
    cfg.flex_transforms = flex;
    auto net = std::make_shared<models::ResNet18>(cfg, rng);
    train::Trainer trainer(*net, train_set, val_set, bench::trainer_options(scale));
    trainer.fit();
    return std::pair{net, trainer.evaluate(val_set)};
  };

  auto swap_eval = [&](const std::map<std::string, Tensor>& src, nn::ConvAlgo algo, int bits) {
    Rng rng(scale.seed + 1);
    models::ResNetConfig cfg;
    cfg.width_mult = scale.width_mult;
    cfg.algo = algo;
    cfg.qspec = quant::QuantSpec{bits};
    models::ResNet18 net(cfg, rng);
    net.load_state_intersect(src);
    train::Trainer ev(net, train_set, val_set, bench::trainer_options(scale));
    ev.warmup_observers(8);
    return ev.evaluate(val_set);
  };

  auto print_row = [&](const PaperRow& paper, float acc, double ms53, double ms73,
                       double base53, double base73) {
    std::printf("  %-14s acc paper %6.2f meas %6.2f | A53 paper %5.0f model %7.1f (%4.2fx) | "
                "A73 paper %4.0f model %6.1f (%4.2fx)\n",
                paper.label, paper.acc_c10, 100.F * acc, paper.a53_ms, ms53, base53 / ms53,
                paper.a73_ms, ms73, base73 / ms73);
  };

  // ---- FP32 section ----------------------------------------------------------
  std::printf("\n[32/32] (speedups vs im2row FP32)\n");
  const double base53 = network_ms(a53, nn::ConvAlgo::kIm2row, latency::DType::kFp32, false, false);
  const double base73 = network_ms(a73, nn::ConvAlgo::kIm2row, latency::DType::kFp32, false, false);

  const auto [im2row_fp32, acc_im2row_fp32] = train_config(nn::ConvAlgo::kIm2row, 32, false);
  const auto fp32_state = im2row_fp32->state_dict();
  print_row(kPaperFp32[0], acc_im2row_fp32, base53, base73, base53, base73);
  print_row(kPaperFp32[1], acc_im2row_fp32,
            network_ms(a53, nn::ConvAlgo::kIm2col, latency::DType::kFp32, false, false),
            network_ms(a73, nn::ConvAlgo::kIm2col, latency::DType::kFp32, false, false), base53,
            base73);
  print_row(kPaperFp32[2], swap_eval(fp32_state, nn::ConvAlgo::kWinograd2, 32),
            network_ms(a53, nn::ConvAlgo::kWinograd2, latency::DType::kFp32, false, true),
            network_ms(a73, nn::ConvAlgo::kWinograd2, latency::DType::kFp32, false, true), base53,
            base73);
  print_row(kPaperFp32[3], swap_eval(fp32_state, nn::ConvAlgo::kWinograd4, 32),
            network_ms(a53, nn::ConvAlgo::kWinograd4, latency::DType::kFp32, false, true),
            network_ms(a73, nn::ConvAlgo::kWinograd4, latency::DType::kFp32, false, true), base53,
            base73);
  print_row(kPaperFp32[4], train_config(nn::ConvAlgo::kWinograd2, 32, false).second,
            network_ms(a53, nn::ConvAlgo::kWinograd2, latency::DType::kFp32, false, true),
            network_ms(a73, nn::ConvAlgo::kWinograd2, latency::DType::kFp32, false, true), base53,
            base73);
  print_row(kPaperFp32[5], train_config(nn::ConvAlgo::kWinograd4, 32, true).second,
            network_ms(a53, nn::ConvAlgo::kWinograd4, latency::DType::kFp32, true, true),
            network_ms(a73, nn::ConvAlgo::kWinograd4, latency::DType::kFp32, true, true), base53,
            base73);

  // ---- INT8 section ----------------------------------------------------------
  std::printf("\n[8/8] (speedups vs im2row FP32)\n");
  print_row(kPaperInt8[0], train_config(nn::ConvAlgo::kIm2row, 8, false).second,
            network_ms(a53, nn::ConvAlgo::kIm2row, latency::DType::kInt8, false, false),
            network_ms(a73, nn::ConvAlgo::kIm2row, latency::DType::kInt8, false, false), base53,
            base73);
  print_row(kPaperInt8[1], train_config(nn::ConvAlgo::kIm2row, 8, false).second,
            network_ms(a53, nn::ConvAlgo::kIm2col, latency::DType::kInt8, false, false),
            network_ms(a73, nn::ConvAlgo::kIm2col, latency::DType::kInt8, false, false), base53,
            base73);
  print_row(kPaperInt8[2], train_config(nn::ConvAlgo::kWinograd2, 8, false).second,
            network_ms(a53, nn::ConvAlgo::kWinograd2, latency::DType::kInt8, false, true),
            network_ms(a73, nn::ConvAlgo::kWinograd2, latency::DType::kInt8, false, true), base53,
            base73);
  print_row(kPaperInt8[3], train_config(nn::ConvAlgo::kWinograd4, 8, true).second,
            network_ms(a53, nn::ConvAlgo::kWinograd4, latency::DType::kInt8, true, true),
            network_ms(a73, nn::ConvAlgo::kWinograd4, latency::DType::kInt8, true, true), base53,
            base73);

  // ---- wiNAS rows -------------------------------------------------------------
  {
    nas::WinasOptions wopts;
    wopts.epochs = std::max(1, scale.epochs / 2);
    wopts.batch_size = scale.batch;
    wopts.width_mult = scale.width_mult;
    wopts.fixed_spec = quant::QuantSpec{8};
    wopts.seed = scale.seed;
    nas::WinasSearch search(wopts, train_set, val_set);
    const auto result = search.run();
    // Retrain the found architecture end-to-end.
    Rng rng(scale.seed + 3);
    models::ResNetConfig cfg;
    cfg.width_mult = scale.width_mult;
    cfg.qspec = quant::QuantSpec{8};
    auto build = models::override_builder(result.assignment, rng);
    models::ResNet18 found(cfg, build, rng);
    train::Trainer trainer(found, train_set, val_set, bench::trainer_options(scale));
    trainer.fit();
    print_row(kPaperInt8[4], trainer.evaluate(val_set), network_ms(a53, result.assignment),
              network_ms(a73, result.assignment), base53, base73);

    nas::WinasOptions qopts = wopts;
    qopts.search_quant = true;
    nas::WinasSearch qsearch(qopts, train_set, val_set);
    const auto qresult = qsearch.run();
    Rng rng2(scale.seed + 4);
    models::ResNetConfig qcfg;
    qcfg.width_mult = scale.width_mult;
    auto qbuild = models::override_builder(qresult.assignment, rng2);
    models::ResNet18 qfound(qcfg, qbuild, rng2);
    train::Trainer qtrainer(qfound, train_set, val_set, bench::trainer_options(scale));
    qtrainer.fit();
    print_row(kPaperInt8[5], qtrainer.evaluate(val_set), network_ms(a53, qresult.assignment),
              network_ms(a73, qresult.assignment), base53, base73);
  }

  std::printf(
      "\nExpected shape: Winograd + INT8 compounds both speedups (largest on the A73);\n"
      "WAF4 trades a little accuracy for the biggest uniform-assignment speedup; wiNAS\n"
      "recovers accuracy at a small latency cost. Accuracies are from scaled-down\n"
      "trainings on synthetic data; latencies from the calibrated A53/A73 cost model.\n");
  return 0;
}
