// Appendix A.2 reproduction: the latency overhead of learnt (dense)
// Winograd transforms.
//
// Paper: default transforms contain many zeros/±1 entries (F2's Bᵀ/G/Aᵀ are
// 50/33/25% zeros); learnt transforms are dense, costing a worst-case
// latency increase of ~17% (FP32) / ~20% (INT8) for a WAF4 ResNet-18 on the
// Cortex-A73, and more on the A53 where transforms weigh more.
#include <cstdio>

#include "bench_common.hpp"
#include "latency/cost_model.hpp"
#include "latency/resnet_profile.hpp"
#include "winograd/cook_toom.hpp"

namespace {

using namespace wa;

double network_ms(const latency::LatencyModel& model, latency::DType dtype, bool dense) {
  std::vector<latency::LayerDesc> layers;
  for (const auto& l : latency::resnet18_conv_layers(1.0F)) {
    latency::LayerDesc d;
    d.geom = l.geom;
    d.dtype = dtype;
    if (l.searchable) {
      d.algo = l.name.starts_with("stage4") ? nn::ConvAlgo::kWinograd2 : nn::ConvAlgo::kWinograd4;
      d.dense_transforms = dense;
    } else {
      d.algo = nn::ConvAlgo::kIm2row;
    }
    layers.push_back(d);
  }
  return model.network_cost_ms(layers);
}

}  // namespace

int main() {
  using namespace wa;
  bench::banner("Appendix A.2 — overhead of learnt (dense) Winograd transforms");

  bench::note("transform sparsity (fraction of zero entries), Cook-Toom defaults:");
  for (auto [m, label] : {std::pair{2, "F2"}, std::pair{4, "F4"}, std::pair{6, "F6"}}) {
    const auto tr = wino::make_transforms(m, 3);
    const auto bt = wino::matrix_cost(tr.bt_mat);
    const auto g = wino::matrix_cost(tr.g_mat);
    const auto at = wino::matrix_cost(tr.at_mat);
    std::printf("  %-3s  Bt %4.0f%%  G %4.0f%%  At %4.0f%%   (paper F2: 50/33/25%%, F4: 22/22/25%%)\n",
                label, 100.0 * bt.zeros / bt.total, 100.0 * g.zeros / g.total,
                100.0 * at.zeros / at.total);
  }

  std::printf("\nWAF4 ResNet-18 whole-network conv latency, sparse vs dense transforms:\n");
  for (const auto& spec : {latency::cortex_a73(), latency::cortex_a53()}) {
    const latency::LatencyModel model(spec);
    for (auto [dtype, dlabel, paper] :
         {std::tuple{latency::DType::kFp32, "fp32", "+17% (A73)"},
          std::tuple{latency::DType::kInt8, "int8", "+20% (A73)"}}) {
      const double sparse = network_ms(model, dtype, false);
      const double dense = network_ms(model, dtype, true);
      char measured[64];
      std::snprintf(measured, sizeof(measured), "%.1f -> %.1f ms (+%.0f%%)", sparse, dense,
                    100.0 * (dense / sparse - 1.0));
      bench::row(std::string(spec.name) + " " + dlabel, paper, measured);
    }
  }

  std::printf(
      "\nEven with the dense-transform penalty, WAF4 INT8 stays faster than im2row INT8 —\n"
      "the paper's A.2 conclusion (1.54x / 1.43x on A73 / A53):\n");
  for (const auto& spec : {latency::cortex_a73(), latency::cortex_a53()}) {
    const latency::LatencyModel model(spec);
    std::vector<latency::LayerDesc> base;
    for (const auto& l : latency::resnet18_conv_layers(1.0F)) {
      latency::LayerDesc d;
      d.geom = l.geom;
      d.algo = nn::ConvAlgo::kIm2row;
      d.dtype = latency::DType::kInt8;
      base.push_back(d);
    }
    const double im2row = model.network_cost_ms(base);
    const double waf4 = network_ms(model, latency::DType::kInt8, true);
    bench::row(std::string(spec.name) + " WAF4-dense int8 vs im2row int8",
               spec.name == "Cortex-A73" ? "1.54x" : "1.43x", bench::ratio(im2row / waf4));
  }
  return 0;
}
