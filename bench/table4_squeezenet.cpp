// Table 4 reproduction: SqueezeNet with Winograd-aware layers, static vs
// learnt (flex) transforms, FP32 and INT8.
//
// Paper shape: everything matches im2row at FP32; at INT8 the static-F4
// configuration collapses (91 -> 79% CIFAR-10, 69 -> 56% CIFAR-100) while
// flex recovers to baseline level.
#include <cstdio>

#include "bench_common.hpp"
#include "models/squeezenet.hpp"

namespace {

using namespace wa;

struct Config {
  const char* label;
  nn::ConvAlgo algo;
  bool flex;
  int bits;
  double paper_c10;  // paper accuracy on CIFAR-10 (%)
};

// The full Table 4 has five FP32 rows that all tie; the default run keeps
// two of them as representatives and all the INT8 rows (where the story is).
const Config kConfigs[] = {
    {"im2row fp32", nn::ConvAlgo::kIm2row, false, 32, 91.13},
    {"WAF4-flex fp32", nn::ConvAlgo::kWinograd4, true, 32, 91.41},
    {"im2row int8", nn::ConvAlgo::kIm2row, false, 8, 91.15},
    {"WAF2-flex int8", nn::ConvAlgo::kWinograd2, true, 8, 91.03},
    {"WAF4-static int8", nn::ConvAlgo::kWinograd4, false, 8, 79.28},
    {"WAF4-flex int8", nn::ConvAlgo::kWinograd4, true, 8, 90.72},
};

}  // namespace

int main() {
  using namespace wa;
  const auto scale = bench::scale_from_env();
  bench::banner("Table 4 — SqueezeNet: static vs learnt Winograd transforms");

  const auto train_set = bench::make_split(data::cifar10_like(), scale, true);
  const auto val_set = bench::make_split(data::cifar10_like(), scale, false);

  float static_f4_int8 = 0, flex_f4_int8 = 0, im2row_int8 = 0;
  for (const auto& cfg : kConfigs) {
    Rng rng(scale.seed);
    models::SqueezeNetConfig sc;
    sc.width_mult = 0.25F;
    sc.algo = cfg.algo;
    sc.qspec = quant::QuantSpec{cfg.bits};
    sc.flex_transforms = cfg.flex;
    models::SqueezeNet net(sc, rng);
    train::Trainer trainer(net, train_set, val_set, bench::trainer_options(scale));
    trainer.fit();
    const float acc = trainer.evaluate(val_set);
    bench::row(cfg.label, bench::pct(static_cast<float>(cfg.paper_c10 / 100.0)),
               bench::pct(acc));
    if (std::string(cfg.label) == "WAF4-static int8") static_f4_int8 = acc;
    if (std::string(cfg.label) == "WAF4-flex int8") flex_f4_int8 = acc;
    if (std::string(cfg.label) == "im2row int8") im2row_int8 = acc;
  }

  bench::banner("Findings check");
  bench::row("flex recovers static-F4 INT8 drop", "79.3 -> 90.7 (near baseline)",
             flex_f4_int8 > static_f4_int8 ? "yes" : "NO");
  bench::row("flex-F4 INT8 near im2row INT8", "within ~0.5%",
             flex_f4_int8 >= im2row_int8 - 0.08F ? "yes" : "NO");
  return 0;
}
