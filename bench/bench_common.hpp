// Shared utilities for the experiment harnesses (one binary per paper
// table/figure).
//
// Every harness prints the paper's reported numbers next to the measured
// ones. Absolute values are not expected to match (different substrate,
// synthetic data, scaled-down training — see DESIGN.md §2); the reproduction
// target is the *shape*: orderings, collapses, recoveries, crossovers.
//
// Scale knobs (environment variables):
//   WINO_SCALE       smoke | default | full   (preset bundles)
//   WINO_TRAIN       training-set size override
//   WINO_TEST        test-set size override
//   WINO_EPOCHS      epochs override
//   WINO_WIDTH       ResNet width multiplier override
//   WINO_BATCH       batch size override
//   WINO_SEED        RNG seed
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "data/synthetic.hpp"
#include "train/trainer.hpp"

namespace wa::bench {

struct Scale {
  std::int64_t train_size = 320;
  std::int64_t test_size = 128;
  int epochs = 2;
  float width_mult = 0.125F;
  std::int64_t batch = 32;
  std::uint64_t seed = 42;
};

inline std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoll(v) : fallback;
}

inline double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atof(v) : fallback;
}

/// Resolve the scale preset + individual overrides.
inline Scale scale_from_env() {
  Scale s;
  const char* preset = std::getenv("WINO_SCALE");
  if (preset != nullptr && std::string(preset) == "smoke") {
    s.train_size = 192;
    s.test_size = 96;
    s.epochs = 1;
  } else if (preset != nullptr && std::string(preset) == "full") {
    s.train_size = 4000;
    s.test_size = 1000;
    s.epochs = 10;
    s.width_mult = 0.25F;
  }
  s.train_size = env_int("WINO_TRAIN", s.train_size);
  s.test_size = env_int("WINO_TEST", s.test_size);
  s.epochs = static_cast<int>(env_int("WINO_EPOCHS", s.epochs));
  s.width_mult = static_cast<float>(env_double("WINO_WIDTH", s.width_mult));
  s.batch = env_int("WINO_BATCH", s.batch);
  s.seed = static_cast<std::uint64_t>(env_int("WINO_SEED", static_cast<std::int64_t>(s.seed)));
  return s;
}

inline data::Dataset make_split(data::SyntheticSpec spec, const Scale& s, bool train) {
  spec.train_size = s.train_size;
  spec.test_size = s.test_size;
  spec.seed ^= s.seed;
  return data::generate(spec, train);
}

inline train::TrainerOptions trainer_options(const Scale& s, float lr = 3e-3F) {
  train::TrainerOptions opts;
  opts.epochs = s.epochs;
  opts.batch_size = s.batch;
  opts.lr = lr;
  opts.seed = s.seed;
  return opts;
}

/// Section banner.
inline void banner(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void note(const std::string& text) { std::printf("%s\n", text.c_str()); }

/// "paper X | measured Y" row helper.
inline void row(const std::string& label, const std::string& paper, const std::string& measured) {
  std::printf("  %-34s paper: %-18s measured: %s\n", label.c_str(), paper.c_str(),
              measured.c_str());
}

inline std::string pct(float v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f%%", 100.F * v);
  return buf;
}

inline std::string ms(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f ms", v);
  return buf;
}

inline std::string ratio(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", v);
  return buf;
}

/// Insert or replace one top-level section of a BENCH_*.json file in place.
/// Several harnesses contribute sections to the same file (engine_speedup
/// owns the base document; resnet_deploy and fig7_latency_grid merge their
/// F2-vs-F4 trajectories into it), so each section must be a single line of
/// valid JSON — this helper only understands lines it wrote itself. A
/// missing file starts as an empty object.
inline bool merge_json_section(const std::string& path, const std::string& key,
                               const std::string& value_one_line) {
  std::string text = "{\n}\n";
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      if (!ss.str().empty()) text = ss.str();
    }
  }
  const std::size_t open = text.find('{');
  if (open == std::string::npos) return false;
  // Drop a previous copy of this section (always one full line, ending ",").
  const std::string marker = "\"" + key + "\":";
  const std::size_t at = text.find(marker);
  if (at != std::string::npos) {
    const std::size_t line_start = text.rfind('\n', at);
    const std::size_t line_end = text.find('\n', at);
    if (line_start == std::string::npos || line_end == std::string::npos) return false;
    text.erase(line_start, line_end - line_start);
  }
  // Re-insert right after the opening brace; the trailing comma is valid
  // because an existing document always has at least one key after it.
  const bool empty_object = text.find_first_not_of(" \n\t", open + 1) != std::string::npos &&
                            text[text.find_first_not_of(" \n\t", open + 1)] == '}';
  const std::string line =
      "\n  \"" + key + "\": " + value_one_line + (empty_object ? "" : ",");
  text.insert(open + 1, line);
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << text;
  return true;
}

}  // namespace wa::bench
