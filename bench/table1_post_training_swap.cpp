// Table 1 reproduction: train a ResNet-18 with standard convolutions, then
// REPLACE the convolution algorithm with Winograd F2/F4/F6 at evaluation
// time (the common deployment practice), at FP32 / INT16 / INT8.
//
// Paper result: fine in full precision, catastrophic once quantized beyond
// F2 (93% -> 17-19% at F4, -> 11% at F6). The moving averages (observers)
// are warmed up on the training set before evaluating, exactly as the paper
// footnote describes.
#include <cstdio>

#include "bench_common.hpp"
#include "models/resnet.hpp"

namespace {

using namespace wa;

struct PaperCell {
  const char* algo;
  double fp32, int16, int8;
};
const PaperCell kPaper[] = {
    {"direct", 93.16, 93.60, 93.22},
    {"F2", 93.16, 93.48, 93.21},
    {"F4", 93.14, 19.25, 17.36},
    {"F6", 93.11, 11.41, 10.95},
};

}  // namespace

int main() {
  using namespace wa;
  const auto scale = bench::scale_from_env();
  bench::banner("Table 1 — post-training swap of direct conv -> Winograd under quantization");

  const auto train_set = bench::make_split(data::cifar10_like(), scale, true);
  const auto val_set = bench::make_split(data::cifar10_like(), scale, false);

  // 1) Train the float model with standard convolutions.
  Rng rng(scale.seed);
  models::ResNetConfig base_cfg;
  base_cfg.width_mult = scale.width_mult;
  models::ResNet18 base(base_cfg, rng);
  train::Trainer trainer(base, train_set, val_set, bench::trainer_options(scale));
  std::printf("training the direct-convolution FP32 model (%d epochs, %lld samples)...\n",
              scale.epochs, static_cast<long long>(scale.train_size));
  trainer.fit();
  const auto source_state = base.state_dict();
  const float direct_fp32 = trainer.evaluate(val_set);

  // 2) Swap algorithms/bit-widths at evaluation time.
  std::printf("\n  %-10s | %-22s | %-22s | %-22s\n", "conv", "32-bit", "16-bit", "8-bit");
  for (const auto& paper : kPaper) {
    std::printf("  %-10s |", paper.algo);
    const double paper_cells[3] = {paper.fp32, paper.int16, paper.int8};
    const int bit_options[3] = {32, 16, 8};
    for (int bi = 0; bi < 3; ++bi) {
      float acc;
      models::ResNetConfig cfg = base_cfg;
      cfg.qspec = quant::QuantSpec{bit_options[bi]};
      std::string a = paper.algo;
      if (a == "direct") {
        cfg.algo = nn::ConvAlgo::kIm2row;
      } else if (a == "F2") {
        cfg.algo = nn::ConvAlgo::kWinograd2;
      } else if (a == "F4") {
        cfg.algo = nn::ConvAlgo::kWinograd4;
      } else {
        cfg.algo = nn::ConvAlgo::kWinograd6;
      }
      cfg.pin_last_stage_to_f2 = false;  // Table 1 swaps EVERY layer
      cfg.flex_transforms = false;       // static Cook-Toom transforms
      Rng r2(scale.seed + 1);
      models::ResNet18 swapped(cfg, r2);
      swapped.load_state_intersect(source_state);
      train::Trainer ev(swapped, train_set, val_set, bench::trainer_options(scale));
      // Warm up observers (moving averages) without touching weights.
      ev.warmup_observers(8);
      acc = ev.evaluate(val_set);
      std::printf(" paper %6.2f meas %6.2f |", paper_cells[bi], 100.F * acc);
    }
    std::printf("\n");
  }

  std::printf(
      "\nExpected shape: direct and F2 hold at every bit-width; F4/F6 hold at FP32\n"
      "but collapse toward chance under INT16/INT8 (the paper's motivation).\n");
  std::printf("(direct fp32 trained to %s on the synthetic CIFAR-10 analog)\n",
              bench::pct(direct_fp32).c_str());
  return 0;
}
