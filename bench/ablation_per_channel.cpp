// Ablation: per-channel weight scales and affine activations.
//
// Paper §7: "Using other types of quantization would likely help. In
// particular per-channel affine quantization, as in Jacob et al. (2018)."
// This harness runs that experiment on the configuration where the paper
// observed the gap — WAF4 at INT8 with static transforms — and on the flex
// configuration, isolating each ingredient:
//
//   per-layer symmetric   (the paper's scheme, the collapsing baseline)
//   per-channel weights   (one scale per output channel)
//   affine activations    (zero-point for skewed ReLU statistics)
//   both
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_common.hpp"
#include "models/resnet.hpp"

namespace {

using namespace wa;

struct Config {
  const char* label;
  bool per_channel;
  bool affine_activations;
  bool flex;
};

}  // namespace

int main() {
  using namespace wa;
  auto scale = bench::scale_from_env();
  // WAF4 at INT8 is the collapse regime: differentiating quantization
  // schemes needs enough optimizer steps for any variant to learn at all.
  // Give this harness a floor (explicit smoke preset and env overrides win).
  const char* preset = std::getenv("WINO_SCALE");
  if (preset == nullptr || std::string(preset) != "smoke") {
    scale.train_size = std::max<std::int64_t>(scale.train_size, 512);
    scale.epochs = std::max(scale.epochs, 5);
    scale.batch = std::min<std::int64_t>(scale.batch, 16);
  }
  bench::banner("Ablation — per-channel / affine quantization (ResNet-18 WAF4 INT8)");
  bench::note("the paper's discussion predicts these variants close the INT8 F4 gap;");
  bench::note("rows marked flex also learn the transforms, isolating the two mechanisms.");

  const auto train_set = bench::make_split(data::cifar10_like(), scale, true);
  const auto val_set = bench::make_split(data::cifar10_like(), scale, false);

  const Config configs[] = {
      {"per-layer symmetric (paper)", false, false, false},
      {"per-channel weights", true, false, false},
      {"affine activations", false, true, false},
      {"per-channel + affine", true, true, false},
      {"flex, per-layer symmetric", false, false, true},
      {"flex, per-channel + affine", true, true, true},
  };

  float baseline = 0, best_static = 0, flex_base = 0, flex_pc = 0;
  for (const auto& cfg : configs) {
    Rng rng(scale.seed);
    models::ResNetConfig rc;
    rc.width_mult = scale.width_mult;
    rc.algo = nn::ConvAlgo::kWinograd4;
    rc.qspec = quant::QuantSpec{
        8, cfg.affine_activations ? quant::QuantScheme::kAffine : quant::QuantScheme::kSymmetric};
    rc.flex_transforms = cfg.flex;
    rc.per_channel_weights = cfg.per_channel;
    models::ResNet18 net(rc, rng);
    train::Trainer trainer(net, train_set, val_set, bench::trainer_options(scale));
    trainer.fit();
    const float acc = trainer.evaluate(val_set);
    std::printf("  %-32s val acc %s\n", cfg.label, bench::pct(acc).c_str());
    if (std::string(cfg.label).rfind("per-layer symmetric", 0) == 0) baseline = acc;
    if (std::string(cfg.label) == "per-channel + affine") best_static = acc;
    if (std::string(cfg.label) == "flex, per-layer symmetric") flex_base = acc;
    if (std::string(cfg.label) == "flex, per-channel + affine") flex_pc = acc;
  }

  bench::banner("Findings check");
  const float best = std::max({baseline, best_static, flex_base, flex_pc});
  if (best < 0.25F) {
    // No variant cleared 2.5x chance: comparisons below would be noise.
    bench::note("  inconclusive at this scale (nothing trained past 2.5x chance);");
    bench::note("  rerun with WINO_SCALE=full or WINO_EPOCHS/WINO_TRAIN raised.");
    return 0;
  }
  bench::row("richer quantization helps static F4", "predicted by paper §7",
             best_static >= baseline ? "yes" : "NO");
  bench::row("still combines with flex transforms", "complementary mechanisms",
             flex_pc >= flex_base - 0.03F ? "yes" : "NO");
  return 0;
}
