// Figure 8 reproduction: per-layer latency of ResNet-18-style layers,
// normalised to im2row, with the Winograd cost split into input transform /
// GEMM / output transform — on both Cortex-A73 and Cortex-A53.
#include <cstdio>

#include "bench_common.hpp"
#include "latency/cost_model.hpp"

namespace {

using namespace wa;
using latency::DType;
using latency::LatencyModel;
using latency::LayerDesc;

struct LayerCase {
  const char* label;
  std::int64_t cin, cout, hw;
};

// The three layers Fig. 8 shows.
const LayerCase kCases[] = {
    {"32x32 inCh:3 outCh:32", 3, 32, 32},
    {"16x16 inCh:128 outCh:128", 128, 128, 16},
    {"8x8  inCh:256 outCh:256", 256, 256, 8},
};

LayerDesc make_layer(const LayerCase& c, nn::ConvAlgo algo) {
  LayerDesc l;
  l.geom.batch = 1;
  l.geom.in_channels = c.cin;
  l.geom.out_channels = c.cout;
  l.geom.height = c.hw;
  l.geom.width = c.hw;
  l.geom.kernel = 3;
  l.geom.pad = 1;
  l.algo = algo;
  l.dtype = DType::kFp32;
  return l;
}

void run_core(const latency::CoreSpec& spec) {
  const LatencyModel model(spec);
  std::printf("\n%s (FP32, normalised to im2row; Winograd split in/gemm/out)\n",
              spec.name.c_str());
  std::printf("  %-26s %8s %8s %8s %8s %8s\n", "layer", "im2row", "im2col", "F2", "F4", "F6");
  for (const auto& c : kCases) {
    const double base = model.conv_cost(make_layer(c, nn::ConvAlgo::kIm2row)).total_ms();
    const double col = model.conv_cost(make_layer(c, nn::ConvAlgo::kIm2col)).total_ms();
    std::printf("  %-26s %8.2f %8.2f", c.label, 1.0, col / base);
    for (auto algo : {nn::ConvAlgo::kWinograd2, nn::ConvAlgo::kWinograd4, nn::ConvAlgo::kWinograd6}) {
      const auto bd = model.conv_cost(make_layer(c, algo));
      std::printf(" %8.2f", bd.total_ms() / base);
    }
    std::printf("\n");
    // Stage split for each Winograd config.
    for (auto [algo, name] : {std::pair{nn::ConvAlgo::kWinograd2, "F2"},
                              std::pair{nn::ConvAlgo::kWinograd4, "F4"},
                              std::pair{nn::ConvAlgo::kWinograd6, "F6"}}) {
      const auto bd = model.conv_cost(make_layer(c, algo));
      std::printf("      %-4s in %5.1f%%  gemm %5.1f%%  out %5.1f%%\n", name,
                  100 * bd.input_transform_ms / bd.total_ms(), 100 * bd.gemm_ms / bd.total_ms(),
                  100 * bd.output_transform_ms / bd.total_ms());
    }
  }
}

}  // namespace

int main() {
  using namespace wa;
  bench::banner("Figure 8 — per-layer latency breakdown (normalised to im2row)");
  run_core(latency::cortex_a73());
  run_core(latency::cortex_a53());

  bench::banner("Findings check");
  const LatencyModel a73(latency::cortex_a73());
  const LatencyModel a53(latency::cortex_a53());

  // Input layer: transforms are 65% (A73) / 75% (A53) of the Winograd cost.
  for (auto [model, name, paper] :
       {std::tuple{&a73, "A73", "~65%"}, std::tuple{&a53, "A53", "~75%"}}) {
    const auto bd = model->conv_cost(make_layer(kCases[0], nn::ConvAlgo::kWinograd4));
    const double share = (bd.input_transform_ms + bd.output_transform_ms) / bd.total_ms();
    bench::row(std::string("transform share, input layer, ") + name, paper, bench::pct(static_cast<float>(share)));
  }

  // Winograd beats im2row on the deeper layers of both cores, less so on A53.
  auto speedup = [](const LatencyModel& m, const LayerCase& c, nn::ConvAlgo algo) {
    return m.conv_cost(make_layer(c, nn::ConvAlgo::kIm2row)).total_ms() /
           m.conv_cost(make_layer(c, algo)).total_ms();
  };
  bench::row("F4 speedup 16x16/128ch, A73", ">1 (bar < 1.0)",
             bench::ratio(speedup(a73, kCases[1], nn::ConvAlgo::kWinograd4)));
  bench::row("F4 speedup 16x16/128ch, A53", ">1 but smaller",
             bench::ratio(speedup(a53, kCases[1], nn::ConvAlgo::kWinograd4)));
  return 0;
}
