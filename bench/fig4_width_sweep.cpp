// Figure 4 reproduction: winograd-aware ResNet-18 accuracy across width
// multipliers, bit-widths (32/16/10/8) and convolution configurations
// (im2row, F2[-flex], F4[-flex], F6[-flex]).
//
// Paper shape: at FP32 everything ties; under quantization, -flex strictly
// outperforms static transforms (up to ~10% at F4/F6 INT8), and accuracy
// scales with width. Default run sweeps a reduced grid; env knobs expand it
// (WINO_WIDTHS="0.125,0.25,0.5", WINO_BITS="32,16,10,8").
#include <cstdio>
#include <sstream>
#include <vector>

#include <algorithm>
#include <cstdlib>
#include <string>
#include "bench_common.hpp"
#include "models/resnet.hpp"

namespace {

using namespace wa;

std::vector<double> parse_list(const char* env, std::vector<double> fallback) {
  const char* v = std::getenv(env);
  if (v == nullptr) return fallback;
  std::vector<double> out;
  std::stringstream ss(v);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(std::atof(item.c_str()));
  return out.empty() ? fallback : out;
}

struct Algo {
  const char* label;
  nn::ConvAlgo algo;
  bool flex;
};
const Algo kAlgos[] = {
    {"im2row", nn::ConvAlgo::kIm2row, false}, {"F2", nn::ConvAlgo::kWinograd2, false},
    {"F2-flex", nn::ConvAlgo::kWinograd2, true}, {"F4", nn::ConvAlgo::kWinograd4, false},
    {"F4-flex", nn::ConvAlgo::kWinograd4, true}, {"F6", nn::ConvAlgo::kWinograd6, false},
    {"F6-flex", nn::ConvAlgo::kWinograd6, true},
};

}  // namespace

int main() {
  using namespace wa;
  auto scale = bench::scale_from_env();
  // The INT8 flex-vs-static comparisons need every variant to get enough
  // optimizer steps to leave the collapse regime (same floor as fig5 and the
  // quantization ablations; smoke preset and env overrides win).
  const char* preset = std::getenv("WINO_SCALE");
  if (preset == nullptr || std::string(preset) != "smoke") {
    scale.train_size = std::max<std::int64_t>(scale.train_size, 512);
    scale.epochs = std::max(scale.epochs, 5);
    scale.batch = std::min<std::int64_t>(scale.batch, 16);
  }
  bench::banner("Figure 4 — accuracy vs width multiplier x bit-width x conv configuration");

  const auto widths = parse_list("WINO_WIDTHS", {0.125});
  const auto bits = parse_list("WINO_BITS", {8});  // add 32,16,10 for the full figure

  const auto train_set = bench::make_split(data::cifar10_like(), scale, true);
  const auto val_set = bench::make_split(data::cifar10_like(), scale, false);

  std::printf("paper reference (width 1.0): FP32 all configs ~93%%; INT8: im2row/F2 ~93%%,\n");
  std::printf("F4-static/F6-static collapse (<80%%), F4-flex/F6-flex recover ~5-10%% over static.\n\n");

  // results[bits][algo] for the findings check at the last width.
  std::map<int, std::map<std::string, float>> results;
  for (double width : widths) {
    for (double b : bits) {
      const int bi = static_cast<int>(b);
      std::printf("width %.3f, %d-bit:\n", width, bi);
      for (const auto& a : kAlgos) {
        Rng rng(scale.seed);
        models::ResNetConfig cfg;
        cfg.width_mult = static_cast<float>(width);
        cfg.algo = a.algo;
        cfg.qspec = quant::QuantSpec{bi};
        cfg.flex_transforms = a.flex;
        models::ResNet18 net(cfg, rng);
        train::Trainer trainer(net, train_set, val_set, bench::trainer_options(scale));
        trainer.fit();
        const float acc = trainer.evaluate(val_set);
        std::printf("  %-8s %s\n", a.label, bench::pct(acc).c_str());
        results[bi][a.label] = acc;
      }
    }
  }

  bench::banner("Findings check");
  if (results.contains(8)) {
    auto& r8 = results[8];
    // The flex-vs-static comparisons are only meaningful once at least one
    // variant has trained past noise; the collapse regime needs the fig5
    // recipe (thousands of steps) to open the gap on this substrate.
    auto flex_vs_static = [&](const char* flex, const char* st, const char* paper) {
      if (std::max(r8[flex], r8[st]) < 0.25F) {
        bench::row(std::string("INT8: ") + flex + " > " + st, paper,
                   "inconclusive (both below 2.5x chance at this scale; see fig5)");
      } else {
        bench::row(std::string("INT8: ") + flex + " > " + st, paper,
                   r8[flex] > r8[st] ? "yes" : "NO");
      }
    };
    flex_vs_static("F4-flex", "F4", "~+10%");
    flex_vs_static("F6-flex", "F6", "~+5%");
    bench::row("INT8: F2 close to im2row", "within noise",
               r8["F2"] >= r8["im2row"] - 0.08F ? "yes" : "NO");
  }
  if (results.contains(32)) {
    auto& r32 = results[32];
    float mn = 1.F, mx = 0.F;
    for (const auto& [k, v] : r32) {
      mn = std::min(mn, v);
      mx = std::max(mx, v);
    }
    bench::row("FP32: all configs tie", "within ~1%", (mx - mn) < 0.10F ? "yes" : "spread>10%");
  }
  return 0;
}
