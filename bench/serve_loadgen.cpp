// Open-loop network load harness for the serving stack: seeded Poisson
// arrivals over real TCP connections into the NetFrontend, mixed models
// from the zoo and mixed priority classes, reporting per-class p50/p95/p99
// versus offered load.
//
// Open-loop is the point: every request's send time comes from a
// pre-committed arrival schedule (serve/net/poisson.hpp), so when the
// server falls behind, latency grows — the harness never slows down to
// match the server the way a closed loop silently does. Latency is
// measured from the *scheduled* arrival, so sender lateness (a stalled
// connection) counts against the server, as it would in production.
//
// Env knobs (WA_LOAD_*):
//   RPS      total offered load across all connections   (default 150)
//   SECONDS  measurement duration                        (default 4)
//   CONNS    TCP connections, each its own Poisson stream (default 8)
//   WORKERS  server worker threads                       (default 4)
//   SHARDS   worker-pool shards (0 = auto NUMA)          (default 0)
//   SEED     base RNG seed (schedule + mix)              (default 42)
//   SLO_MS   p99 SLO gate over completed requests; when > 0 the process
//            exits 1 on violation (the CI gate)          (default 0)
//
// Usage: build/bench/serve_loadgen [json=bench/BENCH_serve.json]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "deploy/pipeline.hpp"
#include "models/resnext.hpp"
#include "models/squeezenet.hpp"
#include "serve/net/client.hpp"
#include "serve/net/frontend.hpp"
#include "serve/net/poisson.hpp"
#include "serve/server.hpp"
#include "telemetry/metrics.hpp"

namespace {

using namespace wa;
using Clock = std::chrono::steady_clock;

/// Compile one calibrated (not trained — latency is the subject) zoo model.
template <typename Model, typename Config, typename Compile>
deploy::Int8Pipeline compiled_zoo(Config cfg, Compile&& compile, std::uint64_t seed) {
  Rng rng(seed);
  Model net(cfg, rng);
  net.set_training(true);
  for (int i = 0; i < 2; ++i) {
    net.forward(ag::Variable(Tensor::randn({8, 3, 32, 32}, rng), false));
  }
  deploy::Int8Pipeline pipe = compile(net);
  pipe.freeze_scales(Tensor::randn({8, 3, 32, 32}, rng));
  return pipe;
}

struct Record {
  std::uint64_t sched_ns = 0;  ///< scheduled arrival, ns from run start
  std::uint8_t cls = 1;
  std::int8_t status = -1;  ///< -1 pending, else net::Status
  double latency_ms = 0.0;  ///< completion - scheduled arrival
};

struct ConnStats {
  std::vector<Record> records;
  std::mutex mu;
  std::atomic<std::uint64_t> sent{0};
  std::atomic<bool> sender_done{false};
};

struct ClassSummary {
  std::uint64_t ok = 0;
  double p50 = 0, p95 = 0, p99 = 0, mean = 0;
};

ClassSummary summarize(std::vector<double>& lat_ms) {
  ClassSummary s;
  s.ok = lat_ms.size();
  if (lat_ms.empty()) return s;
  std::sort(lat_ms.begin(), lat_ms.end());
  s.p50 = telemetry::percentile_sorted(lat_ms, 0.50);
  s.p95 = telemetry::percentile_sorted(lat_ms, 0.95);
  s.p99 = telemetry::percentile_sorted(lat_ms, 0.99);
  double sum = 0;
  for (const double v : lat_ms) sum += v;
  s.mean = sum / static_cast<double>(lat_ms.size());
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "bench/BENCH_serve.json";
  const double rps = bench::env_double("WA_LOAD_RPS", 150.0);
  const double secs = bench::env_double("WA_LOAD_SECONDS", 4.0);
  const int conns = static_cast<int>(bench::env_int("WA_LOAD_CONNS", 8));
  const int workers = static_cast<int>(bench::env_int("WA_LOAD_WORKERS", 4));
  const int shards = static_cast<int>(bench::env_int("WA_LOAD_SHARDS", 0));
  const auto seed = static_cast<std::uint64_t>(bench::env_int("WA_LOAD_SEED", 42));
  const double slo_ms = bench::env_double("WA_LOAD_SLO_MS", 0.0);

  bench::banner("Serving load harness: open-loop Poisson over TCP");
  std::printf("  offered %.0f req/s for %.1fs over %d conns, %d workers\n", rps, secs, conns,
              workers);

  // The zoo mix: both compiled models behind one server.
  models::SqueezeNetConfig scfg;
  scfg.width_mult = 0.25F;
  scfg.algo = nn::ConvAlgo::kWinograd2;
  scfg.qspec = quant::QuantSpec{8};
  models::ResNeXtConfig rcfg;
  rcfg.width_mult = 0.25F;
  rcfg.algo = nn::ConvAlgo::kWinograd2;
  rcfg.qspec = quant::QuantSpec{8};
  std::printf("  compiling zoo models...\n");
  deploy::Int8Pipeline squeeze = compiled_zoo<models::SqueezeNet>(
      scfg, [](models::SqueezeNet& m) { return deploy::compile_squeezenet(m); }, 7);
  deploy::Int8Pipeline resnext = compiled_zoo<models::ResNeXt20>(
      rcfg, [](models::ResNeXt20& m) { return deploy::compile_resnext(m); }, 9);

  serve::ServerOptions sopts;
  sopts.workers = workers;
  sopts.shards = shards;
  sopts.queue_capacity = 1024;
  sopts.batch.max_batch = 8;
  sopts.batch.max_delay_us = 200;
  serve::InferenceServer server(sopts);
  server.add_model("squeezenet", std::move(squeeze));
  server.add_model("resnext", std::move(resnext));
  std::printf("  server up: %d shards\n", server.shards());

  serve::net::NetFrontend frontend(server);
  const std::uint16_t port = frontend.port();
  std::printf("  frontend on 127.0.0.1:%u\n", unsigned{port});

  // Per-connection open-loop streams. Each connection owns one Poisson
  // schedule at rate/conns so the superposition offers `rps` total.
  const char* model_names[2] = {"squeezenet", "resnext"};
  Rng input_rng(seed);
  const Tensor image = Tensor::randn({1, 3, 32, 32}, input_rng, 1.2F);
  std::vector<std::unique_ptr<ConnStats>> stats;
  std::vector<std::thread> threads;
  const auto t0 = Clock::now();
  const auto horizon =
      t0 + std::chrono::nanoseconds(static_cast<std::int64_t>(secs * 1e9));
  for (int ci = 0; ci < conns; ++ci) stats.push_back(std::make_unique<ConnStats>());

  for (int ci = 0; ci < conns; ++ci) {
    ConnStats* csp = stats[ci].get();
    auto client = std::make_shared<serve::net::Client>("127.0.0.1", port);
    // Sender: walk the pre-committed schedule until the horizon.
    threads.emplace_back([&, ci, client, csp] {
      ConnStats& cs = *csp;
      serve::net::PoissonArrivals arrivals(rps / conns, seed + static_cast<std::uint64_t>(ci));
      std::mt19937_64 mix(seed * 1000 + static_cast<std::uint64_t>(ci));
      std::uint64_t seq = 0;
      for (;;) {
        const std::uint64_t sched_ns = arrivals.next_send_ns();
        const auto when = t0 + std::chrono::nanoseconds(sched_ns);
        if (when >= horizon) break;
        std::this_thread::sleep_until(when);
        // 20% high (SLO deadline when gating), 70% normal, 10% low.
        const std::uint64_t r = mix() % 10;
        serve::SubmitOptions opts;
        opts.priority = r < 2   ? serve::Priority::kHigh
                        : r < 9 ? serve::Priority::kNormal
                                : serve::Priority::kLow;
        if (opts.priority == serve::Priority::kHigh && slo_ms > 0) {
          opts.deadline_us = static_cast<std::int64_t>(slo_ms * 1000);
        }
        const char* model = model_names[mix() % 2];
        {
          std::lock_guard<std::mutex> lk(cs.mu);
          cs.records.push_back({sched_ns, static_cast<std::uint8_t>(opts.priority), -1, 0.0});
        }
        const std::uint64_t id = (static_cast<std::uint64_t>(ci) << 40) | seq;
        try {
          client->send(id, model, image, opts);
        } catch (const std::exception& e) {
          std::fprintf(stderr, "conn %d send failed: %s\n", ci, e.what());
          break;
        }
        ++seq;
        cs.sent.fetch_add(1, std::memory_order_release);
      }
      cs.sender_done.store(true, std::memory_order_release);
    });
    // Receiver: every sent request gets exactly one response frame.
    threads.emplace_back([&, ci, client, csp] {
      ConnStats& cs = *csp;
      std::uint64_t received = 0;
      for (;;) {
        if (received >= cs.sent.load(std::memory_order_acquire) &&
            cs.sender_done.load(std::memory_order_acquire)) {
          break;
        }
        serve::net::Response resp;
        try {
          resp = client->recv();
        } catch (const std::exception& e) {
          std::fprintf(stderr, "conn %d recv failed: %s\n", ci, e.what());
          break;
        }
        const auto now_ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0).count());
        const std::uint64_t seq = resp.request_id & ((std::uint64_t{1} << 40) - 1);
        std::lock_guard<std::mutex> lk(cs.mu);
        if (seq < cs.records.size()) {
          Record& rec = cs.records[seq];
          rec.status = static_cast<std::int8_t>(resp.status);
          rec.latency_ms = static_cast<double>(now_ns - rec.sched_ns) / 1e6;
        }
        ++received;
      }
    });
  }
  for (auto& t : threads) t.join();
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - t0).count();
  frontend.stop();

  // ---- aggregate -----------------------------------------------------------
  std::vector<double> lat_all;
  std::vector<double> lat_cls[serve::kPriorityClasses];
  std::uint64_t sent = 0, ok = 0, lost = 0;
  std::uint64_t by_status[8] = {};
  for (const auto& cs : stats) {
    for (const Record& r : cs->records) {
      ++sent;
      if (r.status < 0) {
        ++lost;
        continue;
      }
      if (r.status < 8) ++by_status[r.status];
      if (r.status == 0) {
        ++ok;
        lat_all.push_back(r.latency_ms);
        lat_cls[r.cls].push_back(r.latency_ms);
      }
    }
  }
  const ClassSummary all = summarize(lat_all);
  ClassSummary cls[serve::kPriorityClasses];
  for (std::size_t c = 0; c < serve::kPriorityClasses; ++c) cls[c] = summarize(lat_cls[c]);
  const double achieved = static_cast<double>(ok) / wall_s;

  std::printf("\n  %-10s %8s %9s %9s %9s %9s\n", "class", "ok", "p50 ms", "p95 ms", "p99 ms",
              "mean ms");
  const char* cls_names[3] = {"high", "normal", "low"};
  for (std::size_t c = 0; c < serve::kPriorityClasses; ++c) {
    std::printf("  %-10s %8llu %9.2f %9.2f %9.2f %9.2f\n", cls_names[c],
                static_cast<unsigned long long>(cls[c].ok), cls[c].p50, cls[c].p95, cls[c].p99,
                cls[c].mean);
  }
  std::printf("  %-10s %8llu %9.2f %9.2f %9.2f %9.2f\n", "overall",
              static_cast<unsigned long long>(all.ok), all.p50, all.p95, all.p99, all.mean);
  std::printf("\n  sent %llu  ok %llu  queue_full %llu  deadline %llu  errors %llu  lost %llu\n",
              static_cast<unsigned long long>(sent), static_cast<unsigned long long>(ok),
              static_cast<unsigned long long>(by_status[1]),
              static_cast<unsigned long long>(by_status[2]),
              static_cast<unsigned long long>(by_status[5] + by_status[6]),
              static_cast<unsigned long long>(lost));
  std::printf("  achieved %.1f req/s of %.1f offered\n", achieved, rps);

  const bool slo_armed = slo_ms > 0;
  const bool slo_pass = !slo_armed || all.p99 <= slo_ms;
  if (slo_armed) {
    std::printf("  SLO gate: p99 %.2fms %s %.2fms — %s\n", all.p99, slo_pass ? "<=" : ">",
                slo_ms, slo_pass ? "PASS" : "FAIL");
  }

  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n  \"offered_rps\": %.1f,\n  \"duration_s\": %.2f,\n  \"conns\": %d,\n"
                 "  \"workers\": %d,\n  \"shards\": %d,\n  \"seed\": %llu,\n"
                 "  \"sent\": %llu,\n  \"ok\": %llu,\n  \"queue_full\": %llu,\n"
                 "  \"deadline_rejected\": %llu,\n  \"lost\": %llu,\n"
                 "  \"achieved_rps\": %.1f,\n",
                 rps, wall_s, conns, workers, server.shards(),
                 static_cast<unsigned long long>(seed), static_cast<unsigned long long>(sent),
                 static_cast<unsigned long long>(ok),
                 static_cast<unsigned long long>(by_status[1]),
                 static_cast<unsigned long long>(by_status[2]),
                 static_cast<unsigned long long>(lost), achieved);
    const auto dump_cls = [f](const char* name, const ClassSummary& s, const char* tail) {
      std::fprintf(f,
                   "  \"%s\": {\"ok\": %llu, \"p50_ms\": %.3f, \"p95_ms\": %.3f, "
                   "\"p99_ms\": %.3f, \"mean_ms\": %.3f}%s\n",
                   name, static_cast<unsigned long long>(s.ok), s.p50, s.p95, s.p99, s.mean,
                   tail);
    };
    dump_cls("high", cls[0], ",");
    dump_cls("normal", cls[1], ",");
    dump_cls("low", cls[2], ",");
    dump_cls("overall", all, ",");
    std::fprintf(f, "  \"slo_ms\": %.1f,\n  \"slo_pass\": %s\n}\n", slo_ms,
                 slo_pass ? "true" : "false");
    std::fclose(f);
    std::printf("  wrote %s\n", json_path.c_str());
  } else {
    std::printf("  WARNING: could not write %s\n", json_path.c_str());
  }
  return slo_pass ? 0 : 1;
}
