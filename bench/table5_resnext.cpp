// Table 5 reproduction: ResNeXt-20 (8x16) with grouped Winograd-aware 3x3
// layers, static vs learnt transforms, FP32 and INT8.
//
// Paper shape: identical story to SqueezeNet — static F4 collapses at INT8
// (93.4 -> 76.7% CIFAR-10), flex recovers (93.3%), and with only 6
// searchable 3x3 layers the flex models can even beat the im2row baseline.
#include <cstdio>

#include "bench_common.hpp"
#include "models/resnext.hpp"

namespace {

using namespace wa;

struct Config {
  const char* label;
  nn::ConvAlgo algo;
  bool flex;
  int bits;
  double paper_c10;
};

// As with Table 4, the default run keeps two representative FP32 rows and
// every INT8 row (where static F4 collapses and flex recovers).
const Config kConfigs[] = {
    {"im2row fp32", nn::ConvAlgo::kIm2row, false, 32, 93.17},
    {"WAF4-flex fp32", nn::ConvAlgo::kWinograd4, true, 32, 93.15},
    {"im2row int8", nn::ConvAlgo::kIm2row, false, 8, 93.40},
    {"WAF2-flex int8", nn::ConvAlgo::kWinograd2, true, 8, 93.11},
    {"WAF4-static int8", nn::ConvAlgo::kWinograd4, false, 8, 76.73},
    {"WAF4-flex int8", nn::ConvAlgo::kWinograd4, true, 8, 93.29},
};

}  // namespace

int main() {
  using namespace wa;
  const auto scale = bench::scale_from_env();
  bench::banner("Table 5 — ResNeXt-20 (8x16): grouped Winograd-aware layers");

  const auto train_set = bench::make_split(data::cifar10_like(), scale, true);
  const auto val_set = bench::make_split(data::cifar10_like(), scale, false);

  float static_f4_int8 = 0, flex_f4_int8 = 0;
  for (const auto& cfg : kConfigs) {
    Rng rng(scale.seed);
    models::ResNeXtConfig rc;
    rc.width_mult = 0.125F;
    rc.algo = cfg.algo;
    rc.qspec = quant::QuantSpec{cfg.bits};
    rc.flex_transforms = cfg.flex;
    models::ResNeXt20 net(rc, rng);
    train::Trainer trainer(net, train_set, val_set, bench::trainer_options(scale));
    trainer.fit();
    const float acc = trainer.evaluate(val_set);
    bench::row(cfg.label, bench::pct(static_cast<float>(cfg.paper_c10 / 100.0)),
               bench::pct(acc));
    if (std::string(cfg.label) == "WAF4-static int8") static_f4_int8 = acc;
    if (std::string(cfg.label) == "WAF4-flex int8") flex_f4_int8 = acc;
  }

  bench::banner("Findings check");
  bench::row("flex recovers static-F4 INT8 drop", "76.7 -> 93.3",
             flex_f4_int8 > static_f4_int8 ? "yes" : "NO");
  return 0;
}
