// Ablation: per-stage bit-width diversity inside the Winograd pipeline.
//
// The paper (§3.2, "Quantization diversity") observes that the Winograd-
// aware pipeline has four distinct intermediate tensors — GgGᵀ, BᵀdB, the
// Hadamard product and AᵀMA — and that "each of these can be quantized to a
// different number of bits". Its discussion section (§7) adds that "enabling
// different bit-widths throughout Eq. 1 could help mitigate the accuracy
// drop" of F4/F6 at INT8. The paper never runs that experiment; this harness
// does.
//
// Setup: ResNet-18 WAF4 (static transforms — the configuration that
// collapses at INT8), all stages at the model bit-width except one stage
// promoted to INT16. The Hadamard stage accumulates products of two
// quantized tensors, so it is where the precision squeeze bites hardest —
// promoting it should recover most of the gap at a fraction of the cost of
// promoting everything.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <optional>

#include "bench_common.hpp"
#include "models/resnet.hpp"

namespace {

using namespace wa;

struct Config {
  const char* label;
  int base_bits;
  // Which stage (if any) is promoted to INT16.
  std::optional<quant::QuantSpec> u, v, m, y;
};

}  // namespace

int main() {
  using namespace wa;
  auto scale = bench::scale_from_env();
  // Same scale floor as the other collapse-regime ablations: WAF4-static at
  // INT8 needs enough steps for any stage promotion to show an effect.
  const char* preset = std::getenv("WINO_SCALE");
  if (preset == nullptr || std::string(preset) != "smoke") {
    scale.train_size = std::max<std::int64_t>(scale.train_size, 512);
    scale.epochs = std::max(scale.epochs, 5);
    scale.batch = std::min<std::int64_t>(scale.batch, 16);
  }
  bench::banner("Ablation — quantization diversity across Winograd stages (WAF4, static)");
  bench::note("paper §3.2/§7 proposes per-stage bit-widths but does not evaluate them;");
  bench::note("all rows train ResNet-18 WAF4-static, base INT8, one stage promoted to INT16.");

  const auto train_set = bench::make_split(data::cifar10_like(), scale, true);
  const auto val_set = bench::make_split(data::cifar10_like(), scale, false);

  const quant::QuantSpec int16{16};
  const Config configs[] = {
      {"all-int8 (paper default)", 8, {}, {}, {}, {}},
      {"hadamard@int16", 8, {}, {}, int16, {}},
      {"input-transform@int16", 8, {}, int16, {}, {}},
      {"weight-transform@int16", 8, int16, {}, {}, {}},
      {"output-transform@int16", 8, {}, {}, {}, int16},
      {"all-int16", 16, {}, {}, {}, {}},
  };

  float all8 = 0, had16 = 0, all16 = 0;
  for (const auto& cfg : configs) {
    Rng rng(scale.seed);
    models::ResNetConfig rc;
    rc.width_mult = scale.width_mult;
    rc.algo = nn::ConvAlgo::kWinograd4;
    rc.qspec = quant::QuantSpec{cfg.base_bits};
    rc.flex_transforms = false;
    rc.qspec_u = cfg.u;
    rc.qspec_v = cfg.v;
    rc.qspec_m = cfg.m;
    rc.qspec_y = cfg.y;
    models::ResNet18 net(rc, rng);
    train::Trainer trainer(net, train_set, val_set, bench::trainer_options(scale));
    trainer.fit();
    const float acc = trainer.evaluate(val_set);
    std::printf("  %-28s val acc %s\n", cfg.label, bench::pct(acc).c_str());
    if (std::string(cfg.label).rfind("all-int8", 0) == 0) all8 = acc;
    if (std::string(cfg.label) == "hadamard@int16") had16 = acc;
    if (std::string(cfg.label) == "all-int16") all16 = acc;
  }

  bench::banner("Findings check");
  if (std::max({all8, had16, all16}) < 0.25F) {
    bench::note("  inconclusive at this scale (nothing trained past 2.5x chance);");
    bench::note("  rerun with WINO_SCALE=full or WINO_EPOCHS/WINO_TRAIN raised.");
    return 0;
  }
  bench::row("one int16 stage helps int8 WAF4", "paper: proposed, untested",
             had16 >= all8 ? "yes (hadamard)" : "NO");
  bench::row("full int16 bounds the recovery", "expected ordering",
             all16 >= had16 - 0.03F ? "yes" : "NO");
  return 0;
}
