// Per-stage latency breakdown of the compiled int8 ResNet-18 pipeline — the
// deployment-side view of the paper's Tables 2-3 workload.
//
// Builds the paper's pool-instead-of-stride ResNet-18 at a given width,
// calibrates its observers on synthetic CIFAR-shaped batches, compiles it
// with compile_resnet18, and reports where a forward pass spends its time,
// stage by stage. Also prints the perf counters before/after the timed runs
// to document that no weight transform or repack happens per forward.
//
// Also reports the compiler middle-end's effect (src/deploy/passes):
// planner-on vs planner-off latency and peak activation memory, with the
// >= 30% peak-reduction acceptance bar for this workload.
//
// Finally, the F2-vs-F4 trajectory of the per-tap requantization work:
// deployed-vs-QAT agreement and per-stage latency for F2 (per-tensor), F4
// per-tensor (the accuracy cliff) and F4 per-tap (tap_group_size=1), merged
// into BENCH_engine.json under "resnet_f2_vs_f4".
//
//   build/bench/resnet_deploy [width_mult=0.25] [batch=1] [algo=im2row|f2]
//                             [json=BENCH_engine.json]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

#include "backend/perf_counters.hpp"
#include "bench_common.hpp"
#include "data/synthetic.hpp"
#include "deploy/passes/passes.hpp"
#include "deploy/pipeline.hpp"

int main(int argc, char** argv) {
  using namespace wa;
  const float width = argc > 1 ? static_cast<float>(std::atof(argv[1])) : 0.25F;
  const std::int64_t batch = argc > 2 ? std::atoll(argv[2]) : 1;
  const bool f2 = argc > 3 && std::strcmp(argv[3], "f2") == 0;

  Rng rng(42);
  models::ResNetConfig cfg;
  cfg.width_mult = width;
  cfg.qspec = quant::QuantSpec{8};
  if (f2) cfg.algo = nn::ConvAlgo::kWinograd2;
  models::ResNet18 net(cfg, rng);

  // Calibrate: a few training-mode passes warm every observer (layer inputs,
  // Winograd Qx stages, residual-join branches) and the batch-norm stats.
  auto spec = data::cifar10_like();
  spec.train_size = 64;
  const auto calib = data::generate(spec, true);
  net.set_training(true);
  data::DataLoader loader(calib, 16, false);
  for (std::int64_t b = 0; b < loader.batches(); ++b) {
    net.forward(ag::Variable(loader.get(b).images, false));
  }

  deploy::Int8Pipeline pipe = deploy::compile_resnet18(net);
  std::printf("resnet-18 width %.3f, algo %s, batch %lld: %zu pipeline stages\n\n",
              static_cast<double>(width), f2 ? "F2" : "im2row", static_cast<long long>(batch),
              pipe.size());

  const Tensor x = Tensor::randn({batch, 3, 32, 32}, rng);
  pipe.run(x);  // warm-up (first-touch arena growth)

  const std::uint64_t transforms0 = backend::PerfCounters::weight_transforms.load();
  const std::uint64_t repacks0 = backend::PerfCounters::weight_repacks.load();

  constexpr int kReps = 10;
  double total_ms = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    pipe.run(x);
    const auto t1 = std::chrono::steady_clock::now();
    total_ms += std::chrono::duration<double, std::milli>(t1 - t0).count();
  }

  // The breakdown reads each Node's always-available telemetry EMA — no
  // profiled run() needed; the timed forwards above (plus the warm-up) fed
  // the estimators as a matter of course.
  std::printf("%-28s %10s %7s\n", "stage", "ms/fwd", "share");
  std::printf("%-28s %10s %7s\n", "-----", "------", "-----");
  double sum = 0.0;
  for (const auto& node : pipe.nodes()) sum += node.ema.value_ns() / 1e6;
  std::map<std::string, double> by_kind;
  for (std::size_t i = 0; i < pipe.nodes().size(); ++i) {
    const auto& node = pipe.nodes()[i];
    const std::string label = deploy::stage_where(node, i);
    const double ms = node.ema.value_ns() / 1e6;
    std::printf("%-28s %10.4f %6.1f%%\n", label.c_str(), ms, 100.0 * ms / sum);
    // Aggregate by coarse kind: strip the network position from the label.
    std::string kind = "other";
    if (label.find(".add") != std::string::npos) kind = "skip-add";
    else if (label.find(".bn") != std::string::npos) kind = "batch-norm";
    else if (label.find("pool") != std::string::npos) kind = "max-pool";
    else if (label.find("shortcut") != std::string::npos) kind = "1x1 shortcut conv";
    else if (label.find("conv") != std::string::npos) kind = "3x3 conv";
    else if (label == "gap") kind = "avg-pool";
    else if (label == "fc") kind = "linear";
    by_kind[kind] += ms;
  }
  std::printf("\n%-28s %10.4f ms total (avg over %d forwards)\n\n", "", total_ms / kReps, kReps);

  std::printf("by stage kind:\n");
  std::string breakdown_json = "{";
  for (const auto& [kind, ms] : by_kind) {
    std::printf("  %-22s %10.4f ms  %5.1f%%\n", kind.c_str(), ms, 100.0 * ms / sum);
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s\"%s\": %.4f", breakdown_json.size() > 1 ? ", " : "",
                  kind.c_str(), ms);
    breakdown_json += buf;
  }
  char total_buf[64];
  std::snprintf(total_buf, sizeof(total_buf), ", \"total_ms\": %.4f", total_ms / kReps);
  breakdown_json += total_buf;
  breakdown_json += "}";
  {
    const std::string json_path = argc > 4 ? argv[4] : "BENCH_engine.json";
    if (bench::merge_json_section(json_path, "resnet_stage_breakdown", breakdown_json)) {
      std::printf("  merged section \"resnet_stage_breakdown\" into %s\n", json_path.c_str());
    }
  }

  std::printf("\nperf counters over the %d timed forwards: weight_transforms +%llu, "
              "weight_repacks +%llu (both must be 0: everything was prepared at load)\n",
              kReps,
              static_cast<unsigned long long>(backend::PerfCounters::weight_transforms.load() -
                                              transforms0),
              static_cast<unsigned long long>(backend::PerfCounters::weight_repacks.load() -
                                              repacks0));

  // ---- pass-based optimizer: planner-on vs planner-off ----------------------
  // Freeze the one remaining dynamic scale (fc logits) so both pipelines are
  // batch-composition independent and the planner's copy analysis is exact.
  pipe.freeze_scales(Tensor::randn({4, 3, 32, 32}, rng));
  deploy::Int8Pipeline optimized = pipe;
  deploy::passes::OptimizeOptions opt_opts;
  opt_opts.reference_input = {batch, 3, 32, 32};
  const deploy::passes::OptimizeReport report =
      deploy::passes::optimize_pipeline(optimized, opt_opts);

  deploy::RunStats stats_off{}, stats_on{};
  const Tensor base = pipe.run(x, nullptr, &stats_off);
  const Tensor opt_logits = optimized.run(x, nullptr, &stats_on);
  const float diff = Tensor::max_abs_diff(base, opt_logits);

  double off_ms = 0.0, on_ms = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    pipe.run(x);
    auto t1 = std::chrono::steady_clock::now();
    optimized.run(x);
    auto t2 = std::chrono::steady_clock::now();
    off_ms += std::chrono::duration<double, std::milli>(t1 - t0).count();
    on_ms += std::chrono::duration<double, std::milli>(t2 - t1).count();
  }

  const double reduction =
      stats_off.peak_activation_bytes > 0
          ? 100.0 * (1.0 - static_cast<double>(stats_on.peak_activation_bytes) /
                               static_cast<double>(stats_off.peak_activation_bytes))
          : 0.0;
  std::printf("\npass-based optimizer (src/deploy/passes):\n");
  std::printf("  stages                 %4zu -> %zu (%zu fused, %zu dead removed)\n", pipe.size(),
              optimized.size(), report.fused_stages, report.removed_stages);
  std::printf("  latency                %.4f ms -> %.4f ms per forward (%.2fx)\n", off_ms / kReps,
              on_ms / kReps, off_ms / on_ms);
  std::printf("  peak activation bytes  %lld -> %lld (-%.1f%%, acceptance bar >= 30%%)\n",
              static_cast<long long>(stats_off.peak_activation_bytes),
              static_cast<long long>(stats_on.peak_activation_bytes), reduction);
  std::printf("  plan: peak %lld B, naive %lld B, arena %lld B, in-place reuses %lld\n",
              static_cast<long long>(report.planned_peak_bytes),
              static_cast<long long>(report.naive_peak_bytes),
              static_cast<long long>(report.arena_bytes),
              static_cast<long long>(stats_on.inplace_reuses));
  std::printf("  logits max |diff| planner-on vs off: %g (must be 0 — bit-identical)\n",
              static_cast<double>(diff));
  if (diff != 0.F) {
    std::printf("ERROR: optimizer changed the logits\n");
    return 1;
  }

  // ---- F2 vs F4: agreement + per-stage latency ------------------------------
  // The per-tap requantization trajectory. Per-tensor F4 is the accuracy
  // cliff the paper's Table 1 documents at the kernel level; per-tap scale
  // vectors (tap_group_size=1) are what close it at deployment. Each config
  // is calibrated on the same data and compared against its own QAT eval
  // forward; latency is split out for the 16 searchable block convs (the
  // ".conv" stages — the only ones the algo choice touches).
  {
    const std::string json_path = argc > 4 ? argv[4] : "BENCH_engine.json";
    auto calib_spec = data::cifar10_like();
    calib_spec.train_size = 64;
    calib_spec.test_size = 96;
    const auto calib_set = data::generate(calib_spec, true);
    const auto eval_set = data::generate(calib_spec, false);

    struct ConfigResult {
      const char* key;
      double agreement = 0.0, total_ms = 0.0, conv3x3_ms = 0.0;
    };
    std::vector<ConfigResult> results;
    const Tensor bx = Tensor::randn({batch, 3, 32, 32}, rng);

    const auto run_config = [&](const char* key, nn::ConvAlgo algo, std::int64_t tap_group) {
      Rng crng(42);  // same init across configs: only the algo/grouping vary
      models::ResNetConfig ccfg;
      ccfg.width_mult = width;
      ccfg.qspec = quant::QuantSpec{8};
      ccfg.algo = algo;
      ccfg.tap_group_size = tap_group;
      models::ResNet18 cnet(ccfg, crng);
      cnet.set_training(true);
      data::DataLoader cloader(calib_set, 16, false);
      for (std::int64_t b = 0; b < cloader.batches(); ++b) {
        cnet.forward(ag::Variable(cloader.get(b).images, false));
      }
      const deploy::Int8Pipeline cpipe = deploy::compile_resnet18(cnet);

      // Agreement: deployed argmax vs the QAT eval forward's argmax.
      cnet.set_training(false);
      std::int64_t agree = 0, total = 0;
      data::DataLoader eloader(eval_set, 16, false);
      for (std::int64_t b = 0; b < eloader.batches(); ++b) {
        const auto eb = eloader.get(b);
        const auto deployed = cpipe.classify(eb.images);
        const Tensor logits = cnet.forward(ag::Variable(eb.images, false)).value();
        const std::int64_t classes = logits.numel() / logits.size(0);
        for (std::size_t i = 0; i < deployed.size(); ++i) {
          std::int64_t pred = 0;
          for (std::int64_t c = 1; c < classes; ++c) {
            if (logits.at(static_cast<std::int64_t>(i) * classes + c) >
                logits.at(static_cast<std::int64_t>(i) * classes + pred))
              pred = c;
          }
          agree += deployed[i] == pred;
          ++total;
        }
      }

      cpipe.run(bx);  // warm-up
      ConfigResult r;
      r.key = key;
      r.agreement = static_cast<double>(agree) / static_cast<double>(total);
      // Exact per-stage timings here, not the node EMAs: classify() above fed
      // the EMAs at the eval batch size, and alpha = 1/8 has not washed that
      // out after kReps batch-`batch` forwards — the blocked conv share would
      // come out bigger than the measured total.
      for (int rep = 0; rep < kReps; ++rep) {
        std::vector<deploy::StageTiming> timings;
        const auto t0 = std::chrono::steady_clock::now();
        cpipe.run(bx, &timings);
        const auto t1 = std::chrono::steady_clock::now();
        r.total_ms += std::chrono::duration<double, std::milli>(t1 - t0).count() / kReps;
        for (const auto& t : timings) {
          if (t.label.find(".conv") != std::string::npos) r.conv3x3_ms += t.ms / kReps;
        }
      }
      results.push_back(r);
    };
    run_config("f2", nn::ConvAlgo::kWinograd2, 0);
    run_config("f4_per_tensor", nn::ConvAlgo::kWinograd4, 0);
    run_config("f4_per_tap", nn::ConvAlgo::kWinograd4, 1);

    std::printf("\nF2 vs F4 (width %.3f, batch %lld, calibrated, %lld eval samples):\n",
                static_cast<double>(width), static_cast<long long>(batch),
                static_cast<long long>(calib_spec.test_size));
    std::printf("  %-16s %10s %12s %14s\n", "config", "agreement", "total ms", "3x3 conv ms");
    std::string json = "{\"width\": " + std::to_string(static_cast<double>(width)) +
                       ", \"batch\": " + std::to_string(static_cast<long long>(batch));
    for (const auto& r : results) {
      std::printf("  %-16s %9.4f %11.4f %13.4f\n", r.key, r.agreement, r.total_ms, r.conv3x3_ms);
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    ", \"%s\": {\"agreement\": %.4f, \"total_ms\": %.4f, \"conv3x3_ms\": %.4f}",
                    r.key, r.agreement, r.total_ms, r.conv3x3_ms);
      json += buf;
    }
    json += "}";
    if (bench::merge_json_section(json_path, "resnet_f2_vs_f4", json)) {
      std::printf("  merged section \"resnet_f2_vs_f4\" into %s\n", json_path.c_str());
    } else {
      std::printf("  WARNING: could not merge section into %s\n", json_path.c_str());
    }
  }
  return 0;
}
