// Per-stage latency breakdown of the compiled int8 ResNet-18 pipeline — the
// deployment-side view of the paper's Tables 2-3 workload.
//
// Builds the paper's pool-instead-of-stride ResNet-18 at a given width,
// calibrates its observers on synthetic CIFAR-shaped batches, compiles it
// with compile_resnet18, and reports where a forward pass spends its time,
// stage by stage. Also prints the perf counters before/after the timed runs
// to document that no weight transform or repack happens per forward.
//
//   build/bench/resnet_deploy [width_mult=0.25] [batch=1] [algo=im2row|f2]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

#include "backend/perf_counters.hpp"
#include "data/synthetic.hpp"
#include "deploy/pipeline.hpp"

int main(int argc, char** argv) {
  using namespace wa;
  const float width = argc > 1 ? static_cast<float>(std::atof(argv[1])) : 0.25F;
  const std::int64_t batch = argc > 2 ? std::atoll(argv[2]) : 1;
  const bool f2 = argc > 3 && std::strcmp(argv[3], "f2") == 0;

  Rng rng(42);
  models::ResNetConfig cfg;
  cfg.width_mult = width;
  cfg.qspec = quant::QuantSpec{8};
  if (f2) cfg.algo = nn::ConvAlgo::kWinograd2;
  models::ResNet18 net(cfg, rng);

  // Calibrate: a few training-mode passes warm every observer (layer inputs,
  // Winograd Qx stages, residual-join branches) and the batch-norm stats.
  auto spec = data::cifar10_like();
  spec.train_size = 64;
  const auto calib = data::generate(spec, true);
  net.set_training(true);
  data::DataLoader loader(calib, 16, false);
  for (std::int64_t b = 0; b < loader.batches(); ++b) {
    net.forward(ag::Variable(loader.get(b).images, false));
  }

  deploy::Int8Pipeline pipe = deploy::compile_resnet18(net);
  std::printf("resnet-18 width %.3f, algo %s, batch %lld: %zu pipeline stages\n\n",
              static_cast<double>(width), f2 ? "F2" : "im2row", static_cast<long long>(batch),
              pipe.size());

  const Tensor x = Tensor::randn({batch, 3, 32, 32}, rng);
  pipe.run(x);  // warm-up (first-touch arena growth)

  const std::uint64_t transforms0 = backend::PerfCounters::weight_transforms.load();
  const std::uint64_t repacks0 = backend::PerfCounters::weight_repacks.load();

  constexpr int kReps = 10;
  std::vector<deploy::StageTiming> acc;
  double total_ms = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    std::vector<deploy::StageTiming> t;
    const auto t0 = std::chrono::steady_clock::now();
    pipe.run(x, &t);
    const auto t1 = std::chrono::steady_clock::now();
    total_ms += std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (acc.empty()) {
      acc = std::move(t);
    } else {
      for (std::size_t i = 0; i < acc.size(); ++i) acc[i].ms += t[i].ms;
    }
  }

  std::printf("%-28s %10s %7s\n", "stage", "ms/fwd", "share");
  std::printf("%-28s %10s %7s\n", "-----", "------", "-----");
  double sum = 0.0;
  for (const auto& s : acc) sum += s.ms;
  std::map<std::string, double> by_kind;
  for (const auto& s : acc) {
    const double ms = s.ms / kReps;
    std::printf("%-28s %10.4f %6.1f%%\n", s.label.c_str(), ms, 100.0 * s.ms / sum);
    // Aggregate by coarse kind: strip the network position from the label.
    std::string kind = "other";
    if (s.label.find(".add") != std::string::npos) kind = "skip-add";
    else if (s.label.find(".bn") != std::string::npos) kind = "batch-norm";
    else if (s.label.find("pool") != std::string::npos) kind = "max-pool";
    else if (s.label.find("shortcut") != std::string::npos) kind = "1x1 shortcut conv";
    else if (s.label.find("conv") != std::string::npos) kind = "3x3 conv";
    else if (s.label == "gap") kind = "avg-pool";
    else if (s.label == "fc") kind = "linear";
    by_kind[kind] += ms;
  }
  std::printf("\n%-28s %10.4f ms total (avg over %d forwards)\n\n", "", total_ms / kReps, kReps);

  std::printf("by stage kind:\n");
  for (const auto& [kind, ms] : by_kind) {
    std::printf("  %-22s %10.4f ms  %5.1f%%\n", kind.c_str(), ms, 100.0 * ms * kReps / sum);
  }

  std::printf("\nperf counters over the %d timed forwards: weight_transforms +%llu, "
              "weight_repacks +%llu (both must be 0: everything was prepared at load)\n",
              kReps,
              static_cast<unsigned long long>(backend::PerfCounters::weight_transforms.load() -
                                              transforms0),
              static_cast<unsigned long long>(backend::PerfCounters::weight_repacks.load() -
                                              repacks0));
  return 0;
}
