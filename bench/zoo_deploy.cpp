// Model-zoo deployment bench: per-stage latency of the zoo stage shapes
// (grouped conv, stride-2 polyphase Winograd, whole-tap-sparse Winograd,
// channel concat) plus end-to-end serving latency of the compiled SqueezeNet
// and ResNeXt pipelines. Merged into BENCH_engine.json under "zoo_deploy".
//
// The structural claims measured here:
//   - a grouped conv exploits its block-diagonal weights: close to g-times
//     less work than the dense conv of the same channel counts;
//   - a whole-tap sparse Winograd stage skips the pruned tap GEMMs: faster
//     than its dense twin in proportion to the surviving taps;
//   - the stride-2 polyphase lowering is tracked against the im2row
//     fallback it replaced (the phase decomposition trades GEMM shape for
//     transform reuse, so the ratio is size-dependent — watch it, don't
//     assume it).
//
// Usage: build/bench/zoo_deploy [json=BENCH_engine.json]
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "deploy/pipeline.hpp"
#include "models/resnext.hpp"
#include "models/squeezenet.hpp"
#include "winograd/cook_toom.hpp"

namespace {

using namespace wa;
using deploy::ConcatStage;
using deploy::ConvStage;
using deploy::Int8Pipeline;
using deploy::StageIO;

StageIO make_io(const char* in, const char* in2, const char* out, const char* label) {
  StageIO io;
  io.input = in;
  io.input2 = in2;
  io.output = out;
  io.label = label;
  return io;
}

double time_ms(const Int8Pipeline& pipe, const Tensor& x, int reps) {
  pipe.run(x);  // warm-up: caches are pre-built, this settles allocators
  double total = 0;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    pipe.run(x);
    const auto t1 = std::chrono::steady_clock::now();
    total += std::chrono::duration<double, std::milli>(t1 - t0).count();
  }
  return total / reps;
}

ConvStage im2row_conv(Rng& rng, std::int64_t in_ch, std::int64_t out_ch, std::int64_t groups,
                      std::int64_t stride = 1) {
  ConvStage st;
  st.algo = nn::ConvAlgo::kIm2row;
  st.in_channels = in_ch;
  st.out_channels = out_ch;
  st.kernel = 3;
  st.pad = 1;
  st.groups = groups;
  st.stride = stride;
  st.input_scale = 0.05F;
  st.output_scale = 0.08F;
  st.weights_q = backend::quantize_s8(Tensor::randn({out_ch, in_ch / groups, 3, 3}, rng, 0.3F));
  return st;
}

ConvStage wino_conv(Rng& rng, std::int64_t in_ch, std::int64_t out_ch, std::int64_t groups,
                    std::int64_t stride = 1, Tensor sparse_mask = Tensor()) {
  ConvStage st;
  st.algo = nn::ConvAlgo::kWinograd2;
  st.in_channels = in_ch;
  st.out_channels = out_ch;
  st.kernel = 3;
  st.pad = 1;
  st.groups = groups;
  st.stride = stride;
  st.input_scale = 0.05F;
  st.output_scale = 0.08F;
  st.weights_f = Tensor::randn({out_ch, in_ch / groups, 3, 3}, rng, 0.3F);
  st.transforms = wino::make_transforms(2, 3);
  st.stage_scales.weights_transformed = 0.02F;
  st.stage_scales.input_transformed = 0.05F;
  st.stage_scales.hadamard = 0.1F;
  st.stage_scales.output = 0.08F;
  st.sparse_mask = std::move(sparse_mask);
  return st;
}

double single_stage_ms(ConvStage st, const Tensor& x, int reps) {
  Int8Pipeline pipe;
  pipe.push(std::move(st), make_io("", "", "", "stage"));
  return time_ms(pipe, x, reps);
}

/// Compile one calibrated (not trained — latency is the subject) zoo model.
template <typename Model, typename Config, typename Compile>
Int8Pipeline compiled_zoo(Config cfg, Compile&& compile, std::uint64_t seed) {
  Rng rng(seed);
  Model net(cfg, rng);
  net.set_training(true);
  for (int i = 0; i < 2; ++i) {
    net.forward(ag::Variable(Tensor::randn({8, 3, 32, 32}, rng), false));
  }
  Int8Pipeline pipe = compile(net);
  pipe.freeze_scales(Tensor::randn({8, 3, 32, 32}, rng));
  return pipe;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_engine.json";
  const int reps = static_cast<int>(bench::env_int("WINO_REPS", 30));
  bench::banner("Model-zoo deployment: grouped / strided / sparse / concat stages");

  Rng rng(42);
  const std::int64_t ch = 64, groups = 4, h = 16;
  const Tensor x = Tensor::randn({4, ch, h, h}, rng, 1.2F);

  // Grouped vs dense, both executors.
  const double gemm_dense = single_stage_ms(im2row_conv(rng, ch, ch, 1), x, reps);
  const double gemm_grouped = single_stage_ms(im2row_conv(rng, ch, ch, groups), x, reps);
  const double wino_dense = single_stage_ms(wino_conv(rng, ch, ch, 1), x, reps);
  const double wino_grouped = single_stage_ms(wino_conv(rng, ch, ch, groups), x, reps);

  // Whole-tap sparse vs dense: kill half the 16 F(2,3) taps outright.
  Tensor mask(Shape{1, 16, ch, ch});
  for (std::int64_t i = 0; i < mask.numel(); ++i) {
    mask.at(i) = (i / (ch * ch)) % 2 == 0 ? 1.F : 0.F;
  }
  const double wino_sparse = single_stage_ms(wino_conv(rng, ch, ch, 1, 1, mask), x, reps);

  // Stride-2: the polyphase Winograd lowering vs the im2row fallback, both
  // forced so the bar tracks the real kernels — then the prepare-time cost
  // model's pick, which is what a compiled stage actually runs. The selected
  // path must be the faster one (>= 1.0x vs the alternative) or the
  // selection bugfix has regressed.
  backend::set_strided_polyphase_policy(backend::StridedPolicy::kForcePolyphase);
  const double strided_wino = single_stage_ms(wino_conv(rng, ch, ch, 1, 2), x, reps);
  backend::set_strided_polyphase_policy(backend::StridedPolicy::kForceIm2row);
  const double strided_gemm = single_stage_ms(wino_conv(rng, ch, ch, 1, 2), x, reps);
  backend::set_strided_polyphase_policy(backend::StridedPolicy::kAuto);
  const bool poly_selected = backend::strided_polyphase_profitable(ch, ch);
  const char* strided_selected = poly_selected ? "polyphase" : "im2row";
  const double strided_sel_ms = poly_selected ? strided_wino : strided_gemm;
  const double strided_alt_ms = poly_selected ? strided_gemm : strided_wino;

  // Concat join (fire-module shape): stem fans out into two published
  // branches joined by a requantizing ConcatStage.
  double concat_ms = 0;
  {
    Int8Pipeline pipe;
    pipe.push(im2row_conv(rng, ch, ch, 1), make_io("", "", "s", "stem"));
    pipe.push(im2row_conv(rng, ch, ch / 2, 1), make_io("s", "", "e1", "e1"));
    pipe.push(im2row_conv(rng, ch, ch / 2, 1), make_io("s", "", "", "e3"));
    ConcatStage cat;
    cat.lhs_scale = 0.08F;
    cat.rhs_scale = 0.08F;
    cat.output_scale = 0.06F;  // requantizing join, the expensive shape
    pipe.push(std::move(cat), make_io("", "e1", "", "cat"));
    concat_ms = time_ms(pipe, x, reps);
  }

  std::printf("  %-28s %10s\n", "stage", "ms");
  std::printf("  %-28s %10.4f\n", "im2row dense", gemm_dense);
  std::printf("  %-28s %10.4f  (%.2fx vs dense)\n", "im2row grouped(4)", gemm_grouped,
              gemm_dense / gemm_grouped);
  std::printf("  %-28s %10.4f\n", "winograd dense", wino_dense);
  std::printf("  %-28s %10.4f  (%.2fx vs dense)\n", "winograd grouped(4)", wino_grouped,
              wino_dense / wino_grouped);
  std::printf("  %-28s %10.4f  (%.2fx vs dense)\n", "winograd sparse(8/16 taps)", wino_sparse,
              wino_dense / wino_sparse);
  std::printf("  %-28s %10.4f\n", "strided polyphase winograd", strided_wino);
  std::printf("  %-28s %10.4f\n", "strided im2row fallback", strided_gemm);
  std::printf("  %-28s %10s  (%.2fx vs %s)\n", "strided selected path", strided_selected,
              strided_alt_ms / strided_sel_ms, poly_selected ? "im2row" : "polyphase");
  std::printf("  %-28s %10.4f\n", "fire fan-out + concat", concat_ms);

  // End-to-end compiled zoo pipelines (calibrated, width 0.25, F2).
  bench::banner("End-to-end compiled zoo pipelines (batch 8, 32x32)");
  models::SqueezeNetConfig scfg;
  scfg.width_mult = 0.25F;
  scfg.algo = nn::ConvAlgo::kWinograd2;
  scfg.qspec = quant::QuantSpec{8};
  const Int8Pipeline squeeze = compiled_zoo<models::SqueezeNet>(
      scfg, [](models::SqueezeNet& m) { return deploy::compile_squeezenet(m); }, 7);
  models::ResNeXtConfig rcfg;
  rcfg.width_mult = 0.25F;
  rcfg.algo = nn::ConvAlgo::kWinograd2;
  rcfg.qspec = quant::QuantSpec{8};
  const Int8Pipeline resnext = compiled_zoo<models::ResNeXt20>(
      rcfg, [](models::ResNeXt20& m) { return deploy::compile_resnext(m); }, 9);

  Rng drng(11);
  const Tensor images = Tensor::randn({8, 3, 32, 32}, drng, 1.2F);
  const double squeezenet_ms = time_ms(squeeze, images, reps);
  const double resnext_ms = time_ms(resnext, images, reps);
  std::printf("  %-28s %10.4f  (%zu stages)\n", "squeezenet F2", squeezenet_ms, squeeze.size());
  std::printf("  %-28s %10.4f  (%zu stages)\n", "resnext F2", resnext_ms, resnext.size());

  char json[1024];
  std::snprintf(
      json, sizeof(json),
      "{\"batch\": 4, \"channels\": %lld, \"spatial\": %lld, "
      "\"im2row_dense_ms\": %.4f, \"im2row_grouped_ms\": %.4f, \"grouped_gemm_speedup\": %.2f, "
      "\"wino_dense_ms\": %.4f, \"wino_grouped_ms\": %.4f, \"grouped_wino_speedup\": %.2f, "
      "\"wino_sparse_ms\": %.4f, \"sparse_speedup\": %.2f, "
      "\"strided_wino_ms\": %.4f, \"strided_im2row_ms\": %.4f, "
      "\"strided_selected\": \"%s\", \"strided_speedup\": %.2f, "
      "\"concat_graph_ms\": %.4f, \"squeezenet_ms\": %.4f, \"resnext_ms\": %.4f}",
      static_cast<long long>(ch), static_cast<long long>(h), gemm_dense, gemm_grouped,
      gemm_dense / gemm_grouped, wino_dense, wino_grouped, wino_dense / wino_grouped, wino_sparse,
      wino_dense / wino_sparse, strided_wino, strided_gemm, strided_selected,
      strided_alt_ms / strided_sel_ms, concat_ms, squeezenet_ms, resnext_ms);
  if (bench::merge_json_section(json_path, "zoo_deploy", json)) {
    std::printf("  merged section \"zoo_deploy\" into %s\n", json_path.c_str());
  } else {
    std::printf("  WARNING: could not merge section into %s\n", json_path.c_str());
  }
  return 0;
}
