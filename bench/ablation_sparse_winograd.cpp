// Ablation: Winograd-domain pruning (Liu et al. 2018) composed with
// winograd-aware quantized training.
//
// The paper cites sparse-Winograd as reaching "up to 90% sparsity in the
// Hadamard product stage ... with no accuracy loss in FP32 models" and
// leaves its combination with quantization open. This harness runs the
// iterative prune-and-retrain workflow Liu et al. describe — single-shot
// pruning at high sparsity destroys the network; sparsity must be reached
// in steps with fine-tuning in between:
//
//   train dense  ->  for each target: restore dense weights, then
//                    prune(half target) -> finetune -> prune(target) -> finetune
//
// on a winograd-aware ResNet-18 (WAF4) at FP32 and INT8, reporting accuracy
// and the modeled Hadamard-stage speedup on a Cortex-A73.
//
// Expected shape: FP32 tolerates high sparsity far better than INT8 (the
// quantization grid already consumed the representational slack pruning
// needs) — and speedup scales ~1/density.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_common.hpp"
#include "latency/cost_model.hpp"
#include "models/resnet.hpp"
#include "sparse/winograd_prune.hpp"

int main() {
  using namespace wa;
  auto scale = bench::scale_from_env();
  // Pruning recovery needs genuine fine-tuning steps; see fig5 for the same
  // pattern. The explicit smoke preset and env overrides still win.
  const char* preset = std::getenv("WINO_SCALE");
  if (preset == nullptr || std::string(preset) != "smoke") {
    scale.train_size = std::max<std::int64_t>(scale.train_size, 512);
    scale.epochs = std::max(scale.epochs, 4);
    scale.batch = std::min<std::int64_t>(scale.batch, 16);
  }
  bench::banner("Ablation — Winograd-domain pruning x quantization (ResNet-18 WAF4)");
  bench::note("workflow: dense training once per bit-width; per target sparsity restore the");
  bench::note("dense weights, then prune->finetune in two steps (iterative, Liu et al.);");
  bench::note("speedup is the cost-model Hadamard-stage ratio vs dense (A73, int8).");

  const auto train_set = bench::make_split(data::cifar10_like(), scale, true);
  const auto val_set = bench::make_split(data::cifar10_like(), scale, false);
  const latency::LatencyModel lat(latency::cortex_a73());

  auto make_net = [&](int bits, Rng& rng) {
    models::ResNetConfig rc;
    rc.width_mult = scale.width_mult;
    rc.algo = nn::ConvAlgo::kWinograd4;
    rc.qspec = quant::QuantSpec{bits};
    rc.flex_transforms = bits < 32;  // the paper's best quantized config
    return std::make_unique<models::ResNet18>(rc, rng);
  };

  struct BitRun {
    int bits;
    float dense_acc = 0;
    std::map<std::string, Tensor> dense_state;
    std::map<double, float> pruned_acc;  // target sparsity -> accuracy
  };
  BitRun runs[] = {{32}, {8}};
  const double targets[] = {0.5, 0.7, 0.9};

  for (auto& run : runs) {
    Rng rng(scale.seed);
    auto net = make_net(run.bits, rng);
    train::Trainer dense(*net, train_set, val_set, bench::trainer_options(scale));
    dense.fit();
    run.dense_acc = dense.evaluate(val_set);
    run.dense_state = net->state_dict();

    for (const double target : targets) {
      Rng rng2(scale.seed);
      auto pruned = make_net(run.bits, rng2);
      pruned->load_state(run.dense_state);
      auto ft = bench::trainer_options(scale, 1e-3F);
      ft.epochs = std::max(1, scale.epochs / 2);
      for (const double step : {target / 2, target}) {
        sparse::prune_model(*pruned, step);
        train::Trainer finetune(*pruned, train_set, val_set, ft);
        finetune.fit();
      }
      train::Trainer eval(*pruned, train_set, val_set, ft);
      run.pruned_acc[target] = eval.evaluate(val_set);
    }
  }

  auto gemm_ms = [&](double density) {
    latency::LayerDesc d;
    d.geom.batch = 1;
    d.geom.in_channels = 128;
    d.geom.out_channels = 128;
    d.geom.height = 16;
    d.geom.width = 16;
    d.algo = nn::ConvAlgo::kWinograd4;
    d.dtype = latency::DType::kInt8;
    d.hadamard_density = density;
    return lat.conv_cost(d).gemm_ms;
  };

  std::printf("  %-10s %-12s %-12s %-16s\n", "sparsity", "fp32 acc", "int8 acc",
              "gemm speedup (A73)");
  std::printf("  %-10s %-12s %-12s %s\n", "dense", bench::pct(runs[0].dense_acc).c_str(),
              bench::pct(runs[1].dense_acc).c_str(), "1.00x");
  const double dense_ms = gemm_ms(1.0);
  for (const double target : targets) {
    std::printf("  %-10.2f %-12s %-12s %.2fx\n", target,
                bench::pct(runs[0].pruned_acc[target]).c_str(),
                bench::pct(runs[1].pruned_acc[target]).c_str(),
                dense_ms / gemm_ms(1.0 - target));
  }

  bench::banner("Findings check");
  const float fp32_dense = runs[0].dense_acc;
  const float fp32_50 = runs[0].pruned_acc[0.5];
  const float fp32_drop = fp32_dense - fp32_50;
  const float int8_drop = runs[1].dense_acc - runs[1].pruned_acc[0.5];
  if (fp32_dense < 0.25F) {
    bench::note("  inconclusive at this scale (dense fp32 never trained past 2.5x chance);");
    bench::note("  rerun with WINO_SCALE=full or WINO_EPOCHS/WINO_TRAIN raised.");
    return 0;
  }
  bench::row("fp32 survives 50% sparsity", "Liu et al.: lossless to ~90% (full training)",
             fp32_50 >= fp32_dense * 0.6F ? "yes" : "NO");
  bench::row("fp32 degrades less than int8 at 50%", "open question in the paper",
             fp32_drop <= int8_drop + 0.05F ? "yes" : "NO");
  bench::row("speedup scales with sparsity", "~1/density on the GEMM stage",
             gemm_ms(0.1) < gemm_ms(0.5) && gemm_ms(0.5) < gemm_ms(1.0) ? "yes" : "NO");
  return 0;
}
