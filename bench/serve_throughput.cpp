// Serving throughput harness: requests/sec through the InferenceServer vs
// worker count and batch policy, against the single-thread run() baseline at
// batch 1, on a Winograd conv stack built from Fig. 7 grid shapes.
//
// Two scaling axes are measured:
//   - workers: on a multi-core host, N workers (each pinned to a 1-thread
//     OpenMP team) should approach N x the 1-worker rate — the acceptance
//     bar is >= 2x at 4 workers. On a single hardware thread the worker
//     sweep degenerates (reported honestly either way).
//   - batching: coalescing K requests into one forward amortizes the
//     scatter/gather fixed costs and runs bigger GEMMs, so max_batch > 1
//     should beat request-at-a-time serving even on one core.
//
// Knobs: WINO_SERVE_REQUESTS (total requests per cell), WINO_SERVE_CLIENTS.
//
// Telemetry sections (docs/OBSERVABILITY.md):
//   - metrics overhead A/B — interleaved best-of-3 with the registry's
//     mutation paths off vs on; WA_TELEMETRY_GATE_PCT > 0 turns the
//     measured overhead into a pass/fail gate (CI pins 1.0 — the "< 1% of
//     serving throughput" acceptance bar). The winner is merged as the
//     "serve_telemetry" section of WINO_SERVE_JSON (default
//     BENCH_engine.json).
//   - trace capture — when WA_TRACE is set, one traced cell runs at the end
//     and the span window is dumped to WA_TRACE_OUT (default trace.json),
//     ready for chrome://tracing.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "backend/simd/kernel_table.hpp"
#include "bench_common.hpp"
#include "deploy/pipeline.hpp"
#include "serve/server.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace {

using namespace wa;
using Clock = std::chrono::steady_clock;

/// Frozen three-conv Winograd F2 stack on Fig. 7 grid shapes (3->32 at 16,
/// 32->64 at 16, then a pool down to 8 and 64->64): deep enough that a
/// request is real work, small enough that the harness finishes on a laptop.
deploy::Int8Pipeline build_pipeline(Rng& rng) {
  const auto conv = [&rng](std::int64_t cin, std::int64_t cout, float in_s, float out_s) {
    deploy::ConvStage st;
    st.algo = nn::ConvAlgo::kWinograd2;
    st.in_channels = cin;
    st.out_channels = cout;
    st.kernel = 3;
    st.pad = 1;
    st.input_scale = in_s;
    st.weights_f = Tensor::randn({cout, cin, 3, 3}, rng, 0.3F);
    st.transforms = wino::make_transforms(2, 3);
    st.stage_scales.input_transformed = 0.06F;
    st.stage_scales.hadamard = 0.02F;
    st.stage_scales.output = out_s;
    st.output_scale = out_s;
    st.relu_after = true;
    return st;
  };
  deploy::Int8Pipeline pipe;
  pipe.push(conv(3, 32, 0.05F, 0.1F));
  pipe.push(conv(32, 64, 0.1F, 0.09F));
  pipe.push(deploy::PoolStage{2, 2});
  pipe.push(conv(64, 64, 0.09F, 0.08F));
  return pipe;
}

struct Cell {
  int workers;
  std::int64_t max_batch;
  std::int64_t max_delay_us;
};

double serve_rps(const deploy::Int8Pipeline& pipe, const Cell& cell, int clients,
                 std::int64_t requests) {
  serve::ServerOptions opts;
  opts.workers = cell.workers;
  opts.queue_capacity = 512;
  opts.batch.max_batch = cell.max_batch;
  opts.batch.max_delay_us = cell.max_delay_us;
  serve::InferenceServer server(opts);
  server.add_model("grid", pipe);

  Rng rng(7);
  const Tensor input = Tensor::randn({1, 3, 16, 16}, rng);
  // Warm-up: fault in the per-worker arenas outside the timed window.
  for (int i = 0; i < cell.workers; ++i) server.submit("grid", input).get();

  const std::int64_t per_client = requests / clients;
  const auto t0 = Clock::now();
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    pool.emplace_back([&server, &input, per_client] {
      std::vector<std::future<Tensor>> futures;
      futures.reserve(static_cast<std::size_t>(per_client));
      for (std::int64_t i = 0; i < per_client; ++i) {
        futures.push_back(server.submit("grid", input));
      }
      for (auto& f : futures) f.get();
    });
  }
  for (auto& t : pool) t.join();
  const double secs = std::chrono::duration<double>(Clock::now() - t0).count();

  const serve::ModelStats s = server.stats("grid");
  std::printf("  workers=%d max_batch=%-3lld delay=%-5lldus | %8.1f req/s  "
              "p50 %6.2fms  p99 %6.2fms  batches %llu (mean size %.2f)\n",
              cell.workers, static_cast<long long>(cell.max_batch),
              static_cast<long long>(cell.max_delay_us),
              static_cast<double>(per_client * clients) / secs, s.latency.p50_ms,
              s.latency.p99_ms, static_cast<unsigned long long>(s.batches),
              s.batches ? static_cast<double>(s.samples) / static_cast<double>(s.batches) : 0.0);
  return static_cast<double>(per_client * clients) / secs;
}

}  // namespace

int main() {
  const auto requests = wa::bench::env_int("WINO_SERVE_REQUESTS", 256);
  const int clients = static_cast<int>(wa::bench::env_int("WINO_SERVE_CLIENTS", 8));
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

  Rng rng(42);
  const deploy::Int8Pipeline pipe = build_pipeline(rng);

  // Single-thread baseline: one caller, run() at batch 1, no server. The
  // baseline must be genuinely single-threaded — with the default OpenMP
  // team it would use every core and the worker-scaling comparison below
  // (workers pinned to 1-thread teams) would be measuring team sizes, not
  // the server. This only changes the calling (main) thread's ICV; each
  // server worker pins its own.
#ifdef _OPENMP
  omp_set_num_threads(1);
#endif
  const Tensor input = Tensor::randn({1, 3, 16, 16}, rng);
  pipe.run(input);  // warm-up
  const auto t0 = Clock::now();
  for (std::int64_t i = 0; i < requests; ++i) pipe.run(input);
  const double base_secs = std::chrono::duration<double>(Clock::now() - t0).count();
  const double base_rps = static_cast<double>(requests) / base_secs;

  std::printf("Serving throughput — %lld requests, %d clients, %u hardware threads\n",
              static_cast<long long>(requests), clients, hw);
  std::printf("baseline: single-thread run() at batch 1: %.1f req/s\n\n", base_rps);

  std::printf("worker scaling (max_batch 1 — pure concurrency, no coalescing):\n");
  double rps_w1 = 0.0, rps_w4 = 0.0;
  for (const int w : {1, 2, 4}) {
    const double rps = serve_rps(pipe, {w, 1, 0}, clients, requests);
    if (w == 1) rps_w1 = rps;
    if (w == 4) rps_w4 = rps;
  }

  std::printf("\nbatch policy (4 workers — coalescing on top of concurrency):\n");
  for (const Cell cell : {Cell{4, 4, 200}, Cell{4, 8, 500}, Cell{4, 16, 1000}}) {
    serve_rps(pipe, cell, clients, requests);
  }

  // Per-backend serving rates: the end-to-end view of the SIMD dispatch
  // layer (kernel speedups have to survive queueing, batching and the worker
  // pool to count). Same 4-worker coalescing cell per registered backend.
  const auto backends = backend::simd::available_backends();
  if (backends.size() > 1) {
    std::printf("\nper-backend serving rate (4 workers, max_batch 8):\n");
    const std::string active = backend::simd::active_backend();
    for (const auto& b : backends) {
      backend::simd::set_backend(b);
      std::printf("  backend %-8s:", b.c_str());
      serve_rps(pipe, {4, 8, 500}, clients, requests);
    }
    backend::simd::set_backend(active);
  }

  // Always-on metrics must be effectively free. A/B the registry's mutation
  // paths on the 4-worker coalescing cell, interleaved best-of-3 per arm so
  // frequency drift hits both arms alike.
  std::printf("\nmetrics overhead (4 workers, max_batch 8; interleaved best-of-3):\n");
  double rps_off = 0.0, rps_on = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    telemetry::set_metrics_enabled(false);
    std::printf(" metrics off:");
    rps_off = std::max(rps_off, serve_rps(pipe, {4, 8, 500}, clients, requests));
    telemetry::set_metrics_enabled(true);
    std::printf(" metrics on: ");
    rps_on = std::max(rps_on, serve_rps(pipe, {4, 8, 500}, clients, requests));
  }
  const double overhead_pct = rps_off > 0.0 ? (rps_off - rps_on) / rps_off * 100.0 : 0.0;
  std::printf("  metrics on %.1f req/s vs off %.1f req/s — overhead %.2f%%\n",
              rps_on, rps_off, overhead_pct);

  const char* json_env = std::getenv("WINO_SERVE_JSON");
  const std::string json_path = json_env != nullptr && *json_env != '\0'
                                    ? json_env : "BENCH_engine.json";
  char section[256];
  std::snprintf(section, sizeof(section),
                "{\"metrics_on_rps\": %.1f, \"metrics_off_rps\": %.1f, "
                "\"overhead_pct\": %.3f, \"base_rps\": %.1f, \"w4_rps\": %.1f}",
                rps_on, rps_off, overhead_pct, base_rps, rps_w4);
  wa::bench::merge_json_section(json_path, "serve_telemetry", section);
  std::printf("merged section \"serve_telemetry\" into %s\n", json_path.c_str());

  // Traced capture window: with WA_TRACE set, run one more cell and dump the
  // span rings — nesting request > queue_wait/coalesce/dispatch >
  // stage:* > wino.* per sampled request.
  auto& tracer = telemetry::Tracer::instance();
  if (tracer.enabled()) {
    tracer.clear();
    std::printf("\ntraced cell (WA_TRACE=%u):\n", tracer.sampling());
    serve_rps(pipe, {4, 8, 500}, clients, std::min<std::int64_t>(requests, 64));
    const char* out_env = std::getenv("WA_TRACE_OUT");
    const std::string trace_path =
        out_env != nullptr && *out_env != '\0' ? out_env : "trace.json";
    if (telemetry::dump_chrome_trace(trace_path)) {
      std::printf("wrote %s (%llu spans emitted, %llu dropped)\n", trace_path.c_str(),
                  static_cast<unsigned long long>(tracer.emitted()),
                  static_cast<unsigned long long>(tracer.dropped()));
    } else {
      std::printf("WARNING: could not write %s\n", trace_path.c_str());
      return 1;
    }
  }

  std::printf("\n4-worker speedup over single-thread baseline: %.2fx (batch 1)\n",
              rps_w4 / base_rps);
  std::printf("4-worker speedup over 1 worker:               %.2fx\n", rps_w4 / rps_w1);
  if (hw >= 4 && rps_w4 < 2.0 * base_rps) {
    std::printf("WARNING: expected >= 2x over the batch-1 baseline at 4 workers on a "
                ">=4-thread host\n");
    return 1;
  }
  if (hw < 4) {
    std::printf("note: only %u hardware thread(s) — worker scaling cannot manifest here; "
                "the >=2x @ 4 workers bar applies to >=4-thread hosts\n", hw);
  }
  const double gate_pct = wa::bench::env_double("WA_TELEMETRY_GATE_PCT", 0.0);
  if (gate_pct > 0.0 && overhead_pct > gate_pct) {
    std::printf("WARNING: always-on metrics cost %.2f%% of throughput "
                "(gate WA_TELEMETRY_GATE_PCT=%.2f%%)\n", overhead_pct, gate_pct);
    return 1;
  }
  return 0;
}
