// Ablation: numerical error of Winograd convolution vs tile size and
// bit-width.
//
// This regenerates the quantitative claim behind the paper's motivation
// (§1, §3.1): "numerical error ... grows exponentially with tile size"
// (citing Barabasz et al. 2018), and behind Table 1's collapse pattern: F2
// survives INT8, F4/F6 do not. Three views of the same phenomenon:
//
//   amplification  — analytic ‖G‖²‖Bᵀ‖²‖Aᵀ‖² from the transforms alone
//   range expand   — sampled dynamic-range growth of the intermediates
//   rel-RMSE       — Monte-Carlo error against direct convolution at each
//                    bit-width
//
// Rows for r=3 (the main text) and r=5 (the LeNet experiment of Fig. 5,
// where tiles reach 10x10 and static transforms lose ~47%).
#include <cstdio>

#include "bench_common.hpp"
#include "winograd/error_analysis.hpp"

int main() {
  using namespace wa;
  const auto trials = static_cast<int>(bench::env_int("WINO_TRIALS", 200));
  Rng rng(static_cast<std::uint64_t>(bench::env_int("WINO_SEED", 42)));

  for (const int r : {3, 5}) {
    bench::banner("Error growth with tile size — " + std::to_string(r) + "x" +
                  std::to_string(r) + " filters (" + std::to_string(trials) + " trials)");
    std::printf("  %-10s %-5s %-14s %-12s %-11s %-11s %-11s %-11s\n", "config", "tile",
                "amplification", "range-exp", "fp32", "int16", "int10", "int8");
    const std::vector<int> ms = {2, 4, 6};
    const auto rows = wino::error_growth_table(r, ms, trials, rng);
    for (const auto& row : rows) {
      std::printf("  F(%dx%d,%dx%d) %2dx%-2d %-14.3g %-12.3g %-11.3g %-11.3g %-11.3g %-11.3g\n",
                  row.m, row.m, row.r, row.r, row.tile, row.tile, row.amplification,
                  row.range_expand, row.fp32.rel_rmse, row.int16.rel_rmse, row.int10.rel_rmse,
                  row.int8.rel_rmse);
    }

    // Shape checks: exponential growth of the analytic factor, and the
    // INT8 error ordering that drives Table 1.
    bench::banner("Findings check (r = " + std::to_string(r) + ")");
    const bool amp_grows = rows[1].amplification > 2 * rows[0].amplification &&
                           rows[2].amplification > 2 * rows[1].amplification;
    bench::row("amplification grows super-linearly", "exponential in t (Barabasz)",
               amp_grows ? "yes" : "NO");
    const bool int8_ordered =
        rows[0].int8.rel_rmse < rows[1].int8.rel_rmse &&
        rows[1].int8.rel_rmse < rows[2].int8.rel_rmse;
    bench::row("int8 error ordered F2 < F4 < F6", "Table 1 collapse pattern",
               int8_ordered ? "yes" : "NO");
    const bool fp32_small = rows.back().fp32.rel_rmse < 1e-4;
    bench::row("fp32 error negligible at F6", "paper: fp32 swap is free",
               fp32_small ? "yes" : "NO");
  }
  return 0;
}
