// Figure 6 reproduction: adapting a pre-trained standard-convolution model
// into its Winograd-aware INT8 F4 counterpart in a few epochs of retraining,
// vs training the Winograd-aware model end-to-end from scratch.
//
// Paper finding: adaptation works — and works markedly better when the
// transforms are learnable during retraining (-flex). End-to-end training
// needs ~2.8x more epochs for the same accuracy.
#include <cstdio>

#include "bench_common.hpp"
#include "models/resnet.hpp"

int main() {
  using namespace wa;
  const auto scale = bench::scale_from_env();
  bench::banner("Figure 6 — adapting a pre-trained model to Winograd-aware INT8 F4");

  const auto train_set = bench::make_split(data::cifar10_like(), scale, true);
  const auto val_set = bench::make_split(data::cifar10_like(), scale, false);

  // Pre-train the source model (direct convolutions, FP32).
  Rng rng(scale.seed);
  models::ResNetConfig src_cfg;
  src_cfg.width_mult = scale.width_mult;
  models::ResNet18 source(src_cfg, rng);
  {
    auto opts = bench::trainer_options(scale);
    opts.epochs = scale.epochs * 2;  // the "120-epoch" pre-training, scaled
    std::printf("pre-training direct-conv FP32 source model (%d epochs)...\n", opts.epochs);
    train::Trainer t(source, train_set, val_set, opts);
    const auto h = t.fit();
    std::printf("  source val acc: %s\n", bench::pct(h.back().val_acc).c_str());
  }
  const auto source_state = source.state_dict();

  struct Run {
    const char* label;
    bool adapted;
    bool flex;
  };
  const Run runs[] = {
      {"F4 (scratch)", false, false},
      {"F4-flex (scratch)", false, true},
      {"F4 (adapted)", true, false},
      {"F4-flex (adapted)", true, true},
  };

  std::printf("\nretraining/adaptation curves (INT8 F4, val acc per epoch):\n");
  float best_adapted_flex = 0, best_scratch_flex = 0;
  float first_epoch_adapted = 0, first_epoch_scratch = 0;
  for (const auto& run : runs) {
    Rng r2(scale.seed + 17);
    models::ResNetConfig cfg = src_cfg;
    cfg.algo = nn::ConvAlgo::kWinograd4;
    cfg.qspec = quant::QuantSpec{8};
    cfg.flex_transforms = run.flex;
    models::ResNet18 net(cfg, r2);
    if (run.adapted) net.load_state_intersect(source_state);

    std::printf("  %-20s:", run.label);
    std::fflush(stdout);
    auto opts = bench::trainer_options(scale);
    opts.on_epoch = [](const train::EpochStats& st) {
      std::printf(" %5.1f", 100.F * st.val_acc);
      std::fflush(stdout);
    };
    train::Trainer t(net, train_set, val_set, opts);
    const auto h = t.fit();
    std::printf("\n");
    if (std::string(run.label) == "F4-flex (adapted)") {
      best_adapted_flex = h.back().val_acc;
      first_epoch_adapted = h.front().val_acc;
    }
    if (std::string(run.label) == "F4-flex (scratch)") {
      best_scratch_flex = h.back().val_acc;
      first_epoch_scratch = h.front().val_acc;
    }
  }

  bench::banner("Findings check");
  bench::row("adapted starts ahead of scratch (epoch 0)", "large head start",
             first_epoch_adapted > first_epoch_scratch ? "yes" : "NO");
  bench::row("adapted flex reaches scratch-level accuracy", "in ~1/2.8 of the epochs",
             best_adapted_flex >= best_scratch_flex - 0.02F ? "yes" : "NO");
  return 0;
}
