// Engine speedup harness: the seed per-call Winograd paths (U = G g Gᵀ
// rebuilt every forward, per-call heap allocations) against the cached-U,
// arena-backed prepared paths, on the layer shapes of the Fig. 7 latency
// grid (batch 1, 3x3, pad 1, output size == input size).
//
// This is the repo's regression trail for the LANCE-style precomputation:
// the prepared path must stay >= 1.3x on the grid's Winograd-favourable
// shapes (small/medium tile counts, where the weight transform and the
// allocator traffic are a real fraction of the forward).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "backend/conv_kernels.hpp"
#include "backend/conv_kernels_s8.hpp"
#include "backend/simd/kernel_table.hpp"
#include "data/synthetic.hpp"
#include "deploy/passes/passes.hpp"
#include "deploy/pipeline.hpp"
#include "winograd/cook_toom.hpp"

namespace {

using namespace wa;

backend::ConvGeometry geom(std::int64_t cin, std::int64_t cout, std::int64_t hw) {
  backend::ConvGeometry g;
  g.batch = 1;
  g.in_channels = cin;
  g.out_channels = cout;
  g.height = hw;
  g.width = hw;
  g.kernel = 3;
  g.pad = 1;
  return g;
}

/// Median-of-reps wall time of f(), warmed up once.
double time_ms(const std::function<void()>& f) {
  using clock = std::chrono::steady_clock;
  f();  // warm-up (arena growth, page faults)
  std::vector<double> runs;
  double total = 0.0;
  while (runs.size() < 21 && (total < 300.0 || runs.size() < 5)) {
    const auto t0 = clock::now();
    f();
    const double ms = std::chrono::duration<double, std::milli>(clock::now() - t0).count();
    runs.push_back(ms);
    total += ms;
  }
  std::sort(runs.begin(), runs.end());
  return runs[runs.size() / 2];
}

struct GridPoint {
  std::int64_t cin, cout, hw;
  int m;  // Winograd output tile (F2 / F4)
};

}  // namespace

int main(int argc, char** argv) {
  // Optional argv[1]: where to write the machine-readable BENCH_engine.json
  // (the checked-in copy lives at bench/BENCH_engine.json; CI's bench smoke
  // regenerates it to catch drift in the measured section list).
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_engine.json";
  std::printf("Engine speedup — seed per-call path vs cached-U + arena (Fig. 7 shapes)\n");
  std::printf("%-22s %-4s | %12s %12s %7s | %12s %12s %7s\n", "shape", "cfg", "int8/call",
              "int8/cached", "ratio", "fp32/call", "fp32/cached", "ratio");

  const std::vector<GridPoint> grid = {
      {3, 32, 8, 2},    {3, 32, 16, 2},   {32, 64, 8, 2},   {32, 64, 16, 2},
      {32, 64, 24, 2},  {128, 192, 8, 2}, {128, 192, 16, 2}, {128, 192, 8, 4},
      {128, 192, 16, 4}, {256, 512, 8, 4},
  };

  Rng rng(42);
  double worst_int8 = 1e9, worst_fp32 = 1e9;
  double geo_int8 = 1.0, geo_fp32 = 1.0;
  for (const auto& p : grid) {
    const auto g = geom(p.cin, p.cout, p.hw);
    const auto tr = wino::make_transforms(p.m, 3);
    const Tensor w = Tensor::randn({p.cout, p.cin, 3, 3}, rng, 0.3F);
    const Tensor x = Tensor::randn({1, p.cin, p.hw, p.hw}, rng);
    const backend::QTensor qx = backend::quantize_s8(x);

    const auto prepared = backend::prepare_winograd_weights_s8(w, tr);
    backend::WinogradStageScales scales;
    scales.weights_transformed = prepared.scale;
    const Tensor u = backend::winograd_transform_weights(w, tr);

    const double s8_seed = time_ms([&] { backend::winograd_conv_s8(qx, w, g, tr, scales); });
    const double s8_cached =
        time_ms([&] { backend::winograd_conv_s8_prepared(qx, prepared, g, tr, scales); });
    const double f32_seed = time_ms([&] { backend::winograd_conv(x, w, g, tr); });
    const double f32_cached = time_ms([&] { backend::winograd_conv_prepared(x, u, g, tr); });

    const double r8 = s8_seed / s8_cached;
    const double r32 = f32_seed / f32_cached;
    worst_int8 = std::min(worst_int8, r8);
    worst_fp32 = std::min(worst_fp32, r32);
    geo_int8 *= r8;
    geo_fp32 *= r32;
    std::printf("%4lld->%-4lld out=%-6lld F%-3d | %9.3f ms %9.3f ms %6.2fx | %9.3f ms %9.3f ms %6.2fx\n",
                static_cast<long long>(p.cin), static_cast<long long>(p.cout),
                static_cast<long long>(p.hw), p.m, s8_seed, s8_cached, r8, f32_seed, f32_cached,
                r32);
  }
  const double n = static_cast<double>(grid.size());
  std::printf("\ngeomean ratio: int8 %.2fx, fp32 %.2fx   worst: int8 %.2fx, fp32 %.2fx\n",
              std::pow(geo_int8, 1.0 / n), std::pow(geo_fp32, 1.0 / n), worst_int8, worst_fp32);
  std::printf("(target: >= 1.3x on the transform-bound shapes; GEMM-bound shapes trend to 1x)\n");

  // ---- per-backend comparison on the cached int8 path ----------------------
  // Same Fig. 7 shapes, prepared Winograd path, batch 1: every registered
  // SIMD backend against the scalar reference (the acceptance trail for the
  // dispatch layer: >= 2x geomean for avx2 on an AVX2 host).
  const auto backends = backend::simd::available_backends();
  const std::string active = backend::simd::active_backend();
  if (backends.size() > 1) {
    std::printf("\nPer-backend int8 prepared path (vs scalar reference, batch 1)\n");
    std::printf("%-22s %-4s | %12s", "shape", "cfg", "scalar");
    for (const auto& b : backends) {
      if (b != "scalar") std::printf(" %12s %7s", b.c_str(), "ratio");
    }
    std::printf("\n");
    std::vector<double> geo(backends.size(), 1.0);
    for (const auto& p : grid) {
      const auto g = geom(p.cin, p.cout, p.hw);
      const auto tr = wino::make_transforms(p.m, 3);
      Rng brng(7);
      const Tensor w = Tensor::randn({p.cout, p.cin, 3, 3}, brng, 0.3F);
      const Tensor x = Tensor::randn({1, p.cin, p.hw, p.hw}, brng);
      const backend::QTensor qx = backend::quantize_s8(x);
      const auto prepared = backend::prepare_winograd_weights_s8(w, tr);
      backend::WinogradStageScales scales;
      scales.weights_transformed = prepared.scale;

      backend::simd::set_backend("scalar");
      const double base =
          time_ms([&] { backend::winograd_conv_s8_prepared(qx, prepared, g, tr, scales); });
      std::printf("%4lld->%-4lld out=%-6lld F%-3d | %9.3f ms", static_cast<long long>(p.cin),
                  static_cast<long long>(p.cout), static_cast<long long>(p.hw), p.m, base);
      for (std::size_t bi = 0; bi < backends.size(); ++bi) {
        if (backends[bi] == "scalar") continue;
        backend::simd::set_backend(backends[bi]);
        const double ms =
            time_ms([&] { backend::winograd_conv_s8_prepared(qx, prepared, g, tr, scales); });
        geo[bi] *= base / ms;
        std::printf(" %9.3f ms %6.2fx", ms, base / ms);
      }
      std::printf("\n");
    }
    for (std::size_t bi = 0; bi < backends.size(); ++bi) {
      if (backends[bi] == "scalar") continue;
      std::printf("backend %-8s geomean vs scalar: %.2fx (target >= 2x for avx2)\n",
                  backends[bi].c_str(), std::pow(geo[bi], 1.0 / n));
    }
    backend::simd::set_backend(active);
  } else {
    std::printf("\n(only the scalar backend is available on this host — per-backend "
                "comparison skipped)\n");
  }

  // ---- fused blocked executor vs flat (frozen per-stage scales) -------------
  // The tentpole trail for the streaming tile-block engine: with every
  // internal scale frozen (the deployment case — dynamic scales force flat),
  // the fused transform->GEMM->inverse loop against the flat reference forced
  // via set_winograd_blocked_enabled(false). Same shapes, same backend, the
  // logits bit-identical by contract; only the schedule and layout differ.
  std::printf("\nFused blocked executor vs flat Winograd path (frozen scales, batch 1)\n");
  struct BlockedCell {
    double flat_ms = 0.0, blocked_ms = 0.0;
  };
  // blocked_grid[backend][shape index]
  std::map<std::string, std::vector<BlockedCell>> blocked_grid;
  std::map<std::string, double> blocked_geo;
  for (const std::string& bname : backends) {
    backend::simd::set_backend(bname);
    std::printf("backend %s\n", bname.c_str());
    std::printf("  %-22s %-4s | %12s %12s %7s\n", "shape", "cfg", "flat", "blocked", "ratio");
    double geo = 1.0;
    auto& cells = blocked_grid[bname];
    for (const auto& p : grid) {
      const auto g = geom(p.cin, p.cout, p.hw);
      const auto tr = wino::make_transforms(p.m, 3);
      Rng brng(13);
      const Tensor w = Tensor::randn({p.cout, p.cin, 3, 3}, brng, 0.3F);
      const Tensor x = Tensor::randn({1, p.cin, p.hw, p.hw}, brng);
      const backend::QTensor qx = backend::quantize_s8(x);
      const auto prepared = backend::prepare_winograd_weights_s8(w, tr);
      backend::WinogradStageScales scales;
      scales.weights_transformed = prepared.scale;
      scales.input_transformed = 0.1F;  // frozen: the blocked-path precondition
      scales.hadamard = 0.05F;
      scales.output = 0.1F;

      backend::set_winograd_blocked_enabled(false);
      const double flat_ms =
          time_ms([&] { backend::winograd_conv_s8_prepared(qx, prepared, g, tr, scales); });
      const backend::QTensor flat_out =
          backend::winograd_conv_s8_prepared(qx, prepared, g, tr, scales);
      backend::set_winograd_blocked_enabled(true);
      const double blocked_ms =
          time_ms([&] { backend::winograd_conv_s8_prepared(qx, prepared, g, tr, scales); });
      const backend::QTensor blocked_out =
          backend::winograd_conv_s8_prepared(qx, prepared, g, tr, scales);
      if (blocked_out.data != flat_out.data) {
        std::printf("  FATAL: blocked output diverged from flat on %s\n", bname.c_str());
        return 1;
      }
      const double r = flat_ms / blocked_ms;
      geo *= r;
      cells.push_back({flat_ms, blocked_ms});
      std::printf("  %4lld->%-4lld out=%-6lld F%-3d | %9.3f ms %9.3f ms %6.2fx\n",
                  static_cast<long long>(p.cin), static_cast<long long>(p.cout),
                  static_cast<long long>(p.hw), p.m, flat_ms, blocked_ms, r);
    }
    blocked_geo[bname] = std::pow(geo, 1.0 / n);
    // The 1.25x bar applies to the SIMD backends: the scalar blocked path is
    // the bit-exactness reference and has no wide transforms to win with.
    std::printf("  geomean blocked vs flat: %.2fx%s\n", blocked_geo[bname],
                bname == "scalar" ? "" : " (target >= 1.25x)");
  }
  backend::simd::set_backend(active);

  // ---- machine-readable summary (BENCH_engine.json) -------------------------
  {
    std::FILE* jf = std::fopen(json_path.c_str(), "w");
    if (jf == nullptr) {
      std::printf("cannot open %s for write\n", json_path.c_str());
      return 1;
    }
    std::fprintf(jf, "{\n  \"bench\": \"engine_speedup\",\n  \"unit\": \"ns_per_call\",\n");
    std::fprintf(jf, "  \"grid\": [\n");
    for (std::size_t i = 0; i < grid.size(); ++i) {
      const auto& p = grid[i];
      std::fprintf(jf,
                   "    {\"cin\": %lld, \"cout\": %lld, \"hw\": %lld, \"tile\": \"F%d\"",
                   static_cast<long long>(p.cin), static_cast<long long>(p.cout),
                   static_cast<long long>(p.hw), p.m);
      for (const std::string& bname : backends) {
        const BlockedCell& c = blocked_grid[bname][i];
        std::fprintf(jf, ", \"%s_flat_ns\": %.0f, \"%s_blocked_ns\": %.0f", bname.c_str(),
                     c.flat_ms * 1e6, bname.c_str(), c.blocked_ms * 1e6);
      }
      std::fprintf(jf, "}%s\n", i + 1 < grid.size() ? "," : "");
    }
    std::fprintf(jf, "  ],\n  \"geomean_blocked_vs_flat\": {");
    for (std::size_t bi = 0; bi < backends.size(); ++bi) {
      std::fprintf(jf, "%s\"%s\": %.3f", bi > 0 ? ", " : "", backends[bi].c_str(),
                   blocked_geo[backends[bi]]);
    }
    std::fprintf(jf, "},\n  \"geomean_blocked_vs_scalar_flat\": {");
    // Cross-backend view at the engine's defaults: each backend's blocked
    // path against the scalar backend's flat path (the all-off baseline).
    for (std::size_t bi = 0; bi < backends.size(); ++bi) {
      double geo = 1.0;
      for (std::size_t i = 0; i < grid.size(); ++i) {
        geo *= blocked_grid[backends.front()][i].flat_ms / blocked_grid[backends[bi]][i].blocked_ms;
      }
      std::fprintf(jf, "%s\"%s\": %.3f", bi > 0 ? ", " : "", backends[bi].c_str(),
                   std::pow(geo, 1.0 / n));
    }
    std::fprintf(jf, "}\n}\n");
    std::fclose(jf);
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  // ---- pass-based optimizer on the compiled paper models --------------------
  // Whole-pipeline view of src/deploy/passes: planner-on vs planner-off
  // latency and peak activation bytes on compiled LeNet-5 and ResNet-18,
  // bit-identity enforced. (resnet_deploy carries the >= 30% peak bar; this
  // is the cross-model latency trail.)
  std::printf("\nPass-based optimizer (planner-on vs planner-off, batch 4)\n");
  std::printf("%-12s | %9s -> %-9s | %10s -> %-10s %8s | %5s\n", "model", "ms/fwd", "ms/fwd",
              "peak B", "peak B", "drop", "diff");
  const auto report_model = [&](const char* name, deploy::Int8Pipeline pipe, Shape in_shape) {
    Rng drng(11);
    const Tensor x = Tensor::randn(in_shape, drng);
    pipe.freeze_scales(x);
    deploy::Int8Pipeline optimized = pipe;
    deploy::passes::OptimizeOptions opts;
    opts.reference_input = in_shape;
    deploy::passes::optimize_pipeline(optimized, opts);
    deploy::RunStats off{}, on{};
    const Tensor a = pipe.run(x, nullptr, &off);
    const Tensor b = optimized.run(x, nullptr, &on);
    const double ms_off = time_ms([&] { pipe.run(x); });
    const double ms_on = time_ms([&] { optimized.run(x); });
    const double drop = off.peak_activation_bytes > 0
                            ? 100.0 * (1.0 - static_cast<double>(on.peak_activation_bytes) /
                                                 static_cast<double>(off.peak_activation_bytes))
                            : 0.0;
    std::printf("%-12s | %9.3f -> %-9.3f | %10lld -> %-10lld %7.1f%% | %5g\n", name, ms_off,
                ms_on, static_cast<long long>(off.peak_activation_bytes),
                static_cast<long long>(on.peak_activation_bytes), drop,
                static_cast<double>(Tensor::max_abs_diff(a, b)));
  };
  {
    Rng mrng(3);
    models::LeNetConfig cfg;
    cfg.algo = nn::ConvAlgo::kWinograd2;
    cfg.qspec = quant::QuantSpec{8};
    models::LeNet5 net(cfg, mrng);
    net.set_training(true);
    for (int i = 0; i < 2; ++i) {
      net.forward(ag::Variable(Tensor::randn({4, 1, 28, 28}, mrng), false));
    }
    report_model("lenet-5", deploy::compile_lenet(net), {4, 1, 28, 28});
  }
  {
    Rng mrng(4);
    models::ResNetConfig cfg;
    cfg.width_mult = 0.125F;
    cfg.algo = nn::ConvAlgo::kWinograd2;
    cfg.qspec = quant::QuantSpec{8};
    models::ResNet18 net(cfg, mrng);
    net.set_training(true);
    for (int i = 0; i < 2; ++i) {
      net.forward(ag::Variable(Tensor::randn({4, 3, 32, 32}, mrng), false));
    }
    report_model("resnet-18", deploy::compile_resnet18(net), {4, 3, 32, 32});
  }
  std::printf("(diff must be 0: optimized execution is bit-identical by contract)\n");
  return 0;
}
