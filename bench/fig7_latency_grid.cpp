// Figure 7 reproduction: latency grid of im2row vs F2/F4/F6 on a Cortex-A73
// (FP32, batch 1) sweeping output width/height and channel configurations.
// Also prints Table 2 (the core specs the model is built from).
//
// Checks the paper's three stated findings:
//  (1) im2row is consistently optimal for the input layer (3 -> 32);
//  (2) the best Winograd config alternates between F4 and F6 with output
//      size (tile-edge waste) for deeper layers;
//  (3) the choice is driven by output size, not by inCh -> outCh.
// Beyond the cost model, the harness also *measures* the int8 engine on the
// deep-layer Fig. 7 shapes: F2 vs F4, per-tensor vs per-tap requantization
// (scales calibrated from the actual fp32 tap ranges), reporting latency and
// closeness to the fp32 reference. Merged into BENCH_engine.json under
// "fig7_f2_vs_f4" so the trajectory is tracked.
//
//   build/bench/fig7_latency_grid [json=BENCH_engine.json]
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "backend/conv_kernels.hpp"
#include "backend/conv_kernels_s8.hpp"
#include "bench_common.hpp"
#include "latency/cost_model.hpp"
#include "winograd/small_mat.hpp"

namespace {

using namespace wa;
using latency::DType;
using latency::LatencyModel;
using latency::LayerDesc;

LayerDesc make_layer(std::int64_t cin, std::int64_t cout, std::int64_t out_hw, nn::ConvAlgo algo) {
  LayerDesc l;
  l.geom.batch = 1;
  l.geom.in_channels = cin;
  l.geom.out_channels = cout;
  l.geom.height = out_hw;  // pad=1, k=3: output size == input size
  l.geom.width = out_hw;
  l.geom.kernel = 3;
  l.geom.pad = 1;
  l.algo = algo;
  l.dtype = DType::kFp32;
  return l;
}

// A row of the paper's Fig. 7 (A73, FP32, in milliseconds) for comparison.
struct PaperRow {
  int out_w;
  double im2row, f2, f4, f6;
};

// Columns 3->32 and 256->512 of the published grid (selected rows).
const std::vector<PaperRow> kPaper3to32 = {
    {8, 0.031, 0.059, 0.064, 0.133},   {16, 0.111, 0.235, 0.153, 0.283},
    {24, 0.247, 0.452, 0.324, 0.409},
};
const std::vector<PaperRow> kPaper256to512 = {
    {8, 28.238, 14.930, 11.499, 21.241}, {16, 109.943, 57.083, 34.190, 60.504},
    {24, 251.771, 125.604, 83.167, 67.047},
};

void print_grid(const LatencyModel& model, std::int64_t cin, std::int64_t cout) {
  std::printf("\n  inCh=%lld -> outCh=%lld (A73, FP32, ms)\n", static_cast<long long>(cin),
              static_cast<long long>(cout));
  std::printf("  %-6s %10s %10s %10s %10s   best\n", "outW", "im2row", "F2", "F4", "F6");
  for (std::int64_t w = 2; w <= 24; w += 2) {
    const double base = model.conv_cost(make_layer(cin, cout, w, nn::ConvAlgo::kIm2row)).total_ms();
    const double f2 = model.conv_cost(make_layer(cin, cout, w, nn::ConvAlgo::kWinograd2)).total_ms();
    const double f4 = model.conv_cost(make_layer(cin, cout, w, nn::ConvAlgo::kWinograd4)).total_ms();
    const double f6 = model.conv_cost(make_layer(cin, cout, w, nn::ConvAlgo::kWinograd6)).total_ms();
    const char* best = "im2row";
    double bv = base;
    if (f2 < bv) { bv = f2; best = "F2"; }
    if (f4 < bv) { bv = f4; best = "F4"; }
    if (f6 < bv) { bv = f6; best = "F6"; }
    std::printf("  %-6lld %10.4f %10.4f %10.4f %10.4f   %s\n", static_cast<long long>(w), base,
                f2, f4, f6, best);
  }
}

void print_paper_ref(const char* title, const std::vector<PaperRow>& rows) {
  std::printf("\n  Paper reference — %s (ms):\n", title);
  std::printf("  %-6s %10s %10s %10s %10s\n", "outW", "im2row", "F2", "F4", "F6");
  for (const auto& r : rows) {
    std::printf("  %-6d %10.3f %10.3f %10.3f %10.3f\n", r.out_w, r.im2row, r.f2, r.f4, r.f6);
  }
}

// ---- measured int8 F2-vs-F4 section ----------------------------------------

/// Median wall time of f() over a handful of reps, warmed up once.
double time_ms(const std::function<void()>& f) {
  using clock = std::chrono::steady_clock;
  f();
  std::vector<double> runs;
  double total = 0.0;
  while (runs.size() < 11 && (total < 150.0 || runs.size() < 5)) {
    const auto t0 = clock::now();
    f();
    runs.push_back(std::chrono::duration<double, std::milli>(clock::now() - t0).count());
    total += runs.back();
  }
  std::sort(runs.begin(), runs.end());
  return runs[runs.size() / 2];
}

struct TapRanges {
  std::vector<float> su, sv, sm;  // per-tap scales, t*t entries each
  float so = 0.F;                 // per-tensor output scale
};

/// Calibrate per-tap quantization scales from the actual fp32 tap ranges:
/// walk every input tile, V = Bᵀ d B per channel, M[ab] = Σ_c U[ab]·V[ab],
/// and take per-tap abs-max / 127 (symmetric int8 grid). This mirrors what
/// the QAT tap observers converge to, without training a model.
TapRanges calibrate_taps(const Tensor& x, const Tensor& u, const Tensor& y_ref,
                         const backend::ConvGeometry& g, const wino::Transforms& tr) {
  const std::int64_t t = tr.tile, m = tr.m, t2 = t * t;
  const std::int64_t out_h = g.height + 2 * g.pad - g.kernel + 1;
  const std::int64_t out_w = g.width + 2 * g.pad - g.kernel + 1;
  const std::int64_t th = (out_h + m - 1) / m, tw = (out_w + m - 1) / m;
  std::vector<float> vmax(static_cast<std::size_t>(t2), 0.F);
  std::vector<float> mmax(static_cast<std::size_t>(t2), 0.F);
  std::vector<float> umax(static_cast<std::size_t>(t2), 0.F);
  for (std::int64_t ab = 0; ab < t2; ++ab) {
    for (std::int64_t k = 0; k < g.out_channels; ++k) {
      for (std::int64_t c = 0; c < g.in_channels; ++c) {
        umax[static_cast<std::size_t>(ab)] =
            std::max(umax[static_cast<std::size_t>(ab)], std::fabs(u.at((ab * g.out_channels + k) * g.in_channels + c)));
      }
    }
  }
  std::vector<float> v(static_cast<std::size_t>(g.in_channels * t2));
  float d[wino::kSmallMatCap], tmp[wino::kSmallMatCap], vt[wino::kSmallMatCap];
  for (std::int64_t n = 0; n < g.batch; ++n) {
    for (std::int64_t ti = 0; ti < th; ++ti) {
      for (std::int64_t tj = 0; tj < tw; ++tj) {
        for (std::int64_t c = 0; c < g.in_channels; ++c) {
          for (std::int64_t a = 0; a < t; ++a) {
            for (std::int64_t b = 0; b < t; ++b) {
              const std::int64_t hi = ti * m - g.pad + a, wi = tj * m - g.pad + b;
              d[a * t + b] = (hi >= 0 && hi < g.height && wi >= 0 && wi < g.width)
                                 ? x.at(((n * g.in_channels + c) * g.height + hi) * g.width + wi)
                                 : 0.F;
            }
          }
          wino::smm_sandwich(tr.bt_mat.raw(), static_cast<int>(t), static_cast<int>(t), d, tmp, vt);
          for (std::int64_t ab = 0; ab < t2; ++ab) {
            v[static_cast<std::size_t>(c * t2 + ab)] = vt[ab];
            vmax[static_cast<std::size_t>(ab)] =
                std::max(vmax[static_cast<std::size_t>(ab)], std::fabs(vt[ab]));
          }
        }
        for (std::int64_t ab = 0; ab < t2; ++ab) {
          for (std::int64_t k = 0; k < g.out_channels; ++k) {
            float acc = 0.F;
            for (std::int64_t c = 0; c < g.in_channels; ++c) {
              acc += u.at((ab * g.out_channels + k) * g.in_channels + c) *
                     v[static_cast<std::size_t>(c * t2 + ab)];
            }
            mmax[static_cast<std::size_t>(ab)] =
                std::max(mmax[static_cast<std::size_t>(ab)], std::fabs(acc));
          }
        }
      }
    }
  }
  TapRanges r;
  r.su.resize(static_cast<std::size_t>(t2));
  r.sv.resize(static_cast<std::size_t>(t2));
  r.sm.resize(static_cast<std::size_t>(t2));
  for (std::int64_t ab = 0; ab < t2; ++ab) {
    r.su[static_cast<std::size_t>(ab)] = std::max(umax[static_cast<std::size_t>(ab)], 1e-8F) / 127.F;
    r.sv[static_cast<std::size_t>(ab)] = std::max(vmax[static_cast<std::size_t>(ab)], 1e-8F) / 127.F;
    r.sm[static_cast<std::size_t>(ab)] = std::max(mmax[static_cast<std::size_t>(ab)], 1e-8F) / 127.F;
  }
  float ymax = 0.F;
  for (std::int64_t i = 0; i < y_ref.numel(); ++i) ymax = std::max(ymax, std::fabs(y_ref.at(i)));
  r.so = std::max(ymax, 1e-8F) / 127.F;
  return r;
}

double rel_rmse(const backend::QTensor& got, const Tensor& ref) {
  const Tensor dq = backend::dequantize(got);
  double num = 0.0, den = 0.0;
  for (std::int64_t i = 0; i < ref.numel(); ++i) {
    const double e = static_cast<double>(dq.at(i)) - static_cast<double>(ref.at(i));
    num += e * e;
    den += static_cast<double>(ref.at(i)) * static_cast<double>(ref.at(i));
  }
  return den > 0.0 ? std::sqrt(num / den) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wa;
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_engine.json";
  bench::banner("Figure 7 — convolution latency grid (cost model, Cortex-A73, FP32)");

  bench::note("Table 2 core specifications driving the model:");
  for (const auto& spec : {latency::cortex_a73(), latency::cortex_a53()}) {
    std::printf("  %-12s %.1f GHz  L2 %4.0f KB  (gemm eff %.2f, transform %.1f GB/s)\n",
                spec.name.c_str(), spec.clock_ghz, spec.l2_kb, spec.gemm_efficiency,
                spec.transform_gbps);
  }

  const latency::LatencyModel a73(latency::cortex_a73());
  print_grid(a73, 3, 32);
  print_paper_ref("3 -> 32", kPaper3to32);
  print_grid(a73, 32, 64);
  print_grid(a73, 128, 192);
  print_grid(a73, 192, 256);
  print_grid(a73, 256, 512);
  print_paper_ref("256 -> 512", kPaper256to512);

  bench::banner("Findings check");
  // (1) input layer: im2row wins everywhere.
  bool input_ok = true;
  for (std::int64_t w = 4; w <= 32; w += 4) {
    const double base = a73.conv_cost(make_layer(3, 32, w, nn::ConvAlgo::kIm2row)).total_ms();
    for (auto algo : {nn::ConvAlgo::kWinograd2, nn::ConvAlgo::kWinograd4, nn::ConvAlgo::kWinograd6}) {
      input_ok = input_ok && base < a73.conv_cost(make_layer(3, 32, w, algo)).total_ms();
    }
  }
  bench::row("(1) im2row optimal on input layer", "yes", input_ok ? "yes" : "NO");

  // (2) F4/F6 alternation by output size.
  const double f4_6 = a73.conv_cost(make_layer(128, 192, 6, nn::ConvAlgo::kWinograd4)).total_ms();
  const double f6_6 = a73.conv_cost(make_layer(128, 192, 6, nn::ConvAlgo::kWinograd6)).total_ms();
  const double f4_8 = a73.conv_cost(make_layer(128, 192, 8, nn::ConvAlgo::kWinograd4)).total_ms();
  const double f6_8 = a73.conv_cost(make_layer(128, 192, 8, nn::ConvAlgo::kWinograd6)).total_ms();
  bench::row("(2) F6 best at outW=6, F4 best at outW=8", "yes",
             (f6_6 < f4_6 && f4_8 < f6_8) ? "yes" : "NO");

  // (3) choice invariant to channel configuration (compare winners).
  bool invariant = true;
  for (std::int64_t w : {6, 8, 12, 16}) {
    int winner_small = -1, winner_big = -1;
    auto winner = [&](std::int64_t cin, std::int64_t cout) {
      double best = 1e100;
      int arg = 0, i = 0;
      for (auto algo : {nn::ConvAlgo::kWinograd2, nn::ConvAlgo::kWinograd4, nn::ConvAlgo::kWinograd6}) {
        const double v = a73.conv_cost(make_layer(cin, cout, w, algo)).total_ms();
        if (v < best) {
          best = v;
          arg = i;
        }
        ++i;
      }
      return arg;
    };
    winner_small = winner(64, 64);
    winner_big = winner(256, 512);
    invariant = invariant && winner_small == winner_big;
  }
  bench::row("(3) winner invariant to inCh->outCh", "yes (generally)", invariant ? "yes" : "NO");

  // ---- measured int8 engine: F2 vs F4, per-tensor vs per-tap ----------------
  bench::banner("Measured int8 engine — F2 vs F4 on the deep Fig. 7 shapes");
  bench::note("scales calibrated from the fp32 tap ranges; rel-RMSE vs the fp32");
  bench::note("Winograd reference isolates the quantization error per config");
  struct Shape3 {
    std::int64_t cin, cout, hw;
  };
  // Deep layers at out=16: the tile-economics corner where F4's 4x fewer
  // tiles beat F2 (out=8 gives F4 only 2x2 tiles — too narrow a GEMM).
  const std::vector<Shape3> shapes = {{32, 64, 16}, {128, 192, 16}, {256, 512, 16}};
  std::printf("\n  %-18s | %9s %9s | %11s %9s %12s\n", "shape", "F2 ms", "F2 rmse", "F4/tap ms",
              "F4 rmse", "F4/tap rmse");
  std::string json = "[";
  bool f4_faster_everywhere = true;
  for (std::size_t si = 0; si < shapes.size(); ++si) {
    const auto& s = shapes[si];
    backend::ConvGeometry g;
    g.batch = 1;
    g.in_channels = s.cin;
    g.out_channels = s.cout;
    g.height = s.hw;
    g.width = s.hw;
    g.kernel = 3;
    g.pad = 1;
    Rng rng(29 + static_cast<std::uint64_t>(si));
    const Tensor w = Tensor::randn({s.cout, s.cin, 3, 3}, rng, 0.3F);
    const Tensor x = Tensor::randn({1, s.cin, s.hw, s.hw}, rng);
    const backend::QTensor qx = backend::quantize_s8(x);

    struct ConfigOut {
      double ms = 0.0, rmse = 0.0;
    };
    const auto run_cfg = [&](int m, bool per_tap) {
      const auto tr = wino::make_transforms(m, 3);
      const Tensor u = backend::winograd_transform_weights(w, tr);
      const Tensor y_ref = backend::winograd_conv_prepared(x, u, g, tr);
      const TapRanges taps = calibrate_taps(x, u, y_ref, g, tr);
      backend::WinogradStageScales scales;
      backend::WinogradWeightsS8 prepared;
      if (per_tap) {
        prepared = backend::prepare_winograd_weights_s8(w, tr, -1.F, taps.su);
        scales.weights_transformed_taps = taps.su;
        scales.input_transformed_taps = taps.sv;
        scales.hadamard_taps = taps.sm;
        scales.weights_transformed = taps.su.front();
        scales.input_transformed = taps.sv.front();
        scales.hadamard = taps.sm.front();
      } else {
        prepared = backend::prepare_winograd_weights_s8(w, tr);
        scales.weights_transformed = prepared.scale;
        scales.input_transformed = *std::max_element(taps.sv.begin(), taps.sv.end());
        scales.hadamard = *std::max_element(taps.sm.begin(), taps.sm.end());
      }
      scales.output = taps.so;
      ConfigOut out;
      out.ms = time_ms([&] { backend::winograd_conv_s8_prepared(qx, prepared, g, tr, scales); });
      out.rmse = rel_rmse(backend::winograd_conv_s8_prepared(qx, prepared, g, tr, scales), y_ref);
      return out;
    };
    const ConfigOut f2 = run_cfg(2, false);
    const ConfigOut f4 = run_cfg(4, false);
    const ConfigOut f4_tap = run_cfg(4, true);
    // Fig. 7's claim holds for the deep layers; 32->64 is transform-bound
    // and F2 keeps it (that row is tracked but not part of the finding).
    if (s.cin >= 128) f4_faster_everywhere = f4_faster_everywhere && f4_tap.ms < f2.ms;
    std::printf("  %4lld->%-4lld out=%-3lld | %9.3f %9.4f | %9.3f %9.4f %12.4f\n",
                static_cast<long long>(s.cin), static_cast<long long>(s.cout),
                static_cast<long long>(s.hw), f2.ms, f2.rmse, f4_tap.ms, f4.rmse, f4_tap.rmse);
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"cin\": %lld, \"cout\": %lld, \"hw\": %lld, \"f2_ms\": %.4f, "
                  "\"f2_rmse\": %.5f, \"f4_ms\": %.4f, \"f4_per_tensor_rmse\": %.5f, "
                  "\"f4_per_tap_ms\": %.4f, \"f4_per_tap_rmse\": %.5f}",
                  si > 0 ? ", " : "", static_cast<long long>(s.cin),
                  static_cast<long long>(s.cout), static_cast<long long>(s.hw), f2.ms, f2.rmse,
                  f4.ms, f4.rmse, f4_tap.ms, f4_tap.rmse);
    json += buf;
  }
  json += "]";
  bench::row("per-tap F4 faster than F2 on deep shapes", "yes",
             f4_faster_everywhere ? "yes" : "NO");
  if (bench::merge_json_section(json_path, "fig7_f2_vs_f4", json)) {
    std::printf("  merged section \"fig7_f2_vs_f4\" into %s\n", json_path.c_str());
  } else {
    std::printf("  WARNING: could not merge section into %s\n", json_path.c_str());
  }
  return 0;
}
