// Figure 7 reproduction: latency grid of im2row vs F2/F4/F6 on a Cortex-A73
// (FP32, batch 1) sweeping output width/height and channel configurations.
// Also prints Table 2 (the core specs the model is built from).
//
// Checks the paper's three stated findings:
//  (1) im2row is consistently optimal for the input layer (3 -> 32);
//  (2) the best Winograd config alternates between F4 and F6 with output
//      size (tile-edge waste) for deeper layers;
//  (3) the choice is driven by output size, not by inCh -> outCh.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "latency/cost_model.hpp"

namespace {

using namespace wa;
using latency::DType;
using latency::LatencyModel;
using latency::LayerDesc;

LayerDesc make_layer(std::int64_t cin, std::int64_t cout, std::int64_t out_hw, nn::ConvAlgo algo) {
  LayerDesc l;
  l.geom.batch = 1;
  l.geom.in_channels = cin;
  l.geom.out_channels = cout;
  l.geom.height = out_hw;  // pad=1, k=3: output size == input size
  l.geom.width = out_hw;
  l.geom.kernel = 3;
  l.geom.pad = 1;
  l.algo = algo;
  l.dtype = DType::kFp32;
  return l;
}

// A row of the paper's Fig. 7 (A73, FP32, in milliseconds) for comparison.
struct PaperRow {
  int out_w;
  double im2row, f2, f4, f6;
};

// Columns 3->32 and 256->512 of the published grid (selected rows).
const std::vector<PaperRow> kPaper3to32 = {
    {8, 0.031, 0.059, 0.064, 0.133},   {16, 0.111, 0.235, 0.153, 0.283},
    {24, 0.247, 0.452, 0.324, 0.409},
};
const std::vector<PaperRow> kPaper256to512 = {
    {8, 28.238, 14.930, 11.499, 21.241}, {16, 109.943, 57.083, 34.190, 60.504},
    {24, 251.771, 125.604, 83.167, 67.047},
};

void print_grid(const LatencyModel& model, std::int64_t cin, std::int64_t cout) {
  std::printf("\n  inCh=%lld -> outCh=%lld (A73, FP32, ms)\n", static_cast<long long>(cin),
              static_cast<long long>(cout));
  std::printf("  %-6s %10s %10s %10s %10s   best\n", "outW", "im2row", "F2", "F4", "F6");
  for (std::int64_t w = 2; w <= 24; w += 2) {
    const double base = model.conv_cost(make_layer(cin, cout, w, nn::ConvAlgo::kIm2row)).total_ms();
    const double f2 = model.conv_cost(make_layer(cin, cout, w, nn::ConvAlgo::kWinograd2)).total_ms();
    const double f4 = model.conv_cost(make_layer(cin, cout, w, nn::ConvAlgo::kWinograd4)).total_ms();
    const double f6 = model.conv_cost(make_layer(cin, cout, w, nn::ConvAlgo::kWinograd6)).total_ms();
    const char* best = "im2row";
    double bv = base;
    if (f2 < bv) { bv = f2; best = "F2"; }
    if (f4 < bv) { bv = f4; best = "F4"; }
    if (f6 < bv) { bv = f6; best = "F6"; }
    std::printf("  %-6lld %10.4f %10.4f %10.4f %10.4f   %s\n", static_cast<long long>(w), base,
                f2, f4, f6, best);
  }
}

void print_paper_ref(const char* title, const std::vector<PaperRow>& rows) {
  std::printf("\n  Paper reference — %s (ms):\n", title);
  std::printf("  %-6s %10s %10s %10s %10s\n", "outW", "im2row", "F2", "F4", "F6");
  for (const auto& r : rows) {
    std::printf("  %-6d %10.3f %10.3f %10.3f %10.3f\n", r.out_w, r.im2row, r.f2, r.f4, r.f6);
  }
}

}  // namespace

int main() {
  using namespace wa;
  bench::banner("Figure 7 — convolution latency grid (cost model, Cortex-A73, FP32)");

  bench::note("Table 2 core specifications driving the model:");
  for (const auto& spec : {latency::cortex_a73(), latency::cortex_a53()}) {
    std::printf("  %-12s %.1f GHz  L2 %4.0f KB  (gemm eff %.2f, transform %.1f GB/s)\n",
                spec.name.c_str(), spec.clock_ghz, spec.l2_kb, spec.gemm_efficiency,
                spec.transform_gbps);
  }

  const latency::LatencyModel a73(latency::cortex_a73());
  print_grid(a73, 3, 32);
  print_paper_ref("3 -> 32", kPaper3to32);
  print_grid(a73, 32, 64);
  print_grid(a73, 128, 192);
  print_grid(a73, 192, 256);
  print_grid(a73, 256, 512);
  print_paper_ref("256 -> 512", kPaper256to512);

  bench::banner("Findings check");
  // (1) input layer: im2row wins everywhere.
  bool input_ok = true;
  for (std::int64_t w = 4; w <= 32; w += 4) {
    const double base = a73.conv_cost(make_layer(3, 32, w, nn::ConvAlgo::kIm2row)).total_ms();
    for (auto algo : {nn::ConvAlgo::kWinograd2, nn::ConvAlgo::kWinograd4, nn::ConvAlgo::kWinograd6}) {
      input_ok = input_ok && base < a73.conv_cost(make_layer(3, 32, w, algo)).total_ms();
    }
  }
  bench::row("(1) im2row optimal on input layer", "yes", input_ok ? "yes" : "NO");

  // (2) F4/F6 alternation by output size.
  const double f4_6 = a73.conv_cost(make_layer(128, 192, 6, nn::ConvAlgo::kWinograd4)).total_ms();
  const double f6_6 = a73.conv_cost(make_layer(128, 192, 6, nn::ConvAlgo::kWinograd6)).total_ms();
  const double f4_8 = a73.conv_cost(make_layer(128, 192, 8, nn::ConvAlgo::kWinograd4)).total_ms();
  const double f6_8 = a73.conv_cost(make_layer(128, 192, 8, nn::ConvAlgo::kWinograd6)).total_ms();
  bench::row("(2) F6 best at outW=6, F4 best at outW=8", "yes",
             (f6_6 < f4_6 && f4_8 < f6_8) ? "yes" : "NO");

  // (3) choice invariant to channel configuration (compare winners).
  bool invariant = true;
  for (std::int64_t w : {6, 8, 12, 16}) {
    int winner_small = -1, winner_big = -1;
    auto winner = [&](std::int64_t cin, std::int64_t cout) {
      double best = 1e100;
      int arg = 0, i = 0;
      for (auto algo : {nn::ConvAlgo::kWinograd2, nn::ConvAlgo::kWinograd4, nn::ConvAlgo::kWinograd6}) {
        const double v = a73.conv_cost(make_layer(cin, cout, w, algo)).total_ms();
        if (v < best) {
          best = v;
          arg = i;
        }
        ++i;
      }
      return arg;
    };
    winner_small = winner(64, 64);
    winner_big = winner(256, 512);
    invariant = invariant && winner_small == winner_big;
  }
  bench::row("(3) winner invariant to inCh->outCh", "yes (generally)", invariant ? "yes" : "NO");
  return 0;
}
