// Host wall-clock microbenchmarks (google-benchmark) of the deployment
// kernels in src/backend — a second, measured data series complementing the
// analytic A73/A53 cost model. Absolute times are host-specific; the
// interesting outputs are the im2row-vs-Winograd ratios and the fp32-vs-int8
// ratios, which mirror the structure of the paper's Figs. 7/8.
#include <benchmark/benchmark.h>

#include "backend/conv_kernels.hpp"
#include "backend/conv_kernels_s16.hpp"
#include "backend/conv_kernels_s8.hpp"
#include "tensor/gemm.hpp"

namespace {

using namespace wa;

backend::ConvGeometry geom(std::int64_t cin, std::int64_t cout, std::int64_t hw) {
  backend::ConvGeometry g;
  g.batch = 1;
  g.in_channels = cin;
  g.out_channels = cout;
  g.height = hw;
  g.width = hw;
  g.kernel = 3;
  g.pad = 1;
  return g;
}

struct ConvFixtureData {
  Tensor input, weights;
  backend::ConvGeometry g;
};

ConvFixtureData make_fixture(std::int64_t cin, std::int64_t cout, std::int64_t hw) {
  Rng rng(1234);
  ConvFixtureData f;
  f.g = geom(cin, cout, hw);
  f.input = Tensor::randn({1, cin, hw, hw}, rng);
  f.weights = Tensor::randn({cout, cin, 3, 3}, rng, 0.2F);
  return f;
}

void BM_Im2RowConv(benchmark::State& state) {
  const auto f = make_fixture(state.range(0), state.range(1), state.range(2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(backend::im2row_conv(f.input, f.weights, f.g));
  }
}

void BM_Im2ColConv(benchmark::State& state) {
  const auto f = make_fixture(state.range(0), state.range(1), state.range(2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(backend::im2col_conv(f.input, f.weights, f.g));
  }
}

void BM_WinogradConv(benchmark::State& state) {
  const auto f = make_fixture(state.range(0), state.range(1), state.range(2));
  const auto tr = wino::make_transforms(static_cast<int>(state.range(3)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(backend::winograd_conv(f.input, f.weights, f.g, tr));
  }
}

void BM_Im2RowConvS8(benchmark::State& state) {
  const auto f = make_fixture(state.range(0), state.range(1), state.range(2));
  const auto qin = backend::quantize_s8(f.input);
  const auto qw = backend::quantize_s8(f.weights);
  for (auto _ : state) {
    benchmark::DoNotOptimize(backend::im2row_conv_s8(qin, qw, f.g));
  }
}

void BM_WinogradConvS8(benchmark::State& state) {
  const auto f = make_fixture(state.range(0), state.range(1), state.range(2));
  const auto qin = backend::quantize_s8(f.input);
  const auto tr = wino::make_transforms(static_cast<int>(state.range(3)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(backend::winograd_conv_s8(qin, f.weights, f.g, tr));
  }
}

void BM_Im2RowConvS16(benchmark::State& state) {
  const auto f = make_fixture(state.range(0), state.range(1), state.range(2));
  const auto qin = backend::quantize_s16(f.input);
  const auto qw = backend::quantize_s16(f.weights);
  for (auto _ : state) {
    benchmark::DoNotOptimize(backend::im2row_conv_s16(qin, qw, f.g));
  }
}

void BM_WinogradConvS16(benchmark::State& state) {
  const auto f = make_fixture(state.range(0), state.range(1), state.range(2));
  const auto qin = backend::quantize_s16(f.input);
  const auto tr = wino::make_transforms(static_cast<int>(state.range(3)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(backend::winograd_conv_s16(qin, f.weights, f.g, tr));
  }
}

void BM_GemmF32(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(5);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  Tensor c(Shape{n, n});
  for (auto _ : state) {
    gemm_f32(false, false, n, n, n, 1.F, a.raw(), b.raw(), 0.F, c.raw());
    benchmark::DoNotOptimize(c.raw());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}

void BM_GemmS8(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(6);
  std::vector<std::int8_t> a(static_cast<std::size_t>(n * n)), b(static_cast<std::size_t>(n * n));
  for (auto& v : a) v = static_cast<std::int8_t>(rng.randint(-100, 100));
  for (auto& v : b) v = static_cast<std::int8_t>(rng.randint(-100, 100));
  std::vector<std::int32_t> c(static_cast<std::size_t>(n * n));
  for (auto _ : state) {
    backend::gemm_s8_s32(n, n, n, a.data(), b.data(), c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}

}  // namespace

// Input layer (3->32) vs deep layers (Fig. 7's columns, scaled).
BENCHMARK(BM_Im2RowConv)->Args({3, 32, 32})->Args({64, 64, 16})->Args({128, 128, 8})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Im2ColConv)->Args({64, 64, 16})->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_WinogradConv)
    ->Args({3, 32, 32, 2})->Args({3, 32, 32, 4})
    ->Args({64, 64, 16, 2})->Args({64, 64, 16, 4})->Args({64, 64, 16, 6})
    ->Args({128, 128, 8, 2})->Args({128, 128, 8, 4})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Im2RowConvS8)->Args({64, 64, 16})->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_WinogradConvS8)->Args({64, 64, 16, 2})->Args({64, 64, 16, 4})
    ->Unit(benchmark::kMicrosecond);
// The INT16 deployment path the paper lacked (ACL has no INT16 kernels).
BENCHMARK(BM_Im2RowConvS16)->Args({64, 64, 16})->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_WinogradConvS16)->Args({64, 64, 16, 2})->Args({64, 64, 16, 4})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_GemmF32)->Arg(64)->Arg(128)->Arg(256)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_GemmS8)->Arg(64)->Arg(128)->Arg(256)->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
