// Ablation: polynomial-point selection for quantized Winograd.
//
// Paper §7: "We observed that good starting points are also important even
// when learning the Winograd transformations. Polynomial points specifically
// tailored for quantized Winograd could alleviate some of the degradation
// that we observed with increased tile size."
//
// This harness runs that search: it exhaustively enumerates point subsets
// from the canonical pool for F4 and F6, ranks them by relative RMSE at FP32
// and at INT8, and reports (a) whether the best-at-INT8 set differs from the
// best-at-FP32 set and (b) how much error the INT8-tailored choice saves
// over the conventional default points.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "winograd/error_analysis.hpp"

namespace {

using namespace wa;

void report(int m, int r, int trials, Rng& rng) {
  const auto pool = wino::canonical_point_pool();
  bench::banner("Point search for F(" + std::to_string(m) + "x" + std::to_string(m) + ", " +
                std::to_string(r) + "x" + std::to_string(r) + ")");

  // One exhaustive enumeration scored at INT8; every entry also carries its
  // FP32 error, so both rankings come from the same run.
  auto all = wino::exhaustive_point_search(m, r, pool, quant::QuantSpec{8}, trials, rng,
                                           static_cast<std::size_t>(-1));
  std::vector<wino::PointSearchEntry> at_int8(all.begin(),
                                              all.begin() + std::min<std::size_t>(4, all.size()));
  auto at_fp32 = all;
  std::stable_sort(at_fp32.begin(), at_fp32.end(),
                   [](const auto& a, const auto& b) { return a.fp32.rel_rmse < b.fp32.rel_rmse; });
  at_fp32.resize(std::min<std::size_t>(4, at_fp32.size()));

  std::printf("  best at fp32:\n");
  for (const auto& e : at_fp32) {
    std::printf("    %-44s rel-rmse fp32 %.3g  int8 %.3g\n",
                wino::points_to_string(e.points).c_str(), e.fp32.rel_rmse,
                e.quantized.rel_rmse);
  }
  std::printf("  best at int8:\n");
  for (const auto& e : at_int8) {
    std::printf("    %-44s rel-rmse fp32 %.3g  int8 %.3g\n",
                wino::points_to_string(e.points).c_str(), e.fp32.rel_rmse,
                e.quantized.rel_rmse);
  }

  // The conventional default points, scored under the same trials.
  const auto defaults = wino::default_points(m + r - 1);
  const auto scored = wino::search_points(m, r, {defaults}, quant::QuantSpec{8}, trials, rng);
  std::printf("  default %-36s rel-rmse fp32 %.3g  int8 %.3g\n",
              wino::points_to_string(defaults).c_str(), scored[0].fp32.rel_rmse,
              scored[0].quantized.rel_rmse);

  bench::banner("Findings check F" + std::to_string(m) + " (r=" + std::to_string(r) + ")");
  bench::row("int8-tailored <= default at int8", "paper §7: tailored points help",
             at_int8[0].quantized.rel_rmse <= scored[0].quantized.rel_rmse * 1.02
                 ? "yes"
                 : "NO");
  bench::row("fp32 winner != int8 winner allowed", "rankings diverge under quantization",
             at_fp32[0].points == at_int8[0].points ? "same set (ok)" : "different sets");
}

}  // namespace

int main() {
  using namespace wa;
  const auto trials = static_cast<int>(bench::env_int("WINO_TRIALS", 60));
  Rng rng(static_cast<std::uint64_t>(bench::env_int("WINO_SEED", 42)));
  report(4, 3, trials, rng);
  report(6, 3, trials, rng);
  return 0;
}
