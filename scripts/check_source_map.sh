#!/usr/bin/env bash
# Docs drift gate (run by CI): the README source map must cover every source
# directory, and every design doc must exist and be linked from the README.
#
# The source map went stale once already (src/serve satellites landed without
# a row); this check turns that class of drift into a red build instead of a
# code-review catch.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# Every directory under src/ (including nested ones like src/backend/simd)
# needs a `src/<dir>` row in the README source map.
while IFS= read -r dir; do
  rel=${dir#./}
  if ! grep -q "\`${rel}\`" README.md; then
    echo "error: README source map has no entry for ${rel}/" >&2
    fail=1
  fi
done < <(find ./src -mindepth 1 -type d | sort)

# Top-level source trees the map must also cover.
for rel in tests bench examples docs scripts; do
  if ! grep -q "\`${rel}/\`" README.md; then
    echo "error: README source map has no entry for ${rel}/" >&2
    fail=1
  fi
done

# Design docs: each one present, linked from the README, and every doc that
# exists is accounted for (a new doc must be added to the README).
for doc in docs/ARCHITECTURE.md docs/NUMERICS.md docs/WAM_FORMAT.md docs/OBSERVABILITY.md; do
  if [ ! -f "${doc}" ]; then
    echo "error: ${doc} is referenced but missing" >&2
    fail=1
  fi
done
while IFS= read -r doc; do
  rel=${doc#./}
  if ! grep -q "${rel#docs/}" README.md; then
    echo "error: ${rel} exists but the README never mentions it" >&2
    fail=1
  fi
done < <(find ./docs -name '*.md' | sort)

# Golden fixture drift: every checked-in `.wam` fixture must be exercised by
# the artifact suite by name. A format bump that adds a fixture without a
# back-compat test (or orphans an old one) fails here.
while IFS= read -r fixture; do
  name=$(basename "${fixture}")
  if ! grep -q "${name}" tests/test_serve_artifact.cpp; then
    echo "error: ${fixture} is never loaded by tests/test_serve_artifact.cpp" >&2
    fail=1
  fi
done < <(find ./tests/data -name 'golden_v*.wam' | sort)

# Format-doc lockstep: artifact.hpp promises WAM_FORMAT.md tracks the writer
# version, so the current kWamVersion must have its section in the doc.
ver=$(sed -n 's/.*kWamVersion = \([0-9]*\);.*/\1/p' src/serve/artifact.hpp)
if [ -z "${ver}" ]; then
  echo "error: could not read kWamVersion from src/serve/artifact.hpp" >&2
  fail=1
elif ! grep -q "Version ${ver}" docs/WAM_FORMAT.md; then
  echo "error: docs/WAM_FORMAT.md has no section for .wam version ${ver}" >&2
  fail=1
fi

if [ "${fail}" -ne 0 ]; then
  echo "docs check failed — update the README source map / docs links" >&2
  exit 1
fi
echo "docs check passed"
