#!/usr/bin/env python3
"""Schema check for telemetry trace dumps (chrome://tracing JSON).

Usage: scripts/check_trace.py trace.json

Validates what the CI telemetry job needs from a WA_TRACE=1 capture of
bench/serve_throughput:
  - the file is valid JSON with a traceEvents list of "X" (complete) events
    carrying name/ph/pid/tid/ts/dur;
  - at least one traced request is complete: its tid has the full span chain
    request -> queue_wait -> coalesce -> dispatch -> stage:* -> wino.*;
  - every span of that request nests inside the request interval, and the
    serve-level phases tile it (queue_wait + coalesce + dispatch cover the
    request end to end within a small tolerance);
  - timestamps are microseconds on one epoch: all spans fit in a window of
    hours, not centuries (catches ns/us unit mistakes).
"""
import json
import sys


def fail(msg: str) -> None:
    print(f"check_trace: FAIL: {msg}")
    sys.exit(1)


def main() -> None:
    if len(sys.argv) != 2:
        fail("usage: check_trace.py <trace.json>")
    path = sys.argv[1]
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents missing or empty")

    by_tid = {}
    for ev in events:
        for key in ("name", "ph", "pid", "tid", "ts", "dur"):
            if key not in ev:
                fail(f"event missing '{key}': {ev}")
        if ev["ph"] != "X":
            fail(f"expected only complete ('X') events, got ph={ev['ph']!r}")
        if ev["dur"] < 0:
            fail(f"negative duration: {ev}")
        by_tid.setdefault(ev["tid"], []).append(ev)

    ts_all = [ev["ts"] for ev in events]
    if max(ts_all) - min(ts_all) > 3600 * 1e6:
        fail("timestamp window exceeds an hour — ts/dur are probably not microseconds")

    serve_phases = ("queue_wait", "coalesce", "dispatch")
    complete = 0
    for tid, spans in sorted(by_tid.items()):
        names = {s["name"] for s in spans}
        req = [s for s in spans if s["name"] == "request"]
        if not req:
            continue
        if not all(p in names for p in serve_phases):
            continue
        if not any(n.startswith("stage:") for n in names):
            continue
        if not any(n.startswith("wino.") for n in names):
            continue
        r = req[0]
        r0, r1 = r["ts"], r["ts"] + r["dur"]
        slack = max(1.0, 0.001 * r["dur"])  # 1us or 0.1% for float round-trips
        for s in spans:
            if s["ts"] < r0 - slack or s["ts"] + s["dur"] > r1 + slack:
                fail(f"tid {tid}: span {s['name']} escapes the request interval")
        covered = sum(s["dur"] for s in spans if s["name"] in serve_phases)
        if abs(covered - r["dur"]) > max(1.0, 0.05 * r["dur"]):
            fail(
                f"tid {tid}: queue_wait+coalesce+dispatch cover {covered:.1f}us "
                f"of a {r['dur']:.1f}us request (must tile it within 5%)"
            )
        complete += 1

    if complete == 0:
        fail(
            "no complete traced request found (need request + queue_wait/coalesce/"
            "dispatch + stage:* + wino.* under one tid)"
        )
    print(
        f"check_trace: OK: {len(events)} spans, {len(by_tid)} trace ids, "
        f"{complete} complete traced request(s)"
    )


if __name__ == "__main__":
    main()
