// End-to-end serving walkthrough: train a QAT LeNet-5, compile it to an
// integer pipeline, freeze the one remaining dynamic scale, save the
// compiled artifact to disk (.wam), load it back into an InferenceServer,
// hammer it from a few client threads, and dump the per-model stats.
//
//   train -> compile_lenet -> freeze_scales -> save_pipeline("lenet.wam")
//         -> InferenceServer::load_model -> submit() futures -> stats()
//         -> dump_metrics (Prometheus text exposition)
#include <cstdio>
#include <iostream>
#include <thread>
#include <vector>

#include "data/synthetic.hpp"
#include "deploy/pipeline.hpp"
#include "serve/artifact.hpp"
#include "serve/server.hpp"
#include "train/trainer.hpp"

using namespace wa;

int main() {
  Rng rng(42);

  // 1. Train a small INT8 LeNet on the synthetic MNIST-like set.
  models::LeNetConfig cfg;
  cfg.algo = nn::ConvAlgo::kWinograd2;
  cfg.qspec = quant::QuantSpec{8};
  models::LeNet5 net(cfg, rng);
  auto spec = data::mnist_like();
  spec.train_size = 256;
  spec.test_size = 64;
  const auto train_set = data::generate(spec, true);
  const auto val_set = data::generate(spec, false);
  train::TrainerOptions topts;
  topts.epochs = 2;
  topts.batch_size = 16;
  topts.lr = 3e-3F;
  train::Trainer trainer(net, train_set, val_set, topts);
  trainer.fit();
  std::printf("trained: val accuracy %.3f\n", trainer.evaluate(val_set));

  // 2. Compile to the integer pipeline and freeze the logits scale so
  //    coalesced batches cannot perturb each other (serving requirement).
  deploy::Int8Pipeline pipe = deploy::compile_lenet(net);
  pipe.freeze_scales(train_set.images.slice0(0, 16));

  // 3. Durable artifact: the server below could be a different process.
  const std::string path = "lenet.wam";
  serve::save_pipeline(path, pipe);
  std::printf("saved compiled artifact: %s\n", path.c_str());

  // 4. Serve it: 2 workers, micro-batching up to 8 samples / 300us linger.
  serve::ServerOptions opts;
  opts.workers = 2;
  opts.batch.max_batch = 8;
  opts.batch.max_delay_us = 300;
  serve::InferenceServer server(opts);
  server.load_model("lenet", path);

  // 5. A few client threads, each classifying its own slice of the val set.
  constexpr int kClients = 3;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&server, &val_set, c] {
      for (std::int64_t i = c; i < val_set.size(); i += kClients) {
        const Tensor logits = server.submit("lenet", val_set.images.slice0(i, i + 1)).get();
        (void)logits.argmax();
      }
    });
  }
  for (auto& t : clients) t.join();

  // 6. Stats dump.
  const serve::ModelStats s = server.stats("lenet");
  std::printf("\nmodel 'lenet' stats\n");
  std::printf("  requests   %llu (%llu samples in %llu dispatches, %llu failed)\n",
              static_cast<unsigned long long>(s.requests),
              static_cast<unsigned long long>(s.samples),
              static_cast<unsigned long long>(s.batches),
              static_cast<unsigned long long>(s.failed));
  std::printf("  latency    p50 %.2fms  p95 %.2fms  p99 %.2fms  max %.2fms\n", s.latency.p50_ms,
              s.latency.p95_ms, s.latency.p99_ms, s.latency.max_ms);
  std::printf("  throughput %.1f samples/s\n", s.samples_per_sec);
  std::printf("  batch-size histogram:");
  for (std::size_t k = 1; k < s.batch_size_hist.size(); ++k) {
    if (s.batch_size_hist[k] != 0) {
      std::printf("  %zux%llu", k, static_cast<unsigned long long>(s.batch_size_hist[k]));
    }
  }
  std::printf("\n");

  // 7. The same numbers as a Prometheus scrape (docs/OBSERVABILITY.md):
  //    every wa_* series in the global registry, one text exposition.
  std::printf("\nPrometheus exposition (serve::dump_metrics):\n");
  serve::dump_metrics(std::cout);

  std::remove(path.c_str());
  return 0;
}
