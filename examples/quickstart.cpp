// Quickstart: train an INT8 Winograd-aware ResNet-18 on the bundled
// synthetic CIFAR-10 analog, in ~30 lines of user code.
//
//   build/examples/quickstart
//
// The same four knobs drive everything in this library:
//   algo             which convolution algorithm executes (im2row, F2/F4/F6)
//   qspec            the bit-width of weights, activations and Winograd
//                    intermediates (the paper's Qx stages)
//   flex_transforms  learn the Cook-Toom transforms G/Bt/At (-flex)
//   width_mult       the ResNet-18 width multiplier of the paper's Fig. 4
#include <cstdio>

#include "data/synthetic.hpp"
#include "models/resnet.hpp"
#include "train/trainer.hpp"

int main() {
  using namespace wa;

  // Data: deterministic synthetic stand-in for CIFAR-10 (see DESIGN.md §2).
  auto spec = data::cifar10_like();
  spec.train_size = 512;
  spec.test_size = 256;
  const auto train_set = data::generate(spec, /*train=*/true);
  const auto val_set = data::generate(spec, /*train=*/false);

  // Model: Winograd-aware F4 layers, INT8 everywhere, learnt transforms.
  Rng rng(42);
  models::ResNetConfig cfg;
  cfg.width_mult = 0.125F;
  cfg.algo = nn::ConvAlgo::kWinograd4;
  cfg.qspec = quant::QuantSpec{8};
  cfg.flex_transforms = true;
  models::ResNet18 net(cfg, rng);
  std::printf("winograd-aware ResNet-18: %lld parameters\n",
              static_cast<long long>(net.parameter_count()));

  // Train (Adam + cosine annealing, as in the paper).
  train::TrainerOptions opts;
  opts.epochs = 3;
  opts.batch_size = 32;
  opts.lr = 2e-3F;
  opts.verbose = true;
  train::Trainer trainer(net, train_set, val_set, opts);
  trainer.fit();

  std::printf("final validation accuracy: %.1f%%\n", 100.F * trainer.evaluate(val_set));
  return 0;
}
