// Run wiNAS on a small budget and print the architecture it finds, along
// with the latency/accuracy trade-off of raising the latency pressure λ2.
//
//   build/examples/nas_search
#include <cstdio>

#include "nas/winas.hpp"

int main() {
  using namespace wa;
  auto spec = data::cifar10_like();
  spec.train_size = 384;
  spec.test_size = 192;
  const auto train_set = data::generate(spec, true);
  const auto val_set = data::generate(spec, false);

  nas::WinasOptions opts;
  opts.epochs = 2;
  opts.batch_size = 32;
  opts.width_mult = 0.125F;
  opts.fixed_spec = quant::QuantSpec{8};
  opts.lambda2 = 0.05F;

  std::printf("searching {im2row, WA-F2, WA-F4, WA-F6} per layer at INT8 (lambda2=%.3f)...\n",
              static_cast<double>(opts.lambda2));
  nas::WinasSearch search(opts, train_set, val_set);
  const auto result = search.run();

  std::printf("\nfound architecture (cf. the paper's Fig. 9):\n%s",
              nas::format_architecture(result).c_str());
  std::printf("supernet argmax-path accuracy: %.1f%%\n", 100.F * result.final_val_acc);

  std::printf(
      "\nresult.assignment is a per-layer table directly consumable by\n"
      "models::override_builder to instantiate and retrain the found network.\n");
  return 0;
}
