// End-to-end residual deployment: calibrate the paper's ResNet-18 variant,
// compile it into the graph-based int8 pipeline, and compare the deployed
// integer network against the QAT eval forward.
//
// The compiled graph runs the residual topology entirely on int8 levels:
// GEMM convs (stem, 1x1 projection shortcuts) fold their batch-norm into the
// quantized weights; Winograd block convs keep the frozen per-stage Qx
// scales and apply batch-norm as a per-channel integer affine; the skip-add
// requantizes both branches onto a common scale with fixed-point multipliers
// before the fused ReLU.
//
//   build/examples/deploy_resnet18
#include <cstdio>

#include "backend/simd/kernel_table.hpp"
#include "data/synthetic.hpp"
#include "deploy/pipeline.hpp"

int main() {
  using namespace wa;
  Rng rng(7);
  models::ResNetConfig cfg;
  cfg.width_mult = 0.125F;
  cfg.algo = nn::ConvAlgo::kWinograd2;  // F2 blocks, im2row stem/shortcuts
  cfg.qspec = quant::QuantSpec{8};
  models::ResNet18 net(cfg, rng);

  // Calibration pass: training-mode forwards warm every range observer
  // (layer inputs, Winograd Qx stages, the residual-join branches) without
  // touching the weights — the "warmup of all the moving averages" of the
  // paper's Table 1 footnote.
  auto spec = data::cifar10_like();
  spec.train_size = 96;
  spec.test_size = 64;
  const auto calib = data::generate(spec, true);
  net.set_training(true);
  data::DataLoader cal_loader(calib, 16, false);
  for (std::int64_t b = 0; b < cal_loader.batches(); ++b) {
    net.forward(ag::Variable(cal_loader.get(b).images, false));
  }

  deploy::Int8Pipeline pipe = deploy::compile_resnet18(net);
  std::printf("compiled ResNet-18 (width 0.125, F2 blocks) into %zu integer stages\n",
              pipe.size());
  std::printf("SIMD kernel backend: %s (override with WA_BACKEND=scalar|avx2|avx512|neon)\n",
              backend::simd::active_backend().c_str());

  // Deployed vs QAT eval forward on held-out data.
  const auto test = data::generate(spec, false);
  net.set_training(false);
  data::DataLoader loader(test, 16, false);
  std::int64_t agree = 0, total = 0;
  for (std::int64_t b = 0; b < loader.batches(); ++b) {
    const auto batch = loader.get(b);
    const auto deployed = pipe.classify(batch.images);
    const Tensor logits = net.forward(ag::Variable(batch.images, false)).value();
    const std::int64_t classes = logits.numel() / logits.size(0);
    for (std::size_t i = 0; i < deployed.size(); ++i) {
      std::int64_t qat_pred = 0;
      for (std::int64_t c = 1; c < classes; ++c) {
        if (logits.at(static_cast<std::int64_t>(i) * classes + c) >
            logits.at(static_cast<std::int64_t>(i) * classes + qat_pred))
          qat_pred = c;
      }
      agree += deployed[i] == qat_pred;
      ++total;
    }
  }
  std::printf("deployed int8 pipeline agrees with the QAT eval forward on %lld/%lld samples\n",
              static_cast<long long>(agree), static_cast<long long>(total));
  std::printf("(random-init weights: many logits are near ties, so argmax agreement is noisy\n"
              " here — a trained model agrees on >99%% of samples; see tests/test_resnet_deploy)\n");

  std::printf("\nper-stage schedule of one forward:\n");
  std::vector<deploy::StageTiming> timings;
  pipe.run(Tensor::randn({1, 3, 32, 32}, rng), &timings);
  for (const auto& t : timings) {
    std::printf("  %-26s %8.4f ms\n", t.label.c_str(), t.ms);
  }
  return 0;
}
