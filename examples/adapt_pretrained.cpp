// The Fig. 6 workflow as a reusable recipe: take a model trained with
// standard convolutions, save it, and adapt it into a Winograd-aware INT8
// model in a couple of epochs instead of retraining from scratch.
//
//   build/examples/adapt_pretrained
#include <cstdio>

#include "data/synthetic.hpp"
#include "models/resnet.hpp"
#include "tensor/io.hpp"
#include "train/trainer.hpp"

int main() {
  using namespace wa;
  auto spec = data::cifar10_like();
  spec.train_size = 512;
  spec.test_size = 256;
  const auto train_set = data::generate(spec, true);
  const auto val_set = data::generate(spec, false);

  train::TrainerOptions opts;
  opts.epochs = 3;
  opts.batch_size = 32;
  opts.lr = 2e-3F;
  opts.verbose = true;

  // 1) Train the standard-convolution FP32 model and checkpoint it.
  Rng rng(7);
  models::ResNetConfig src_cfg;
  src_cfg.width_mult = 0.125F;
  models::ResNet18 source(src_cfg, rng);
  std::printf("== training the direct-convolution source model ==\n");
  train::Trainer(source, train_set, val_set, opts).fit();
  const std::string ckpt = "direct_fp32.ckpt";
  save_tensor_map(ckpt, source.state_dict());
  std::printf("checkpoint written to %s\n", ckpt.c_str());

  // 2) Build the Winograd-aware INT8 target and load the matching weights.
  //    Conv/BN/FC tensors transfer by name; the Cook-Toom transforms and
  //    quantization observers start fresh.
  Rng rng2(8);
  models::ResNetConfig wa_cfg = src_cfg;
  wa_cfg.algo = nn::ConvAlgo::kWinograd4;
  wa_cfg.qspec = quant::QuantSpec{8};
  wa_cfg.flex_transforms = true;  // adaptation "works best if transforms are learnt"
  models::ResNet18 adapted(wa_cfg, rng2);
  const auto loaded = adapted.load_state_intersect(load_tensor_map(ckpt));
  std::printf("\n== adapting to winograd-aware INT8 F4 (%zu tensors transferred) ==\n", loaded);

  // 3) A short retraining closes the gap (paper: ~20 of 120 epochs, 2.8x
  //    cheaper than training the winograd-aware model end-to-end).
  opts.epochs = 2;
  train::Trainer trainer(adapted, train_set, val_set, opts);
  trainer.fit();
  std::printf("adapted model accuracy: %.1f%%\n", 100.F * trainer.evaluate(val_set));
  return 0;
}
