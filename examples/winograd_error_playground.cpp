// Explore the numerical behaviour of Winograd convolution interactively:
//  - print the Cook-Toom transform matrices for any F(m, r);
//  - measure the algorithm's numerical error at several bit-widths
//    (the paper's Table 1 motivation, isolated from any network);
//  - rank polynomial point sets by quantized error (the paper's discussion
//    of "good points" for quantized Winograd).
//
//   build/examples/winograd_error_playground [m] [r]
#include <cstdio>
#include <cstdlib>

#include "winograd/point_search.hpp"
#include "winograd/winograd_ref.hpp"

namespace {

void print_matrix(const char* name, const wa::Tensor& m) {
  std::printf("%s [%lld x %lld]:\n", name, static_cast<long long>(m.size(0)),
              static_cast<long long>(m.size(1)));
  for (std::int64_t i = 0; i < m.size(0); ++i) {
    std::printf("   ");
    for (std::int64_t j = 0; j < m.size(1); ++j) std::printf("%9.4f", m(i, j));
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wa;
  const int m = argc > 1 ? std::atoi(argv[1]) : 4;
  const int r = argc > 2 ? std::atoi(argv[2]) : 3;
  std::printf("F(%dx%d, %dx%d): %d x %d input tiles, %.2f multiplies per output\n", m, m, r, r,
              m + r - 1, m + r - 1,
              static_cast<double>((m + r - 1) * (m + r - 1)) / (m * m));

  const auto tr = wino::make_transforms(m, r);
  print_matrix("G  (weight transform)", tr.g_mat);
  print_matrix("Bt (input transform)", tr.bt_mat);
  print_matrix("At (output transform)", tr.at_mat);

  std::printf("\nnumerical error vs direct convolution (200 random tiles):\n");
  Rng rng(1);
  for (int bits : {32, 16, 10, 8}) {
    const auto err = wino::winograd_error(tr, quant::QuantSpec{bits}, 200, rng);
    std::printf("  %2d-bit: relative RMSE %.3e, max abs %.3e\n", bits, err.rel_rmse, err.max_abs);
  }

  std::printf("\npolynomial point sets ranked by INT8 error:\n");
  const auto ranked =
      wino::search_points(m, r, wino::candidate_point_sets(m + r - 1), quant::QuantSpec{8}, 100, rng);
  for (const auto& e : ranked) {
    std::printf("  %-44s int8 rel-rmse %.4f   fp32 rel-rmse %.2e\n",
                wino::points_to_string(e.points).c_str(), e.quantized.rel_rmse, e.fp32.rel_rmse);
  }
  std::printf("\n(the library's default set is the first entry of candidate_point_sets)\n");
  return 0;
}
