// Mixed-precision Winograd pipelines: the "quantization diversity" the
// paper proposes in §3.2 and recommends in its discussion (§7) but never
// evaluates.
//
//   build/examples/mixed_precision
//
// Three layers of control, all composable:
//   1. per-stage bit-widths   — each Qx stage of Eq. 1 (weight transform,
//                               input transform, Hadamard, output transform)
//                               can run at its own precision;
//   2. per-channel weights    — one quantization scale per output filter;
//   3. affine activations     — zero-points for skewed (post-ReLU) ranges.
#include <cstdio>

#include "core/wa_conv2d.hpp"
#include "data/synthetic.hpp"
#include "models/resnet.hpp"
#include "train/trainer.hpp"

int main() {
  using namespace wa;

  auto spec = data::cifar10_like();
  spec.train_size = 512;
  spec.test_size = 256;
  const auto train_set = data::generate(spec, true);
  const auto val_set = data::generate(spec, false);

  // ---- 1. a single layer with a promoted Hadamard stage ------------------
  {
    Rng rng(1);
    nn::Conv2dOptions opts;
    opts.in_channels = 16;
    opts.out_channels = 16;
    opts.algo = nn::ConvAlgo::kWinograd4;
    opts.qspec = quant::QuantSpec{8};   // everything int8...
    opts.qspec_m = quant::QuantSpec{16};  // ...except the Hadamard stage
    core::WinogradAwareConv2d layer(opts, rng);
    ag::Variable x(Tensor::randn({1, 16, 16, 16}, rng), false);
    const auto y = layer.forward(x);
    std::printf("layer with int16 Hadamard stage: output %lldx%lldx%lldx%lld\n",
                static_cast<long long>(y.shape()[0]), static_cast<long long>(y.shape()[1]),
                static_cast<long long>(y.shape()[2]), static_cast<long long>(y.shape()[3]));
  }

  // ---- 2. whole-model comparison ------------------------------------------
  // WAF4-static at INT8 is the configuration that collapses in the paper
  // (Table 4/5); richer quantization is the suggested fix.
  struct Variant {
    const char* label;
    bool per_channel;
    quant::QuantScheme scheme;
    bool promote_hadamard;
  };
  const Variant variants[] = {
      {"per-layer symmetric (paper)", false, quant::QuantScheme::kSymmetric, false},
      {"+ per-channel weights", true, quant::QuantScheme::kSymmetric, false},
      {"+ affine activations", true, quant::QuantScheme::kAffine, false},
      {"+ int16 hadamard stage", true, quant::QuantScheme::kAffine, true},
  };

  for (const auto& v : variants) {
    Rng rng(42);
    models::ResNetConfig cfg;
    cfg.width_mult = 0.125F;
    cfg.algo = nn::ConvAlgo::kWinograd4;
    cfg.qspec = quant::QuantSpec{8, v.scheme};
    cfg.per_channel_weights = v.per_channel;
    if (v.promote_hadamard) cfg.qspec_m = quant::QuantSpec{16};
    models::ResNet18 net(cfg, rng);

    train::TrainerOptions opts;
    opts.epochs = 2;
    opts.batch_size = 32;
    opts.lr = 3e-3F;
    train::Trainer trainer(net, train_set, val_set, opts);
    trainer.fit();
    std::printf("%-32s val accuracy %.1f%%\n", v.label, 100.F * trainer.evaluate(val_set));
  }
  return 0;
}
