// The deployment path: integer-only convolution kernels (the role Arm
// Compute Library plays in the paper).
//
// Quantizes one convolution layer to int8, runs it through
//  - im2row with an int8 GEMM + fixed-point requantization, and
//  - Winograd F2/F4 with per-stage int8 requantization (the inference-time
//    mirror of the training Qx stages),
// then reports accuracy vs the FP32 reference and host wall-clock times.
//
//   build/examples/deploy_int8
#include <chrono>
#include <cstdio>

#include "backend/conv_kernels.hpp"
#include "backend/conv_kernels_s8.hpp"

namespace {

template <typename F>
double time_ms(F&& fn, int reps = 5) {
  fn();  // warm up
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count() / reps;
}

}  // namespace

int main() {
  using namespace wa;
  backend::ConvGeometry g;
  g.batch = 1;
  g.in_channels = 64;
  g.out_channels = 64;
  g.height = 16;
  g.width = 16;
  g.kernel = 3;
  g.pad = 1;

  Rng rng(3);
  const Tensor input = Tensor::randn({g.batch, g.in_channels, g.height, g.width}, rng);
  const Tensor weights = Tensor::randn({g.out_channels, g.in_channels, 3, 3}, rng, 0.2F);
  const Tensor reference = backend::im2row_conv(input, weights, g);

  const auto qin = backend::quantize_s8(input);
  const auto qw = backend::quantize_s8(weights);
  std::printf("layer: %lldx%lld, %lld -> %lld channels (int8 scales: in %.4f, w %.4f)\n",
              static_cast<long long>(g.height), static_cast<long long>(g.width),
              static_cast<long long>(g.in_channels), static_cast<long long>(g.out_channels),
              static_cast<double>(qin.scale), static_cast<double>(qw.scale));

  auto report = [&](const char* name, const Tensor& got, double ms) {
    const float rel = Tensor::max_abs_diff(reference, got) / reference.abs_max();
    std::printf("  %-22s %8.3f ms   max rel err vs fp32: %.4f\n", name, ms, rel);
  };

  {
    Tensor got;
    const double ms = time_ms([&] { got = backend::im2row_conv(input, weights, g); });
    report("im2row fp32", got, ms);
  }
  {
    backend::QTensor out;
    const double ms = time_ms([&] { out = backend::im2row_conv_s8(qin, qw, g); });
    report("im2row int8", backend::dequantize(out), ms);
  }
  for (int m : {2, 4}) {
    const auto tr = wino::make_transforms(m, 3);
    {
      Tensor got;
      const double ms = time_ms([&] { got = backend::winograd_conv(input, weights, g, tr); });
      report(m == 2 ? "winograd F2 fp32" : "winograd F4 fp32", got, ms);
    }
    {
      backend::QTensor out;
      const double ms = time_ms([&] { out = backend::winograd_conv_s8(qin, weights, g, tr); });
      report(m == 2 ? "winograd F2 int8" : "winograd F4 int8", backend::dequantize(out), ms);
    }
  }

  std::printf(
      "\nNote how int8 Winograd error grows with the tile size — the deployment-side\n"
      "face of the paper's Table 1. Winograd-aware training exists to absorb it.\n");
  return 0;
}
