// Winograd-domain pruning walkthrough: the sparse-Winograd extension
// (Liu et al. 2018, cited in the paper's related work) composed with
// winograd-aware training.
//
//   build/examples/sparse_winograd
//
// Workflow: train dense -> prune the transformed weights U per tile
// position -> fine-tune with the mask in place -> price the surviving
// density with the Cortex-A73 latency model.
#include <cstdio>

#include "data/synthetic.hpp"
#include "latency/cost_model.hpp"
#include "models/resnet.hpp"
#include "sparse/winograd_prune.hpp"
#include "train/trainer.hpp"

int main() {
  using namespace wa;

  auto spec = data::cifar10_like();
  spec.train_size = 512;
  spec.test_size = 256;
  const auto train_set = data::generate(spec, true);
  const auto val_set = data::generate(spec, false);

  Rng rng(42);
  models::ResNetConfig cfg;
  cfg.width_mult = 0.125F;
  cfg.algo = nn::ConvAlgo::kWinograd4;  // FP32: the regime Liu et al. showed lossless
  models::ResNet18 net(cfg, rng);

  train::TrainerOptions opts;
  opts.epochs = 3;
  opts.batch_size = 32;
  opts.lr = 3e-3F;
  train::Trainer trainer(net, train_set, val_set, opts);
  trainer.fit();
  const float dense_acc = trainer.evaluate(val_set);
  std::printf("dense WAF4 accuracy: %.1f%%\n", 100.F * dense_acc);

  // Prune 70% of the Hadamard products in every Winograd-aware layer.
  const auto reports = sparse::prune_model(net, 0.7);
  std::printf("pruned %zu layers, e.g. %s -> density %.2f\n", reports.size(),
              reports.front().layer.c_str(), reports.front().achieved_density);
  std::printf("accuracy right after pruning: %.1f%%\n", 100.F * trainer.evaluate(val_set));

  // Fine-tune: masked products stay pruned (their gradients are dropped).
  train::TrainerOptions ft = opts;
  ft.epochs = 2;
  ft.lr = 1e-3F;
  train::Trainer finetune(net, train_set, val_set, ft);
  finetune.fit();
  std::printf("accuracy after fine-tuning:   %.1f%% (dense was %.1f%%)\n",
              100.F * finetune.evaluate(val_set), 100.F * dense_acc);

  // What does 70% sparsity buy on the Hadamard stage of a deep layer?
  latency::LatencyModel model(latency::cortex_a73());
  latency::LayerDesc desc;
  desc.geom.batch = 1;
  desc.geom.in_channels = 128;
  desc.geom.out_channels = 128;
  desc.geom.height = 16;
  desc.geom.width = 16;
  desc.algo = nn::ConvAlgo::kWinograd4;
  const double dense_ms = model.conv_cost(desc).gemm_ms;
  desc.hadamard_density = sparse::model_hadamard_density(net);
  const double sparse_ms = model.conv_cost(desc).gemm_ms;
  std::printf("modeled Hadamard stage (A73, 16x16x128->128): %.3f ms -> %.3f ms (%.2fx)\n",
              dense_ms, sparse_ms, dense_ms / sparse_ms);
  return 0;
}
