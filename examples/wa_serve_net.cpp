// Network serving quickstart: compile a small model, put an InferenceServer
// behind the TCP frontend, and talk to it through the wire protocol — the
// same path `bench/serve_loadgen` hammers at scale.
//
//   calibrate -> compile_lenet -> freeze_scales -> InferenceServer
//            -> NetFrontend (ephemeral port) -> net::Client::infer()
//            -> per-class stats + Prometheus exposition
#include <cstdio>
#include <iostream>

#include "data/synthetic.hpp"
#include "deploy/pipeline.hpp"
#include "serve/net/client.hpp"
#include "serve/net/frontend.hpp"
#include "serve/server.hpp"

using namespace wa;

int main() {
  Rng rng(42);

  // 1. A calibrated (not trained — the wire path is the subject) INT8 LeNet.
  models::LeNetConfig cfg;
  cfg.algo = nn::ConvAlgo::kWinograd2;
  cfg.qspec = quant::QuantSpec{8};
  models::LeNet5 net(cfg, rng);
  auto spec = data::mnist_like();
  spec.train_size = 64;
  const auto calib = data::generate(spec, true);
  net.set_training(true);
  for (int i = 0; i < 2; ++i) {
    net.forward(ag::Variable(calib.images.slice0(i * 16, (i + 1) * 16), false));
  }
  deploy::Int8Pipeline pipe = deploy::compile_lenet(net);
  pipe.freeze_scales(calib.images.slice0(0, 16));

  // 2. Server + network frontend on an ephemeral loopback port.
  serve::ServerOptions opts;
  opts.workers = 2;
  opts.shards = 0;  // auto: one worker-pool shard per NUMA node
  serve::InferenceServer server(opts);
  server.add_model("lenet", std::move(pipe));
  serve::net::NetFrontend frontend(server);
  std::printf("serving 'lenet' on 127.0.0.1:%u (%d shards)\n", unsigned{frontend.port()},
              server.shards());

  // 3. A client: plain inference, then one per priority class with a
  //    deadline budget on the high-priority request.
  serve::net::Client client("127.0.0.1", frontend.port());
  const Tensor image = calib.images.slice0(0, 1);
  const Tensor logits = client.infer("lenet", image);
  std::printf("predicted class %lld\n", static_cast<long long>(logits.argmax()));

  for (const serve::Priority prio :
       {serve::Priority::kHigh, serve::Priority::kNormal, serve::Priority::kLow}) {
    serve::SubmitOptions so;
    so.priority = prio;
    if (prio == serve::Priority::kHigh) so.deadline_us = 50'000;  // 50ms budget
    client.infer("lenet", image, so);
    std::printf("served a %s-priority request\n", serve::priority_name(prio));
  }

  // 4. Per-class accounting and the Prometheus view of the same numbers.
  const serve::ModelStats s = server.stats("lenet");
  std::printf("\nrequests %llu (high %llu / normal %llu / low %llu), p99 %.2fms\n",
              static_cast<unsigned long long>(s.requests),
              static_cast<unsigned long long>(s.class_requests[0]),
              static_cast<unsigned long long>(s.class_requests[1]),
              static_cast<unsigned long long>(s.class_requests[2]), s.latency.p99_ms);
  std::printf("\nPrometheus exposition (wa_net_* + wa_serve_*):\n");
  serve::dump_metrics(std::cout);

  frontend.stop();
  server.shutdown();
  return 0;
}
