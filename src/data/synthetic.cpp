#include "data/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <numeric>

namespace wa::data {

SyntheticSpec cifar10_like() {
  SyntheticSpec s;
  s.name = "cifar10-like";
  return s;
}

SyntheticSpec cifar100_like() {
  SyntheticSpec s;
  s.name = "cifar100-like";
  s.num_classes = 100;
  s.train_size = 4000;  // 40/class by default; paper's real set has 500/class
  s.test_size = 1000;
  s.noise = 0.3F;  // "considerably more challenging" than the 10-class set
  return s;
}

SyntheticSpec mnist_like() {
  SyntheticSpec s;
  s.name = "mnist-like";
  s.channels = 1;
  s.height = 28;
  s.width = 28;
  s.train_size = 2000;
  s.test_size = 500;
  s.noise = 0.2F;
  s.texture_components = 3;
  return s;
}

namespace {

/// Frequency/phase/amplitude of one texture component of one class-channel.
struct Component {
  float fx, fy, phase, amp;
};

/// Deterministic per-class texture description.
std::vector<Component> class_components(const SyntheticSpec& spec, int cls, std::int64_t channel) {
  // One dedicated generator per (class, channel): prototypes never depend on
  // how many samples are drawn.
  Rng rng(spec.seed ^ (static_cast<std::uint64_t>(cls) * 0x9e3779b97f4a7c15ULL) ^
          (static_cast<std::uint64_t>(channel) + 1) * 0xc2b2ae3d27d4eb4fULL);
  std::vector<Component> comps(static_cast<std::size_t>(spec.texture_components));
  // The first component anchors the class to a unique cell of a 10x10
  // frequency lattice (offset per channel so channels carry complementary
  // evidence). This guarantees an inter-class margin even with few samples;
  // without it two classes can draw near-identical dominant frequencies and
  // become unlearnable at small train sizes. Remaining components are random
  // lower-amplitude detail that augmentation and noise act on.
  const int gx = cls % 10;
  const int gy = cls / 10;
  const float chf = 0.17F * static_cast<float>(channel);
  comps[0].fx = (0.6F + 0.42F * static_cast<float>(gx) + chf) / static_cast<float>(spec.width);
  comps[0].fy = (0.6F + 0.42F * static_cast<float>(gy) + chf) / static_cast<float>(spec.height);
  comps[0].phase = rng.uniform(0.F, 2.F * std::numbers::pi_v<float>);
  comps[0].amp = 1.3F;
  for (std::size_t i = 1; i < comps.size(); ++i) {
    auto& c = comps[i];
    c.fx = rng.uniform(0.5F, 4.F) / static_cast<float>(spec.width);
    c.fy = rng.uniform(0.5F, 4.F) / static_cast<float>(spec.height);
    c.phase = rng.uniform(0.F, 2.F * std::numbers::pi_v<float>);
    c.amp = rng.uniform(0.2F, 0.5F);
  }
  return comps;
}

}  // namespace

Dataset generate(const SyntheticSpec& spec, bool train) {
  const std::int64_t n = train ? spec.train_size : spec.test_size;
  Dataset ds;
  ds.name = spec.name + (train ? "/train" : "/test");
  ds.num_classes = spec.num_classes;
  ds.images = Tensor(Shape{n, spec.channels, spec.height, spec.width});
  ds.labels.resize(static_cast<std::size_t>(n));

  // Pre-compute all class textures once.
  std::vector<std::vector<std::vector<Component>>> textures(
      static_cast<std::size_t>(spec.num_classes));
  for (int cls = 0; cls < spec.num_classes; ++cls) {
    auto& per_channel = textures[static_cast<std::size_t>(cls)];
    per_channel.resize(static_cast<std::size_t>(spec.channels));
    for (std::int64_t ch = 0; ch < spec.channels; ++ch) {
      per_channel[static_cast<std::size_t>(ch)] = class_components(spec, cls, ch);
    }
  }

  // Separate sample streams for train/test so the splits are disjoint but
  // identically distributed.
  Rng rng(spec.seed ^ (train ? 0x7ea1ULL : 0x7e57ULL));
  const float two_pi = 2.F * std::numbers::pi_v<float>;
  for (std::int64_t i = 0; i < n; ++i) {
    const int cls = static_cast<int>(rng.randint(0, spec.num_classes - 1));
    ds.labels[static_cast<std::size_t>(i)] = cls;
    // Sample-level augmentation: translation via phase offset, mild scale,
    // horizontal flip, additive noise.
    const float dx = rng.uniform(-spec.jitter, spec.jitter);
    const float dy = rng.uniform(-spec.jitter, spec.jitter);
    const float gain = rng.uniform(0.85F, 1.15F);
    const bool flip = rng.bernoulli(0.5);
    for (std::int64_t ch = 0; ch < spec.channels; ++ch) {
      const auto& comps = textures[static_cast<std::size_t>(cls)][static_cast<std::size_t>(ch)];
      for (std::int64_t y = 0; y < spec.height; ++y) {
        for (std::int64_t x = 0; x < spec.width; ++x) {
          const float xf = static_cast<float>(flip ? spec.width - 1 - x : x) + dx;
          const float yf = static_cast<float>(y) + dy;
          float v = 0.F;
          for (const auto& c : comps) {
            v += c.amp * std::sin(two_pi * (c.fx * xf + c.fy * yf) + c.phase);
          }
          v = gain * v / static_cast<float>(comps.size());
          v += rng.normal(0.F, spec.noise);
          ds.images(i, ch, y, x) = v;
        }
      }
    }
  }
  return ds;
}

DataLoader::DataLoader(const Dataset& ds, std::int64_t batch_size, bool shuffle,
                       std::uint64_t seed)
    : ds_(&ds), batch_size_(batch_size), shuffle_(shuffle), rng_(seed) {
  if (batch_size_ < 1) throw std::invalid_argument("DataLoader: batch_size must be >= 1");
  order_.resize(static_cast<std::size_t>(ds.size()));
  std::iota(order_.begin(), order_.end(), 0);
  reset();
}

std::int64_t DataLoader::batches() const {
  return (ds_->size() + batch_size_ - 1) / batch_size_;
}

void DataLoader::reset() {
  if (shuffle_) std::shuffle(order_.begin(), order_.end(), rng_.engine());
}

Batch DataLoader::get(std::int64_t i) const {
  const std::int64_t begin = i * batch_size_;
  const std::int64_t end = std::min<std::int64_t>(begin + batch_size_, ds_->size());
  if (begin < 0 || begin >= ds_->size()) throw std::out_of_range("DataLoader::get: bad batch");
  const std::int64_t b = end - begin;
  const auto& img = ds_->images;
  Batch batch;
  batch.images = Tensor(Shape{b, img.size(1), img.size(2), img.size(3)});
  batch.labels.resize(static_cast<std::size_t>(b));
  const std::int64_t stride = img.numel() / img.size(0);
  for (std::int64_t j = 0; j < b; ++j) {
    const std::int64_t src = order_[static_cast<std::size_t>(begin + j)];
    std::copy(img.raw() + src * stride, img.raw() + (src + 1) * stride,
              batch.images.raw() + j * stride);
    batch.labels[static_cast<std::size_t>(j)] = ds_->labels[static_cast<std::size_t>(src)];
  }
  return batch;
}

}  // namespace wa::data
