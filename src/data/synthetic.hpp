// Synthetic image-classification datasets.
//
// The paper evaluates on CIFAR-10, CIFAR-100 and MNIST, none of which can be
// shipped here. These generators produce deterministic class-conditional
// texture datasets with the *same tensor geometry* (3x32x32 with 10 or 100
// classes; 1x28x28 with 10 classes) and controllable difficulty. The
// phenomena this repo reproduces — numerical error of quantized Winograd
// arithmetic and its mitigation by winograd-aware training — are properties
// of the layer arithmetic, so matching shapes/class counts (and therefore
// tile counts, channel widths and edge waste) preserves the behaviour under
// study. See DESIGN.md §2.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/rng.hpp"
#include "tensor/tensor.hpp"

namespace wa::data {

struct Dataset {
  Tensor images;  // [N, C, H, W], roughly zero-mean unit-range
  std::vector<std::int64_t> labels;
  int num_classes = 0;
  std::string name;

  std::int64_t size() const { return images.size(0); }
};

struct SyntheticSpec {
  std::string name = "synthetic";
  int num_classes = 10;
  std::int64_t channels = 3;
  std::int64_t height = 32;
  std::int64_t width = 32;
  std::int64_t train_size = 2000;
  std::int64_t test_size = 500;
  /// Components of the class texture; more components = richer classes.
  int texture_components = 4;
  /// Additive Gaussian pixel noise. Raising this lowers achievable accuracy.
  float noise = 0.25F;
  /// Max translation jitter in pixels (applied as phase shifts).
  float jitter = 2.F;
  std::uint64_t seed = 0xda7a;
};

/// CIFAR-10-shaped analog: 3x32x32, 10 classes.
SyntheticSpec cifar10_like();
/// CIFAR-100-shaped analog: 3x32x32, 100 classes, 600 images per class in
/// the paper; scaled down by default (env-scalable in the benches).
SyntheticSpec cifar100_like();
/// MNIST-shaped analog: 1x28x28, 10 classes.
SyntheticSpec mnist_like();

/// Deterministically generate the train or test split of a spec.
/// The class prototypes depend only on (seed, class); the split index picks
/// disjoint sample streams, so train/test come from the same distribution.
Dataset generate(const SyntheticSpec& spec, bool train);

/// Mini-batch view produced by DataLoader.
struct Batch {
  Tensor images;  // [B, C, H, W]
  std::vector<std::int64_t> labels;
};

/// Shuffling mini-batch iterator over a dataset.
class DataLoader {
 public:
  DataLoader(const Dataset& ds, std::int64_t batch_size, bool shuffle, std::uint64_t seed = 0);

  /// Number of batches per epoch (last partial batch included).
  std::int64_t batches() const;
  /// Reshuffle (if enabled) and restart.
  void reset();
  /// Fetch batch `i` of the current epoch order.
  Batch get(std::int64_t i) const;

 private:
  const Dataset* ds_;
  std::int64_t batch_size_;
  bool shuffle_;
  Rng rng_;
  std::vector<std::int64_t> order_;
};

}  // namespace wa::data
