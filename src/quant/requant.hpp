// Fixed-point requantization (Jacob et al. 2018, §2.2).
//
// Integer-only inference multiplies int8 values accumulating into int32, then
// rescales by a real multiplier M = s_in * s_w / s_out in fixed point:
// M = M0 * 2^-shift with M0 in [0.5, 1) stored as int32. This is the scheme
// the deployment backend (src/backend) uses, mirroring what production
// libraries (Arm Compute Library, gemmlowp) implement.
#pragma once

#include <cstdint>

namespace wa::quant {

struct FixedPointMultiplier {
  std::int32_t m0 = 0;  // quantized multiplier in Q31, in [2^30, 2^31)
  int shift = 0;        // right shift applied after the Q31 multiply
};

/// Decompose a positive real multiplier into (m0, shift).
/// Requires 0 < multiplier < 1 (the usual regime: s_in*s_w << s_out) but also
/// handles multiplier >= 1 by allowing negative shifts.
FixedPointMultiplier quantize_multiplier(double multiplier);

/// Saturating rounding doubling high multiply + rounding right shift:
/// round(acc * m0 * 2^-31 * 2^-shift), matching gemmlowp semantics.
std::int32_t apply_multiplier(std::int32_t acc, const FixedPointMultiplier& m);

/// Clamp an int32 to the symmetric range of a bit-width (e.g. ±127 for 8).
std::int32_t saturate(std::int32_t v, int bits);

}  // namespace wa::quant
