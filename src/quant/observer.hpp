// Range observers deciding the quantization scale of each tensor.
#pragma once

#include <algorithm>
#include <cmath>

#include "quant/qparams.hpp"
#include "quant/quant.hpp"

namespace wa::quant {

/// Tracks the dynamic range of a quantized tensor site.
///
/// Weights use Mode::kMinMax (the scale follows the current values exactly);
/// activations and Winograd intermediates use Mode::kEma — an exponential
/// moving average over batches, the "moving averages" the paper warms up
/// before evaluating post-training Winograd swaps (Table 1 footnote).
///
/// min and max are tracked separately so the same observer serves both the
/// paper's symmetric scheme (scale from abs-max) and the affine extension
/// (scale and zero-point from the full interval).
class RangeObserver {
 public:
  enum class Mode { kMinMax, kEma };

  explicit RangeObserver(Mode mode = Mode::kEma, float ema_momentum = 0.95F)
      : mode_(mode), momentum_(ema_momentum) {}

  /// Update the tracked range from a batch (training / calibration).
  void observe(const Tensor& x) {
    if (x.empty()) return;
    const float lo = x.min();
    const float hi = x.max();
    if (mode_ == Mode::kMinMax || !initialized_) {
      min_ = lo;
      max_ = hi;
      initialized_ = true;
    } else {
      min_ = momentum_ * min_ + (1.F - momentum_) * lo;
      max_ = momentum_ * max_ + (1.F - momentum_) * hi;
    }
  }

  /// Scale for the tracked range at the given bit-width. When nothing has
  /// been observed yet the batch itself must be observed first; calling with
  /// no observations returns a scale for range 1.0 rather than throwing so
  /// that a cold evaluation pass is well-defined.
  float scale(const QuantSpec& spec) const {
    return scale_for(initialized_ ? tracked_abs_max() : 1.F, spec);
  }

  /// Per-tensor quantization parameters for the tracked range, honouring
  /// spec.scheme (symmetric zero-point 0, or affine with a learned offset).
  QParams qparams(const QuantSpec& spec) const {
    if (!spec.is_affine()) return QParams::per_tensor(scale(spec));
    const float lo = std::min(initialized_ ? min_ : -1.F, 0.F);
    const float hi = std::max(initialized_ ? max_ : 1.F, 0.F);
    const QRange range = range_of(spec);
    const float span = hi - lo;
    QParams p;
    p.channel_dim = -1;
    p.scales.assign(1, span > 1e-12F
                           ? span / static_cast<float>(range.qmax - range.qmin)
                           : 1e-12F);
    const float z = -lo / p.scales[0] + static_cast<float>(range.qmin);
    p.zero_points.assign(
        1, static_cast<std::int32_t>(std::lround(std::clamp(
               z, static_cast<float>(range.qmin), static_cast<float>(range.qmax)))));
    return p;
  }

  float tracked_abs_max() const { return std::max(std::fabs(min_), std::fabs(max_)); }
  float tracked_min() const { return min_; }
  float tracked_max() const { return max_; }
  bool initialized() const { return initialized_; }
  Mode mode() const { return mode_; }
  void reset() {
    min_ = 0.F;
    max_ = 0.F;
    initialized_ = false;
  }
  /// Switch tracking mode (used when freezing ranges for deployment).
  void set_mode(Mode m) { mode_ = m; }

 private:
  Mode mode_;
  float momentum_;
  float min_ = 0.F;
  float max_ = 0.F;
  bool initialized_ = false;
};

}  // namespace wa::quant
