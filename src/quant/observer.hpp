// Range observers deciding the quantization scale of each tensor.
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "quant/qparams.hpp"
#include "quant/quant.hpp"

namespace wa::quant {

/// Tracks the dynamic range of a quantized tensor site.
///
/// Weights use Mode::kMinMax (the scale follows the current values exactly);
/// activations and Winograd intermediates use Mode::kEma — an exponential
/// moving average over batches, the "moving averages" the paper warms up
/// before evaluating post-training Winograd swaps (Table 1 footnote).
///
/// min and max are tracked separately so the same observer serves both the
/// paper's symmetric scheme (scale from abs-max) and the affine extension
/// (scale and zero-point from the full interval).
class RangeObserver {
 public:
  enum class Mode { kMinMax, kEma };

  explicit RangeObserver(Mode mode = Mode::kEma, float ema_momentum = 0.95F)
      : mode_(mode), momentum_(ema_momentum) {}

  /// Update the tracked range from a batch (training / calibration).
  void observe(const Tensor& x) {
    if (x.empty()) return;
    observe_range(x.min(), x.max());
  }

  /// Update from a pre-computed [lo, hi] batch range (the per-tap observer
  /// feeds each tap group's slice range through here, so both granularities
  /// share one min-max/EMA rule).
  void observe_range(float lo, float hi) {
    if (mode_ == Mode::kMinMax || !initialized_) {
      min_ = lo;
      max_ = hi;
      initialized_ = true;
    } else {
      min_ = momentum_ * min_ + (1.F - momentum_) * lo;
      max_ = momentum_ * max_ + (1.F - momentum_) * hi;
    }
  }

  /// Scale for the tracked range at the given bit-width. When nothing has
  /// been observed yet the batch itself must be observed first; calling with
  /// no observations returns a scale for range 1.0 rather than throwing so
  /// that a cold evaluation pass is well-defined.
  float scale(const QuantSpec& spec) const {
    return scale_for(initialized_ ? tracked_abs_max() : 1.F, spec);
  }

  /// Per-tensor quantization parameters for the tracked range, honouring
  /// spec.scheme (symmetric zero-point 0, or affine with a learned offset).
  QParams qparams(const QuantSpec& spec) const {
    if (!spec.is_affine()) return QParams::per_tensor(scale(spec));
    const float lo = std::min(initialized_ ? min_ : -1.F, 0.F);
    const float hi = std::max(initialized_ ? max_ : 1.F, 0.F);
    const QRange range = range_of(spec);
    const float span = hi - lo;
    QParams p;
    p.channel_dim = -1;
    p.scales.assign(1, span > 1e-12F
                           ? span / static_cast<float>(range.qmax - range.qmin)
                           : 1e-12F);
    const float z = -lo / p.scales[0] + static_cast<float>(range.qmin);
    p.zero_points.assign(
        1, static_cast<std::int32_t>(std::lround(std::clamp(
               z, static_cast<float>(range.qmin), static_cast<float>(range.qmax)))));
    return p;
  }

  float tracked_abs_max() const { return std::max(std::fabs(min_), std::fabs(max_)); }
  float tracked_min() const { return min_; }
  float tracked_max() const { return max_; }
  bool initialized() const { return initialized_; }
  Mode mode() const { return mode_; }
  void reset() {
    min_ = 0.F;
    max_ = 0.F;
    initialized_ = false;
  }
  /// Switch tracking mode (used when freezing ranges for deployment).
  void set_mode(Mode m) { mode_ = m; }

 private:
  Mode mode_;
  float momentum_;
  float min_ = 0.F;
  float max_ = 0.F;
  bool initialized_ = false;
};

/// Per-tap range tracking for Winograd transform-domain tensors.
///
/// The tracked tensor carries its taps on one axis (dim 1 of the op's
/// [groups, t*t, ...] layouts); each batch is swept once to get per-tap
/// [lo, hi], collapsed over groups of `group_size` contiguous taps, and each
/// group's range feeds a RangeObserver — so kMinMax/kEma semantics are
/// exactly the per-tensor observer's, applied per group. group_size == taps
/// degenerates to one group, whose tracked range then matches the per-tensor
/// observer on the same data bit-for-bit.
class TapRangeObserver {
 public:
  explicit TapRangeObserver(RangeObserver::Mode mode = RangeObserver::Mode::kEma,
                            float ema_momentum = 0.95F)
      : mode_(mode), momentum_(ema_momentum) {}

  /// Fix the tap-axis geometry. Re-configuring with different values resets
  /// the tracked state (a layer's tile size changed; old ranges are
  /// meaningless). group_size must divide into taps' grouping cleanly at the
  /// last group only (the final group may be short).
  void configure(std::int64_t taps, std::int64_t group_size) {
    if (taps == taps_ && group_size == group_size_) return;
    if (taps <= 0 || group_size <= 0) {
      throw std::invalid_argument("TapRangeObserver: taps and group_size must be positive");
    }
    taps_ = taps;
    group_size_ = std::min(group_size, taps);
    groups_.assign(static_cast<std::size_t>((taps_ + group_size_ - 1) / group_size_),
                   RangeObserver(mode_, momentum_));
  }

  /// Update per-group ranges from a batch; `tap_dim` is the axis carrying
  /// the taps (must have extent == configured taps).
  void observe(const Tensor& x, std::int64_t tap_dim) {
    if (x.empty() || groups_.empty()) return;
    if (x.size(tap_dim) != taps_) {
      throw std::invalid_argument("TapRangeObserver: axis carries " +
                                  std::to_string(x.size(tap_dim)) + " taps, configured for " +
                                  std::to_string(taps_));
    }
    std::int64_t inner = 1;
    for (std::int64_t d = tap_dim + 1; d < x.dim(); ++d) inner *= x.size(d);
    const std::size_t ng = groups_.size();
    std::vector<float> lo(ng, std::numeric_limits<float>::infinity());
    std::vector<float> hi(ng, -std::numeric_limits<float>::infinity());
    const auto d = x.data();
    for (std::size_t i = 0; i < d.size(); ++i) {
      const auto g = static_cast<std::size_t>(
          ((static_cast<std::int64_t>(i) / inner) % taps_) / group_size_);
      lo[g] = std::min(lo[g], d[i]);
      hi[g] = std::max(hi[g], d[i]);
    }
    for (std::size_t g = 0; g < ng; ++g) groups_[g].observe_range(lo[g], hi[g]);
  }

  /// Expanded per-tap scale vector for the tracked ranges (scale_for per
  /// group, the same rule the per-tensor observer applies to its one range).
  ScaleVector scale_vector(const QuantSpec& spec) const {
    ScaleVector sv;
    sv.group_size = group_size_;
    sv.scales.resize(static_cast<std::size_t>(taps_));
    for (std::int64_t tap = 0; tap < taps_; ++tap) {
      const RangeObserver& g = groups_[static_cast<std::size_t>(tap / group_size_)];
      sv.scales[static_cast<std::size_t>(tap)] =
          scale_for(g.initialized() ? g.tracked_abs_max() : 1.F, spec);
    }
    return sv;
  }

  std::int64_t taps() const { return taps_; }
  std::int64_t group_size() const { return group_size_; }
  bool configured() const { return !groups_.empty(); }
  bool initialized() const {
    for (const RangeObserver& g : groups_) {
      if (!g.initialized()) return false;
    }
    return !groups_.empty();
  }
  /// Per-group observers (hashing / diagnostics).
  const std::vector<RangeObserver>& groups() const { return groups_; }
  void reset() {
    for (RangeObserver& g : groups_) g.reset();
  }

 private:
  RangeObserver::Mode mode_;
  float momentum_;
  std::int64_t taps_ = 0;
  std::int64_t group_size_ = 0;
  std::vector<RangeObserver> groups_;
};

}  // namespace wa::quant
