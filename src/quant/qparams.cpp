#include "quant/qparams.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace wa::quant {

QRange range_of(const QuantSpec& spec) {
  const auto qmax = static_cast<std::int32_t>(spec.qmax());
  return spec.is_affine() ? QRange{-qmax - 1, qmax} : QRange{-qmax, qmax};
}

namespace {

/// Geometry for slicing a tensor along one axis with plain index arithmetic:
/// channel(i) = (i / inner) % channels for a dense row-major layout.
struct AxisGeom {
  std::int64_t channels = 1;
  std::int64_t inner = 1;
};

AxisGeom axis_geom(const Tensor& x, std::int64_t channel_dim) {
  if (channel_dim < 0) return {1, 1};
  if (channel_dim >= x.dim()) {
    throw std::invalid_argument("choose_qparams: channel_dim " + std::to_string(channel_dim) +
                                " out of range for a " + std::to_string(x.dim()) + "-d tensor");
  }
  AxisGeom g;
  g.channels = x.size(channel_dim);
  for (std::int64_t d = channel_dim + 1; d < x.dim(); ++d) g.inner *= x.size(d);
  return g;
}

/// (scale, zero_point) from a [min, max] interval. The interval is first
/// widened to include 0 so that real zero is exactly representable.
void params_from_range(float lo, float hi, const QuantSpec& spec, const QRange& range,
                       float& scale, std::int32_t& zero_point) {
  lo = std::min(lo, 0.F);
  hi = std::max(hi, 0.F);
  if (spec.is_affine()) {
    const float span = hi - lo;
    scale = span > 1e-12F ? span / static_cast<float>(range.qmax - range.qmin) : 1e-12F;
    // z maps real 0.0 onto an integer level: q = round(x/s) + z.
    const float z = -lo / scale + static_cast<float>(range.qmin);
    zero_point = static_cast<std::int32_t>(std::lround(
        std::clamp(z, static_cast<float>(range.qmin), static_cast<float>(range.qmax))));
  } else {
    const float abs_max = std::max(std::fabs(lo), std::fabs(hi));
    scale = scale_for(abs_max, spec);
    zero_point = 0;
  }
}

}  // namespace

QParams choose_qparams(const Tensor& x, const QuantSpec& spec, std::int64_t channel_dim) {
  QParams p;
  p.channel_dim = channel_dim;
  if (spec.is_float()) {
    p.scales.assign(1, 1.F);
    p.zero_points.assign(1, 0);
    p.channel_dim = -1;
    return p;
  }
  const AxisGeom g = axis_geom(x, channel_dim);
  const QRange range = range_of(spec);
  std::vector<float> lo(static_cast<std::size_t>(g.channels),
                        std::numeric_limits<float>::infinity());
  std::vector<float> hi(static_cast<std::size_t>(g.channels),
                        -std::numeric_limits<float>::infinity());
  const auto d = x.data();
  for (std::size_t i = 0; i < d.size(); ++i) {
    const auto c = static_cast<std::size_t>(
        (static_cast<std::int64_t>(i) / g.inner) % g.channels);
    lo[c] = std::min(lo[c], d[i]);
    hi[c] = std::max(hi[c], d[i]);
  }
  p.scales.resize(static_cast<std::size_t>(g.channels));
  p.zero_points.resize(static_cast<std::size_t>(g.channels));
  for (std::size_t c = 0; c < p.scales.size(); ++c) {
    // An empty tensor leaves the infinities in place; collapse to [0, 0].
    const float l = std::isfinite(lo[c]) ? lo[c] : 0.F;
    const float h = std::isfinite(hi[c]) ? hi[c] : 0.F;
    params_from_range(l, h, spec, range, p.scales[c], p.zero_points[c]);
  }
  return p;
}

std::int64_t fake_quant_qparams_(Tensor& x, const QParams& params, const QuantSpec& spec,
                                 std::vector<std::uint8_t>* clip_mask) {
  auto d = x.data();
  if (spec.is_float()) {
    if (clip_mask) clip_mask->assign(d.size(), 1);
    return 0;
  }
  if (params.scales.empty() || params.scales.size() != params.zero_points.size()) {
    throw std::invalid_argument("fake_quant_qparams_: malformed QParams");
  }
  const AxisGeom g = axis_geom(x, params.channel_dim);
  if (g.channels != params.num_channels()) {
    throw std::invalid_argument("fake_quant_qparams_: QParams carry " +
                                std::to_string(params.num_channels()) +
                                " channels but axis has " + std::to_string(g.channels));
  }
  const QRange range = range_of(spec);
  const auto qmin = static_cast<float>(range.qmin);
  const auto qmax = static_cast<float>(range.qmax);
  if (clip_mask) clip_mask->assign(d.size(), 1);
  std::int64_t clipped = 0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    const auto c = static_cast<std::size_t>(
        (static_cast<std::int64_t>(i) / g.inner) % g.channels);
    const float s = params.scales[c];
    const auto z = static_cast<float>(params.zero_points[c]);
    float q = std::nearbyint(d[i] / s) + z;
    if (q > qmax || q < qmin) {
      q = std::clamp(q, qmin, qmax);
      ++clipped;
      if (clip_mask) (*clip_mask)[i] = 0;
    }
    d[i] = (q - z) * s;
  }
  return clipped;
}

Tensor fake_quant_qparams(const Tensor& x, const QParams& params, const QuantSpec& spec) {
  Tensor out = x;
  fake_quant_qparams_(out, params, spec);
  return out;
}

std::int64_t fake_quant_taps_(Tensor& x, const ScaleVector& sv, std::int64_t tap_dim,
                              const QuantSpec& spec, std::vector<std::uint8_t>* clip_mask) {
  auto d = x.data();
  if (spec.is_float()) {
    if (clip_mask) clip_mask->assign(d.size(), 1);
    return 0;
  }
  const AxisGeom g = axis_geom(x, tap_dim);
  if (g.channels != sv.taps()) {
    throw std::invalid_argument("fake_quant_taps_: ScaleVector carries " +
                                std::to_string(sv.taps()) + " taps but axis has " +
                                std::to_string(g.channels));
  }
  // Per-tap reciprocals hoisted out of the element loop: the element
  // expression must stay exactly fake_quant_'s (x * (1/s), nearbyint, clip,
  // q * s) so a splat vector reproduces the scalar path bit-for-bit and the
  // training grid matches the deployed executor's reciprocal-multiply
  // quantization.
  std::vector<float> inv(sv.scales.size());
  for (std::size_t tap = 0; tap < inv.size(); ++tap) inv[tap] = 1.F / sv.scales[tap];
  const float qmax = static_cast<float>(spec.qmax());
  std::int64_t clipped = 0;
  if (clip_mask) clip_mask->assign(d.size(), 1);
  for (std::size_t i = 0; i < d.size(); ++i) {
    const auto tap = static_cast<std::size_t>(
        (static_cast<std::int64_t>(i) / g.inner) % g.channels);
    float q = std::nearbyint(d[i] * inv[tap]);
    if (q > qmax) {
      q = qmax;
      ++clipped;
      if (clip_mask) (*clip_mask)[i] = 0;
    } else if (q < -qmax) {
      q = -qmax;
      ++clipped;
      if (clip_mask) (*clip_mask)[i] = 0;
    }
    d[i] = q * sv.scales[tap];
  }
  return clipped;
}

std::vector<std::int32_t> quantize_levels_qparams(const Tensor& x, const QParams& params,
                                                  const QuantSpec& spec) {
  const AxisGeom g = axis_geom(x, params.channel_dim);
  if (g.channels != params.num_channels()) {
    throw std::invalid_argument("quantize_levels_qparams: channel count mismatch");
  }
  const QRange range = range_of(spec);
  const auto d = x.data();
  std::vector<std::int32_t> q(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    const auto c = static_cast<std::size_t>(
        (static_cast<std::int64_t>(i) / g.inner) % g.channels);
    const float v = std::nearbyint(d[i] / params.scales[c]) +
                    static_cast<float>(params.zero_points[c]);
    q[i] = static_cast<std::int32_t>(
        std::clamp(v, static_cast<float>(range.qmin), static_cast<float>(range.qmax)));
  }
  return q;
}

Tensor dequantize_levels_qparams(const std::vector<std::int32_t>& q, const Shape& shape,
                                 const QParams& params) {
  Tensor t(shape);
  if (static_cast<std::int64_t>(q.size()) != t.numel()) {
    throw std::invalid_argument("dequantize_levels_qparams: count mismatch");
  }
  const AxisGeom g = axis_geom(t, params.channel_dim);
  if (g.channels != params.num_channels()) {
    throw std::invalid_argument("dequantize_levels_qparams: channel count mismatch");
  }
  auto d = t.data();
  for (std::size_t i = 0; i < q.size(); ++i) {
    const auto c = static_cast<std::size_t>(
        (static_cast<std::int64_t>(i) / g.inner) % g.channels);
    d[i] = static_cast<float>(q[i] - params.zero_points[c]) * params.scales[c];
  }
  return t;
}

float quantization_rmse_qparams(const Tensor& x, const QuantSpec& spec,
                                std::int64_t channel_dim) {
  if (spec.is_float() || x.empty()) return 0.F;
  const QParams p = choose_qparams(x, spec, channel_dim);
  const Tensor q = fake_quant_qparams(x, p, spec);
  double acc = 0;
  const auto a = x.data();
  const auto b = q.data();
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double diff = static_cast<double>(a[i]) - b[i];
    acc += diff * diff;
  }
  return static_cast<float>(std::sqrt(acc / static_cast<double>(a.size())));
}

}  // namespace wa::quant
