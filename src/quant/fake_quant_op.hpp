// Differentiable fake-quantization (straight-through estimator).
#pragma once

#include "autograd/variable.hpp"
#include "quant/observer.hpp"
#include "quant/quant.hpp"

namespace wa::quant {

/// Fake-quantize a Variable. Forward: clamp(round(x/s), ±qmax) * s with s
/// from the observer (which is updated from x when `training` is true).
/// Backward: straight-through, except elements that saturated the clamp get
/// zero gradient (the clipped-STE of Jacob et al. 2018). Honours
/// spec.scheme: affine specs quantize with the observer's zero-point.
///
/// With spec.is_float() this is the identity and adds no graph node.
wa::ag::Variable fake_quant_ste(const wa::ag::Variable& x, RangeObserver& observer,
                                const QuantSpec& spec, bool training);

/// Fake-quantize with explicit parameters (per-channel and/or affine).
/// No observer involvement: the caller owns parameter selection.
wa::ag::Variable fake_quant_qparams_ste(const wa::ag::Variable& x, const QParams& params,
                                        const QuantSpec& spec);

/// Weight-tensor fake-quantization. Weights take their parameters from the
/// current values (min-max, no moving average), per-tensor or per-output-
/// channel (channel_dim 0) — the per-channel extension the paper's
/// discussion recommends. Always symmetric, the near-universal convention
/// for weights (a weight zero-point would put the zero offset inside every
/// accumulation).
wa::ag::Variable fake_quant_weights_ste(const wa::ag::Variable& w, const QuantSpec& spec,
                                        bool per_channel);

}  // namespace wa::quant
