// Generalized quantization parameters: affine (asymmetric) quantization and
// per-channel granularity.
//
// The paper trains with per-layer symmetric quantization (Krishnamoorthi
// 2018) and, in its discussion section, points at "per-channel affine
// quantization, as in Jacob et al. (2018)" as the most likely fix for the
// accuracy gap that remains at INT8 for large Winograd tiles. This module
// implements that extension so the claim can be tested (see
// bench/ablation_per_channel.cpp):
//
//   symmetric:  q = clamp(round(x / s), -qmax, qmax),          x̂ = q * s
//   affine:     q = clamp(round(x / s) + z, qmin, qmax),       x̂ = (q - z) * s
//
// Per-channel parameters hold one (s, z) pair per slice of a chosen axis
// (conventionally the output-channel axis of a weight tensor); per-tensor
// parameters hold a single pair.
#pragma once

#include <cstdint>
#include <vector>

#include "quant/quant.hpp"
#include "tensor/tensor.hpp"

namespace wa::quant {

/// Quantization parameters for one tensor site. Value-semantic; produced by
/// choose_qparams() or an observer and consumed by the fake-quant /
/// quantize-levels functions below.
struct QParams {
  /// One scale per channel, or a single scale when per-tensor.
  std::vector<float> scales;
  /// Zero-points aligned with scales; all-zero for symmetric quantization.
  std::vector<std::int32_t> zero_points;
  /// Axis the channels live on; -1 means per-tensor.
  std::int64_t channel_dim = -1;

  bool per_channel() const { return channel_dim >= 0; }
  std::int64_t num_channels() const { return static_cast<std::int64_t>(scales.size()); }

  /// Per-tensor symmetric parameters from a single scale.
  static QParams per_tensor(float scale) { return QParams{{scale}, {0}, -1}; }
};

/// A scale per transform-domain tap (with optional contiguous grouping),
/// degenerating to the per-tensor scalar case.
///
/// Winograd's transform-domain tensors (V, M, U) carry t*t "taps" — the
/// (a,b) positions of the t x t element-wise product — whose dynamic ranges
/// differ wildly at larger tiles (the F4/F6 accuracy cliff; Andri et al.'s
/// tap-wise quantization). A ScaleVector assigns one scale per tap, derived
/// per group of `group_size` contiguous taps (group_size == taps is the
/// legacy per-tensor case; 1 is fully tap-wise). Storage is always the
/// EXPANDED per-tap vector so consumers (fake-quant, the int8 executors,
/// serialization) never re-derive grouping; `group_size` records provenance.
struct ScaleVector {
  /// One scale per tap (size == tap count). Empty means "unset": consumers
  /// fall back to their per-tensor scalar path.
  std::vector<float> scales;
  /// Taps per scale group when the vector was derived (0 = unset/per-tensor).
  /// scales[tap] == group scale of group tap / group_size.
  std::int64_t group_size = 0;

  bool empty() const { return scales.empty(); }
  std::int64_t taps() const { return static_cast<std::int64_t>(scales.size()); }

  /// True when every tap shares one scale (the scalar-degenerate case — the
  /// executors then take their legacy uniform sweeps).
  bool uniform() const {
    for (const float s : scales) {
      if (s != scales.front()) return false;
    }
    return true;
  }

  /// Constant vector: the scalar case widened to `taps` entries (how v1-v3
  /// artifacts and per-tensor-trained stages enter the per-tap machinery).
  static ScaleVector splat(float scale, std::int64_t taps) {
    ScaleVector sv;
    sv.scales.assign(static_cast<std::size_t>(taps), scale);
    sv.group_size = taps;
    return sv;
  }
};

/// Fake-quantize in place with one symmetric scale per tap slice along
/// `tap_dim`. Element semantics are exactly fake_quant_'s (multiply by the
/// reciprocal, nearbyint, clip at ±qmax) with the tap's scale — a splat
/// ScaleVector is bit-identical to the scalar call, and the grid matches
/// what the deployed int8 executor quantizes V against (it, too, multiplies
/// by reciprocals). Returns the clipped count; `clip_mask` as in fake_quant_.
std::int64_t fake_quant_taps_(Tensor& x, const ScaleVector& sv, std::int64_t tap_dim,
                              const QuantSpec& spec,
                              std::vector<std::uint8_t>* clip_mask = nullptr);

/// Integer range of a spec under a scheme. Symmetric uses ±qmax (no negative-
/// extreme asymmetry); affine uses the full two's-complement range.
struct QRange {
  std::int32_t qmin = 0;
  std::int32_t qmax = 0;
};
QRange range_of(const QuantSpec& spec);

/// Choose quantization parameters for `x`.
///  * symmetric: scale = abs_max / qmax per slice, zero_point = 0;
///  * affine: scale = (max - min) / (qmax - qmin), zero_point chosen so that
///    real 0.0 is exactly representable (required so zero padding stays
///    exact — Jacob et al. 2018 §2.1).
/// `channel_dim` = -1 chooses per-tensor parameters, otherwise one pair per
/// slice of that axis. Throws std::invalid_argument for a bad axis.
QParams choose_qparams(const Tensor& x, const QuantSpec& spec, std::int64_t channel_dim = -1);

/// Fake-quantize in place under `params`; returns the clipped-element count.
/// If `clip_mask` is non-null it is sized to numel and set to 1 where the
/// straight-through gradient passes (value stayed in range), 0 where clipped.
/// No-op (mask all-ones) when the spec is float.
std::int64_t fake_quant_qparams_(Tensor& x, const QParams& params, const QuantSpec& spec,
                                 std::vector<std::uint8_t>* clip_mask = nullptr);

/// Out-of-place convenience wrapper.
Tensor fake_quant_qparams(const Tensor& x, const QParams& params, const QuantSpec& spec);

/// Quantize to integer levels (int32 storage; any bits <= 16 fits).
std::vector<std::int32_t> quantize_levels_qparams(const Tensor& x, const QParams& params,
                                                  const QuantSpec& spec);

/// Reconstruct floats from integer levels produced by quantize_levels_qparams.
Tensor dequantize_levels_qparams(const std::vector<std::int32_t>& q, const Shape& shape,
                                 const QParams& params);

/// RMSE introduced by fake-quantizing `x` with ideal parameters at `spec` and
/// the given granularity. Basis of the per-channel-vs-per-tensor ablation.
float quantization_rmse_qparams(const Tensor& x, const QuantSpec& spec,
                                std::int64_t channel_dim = -1);

}  // namespace wa::quant
