#include "quant/requant.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace wa::quant {

FixedPointMultiplier quantize_multiplier(double multiplier) {
  if (multiplier <= 0) throw std::invalid_argument("quantize_multiplier: non-positive multiplier");
  FixedPointMultiplier out;
  int exp = 0;
  const double q = std::frexp(multiplier, &exp);  // multiplier = q * 2^exp, q in [0.5, 1)
  auto q31 = static_cast<std::int64_t>(std::llround(q * (1LL << 31)));
  if (q31 == (1LL << 31)) {  // rounding overflowed to 2^31; renormalize
    q31 /= 2;
    ++exp;
  }
  out.m0 = static_cast<std::int32_t>(q31);
  out.shift = -exp;  // total effect: * m0 * 2^-31 * 2^-shift = q * 2^exp
  return out;
}

std::int32_t apply_multiplier(std::int32_t acc, const FixedPointMultiplier& m) {
  // Saturating rounding doubling high mul (SQRDMULH semantics).
  const bool overflow = acc == m.m0 && acc == std::numeric_limits<std::int32_t>::min();
  const std::int64_t prod = static_cast<std::int64_t>(acc) * m.m0;
  const std::int32_t nudge = prod >= 0 ? (1 << 30) : (1 - (1 << 30));
  std::int32_t high = static_cast<std::int32_t>((prod + nudge) / (1LL << 31));
  if (overflow) high = std::numeric_limits<std::int32_t>::max();

  const int shift = m.shift;
  if (shift <= 0) {
    // Negative (left) shift: scale up, saturating. |high| < 2^31, so any
    // nonzero value shifted left by >= 31 exceeds int32 — saturate before
    // the shift itself can overflow the int64 intermediate.
    if (high == 0) return 0;
    if (-shift >= 31) {
      return high > 0 ? std::numeric_limits<std::int32_t>::max()
                      : std::numeric_limits<std::int32_t>::min();
    }
    const std::int64_t shifted = static_cast<std::int64_t>(high) << (-shift);
    if (shifted > std::numeric_limits<std::int32_t>::max()) {
      return std::numeric_limits<std::int32_t>::max();
    }
    if (shifted < std::numeric_limits<std::int32_t>::min()) {
      return std::numeric_limits<std::int32_t>::min();
    }
    return static_cast<std::int32_t>(shifted);
  }
  // Rounding right shift, in 64 bits: a multiplier below 2^-31 (tiny scale
  // ratio, e.g. wide logits feeding a tight consumer scale) yields shift >=
  // 31, where the old `1 << shift` mask was undefined behavior. Shifts are
  // clamped at 62 — |high| < 2^31, so everything past that rounds to 0
  // anyway — keeping `1 << s` and `h >> s` well-defined.
  const int s = std::min(shift, 62);
  const std::int64_t h = high;
  const std::int64_t mask = (std::int64_t{1} << s) - 1;
  const std::int64_t remainder = h & mask;
  const std::int64_t threshold = (mask >> 1) + (h < 0 ? 1 : 0);
  return static_cast<std::int32_t>((h >> s) + (remainder > threshold ? 1 : 0));
}

std::int32_t saturate(std::int32_t v, int bits) {
  const std::int32_t qmax = (1 << (bits - 1)) - 1;
  return v > qmax ? qmax : (v < -qmax ? -qmax : v);
}

}  // namespace wa::quant
