// Uniform symmetric quantization (per-layer), after Krishnamoorthi (2018).
//
// The paper trains with INT16 / INT10 / INT8 weights and activations and
// quantizes *every* intermediate output of the Winograd pipeline (the Qx
// boxes of Fig. 2) to the same level. All of that reduces to the fake-quant
// primitive here: clamp(round(x / s), -qmax, qmax) * s with a straight-
// through estimator whose gradient is masked where the clamp saturated.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace wa::quant {

/// Mapping between real values and integer levels.
///  * kSymmetric — zero-point fixed at 0, range ±qmax. The paper's scheme.
///  * kAffine — learned zero-point, full two's-complement range (Jacob et
///    al. 2018); the extension the paper's discussion section suggests.
enum class QuantScheme { kSymmetric, kAffine };

/// Bit-width configuration. bits == 32 means "leave values untouched"
/// (the FP32 rows of the paper's tables).
struct QuantSpec {
  int bits = 8;
  QuantScheme scheme = QuantScheme::kSymmetric;

  constexpr bool is_float() const { return bits >= 32; }
  constexpr bool is_affine() const { return scheme == QuantScheme::kAffine; }
  /// Largest representable magnitude level: 2^(bits-1) - 1 (symmetric range,
  /// no negative-extreme asymmetry, as in per-layer symmetric quantization).
  std::int64_t qmax() const { return (std::int64_t{1} << (bits - 1)) - 1; }

  std::string to_string() const {
    if (is_float()) return "fp32";
    return "int" + std::to_string(bits) + (is_affine() ? "a" : "");
  }

  friend bool operator==(const QuantSpec&, const QuantSpec&) = default;
};

/// Scale so that `abs_max` maps to qmax. Guards against degenerate ranges.
float scale_for(float abs_max, const QuantSpec& spec);

/// Fake-quantize `x` in place with the given scale; returns the number of
/// clipped (saturated) elements. If `clip_mask` is non-null it is resized to
/// numel and set to 1 where the value stayed inside the representable range
/// (i.e. where the STE passes gradient) and 0 where it clipped.
std::int64_t fake_quant_(Tensor& x, float scale, const QuantSpec& spec,
                         std::vector<std::uint8_t>* clip_mask = nullptr);

/// Out-of-place convenience wrapper around fake_quant_.
Tensor fake_quant(const Tensor& x, float scale, const QuantSpec& spec);

/// Quantize to integer levels: round(clamp(x/s)) as int32 (fits any bits<=16).
std::vector<std::int32_t> quantize_levels(const Tensor& x, float scale, const QuantSpec& spec);

/// Reconstruct floats from integer levels.
Tensor dequantize_levels(const std::vector<std::int32_t>& q, const Shape& shape, float scale);

/// Root-mean-square error introduced by fake-quantizing `x` at `spec` with
/// the ideal (abs-max) scale. Used by the numerical-error analyses.
float quantization_rmse(const Tensor& x, const QuantSpec& spec);

}  // namespace wa::quant
