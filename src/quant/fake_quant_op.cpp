#include "quant/fake_quant_op.hpp"

#include <memory>

namespace wa::quant {

namespace {

/// Shared STE backward: pass gradient where the clip mask is 1, zero it
/// where the forward pass saturated.
wa::ag::Variable make_ste_node(const wa::ag::Variable& x, std::string name, Tensor out,
                               std::shared_ptr<std::vector<std::uint8_t>> mask) {
  auto xn = x.node();
  return wa::ag::apply_op(std::move(name), {x}, std::move(out),
                          [xn, mask](wa::ag::Node& n) {
                            if (!xn->requires_grad) return;
                            Tensor g = n.grad;
                            auto gd = g.data();
                            for (std::size_t i = 0; i < gd.size(); ++i) {
                              if (!(*mask)[i]) gd[i] = 0.F;
                            }
                            xn->accum_grad(g);
                          });
}

}  // namespace

wa::ag::Variable fake_quant_ste(const wa::ag::Variable& x, RangeObserver& observer,
                                const QuantSpec& spec, bool training) {
  if (spec.is_float()) return x;
  if (training) observer.observe(x.value());

  Tensor out = x.value();
  auto mask = std::make_shared<std::vector<std::uint8_t>>();
  if (spec.is_affine()) {
    fake_quant_qparams_(out, observer.qparams(spec), spec, mask.get());
  } else {
    fake_quant_(out, observer.scale(spec), spec, mask.get());
  }
  return make_ste_node(x, "fake_quant[" + spec.to_string() + "]", std::move(out),
                       std::move(mask));
}

wa::ag::Variable fake_quant_qparams_ste(const wa::ag::Variable& x, const QParams& params,
                                        const QuantSpec& spec) {
  if (spec.is_float()) return x;
  Tensor out = x.value();
  auto mask = std::make_shared<std::vector<std::uint8_t>>();
  fake_quant_qparams_(out, params, spec, mask.get());
  const std::string tag = params.per_channel() ? "pc" : "pt";
  return make_ste_node(x, "fake_quant_qp[" + spec.to_string() + "," + tag + "]",
                       std::move(out), std::move(mask));
}

wa::ag::Variable fake_quant_weights_ste(const wa::ag::Variable& w, const QuantSpec& spec,
                                        bool per_channel) {
  if (spec.is_float()) return w;
  QuantSpec sym = spec;
  sym.scheme = QuantScheme::kSymmetric;
  const QParams params = choose_qparams(w.value(), sym, per_channel ? 0 : -1);
  Tensor out = w.value();
  auto mask = std::make_shared<std::vector<std::uint8_t>>();
  fake_quant_qparams_(out, params, sym, mask.get());
  return make_ste_node(w,
                       std::string("fake_quant_w[") + sym.to_string() +
                           (per_channel ? ",per_channel]" : "]"),
                       std::move(out), std::move(mask));
}

}  // namespace wa::quant
