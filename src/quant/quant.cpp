#include "quant/quant.hpp"

#include <cmath>

namespace wa::quant {

float scale_for(float abs_max, const QuantSpec& spec) {
  if (spec.is_float()) return 1.F;
  const float qmax = static_cast<float>(spec.qmax());
  // A zero range would make the scale zero and divisions undefined;
  // fall back to a tiny epsilon so fake-quant of an all-zero tensor is a no-op.
  const float safe = abs_max > 1e-12F ? abs_max : 1e-12F;
  return safe / qmax;
}

std::int64_t fake_quant_(Tensor& x, float scale, const QuantSpec& spec,
                         std::vector<std::uint8_t>* clip_mask) {
  if (spec.is_float()) {
    if (clip_mask) clip_mask->assign(static_cast<std::size_t>(x.numel()), 1);
    return 0;
  }
  const float qmax = static_cast<float>(spec.qmax());
  const float inv = 1.F / scale;
  std::int64_t clipped = 0;
  auto d = x.data();
  if (clip_mask) clip_mask->assign(d.size(), 1);
  for (std::size_t i = 0; i < d.size(); ++i) {
    float q = std::nearbyint(d[i] * inv);
    if (q > qmax) {
      q = qmax;
      ++clipped;
      if (clip_mask) (*clip_mask)[i] = 0;
    } else if (q < -qmax) {
      q = -qmax;
      ++clipped;
      if (clip_mask) (*clip_mask)[i] = 0;
    }
    d[i] = q * scale;
  }
  return clipped;
}

Tensor fake_quant(const Tensor& x, float scale, const QuantSpec& spec) {
  Tensor out = x;
  fake_quant_(out, scale, spec);
  return out;
}

std::vector<std::int32_t> quantize_levels(const Tensor& x, float scale, const QuantSpec& spec) {
  const auto qmax = static_cast<float>(spec.qmax());
  const float inv = 1.F / scale;
  std::vector<std::int32_t> q(static_cast<std::size_t>(x.numel()));
  auto d = x.data();
  for (std::size_t i = 0; i < d.size(); ++i) {
    float v = std::nearbyint(d[i] * inv);
    v = std::min(qmax, std::max(-qmax, v));
    q[i] = static_cast<std::int32_t>(v);
  }
  return q;
}

Tensor dequantize_levels(const std::vector<std::int32_t>& q, const Shape& shape, float scale) {
  Tensor t(shape);
  if (static_cast<std::int64_t>(q.size()) != t.numel()) {
    throw std::invalid_argument("dequantize_levels: count mismatch");
  }
  auto d = t.data();
  for (std::size_t i = 0; i < q.size(); ++i) d[i] = static_cast<float>(q[i]) * scale;
  return t;
}

float quantization_rmse(const Tensor& x, const QuantSpec& spec) {
  if (spec.is_float() || x.empty()) return 0.F;
  const float s = scale_for(x.abs_max(), spec);
  Tensor q = fake_quant(x, s, spec);
  double acc = 0;
  auto a = x.data();
  auto b = q.data();
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    acc += d * d;
  }
  return static_cast<float>(std::sqrt(acc / static_cast<double>(a.size())));
}

}  // namespace wa::quant
