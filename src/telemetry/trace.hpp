// Request-scoped tracing: a TraceContext minted at InferenceServer::submit
// rides the request through queueing, micro-batch coalescing, worker
// dispatch and into Int8Pipeline::run_impl, which emits one span per stage
// and per-phase sub-spans for the blocked Winograd executor. Spans land in
// per-thread ring buffers (bounded memory, drop counters) and export as
// chrome://tracing JSON — load trace.json at chrome://tracing or
// https://ui.perfetto.dev to see where one request's milliseconds went.
//
// Sampling gate: tracing is OFF by default. WA_TRACE=N (or set_sampling(N))
// traces every Nth submitted request; WA_TRACE=1 traces all of them. An
// untraced request costs one relaxed fetch_add in submit and a null-pointer
// check per pipeline stage — nothing else. Span emission itself takes a
// short per-ring mutex (collect() must read a coherent ring); that is fine
// because only sampled requests ever reach it — the zero-locks contract
// applies to the always-on metrics path (telemetry/metrics.hpp), not to the
// opt-in tracer.
//
// Span naming scheme (docs/OBSERVABILITY.md):
//   serve:    request, queue_wait, coalesce, dispatch
//   pipeline: stage:<label>
//   kernel:   wino.scatter, wino.gemm, wino.requant, wino.gather
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace wa::telemetry {

/// Identity of one sampled request. id 0 = not traced (the null context) —
/// everything downstream keys "should I emit?" off valid().
struct TraceContext {
  std::uint64_t id = 0;
  bool valid() const { return id != 0; }
};

/// One completed interval. ts/dur are nanoseconds on the tracer's private
/// steady-clock epoch (process start); `tid` is the trace id, so the chrome
/// exporter renders each traced request as its own nested row. `args` is a
/// preformatted JSON-object fragment (e.g. "\"batch\":4") or empty.
struct Span {
  std::string name;
  const char* cat = "";
  std::uint64_t tid = 0;
  std::int64_t ts_ns = 0;
  std::int64_t dur_ns = 0;
  std::string args;
};

class Tracer {
 public:
  static Tracer& instance();

  /// Every-Nth sampling rate; 0 disables tracing. Initialized from WA_TRACE.
  /// Like simd::set_backend, flipping it mid-traffic is a test/bench hook,
  /// not a synchronized operation.
  std::uint32_t sampling() const { return sampling_.load(std::memory_order_relaxed); }
  void set_sampling(std::uint32_t every_n) {
    sampling_.store(every_n, std::memory_order_relaxed);
  }
  bool enabled() const { return sampling() != 0; }

  /// Sampling decision for a new request: the null context unless tracing is
  /// on and this is the Nth submission. One relaxed fetch_add when enabled.
  TraceContext sample() {
    const std::uint32_t n = sampling();
    if (n == 0) return {};
    if (tick_.fetch_add(1, std::memory_order_relaxed) % n != 0) return {};
    return begin_trace();
  }
  /// Unconditionally mint a fresh trace id (benches/tests that want one
  /// specific traced window regardless of the sampling rate).
  TraceContext begin_trace() { return {next_id_.fetch_add(1, std::memory_order_relaxed)}; }

  std::int64_t now_ns() const { return to_ns(std::chrono::steady_clock::now()); }
  std::int64_t to_ns(std::chrono::steady_clock::time_point tp) const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(tp - epoch_).count();
  }

  /// Record a completed span into the calling thread's ring (creating and
  /// registering the ring on first use). When the ring is full the OLDEST
  /// span is overwritten and the ring's drop counter ticks — bounded memory,
  /// and a trace dump always holds the most recent window.
  void emit(Span s);

  /// Copy every ring's live spans, sorted by start time. Safe to call while
  /// emitters run (per-ring mutexes); the result is a consistent view of
  /// each ring, not a global cut.
  std::vector<Span> collect() const;

  /// Clear all rings and drop counters — the start of a fresh capture window.
  void clear();

  std::uint64_t dropped() const;  ///< total spans overwritten before collection
  std::uint64_t emitted() const;  ///< total spans ever emitted

  /// Capacity (spans) for rings created after the call. Existing rings keep
  /// theirs; the default (kDefaultRingCapacity) bounds one ring at ~a few MB.
  void set_ring_capacity(std::size_t cap);
  std::size_t ring_capacity() const { return cap_.load(std::memory_order_relaxed); }

  static constexpr std::size_t kDefaultRingCapacity = 16384;

 private:
  Tracer();
  struct Ring;
  Ring& local_ring();

  std::chrono::steady_clock::time_point epoch_;
  std::atomic<std::uint32_t> sampling_{0};
  std::atomic<std::uint64_t> tick_{0};
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::size_t> cap_{kDefaultRingCapacity};
  mutable std::mutex rings_mu_;  // ring registration + collect/clear
  std::vector<std::unique_ptr<Ring>> rings_;  // never shrunk: one per emitting thread
};

/// chrome://tracing "X" (complete) events, one per span, pid 0 and tid =
/// trace id. Spans are written sorted by timestamp; ts/dur are microseconds
/// as the format requires.
void write_chrome_trace(std::ostream& os, const std::vector<Span>& spans);

/// collect() + write_chrome_trace to `path`; false on I/O failure.
bool dump_chrome_trace(const std::string& path);

}  // namespace wa::telemetry
