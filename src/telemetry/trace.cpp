#include "telemetry/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>

namespace wa::telemetry {

struct Tracer::Ring {
  explicit Ring(std::size_t capacity) : cap(capacity) { spans.reserve(capacity); }
  mutable std::mutex mu;
  std::size_t cap;
  std::vector<Span> spans;  // grows to cap, then wraps
  std::size_t head = 0;     // next write position once wrapped
  std::uint64_t dropped = 0;
  std::uint64_t emitted = 0;
};

namespace {

std::uint32_t sampling_from_env() {
  const char* env = std::getenv("WA_TRACE");
  if (env == nullptr || *env == '\0') return 0;
  const long v = std::strtol(env, nullptr, 10);
  return v > 0 ? static_cast<std::uint32_t>(v) : 0;
}

}  // namespace

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {
  sampling_.store(sampling_from_env(), std::memory_order_relaxed);
}

Tracer& Tracer::instance() {
  static Tracer* g = new Tracer();  // leaked: emitters may outlive static dtors
  return *g;
}

Tracer::Ring& Tracer::local_ring() {
  thread_local Ring* t_ring = nullptr;
  if (t_ring == nullptr) {
    auto ring = std::make_unique<Ring>(ring_capacity());
    t_ring = ring.get();
    std::lock_guard<std::mutex> lk(rings_mu_);
    rings_.push_back(std::move(ring));
  }
  return *t_ring;
}

void Tracer::emit(Span s) {
  Ring& r = local_ring();
  std::lock_guard<std::mutex> lk(r.mu);
  ++r.emitted;
  if (r.spans.size() < r.cap) {
    r.spans.push_back(std::move(s));
  } else {
    r.spans[r.head] = std::move(s);
    r.head = (r.head + 1) % r.cap;
    ++r.dropped;
  }
}

std::vector<Span> Tracer::collect() const {
  std::vector<Span> out;
  {
    std::lock_guard<std::mutex> lk(rings_mu_);
    for (const auto& ring : rings_) {
      std::lock_guard<std::mutex> rlk(ring->mu);
      // Oldest-first: [head, end) then [0, head) once wrapped.
      for (std::size_t i = ring->head; i < ring->spans.size(); ++i) out.push_back(ring->spans[i]);
      for (std::size_t i = 0; i < ring->head; ++i) out.push_back(ring->spans[i]);
    }
  }
  std::sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
    return a.ts_ns != b.ts_ns ? a.ts_ns < b.ts_ns : a.dur_ns > b.dur_ns;
  });
  return out;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lk(rings_mu_);
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> rlk(ring->mu);
    ring->spans.clear();
    ring->head = 0;
    ring->dropped = 0;
    ring->emitted = 0;
  }
}

std::uint64_t Tracer::dropped() const {
  std::uint64_t total = 0;
  std::lock_guard<std::mutex> lk(rings_mu_);
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> rlk(ring->mu);
    total += ring->dropped;
  }
  return total;
}

std::uint64_t Tracer::emitted() const {
  std::uint64_t total = 0;
  std::lock_guard<std::mutex> lk(rings_mu_);
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> rlk(ring->mu);
    total += ring->emitted;
  }
  return total;
}

void Tracer::set_ring_capacity(std::size_t cap) {
  cap_.store(std::max<std::size_t>(1, cap), std::memory_order_relaxed);
}

namespace {

void json_escape_into(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

void write_chrome_trace(std::ostream& os, const std::vector<Span>& spans) {
  os << "{\"traceEvents\":[";
  bool first = true;
  std::string line;
  for (const Span& s : spans) {
    line.clear();
    if (!first) line += ",";
    first = false;
    line += "\n{\"name\":\"";
    json_escape_into(line, s.name);
    line += "\",\"cat\":\"";
    json_escape_into(line, s.cat != nullptr ? std::string(s.cat) : std::string());
    char buf[160];
    // chrome trace ts/dur are microseconds (floating point is allowed and
    // keeps sub-us spans visible).
    std::snprintf(buf, sizeof(buf),
                  "\",\"ph\":\"X\",\"pid\":0,\"tid\":%llu,\"ts\":%.3f,\"dur\":%.3f",
                  static_cast<unsigned long long>(s.tid),
                  static_cast<double>(s.ts_ns) / 1000.0, static_cast<double>(s.dur_ns) / 1000.0);
    line += buf;
    if (!s.args.empty()) {
      line += ",\"args\":{" + s.args + "}";
    }
    line += "}";
    os << line;
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

bool dump_chrome_trace(const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  write_chrome_trace(out, Tracer::instance().collect());
  return static_cast<bool>(out);
}

}  // namespace wa::telemetry
