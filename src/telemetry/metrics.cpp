#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cstdlib>
#include <ostream>
#include <stdexcept>

#include "backend/perf_counters.hpp"

namespace wa::telemetry {

namespace {

std::atomic<bool> g_metrics_enabled{[] {
  const char* env = std::getenv("WA_METRICS");
  return env == nullptr || std::string(env) != "0";
}()};

}  // namespace

bool metrics_enabled() { return g_metrics_enabled.load(std::memory_order_relaxed); }
void set_metrics_enabled(bool on) { g_metrics_enabled.store(on, std::memory_order_relaxed); }

// ---- snapshot structs ------------------------------------------------------

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  double lo = 0.0;
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    const std::uint64_t ck = counts[b];
    if (ck > 0) {
      if (static_cast<double>(cum) + static_cast<double>(ck) >= target) {
        if (b >= bounds.size()) return max;  // overflow bucket: best answer is the max
        const double hi = bounds[b];
        const double frac =
            std::clamp((target - static_cast<double>(cum)) / static_cast<double>(ck), 0.0, 1.0);
        return lo + frac * (hi - lo);
      }
      cum += ck;
    }
    if (b < bounds.size()) lo = bounds[b];
  }
  return max;
}

HistogramSnapshot HistogramSnapshot::minus(const HistogramSnapshot& base) const {
  HistogramSnapshot d = *this;
  if (base.counts.size() == counts.size()) {
    for (std::size_t b = 0; b < counts.size(); ++b) {
      d.counts[b] = counts[b] >= base.counts[b] ? counts[b] - base.counts[b] : 0;
    }
    // Clamp like the counts: a baseline captured between a concurrent
    // observe()'s bucket increment and its sum add could otherwise leave a
    // negative windowed sum (=> negative mean) for an empty window.
    d.sum = sum > base.sum ? sum - base.sum : 0.0;
    d.count = count >= base.count ? count - base.count : 0;
  }
  return d;
}

const MetricSnapshot* Snapshot::find(std::string_view name) const {
  for (const MetricSnapshot& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

// ---- handles ---------------------------------------------------------------

namespace {

std::uint64_t merge_counter(const detail::MetricCell& c) {
  std::uint64_t total = 0;
  for (const auto& s : c.stripes) total += s.v.load(std::memory_order_relaxed);
  return total;
}

HistogramSnapshot merge_histogram(const detail::MetricCell& c) {
  HistogramSnapshot h;
  h.bounds = c.bounds;
  h.counts.assign(c.bounds.size() + 1, 0);
  for (std::size_t s = 0; s < kStripes; ++s) {
    for (std::size_t b = 0; b <= c.bounds.size(); ++b) {
      h.counts[b] += c.bucket_counts[s * c.bucket_stride + b].load(std::memory_order_relaxed);
    }
    h.sum += c.hist[s].sum.load(std::memory_order_relaxed);
    h.max = std::max(h.max, c.hist[s].max.load(std::memory_order_relaxed));
  }
  for (const std::uint64_t ck : h.counts) h.count += ck;
  return h;
}

}  // namespace

std::uint64_t Counter::value() const { return cell_ != nullptr ? merge_counter(*cell_) : 0; }

double Gauge::value() const {
  return cell_ != nullptr ? cell_->gauge.load(std::memory_order_relaxed) : 0.0;
}

HistogramSnapshot Histogram::snapshot() const {
  return cell_ != nullptr ? merge_histogram(*cell_) : HistogramSnapshot{};
}

// ---- registry --------------------------------------------------------------

Registry& Registry::global() {
  static Registry* g = new Registry();  // leaked: outlives every handle
  return *g;
}

detail::MetricCell* Registry::get_or_create(const std::string& name, MetricType type,
                                            std::vector<double> bounds) {
  if (name.empty()) throw std::invalid_argument("telemetry::Registry: empty metric name");
  std::lock_guard<std::mutex> lk(mu_);
  auto it = cells_.find(name);
  if (it != cells_.end()) {
    if (it->second->type != type) {
      throw std::invalid_argument("telemetry::Registry: metric '" + name +
                                  "' already registered with a different type");
    }
    return it->second.get();
  }
  auto cell = std::make_unique<detail::MetricCell>();
  cell->name = name;
  cell->type = type;
  if (type == MetricType::kHistogram) {
    if (bounds.empty()) {
      throw std::invalid_argument("telemetry::Registry: histogram '" + name + "' needs bounds");
    }
    for (std::size_t b = 1; b < bounds.size(); ++b) {
      if (bounds[b] <= bounds[b - 1]) {
        throw std::invalid_argument("telemetry::Registry: histogram '" + name +
                                    "' bounds must be strictly increasing");
      }
    }
    cell->bounds = std::move(bounds);
    // Pad each stripe's bucket row to a cache-line multiple so two stripes
    // never share a line.
    cell->bucket_stride = (cell->bounds.size() + 1 + 7) / 8 * 8;
    cell->bucket_counts = std::vector<std::atomic<std::uint64_t>>(kStripes * cell->bucket_stride);
  }
  detail::MetricCell* raw = cell.get();
  cells_.emplace(name, std::move(cell));
  return raw;
}

Counter Registry::counter(const std::string& name) {
  return Counter(get_or_create(name, MetricType::kCounter, {}));
}

Gauge Registry::gauge(const std::string& name) {
  return Gauge(get_or_create(name, MetricType::kGauge, {}));
}

Histogram Registry::histogram(const std::string& name, std::vector<double> bounds) {
  return Histogram(get_or_create(name, MetricType::kHistogram, std::move(bounds)));
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  {
    std::lock_guard<std::mutex> lk(mu_);
    snap.metrics.reserve(cells_.size() + 2);
    for (const auto& [name, cell] : cells_) {
      MetricSnapshot m;
      m.name = name;
      m.type = cell->type;
      switch (cell->type) {
        case MetricType::kCounter:
          m.value = static_cast<double>(merge_counter(*cell));
          break;
        case MetricType::kGauge:
          m.value = cell->gauge.load(std::memory_order_relaxed);
          break;
        case MetricType::kHistogram:
          m.hist = merge_histogram(*cell);
          break;
      }
      snap.metrics.push_back(std::move(m));
    }
  }
  // Absorb the kernel-layer perf counters behind the same snapshot API (and
  // so the same Prometheus exposition). Only the global registry sees real
  // traffic on them, but including them everywhere keeps snapshot() uniform.
  const backend::PerfSnapshot perf = backend::snapshot_counters();
  MetricSnapshot wt;
  wt.name = "wa_backend_weight_transforms_total";
  wt.type = MetricType::kCounter;
  wt.value = static_cast<double>(perf.weight_transforms);
  MetricSnapshot wr;
  wr.name = "wa_backend_weight_repacks_total";
  wr.type = MetricType::kCounter;
  wr.value = static_cast<double>(perf.weight_repacks);
  snap.metrics.push_back(std::move(wt));
  snap.metrics.push_back(std::move(wr));
  std::sort(snap.metrics.begin(), snap.metrics.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) { return a.name < b.name; });
  return snap;
}

void Registry::reset_for_tests() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [name, cell] : cells_) {
    for (auto& s : cell->stripes) s.v.store(0, std::memory_order_relaxed);
    cell->gauge.store(0.0, std::memory_order_relaxed);
    for (auto& c : cell->bucket_counts) c.store(0, std::memory_order_relaxed);
    for (auto& h : cell->hist) {
      h.sum.store(0.0, std::memory_order_relaxed);
      h.max.store(0.0, std::memory_order_relaxed);
    }
  }
}

// ---- exposition ------------------------------------------------------------

namespace {

/// Split `base{labels}` into base and the inner label block ("" when none).
void split_name(const std::string& name, std::string& base, std::string& labels) {
  const std::size_t brace = name.find('{');
  if (brace == std::string::npos || name.back() != '}') {
    base = name;
    labels.clear();
    return;
  }
  base = name.substr(0, brace);
  labels = name.substr(brace + 1, name.size() - brace - 2);
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

void write_prometheus(std::ostream& os, const Snapshot& snap) {
  std::string last_typed;
  for (const MetricSnapshot& m : snap.metrics) {
    std::string base, labels;
    split_name(m.name, base, labels);
    if (base != last_typed) {
      const char* type = m.type == MetricType::kCounter   ? "counter"
                         : m.type == MetricType::kGauge   ? "gauge"
                                                          : "histogram";
      os << "# TYPE " << base << ' ' << type << '\n';
      last_typed = base;
    }
    if (m.type == MetricType::kHistogram) {
      const std::string sep = labels.empty() ? "" : ",";
      std::uint64_t cum = 0;
      for (std::size_t b = 0; b < m.hist.counts.size(); ++b) {
        cum += m.hist.counts[b];
        const std::string le =
            b < m.hist.bounds.size() ? fmt_double(m.hist.bounds[b]) : "+Inf";
        os << base << "_bucket{" << labels << sep << "le=\"" << le << "\"} " << cum << '\n';
      }
      const std::string lb = labels.empty() ? "" : "{" + labels + "}";
      os << base << "_sum" << lb << ' ' << fmt_double(m.hist.sum) << '\n';
      os << base << "_count" << lb << ' ' << m.hist.count << '\n';
    } else {
      os << m.name << ' ' << fmt_double(m.value) << '\n';
    }
  }
}

std::vector<double> exponential_bounds(double first, double factor, std::size_t n) {
  std::vector<double> bounds;
  bounds.reserve(n);
  double v = first;
  for (std::size_t i = 0; i < n; ++i) {
    bounds.push_back(v);
    v *= factor;
  }
  return bounds;
}

double percentile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto idx =
      static_cast<std::size_t>(q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace wa::telemetry
