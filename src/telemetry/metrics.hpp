// Lock-free metrics registry: named counters, gauges and fixed-bucket
// histograms shared by the serving stack, the deployment engine and the
// benches — the one snapshot API behind InferenceServer::stats,
// serve::dump_metrics and the BENCH_*.json sections.
//
// Hot-path design (the serving requirement is "always on, < 1% throughput"):
//   - every mutation is a relaxed atomic op on per-thread *striped* storage —
//     threads hash to one of kStripes cache-line-padded stripes, so
//     concurrent writers almost never contend on a line and NEVER take a
//     lock (floating-point sum/max stripes use lock-free CAS loops);
//   - reads merge the stripes at snapshot() time, which is the only place
//     the registry's creation mutex is touched — monitoring pays the cost,
//     inference does not;
//   - handles (Counter/Gauge/Histogram) are trivially-copyable pointers into
//     registry-owned cells with stable addresses; the registry never deletes
//     a cell, so a handle outlives any server/pipeline holding it.
//
// Like backend::PerfCounters (whose counters this registry's snapshot
// absorbs), stripes are monotone relaxed atomics: a snapshot is not a
// consistent cut across metrics, but any single counter observed flat across
// a window proves no thread performed that operation inside the window.
//
// Naming scheme (docs/OBSERVABILITY.md): Prometheus-style
// `wa_<layer>_<what>[_total]{label="value"}` — the optional {labels} suffix
// is carried verbatim in the metric name and split out by the text
// exposition writer.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace wa::telemetry {

/// Global on/off for the metric mutation paths. Defaults to on; WA_METRICS=0
/// (or set_metrics_enabled(false)) turns every inc/set/observe into a cheap
/// early-out — the control the serve_throughput bench's A/B overhead section
/// flips to price the always-on path. Snapshots keep working either way.
bool metrics_enabled();
void set_metrics_enabled(bool on);

/// Stripe count for per-thread sharded storage. Threads are assigned
/// round-robin at first use; 16 stripes keep a 4-worker server plus its
/// clients effectively contention-free while bounding merge cost.
inline constexpr std::size_t kStripes = 16;

inline std::size_t shard_index() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t idx = next.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return idx;
}

/// Lock-free add/max on an atomic double (CAS loop — x86-64 LOCK CMPXCHG;
/// no mutex anywhere on the mutation path).
inline void atomic_add_double(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}
inline void atomic_max_double(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (cur < v && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

enum class MetricType : std::uint8_t { kCounter, kGauge, kHistogram };

namespace detail {

struct alignas(64) CounterStripe {
  std::atomic<std::uint64_t> v{0};
};

struct alignas(64) HistStripe {
  std::atomic<double> sum{0.0};
  std::atomic<double> max{0.0};  // meaningful for the non-negative values we record
};

/// One registered metric. Owned by the Registry (stable address, never
/// freed); handles below are thin pointers into it.
struct MetricCell {
  std::string name;
  MetricType type = MetricType::kCounter;

  // Counter: per-stripe monotone partial sums.
  std::array<CounterStripe, kStripes> stripes;

  // Gauge: last-write-wins single cell (set() semantics cannot stripe).
  std::atomic<double> gauge{0.0};

  // Histogram: `bounds` are the inclusive upper edges of the first
  // bounds.size() buckets; one implicit overflow bucket follows. Bucket
  // counts are striped with the per-stripe rows padded apart.
  std::vector<double> bounds;
  std::size_t bucket_stride = 0;  // bounds.size()+1 rounded up to a cache line
  std::vector<std::atomic<std::uint64_t>> bucket_counts;  // [kStripes * bucket_stride]
  std::array<HistStripe, kStripes> hist;

  std::size_t bucket_of(double v) const {
    std::size_t b = 0;
    while (b < bounds.size() && v > bounds[b]) ++b;
    return b;  // == bounds.size() -> overflow bucket
  }
};

}  // namespace detail

/// Merged view of one histogram: counts has bounds.size()+1 entries (the
/// last is the overflow bucket).
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;
  double sum = 0.0;
  double max = 0.0;
  std::uint64_t count = 0;

  /// Quantile estimate by linear interpolation inside the owning bucket
  /// (rank q*count walked over the cumulative counts; the overflow bucket
  /// answers with `max`). Empty histogram -> 0. Monotone in q by
  /// construction — the property InferenceServer::stats relies on for
  /// p99 >= p50.
  double quantile(double q) const;
  double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }

  /// Counts/sum/count delta vs an earlier snapshot of the same histogram —
  /// how a per-registration window (e.g. "latency since this model was
  /// added") is carved out of process-lifetime cells. `max` cannot be
  /// windowed and is returned as-is; callers needing a windowed max track
  /// it themselves.
  HistogramSnapshot minus(const HistogramSnapshot& base) const;
};

struct MetricSnapshot {
  std::string name;
  MetricType type = MetricType::kCounter;
  double value = 0.0;  // counter total or gauge level
  HistogramSnapshot hist;
};

struct Snapshot {
  std::vector<MetricSnapshot> metrics;  // sorted by name
  const MetricSnapshot* find(std::string_view name) const;
};

// ---- handles ---------------------------------------------------------------

class Counter {
 public:
  Counter() = default;
  void inc(std::uint64_t n = 1) const {
    if (cell_ == nullptr || !metrics_enabled()) return;
    cell_->stripes[shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const;
  bool valid() const { return cell_ != nullptr; }

 private:
  friend class Registry;
  explicit Counter(detail::MetricCell* c) : cell_(c) {}
  detail::MetricCell* cell_ = nullptr;
};

class Gauge {
 public:
  Gauge() = default;
  void set(double v) const {
    if (cell_ == nullptr || !metrics_enabled()) return;
    cell_->gauge.store(v, std::memory_order_relaxed);
  }
  void add(double v) const {
    if (cell_ == nullptr || !metrics_enabled()) return;
    atomic_add_double(cell_->gauge, v);
  }
  double value() const;
  bool valid() const { return cell_ != nullptr; }

 private:
  friend class Registry;
  explicit Gauge(detail::MetricCell* c) : cell_(c) {}
  detail::MetricCell* cell_ = nullptr;
};

class Histogram {
 public:
  Histogram() = default;
  void observe(double v) const {
    if (cell_ == nullptr || !metrics_enabled()) return;
    const std::size_t s = shard_index();
    cell_->bucket_counts[s * cell_->bucket_stride + cell_->bucket_of(v)].fetch_add(
        1, std::memory_order_relaxed);
    atomic_add_double(cell_->hist[s].sum, v);
    atomic_max_double(cell_->hist[s].max, v);
  }
  HistogramSnapshot snapshot() const;
  bool valid() const { return cell_ != nullptr; }

 private:
  friend class Registry;
  explicit Histogram(detail::MetricCell* c) : cell_(c) {}
  detail::MetricCell* cell_ = nullptr;
};

// ---- registry --------------------------------------------------------------

class Registry {
 public:
  /// The process-wide registry (leaked singleton: handles and the exporters
  /// stay valid through static destruction). Tests that need isolation can
  /// construct their own Registry.
  static Registry& global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Get-or-create by full name (including any {label} suffix). Creation
  /// takes the registry mutex once; the returned handle's mutations never
  /// do. Re-requesting an existing name returns a handle to the same cell
  /// (a re-registered model continues its series — Prometheus semantics);
  /// requesting it with a different type throws std::invalid_argument.
  Counter counter(const std::string& name);
  Gauge gauge(const std::string& name);
  /// `bounds` must be strictly increasing upper bucket edges. A histogram
  /// re-request ignores `bounds` and returns the existing cell.
  Histogram histogram(const std::string& name, std::vector<double> bounds);

  /// Merge every cell's stripes into plain values. The global registry's
  /// snapshot also absorbs backend::PerfCounters (weight transforms /
  /// repacks) as `wa_backend_*_total` counters, so the one snapshot API
  /// covers the kernel-layer counters too.
  Snapshot snapshot() const;

  /// Zero every stripe/gauge (unit tests only — not for production use;
  /// counters are contractually monotone).
  void reset_for_tests();

 private:
  detail::MetricCell* get_or_create(const std::string& name, MetricType type,
                                    std::vector<double> bounds);
  mutable std::mutex mu_;  // creation + snapshot only; never on a mutation path
  std::map<std::string, std::unique_ptr<detail::MetricCell>> cells_;
};

/// Prometheus text exposition of a snapshot: `# TYPE` headers, `_bucket`
/// cumulative rows with `le=` labels, `_sum`/`_count` for histograms. Metric
/// names of the form `base{labels}` have the label block merged into each
/// emitted sample's labels.
void write_prometheus(std::ostream& os, const Snapshot& snap);

/// Bucket-edge helper: n exponentially spaced bounds starting at `first`
/// (first, first*factor, ...). The default latency edges used by the server.
std::vector<double> exponential_bounds(double first, double factor, std::size_t n);

/// Nearest-rank percentile over an ASCENDING-sorted window — the exact math
/// InferenceServer::stats used on its latency window before the histogram
/// replaced it, kept as the reference implementation the regression tests
/// compare histogram quantiles against. Edge cases pinned: empty -> 0,
/// single sample -> that sample for every q, and the rank is clamped into
/// range for any q in [0, 1].
double percentile_sorted(const std::vector<double>& sorted, double q);

/// Copyable relaxed-atomic EMA cell in nanoseconds — the always-available
/// per-stage timing Int8Pipeline::Node carries (fed by every run() when
/// metrics are enabled). The first kWarmup observations average arithmetically
/// (so short profiling runs converge immediately), then updates blend with
/// alpha = 1/kWarmup. observe() applies each blend via a compare-exchange
/// loop, so concurrent observers never lose an update (the blend order under
/// contention is unspecified, which is fine for a smoothed estimate).
class EmaNs {
 public:
  static constexpr std::uint64_t kWarmup = 8;

  EmaNs() = default;
  EmaNs(const EmaNs& o)
      : count_(o.count_.load(std::memory_order_relaxed)),
        value_(o.value_.load(std::memory_order_relaxed)) {}
  EmaNs& operator=(const EmaNs& o) {
    count_.store(o.count_.load(std::memory_order_relaxed), std::memory_order_relaxed);
    value_.store(o.value_.load(std::memory_order_relaxed), std::memory_order_relaxed);
    return *this;
  }

  void observe(std::int64_t ns) {
    const std::uint64_t n = count_.fetch_add(1, std::memory_order_relaxed) + 1;
    const double k = static_cast<double>(n <= kWarmup ? n : kWarmup);
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + (static_cast<double>(ns) - cur) / k,
                                         std::memory_order_relaxed)) {
    }
  }
  double value_ns() const { return value_.load(std::memory_order_relaxed); }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> value_{0.0};
};

}  // namespace wa::telemetry
