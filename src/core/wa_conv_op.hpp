// The Winograd-aware convolution op (paper Fig. 2).
//
// Forward, per layer:
//   U = Qx(G g Gᵀ)          weight transform
//   V = Qx(Bᵀ d B)          input-tile transform (tiles of t = m+r-1, stride m)
//   M = Qx(Σ_c U_kc ⊙ V_c)  Hadamard + channel sum, realised as t² GEMMs
//   Y = Qx(Aᵀ M A)          output transform, scattered into the layer output
//
// Every Qx is the same symmetric fake-quantization used for weights and
// activations (the paper quantizes all intermediates to the model's level).
// Backward is hand-derived (all stages are linear or bilinear):
//   dM = A dY Aᵀ,  dU = dM Vᵀ,  dV = Uᵀ dM,  dg = Gᵀ dU G,  dd = B dV Bᵀ
// and, when the transforms are learnable ("-flex"):
//   dG  = dU·G·gᵀ + dUᵀ·G·g          (from U = G g Gᵀ)
//   dBᵀ = dV·Bᵀ·dᵀ + dVᵀ·Bᵀ·d        (from V = Bᵀ d B)
//   dAᵀ = dY·Aᵀ·Mᵀ + dYᵀ·Aᵀ·M        (from Y = Aᵀ M A)
// with straight-through clip masks from each Qx. All of it is verified by
// finite-difference grad-checks in tests/test_core.cpp.
#pragma once

#include <optional>

#include "autograd/variable.hpp"
#include "backend/conv_kernels.hpp"
#include "quant/observer.hpp"

namespace wa::core {

/// Observers for the four Qx stages of one layer. The weight-transform
/// stage tracks min-max (it depends only on the weights); the activation-
/// dependent stages use EMA, matching standard QAT practice and the paper's
/// "warmup of all the moving averages involved in Eq. 1".
///
/// Each stage can carry its own bit-width ("quantization diversity", paper
/// §3.2: "each of these can be quantized to a different number of bits").
/// An unset override falls back to `spec`, the layer-level default — the
/// paper's default configuration where every intermediate is quantized to
/// the input/weight level.
struct WaQuantStages {
  quant::QuantSpec spec{32};
  std::optional<quant::QuantSpec> spec_u, spec_v, spec_m, spec_y;

  quant::RangeObserver u{quant::RangeObserver::Mode::kMinMax};  // G g Gᵀ
  quant::RangeObserver v{quant::RangeObserver::Mode::kEma};     // Bᵀ d B
  quant::RangeObserver m{quant::RangeObserver::Mode::kEma};     // Hadamard
  quant::RangeObserver y{quant::RangeObserver::Mode::kEma};     // Aᵀ M A

  /// Taps per scale group for the transform-domain stages. 0 = legacy
  /// per-tensor scales through the scalar observers above. > 0: U, V and M
  /// fake-quantize per tap (axis 1 of the op's [groups, t*t, ...] layouts)
  /// with ranges tracked by the tap observers below, grouped in contiguous
  /// runs of this many taps — so QAT trains against exactly the grid the
  /// per-tap int8 executor deploys. Y keeps the per-tensor observer either
  /// way (it is a pixel-domain tensor; there is no tap axis to key on).
  std::int64_t tap_group_size = 0;
  bool per_tap() const { return tap_group_size > 0; }

  quant::TapRangeObserver u_taps{quant::RangeObserver::Mode::kMinMax};
  quant::TapRangeObserver v_taps{quant::RangeObserver::Mode::kEma};
  quant::TapRangeObserver m_taps{quant::RangeObserver::Mode::kEma};

  const quant::QuantSpec& u_spec() const { return spec_u ? *spec_u : spec; }
  const quant::QuantSpec& v_spec() const { return spec_v ? *spec_v : spec; }
  const quant::QuantSpec& m_spec() const { return spec_m ? *spec_m : spec; }
  const quant::QuantSpec& y_spec() const { return spec_y ? *spec_y : spec; }

  /// Inference-time cache of stage 1, U = Qx(G g Gᵀ) (plus the pruning mask
  /// fold). Populated on the first eval forward and keyed on a content hash
  /// of everything that determines U — weights, G, mask, U-observer state and
  /// spec — so weight updates (optimizer steps, manual edits, gradcheck
  /// perturbations) invalidate it automatically. Never consulted during
  /// training: the U observer must keep observing there.
  struct UCache {
    Tensor u;                          // post-Qx (and post-mask) U
    std::vector<std::uint8_t> mask_u;  // STE/prune mask matching `u`
    std::uint64_t key = 0;
    bool valid = false;
    void invalidate() { valid = false; }
  };
  UCache u_cache;
};

/// Winograd-aware convolution.
///
/// `input` [N,C,H,W] and `weight` [K,C/groups,r,r] are expected already
/// fake-quantized by the caller (the layer owns those observers). `g_mat`
/// [t,r], `bt_mat` [t,t], `at_mat` [m,t] are the transforms — pass Variables
/// with requires_grad=true to learn them (-flex). `m_out` is the Winograd
/// output tile size m. Gradients flow to input, weight and (if required)
/// the three transforms. `bias` may be undefined.
///
/// `u_mask`, when non-null and non-empty, is a 0/1 tensor with the shape of
/// the transformed weights U = [groups, t², K/groups, C/groups]; masked
/// entries are pruned from the Hadamard stage in forward AND backward — the
/// Winograd-domain sparsity of Liu et al. (2018), which skips up to 90% of
/// the multiplications with no FP32 accuracy loss. Training with the mask
/// in place is the "prune-then-finetune" workflow (src/sparse).
ag::Variable winograd_aware_conv2d(const ag::Variable& input, const ag::Variable& weight,
                                   const ag::Variable& bias, const ag::Variable& g_mat,
                                   const ag::Variable& bt_mat, const ag::Variable& at_mat,
                                   const backend::ConvGeometry& geom, int m_out,
                                   WaQuantStages& stages, bool training,
                                   const Tensor* u_mask = nullptr);

}  // namespace wa::core
