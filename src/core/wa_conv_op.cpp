#include "core/wa_conv_op.hpp"

#include <cstring>
#include <memory>
#include <stdexcept>
#include <vector>

#include "backend/perf_counters.hpp"
#include "winograd/small_mat.hpp"
#include "quant/quant.hpp"
#include "tensor/gemm.hpp"

namespace wa::core {

using wino::kMaxTile;
using wino::kSmallMatCap;
using wino::smm_add;
using wino::smm_nn;
using wino::smm_nt;
using wino::smm_sandwich;
using wino::smm_sandwich_t;
using wino::smm_tn;

namespace {

using quant::QuantSpec;

/// Everything the backward pass needs, captured by shared_ptr.
struct Saved {
  // Quantized intermediates (the values actually consumed downstream).
  Tensor u_q;      // [groups, t*t, Kg, Cg]
  Tensor v_q;      // [groups, t*t, Cg, NP]
  Tensor m_q;      // [groups, t*t, Kg, NP]
  Tensor patches;  // [groups, Cg, NP, t, t] — pre-transform input tiles
  // STE clip masks, empty when spec is fp32.
  std::vector<std::uint8_t> mask_u, mask_v, mask_m, mask_y;
};

void fake_quant_stage(Tensor& x, quant::RangeObserver& obs, const QuantSpec& spec, bool training,
                      std::vector<std::uint8_t>* mask) {
  if (spec.is_float()) return;
  if (training) obs.observe(x);
  if (spec.is_affine()) {
    quant::fake_quant_qparams_(x, obs.qparams(spec), spec, mask);
  } else {
    quant::fake_quant_(x, obs.scale(spec), spec, mask);
  }
}

/// Per-tap variant for the transform-domain stages: x is one of the op's
/// [groups, t*t, ...] tensors (taps on axis 1). Ranges are tracked per group
/// of `group_size` contiguous taps and the fake-quant grid is the expanded
/// per-tap scale vector — the same grid the deployed per-tap executor
/// quantizes against. Symmetric schemes only (enforced at layer construction).
void fake_quant_stage_taps(Tensor& x, quant::TapRangeObserver& obs, std::int64_t taps,
                           std::int64_t group_size, const QuantSpec& spec, bool training,
                           std::vector<std::uint8_t>* mask) {
  if (spec.is_float()) return;
  obs.configure(taps, group_size);
  if (training) obs.observe(x, /*tap_dim=*/1);
  quant::fake_quant_taps_(x, obs.scale_vector(spec), /*tap_dim=*/1, spec, mask);
}

void apply_mask(Tensor& t, const std::vector<std::uint8_t>& mask) {
  if (mask.empty()) return;
  auto d = t.data();
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (!mask[i]) d[i] = 0.F;
  }
}

/// FNV-1a over arbitrary bytes, word-at-a-time (the U-cache key).
std::uint64_t fnv1a(const void* data, std::size_t bytes, std::uint64_t h) {
  constexpr std::uint64_t kPrime = 1099511628211ULL;
  const auto* p = static_cast<const unsigned char*>(data);
  std::size_t i = 0;
  for (; i + 8 <= bytes; i += 8) {
    std::uint64_t word;
    std::memcpy(&word, p + i, 8);
    h = (h ^ word) * kPrime;
  }
  for (; i < bytes; ++i) h = (h ^ p[i]) * kPrime;
  return h;
}

/// Content key of everything stage 1 depends on.
std::uint64_t u_cache_key(const Tensor& w, const Tensor& g, const Tensor* u_mask,
                          const WaQuantStages& stages) {
  std::uint64_t h = 14695981039346656037ULL;
  h = fnv1a(w.raw(), static_cast<std::size_t>(w.numel()) * sizeof(float), h);
  h = fnv1a(g.raw(), static_cast<std::size_t>(g.numel()) * sizeof(float), h);
  if (u_mask != nullptr && !u_mask->empty()) {
    h = fnv1a(u_mask->raw(), static_cast<std::size_t>(u_mask->numel()) * sizeof(float), h);
  }
  const quant::QuantSpec& spec = stages.u_spec();
  const struct {
    float mn, mx;
    std::int32_t init, bits, scheme;
  } qx{stages.u.tracked_min(), stages.u.tracked_max(),
       static_cast<std::int32_t>(stages.u.initialized()), spec.bits,
       static_cast<std::int32_t>(spec.scheme)};
  h = fnv1a(&qx, sizeof(qx), h);
  if (stages.per_tap()) {
    // Per-tap U ranges determine the cached tensor too: any group's tracked
    // interval moving must invalidate the cache.
    h = fnv1a(&stages.tap_group_size, sizeof(stages.tap_group_size), h);
    for (const quant::RangeObserver& g : stages.u_taps.groups()) {
      const struct {
        float mn, mx;
        std::int32_t init;
      } tg{g.tracked_min(), g.tracked_max(), static_cast<std::int32_t>(g.initialized())};
      h = fnv1a(&tg, sizeof(tg), h);
    }
  }
  return h;
}

}  // namespace

ag::Variable winograd_aware_conv2d(const ag::Variable& input, const ag::Variable& weight,
                                   const ag::Variable& bias, const ag::Variable& g_mat,
                                   const ag::Variable& bt_mat, const ag::Variable& at_mat,
                                   const backend::ConvGeometry& geom, int m_out,
                                   WaQuantStages& stages, bool training,
                                   const Tensor* u_mask) {
  geom.validate();
  const std::int64_t r = geom.kernel;
  const std::int64_t t = g_mat.shape()[0];
  const std::int64_t m = m_out;
  if (g_mat.shape() != Shape{t, r} || bt_mat.shape() != Shape{t, t} ||
      at_mat.shape() != Shape{m, t} || t != m + r - 1) {
    throw std::invalid_argument("winograd_aware_conv2d: transform shapes inconsistent with F(" +
                                std::to_string(m) + "," + std::to_string(r) + ")");
  }
  if (t > kMaxTile) {
    throw std::invalid_argument("winograd_aware_conv2d: tile size " + std::to_string(t) +
                                " exceeds supported maximum " + std::to_string(kMaxTile));
  }
  const std::int64_t groups = geom.groups;
  const std::int64_t cg = geom.in_channels / groups;
  const std::int64_t kg = geom.out_channels / groups;
  const std::int64_t oh = geom.out_height(), ow = geom.out_width();
  const std::int64_t th = (oh + m - 1) / m, tw = (ow + m - 1) / m;
  const std::int64_t np = geom.batch * th * tw;  // tiles across the batch
  const std::int64_t tt = t * t;
  const int ti_ = static_cast<int>(t), ri_ = static_cast<int>(r), mi_ = static_cast<int>(m);

  const Tensor& x = input.value();
  const Tensor& w = weight.value();
  const float* gm = g_mat.value().raw();
  const float* bt = bt_mat.value().raw();
  const float* at = at_mat.value().raw();

  auto saved = std::make_shared<Saved>();

  // ---- 1) weight transform U = Qx(G g Gᵀ) --------------------------------
  // In eval the whole stage is deterministic in (w, G, mask, observer state),
  // so it is cached per layer and reused across forwards — a plain memcpy
  // instead of the transform + fake-quant passes.
  const bool use_u_cache = !training;
  const std::uint64_t ckey =
      use_u_cache ? u_cache_key(w, g_mat.value(), u_mask, stages) : 0;
  Tensor u;
  if (use_u_cache && stages.u_cache.valid && stages.u_cache.key == ckey) {
    u = stages.u_cache.u;
    saved->mask_u = stages.u_cache.mask_u;
  } else {
    u = Tensor(Shape{groups, tt, kg, cg});
    backend::count_weight_transform();
#pragma omp parallel for collapse(2) schedule(static)
    for (std::int64_t grp = 0; grp < groups; ++grp) {
      for (std::int64_t k = 0; k < kg; ++k) {
        float tmp[kSmallMatCap], gg[kSmallMatCap];
        for (std::int64_t c = 0; c < cg; ++c) {
          const float* filt = w.raw() + ((grp * kg + k) * cg + c) * r * r;
          smm_sandwich(gm, ti_, ri_, filt, tmp, gg);  // [t, t]
          for (std::int64_t ab = 0; ab < tt; ++ab) {
            u.raw()[((grp * tt + ab) * kg + k) * cg + c] = gg[ab];
          }
        }
      }
    }
    if (stages.per_tap()) {
      fake_quant_stage_taps(u, stages.u_taps, tt, stages.tap_group_size, stages.u_spec(),
                            training, &saved->mask_u);
    } else {
      fake_quant_stage(u, stages.u, stages.u_spec(), training, &saved->mask_u);
    }
    if (u_mask != nullptr && !u_mask->empty()) {
      // Winograd-domain pruning: zero masked U entries and fold the mask into
      // the STE mask so backward drops their gradients too (the pruned
      // positions stay pruned through fine-tuning).
      if (u_mask->shape() != u.shape()) {
        throw std::invalid_argument("winograd_aware_conv2d: u_mask shape " +
                                    to_string(u_mask->shape()) + " does not match U " +
                                    to_string(u.shape()));
      }
      auto ud = u.data();
      const auto md = u_mask->data();
      if (saved->mask_u.empty()) saved->mask_u.assign(ud.size(), 1);
      for (std::size_t i = 0; i < ud.size(); ++i) {
        if (md[i] == 0.F) {
          ud[i] = 0.F;
          saved->mask_u[i] = 0;
        }
      }
    }
    if (use_u_cache) {
      stages.u_cache.u = u;
      stages.u_cache.mask_u = saved->mask_u;
      stages.u_cache.key = ckey;
      stages.u_cache.valid = true;
    } else {
      // Training step: weights are moving, drop the stale entry.
      stages.u_cache.invalidate();
    }
  }

  // ---- 2) input transform V = Qx(Bᵀ d B) ----------------------------------
  Tensor patches(Shape{groups, cg, np, t, t});
  Tensor v(Shape{groups, tt, cg, np});
#pragma omp parallel for collapse(2) schedule(static)
  for (std::int64_t grp = 0; grp < groups; ++grp) {
    for (std::int64_t c = 0; c < cg; ++c) {
      float tmp[kSmallMatCap], bv[kSmallMatCap];
      for (std::int64_t n = 0; n < geom.batch; ++n) {
        for (std::int64_t ti = 0; ti < th; ++ti) {
          for (std::int64_t tj = 0; tj < tw; ++tj) {
            const std::int64_t tile = (n * th + ti) * tw + tj;
            const std::int64_t i0 = ti * m - geom.pad, j0 = tj * m - geom.pad;
            float* patch = patches.raw() + (((grp * cg + c) * np + tile) * t) * t;
            for (std::int64_t a = 0; a < t; ++a) {
              const std::int64_t ii = i0 + a;
              for (std::int64_t b = 0; b < t; ++b) {
                const std::int64_t jj = j0 + b;
                patch[a * t + b] = (ii >= 0 && ii < geom.height && jj >= 0 && jj < geom.width)
                                       ? x(n, grp * cg + c, ii, jj)
                                       : 0.F;
              }
            }
            smm_sandwich(bt, ti_, ti_, patch, tmp, bv);  // [t, t]
            for (std::int64_t ab = 0; ab < tt; ++ab) {
              v.raw()[((grp * tt + ab) * cg + c) * np + tile] = bv[ab];
            }
          }
        }
      }
    }
  }
  if (stages.per_tap()) {
    fake_quant_stage_taps(v, stages.v_taps, tt, stages.tap_group_size, stages.v_spec(), training,
                          &saved->mask_v);
  } else {
    fake_quant_stage(v, stages.v, stages.v_spec(), training, &saved->mask_v);
  }

  // ---- 3) Hadamard + channel sum: t² GEMMs --------------------------------
  Tensor mm(Shape{groups, tt, kg, np});
  gemm_batched_f32(false, false, groups * tt, kg, np, cg, u.raw(), kg * cg, v.raw(), cg * np,
                   mm.raw(), kg * np);
  if (stages.per_tap()) {
    fake_quant_stage_taps(mm, stages.m_taps, tt, stages.tap_group_size, stages.m_spec(), training,
                          &saved->mask_m);
  } else {
    fake_quant_stage(mm, stages.m, stages.m_spec(), training, &saved->mask_m);
  }

  // ---- 4) output transform Y = Qx(Aᵀ M A), scatter -----------------------
  Tensor out(Shape{geom.batch, geom.out_channels, oh, ow});
#pragma omp parallel for collapse(2) schedule(static)
  for (std::int64_t grp = 0; grp < groups; ++grp) {
    for (std::int64_t k = 0; k < kg; ++k) {
      float mtile[kSmallMatCap], tmp[kSmallMatCap], y[kSmallMatCap];
      for (std::int64_t n = 0; n < geom.batch; ++n) {
        for (std::int64_t ti = 0; ti < th; ++ti) {
          for (std::int64_t tj = 0; tj < tw; ++tj) {
            const std::int64_t tile = (n * th + ti) * tw + tj;
            for (std::int64_t ab = 0; ab < tt; ++ab) {
              mtile[ab] = mm.raw()[((grp * tt + ab) * kg + k) * np + tile];
            }
            smm_sandwich(at, mi_, ti_, mtile, tmp, y);  // [m, m]
            for (std::int64_t a = 0; a < m && ti * m + a < oh; ++a) {
              for (std::int64_t b = 0; b < m && tj * m + b < ow; ++b) {
                out(n, grp * kg + k, ti * m + a, tj * m + b) = y[a * m + b];
              }
            }
          }
        }
      }
    }
  }
  if (bias.defined()) {
    for (std::int64_t n = 0; n < geom.batch; ++n)
      for (std::int64_t k = 0; k < geom.out_channels; ++k) {
        const float bv = bias.value().at(k);
        for (std::int64_t i = 0; i < oh; ++i)
          for (std::int64_t j = 0; j < ow; ++j) out(n, k, i, j) += bv;
      }
  }
  fake_quant_stage(out, stages.y, stages.y_spec(), training, &saved->mask_y);

  saved->u_q = std::move(u);
  saved->v_q = std::move(v);
  saved->m_q = std::move(mm);
  saved->patches = std::move(patches);

  // ---- backward ------------------------------------------------------------
  auto xn = input.node();
  auto wn = weight.node();
  auto bn = bias.defined() ? bias.node() : nullptr;
  auto gn = g_mat.node();
  auto btn = bt_mat.node();
  auto atn = at_mat.node();

  std::vector<ag::Variable> parents{input, weight, g_mat, bt_mat, at_mat};
  if (bias.defined()) parents.push_back(bias);

  auto backward = [=](ag::Node& node) {
    const float* gm_v = gn->value.raw();
    const float* bt_v = btn->value.raw();
    const float* at_v = atn->value.raw();
    const Tensor& w_v = wn->value;

    // dY with the output-stage STE mask applied.
    Tensor dy_full = node.grad;
    apply_mask(dy_full, saved->mask_y);

    if (bn && bn->requires_grad) {
      Tensor db(Shape{geom.out_channels});
      for (std::int64_t n = 0; n < geom.batch; ++n)
        for (std::int64_t k = 0; k < geom.out_channels; ++k)
          for (std::int64_t i = 0; i < oh; ++i)
            for (std::int64_t j = 0; j < ow; ++j) db.at(k) += dy_full(n, k, i, j);
      bn->accum_grad(db);
    }

    const bool need_dx = xn->requires_grad;
    const bool need_dw = wn->requires_grad;
    const bool need_dg = gn->requires_grad;
    const bool need_dbt = btn->requires_grad;
    const bool need_dat = atn->requires_grad;
    if (!(need_dx || need_dw || need_dg || need_dbt || need_dat)) return;

    // ---- dM = Aᵀ dY A (per tile), plus dAᵀ accumulation -------------------
    Tensor dm(Shape{groups, tt, kg, np});
    Tensor dat_acc(Shape{m, t});
#pragma omp parallel for collapse(2) schedule(static)
    for (std::int64_t grp = 0; grp < groups; ++grp) {
      for (std::int64_t k = 0; k < kg; ++k) {
        float dytile[kSmallMatCap], mtile[kSmallMatCap];
        float tmp[kSmallMatCap], res[kSmallMatCap];
        float dat_local[kSmallMatCap] = {};
        for (std::int64_t n = 0; n < geom.batch; ++n) {
          for (std::int64_t ti = 0; ti < th; ++ti) {
            for (std::int64_t tj = 0; tj < tw; ++tj) {
              const std::int64_t tile = (n * th + ti) * tw + tj;
              for (std::int64_t a = 0; a < m; ++a) {
                for (std::int64_t b = 0; b < m; ++b) {
                  dytile[a * m + b] = (ti * m + a < oh && tj * m + b < ow)
                                          ? dy_full(n, grp * kg + k, ti * m + a, tj * m + b)
                                          : 0.F;
                }
              }
              // dM = Atᵀ dY At.
              smm_sandwich_t(at_v, mi_, ti_, dytile, tmp, res);  // [t, t]
              for (std::int64_t ab = 0; ab < tt; ++ab) {
                dm.raw()[((grp * tt + ab) * kg + k) * np + tile] = res[ab];
              }
              if (need_dat) {
                for (std::int64_t ab = 0; ab < tt; ++ab) {
                  mtile[ab] = saved->m_q.raw()[((grp * tt + ab) * kg + k) * np + tile];
                }
                // dAt += dY·At·Mᵀ + dYᵀ·At·M.
                smm_nn(dytile, mi_, mi_, at_v, ti_, tmp);      // [m, t]
                smm_nt(tmp, mi_, ti_, mtile, ti_, res);        // [m, t]
                smm_add(dat_local, res, mi_ * ti_);
                smm_tn(dytile, mi_, mi_, at_v, ti_, tmp);      // [m, t]
                smm_nn(tmp, mi_, ti_, mtile, ti_, res);        // [m, t]
                smm_add(dat_local, res, mi_ * ti_);
              }
            }
          }
        }
        if (need_dat) {
#pragma omp critical(wa_dat)
          smm_add(dat_acc.raw(), dat_local, mi_ * ti_);
        }
      }
    }
    apply_mask(dm, saved->mask_m);

    // ---- dU / dV through the GEMM stage ------------------------------------
    Tensor du(Shape{groups, tt, kg, cg});
    Tensor dv(Shape{groups, tt, cg, np});
    // dU[xy] = dM[xy] (Kg x NP) x V[xy]ᵀ (NP x Cg)
    gemm_batched_f32(false, true, groups * tt, kg, cg, np, dm.raw(), kg * np, saved->v_q.raw(),
                     cg * np, du.raw(), kg * cg);
    // dV[xy] = U[xy]ᵀ (Cg x Kg) x dM[xy] (Kg x NP)
    gemm_batched_f32(true, false, groups * tt, cg, np, kg, saved->u_q.raw(), kg * cg, dm.raw(),
                     kg * np, dv.raw(), cg * np);
    apply_mask(du, saved->mask_u);
    apply_mask(dv, saved->mask_v);

    // ---- dw and dG from U = G g Gᵀ ------------------------------------------
    if (need_dw || need_dg) {
      Tensor dw = Tensor::zeros(w_v.shape());
      Tensor dg_acc(Shape{t, r});
#pragma omp parallel for collapse(2) schedule(static)
      for (std::int64_t grp = 0; grp < groups; ++grp) {
        for (std::int64_t k = 0; k < kg; ++k) {
          float dut[kSmallMatCap], tmp[kSmallMatCap], res[kSmallMatCap];
          float dg_local[kSmallMatCap] = {};
          for (std::int64_t c = 0; c < cg; ++c) {
            for (std::int64_t ab = 0; ab < tt; ++ab) {
              dut[ab] = du.raw()[((grp * tt + ab) * kg + k) * cg + c];
            }
            if (need_dw) {
              // dg = Gᵀ dU G.
              smm_sandwich_t(gm_v, ti_, ri_, dut, tmp, res);  // [r, r]
              float* dst = dw.raw() + ((grp * kg + k) * cg + c) * r * r;
              smm_add(dst, res, ri_ * ri_);
            }
            if (need_dg) {
              const float* filt = w_v.raw() + ((grp * kg + k) * cg + c) * r * r;
              // dG += dU·G·gᵀ + dUᵀ·G·g.
              smm_nn(dut, ti_, ti_, gm_v, ri_, tmp);    // [t, r]
              smm_nt(tmp, ti_, ri_, filt, ri_, res);    // [t, r]
              smm_add(dg_local, res, ti_ * ri_);
              smm_tn(dut, ti_, ti_, gm_v, ri_, tmp);    // [t, r]
              smm_nn(tmp, ti_, ri_, filt, ri_, res);    // [t, r]
              smm_add(dg_local, res, ti_ * ri_);
            }
          }
          if (need_dg) {
#pragma omp critical(wa_dg)
            smm_add(dg_acc.raw(), dg_local, ti_ * ri_);
          }
        }
      }
      if (need_dw) wn->accum_grad(dw);
      if (need_dg) gn->accum_grad(dg_acc);
    }

    // ---- dx and dBᵀ from V = Bᵀ d B -----------------------------------------
    if (need_dx || need_dbt) {
      Tensor dx = Tensor::zeros(x.shape());
      Tensor dbt_acc(Shape{t, t});
#pragma omp parallel for collapse(2) schedule(static)
      for (std::int64_t grp = 0; grp < groups; ++grp) {
        for (std::int64_t c = 0; c < cg; ++c) {
          float dvt[kSmallMatCap], tmp[kSmallMatCap], res[kSmallMatCap];
          float dbt_local[kSmallMatCap] = {};
          for (std::int64_t n = 0; n < geom.batch; ++n) {
            for (std::int64_t ti = 0; ti < th; ++ti) {
              for (std::int64_t tj = 0; tj < tw; ++tj) {
                const std::int64_t tile = (n * th + ti) * tw + tj;
                for (std::int64_t ab = 0; ab < tt; ++ab) {
                  dvt[ab] = dv.raw()[((grp * tt + ab) * cg + c) * np + tile];
                }
                if (need_dx) {
                  // dd = Bt'ᵀ... : with V = Bᵀ d B, dd = B dV Bᵀ = (Bᵀ)ᵀ dV (Bᵀ).
                  smm_sandwich_t(bt_v, ti_, ti_, dvt, tmp, res);  // [t, t]
                  const std::int64_t i0 = ti * m - geom.pad, j0 = tj * m - geom.pad;
                  for (std::int64_t a = 0; a < t; ++a) {
                    const std::int64_t ii = i0 + a;
                    if (ii < 0 || ii >= geom.height) continue;
                    for (std::int64_t b = 0; b < t; ++b) {
                      const std::int64_t jj = j0 + b;
                      if (jj < 0 || jj >= geom.width) continue;
                      dx(n, grp * cg + c, ii, jj) += res[a * t + b];
                    }
                  }
                }
                if (need_dbt) {
                  const float* patch =
                      saved->patches.raw() + (((grp * cg + c) * np + tile) * t) * t;
                  // dBᵀ += dV·Bᵀ·dᵀ + dVᵀ·Bᵀ·d.
                  smm_nn(dvt, ti_, ti_, bt_v, ti_, tmp);
                  smm_nt(tmp, ti_, ti_, patch, ti_, res);
                  smm_add(dbt_local, res, ti_ * ti_);
                  smm_tn(dvt, ti_, ti_, bt_v, ti_, tmp);
                  smm_nn(tmp, ti_, ti_, patch, ti_, res);
                  smm_add(dbt_local, res, ti_ * ti_);
                }
              }
            }
          }
          if (need_dbt) {
#pragma omp critical(wa_dbt)
            smm_add(dbt_acc.raw(), dbt_local, ti_ * ti_);
          }
        }
      }
      if (need_dx) xn->accum_grad(dx);
      if (need_dbt) btn->accum_grad(dbt_acc);
    }

    if (need_dat) atn->accum_grad(dat_acc);
  };

  return ag::apply_op("winograd_aware_conv2d[F" + std::to_string(m) + "]", std::move(parents),
                      std::move(out), std::move(backward));
}

}  // namespace wa::core
