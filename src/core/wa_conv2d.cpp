#include "core/wa_conv2d.hpp"

#include <stdexcept>

#include "nn/layers.hpp"

namespace wa::core {

WinogradAwareConv2d::WinogradAwareConv2d(nn::Conv2dOptions opts, Rng& rng) : opts_(opts) {
  if (!nn::is_winograd(opts.algo)) {
    throw std::invalid_argument("WinogradAwareConv2d: options request a non-Winograd algorithm");
  }
  m_ = nn::winograd_m(opts.algo);
  const auto r = static_cast<int>(opts.kernel);
  const std::int64_t cpg = opts.in_channels / opts.groups;
  const std::int64_t fan_in = cpg * opts.kernel * opts.kernel;
  weight_ = register_parameter(
      "weight", nn::kaiming_normal({opts.out_channels, cpg, opts.kernel, opts.kernel}, fan_in, rng));
  if (opts.bias) bias_ = register_parameter("bias", Tensor::zeros({opts.out_channels}));

  // Cook-Toom initialisation; learnable iff -flex.
  const wino::Transforms tr = wino::make_transforms(m_, r);
  if (opts.flex_transforms) {
    g_mat_ = register_parameter("g_mat", tr.g_mat);
    bt_mat_ = register_parameter("bt_mat", tr.bt_mat);
    at_mat_ = register_parameter("at_mat", tr.at_mat);
  } else {
    g_mat_ = register_buffer("g_mat", tr.g_mat);
    bt_mat_ = register_buffer("bt_mat", tr.bt_mat);
    at_mat_ = register_buffer("at_mat", tr.at_mat);
  }
  stages_.spec = opts.qspec;
  stages_.spec_u = opts.qspec_u;
  stages_.spec_v = opts.qspec_v;
  stages_.spec_m = opts.qspec_m;
  stages_.spec_y = opts.qspec_y;
  if (opts.tap_group_size < 0) {
    throw std::invalid_argument("WinogradAwareConv2d: tap_group_size must be >= 0");
  }
  if (opts.tap_group_size > 0 && opts.qspec.is_affine()) {
    // The per-tap grid is symmetric-only — it must match the symmetric int8
    // executor's deployed quantization exactly.
    throw std::invalid_argument(
        "WinogradAwareConv2d: per-tap scales require a symmetric scheme");
  }
  stages_.tap_group_size = opts.tap_group_size;
}

ag::Variable WinogradAwareConv2d::forward(const ag::Variable& input) {
  backend::ConvGeometry g;
  g.batch = input.shape()[0];
  g.in_channels = opts_.in_channels;
  g.height = input.shape()[2];
  g.width = input.shape()[3];
  g.out_channels = opts_.out_channels;
  g.kernel = opts_.kernel;
  g.pad = opts_.pad;
  g.groups = opts_.groups;

  ag::Variable x = quant::fake_quant_ste(input, in_obs_, opts_.qspec, training());
  ag::Variable w = opts_.per_channel_weights
                       ? quant::fake_quant_weights_ste(weight_, opts_.qspec, true)
                       : quant::fake_quant_ste(weight_, w_obs_, opts_.qspec, training());
  return winograd_aware_conv2d(x, w, bias_, g_mat_, bt_mat_, at_mat_, g, m_, stages_, training(),
                               u_mask_.empty() ? nullptr : &u_mask_);
}

void WinogradAwareConv2d::set_winograd_mask(Tensor mask) {
  const std::int64_t t = m_ + static_cast<std::int64_t>(opts_.kernel) - 1;
  const Shape expect{opts_.groups, t * t, opts_.out_channels / opts_.groups,
                     opts_.in_channels / opts_.groups};
  if (mask.shape() != expect) {
    throw std::invalid_argument("set_winograd_mask: expected shape " + to_string(expect) +
                                ", got " + to_string(mask.shape()));
  }
  for (const float v : mask.data()) {
    if (v != 0.F && v != 1.F) {
      throw std::invalid_argument("set_winograd_mask: mask entries must be 0 or 1");
    }
  }
  u_mask_ = std::move(mask);
}

double WinogradAwareConv2d::winograd_density() const {
  if (u_mask_.empty()) return 1.0;
  return static_cast<double>(u_mask_.sum()) / static_cast<double>(u_mask_.numel());
}

std::shared_ptr<nn::Module> make_conv(const nn::Conv2dOptions& opts, Rng& rng) {
  if (nn::is_winograd(opts.algo)) {
    return std::make_shared<WinogradAwareConv2d>(opts, rng);
  }
  return std::make_shared<nn::Conv2d>(opts, rng);
}

}  // namespace wa::core
