// The Winograd-aware convolution layer (the paper's primary contribution).
#pragma once

#include <memory>

#include "core/wa_conv_op.hpp"
#include "nn/conv_config.hpp"
#include "nn/module.hpp"
#include "quant/fake_quant_op.hpp"
#include "tensor/rng.hpp"
#include "winograd/cook_toom.hpp"

namespace wa::core {

/// Convolution layer whose forward pass runs the explicit Winograd pipeline
/// with per-stage fake quantization (Fig. 2 of the paper).
///
/// The transform matrices are initialised via Cook-Toom. With
/// `opts.flex_transforms` they are registered as trainable parameters and
/// receive gradients every batch (the "-flex" configurations); otherwise
/// they are fixed buffers (the "static" configurations). Model size grows
/// by only t² + t·r + m·t scalars per layer when learning them — the
/// "< 0.1 %" the paper quotes.
class WinogradAwareConv2d : public nn::Module {
 public:
  WinogradAwareConv2d(nn::Conv2dOptions opts, Rng& rng);

  ag::Variable forward(const ag::Variable& input) override;

  const nn::Conv2dOptions& options() const { return opts_; }
  int output_tile() const { return m_; }
  int input_tile() const { return m_ + static_cast<int>(opts_.kernel) - 1; }

  ag::Variable weight() { return weight_; }
  ag::Variable bias() { return bias_; }  // undefined when opts.bias == false
  ag::Variable g_mat() { return g_mat_; }
  ag::Variable bt_mat() { return bt_mat_; }
  ag::Variable at_mat() { return at_mat_; }
  WaQuantStages& stages() { return stages_; }
  quant::RangeObserver& input_observer() { return in_obs_; }

  /// True when the transforms have drifted from their Cook-Toom init
  /// (used by the latency model to charge the dense-transform overhead).
  bool transforms_are_learned() const { return opts_.flex_transforms; }

  /// Winograd-domain pruning mask (Liu et al. 2018; see src/sparse). The
  /// mask has the shape of the transformed weights U =
  /// [groups, t², K/groups, C/groups], entries in {0, 1}; masked Hadamard
  /// products are skipped in forward and backward, so fine-tuning keeps the
  /// sparsity pattern. An empty mask disables pruning. The mask is a
  /// post-training artifact and is not serialized with the state dict.
  void set_winograd_mask(Tensor mask);
  void clear_winograd_mask() { u_mask_ = Tensor(); }
  const Tensor& winograd_mask() const { return u_mask_; }
  /// Fraction of surviving Hadamard products (1.0 when no mask is set).
  double winograd_density() const;

 private:
  nn::Conv2dOptions opts_;
  int m_ = 2;
  ag::Variable weight_;
  ag::Variable bias_;  // undefined when opts_.bias == false
  ag::Variable g_mat_, bt_mat_, at_mat_;
  quant::RangeObserver in_obs_{quant::RangeObserver::Mode::kEma};
  quant::RangeObserver w_obs_{quant::RangeObserver::Mode::kMinMax};
  WaQuantStages stages_;
  Tensor u_mask_;  // empty = dense
};

/// Build the layer a Conv2dOptions describes: nn::Conv2d for the GEMM
/// algorithms, WinogradAwareConv2d for F2/F4/F6. This is the factory the
/// models and the wiNAS search space use.
std::shared_ptr<nn::Module> make_conv(const nn::Conv2dOptions& opts, Rng& rng);

}  // namespace wa::core
