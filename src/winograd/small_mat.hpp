// Allocation-free small-matrix kernels for Winograd transforms.
//
// Transform matrices are at most t x t with t <= 12 (F(6x6, 5x5) uses 10x10
// tiles), so every per-tile product fits in a small stack buffer. These
// replace generic Tensor matmuls in the op's inner loops, where allocation
// and dispatch overhead dominated.
#pragma once

#include <cstring>

namespace wa::wino {

/// Maximum supported Winograd tile side (m + r - 1).
inline constexpr int kMaxTile = 12;
/// Capacity of one scratch buffer.
inline constexpr int kSmallMatCap = kMaxTile * kMaxTile;

/// c[ar x bc] = a[ar x ac] * b[ac x bc] (all row-major, c must not alias).
inline void smm_nn(const float* a, int ar, int ac, const float* b, int bc, float* c) {
  for (int i = 0; i < ar; ++i) {
    float* crow = c + i * bc;
    std::memset(crow, 0, sizeof(float) * static_cast<std::size_t>(bc));
    for (int k = 0; k < ac; ++k) {
      const float av = a[i * ac + k];
      if (av == 0.F) continue;
      const float* brow = b + k * bc;
      for (int j = 0; j < bc; ++j) crow[j] += av * brow[j];
    }
  }
}

/// c[ar x br] = a[ar x ac] * b[br x ac]^T.
inline void smm_nt(const float* a, int ar, int ac, const float* b, int br, float* c) {
  for (int i = 0; i < ar; ++i) {
    for (int j = 0; j < br; ++j) {
      float acc = 0.F;
      const float* arow = a + i * ac;
      const float* brow = b + j * ac;
      for (int k = 0; k < ac; ++k) acc += arow[k] * brow[k];
      c[i * br + j] = acc;
    }
  }
}

/// c[ac x bc] = a[ar x ac]^T * b[ar x bc].
inline void smm_tn(const float* a, int ar, int ac, const float* b, int bc, float* c) {
  for (int i = 0; i < ac; ++i) {
    float* crow = c + i * bc;
    std::memset(crow, 0, sizeof(float) * static_cast<std::size_t>(bc));
    for (int k = 0; k < ar; ++k) {
      const float av = a[k * ac + i];
      if (av == 0.F) continue;
      const float* brow = b + k * bc;
      for (int j = 0; j < bc; ++j) crow[j] += av * brow[j];
    }
  }
}

/// out[mr x mr] = m[mr x mc] * x[mc x mc] * m^T, using `tmp` [mr x mc].
inline void smm_sandwich(const float* m, int mr, int mc, const float* x, float* tmp, float* out) {
  smm_nn(m, mr, mc, x, mc, tmp);      // tmp = m * x          [mr x mc]
  smm_nt(tmp, mr, mc, m, mr, out);    // out = tmp * m^T      [mr x mr]
}

/// out[mc x mc] = m[mr x mc]^T * x[mr x mr] * m, using `tmp` [mc x mr].
inline void smm_sandwich_t(const float* m, int mr, int mc, const float* x, float* tmp,
                           float* out) {
  smm_tn(m, mr, mc, x, mr, tmp);      // tmp = m^T * x        [mc x mr]
  smm_nn(tmp, mc, mr, m, mc, out);    // out = tmp * m        [mc x mc]
}

/// acc[n] += v[n].
inline void smm_add(float* acc, const float* v, int n) {
  for (int i = 0; i < n; ++i) acc[i] += v[i];
}

}  // namespace wa::wino
