#include "winograd/error_analysis.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wa::wino {

namespace {

double frob_sq(const Tensor& m) {
  double acc = 0;
  for (const float v : m.data()) acc += static_cast<double>(v) * v;
  return acc;
}

// y = M x Mᵀ for square-ish operands (same helper as the reference path).
Tensor sandwich(const Tensor& m, const Tensor& x) { return matmul_nt(matmul(m, x), m); }

}  // namespace

double amplification_factor(const Transforms& tr) {
  // Each stage of the 2-D pipeline applies its matrix on both sides, so the
  // worst-case amplification of that stage is bounded by ‖M‖², and the
  // pipeline's by the product over the three stages.
  return frob_sq(tr.g_mat) * frob_sq(tr.bt_mat) * frob_sq(tr.at_mat);
}

double range_expansion(const Transforms& tr, int trials, Rng& rng) {
  if (trials <= 0) throw std::invalid_argument("range_expansion: trials must be positive");
  double acc = 0;
  for (int t = 0; t < trials; ++t) {
    const Tensor tile = Tensor::randn(Shape{tr.tile, tr.tile}, rng);
    const Tensor filter = Tensor::randn(Shape{tr.r, tr.r}, rng);
    const double in_range = std::max<double>(tile.abs_max(), 1e-12);
    const Tensor u = sandwich(tr.g_mat, filter);
    const Tensor v = sandwich(tr.bt_mat, tile);
    const Tensor h = u * v;
    const Tensor y = sandwich(tr.at_mat, h);
    const double worst = std::max({static_cast<double>(u.abs_max()),
                                   static_cast<double>(v.abs_max()),
                                   static_cast<double>(h.abs_max()),
                                   static_cast<double>(y.abs_max())});
    acc += worst / in_range;
  }
  return acc / trials;
}

std::vector<ErrorGrowthRow> error_growth_table(int r, const std::vector<int>& ms, int trials,
                                               Rng& rng) {
  std::vector<ErrorGrowthRow> rows;
  rows.reserve(ms.size());
  for (const int m : ms) {
    const Transforms tr = make_transforms(m, r);
    ErrorGrowthRow row;
    row.m = m;
    row.r = r;
    row.tile = tr.tile;
    row.amplification = amplification_factor(tr);
    row.range_expand = range_expansion(tr, trials, rng);
    row.fp32 = winograd_error(tr, quant::QuantSpec{32}, trials, rng);
    row.int16 = winograd_error(tr, quant::QuantSpec{16}, trials, rng);
    row.int10 = winograd_error(tr, quant::QuantSpec{10}, trials, rng);
    row.int8 = winograd_error(tr, quant::QuantSpec{8}, trials, rng);
    rows.push_back(row);
  }
  return rows;
}

std::vector<double> canonical_point_pool() {
  return {0, 1, -1, 2, -2, 0.5, -0.5, 4, -4, 0.25, -0.25, 3, -3};
}

std::vector<PointSearchEntry> exhaustive_point_search(int m, int r,
                                                      const std::vector<double>& pool,
                                                      const quant::QuantSpec& spec, int trials,
                                                      Rng& rng, std::size_t top_k) {
  const int finite = m + r - 2;  // n - 1 finite points, ∞ implicit
  if (finite <= 0 || finite > static_cast<int>(pool.size())) {
    throw std::invalid_argument("exhaustive_point_search: pool too small for F(" +
                                std::to_string(m) + "," + std::to_string(r) + ")");
  }

  // Enumerate C(|pool|, finite) subsets with the classic index-vector walk.
  std::vector<std::size_t> idx(static_cast<std::size_t>(finite));
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::vector<std::vector<double>> candidates;
  for (;;) {
    std::vector<double> cand(idx.size());
    for (std::size_t i = 0; i < idx.size(); ++i) cand[i] = pool[idx[i]];
    candidates.push_back(std::move(cand));
    // Advance.
    std::size_t i = idx.size();
    while (i > 0) {
      --i;
      if (idx[i] != i + pool.size() - idx.size()) break;
      if (i == 0) {
        i = idx.size();  // done
        break;
      }
    }
    if (i == idx.size()) break;
    ++idx[i];
    for (std::size_t j = i + 1; j < idx.size(); ++j) idx[j] = idx[j - 1] + 1;
  }

  auto ranked = search_points(m, r, candidates, spec, trials, rng);
  if (ranked.size() > top_k) ranked.resize(top_k);
  return ranked;
}

}  // namespace wa::wino
