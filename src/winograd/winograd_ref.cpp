#include "winograd/winograd_ref.hpp"

#include <cmath>
#include <stdexcept>

namespace wa::wino {

std::vector<double> correlate_1d_d(const std::vector<double>& d, const std::vector<double>& g) {
  if (d.size() < g.size()) throw std::invalid_argument("correlate_1d_d: signal shorter than filter");
  std::vector<double> out(d.size() - g.size() + 1, 0.0);
  for (std::size_t j = 0; j < out.size(); ++j) {
    for (std::size_t i = 0; i < g.size(); ++i) out[j] += d[j + i] * g[i];
  }
  return out;
}

namespace {
std::vector<double> matvec(const MatD& m, const std::vector<double>& v) {
  std::vector<double> out(m.size(), 0.0);
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (m[i].size() != v.size()) throw std::invalid_argument("matvec: dimension mismatch");
    for (std::size_t j = 0; j < v.size(); ++j) out[i] += m[i][j] * v[j];
  }
  return out;
}
}  // namespace

std::vector<double> winograd_1d_d(const TransformsD& td, const std::vector<double>& d,
                                  const std::vector<double>& g) {
  const auto n = static_cast<std::size_t>(td.m + td.r - 1);
  if (d.size() != n || g.size() != static_cast<std::size_t>(td.r)) {
    throw std::invalid_argument("winograd_1d_d: tile/filter size mismatch");
  }
  const auto u = matvec(td.g_mat, g);   // n
  const auto v = matvec(td.bt_mat, d);  // n
  std::vector<double> h(n);
  for (std::size_t i = 0; i < n; ++i) h[i] = u[i] * v[i];
  return matvec(td.at_mat, h);  // m
}

Tensor correlate_2d(const Tensor& input, const Tensor& filter) {
  if (input.dim() != 2 || filter.dim() != 2) {
    throw std::invalid_argument("correlate_2d: expects 2-D tensors");
  }
  const std::int64_t h = input.size(0), w = input.size(1);
  const std::int64_t r = filter.size(0), s = filter.size(1);
  if (h < r || w < s) throw std::invalid_argument("correlate_2d: input smaller than filter");
  Tensor out(Shape{h - r + 1, w - s + 1});
  for (std::int64_t i = 0; i < out.size(0); ++i) {
    for (std::int64_t j = 0; j < out.size(1); ++j) {
      double acc = 0;
      for (std::int64_t fi = 0; fi < r; ++fi) {
        for (std::int64_t fj = 0; fj < s; ++fj) {
          acc += static_cast<double>(input(i + fi, j + fj)) * filter(fi, fj);
        }
      }
      out(i, j) = static_cast<float>(acc);
    }
  }
  return out;
}

namespace {
// y = M x Mᵀ applied to square tile x (all 2-D float tensors).
Tensor sandwich(const Tensor& m, const Tensor& x) {
  return matmul_nt(matmul(m, x), m);
}
}  // namespace

Tensor winograd_conv_2d(const Transforms& tr, const Tensor& input, const Tensor& filter) {
  if (filter.size(0) != tr.r || filter.size(1) != tr.r) {
    throw std::invalid_argument("winograd_conv_2d: filter does not match transforms");
  }
  const std::int64_t h = input.size(0), w = input.size(1);
  const std::int64_t out_h = h - tr.r + 1, out_w = w - tr.r + 1;
  if (out_h <= 0 || out_w <= 0) throw std::invalid_argument("winograd_conv_2d: input too small");

  const Tensor u = sandwich(tr.g_mat, filter);  // [t, t]
  Tensor out(Shape{out_h, out_w});

  const std::int64_t tiles_h = (out_h + tr.m - 1) / tr.m;
  const std::int64_t tiles_w = (out_w + tr.m - 1) / tr.m;
  Tensor patch(Shape{tr.tile, tr.tile});
  for (std::int64_t th = 0; th < tiles_h; ++th) {
    for (std::int64_t tw = 0; tw < tiles_w; ++tw) {
      const std::int64_t i0 = th * tr.m, j0 = tw * tr.m;
      patch.fill(0.F);
      for (std::int64_t i = 0; i < tr.tile; ++i) {
        for (std::int64_t j = 0; j < tr.tile; ++j) {
          if (i0 + i < h && j0 + j < w) patch(i, j) = input(i0 + i, j0 + j);
        }
      }
      const Tensor v = sandwich(tr.bt_mat, patch);
      const Tensor y = sandwich(tr.at_mat, u * v);
      for (std::int64_t i = 0; i < tr.m && i0 + i < out_h; ++i) {
        for (std::int64_t j = 0; j < tr.m && j0 + j < out_w; ++j) {
          out(i0 + i, j0 + j) = y(i, j);
        }
      }
    }
  }
  return out;
}

Tensor winograd_tile_quantized(const Transforms& tr, const Tensor& tile, const Tensor& filter,
                               const quant::QuantSpec& spec) {
  if (tile.size(0) != tr.tile || tile.size(1) != tr.tile) {
    throw std::invalid_argument("winograd_tile_quantized: tile size mismatch");
  }
  auto q = [&spec](Tensor t) {
    const float s = quant::scale_for(t.abs_max(), spec);
    quant::fake_quant_(t, s, spec);
    return t;
  };
  const Tensor d_q = q(tile);
  const Tensor g_q = q(filter);
  const Tensor u = q(sandwich(tr.g_mat, g_q));
  const Tensor v = q(sandwich(tr.bt_mat, d_q));
  const Tensor h = q(u * v);
  return q(sandwich(tr.at_mat, h));
}

ErrorStats winograd_error(const Transforms& tr, const quant::QuantSpec& spec, int trials,
                          Rng& rng) {
  ErrorStats st;
  double sq_err = 0, sq_ref = 0;
  std::int64_t count = 0;
  for (int t = 0; t < trials; ++t) {
    const Tensor tile = Tensor::randn(Shape{tr.tile, tr.tile}, rng);
    const Tensor filter = Tensor::randn(Shape{tr.r, tr.r}, rng);
    // Direct result on the quantized representation of inputs, so the
    // comparison isolates the error of the *algorithm*, not of input quant.
    Tensor tile_q = tile, filt_q = filter;
    if (!spec.is_float()) {
      quant::fake_quant_(tile_q, quant::scale_for(tile_q.abs_max(), spec), spec);
      quant::fake_quant_(filt_q, quant::scale_for(filt_q.abs_max(), spec), spec);
    }
    const Tensor ref = correlate_2d(tile_q, filt_q);
    const Tensor wino = spec.is_float() ? winograd_conv_2d(tr, tile_q, filt_q)
                                        : winograd_tile_quantized(tr, tile_q, filt_q, spec)
                                              .slice0(0, ref.size(0))
                                              .reshape(ref.shape());
    for (std::int64_t i = 0; i < ref.numel(); ++i) {
      const double e = static_cast<double>(wino.at(i)) - ref.at(i);
      st.max_abs = std::max(st.max_abs, std::fabs(e));
      sq_err += e * e;
      sq_ref += static_cast<double>(ref.at(i)) * ref.at(i);
      ++count;
    }
  }
  if (count > 0) {
    st.rmse = std::sqrt(sq_err / static_cast<double>(count));
    const double ref_rms = std::sqrt(sq_ref / static_cast<double>(count));
    st.rel_rmse = ref_rms > 0 ? st.rmse / ref_rms : 0;
  }
  return st;
}

}  // namespace wa::wino
