#include "winograd/strided.hpp"

#include <cmath>
#include <stdexcept>

#include "winograd/winograd_ref.hpp"

namespace wa::wino {

PolyphaseFilters polyphase_split(const Tensor& filter) {
  if (filter.dim() != 2) throw std::invalid_argument("polyphase_split: expects a 2-D filter");
  const std::int64_t r = filter.size(0), c = filter.size(1);
  PolyphaseFilters out;
  for (int s = 0; s < 2; ++s) {
    for (int t = 0; t < 2; ++t) {
      const std::int64_t rows = (r - s + 1) / 2;
      const std::int64_t cols = (c - t + 1) / 2;
      Tensor g(Shape{rows, cols});
      for (std::int64_t a = 0; a < rows; ++a) {
        for (std::int64_t b = 0; b < cols; ++b) {
          g(a, b) = filter(2 * a + s, 2 * b + t);
        }
      }
      out.g[static_cast<std::size_t>(s)][static_cast<std::size_t>(t)] = std::move(g);
    }
  }
  return out;
}

Tensor subsample2(const Tensor& x, int row_phase, int col_phase) {
  if (x.dim() != 2) throw std::invalid_argument("subsample2: expects a 2-D tensor");
  if ((row_phase != 0 && row_phase != 1) || (col_phase != 0 && col_phase != 1)) {
    throw std::invalid_argument("subsample2: phases must be 0 or 1");
  }
  const std::int64_t rows = (x.size(0) - row_phase + 1) / 2;
  const std::int64_t cols = (x.size(1) - col_phase + 1) / 2;
  Tensor out(Shape{rows, cols});
  for (std::int64_t u = 0; u < rows; ++u) {
    for (std::int64_t v = 0; v < cols; ++v) {
      out(u, v) = x(2 * u + row_phase, 2 * v + col_phase);
    }
  }
  return out;
}

Tensor conv2d_stride2_direct(const Tensor& input, const Tensor& filter) {
  if (input.dim() != 2 || filter.dim() != 2) {
    throw std::invalid_argument("conv2d_stride2_direct: expects 2-D tensors");
  }
  const std::int64_t h = input.size(0), w = input.size(1);
  const std::int64_t r = filter.size(0), c = filter.size(1);
  if (h < r || w < c) throw std::invalid_argument("conv2d_stride2_direct: input too small");
  const std::int64_t oh = (h - r) / 2 + 1;
  const std::int64_t ow = (w - c) / 2 + 1;
  Tensor out(Shape{oh, ow});
  for (std::int64_t i = 0; i < oh; ++i) {
    for (std::int64_t j = 0; j < ow; ++j) {
      double acc = 0;
      for (std::int64_t a = 0; a < r; ++a) {
        for (std::int64_t b = 0; b < c; ++b) {
          acc += static_cast<double>(input(2 * i + a, 2 * j + b)) * filter(a, b);
        }
      }
      out(i, j) = static_cast<float>(acc);
    }
  }
  return out;
}

namespace {

/// Valid correlation handling rectangular filters (correlate_2d is the
/// square-path reference; this generalizes the same loop).
Tensor correlate_rect(const Tensor& x, const Tensor& g) {
  const std::int64_t oh = x.size(0) - g.size(0) + 1;
  const std::int64_t ow = x.size(1) - g.size(1) + 1;
  Tensor out(Shape{oh, ow});
  for (std::int64_t i = 0; i < oh; ++i) {
    for (std::int64_t j = 0; j < ow; ++j) {
      double acc = 0;
      for (std::int64_t a = 0; a < g.size(0); ++a) {
        for (std::int64_t b = 0; b < g.size(1); ++b) {
          acc += static_cast<double>(x(i + a, j + b)) * g(a, b);
        }
      }
      out(i, j) = static_cast<float>(acc);
    }
  }
  return out;
}

}  // namespace

Tensor conv2d_stride2_polyphase(const Tensor& input, const Tensor& filter,
                                bool winograd_square_path, int m_out) {
  if (input.dim() != 2 || filter.dim() != 2) {
    throw std::invalid_argument("conv2d_stride2_polyphase: expects 2-D tensors");
  }
  const std::int64_t h = input.size(0), w = input.size(1);
  const std::int64_t r = filter.size(0), c = filter.size(1);
  if (h < r || w < c) throw std::invalid_argument("conv2d_stride2_polyphase: input too small");
  const std::int64_t oh = (h - r) / 2 + 1;
  const std::int64_t ow = (w - c) / 2 + 1;

  const PolyphaseFilters phases = polyphase_split(filter);
  Tensor out = Tensor::zeros({oh, ow});
  for (int s = 0; s < 2; ++s) {
    for (int t = 0; t < 2; ++t) {
      const Tensor& g = phases.g[static_cast<std::size_t>(s)][static_cast<std::size_t>(t)];
      if (g.empty()) continue;  // r=1 edge: odd phases carry no taps
      const Tensor x_st = subsample2(input, s, t);
      Tensor partial;
      const bool square = g.size(0) == g.size(1) && g.size(0) > 1;
      if (winograd_square_path && square && s == 0 && t == 0) {
        const Transforms tr = make_transforms(m_out, static_cast<int>(g.size(0)));
        partial = winograd_conv_2d(tr, x_st, g);
      } else {
        partial = correlate_rect(x_st, g);
      }
      // Each phase produces at least oh x ow outputs; accumulate the shared
      // top-left region (the extra rows/cols belong to outputs the strided
      // correlation never emits).
      for (std::int64_t i = 0; i < oh; ++i) {
        for (std::int64_t j = 0; j < ow; ++j) {
          out(i, j) += partial(i, j);
        }
      }
    }
  }
  return out;
}

Stride2Cost stride2_cost(std::int64_t h, std::int64_t w, std::int64_t r, int m_out) {
  if (r < 2 || h < r || w < r) throw std::invalid_argument("stride2_cost: bad geometry");
  Stride2Cost cost;
  const std::int64_t oh = (h - r) / 2 + 1;
  const std::int64_t ow = (w - r) / 2 + 1;
  cost.direct_macs = oh * ow * r * r;
  // The four phase filters cover all r² taps once; each contributes one MAC
  // per output, so the polyphase rewrite moves no extra multiplications.
  cost.polyphase_direct_macs = cost.direct_macs;
  // Square component through F(m, k): (m + k - 1)² multiplications per m²
  // outputs instead of k² · m².
  const std::int64_t k = (r + 1) / 2;
  const double tiles = std::ceil(static_cast<double>(oh) / m_out) *
                       std::ceil(static_cast<double>(ow) / m_out);
  const double square_direct = static_cast<double>(oh * ow) * static_cast<double>(k * k);
  const double square_wino =
      tiles * static_cast<double>((m_out + k - 1) * (m_out + k - 1));
  cost.polyphase_winograd_macs =
      static_cast<double>(cost.polyphase_direct_macs) - square_direct + square_wino;
  return cost;
}

}  // namespace wa::wino
