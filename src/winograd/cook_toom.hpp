// Cook-Toom construction of Winograd convolution transforms.
//
// For F(m, r) — m outputs from an r-tap filter — the minimal algorithm needs
// n = m + r - 1 evaluation points; we use n-1 finite polynomial points plus
// the point at infinity, the standard choice in the literature (Lavin & Gray
// 2016; Barabasz et al. 2018). The construction below is validated by
// property tests asserting  Aᵀ[(G g) ⊙ (Bᵀ d)] == correlate(d, g)  in FP64
// for every supported configuration, and its 2-D lift against direct 2-D
// correlation.
//
//   G [n×r]:  row i = [1, aᵢ, aᵢ², …] / Nᵢ,  Nᵢ = Π_{k≠i}(aᵢ − a_k);  ∞-row = e_{r−1}
//   Bᵀ[n×n]:  row i = coefficients of Mᵢ(x) = Π_{k≠i}(x − a_k);       ∞-row = coeffs of M(x)
//   Aᵀ[m×n]:  column j = [1, a_j, a_j², …];                            ∞-col = e_{m−1}
#pragma once

#include <vector>

#include "tensor/tensor.hpp"

namespace wa::wino {

/// Dense double-precision matrix used during synthesis (row major).
using MatD = std::vector<std::vector<double>>;

/// 1-D transform triple in double precision.
struct TransformsD {
  MatD g_mat;   // n x r
  MatD bt_mat;  // n x n
  MatD at_mat;  // m x n
  int m = 0;    // outputs per tile (per dimension)
  int r = 0;    // filter taps (per dimension)
  std::vector<double> points;  // the n-1 finite points used
};

/// Transform triple as FP32 tensors, ready for layer use.
/// For 2-D F(m×m, r×r) the same matrices apply on both sides:
/// U = G g Gᵀ, V = Bᵀ d B, Y = Aᵀ M A.
struct Transforms {
  Tensor g_mat;   // [t, r]
  Tensor bt_mat;  // [t, t]
  Tensor at_mat;  // [m, t]
  int m = 0;
  int r = 0;
  int tile = 0;  // t = m + r - 1
};

/// The conventional "good" finite points for n = m + r - 1 total points:
/// 0, ±1, ±2, ±1/2, ±4, ±1/4, ... (n-1 of them; ∞ is implicit).
std::vector<double> default_points(int n);

/// Synthesize 1-D transforms for F(m, r) from n-1 finite points.
/// Throws std::invalid_argument on duplicate points or wrong count.
TransformsD cook_toom_1d(int m, int r, const std::vector<double>& finite_points);

/// FP32 transforms for 2-D F(m×m, r×r) with the default points.
Transforms make_transforms(int m, int r);
/// FP32 transforms with explicit finite points (n-1 of them).
Transforms make_transforms(int m, int r, const std::vector<double>& finite_points);

/// Convert a synthesized double triple to FP32 tensors.
Transforms to_float(const TransformsD& td);

/// Multiply polynomials given as coefficient vectors (lowest degree first).
std::vector<double> poly_mul(const std::vector<double>& a, const std::vector<double>& b);

/// Sparsity statistics of a transform matrix, used by the latency model:
/// zero entries cost nothing, ±1 entries are adds, ±2^k are shifts-adds,
/// anything else is a real multiply. Learnt ("flex") transforms are dense,
/// which is exactly the A.2 latency overhead the paper reports.
struct MatrixCost {
  std::int64_t zeros = 0;
  std::int64_t plus_minus_one = 0;
  std::int64_t general = 0;  // entries needing a genuine multiplication
  std::int64_t total = 0;
  /// Fraction of entries that cost a multiply.
  double multiply_fraction() const {
    return total > 0 ? static_cast<double>(general) / static_cast<double>(total) : 0.0;
  }
};
MatrixCost matrix_cost(const Tensor& mat, float tol = 1e-6F);

}  // namespace wa::wino
