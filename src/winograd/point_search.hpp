// Polynomial-point search: the paper's discussion section notes that good
// starting points matter even when the transforms are learnt. This utility
// scores candidate point sets by the numerical error of the resulting
// pipeline at a given bit-width and returns them ranked.
#pragma once

#include <string>
#include <vector>

#include "winograd/winograd_ref.hpp"

namespace wa::wino {

struct PointSearchEntry {
  std::vector<double> points;
  ErrorStats fp32;
  ErrorStats quantized;
  /// Score used for ranking (relative RMSE at the target bit-width).
  double score = 0;
};

/// Generate a family of plausible candidate sets for n total points:
/// the default set plus variants swapping outer points for reciprocals /
/// larger magnitudes. Deterministic.
std::vector<std::vector<double>> candidate_point_sets(int n);

/// Rank candidate sets (best first) for F(m, r) under `spec`.
std::vector<PointSearchEntry> search_points(int m, int r,
                                            const std::vector<std::vector<double>>& candidates,
                                            const quant::QuantSpec& spec, int trials, Rng& rng);

/// Human-readable "0, ±1, ±2, ..." rendering of a point set.
std::string points_to_string(const std::vector<double>& pts);

}  // namespace wa::wino
