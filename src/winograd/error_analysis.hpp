// Numerical-error analysis of Winograd convolution.
//
// The paper's motivation (§1, §3.1, Table 1) rests on the claim — shown
// formally by Barabasz et al. (2018) — that the floating-point error of a
// Winograd convolution grows at least exponentially with tile size, and
// that quantization compounds it until large-tile configurations are
// unusable. This module quantifies both effects:
//
//  * an analytic amplification factor from the transform matrices
//    themselves (norm product of the three bilinear stages), which tracks
//    the exponential growth without any sampling; and
//  * Monte-Carlo error tables over tile size x bit-width, the data behind
//    bench/ablation_error_growth;
//  * point-set search extensions: exhaustive subset enumeration over a pool
//    of canonical points, scored at a target bit-width ("polynomial points
//    specifically tailored for quantized Winograd", paper §7).
#pragma once

#include <vector>

#include "winograd/point_search.hpp"
#include "winograd/winograd_ref.hpp"

namespace wa::wino {

/// Analytic error-amplification proxy of a 2-D Winograd configuration:
/// the product of squared Frobenius norms ‖G‖²·‖Bᵀ‖²·‖Aᵀ‖² (each transform
/// is applied on both sides of its operand in the 2-D lift). Input-
/// independent; grows exponentially in t for the Cook-Toom construction,
/// mirroring the Barabasz et al. bound.
double amplification_factor(const Transforms& tr);

/// Dynamic-range expansion of the pipeline's intermediates relative to the
/// input: max over stages of E[abs-max(stage)] / E[abs-max(input)], sampled
/// on N(0,1) tiles. This is what squeezes the integer grid in quantized
/// pipelines — a range expansion of R costs log2(R) effective bits.
double range_expansion(const Transforms& tr, int trials, Rng& rng);

/// One row of the error-growth table (bench/ablation_error_growth).
struct ErrorGrowthRow {
  int m = 0;
  int r = 0;
  int tile = 0;
  double amplification = 0;   // analytic, input-independent
  double range_expand = 0;    // sampled dynamic-range expansion
  ErrorStats fp32;
  ErrorStats int16;
  ErrorStats int10;
  ErrorStats int8;
};

/// Error table across output tile sizes `ms` for filter size `r`, using the
/// default Cook-Toom points. Monte-Carlo with `trials` random tiles each.
std::vector<ErrorGrowthRow> error_growth_table(int r, const std::vector<int>& ms, int trials,
                                               Rng& rng);

/// Canonical pool of "good" finite points in the literature: 0, ±1 and
/// reciprocal pairs ±2^k, ±3 ... ordered by magnitude. Size >= 12.
std::vector<double> canonical_point_pool();

/// Exhaustively enumerate size-(n-1) subsets of `pool` (n = m+r-1 total
/// points with ∞ implicit), synthesize transforms for each, score at `spec`
/// (relative RMSE via winograd_error) and return the top `top_k` entries,
/// best first. Complexity C(|pool|, n-1) — fine for the pool above.
std::vector<PointSearchEntry> exhaustive_point_search(int m, int r,
                                                      const std::vector<double>& pool,
                                                      const quant::QuantSpec& spec, int trials,
                                                      Rng& rng, std::size_t top_k = 8);

}  // namespace wa::wino
