#include "winograd/point_search.hpp"

#include <algorithm>
#include <set>
#include <sstream>

namespace wa::wino {

std::vector<std::vector<double>> candidate_point_sets(int n) {
  const int finite = n - 1;
  // Pools ordered by different heuristics; each prefix of length `finite`
  // with distinct values is a candidate.
  const std::vector<std::vector<double>> pools = {
      {0, 1, -1, 2, -2, 0.5, -0.5, 4, -0.25, -4, 0.25},          // default (mixed magnitudes)
      {0, 1, -1, 2, -2, 3, -3, 4, -4, 5, -5},                    // integer ladder
      {0, 0.5, -0.5, 1, -1, 2, -2, 0.25, -0.25, 4, -4},          // reciprocal-first
      {0, 1, -0.5, 2, -1, 0.5, -2, 3, -1.0 / 3, -3, 1.0 / 3},    // point/reciprocal interleave
      {0, 1, -1, 1.5, -1.5, 2.0 / 3, -2.0 / 3, 3, -1.0 / 3, 4, -0.25},  // fractional ladder
  };
  std::vector<std::vector<double>> out;
  std::set<std::vector<double>> seen;
  for (const auto& pool : pools) {
    if (static_cast<int>(pool.size()) < finite) continue;
    std::vector<double> cand(pool.begin(), pool.begin() + finite);
    if (std::set<double>(cand.begin(), cand.end()).size() != cand.size()) continue;
    if (seen.insert(cand).second) out.push_back(std::move(cand));
  }
  return out;
}

std::vector<PointSearchEntry> search_points(int m, int r,
                                            const std::vector<std::vector<double>>& candidates,
                                            const quant::QuantSpec& spec, int trials, Rng& rng) {
  std::vector<PointSearchEntry> entries;
  entries.reserve(candidates.size());
  for (const auto& pts : candidates) {
    PointSearchEntry e;
    e.points = pts;
    const Transforms tr = make_transforms(m, r, pts);
    e.fp32 = winograd_error(tr, quant::QuantSpec{32}, trials, rng);
    e.quantized = winograd_error(tr, spec, trials, rng);
    e.score = spec.is_float() ? e.fp32.rel_rmse : e.quantized.rel_rmse;
    entries.push_back(std::move(e));
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const PointSearchEntry& a, const PointSearchEntry& b) {
                     return a.score < b.score;
                   });
  return entries;
}

std::string points_to_string(const std::vector<double>& pts) {
  std::ostringstream os;
  os << '{';
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (i) os << ", ";
    os << pts[i];
  }
  os << '}';
  return os.str();
}

}  // namespace wa::wino
