#include "winograd/cook_toom.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace wa::wino {

std::vector<double> default_points(int n) {
  if (n < 2) throw std::invalid_argument("default_points: need n >= 2");
  // 0, then symmetric pairs ordered by "goodness" for quantized ranges:
  // small magnitudes first, mixing x and 1/x so products stay near 1
  // (Barabasz et al. 2018 observe this balances the dynamic range of G/B).
  static const std::vector<double> pool = {
      0.0, 1.0,  -1.0, 2.0,  -2.0,  0.5,  -0.5, 4.0,   -0.25,
      -4.0, 0.25, 3.0, -3.0, 1.0/3, -1.0/3, 8.0, -0.125, -8.0};
  const int finite = n - 1;
  if (finite > static_cast<int>(pool.size())) {
    throw std::invalid_argument("default_points: no default set for n = " + std::to_string(n));
  }
  return {pool.begin(), pool.begin() + finite};
}

std::vector<double> poly_mul(const std::vector<double>& a, const std::vector<double>& b) {
  std::vector<double> out(a.size() + b.size() - 1, 0.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < b.size(); ++j) out[i + j] += a[i] * b[j];
  }
  return out;
}

TransformsD cook_toom_1d(int m, int r, const std::vector<double>& pts) {
  if (m < 1 || r < 1) throw std::invalid_argument("cook_toom_1d: need m, r >= 1");
  const int n = m + r - 1;
  if (static_cast<int>(pts.size()) != n - 1) {
    throw std::invalid_argument("cook_toom_1d: F(" + std::to_string(m) + "," + std::to_string(r) +
                                ") needs " + std::to_string(n - 1) + " finite points, got " +
                                std::to_string(pts.size()));
  }
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      if (pts[i] == pts[j]) {
        throw std::invalid_argument("cook_toom_1d: duplicate point " + std::to_string(pts[i]));
      }
    }
  }

  TransformsD td;
  td.m = m;
  td.r = r;
  td.points = pts;

  // G: n x r. Finite row i = [aᵢ⁰ … aᵢ^{r-1}] / Nᵢ; last row = e_{r-1}.
  td.g_mat.assign(static_cast<std::size_t>(n), std::vector<double>(static_cast<std::size_t>(r), 0.0));
  for (int i = 0; i < n - 1; ++i) {
    double norm = 1.0;
    for (int k = 0; k < n - 1; ++k) {
      if (k != i) norm *= pts[static_cast<std::size_t>(i)] - pts[static_cast<std::size_t>(k)];
    }
    double power = 1.0;
    for (int j = 0; j < r; ++j) {
      td.g_mat[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = power / norm;
      power *= pts[static_cast<std::size_t>(i)];
    }
  }
  td.g_mat[static_cast<std::size_t>(n - 1)][static_cast<std::size_t>(r - 1)] = 1.0;

  // Bᵀ: n x n. Finite row i = coeffs of Mᵢ(x) = Π_{k≠i}(x − a_k) (degree n-2);
  // ∞-row = coeffs of M(x) = Π(x − a_k) (degree n-1).
  td.bt_mat.assign(static_cast<std::size_t>(n), std::vector<double>(static_cast<std::size_t>(n), 0.0));
  for (int i = 0; i < n - 1; ++i) {
    std::vector<double> poly{1.0};
    for (int k = 0; k < n - 1; ++k) {
      if (k != i) poly = poly_mul(poly, {-pts[static_cast<std::size_t>(k)], 1.0});
    }
    for (std::size_t j = 0; j < poly.size(); ++j) {
      td.bt_mat[static_cast<std::size_t>(i)][j] = poly[j];
    }
  }
  {
    std::vector<double> poly{1.0};
    for (int k = 0; k < n - 1; ++k) poly = poly_mul(poly, {-pts[static_cast<std::size_t>(k)], 1.0});
    for (std::size_t j = 0; j < poly.size(); ++j) {
      td.bt_mat[static_cast<std::size_t>(n - 1)][j] = poly[j];
    }
  }

  // Aᵀ: m x n. Column j (finite) = [a_j⁰ … a_j^{m-1}]; ∞-column = e_{m-1}.
  td.at_mat.assign(static_cast<std::size_t>(m), std::vector<double>(static_cast<std::size_t>(n), 0.0));
  for (int j = 0; j < n - 1; ++j) {
    double power = 1.0;
    for (int i = 0; i < m; ++i) {
      td.at_mat[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = power;
      power *= pts[static_cast<std::size_t>(j)];
    }
  }
  td.at_mat[static_cast<std::size_t>(m - 1)][static_cast<std::size_t>(n - 1)] = 1.0;

  return td;
}

namespace {
Tensor mat_to_tensor(const MatD& m) {
  const auto rows = static_cast<std::int64_t>(m.size());
  const auto cols = rows > 0 ? static_cast<std::int64_t>(m.front().size()) : 0;
  Tensor t(Shape{rows, cols});
  for (std::int64_t i = 0; i < rows; ++i) {
    for (std::int64_t j = 0; j < cols; ++j) {
      t(i, j) = static_cast<float>(m[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]);
    }
  }
  return t;
}
}  // namespace

Transforms to_float(const TransformsD& td) {
  Transforms t;
  t.m = td.m;
  t.r = td.r;
  t.tile = td.m + td.r - 1;
  t.g_mat = mat_to_tensor(td.g_mat);
  t.bt_mat = mat_to_tensor(td.bt_mat);
  t.at_mat = mat_to_tensor(td.at_mat);
  return t;
}

Transforms make_transforms(int m, int r) {
  return to_float(cook_toom_1d(m, r, default_points(m + r - 1)));
}

Transforms make_transforms(int m, int r, const std::vector<double>& finite_points) {
  return to_float(cook_toom_1d(m, r, finite_points));
}

MatrixCost matrix_cost(const Tensor& mat, float tol) {
  MatrixCost c;
  c.total = mat.numel();
  for (float v : mat.data()) {
    const float a = std::fabs(v);
    if (a <= tol) {
      ++c.zeros;
    } else if (std::fabs(a - 1.F) <= tol) {
      ++c.plus_minus_one;
    } else {
      ++c.general;
    }
  }
  return c;
}

}  // namespace wa::wino
