// Reference Winograd convolutions and numerical-error analysis.
//
// These are the "ground truth" implementations the fast kernels and the
// Winograd-aware layer are tested against, plus the error analyzer behind
// the paper's Table 1 motivation (error grows with tile size, explodes under
// quantization).
#pragma once

#include <vector>

#include "quant/quant.hpp"
#include "tensor/rng.hpp"
#include "tensor/tensor.hpp"
#include "winograd/cook_toom.hpp"

namespace wa::wino {

/// 1-D valid correlation in double: out[j] = sum_i d[j+i] * g[i].
std::vector<double> correlate_1d_d(const std::vector<double>& d, const std::vector<double>& g);

/// 1-D Winograd F(m, r) over one tile (d.size() == m+r-1) in double.
std::vector<double> winograd_1d_d(const TransformsD& td, const std::vector<double>& d,
                                  const std::vector<double>& g);

/// 2-D valid correlation (single channel): input [H,W], filter [r,r]
/// -> [H-r+1, W-r+1].
Tensor correlate_2d(const Tensor& input, const Tensor& filter);

/// 2-D Winograd convolution of a full single-channel image using transforms
/// `tr`, tiled with stride m and zero padding at the right/bottom edges.
/// Matches correlate_2d on the valid region (exactly, up to FP error).
Tensor winograd_conv_2d(const Transforms& tr, const Tensor& input, const Tensor& filter);

/// One t×t tile through the Winograd pipeline with optional fake-quantization
/// of every intermediate (the inference-time analog of the Qx stages in the
/// paper's Fig. 2). Scales are taken per-stage from the tensor's own abs-max.
Tensor winograd_tile_quantized(const Transforms& tr, const Tensor& tile, const Tensor& filter,
                               const quant::QuantSpec& spec);

struct ErrorStats {
  double max_abs = 0;   // max |winograd - direct| over all trials
  double rmse = 0;      // root mean squared error
  double rel_rmse = 0;  // rmse / rms(direct)
};

/// Monte-Carlo comparison of the (optionally quantized) Winograd pipeline
/// against direct correlation on random N(0,1) tiles/filters.
/// This exposes the paper's core observation: error grows with tile size and
/// explodes at low bit-widths.
ErrorStats winograd_error(const Transforms& tr, const quant::QuantSpec& spec, int trials, Rng& rng);

}  // namespace wa::wino
