// Stride-2 convolution via polyphase decomposition — with a Winograd path.
//
// The paper sidesteps strided convolutions entirely: "there is no known
// equivalent for strided Winograd convolutions, which remains an open
// research question" (§5.1), and replaces every stride-2 convolution with
// max-pool + dense convolution. This module implements the decomposition
// answer to that question:
//
//   a stride-2 correlation splits exactly into four phase-separated
//   stride-1 correlations —
//       y = Σ_{s,t ∈ {0,1}}  corr1(x_st, g_st),
//       x_st[u,v] = x[2u+s, 2v+t],   g_st[a,b] = g[2a+s, 2b+t]
//   — and the SQUARE polyphase component (g_00: 2x2 taps for r=3, 3x3 for
//   r=5) is an ordinary stride-1 convolution that Winograd accelerates.
//
// For a 5x5 stride-2 layer this routes a full 3x3 convolution — the
// dominant cost — through F(m, 3); for 3x3 stride-2 the 2x2 component goes
// through F(m, 2). The remaining rectangular components are cheap direct
// correlations. stride2_cost() quantifies the multiplication savings.
//
// Scope: single-channel 2-D analysis kernels (like winograd_ref), valid
// padding. They establish correctness and the op-count argument; lifting
// them into the NCHW layer stack follows the same pattern as
// backend::winograd_conv.
#pragma once

#include <array>
#include <cstdint>

#include "tensor/tensor.hpp"
#include "winograd/cook_toom.hpp"

namespace wa::wino {

/// The four polyphase components of an r x r filter. g[s][t] holds the taps
/// at rows ≡ s, cols ≡ t (mod 2); shape ⌈(r-s)/2⌉ x ⌈(r-t)/2⌉.
struct PolyphaseFilters {
  std::array<std::array<Tensor, 2>, 2> g;
};

/// Split a filter into its polyphase components. Throws for non-2-D input.
PolyphaseFilters polyphase_split(const Tensor& filter);

/// Subsample a 2-D tensor: out[u, v] = x[2u + row_phase, 2v + col_phase].
Tensor subsample2(const Tensor& x, int row_phase, int col_phase);

/// Reference stride-2 valid correlation (single channel):
/// y[i, j] = Σ_{a,b} x[2i + a, 2j + b] · g[a, b].
Tensor conv2d_stride2_direct(const Tensor& input, const Tensor& filter);

/// Stride-2 correlation via the polyphase decomposition. When
/// `winograd_square_path` is true the square g_00 component runs through
/// F(m_out x m_out, k x k) Winograd (k = ⌈r/2⌉); the rectangular
/// components always use direct correlation. Bit-equal to
/// conv2d_stride2_direct up to FP accumulation order.
Tensor conv2d_stride2_polyphase(const Tensor& input, const Tensor& filter,
                                bool winograd_square_path = true, int m_out = 2);

/// Multiplication counts for one stride-2 layer (per channel pair).
struct Stride2Cost {
  std::int64_t direct_macs = 0;             // plain stride-2 loop
  std::int64_t polyphase_direct_macs = 0;   // 4 phase correlations, all direct
  double polyphase_winograd_macs = 0;       // square component via F(m, k)
  double winograd_speedup() const {
    return polyphase_winograd_macs > 0
               ? static_cast<double>(direct_macs) / polyphase_winograd_macs
               : 0.0;
  }
};

/// Cost of convolving an h x w input with an r x r stride-2 filter, with the
/// square polyphase component through F(m_out, ⌈r/2⌉). Transform costs are
/// excluded on both sides (the same convention the paper uses for its
/// "multiplications per output" accounting in §3.1).
Stride2Cost stride2_cost(std::int64_t h, std::int64_t w, std::int64_t r, int m_out = 2);

}  // namespace wa::wino
