#include "backend/conv_kernels.hpp"

#include <stdexcept>
#include <string>

#include "backend/perf_counters.hpp"
#include "tensor/arena.hpp"
#include "tensor/gemm.hpp"
#include "winograd/small_mat.hpp"

namespace wa::backend {

void ConvGeometry::validate() const {
  if (batch < 1 || in_channels < 1 || out_channels < 1 || height < 1 || width < 1 || kernel < 1 ||
      pad < 0 || groups < 1 || stride < 1) {
    throw std::invalid_argument("ConvGeometry: non-positive dimension");
  }
  if (in_channels % groups != 0 || out_channels % groups != 0) {
    throw std::invalid_argument("ConvGeometry: channels not divisible by groups");
  }
  if (out_height() < 1 || out_width() < 1) {
    throw std::invalid_argument("ConvGeometry: empty output");
  }
}

namespace {
void check_shapes(const Tensor& input, const Tensor& weights, const ConvGeometry& g,
                  const char* what) {
  g.validate();
  if (input.dim() != 4 || input.size(0) != g.batch || input.size(1) != g.in_channels ||
      input.size(2) != g.height || input.size(3) != g.width) {
    throw std::invalid_argument(std::string(what) + ": input shape " + to_string(input.shape()) +
                                " does not match geometry");
  }
  if (weights.dim() != 4 || weights.size(0) != g.out_channels ||
      weights.size(1) != g.in_channels / g.groups || weights.size(2) != g.kernel ||
      weights.size(3) != g.kernel) {
    throw std::invalid_argument(std::string(what) + ": weight shape " + to_string(weights.shape()) +
                                " does not match geometry");
  }
}
}  // namespace

Tensor direct_conv(const Tensor& input, const Tensor& weights, const ConvGeometry& g) {
  check_shapes(input, weights, g, "direct_conv");
  const std::int64_t oh = g.out_height(), ow = g.out_width();
  const std::int64_t cpg = g.in_channels / g.groups;  // channels per group
  const std::int64_t kpg = g.out_channels / g.groups;
  Tensor out(Shape{g.batch, g.out_channels, oh, ow});
#pragma omp parallel for collapse(2) schedule(static)
  for (std::int64_t n = 0; n < g.batch; ++n) {
    for (std::int64_t k = 0; k < g.out_channels; ++k) {
      const std::int64_t grp = k / kpg;
      for (std::int64_t i = 0; i < oh; ++i) {
        for (std::int64_t j = 0; j < ow; ++j) {
          double acc = 0;
          for (std::int64_t c = 0; c < cpg; ++c) {
            for (std::int64_t fi = 0; fi < g.kernel; ++fi) {
              const std::int64_t ii = i + fi - g.pad;
              if (ii < 0 || ii >= g.height) continue;
              for (std::int64_t fj = 0; fj < g.kernel; ++fj) {
                const std::int64_t jj = j + fj - g.pad;
                if (jj < 0 || jj >= g.width) continue;
                acc += static_cast<double>(input(n, grp * cpg + c, ii, jj)) *
                       weights(k, c, fi, fj);
              }
            }
          }
          out(n, k, i, j) = static_cast<float>(acc);
        }
      }
    }
  }
  return out;
}

Tensor im2row_lower(const Tensor& input, const ConvGeometry& g) {
  const std::int64_t oh = g.out_height(), ow = g.out_width();
  const std::int64_t patch = g.in_channels * g.kernel * g.kernel;
  Tensor rows(Shape{g.batch * oh * ow, patch});
#pragma omp parallel for collapse(2) schedule(static)
  for (std::int64_t n = 0; n < g.batch; ++n) {
    for (std::int64_t i = 0; i < oh; ++i) {
      for (std::int64_t j = 0; j < ow; ++j) {
        float* dst = rows.raw() + ((n * oh + i) * ow + j) * patch;
        for (std::int64_t c = 0; c < g.in_channels; ++c) {
          for (std::int64_t fi = 0; fi < g.kernel; ++fi) {
            const std::int64_t ii = i + fi - g.pad;
            for (std::int64_t fj = 0; fj < g.kernel; ++fj) {
              const std::int64_t jj = j + fj - g.pad;
              *dst++ = (ii >= 0 && ii < g.height && jj >= 0 && jj < g.width)
                           ? input(n, c, ii, jj)
                           : 0.F;
            }
          }
        }
      }
    }
  }
  return rows;
}

namespace {
/// GEMM output [rows=N*oh*ow, K] -> NCHW.
Tensor rows_to_nchw(const Tensor& rows, const ConvGeometry& g) {
  const std::int64_t oh = g.out_height(), ow = g.out_width();
  Tensor out(Shape{g.batch, g.out_channels, oh, ow});
  for (std::int64_t n = 0; n < g.batch; ++n) {
    for (std::int64_t i = 0; i < oh; ++i) {
      for (std::int64_t j = 0; j < ow; ++j) {
        const float* src = rows.raw() + ((n * oh + i) * ow + j) * g.out_channels;
        for (std::int64_t k = 0; k < g.out_channels; ++k) out(n, k, i, j) = src[k];
      }
    }
  }
  return out;
}

Tensor grouped_gemm_conv(const Tensor& input, const Tensor& weights, const ConvGeometry& g,
                         bool row_major_patches) {
  // Handle groups by splitting into per-group geometries over channel slices.
  const std::int64_t cpg = g.in_channels / g.groups;
  const std::int64_t kpg = g.out_channels / g.groups;
  const std::int64_t oh = g.out_height(), ow = g.out_width();
  Tensor out(Shape{g.batch, g.out_channels, oh, ow});
  for (std::int64_t grp = 0; grp < g.groups; ++grp) {
    // Slice input channels [grp*cpg, (grp+1)*cpg).
    Tensor in_slice(Shape{g.batch, cpg, g.height, g.width});
    for (std::int64_t n = 0; n < g.batch; ++n)
      for (std::int64_t c = 0; c < cpg; ++c)
        for (std::int64_t i = 0; i < g.height; ++i)
          for (std::int64_t j = 0; j < g.width; ++j)
            in_slice(n, c, i, j) = input(n, grp * cpg + c, i, j);
    Tensor w_slice = weights.slice0(grp * kpg, (grp + 1) * kpg);

    ConvGeometry sub = g;
    sub.in_channels = cpg;
    sub.out_channels = kpg;
    sub.groups = 1;

    const std::int64_t patch = cpg * g.kernel * g.kernel;
    const Tensor wmat = w_slice.reshape(Shape{kpg, patch});
    Tensor result_rows(Shape{g.batch * oh * ow, kpg});
    if (row_major_patches) {
      const Tensor rows = im2row_lower(in_slice, sub);
      gemm_f32(false, true, rows.size(0), kpg, patch, 1.F, rows.raw(), wmat.raw(), 0.F,
               result_rows.raw());
    } else {
      const Tensor cols = im2col_lower(in_slice, sub);
      // out_cols [K, N*oh*ow] = wmat [K, patch] x cols [patch, N*oh*ow]
      Tensor out_cols(Shape{kpg, g.batch * oh * ow});
      gemm_f32(false, false, kpg, cols.size(1), patch, 1.F, wmat.raw(), cols.raw(), 0.F,
               out_cols.raw());
      for (std::int64_t k = 0; k < kpg; ++k)
        for (std::int64_t p = 0; p < g.batch * oh * ow; ++p) result_rows(p, k) = out_cols(k, p);
    }
    const Tensor sub_out = rows_to_nchw(result_rows, sub);
    for (std::int64_t n = 0; n < g.batch; ++n)
      for (std::int64_t k = 0; k < kpg; ++k)
        for (std::int64_t i = 0; i < oh; ++i)
          for (std::int64_t j = 0; j < ow; ++j)
            out(n, grp * kpg + k, i, j) = sub_out(n, k, i, j);
  }
  return out;
}
}  // namespace

Tensor im2row_conv(const Tensor& input, const Tensor& weights, const ConvGeometry& g) {
  check_shapes(input, weights, g, "im2row_conv");
  return grouped_gemm_conv(input, weights, g, /*row_major_patches=*/true);
}

Tensor im2col_lower(const Tensor& input, const ConvGeometry& g) {
  const std::int64_t oh = g.out_height(), ow = g.out_width();
  const std::int64_t patch = g.in_channels * g.kernel * g.kernel;
  const std::int64_t cols = g.batch * oh * ow;
  Tensor m(Shape{patch, cols});
#pragma omp parallel for schedule(static)
  for (std::int64_t c = 0; c < g.in_channels; ++c) {
    for (std::int64_t fi = 0; fi < g.kernel; ++fi) {
      for (std::int64_t fj = 0; fj < g.kernel; ++fj) {
        const std::int64_t row = (c * g.kernel + fi) * g.kernel + fj;
        for (std::int64_t n = 0; n < g.batch; ++n) {
          for (std::int64_t i = 0; i < oh; ++i) {
            const std::int64_t ii = i + fi - g.pad;
            for (std::int64_t j = 0; j < ow; ++j) {
              const std::int64_t jj = j + fj - g.pad;
              m(row, (n * oh + i) * ow + j) =
                  (ii >= 0 && ii < g.height && jj >= 0 && jj < g.width) ? input(n, c, ii, jj)
                                                                        : 0.F;
            }
          }
        }
      }
    }
  }
  return m;
}

Tensor im2col_conv(const Tensor& input, const Tensor& weights, const ConvGeometry& g) {
  check_shapes(input, weights, g, "im2col_conv");
  return grouped_gemm_conv(input, weights, g, /*row_major_patches=*/false);
}

Tensor winograd_transform_weights(const Tensor& weights, const wino::Transforms& tr) {
  const std::int64_t k = weights.size(0), c = weights.size(1);
  const std::int64_t t = tr.tile;
  if (t > wino::kMaxTile) throw std::invalid_argument("winograd_transform_weights: tile too large");
  count_weight_transform();
  Tensor u(Shape{t * t, k, c});
#pragma omp parallel for schedule(static)
  for (std::int64_t ki = 0; ki < k; ++ki) {
    float tmp[wino::kSmallMatCap], gg[wino::kSmallMatCap];
    for (std::int64_t ci = 0; ci < c; ++ci) {
      const float* filt = weights.raw() + (ki * c + ci) * tr.r * tr.r;
      wino::smm_sandwich(tr.g_mat.raw(), tr.tile, tr.r, filt, tmp, gg);
      for (std::int64_t ab = 0; ab < t * t; ++ab) u(ab, ki, ci) = gg[ab];
    }
  }
  return u;
}

Tensor winograd_conv(const Tensor& input, const Tensor& weights, const ConvGeometry& g,
                     const wino::Transforms& tr) {
  check_shapes(input, weights, g, "winograd_conv");
  // U: [t*t, K, C] (amortizable across inferences — winograd_conv_prepared
  // is the serving path that actually amortizes it).
  return winograd_conv_prepared(input, winograd_transform_weights(weights, tr), g, tr);
}

Tensor winograd_conv_prepared(const Tensor& input, const Tensor& u, const ConvGeometry& g,
                              const wino::Transforms& tr) {
  g.validate();
  if (g.groups != 1) throw std::invalid_argument("winograd_conv: groups must be 1 (split upstream)");
  if (g.kernel != tr.r) throw std::invalid_argument("winograd_conv: kernel != transform r");
  if (input.shape() != Shape{g.batch, g.in_channels, g.height, g.width}) {
    throw std::invalid_argument("winograd_conv_prepared: input shape " +
                                to_string(input.shape()) + " does not match geometry");
  }
  if (u.shape() != Shape{tr.tile * tr.tile, g.out_channels, g.in_channels}) {
    throw std::invalid_argument("winograd_conv_prepared: U shape " + to_string(u.shape()) +
                                " does not match geometry");
  }

  const std::int64_t oh = g.out_height(), ow = g.out_width();
  const std::int64_t t = tr.tile, m = tr.m;
  const std::int64_t th = (oh + m - 1) / m, tw = (ow + m - 1) / m;
  const std::int64_t tiles = g.batch * th * tw;

  ScratchArena& arena = ScratchArena::for_thread();
  ScratchArena::Scope frame(arena);

  // 1) V: [t*t, C, tiles] — scatter every input tile, in the arena.
  float* v = arena.alloc<float>(t * t * g.in_channels * tiles);
#pragma omp parallel for schedule(static)
  for (std::int64_t nc = 0; nc < g.batch * g.in_channels; ++nc) {
    const std::int64_t n = nc / g.in_channels, c = nc % g.in_channels;
    float patch[wino::kSmallMatCap], tmp[wino::kSmallMatCap], bt[wino::kSmallMatCap];
    for (std::int64_t ti = 0; ti < th; ++ti) {
      for (std::int64_t tj = 0; tj < tw; ++tj) {
        const std::int64_t i0 = ti * m - g.pad, j0 = tj * m - g.pad;
        for (std::int64_t a = 0; a < t; ++a) {
          for (std::int64_t b = 0; b < t; ++b) {
            const std::int64_t ii = i0 + a, jj = j0 + b;
            patch[a * t + b] = (ii >= 0 && ii < g.height && jj >= 0 && jj < g.width)
                                   ? input(n, c, ii, jj)
                                   : 0.F;
          }
        }
        wino::smm_sandwich(tr.bt_mat.raw(), tr.tile, tr.tile, patch, tmp, bt);
        const std::int64_t tile_idx = (n * th + ti) * tw + tj;
        for (std::int64_t a = 0; a < t * t; ++a) v[(a * g.in_channels + c) * tiles + tile_idx] = bt[a];
      }
    }
  }

  // 2) M: t² GEMMs [K, C] x [C, tiles] -> [t*t, K, tiles].
  float* mm = arena.alloc<float>(t * t * g.out_channels * tiles);
  gemm_batched_f32(false, false, t * t, g.out_channels, tiles, g.in_channels, u.raw(),
                   g.out_channels * g.in_channels, v, g.in_channels * tiles, mm,
                   g.out_channels * tiles);

  // 3) Y = Aᵀ M A per (k, tile), gathered into the valid output region.
  Tensor out(Shape{g.batch, g.out_channels, oh, ow});
#pragma omp parallel for schedule(static)
  for (std::int64_t nk = 0; nk < g.batch * g.out_channels; ++nk) {
    const std::int64_t n = nk / g.out_channels, k = nk % g.out_channels;
    float mtile[wino::kSmallMatCap], tmp[wino::kSmallMatCap], y[wino::kSmallMatCap];
    for (std::int64_t ti = 0; ti < th; ++ti) {
      for (std::int64_t tj = 0; tj < tw; ++tj) {
        const std::int64_t tile_idx = (n * th + ti) * tw + tj;
        for (std::int64_t a = 0; a < t * t; ++a) {
          mtile[a] = mm[(a * g.out_channels + k) * tiles + tile_idx];
        }
        wino::smm_sandwich(tr.at_mat.raw(), tr.m, tr.tile, mtile, tmp, y);  // [m, m]
        for (std::int64_t a = 0; a < m; ++a) {
          const std::int64_t oi = ti * m + a;
          if (oi >= oh) break;
          for (std::int64_t b = 0; b < m; ++b) {
            const std::int64_t oj = tj * m + b;
            if (oj >= ow) break;
            out(n, k, oi, oj) = y[a * m + b];
          }
        }
      }
    }
  }
  return out;
}

}  // namespace wa::backend
