#include "backend/bn_fold.hpp"

#include <cmath>
#include <stdexcept>

namespace wa::backend {

FoldedConv fold_batchnorm(const Tensor& weights, const Tensor& bias, const Tensor& gamma,
                          const Tensor& beta, const Tensor& running_mean,
                          const Tensor& running_var, float eps) {
  if (weights.dim() != 4) throw std::invalid_argument("fold_batchnorm: weights must be 4-d");
  const std::int64_t k = weights.size(0);
  for (const Tensor* t : {&gamma, &beta, &running_mean, &running_var}) {
    if (t->numel() != k) {
      throw std::invalid_argument("fold_batchnorm: statistics must have one entry per output "
                                  "channel (" +
                                  std::to_string(k) + ")");
    }
  }
  if (!bias.empty() && bias.numel() != k) {
    throw std::invalid_argument("fold_batchnorm: bias/channel mismatch");
  }

  FoldedConv out;
  out.weights = weights;
  out.bias = Tensor(Shape{k});
  const std::int64_t per_filter = weights.numel() / k;
  auto w = out.weights.data();
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const float inv_std = 1.F / std::sqrt(running_var.at(kk) + eps);
    const float s = gamma.at(kk) * inv_std;
    for (std::int64_t i = 0; i < per_filter; ++i) {
      w[static_cast<std::size_t>(kk * per_filter + i)] *= s;
    }
    const float b_in = bias.empty() ? 0.F : bias.at(kk);
    out.bias.at(kk) = beta.at(kk) + s * (b_in - running_mean.at(kk));
  }
  return out;
}

}  // namespace wa::backend
