#include "backend/conv_kernels_s16.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "winograd/small_mat.hpp"

namespace wa::backend {

void gemm_s16_s64(std::int64_t m, std::int64_t n, std::int64_t k, const std::int16_t* a,
                  const std::int16_t* b, std::int64_t* c) {
#pragma omp parallel for schedule(static) if (m >= 8)
  for (std::int64_t i = 0; i < m; ++i) {
    std::int64_t* crow = c + i * n;
    for (std::int64_t j = 0; j < n; ++j) crow[j] = 0;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const std::int64_t av = a[i * k + kk];
      if (av == 0) continue;
      const std::int16_t* brow = b + kk * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * static_cast<std::int64_t>(brow[j]);
    }
  }
}

namespace {

std::int16_t clamp_s16(float v) {
  return static_cast<std::int16_t>(std::min(32767.F, std::max(-32767.F, std::nearbyint(v))));
}

/// Requantize an int64 accumulator to int16: round(acc * mult) saturated.
/// A double multiplier keeps >52 bits of precision — the int32 fixed-point
/// trick of the int8 path cannot represent int64 accumulators anyway.
std::int16_t requant_s16(std::int64_t acc, double mult) {
  const double v = std::nearbyint(static_cast<double>(acc) * mult);
  return static_cast<std::int16_t>(std::min(32767.0, std::max(-32767.0, v)));
}

}  // namespace

QTensor16 im2row_conv_s16(const QTensor16& input, const QTensor16& weights,
                          const ConvGeometry& g, float out_scale) {
  g.validate();
  if (g.groups != 1) throw std::invalid_argument("im2row_conv_s16: groups must be 1");
  const std::int64_t oh = g.out_height(), ow = g.out_width();
  const std::int64_t patch = g.in_channels * g.kernel * g.kernel;
  const std::int64_t rows = g.batch * oh * ow;

  // Lower patches in int16 (zero padding stays level 0: symmetric scheme).
  std::vector<std::int16_t> lowered(static_cast<std::size_t>(rows * patch), 0);
#pragma omp parallel for collapse(2) schedule(static)
  for (std::int64_t n = 0; n < g.batch; ++n) {
    for (std::int64_t i = 0; i < oh; ++i) {
      for (std::int64_t j = 0; j < ow; ++j) {
        std::int16_t* dst = lowered.data() + ((n * oh + i) * ow + j) * patch;
        for (std::int64_t c = 0; c < g.in_channels; ++c) {
          for (std::int64_t fi = 0; fi < g.kernel; ++fi) {
            const std::int64_t ii = i + fi - g.pad;
            for (std::int64_t fj = 0; fj < g.kernel; ++fj) {
              const std::int64_t jj = j + fj - g.pad;
              if (ii >= 0 && ii < g.height && jj >= 0 && jj < g.width) {
                *dst = input.data[static_cast<std::size_t>(
                    ((n * g.in_channels + c) * g.height + ii) * g.width + jj)];
              }
              ++dst;
            }
          }
        }
      }
    }
  }

  // Weights as [patch, K] so the GEMM is [rows, patch] x [patch, K].
  std::vector<std::int16_t> wt(static_cast<std::size_t>(patch * g.out_channels));
  for (std::int64_t k = 0; k < g.out_channels; ++k)
    for (std::int64_t p = 0; p < patch; ++p)
      wt[static_cast<std::size_t>(p * g.out_channels + k)] =
          weights.data[static_cast<std::size_t>(k * patch + p)];

  std::vector<std::int64_t> acc(static_cast<std::size_t>(rows * g.out_channels));
  gemm_s16_s64(rows, g.out_channels, patch, lowered.data(), wt.data(), acc.data());

  const float acc_scale = input.scale * weights.scale;
  float oscale = out_scale;
  if (oscale <= 0.F) {
    std::int64_t amax = 0;
    for (std::int64_t v : acc) amax = std::max(amax, std::abs(v));
    oscale = std::max(acc_scale * static_cast<float>(amax), 1e-12F) / 32767.F;
  }
  const double mult = static_cast<double>(acc_scale) / oscale;

  QTensor16 out;
  out.shape = Shape{g.batch, g.out_channels, oh, ow};
  out.scale = oscale;
  out.data.resize(static_cast<std::size_t>(rows * g.out_channels));
  for (std::int64_t n = 0; n < g.batch; ++n) {
    for (std::int64_t i = 0; i < oh; ++i) {
      for (std::int64_t j = 0; j < ow; ++j) {
        const std::int64_t* src = acc.data() + ((n * oh + i) * ow + j) * g.out_channels;
        for (std::int64_t k = 0; k < g.out_channels; ++k) {
          out.data[static_cast<std::size_t>(((n * g.out_channels + k) * oh + i) * ow + j)] =
              requant_s16(src[k], mult);
        }
      }
    }
  }
  return out;
}

QTensor16 winograd_conv_s16(const QTensor16& input, const Tensor& weights_fp32,
                            const ConvGeometry& g, const wino::Transforms& tr,
                            const WinogradStageScales16& scales) {
  g.validate();
  if (g.groups != 1) throw std::invalid_argument("winograd_conv_s16: groups must be 1");
  if (g.kernel != tr.r) throw std::invalid_argument("winograd_conv_s16: kernel != transform r");
  const std::int64_t oh = g.out_height(), ow = g.out_width();
  const std::int64_t t = tr.tile, m = tr.m;
  const std::int64_t th = (oh + m - 1) / m, tw = (ow + m - 1) / m;
  const std::int64_t tiles = g.batch * th * tw;

  // U in FP32, then int16 at a single per-layer scale.
  const Tensor u_f = winograd_transform_weights(weights_fp32, tr);  // [t*t, K, C]
  const float su = scales.weights_transformed > 0.F
                       ? scales.weights_transformed
                       : quant::scale_for(u_f.abs_max(), quant::QuantSpec{16});
  std::vector<std::int16_t> u_q(static_cast<std::size_t>(u_f.numel()));
  for (std::int64_t i = 0; i < u_f.numel(); ++i) {
    u_q[static_cast<std::size_t>(i)] = clamp_s16(u_f.at(i) / su);
  }

  // V: dequantize input tile, transform in FP32, requantize to int16.
  const Tensor in_f = dequantize(input);
  Tensor v_f(Shape{t * t, g.in_channels, tiles});
#pragma omp parallel for collapse(2) schedule(static)
  for (std::int64_t n = 0; n < g.batch; ++n) {
    for (std::int64_t c = 0; c < g.in_channels; ++c) {
      float patch[wino::kSmallMatCap], tmp[wino::kSmallMatCap], bt[wino::kSmallMatCap];
      for (std::int64_t ti = 0; ti < th; ++ti) {
        for (std::int64_t tj = 0; tj < tw; ++tj) {
          const std::int64_t i0 = ti * m - g.pad, j0 = tj * m - g.pad;
          for (std::int64_t a = 0; a < t; ++a) {
            for (std::int64_t b = 0; b < t; ++b) {
              const std::int64_t ii = i0 + a, jj = j0 + b;
              patch[a * t + b] = (ii >= 0 && ii < g.height && jj >= 0 && jj < g.width)
                                     ? in_f(n, c, ii, jj)
                                     : 0.F;
            }
          }
          wino::smm_sandwich(tr.bt_mat.raw(), tr.tile, tr.tile, patch, tmp, bt);
          const std::int64_t tile_idx = (n * th + ti) * tw + tj;
          for (std::int64_t a = 0; a < t * t; ++a) v_f(a, c, tile_idx) = bt[a];
        }
      }
    }
  }
  const float sv = scales.input_transformed > 0.F
                       ? scales.input_transformed
                       : quant::scale_for(v_f.abs_max(), quant::QuantSpec{16});
  std::vector<std::int16_t> v_q(static_cast<std::size_t>(v_f.numel()));
  for (std::int64_t i = 0; i < v_f.numel(); ++i) {
    v_q[static_cast<std::size_t>(i)] = clamp_s16(v_f.at(i) / sv);
  }

  // Hadamard stage: t² int16 GEMMs accumulating in int64.
  std::vector<std::int64_t> m_acc(static_cast<std::size_t>(t * t * g.out_channels * tiles));
#pragma omp parallel for schedule(static)
  for (std::int64_t xy = 0; xy < t * t; ++xy) {
    gemm_s16_s64(g.out_channels, tiles, g.in_channels,
                 u_q.data() + xy * g.out_channels * g.in_channels,
                 v_q.data() + xy * g.in_channels * tiles,
                 m_acc.data() + xy * g.out_channels * tiles);
  }

  const float m_acc_scale = su * sv;
  float sm = scales.hadamard;
  if (sm <= 0.F) {
    std::int64_t amax = 0;
    for (std::int64_t v : m_acc) amax = std::max(amax, std::abs(v));
    sm = std::max(m_acc_scale * static_cast<float>(amax), 1e-12F) / 32767.F;
  }
  const double m_mult = static_cast<double>(m_acc_scale) / sm;

  Tensor out_f(Shape{g.batch, g.out_channels, oh, ow});
#pragma omp parallel for collapse(2) schedule(static)
  for (std::int64_t n = 0; n < g.batch; ++n) {
    for (std::int64_t k = 0; k < g.out_channels; ++k) {
      float mtile[wino::kSmallMatCap], tmp[wino::kSmallMatCap], y[wino::kSmallMatCap];
      for (std::int64_t ti = 0; ti < th; ++ti) {
        for (std::int64_t tj = 0; tj < tw; ++tj) {
          const std::int64_t tile_idx = (n * th + ti) * tw + tj;
          for (std::int64_t ab = 0; ab < t * t; ++ab) {
            const std::int64_t acc =
                m_acc[static_cast<std::size_t>((ab * g.out_channels + k) * tiles + tile_idx)];
            mtile[ab] = static_cast<float>(requant_s16(acc, m_mult)) * sm;
          }
          wino::smm_sandwich(tr.at_mat.raw(), tr.m, tr.tile, mtile, tmp, y);
          for (std::int64_t a = 0; a < m && ti * m + a < oh; ++a)
            for (std::int64_t b = 0; b < m && tj * m + b < ow; ++b)
              out_f(n, k, ti * m + a, tj * m + b) = y[a * m + b];
        }
      }
    }
  }

  const float so = scales.output > 0.F
                       ? scales.output
                       : quant::scale_for(out_f.abs_max(), quant::QuantSpec{16});
  QTensor16 out;
  out.shape = out_f.shape();
  out.scale = so;
  out.data.resize(static_cast<std::size_t>(out_f.numel()));
  for (std::int64_t i = 0; i < out_f.numel(); ++i) {
    out.data[static_cast<std::size_t>(i)] = clamp_s16(out_f.at(i) / so);
  }
  return out;
}

}  // namespace wa::backend
