// Quantized tensor for the integer inference backend.
#pragma once

#include <cstdint>
#include <vector>

#include "quant/quant.hpp"
#include "tensor/tensor.hpp"

namespace wa::backend {

/// Dense row-major int8 tensor with a single (per-layer, symmetric) scale:
/// real_value = scale * int_value. Deliberately minimal: the deployment
/// backend mirrors what mobile inference libraries ship (per-layer symmetric
/// int8, int32 accumulators).
struct QTensor {
  Shape shape;
  std::vector<std::int8_t> data;
  float scale = 1.F;

  std::int64_t numel() const { return static_cast<std::int64_t>(data.size()); }
};

/// Quantize a float tensor at the scale implied by its abs-max (or an
/// explicit scale if `scale_override` > 0).
QTensor quantize_s8(const Tensor& t, float scale_override = -1.F);

/// Reconstruct floats.
Tensor dequantize(const QTensor& q);

}  // namespace wa::backend
