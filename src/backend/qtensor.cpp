#include "backend/qtensor.hpp"

#include <cmath>

namespace wa::backend {

QTensor quantize_s8(const Tensor& t, float scale_override) {
  QTensor q;
  q.shape = t.shape();
  q.scale = scale_override > 0.F ? scale_override : quant::scale_for(t.abs_max(), quant::QuantSpec{8});
  q.data.resize(static_cast<std::size_t>(t.numel()));
  const float inv = 1.F / q.scale;
  auto src = t.data();
  for (std::size_t i = 0; i < q.data.size(); ++i) {
    float v = std::nearbyint(src[i] * inv);
    v = std::min(127.F, std::max(-127.F, v));
    q.data[i] = static_cast<std::int8_t>(v);
  }
  return q;
}

Tensor dequantize(const QTensor& q) {
  Tensor t(q.shape);
  auto dst = t.data();
  for (std::size_t i = 0; i < q.data.size(); ++i) {
    dst[i] = static_cast<float>(q.data[i]) * q.scale;
  }
  return t;
}

}  // namespace wa::backend
