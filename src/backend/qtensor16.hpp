// 16-bit quantized tensor for the integer inference backend.
//
// The paper trains INT16 networks but cannot deploy them: "INT16
// measurements are not currently supported in Arm Compute Library" (§5.3).
// This backend closes that gap — INT16 kernels with int64 accumulators —
// so the INT16 rows of Fig. 4 and the wiNAS-Q candidates have a real
// deployment path in this repo.
#pragma once

#include <cstdint>
#include <vector>

#include "quant/quant.hpp"
#include "tensor/tensor.hpp"

namespace wa::backend {

/// Dense row-major int16 tensor with a single (per-layer, symmetric) scale:
/// real_value = scale * int_value.
struct QTensor16 {
  Shape shape;
  std::vector<std::int16_t> data;
  float scale = 1.F;

  std::int64_t numel() const { return static_cast<std::int64_t>(data.size()); }
};

/// Quantize a float tensor at the scale implied by its abs-max (or an
/// explicit scale if `scale_override` > 0).
QTensor16 quantize_s16(const Tensor& t, float scale_override = -1.F);

/// Reconstruct floats.
Tensor dequantize(const QTensor16& q);

}  // namespace wa::backend
