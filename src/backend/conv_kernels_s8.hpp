// INT8 convolution kernels: int8 x int8 -> int32 accumulation with
// fixed-point requantization, mirroring integer inference on Arm cores.
//
// These kernels are what the Winograd-aware training in src/core makes
// possible: the quantized Winograd path matches the training-time Qx
// semantics (per-stage symmetric quantization) while the heavy Hadamard/GEMM
// stage runs entirely in int8/int32.
#pragma once

#include <atomic>

#include "backend/conv_kernels.hpp"
#include "backend/qtensor.hpp"
#include "quant/requant.hpp"

namespace wa::backend {

/// int8 GEMM: C_int32 = A_int8 [M,K] x B_int8 [K,N]. Dispatches through the
/// runtime-selected SIMD backend (backend/simd/kernel_table.hpp); results
/// are bit-identical across backends.
void gemm_s8_s32(std::int64_t m, std::int64_t n, std::int64_t k, const std::int8_t* a,
                 const std::int8_t* b, std::int32_t* c);

/// im2row int8 convolution. Output is int8 at `out_scale` (if > 0) or at the
/// scale implied by the float result's abs-max computed from a reference
/// int32 pass (deployment would calibrate this offline).
QTensor im2row_conv_s8(const QTensor& input, const QTensor& weights, const ConvGeometry& g,
                       float out_scale = -1.F, const Tensor* bias = nullptr);

/// im2row weights repacked once at load: [K, C*r*r] -> [C*r*r, K] so the
/// per-forward GEMM consumes them directly. Grouped convolutions repack each
/// group contiguously: wt is [g][patch_g, K/g] with patch_g = (C/g)*r*r, so
/// group gi's GEMM operand starts at wt.data() + gi*patch*out_channels
/// (per-group strides; `patch` and `out_channels` stay the per-group sizes).
struct Im2rowWeightsS8 {
  std::vector<std::int8_t> wt;  // groups x [patch, K/groups]
  float scale = 1.F;
  std::int64_t out_channels = 0;  // K/groups (per-group)
  std::int64_t patch = 0;         // (C/groups)*r*r (per-group)
  std::int64_t groups = 1;
  bool empty() const { return wt.empty(); }
};

Im2rowWeightsS8 prepare_im2row_weights_s8(const QTensor& weights, std::int64_t groups = 1);

/// im2row convolution from prepared weights; the lowered patch matrix and
/// int32 accumulators live in the calling thread's ScratchArena.
///
/// `reuse_storage`, when non-null, donates its buffer to the output tensor
/// instead of a fresh allocation — the memory planner's in-place execution.
/// It MAY alias input.data: the kernel reads the input only while lowering
/// patches (before any output byte exists) and only consumes the donated
/// vector afterwards, so out-of-place and in-place runs are bit-identical.
/// The donated vector is moved from (left empty).
QTensor im2row_conv_s8_prepared(const QTensor& input, const Im2rowWeightsS8& weights,
                                const ConvGeometry& g, float out_scale = -1.F,
                                const Tensor* bias = nullptr,
                                std::vector<std::int8_t>* reuse_storage = nullptr);

/// Winograd int8 convolution: transforms in FP32 with per-stage int8
/// requantization; Hadamard stage as t² int8 GEMMs with int32 accumulators.
/// Per-stage scales can be provided (e.g. frozen from winograd-aware
/// training); non-positive entries are derived on the fly.
///
/// Each transform-domain stage optionally carries a per-tap scale vector
/// (t*t entries, tap-major like the executors' [t*t, ...] layouts) in the
/// `*_taps` fields. An empty vector means per-tensor (the scalar field
/// rules); a non-empty vector takes precedence and its scalar field must
/// also be set positive (any representative entry) so the > 0 "is this
/// stage frozen?" predicates all over deploy keep working unchanged.
/// The output stage stays scalar — Y is pixel-domain, there is no tap axis.
struct WinogradStageScales {
  float weights_transformed = -1.F;  // U = G g Gᵀ
  float input_transformed = -1.F;    // V = Bᵀ d B
  float hadamard = -1.F;             // M = Σ_c U ⊙ V
  float output = -1.F;               // Y = Aᵀ M A
  std::vector<float> weights_transformed_taps;  // [t*t] or empty
  std::vector<float> input_transformed_taps;    // [t*t] or empty
  std::vector<float> hadamard_taps;             // [t*t] or empty
};

QTensor winograd_conv_s8(const QTensor& input, const Tensor& weights_fp32, const ConvGeometry& g,
                         const wino::Transforms& tr, const WinogradStageScales& scales = {},
                         const Tensor* bias = nullptr);

/// Input-channel block width of the fused Winograd path's GEMM layout: the
/// blocked U/V interleave groups of 4 channels per column, the granule one
/// AVX-512 `vpdpbusd` (and the scalar reference loop) consumes.
inline constexpr std::int64_t kWinoChannelBlock = 4;

/// Winograd weights transformed AND quantized once at load: U = Qx(G g Gᵀ)
/// as int8 levels [t*t, K, C] at `scale`. This is the LANCE-style
/// precomputation — per forward only the input/Hadamard/output stages run.
///
/// `u_blocked` is the same levels pre-blocked for the fused streaming
/// executor: [t*t, K, Cpad] unsigned offset-binary bytes (level + 128),
/// Cpad = C rounded up to kWinoChannelBlock, pad bytes 128 (== level 0).
/// Offset-binary is what `vpdpbusd` (unsigned x signed) needs; the GEMM
/// removes the +128 exactly (see KernelTable::gemm_u8s8_s32_k4).
/// Grouped layers store U with the per-group input width: u_q is
/// [t*t, K, C/groups] (k's group is k / (K/groups)); u_blocked pads the
/// per-group C. `in_channels` stays the per-group width so the existing
/// geometry invariants (u_q size == t²·K·in_channels) hold unchanged.
struct WinogradWeightsS8 {
  std::vector<std::int8_t> u_q;         // [t*t, K, C/groups]
  std::vector<std::uint8_t> u_blocked;  // [t*t, K, Cpad], offset-binary
  std::int64_t padded_in_channels = 0;  // Cpad = pad4(C/groups)
  float scale = 1.F;
  /// Per-tap U scales ([t*t], tap ab quantized slice [ab, :, :] of u_q).
  /// Empty = per-tensor (`scale` quantized every tap). When set, `scale`
  /// holds a representative entry (tap 0) for legacy predicates.
  std::vector<float> tap_scales;
  /// Sparse-U skip flags ([t*t] or empty = dense): tap_mask[ab] != 0 marks a
  /// tap whose entire U slice is zero (winograd_prune output), so both
  /// executors skip its Hadamard GEMM and zero-fill its M block instead —
  /// bit-identical to multiplying by the zeros, since quantize(0) == 0 and
  /// requant(0) == 0 at any scale.
  std::vector<std::uint8_t> tap_mask;
  std::int64_t out_channels = 0;
  std::int64_t in_channels = 0;  // per-group input channels
  std::int64_t groups = 1;
  std::int64_t tile = 0;
  bool empty() const { return u_q.empty(); }
};

/// (Re)build `u_blocked` from `u_q`. prepare_winograd_weights_s8 calls this;
/// it is exposed for loaders of pre-v3 `.wam` artifacts, whose prepared
/// caches carry only the flat levels.
void build_blocked_u(WinogradWeightsS8& weights);

/// Build the cached transformed weights. `scale` <= 0 derives the scale from
/// the transformed weights' abs-max (what a cold calibration would do);
/// deployment passes the frozen training-time U-stage scale. `tap_scales`,
/// when non-empty ([t*t] entries), quantizes each tap's [K, C] slice at its
/// own scale — the per-tap U cache (scale is then ignored beyond recording a
/// representative).
/// `groups` > 1 expects [K, C/groups, r, r] weights and records the grouped
/// layout. `sparse_mask`, when non-null, is the winograd_prune tap mask
/// [groups, t*t, K/groups, C/groups] (values 0/1): masked U entries are
/// zeroed BEFORE quantization and taps whose whole slice dies get a
/// tap_mask skip flag.
WinogradWeightsS8 prepare_winograd_weights_s8(const Tensor& weights_fp32,
                                              const wino::Transforms& tr, float scale = -1.F,
                                              const std::vector<float>& tap_scales = {},
                                              std::int64_t groups = 1,
                                              const Tensor* sparse_mask = nullptr);

/// Per-phase wall-clock accumulator for one Winograd conv call — the
/// kernel-level tail of a request trace (src/telemetry). When a non-null
/// accumulator is passed to winograd_conv_s8_prepared, every executor thread
/// adds its nanoseconds per phase with relaxed atomics (once per tile-block
/// on the blocked path, once per stage on the flat path), so the totals are
/// CPU-time aggregates across the OpenMP team, not wall-clock intervals.
/// A null accumulator (the default, and every untraced forward) costs
/// nothing — the executors never read the clock for it.
struct WinoPhaseNs {
  std::atomic<std::int64_t> scatter{0};  // input transform + V quantize + interleave
  std::atomic<std::int64_t> gemm{0};     // t² Hadamard GEMMs
  std::atomic<std::int64_t> requant{0};  // M int32 -> int8 fixed-point requant
  std::atomic<std::int64_t> gather{0};   // inverse transform + output quantize
  std::int64_t total() const {
    return scatter.load(std::memory_order_relaxed) + gemm.load(std::memory_order_relaxed) +
           requant.load(std::memory_order_relaxed) + gather.load(std::memory_order_relaxed);
  }
};

/// Winograd int8 convolution from cached transformed weights. Identical
/// numerics to winograd_conv_s8 with the same scales, but U is reused, the
/// input tiles are dequantized on the fly (no full fp32 copy of the
/// activation), and V / M / Y intermediates live in the ScratchArena.
///
/// `reuse_storage` as in im2row_conv_s8_prepared: an optional donated output
/// buffer that may alias input.data — the input is fully consumed by the
/// scatter stage before the output tensor is materialized.
///
/// Execution strategy: when every internal scale (input_transformed,
/// hadamard, output) is frozen and the prepared weights carry the blocked U,
/// the conv runs the fused streaming executor — per block of tiles,
/// transform -> t² blocked GEMMs -> inverse transform + requant in one loop
/// whose V/M intermediates live in an L1/L2-sized ScratchArena slab. Any
/// dynamic scale forces the flat path (deriving a scale needs the full
/// tensor's abs-max before the next stage may quantize). Both executions are
/// bit-identical; set_winograd_blocked_enabled(false) (or WA_WINO_BLOCKED=0)
/// forces flat for differential tests and benchmarks.
QTensor winograd_conv_s8_prepared(const QTensor& input, const WinogradWeightsS8& weights,
                                  const ConvGeometry& g, const wino::Transforms& tr,
                                  const WinogradStageScales& scales = {},
                                  const Tensor* bias = nullptr,
                                  std::vector<std::int8_t>* reuse_storage = nullptr,
                                  WinoPhaseNs* phase_ns = nullptr);

/// Stride-2 Winograd weights via the polyphase identity (src/winograd/
/// strided): y = Σ_st corr1(x_st, g_st) over the four parity subplanes. The
/// dense 2x2-tap phase g00 runs as a standard Winograd conv over the even/
/// even input subplane (u00, F(m,2) transforms); the three rectangular
/// phases (5 taps total: w01,w21 | w10,w12 | w11) collapse into one im2row
/// GEMM over a 5*C patch lowered straight from the original (strided) input.
/// Their int32 partials are combined in fp32 and quantized once at the
/// output scale — a single code path, so blocked/flat toggles and backend
/// pins cannot change the bytes.
struct StridedWinogradWeightsS8 {
  WinogradWeightsS8 u00;             // phase (0,0): 2x2 taps, F(m,2) Winograd
  std::vector<std::int8_t> rect_wt;  // [5*C, K]: rect-phase taps, im2row order
  float rect_scale = 1.F;
  std::int64_t out_channels = 0;
  std::int64_t in_channels = 0;
  bool empty() const { return u00.empty(); }
};

/// Build the stride-2 cache from [K, C, 3, 3] fp32 weights. `tr` must be the
/// F(m,2) transform set used for the phase-00 subplane conv. Scales <= 0
/// derive from abs-max as elsewhere.
StridedWinogradWeightsS8 prepare_strided_winograd_weights_s8(const Tensor& weights_fp32,
                                                             const wino::Transforms& tr,
                                                             float u00_scale = -1.F,
                                                             float rect_scale = -1.F);

/// Stride-2 Winograd conv from the polyphase cache. Geometry must carry
/// stride == 2, kernel == 3, groups == 1; scales are per-tensor only (the
/// strided stage predates per-tap requant). Bit-identical across backends
/// and independent of the blocked toggle by construction.
QTensor strided_winograd_conv_s8_prepared(const QTensor& input,
                                          const StridedWinogradWeightsS8& weights,
                                          const ConvGeometry& g, const wino::Transforms& tr,
                                          const WinogradStageScales& scales = {},
                                          const Tensor* bias = nullptr,
                                          std::vector<std::int8_t>* reuse_storage = nullptr);

/// Whether winograd_conv_s8_prepared may take the fused blocked path.
/// Defaults to on unless the WA_WINO_BLOCKED=0 environment override is set.
/// The setter is a testing/bench hook — like simd::set_backend, do not flip
/// it while forwards are in flight.
bool winograd_blocked_enabled();
void set_winograd_blocked_enabled(bool on);

/// Prepare-time policy for stride-2 Winograd stages: whether the polyphase
/// lowering or the strided-im2row fallback executes the stage.
/// kAuto consults strided_polyphase_profitable; the force values are the
/// bench/test hook (WA_STRIDED_POLY=0 forces im2row, =1 forces polyphase).
enum class StridedPolicy : std::uint8_t { kAuto = 0, kForceIm2row = 1, kForcePolyphase = 2 };
StridedPolicy strided_polyphase_policy();
void set_strided_polyphase_policy(StridedPolicy p);

/// Calibrated per-output-pixel cost model deciding kAuto. The polyphase
/// lowering spends ~7.25·C·K MACs per output pixel (4.41 effective in the
/// F(2,2) phase-00 sub-conv + 5·C·K rect GEMM) but pays a multi-pass fp32
/// join whose traffic scales with C+K; strided im2row spends the full
/// 9·C·K in ONE fused GEMM+requant pass. The overhead coefficient is
/// calibrated against bench/zoo_deploy (0.60x at C=K=64), putting the
/// crossover near C=K≈288 — below that the fallback wins and prepare()
/// must pick it.
bool strided_polyphase_profitable(std::int64_t in_channels, std::int64_t out_channels);

}  // namespace wa::backend
