// INT8 convolution kernels: int8 x int8 -> int32 accumulation with
// fixed-point requantization, mirroring integer inference on Arm cores.
//
// These kernels are what the Winograd-aware training in src/core makes
// possible: the quantized Winograd path matches the training-time Qx
// semantics (per-stage symmetric quantization) while the heavy Hadamard/GEMM
// stage runs entirely in int8/int32.
#pragma once

#include "backend/conv_kernels.hpp"
#include "backend/qtensor.hpp"
#include "quant/requant.hpp"

namespace wa::backend {

/// int8 GEMM: C_int32 = A_int8 [M,K] x B_int8 [K,N].
void gemm_s8_s32(std::int64_t m, std::int64_t n, std::int64_t k, const std::int8_t* a,
                 const std::int8_t* b, std::int32_t* c);

/// im2row int8 convolution. Output is int8 at `out_scale` (if > 0) or at the
/// scale implied by the float result's abs-max computed from a reference
/// int32 pass (deployment would calibrate this offline).
QTensor im2row_conv_s8(const QTensor& input, const QTensor& weights, const ConvGeometry& g,
                       float out_scale = -1.F, const Tensor* bias = nullptr);

/// Winograd int8 convolution: transforms in FP32 with per-stage int8
/// requantization; Hadamard stage as t² int8 GEMMs with int32 accumulators.
/// Per-stage scales can be provided (e.g. frozen from winograd-aware
/// training); non-positive entries are derived on the fly.
struct WinogradStageScales {
  float weights_transformed = -1.F;  // U = G g Gᵀ
  float input_transformed = -1.F;    // V = Bᵀ d B
  float hadamard = -1.F;             // M = Σ_c U ⊙ V
  float output = -1.F;               // Y = Aᵀ M A
};

QTensor winograd_conv_s8(const QTensor& input, const Tensor& weights_fp32, const ConvGeometry& g,
                         const wino::Transforms& tr, const WinogradStageScales& scales = {},
                         const Tensor* bias = nullptr);

}  // namespace wa::backend
