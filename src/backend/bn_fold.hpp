// Batch-norm folding for deployment.
//
// Every convolution in the evaluated networks is followed by a batch-norm
// (the layers carry no bias for that reason). At deployment the affine
// normalization folds into the convolution weights:
//
//   y = gamma * (conv(x, W) - mean) / sqrt(var + eps) + beta
//     = conv(x, W') + b',   W'_k = W_k * gamma_k / sqrt(var_k + eps)
//                           b'_k = beta_k - gamma_k * mean_k / sqrt(var_k + eps)
//
// Folding happens before weight quantization, so the quantizer sees the
// effective deployed weights — the standard order in integer-only inference
// pipelines (Jacob et al. 2018 §3.2).
#pragma once

#include "tensor/tensor.hpp"

namespace wa::backend {

struct FoldedConv {
  Tensor weights;  // [K, C, r, r], scaled per output channel
  Tensor bias;     // [K]
};

/// Fold batch-norm statistics into convolution weights. `bias` may be empty
/// (the usual conv-without-bias case); gamma/beta/mean/var are all [K].
/// Throws std::invalid_argument on shape mismatches.
FoldedConv fold_batchnorm(const Tensor& weights, const Tensor& bias, const Tensor& gamma,
                          const Tensor& beta, const Tensor& running_mean,
                          const Tensor& running_var, float eps = 1e-5F);

}  // namespace wa::backend
