// Hot-path instrumentation counters.
//
// The counters are cheap relaxed atomics bumped by the deployment kernels so
// tests (and benches) can assert amortisation properties that latency alone
// cannot pin down — e.g. that a prepared pipeline never recomputes
// U = G g Gᵀ after load, no matter how many forwards run.
#pragma once

#include <atomic>
#include <cstdint>

namespace wa::backend {

struct PerfCounters {
  /// Full weight-transform computations (U = G g Gᵀ over all filters of one
  /// layer). Cached-weight inference paths must keep this flat across
  /// repeated forwards.
  static std::atomic<std::uint64_t> weight_transforms;
};

inline void count_weight_transform() {
  PerfCounters::weight_transforms.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace wa::backend
