// Hot-path instrumentation counters.
//
// The counters are cheap relaxed atomics bumped by the deployment kernels so
// tests (and benches) can assert amortisation properties that latency alone
// cannot pin down — e.g. that a prepared pipeline never recomputes
// U = G g Gᵀ after load, no matter how many forwards run.
//
// Concurrency contract (audited for the serving runtime): each counter is a
// monotone relaxed atomic — concurrent bumps from any number of inference
// threads cannot tear or be lost, and no ordering is implied between
// counters. A snapshot() is therefore not a consistent cut across counters,
// but any single counter observed flat across a window proves that *no*
// thread performed that operation inside the window — which is exactly the
// property the serve tests assert while N clients hammer a loaded pipeline.
//
// These counters are also absorbed into telemetry::Registry::snapshot() as
// wa_backend_weight_transforms_total / wa_backend_weight_repacks_total, so
// the Prometheus exposition (serve::dump_metrics) covers them without the
// kernels taking a dependency on the registry.
#pragma once

#include <atomic>
#include <cstdint>

namespace wa::backend {

struct PerfCounters {
  /// Full weight-transform computations (U = G g Gᵀ over all filters of one
  /// layer). Cached-weight inference paths must keep this flat across
  /// repeated forwards.
  static std::atomic<std::uint64_t> weight_transforms;
  /// Weight-layout repacks (e.g. [O, F] -> [F, O] transposes for the GEMM
  /// kernels). A compiled pipeline pays these once at load (push/prepare);
  /// run-time forwards must keep this flat too. Loading a .wam artifact
  /// pays neither: the packed/transformed caches are part of the artifact.
  static std::atomic<std::uint64_t> weight_repacks;
};

/// Plain-value copy of all counters, for before/after flatness assertions.
struct PerfSnapshot {
  std::uint64_t weight_transforms = 0;
  std::uint64_t weight_repacks = 0;

  friend bool operator==(const PerfSnapshot&, const PerfSnapshot&) = default;
};

inline PerfSnapshot snapshot_counters() {
  PerfSnapshot s;
  s.weight_transforms = PerfCounters::weight_transforms.load(std::memory_order_relaxed);
  s.weight_repacks = PerfCounters::weight_repacks.load(std::memory_order_relaxed);
  return s;
}

inline void count_weight_transform() {
  PerfCounters::weight_transforms.fetch_add(1, std::memory_order_relaxed);
}

inline void count_weight_repack() {
  PerfCounters::weight_repacks.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace wa::backend
