// Hot-path instrumentation counters.
//
// The counters are cheap relaxed atomics bumped by the deployment kernels so
// tests (and benches) can assert amortisation properties that latency alone
// cannot pin down — e.g. that a prepared pipeline never recomputes
// U = G g Gᵀ after load, no matter how many forwards run.
#pragma once

#include <atomic>
#include <cstdint>

namespace wa::backend {

struct PerfCounters {
  /// Full weight-transform computations (U = G g Gᵀ over all filters of one
  /// layer). Cached-weight inference paths must keep this flat across
  /// repeated forwards.
  static std::atomic<std::uint64_t> weight_transforms;
  /// Weight-layout repacks (e.g. [O, F] -> [F, O] transposes for the GEMM
  /// kernels). A compiled pipeline pays these once at load (push/prepare);
  /// run-time forwards must keep this flat too.
  static std::atomic<std::uint64_t> weight_repacks;
};

inline void count_weight_transform() {
  PerfCounters::weight_transforms.fetch_add(1, std::memory_order_relaxed);
}

inline void count_weight_repack() {
  PerfCounters::weight_repacks.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace wa::backend
