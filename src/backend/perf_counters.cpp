#include "backend/perf_counters.hpp"

namespace wa::backend {

std::atomic<std::uint64_t> PerfCounters::weight_transforms{0};
std::atomic<std::uint64_t> PerfCounters::weight_repacks{0};

}  // namespace wa::backend
