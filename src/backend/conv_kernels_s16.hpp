// INT16 convolution kernels: int16 x int16 -> int64 accumulation with
// floating-point requantization.
//
// The paper's INT16 story stops at training: "INT16 measurements are not
// currently supported in Arm Compute Library" (§5.3), so Table 3 has no
// INT16 latency column even though Fig. 4 shows INT16 accuracy and wiNAS-Q
// searches over INT16 candidates. These kernels provide the missing
// deployment path in this repo's backend. int16 products need up to 30 bits
// and channel summation overflows int32 for realistic reduction depths, so
// accumulation is int64 (production int16 paths on Arm use SMLAL to 64-bit
// accumulators for the same reason).
#pragma once

#include "backend/conv_kernels.hpp"
#include "backend/qtensor16.hpp"

namespace wa::backend {

/// int16 GEMM: C_int64 = A_int16 [M,K] x B_int16 [K,N].
void gemm_s16_s64(std::int64_t m, std::int64_t n, std::int64_t k, const std::int16_t* a,
                  const std::int16_t* b, std::int64_t* c);

/// im2row int16 convolution. Output is int16 at `out_scale` (if > 0) or at
/// the scale implied by the accumulator abs-max.
QTensor16 im2row_conv_s16(const QTensor16& input, const QTensor16& weights,
                          const ConvGeometry& g, float out_scale = -1.F);

/// Per-stage requantization scales for the INT16 Winograd pipeline,
/// mirroring WinogradStageScales for int8. Non-positive entries are derived
/// on the fly from the tensor's abs-max.
struct WinogradStageScales16 {
  float weights_transformed = -1.F;  // U = G g Gᵀ
  float input_transformed = -1.F;    // V = Bᵀ d B
  float hadamard = -1.F;             // M = Σ_c U ⊙ V
  float output = -1.F;               // Y = Aᵀ M A
};

/// Winograd int16 convolution: transforms in FP32 with per-stage int16
/// requantization; Hadamard stage as t² int16 GEMMs with int64 accumulators.
QTensor16 winograd_conv_s16(const QTensor16& input, const Tensor& weights_fp32,
                            const ConvGeometry& g, const wino::Transforms& tr,
                            const WinogradStageScales16& scales = {});

}  // namespace wa::backend
