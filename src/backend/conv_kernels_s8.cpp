#include "backend/conv_kernels_s8.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <vector>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "backend/perf_counters.hpp"
#include "backend/simd/kernel_table.hpp"
#include "tensor/arena.hpp"

namespace wa::backend {

void gemm_s8_s32(std::int64_t m, std::int64_t n, std::int64_t k, const std::int8_t* a,
                 const std::int8_t* b, std::int32_t* c) {
  simd::kernels().gemm_s8_s32(m, n, k, a, b, c);
}

namespace {

std::int8_t clamp_s8(float v) {
  return static_cast<std::int8_t>(std::min(127.F, std::max(-127.F, std::nearbyint(v))));
}

// Run a flat per-element kernel over [0, total) in parallel chunks. The
// dispatched kernels (quantize_f32_s8, requant_s32_s8) are elementwise, so
// chunking is free; the chunk size just amortizes dispatch overhead while
// leaving enough pieces for the OpenMP team.
template <typename Fn>
void parallel_flat(std::int64_t total, Fn&& fn) {
  constexpr std::int64_t kChunk = 1 << 14;
  const std::int64_t chunks = (total + kChunk - 1) / kChunk;
#pragma omp parallel for schedule(static) if (chunks >= 2)
  for (std::int64_t c = 0; c < chunks; ++c) {
    const std::int64_t begin = c * kChunk;
    fn(begin, std::min(kChunk, total - begin));
  }
}

/// Donate `reuse` (possibly the input's own storage — the caller guarantees
/// the input is no longer read) into the output buffer of `n` elements. When
/// the donated capacity covers n the buffer is reused outright; when the
/// output is larger the donation is released FIRST, so the dying input and
/// the fresh output never coexist (the planner's grow-donation: peak memory
/// sees max(in, out), not in + out). The kernels overwrite all n elements,
/// so donated and fresh buffers produce identical bytes.
std::vector<std::int8_t> take_output_storage(std::vector<std::int8_t>* reuse, std::int64_t n) {
  std::vector<std::int8_t> out;
  if (reuse != nullptr) {
    if (reuse->capacity() >= static_cast<std::size_t>(n)) {
      out = std::move(*reuse);
    } else {
      std::vector<std::int8_t>().swap(*reuse);  // free before the grow
    }
  }
  out.resize(static_cast<std::size_t>(n));
  return out;
}

}  // namespace

Im2rowWeightsS8 prepare_im2row_weights_s8(const QTensor& weights, std::int64_t groups) {
  if (weights.shape.empty()) throw std::invalid_argument("prepare_im2row_weights_s8: empty weights");
  const std::int64_t k_total = weights.shape[0];
  if (groups < 1 || k_total % groups != 0) {
    throw std::invalid_argument("prepare_im2row_weights_s8: groups must divide out channels");
  }
  count_weight_repack();
  Im2rowWeightsS8 w;
  w.groups = groups;
  w.out_channels = k_total / groups;                 // per-group K
  w.patch = weights.numel() / k_total;               // (C/g)*r*r — already per-group
  w.scale = weights.scale;
  // Each group's [patch, K/g] operand is contiguous; groups == 1 reproduces
  // the ungrouped [patch, K] repack byte for byte.
  w.wt.resize(static_cast<std::size_t>(groups * w.patch * w.out_channels));
  for (std::int64_t gi = 0; gi < groups; ++gi) {
    std::int8_t* dst = w.wt.data() + gi * w.patch * w.out_channels;
    for (std::int64_t k = 0; k < w.out_channels; ++k)
      for (std::int64_t p = 0; p < w.patch; ++p)
        dst[p * w.out_channels + k] =
            weights.data[static_cast<std::size_t>((gi * w.out_channels + k) * w.patch + p)];
  }
  return w;
}

QTensor im2row_conv_s8(const QTensor& input, const QTensor& weights, const ConvGeometry& g,
                       float out_scale, const Tensor* bias) {
  return im2row_conv_s8_prepared(input, prepare_im2row_weights_s8(weights, g.groups), g,
                                 out_scale, bias);
}

QTensor im2row_conv_s8_prepared(const QTensor& input, const Im2rowWeightsS8& weights,
                                const ConvGeometry& g, float out_scale, const Tensor* bias,
                                std::vector<std::int8_t>* reuse_storage) {
  g.validate();
  const std::int64_t gs = g.groups;
  const std::int64_t cg = g.in_channels / gs;   // channels per group
  const std::int64_t kg = g.out_channels / gs;  // filters per group
  const std::int64_t patch = cg * g.kernel * g.kernel;
  if (weights.patch != patch || weights.out_channels != kg || weights.groups != gs) {
    throw std::invalid_argument("im2row_conv_s8: prepared weights do not match geometry");
  }
  const std::int64_t oh = g.out_height(), ow = g.out_width();
  const std::int64_t rows = g.batch * oh * ow;
  if (input.shape != Shape{g.batch, g.in_channels, g.height, g.width}) {
    throw std::invalid_argument("im2row_conv_s8: input shape " + to_string(input.shape) +
                                " does not match geometry");
  }

  ScratchArena& arena = ScratchArena::for_thread();
  ScratchArena::Scope frame(arena);

  // Lower patches directly in int8 (zero padding stays zero-level: symmetric
  // quantization has no zero-point offset). Each group gets its own [rows,
  // patch] matrix so the per-group GEMM below reads one contiguous operand;
  // groups == 1 is the classic single-matrix lowering unchanged.
  std::int8_t* lowered = arena.alloc<std::int8_t>(gs * rows * patch);
#pragma omp parallel for collapse(2) schedule(static)
  for (std::int64_t n = 0; n < g.batch; ++n) {
    for (std::int64_t i = 0; i < oh; ++i) {
      for (std::int64_t j = 0; j < ow; ++j) {
        for (std::int64_t gi = 0; gi < gs; ++gi) {
          std::int8_t* dst = lowered + gi * rows * patch + ((n * oh + i) * ow + j) * patch;
          for (std::int64_t c = gi * cg; c < (gi + 1) * cg; ++c) {
            for (std::int64_t fi = 0; fi < g.kernel; ++fi) {
              const std::int64_t ii = i * g.stride + fi - g.pad;
              for (std::int64_t fj = 0; fj < g.kernel; ++fj) {
                const std::int64_t jj = j * g.stride + fj - g.pad;
                *dst++ = (ii >= 0 && ii < g.height && jj >= 0 && jj < g.width)
                             ? input.data[static_cast<std::size_t>(
                                   ((n * g.in_channels + c) * g.height + ii) * g.width + jj)]
                             : std::int8_t{0};
              }
            }
          }
        }
      }
    }
  }

  // acc is [g][rows, K/g]; for groups == 1 that is the familiar [rows, K].
  std::int32_t* acc = arena.alloc<std::int32_t>(rows * g.out_channels);
  for (std::int64_t gi = 0; gi < gs; ++gi) {
    gemm_s8_s32(rows, kg, patch, lowered + gi * rows * patch,
                weights.wt.data() + gi * patch * kg, acc + gi * rows * kg);
  }

  // Requantize to int8 with a fixed-point multiplier. A bias, when present,
  // joins the accumulators as int32 levels at the accumulator scale
  // (Jacob et al. 2018: bias is quantized at s_in * s_w).
  const float acc_scale = input.scale * weights.scale;
  if (bias != nullptr && !bias->empty()) {
    if (bias->numel() != g.out_channels) {
      throw std::invalid_argument("im2row_conv_s8: bias/channel mismatch");
    }
    for (std::int64_t gi = 0; gi < gs; ++gi) {
      std::int32_t* gacc = acc + gi * rows * kg;
#pragma omp parallel for schedule(static)
      for (std::int64_t row = 0; row < rows; ++row) {
        std::int32_t* arow = gacc + row * kg;
        for (std::int64_t k = 0; k < kg; ++k) {
          arow[k] += static_cast<std::int32_t>(std::nearbyint(bias->at(gi * kg + k) / acc_scale));
        }
      }
    }
  }
  float oscale = out_scale;
  if (oscale <= 0.F) {
    std::int32_t amax = 0;
    for (std::int64_t i = 0; i < rows * g.out_channels; ++i) amax = std::max(amax, std::abs(acc[i]));
    oscale = std::max(acc_scale * static_cast<float>(amax), 1e-12F) / 127.F;
  }
  const auto mult = quant::quantize_multiplier(static_cast<double>(acc_scale) / oscale);

  // Requantize the accumulators flat (the dispatched fixed-point loop), then
  // transpose the int8 result per group [rows, K/g] -> [N, K, oh, ow]. Two
  // passes move a quarter of the bytes the old fused int32 transpose-requant
  // touched.
  const auto& kt = simd::kernels();
  std::int8_t* q8 = arena.alloc<std::int8_t>(rows * g.out_channels);
  parallel_flat(rows * g.out_channels, [&](std::int64_t begin, std::int64_t len) {
    kt.requant_s32_s8(acc + begin, q8 + begin, len, mult);
  });

  QTensor out;
  out.shape = Shape{g.batch, g.out_channels, oh, ow};
  out.scale = oscale;
  // The input was fully consumed by the patch lowering above, so a donated
  // buffer aliasing it is safe to take over here.
  out.data = take_output_storage(reuse_storage, rows * g.out_channels);
  for (std::int64_t gi = 0; gi < gs; ++gi) {
    const std::int8_t* gq8 = q8 + gi * rows * kg;
#pragma omp parallel for collapse(2) schedule(static)
    for (std::int64_t n = 0; n < g.batch; ++n) {
      for (std::int64_t i = 0; i < oh; ++i) {
        for (std::int64_t j = 0; j < ow; ++j) {
          const std::int8_t* src = gq8 + ((n * oh + i) * ow + j) * kg;
          for (std::int64_t k = 0; k < kg; ++k) {
            out.data[static_cast<std::size_t>(
                ((n * g.out_channels + gi * kg + k) * oh + i) * ow + j)] = src[k];
          }
        }
      }
    }
  }
  return out;
}

void build_blocked_u(WinogradWeightsS8& w) {
  const std::int64_t t2 = w.tile * w.tile, K = w.out_channels, C = w.in_channels;
  const std::int64_t cpad =
      (C + kWinoChannelBlock - 1) / kWinoChannelBlock * kWinoChannelBlock;
  w.padded_in_channels = cpad;
  // 128 is offset-binary zero, so pad channels drop out of the GEMM exactly.
  w.u_blocked.assign(static_cast<std::size_t>(t2 * K * cpad), std::uint8_t{128});
  for (std::int64_t abk = 0; abk < t2 * K; ++abk) {
    const std::int8_t* src = w.u_q.data() + abk * C;
    std::uint8_t* dst = w.u_blocked.data() + abk * cpad;
    for (std::int64_t c = 0; c < C; ++c) {
      dst[c] = static_cast<std::uint8_t>(static_cast<std::int32_t>(src[c]) + 128);
    }
  }
}

WinogradWeightsS8 prepare_winograd_weights_s8(const Tensor& weights_fp32,
                                              const wino::Transforms& tr, float scale,
                                              const std::vector<float>& tap_scales,
                                              std::int64_t groups, const Tensor* sparse_mask) {
  // U in FP32, then int8 — at one per-layer scale (the legacy training-time
  // Qx) or, when `tap_scales` is given, each tap's [K, C] slice at its own
  // scale (the per-tap Qx the F4/F6 QAT trains against). Grouped weights
  // arrive as [K, C/g, r, r]; the transform is per (k, c) plane, so the same
  // [t*t, K, C/g] layout falls out with no group-aware code.
  const Tensor u_f = winograd_transform_weights(weights_fp32, tr);  // [t*t, K, C/g]
  WinogradWeightsS8 w;
  w.out_channels = weights_fp32.size(0);
  w.in_channels = weights_fp32.size(1);
  if (groups < 1 || w.out_channels % groups != 0) {
    throw std::invalid_argument("prepare_winograd_weights_s8: groups must divide out channels");
  }
  w.groups = groups;
  w.tile = tr.tile;
  w.u_q.resize(static_cast<std::size_t>(u_f.numel()));
  if (!tap_scales.empty()) {
    const std::int64_t t2 = w.tile * w.tile;
    if (static_cast<std::int64_t>(tap_scales.size()) != t2) {
      throw std::invalid_argument("prepare_winograd_weights_s8: " +
                                  std::to_string(tap_scales.size()) + " tap scales for a t*t of " +
                                  std::to_string(t2));
    }
    for (const float s : tap_scales) {
      if (s <= 0.F) {
        throw std::invalid_argument("prepare_winograd_weights_s8: tap scales must be positive");
      }
    }
    w.tap_scales = tap_scales;
    w.scale = tap_scales.front();  // representative for legacy predicates
    const std::int64_t kc = w.out_channels * w.in_channels;
    for (std::int64_t ab = 0; ab < t2; ++ab) {
      const float s = tap_scales[static_cast<std::size_t>(ab)];
      for (std::int64_t i = 0; i < kc; ++i) {
        w.u_q[static_cast<std::size_t>(ab * kc + i)] = clamp_s8(u_f.at(ab * kc + i) / s);
      }
    }
  } else {
    w.scale = scale > 0.F ? scale : quant::scale_for(u_f.abs_max(), quant::QuantSpec{8});
    for (std::int64_t i = 0; i < u_f.numel(); ++i) {
      w.u_q[static_cast<std::size_t>(i)] = clamp_s8(u_f.at(i) / w.scale);
    }
  }
  if (sparse_mask != nullptr && !sparse_mask->empty()) {
    // winograd_prune mask [groups, t*t, K/g, C/g]: zero the pruned U levels
    // (bit-identical to pruning before the transform quantized — Qx(0) == 0),
    // then flag taps whose whole slice died so the executors skip their GEMM.
    const std::int64_t t2 = w.tile * w.tile;
    const std::int64_t kpg = w.out_channels / groups, c = w.in_channels;
    if (sparse_mask->dim() != 4 || sparse_mask->size(0) != groups ||
        sparse_mask->size(1) != t2 || sparse_mask->size(2) != kpg || sparse_mask->size(3) != c) {
      throw std::invalid_argument("prepare_winograd_weights_s8: sparse mask shape " +
                                  to_string(sparse_mask->shape()) + " does not match U");
    }
    for (std::int64_t gi = 0; gi < groups; ++gi) {
      for (std::int64_t ab = 0; ab < t2; ++ab) {
        for (std::int64_t k = 0; k < kpg; ++k) {
          for (std::int64_t ci = 0; ci < c; ++ci) {
            if (sparse_mask->at(((gi * t2 + ab) * kpg + k) * c + ci) == 0.F) {
              w.u_q[static_cast<std::size_t>((ab * w.out_channels + gi * kpg + k) * c + ci)] = 0;
            }
          }
        }
      }
    }
    std::vector<std::uint8_t> mask(static_cast<std::size_t>(t2), 0);
    bool any = false;
    const std::int64_t kc = w.out_channels * c;
    for (std::int64_t ab = 0; ab < t2; ++ab) {
      bool dead = true;
      for (std::int64_t i = 0; i < kc && dead; ++i) {
        dead = w.u_q[static_cast<std::size_t>(ab * kc + i)] == 0;
      }
      if (dead) {
        mask[static_cast<std::size_t>(ab)] = 1;
        any = true;
      }
    }
    if (any) w.tap_mask = std::move(mask);  // empty == dense, nothing to skip
  }
  build_blocked_u(w);
  return w;
}

namespace {

std::atomic<bool> g_wino_blocked{[] {
  const char* env = std::getenv("WA_WINO_BLOCKED");
  return env == nullptr || std::string(env) != "0";
}()};

}  // namespace

bool winograd_blocked_enabled() { return g_wino_blocked.load(std::memory_order_relaxed); }
void set_winograd_blocked_enabled(bool on) {
  g_wino_blocked.store(on, std::memory_order_relaxed);
}

namespace {

std::atomic<StridedPolicy> g_strided_policy{[] {
  const char* env = std::getenv("WA_STRIDED_POLY");
  if (env == nullptr) return StridedPolicy::kAuto;
  return std::string(env) == "0" ? StridedPolicy::kForceIm2row
         : std::string(env) == "1" ? StridedPolicy::kForcePolyphase
                                   : StridedPolicy::kAuto;
}()};

}  // namespace

StridedPolicy strided_polyphase_policy() {
  return g_strided_policy.load(std::memory_order_relaxed);
}
void set_strided_polyphase_policy(StridedPolicy p) {
  g_strided_policy.store(p, std::memory_order_relaxed);
}

bool strided_polyphase_profitable(std::int64_t in_channels, std::int64_t out_channels) {
  const double c = static_cast<double>(in_channels);
  const double k = static_cast<double>(out_channels);
  // Per-output-pixel cost units (one int8 MAC ≈ 1). Polyphase: 2.25·C·K in
  // the F(2,2) phase-00 sub-conv (4 taps over a quarter-res plane scaled
  // back up) + 5·C·K rect GEMM + the fp32 scatter/join passes, whose
  // traffic is linear in C and K. Im2row: 9·C·K in one fused pass plus the
  // patch lowering. kJoinOverhead is calibrated so the model reproduces the
  // measured 0.60x at C=K=64 (bench/zoo_deploy); crossover lands at
  // C=K≈288.
  constexpr double kJoinOverhead = 256.0;
  const double poly = 7.25 * c * k + kJoinOverhead * (c + k);
  const double im2row = 9.0 * c * k + 9.0 * c;
  return poly < im2row;
}

QTensor winograd_conv_s8(const QTensor& input, const Tensor& weights_fp32, const ConvGeometry& g,
                         const wino::Transforms& tr, const WinogradStageScales& scales,
                         const Tensor* bias) {
  return winograd_conv_s8_prepared(
      input,
      prepare_winograd_weights_s8(weights_fp32, tr, scales.weights_transformed,
                                  scales.weights_transformed_taps, g.groups),
      g, tr, scales, bias);
}

namespace {

// The fused streaming executor: per (batch element, block of consecutive
// tiles), run input transform -> t² blocked GEMMs -> requant -> inverse
// transform + output quantization as one loop. The V and M intermediates for
// one block live in a ScratchArena slab sized to stay L1/L2-resident instead
// of the flat path's full arena tensors — the only traffic proportional to
// the whole tensor is the input read and the int8 output write.
//
// Bit-exactness with the flat path (the differential fuzzer's contract):
//   - every per-tile fp32 transform is tile-local, so splitting tiles into
//     blocks computes the identical floats;
//   - quantize/requant are elementwise with the same scales (all frozen here
//     — a dynamic scale needs a whole-tensor abs-max and forces flat);
//   - the Hadamard sums are int32-exact for any channel/summation order, and
//     pad channels are offset-binary 128 == level 0 (they drop out exactly).
//
// Interleave four nt-long int8 rows into the k4 GEMM's native operand layout
// (dst[idx*4 + lane] = row_lane[idx]). A pure byte shuffle — any
// implementation produces identical bytes — so the SSE2 4x16 transpose needs
// no dispatch-table entry; baseline x86-64 always has it.
void interleave_k4(const std::int8_t* r0, const std::int8_t* r1, const std::int8_t* r2,
                   const std::int8_t* r3, std::int8_t* dst, std::int64_t nt) {
  std::int64_t idx = 0;
#if defined(__SSE2__)
  for (; idx + 16 <= nt; idx += 16) {
    const __m128i a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(r0 + idx));
    const __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(r1 + idx));
    const __m128i c = _mm_loadu_si128(reinterpret_cast<const __m128i*>(r2 + idx));
    const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(r3 + idx));
    const __m128i ab_lo = _mm_unpacklo_epi8(a, b);  // a0 b0 a1 b1 ..
    const __m128i ab_hi = _mm_unpackhi_epi8(a, b);
    const __m128i cd_lo = _mm_unpacklo_epi8(c, d);
    const __m128i cd_hi = _mm_unpackhi_epi8(c, d);
    std::int8_t* out = dst + idx * 4;
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out), _mm_unpacklo_epi16(ab_lo, cd_lo));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16), _mm_unpackhi_epi16(ab_lo, cd_lo));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 32), _mm_unpacklo_epi16(ab_hi, cd_hi));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 48), _mm_unpackhi_epi16(ab_hi, cd_hi));
  }
#endif
  for (; idx < nt; ++idx) {
    dst[idx * 4 + 0] = r0[idx];
    dst[idx * 4 + 1] = r1[idx];
    dst[idx * 4 + 2] = r2[idx];
    dst[idx * 4 + 3] = r3[idx];
  }
}

// Caller guarantees (winograd_conv_s8_prepared): geometry/scale validation
// passed, all of sv/sm/so frozen, u_blocked built.
QTensor winograd_conv_s8_blocked(const QTensor& input, const WinogradWeightsS8& weights,
                                 const ConvGeometry& g, const wino::Transforms& tr,
                                 const WinogradStageScales& scales, const Tensor* bias,
                                 std::vector<std::int8_t>* reuse_storage,
                                 WinoPhaseNs* phase_ns) {
  const std::int64_t oh = g.out_height(), ow = g.out_width();
  const std::int64_t t = tr.tile, m = tr.m, t2 = t * t;
  const std::int64_t th = (oh + m - 1) / m, tw = (ow + m - 1) / m;
  const std::int64_t tiles_pp = th * tw;  // tiles per plane
  const std::int64_t C = g.in_channels, K = g.out_channels;
  const std::int64_t gs = weights.groups;
  const std::int64_t cg = weights.in_channels;   // channels per group
  const std::int64_t kg = K / gs;                // filters per group
  const std::int64_t cpad = weights.padded_in_channels;  // pad4(C/g)
  const std::int64_t cq = cpad / kWinoChannelBlock;
  const std::uint8_t* tap_mask = weights.tap_mask.empty() ? nullptr : weights.tap_mask.data();

  const float su = weights.scale;
  const float sv = scales.input_transformed;
  const float sm = scales.hadamard;
  const float so = scales.output;
  // Scale arithmetic replayed exactly as the flat path computes it (float
  // product, double ratio) so the fixed-point multiplier is bit-identical.
  const float m_acc_scale = su * sv;
  const auto m_mult = quant::quantize_multiplier(static_cast<double>(m_acc_scale) / sm);
  const float in_scale = input.scale;
  const float v_inv = 1.F / sv;
  const float o_inv = 1.F / so;

  // Per-tap tables. The gather always consumes a t²-long M-scale array (splat
  // when per-tensor); the V quantize and requant switch to per-tap sweeps only
  // when some stage actually carries a tap vector, so legacy layers keep the
  // exact single-sweep call sequence (and bytes) they had before.
  const bool per_tap = !weights.tap_scales.empty() || !scales.input_transformed_taps.empty() ||
                       !scales.hadamard_taps.empty();
  std::vector<float> sm_taps = scales.hadamard_taps.empty()
                                   ? std::vector<float>(static_cast<std::size_t>(t2), sm)
                                   : scales.hadamard_taps;
  std::vector<float> v_inv_taps;
  std::vector<quant::FixedPointMultiplier> m_mults;
  if (per_tap) {
    const std::vector<float> su_taps =
        weights.tap_scales.empty() ? std::vector<float>(static_cast<std::size_t>(t2), su)
                                   : weights.tap_scales;
    const std::vector<float> sv_taps =
        scales.input_transformed_taps.empty()
            ? std::vector<float>(static_cast<std::size_t>(t2), sv)
            : scales.input_transformed_taps;
    v_inv_taps.resize(static_cast<std::size_t>(t2));
    m_mults.resize(static_cast<std::size_t>(t2));
    for (std::int64_t ab = 0; ab < t2; ++ab) {
      const auto i = static_cast<std::size_t>(ab);
      v_inv_taps[i] = 1.F / sv_taps[i];
      // Same float-product / double-ratio replay as the scalar multiplier.
      m_mults[i] = quant::quantize_multiplier(
          static_cast<double>(su_taps[i] * sv_taps[i]) / sm_taps[i]);
    }
  }

  const bool has_bias = bias != nullptr && !bias->empty();
  if (has_bias && bias->numel() != g.out_channels) {
    throw std::invalid_argument("winograd_conv_s8: bias/channel mismatch");
  }

  // Tile-block width: as many tiles as keep the slab (V fp32/int8/blocked +
  // M int32/int8) around the L2 budget, in multiples of the 16-column GEMM
  // width, capped so small shapes still form one block.
  constexpr std::int64_t kSlabBudget = std::int64_t{384} << 10;
  const std::int64_t per_tile = t2 * (4 + kWinoChannelBlock + gs * cpad + 5 * K);
  std::int64_t tb = kSlabBudget / std::max<std::int64_t>(per_tile, 1);
  tb = std::min<std::int64_t>(tb, 64);
  tb = (tb / 16) * 16;
  if (tb < 16) tb = 16;
  tb = std::min(tb, tiles_pp);

  const std::int64_t out_numel = g.batch * K * oh * ow;
  QTensor out;
  out.shape = Shape{g.batch, K, oh, ow};
  out.scale = so;

  ScratchArena& arena = ScratchArena::for_thread();
  ScratchArena::Scope frame(arena);
  // With a donated buffer (which may alias input.data) the output is staged
  // in the arena and the donation is consumed only after every input read —
  // the same "fully consume, then take over" contract as the flat path, so
  // the planner's donation accounting holds unchanged.
  std::int8_t* stage = nullptr;
  if (reuse_storage != nullptr) {
    stage = arena.alloc<std::int8_t>(out_numel);
  } else {
    out.data.resize(static_cast<std::size_t>(out_numel));
    stage = out.data.data();
  }

  const std::int64_t nblocks = (tiles_pp + tb - 1) / tb;
  const std::int8_t* in_base = input.data.data();
  const std::uint8_t* ub = weights.u_blocked.data();
  const auto& kt = simd::kernels();

#pragma omp parallel for collapse(2) schedule(static)
  for (std::int64_t n = 0; n < g.batch; ++n) {
    for (std::int64_t blk = 0; blk < nblocks; ++blk) {
      ScratchArena& slab = ScratchArena::for_thread();
      ScratchArena::Scope block_frame(slab);
      const std::int64_t tile0 = blk * tb;
      const std::int64_t nt = std::min(tb, tiles_pp - tile0);
      // Per-phase timing, only for traced forwards (phase_ns non-null): two
      // thread-local clock reads per phase per block, accumulated locally
      // and added to the shared counters once at the end of the block.
      const bool timed = phase_ns != nullptr;
      std::int64_t ns_scatter = 0, ns_gemm = 0, ns_requant = 0, ns_gather = 0;
      auto t_prev = timed ? std::chrono::steady_clock::now()
                          : std::chrono::steady_clock::time_point{};
      const auto phase_mark = [&](std::int64_t& acc) {
        if (!timed) return;
        const auto t = std::chrono::steady_clock::now();
        acc += std::chrono::duration_cast<std::chrono::nanoseconds>(t - t_prev).count();
        t_prev = t;
      };
      float* v_f = slab.alloc<float>(t2 * nt);
      std::int8_t* v_q4 = slab.alloc<std::int8_t>(kWinoChannelBlock * t2 * nt);
      std::int8_t* v_blk = slab.alloc<std::int8_t>(t2 * gs * cpad * nt);
      std::int32_t* m_acc = slab.alloc<std::int32_t>(t2 * K * nt);
      std::int8_t* m_q = slab.alloc<std::int8_t>(t2 * K * nt);

      // Input transform + V quantization + k4 interleave, one channel group
      // at a time: V for this block only ever holds 4 * t² * nt values. The
      // four planar lane rows are transposed into the GEMM layout together.
      // Grouped layers block each conv group independently (pad lanes at each
      // group's channel tail), laid group-major per tap so every group GEMM
      // reads one contiguous [cq] run: v_blk is [t², gs, cq, nt, 4].
      for (std::int64_t gi = 0; gi < gs; ++gi) {
        for (std::int64_t cb = 0; cb < cq; ++cb) {
          for (std::int64_t lane = 0; lane < kWinoChannelBlock; ++lane) {
            const std::int64_t cl = cb * kWinoChannelBlock + lane;  // within the group
            std::int8_t* vrow = v_q4 + lane * t2 * nt;
            if (cl >= cg) {
              // Pad lane: level 0 everywhere. Its GEMM contribution cancels
              // for any value; zero keeps the bytes deterministic.
              std::memset(vrow, 0, static_cast<std::size_t>(t2 * nt));
              continue;
            }
            const std::int64_t c = gi * cg + cl;
            const std::int8_t* plane = in_base + (n * C + c) * g.height * g.width;
            kt.wino_scatter_block_f32(plane, g.height, g.width, g.pad, in_scale, tr.bt_mat.raw(),
                                      t, m, th, tw, tile0, nt, v_f, nt);
            if (per_tap) {
              // v_f is tap-major ([t², nt] for this lane): each tap's nt run
              // quantizes at its own scale, with the tap loop inside the
              // backend TU (nt is short — per-call dispatch would dominate).
              kt.quantize_f32_s8_taps(v_f, vrow, t2, nt, v_inv_taps.data());
            } else {
              kt.quantize_f32_s8(v_f, vrow, t2 * nt, v_inv);
            }
          }
          for (std::int64_t ab = 0; ab < t2; ++ab) {
            interleave_k4(v_q4 + ab * nt, v_q4 + t2 * nt + ab * nt, v_q4 + 2 * t2 * nt + ab * nt,
                          v_q4 + 3 * t2 * nt + ab * nt,
                          v_blk + ((ab * gs + gi) * cq + cb) * nt * 4, nt);
          }
        }
      }
      phase_mark(ns_scatter);

      // Hadamard: per tap, one K x nt GEMM per conv group against the
      // pre-blocked U (group gi's filters are rows [gi*kg, gi*kg+kg) of the
      // tap's U slice). A pruned tap (sparse-U skip flag) zero-fills its M
      // block instead — exactly what GEMM against the all-zero slice returns.
      for (std::int64_t ab = 0; ab < t2; ++ab) {
        if (tap_mask != nullptr && tap_mask[ab] != 0) {
          std::memset(m_acc + ab * K * nt, 0, static_cast<std::size_t>(K * nt) * sizeof(std::int32_t));
          continue;
        }
        for (std::int64_t gi = 0; gi < gs; ++gi) {
          kt.gemm_u8s8_s32_k4(kg, nt, cpad, ub + (ab * K + gi * kg) * cpad,
                              v_blk + (ab * gs + gi) * cq * nt * 4,
                              m_acc + (ab * K + gi * kg) * nt);
        }
      }
      phase_mark(ns_gemm);
      if (per_tap) {
        // m_acc is tap-major ([t², K, nt]), so the per-tap requant is one
        // contiguous K*nt block per multiplier-table entry.
        kt.requant_s32_s8_taps(m_acc, m_q, t2, K * nt, m_mults.data());
      } else {
        kt.requant_s32_s8(m_acc, m_q, t2 * K * nt, m_mult);
      }
      phase_mark(ns_requant);

      // Inverse transform with the output quantization fused in, straight to
      // the int8 plane (edge tiles clipped inside the kernel).
      for (std::int64_t k = 0; k < K; ++k) {
        const float bv = has_bias ? bias->at(k) : 0.F;
        kt.wino_gather_q_s8(m_q + k * nt, K * nt, sm_taps.data(), tr.at_mat.raw(), t, m, th, tw,
                            tile0, nt, oh, ow, bv, o_inv, stage + (n * K + k) * oh * ow);
      }
      phase_mark(ns_gather);
      if (timed) {
        phase_ns->scatter.fetch_add(ns_scatter, std::memory_order_relaxed);
        phase_ns->gemm.fetch_add(ns_gemm, std::memory_order_relaxed);
        phase_ns->requant.fetch_add(ns_requant, std::memory_order_relaxed);
        phase_ns->gather.fetch_add(ns_gather, std::memory_order_relaxed);
      }
    }
  }

  if (reuse_storage != nullptr) {
    // Every input byte has been read; take over (or free-then-grow) the
    // donated buffer exactly like the flat path, then land the staged bytes.
    out.data = take_output_storage(reuse_storage, out_numel);
    std::memcpy(out.data.data(), stage, static_cast<std::size_t>(out_numel));
  }
  return out;
}

}  // namespace

QTensor winograd_conv_s8_prepared(const QTensor& input, const WinogradWeightsS8& weights,
                                  const ConvGeometry& g, const wino::Transforms& tr,
                                  const WinogradStageScales& scales, const Tensor* bias,
                                  std::vector<std::int8_t>* reuse_storage,
                                  WinoPhaseNs* phase_ns) {
  g.validate();
  if (g.stride != 1) {
    throw std::invalid_argument(
        "winograd_conv_s8: stride must be 1 (strided layers take the polyphase path)");
  }
  if (g.kernel != tr.r) throw std::invalid_argument("winograd_conv_s8: kernel != transform r");
  if (weights.out_channels != g.out_channels || weights.groups != g.groups ||
      weights.in_channels * g.groups != g.in_channels || weights.tile != tr.tile) {
    throw std::invalid_argument("winograd_conv_s8: prepared weights do not match geometry");
  }
  if (input.shape != Shape{g.batch, g.in_channels, g.height, g.width}) {
    throw std::invalid_argument("winograd_conv_s8: input shape " + to_string(input.shape) +
                                " does not match geometry");
  }
  const std::int64_t t2v = tr.tile * tr.tile;
  const auto check_taps = [&](const std::vector<float>& v, const char* stage) {
    if (v.empty()) return;
    if (static_cast<std::int64_t>(v.size()) != t2v) {
      throw std::invalid_argument("winograd_conv_s8: " + std::string(stage) + " carries " +
                                  std::to_string(v.size()) + " tap scales for a t*t of " +
                                  std::to_string(t2v));
    }
    for (const float s : v) {
      if (s <= 0.F) {
        throw std::invalid_argument("winograd_conv_s8: " + std::string(stage) +
                                    " tap scales must all be positive");
      }
    }
  };
  check_taps(scales.weights_transformed_taps, "weights_transformed");
  check_taps(scales.input_transformed_taps, "input_transformed");
  check_taps(scales.hadamard_taps, "hadamard");
  if (!scales.weights_transformed_taps.empty()) {
    if (scales.weights_transformed_taps != weights.tap_scales) {
      // The U levels were baked per tap at prepare time; a different frozen
      // tap vector here would silently disagree with them.
      throw std::invalid_argument(
          "winograd_conv_s8: per-tap weights_transformed scales do not match the prepared "
          "weights");
    }
  } else if (scales.weights_transformed > 0.F && scales.weights_transformed != weights.scale) {
    // The U levels were baked at prepare time; a different frozen scale here
    // would silently disagree with them.
    throw std::invalid_argument(
        "winograd_conv_s8: weights_transformed scale does not match the prepared weights");
  }
  // Frozen internal scales let the stages fuse (no whole-tensor abs-max
  // between them): take the streaming blocked executor. Any dynamic scale —
  // or the WA_WINO_BLOCKED=0 / set_winograd_blocked_enabled(false) override,
  // or a hand-built weight cache without the blocked U — runs the flat path.
  if (scales.input_transformed > 0.F && scales.hadamard > 0.F && scales.output > 0.F &&
      winograd_blocked_enabled() && !weights.u_blocked.empty()) {
    return winograd_conv_s8_blocked(input, weights, g, tr, scales, bias, reuse_storage, phase_ns);
  }

  const std::int64_t oh = g.out_height(), ow = g.out_width();
  const std::int64_t t = tr.tile, m = tr.m;
  const std::int64_t th = (oh + m - 1) / m, tw = (ow + m - 1) / m;
  const std::int64_t tiles = g.batch * th * tw;
  const float su = weights.scale;

  // Flat-path phase timing: the stages run whole-tensor sequential here, so
  // one wall-clock mark per stage boundary (traced forwards only) reports
  // the same scatter/gemm/requant/gather split the blocked executor does.
  const bool timed = phase_ns != nullptr;
  auto t_prev =
      timed ? std::chrono::steady_clock::now() : std::chrono::steady_clock::time_point{};
  const auto phase_mark = [&](std::atomic<std::int64_t>* acc) {
    if (!timed) return;
    const auto tnow = std::chrono::steady_clock::now();
    acc->fetch_add(std::chrono::duration_cast<std::chrono::nanoseconds>(tnow - t_prev).count(),
                   std::memory_order_relaxed);
    t_prev = tnow;
  };

  ScratchArena& arena = ScratchArena::for_thread();
  ScratchArena::Scope frame(arena);
  const auto& kt = simd::kernels();

  // V: dequantize each input tile on the fly (levels * scale — no full fp32
  // copy of the activation), transform in FP32, requantize to int8. The
  // per-plane scatter (staged dequant + Bt d B + tile-major store) is a
  // dispatched kernel; lanes run across tiles on the SIMD backends.
  float* v_f = arena.alloc<float>(t * t * g.in_channels * tiles);
  const float in_scale = input.scale;
#pragma omp parallel for schedule(static)
  for (std::int64_t nc = 0; nc < g.batch * g.in_channels; ++nc) {
    const std::int64_t n = nc / g.in_channels, c = nc % g.in_channels;
    const std::int8_t* plane = input.data.data() + (n * g.in_channels + c) * g.height * g.width;
    kt.wino_scatter_f32(plane, g.height, g.width, g.pad, in_scale, tr.bt_mat.raw(), t, m, th, tw,
                        v_f + c * tiles + n * th * tw, g.in_channels * tiles);
  }
  float sv = scales.input_transformed;
  if (sv <= 0.F) {
    float amax = 0.F;
    for (std::int64_t i = 0; i < t * t * g.in_channels * tiles; ++i) {
      amax = std::max(amax, std::fabs(v_f[i]));
    }
    sv = quant::scale_for(amax, quant::QuantSpec{8});
  }
  std::int8_t* v_q = arena.alloc<std::int8_t>(t * t * g.in_channels * tiles);
  const float v_inv = 1.F / sv;
  if (!scales.input_transformed_taps.empty()) {
    // v_f is [t², C, tiles]: each tap's C*tiles run quantizes at its own
    // scale. Elementwise, so any split is bit-identical to the blocked path.
    const std::int64_t per_tap_v = g.in_channels * tiles;
#pragma omp parallel for schedule(static)
    for (std::int64_t ab = 0; ab < t * t; ++ab) {
      kt.quantize_f32_s8(v_f + ab * per_tap_v, v_q + ab * per_tap_v, per_tap_v,
                         1.F / scales.input_transformed_taps[static_cast<std::size_t>(ab)]);
    }
  } else {
    parallel_flat(t * t * g.in_channels * tiles, [&](std::int64_t begin, std::int64_t len) {
      kt.quantize_f32_s8(v_f + begin, v_q + begin, len, v_inv);
    });
  }
  phase_mark(timed ? &phase_ns->scatter : nullptr);

  // Hadamard stage: t² int8 GEMMs accumulating in int32 — one per conv group
  // (groups == 1 is the classic single GEMM per tap). Group gi consumes its
  // channel slice of V ([t², C, tiles] keeps group channels adjacent) against
  // its filter rows of U; a pruned tap (sparse-U) zero-fills instead.
  const std::int64_t gs_f = g.groups;
  const std::int64_t cg_f = weights.in_channels;       // channels per group
  const std::int64_t kg_f = g.out_channels / gs_f;     // filters per group
  std::int32_t* m_acc = arena.alloc<std::int32_t>(t * t * g.out_channels * tiles);
#pragma omp parallel for schedule(static)
  for (std::int64_t idx = 0; idx < t * t * gs_f; ++idx) {
    const std::int64_t xy = idx / gs_f, gi = idx % gs_f;
    if (!weights.tap_mask.empty() && weights.tap_mask[static_cast<std::size_t>(xy)] != 0) {
      if (gi == 0) {
        std::memset(m_acc + xy * g.out_channels * tiles, 0,
                    static_cast<std::size_t>(g.out_channels * tiles) * sizeof(std::int32_t));
      }
      continue;
    }
    gemm_s8_s32(kg_f, tiles, cg_f,
                weights.u_q.data() + (xy * g.out_channels + gi * kg_f) * cg_f,
                v_q + xy * g.in_channels * tiles + gi * cg_f * tiles,
                m_acc + (xy * g.out_channels + gi * kg_f) * tiles);
  }
  phase_mark(timed ? &phase_ns->gemm : nullptr);

  // M requantized to int8 (scale sm), then output transform in FP32.
  const float m_acc_scale = su * sv;
  float sm = scales.hadamard;
  if (sm <= 0.F) {
    std::int32_t amax = 0;
    for (std::int64_t i = 0; i < t * t * g.out_channels * tiles; ++i) {
      amax = std::max(amax, std::abs(m_acc[i]));
    }
    sm = std::max(m_acc_scale * static_cast<float>(amax), 1e-12F) / 127.F;
  }
  const auto m_mult = quant::quantize_multiplier(static_cast<double>(m_acc_scale) / sm);

  // Per-tap tables: the gather always takes a t²-long M-scale array (splat
  // when per-tensor); the requant switches to a per-tap multiplier table only
  // when some stage carries a tap vector. Dynamic scales are always derived
  // per-tensor — tap vectors only ever arrive frozen from training.
  const std::int64_t t2 = t * t;
  const bool per_tap = !weights.tap_scales.empty() || !scales.input_transformed_taps.empty() ||
                       !scales.hadamard_taps.empty();
  std::vector<float> sm_taps = scales.hadamard_taps.empty()
                                   ? std::vector<float>(static_cast<std::size_t>(t2), sm)
                                   : scales.hadamard_taps;

  // Requantize the whole Hadamard buffer flat to int8 levels (the gather then
  // streams a quarter of the bytes), and run the per-plane output transform
  // as a dispatched kernel.
  std::int8_t* m_q = arena.alloc<std::int8_t>(t * t * g.out_channels * tiles);
  if (per_tap) {
    const std::vector<float> su_taps =
        weights.tap_scales.empty() ? std::vector<float>(static_cast<std::size_t>(t2), su)
                                   : weights.tap_scales;
    const std::vector<float> sv_taps =
        scales.input_transformed_taps.empty()
            ? std::vector<float>(static_cast<std::size_t>(t2), sv)
            : scales.input_transformed_taps;
    std::vector<quant::FixedPointMultiplier> m_mults(static_cast<std::size_t>(t2));
    for (std::int64_t ab = 0; ab < t2; ++ab) {
      const auto i = static_cast<std::size_t>(ab);
      m_mults[i] = quant::quantize_multiplier(
          static_cast<double>(su_taps[i] * sv_taps[i]) / sm_taps[i]);
    }
    // m_acc is [t², K, tiles]: one contiguous K*tiles block per table entry.
    const std::int64_t per_tap_m = g.out_channels * tiles;
#pragma omp parallel for schedule(static)
    for (std::int64_t ab = 0; ab < t2; ++ab) {
      kt.requant_s32_s8(m_acc + ab * per_tap_m, m_q + ab * per_tap_m, per_tap_m,
                        m_mults[static_cast<std::size_t>(ab)]);
    }
  } else {
    parallel_flat(t * t * g.out_channels * tiles, [&](std::int64_t begin, std::int64_t len) {
      kt.requant_s32_s8(m_acc + begin, m_q + begin, len, m_mult);
    });
  }
  phase_mark(timed ? &phase_ns->requant : nullptr);

  float* out_f = arena.alloc<float>(g.batch * g.out_channels * oh * ow);
  const bool has_bias = bias != nullptr && !bias->empty();
  if (has_bias && bias->numel() != g.out_channels) {
    throw std::invalid_argument("winograd_conv_s8: bias/channel mismatch");
  }
#pragma omp parallel for schedule(static)
  for (std::int64_t nk = 0; nk < g.batch * g.out_channels; ++nk) {
    const std::int64_t n = nk / g.out_channels, k = nk % g.out_channels;
    // The output transform runs in FP32, so the bias joins there, before the
    // final requantization — same semantics as the training-time pipeline.
    const float bv = has_bias ? bias->at(k) : 0.F;
    kt.wino_gather_f32(m_q + k * tiles + n * th * tw, g.out_channels * tiles, sm_taps.data(),
                       tr.at_mat.raw(), t, m, th, tw, oh, ow, bv, out_f + nk * oh * ow);
  }

  float so = scales.output;
  if (so <= 0.F) {
    float amax = 0.F;
    for (std::int64_t i = 0; i < g.batch * g.out_channels * oh * ow; ++i) {
      amax = std::max(amax, std::fabs(out_f[i]));
    }
    so = quant::scale_for(amax, quant::QuantSpec{8});
  }
  QTensor out;
  out.shape = Shape{g.batch, g.out_channels, oh, ow};
  out.scale = so;
  // The input was fully consumed by the scatter stage above, so a donated
  // buffer aliasing it is safe to take over here.
  out.data = take_output_storage(reuse_storage, g.batch * g.out_channels * oh * ow);
  const float o_inv = 1.F / so;
  parallel_flat(g.batch * g.out_channels * oh * ow, [&](std::int64_t begin, std::int64_t len) {
    kt.quantize_f32_s8(out_f + begin, out.data.data() + begin, len, o_inv);
  });
  phase_mark(timed ? &phase_ns->gather : nullptr);
  return out;
}

namespace {

// The five 3x3 taps outside the even/even parity class, in the fixed lowering
// order the rect_wt pack and the patch lowering both follow.
constexpr std::int64_t kRectTaps[5][2] = {{0, 1}, {2, 1}, {1, 0}, {1, 2}, {1, 1}};

}  // namespace

StridedWinogradWeightsS8 prepare_strided_winograd_weights_s8(const Tensor& weights_fp32,
                                                             const wino::Transforms& tr,
                                                             float u00_scale, float rect_scale) {
  if (weights_fp32.dim() != 4 || weights_fp32.size(2) != 3 || weights_fp32.size(3) != 3) {
    throw std::invalid_argument("prepare_strided_winograd_weights_s8: weights must be [K, C, 3, 3]");
  }
  if (tr.r != 2) {
    throw std::invalid_argument(
        "prepare_strided_winograd_weights_s8: transforms must be F(m, 2) for the 2x2 phase");
  }
  StridedWinogradWeightsS8 w;
  const std::int64_t K = weights_fp32.size(0), C = weights_fp32.size(1);
  w.out_channels = K;
  w.in_channels = C;

  // Phase (0,0): the even/even 2x2 sub-filter g00[u,v] = g[2u, 2v], prepared
  // exactly like a dense F(m, 2) layer (transform + quantize + block).
  Tensor g00 = Tensor::zeros({K, C, 2, 2});
  for (std::int64_t k = 0; k < K; ++k) {
    for (std::int64_t c = 0; c < C; ++c) {
      for (std::int64_t u = 0; u < 2; ++u) {
        for (std::int64_t v = 0; v < 2; ++v) {
          g00.at(((k * C + c) * 2 + u) * 2 + v) = weights_fp32.at(((k * C + c) * 3 + 2 * u) * 3 + 2 * v);
        }
      }
    }
  }
  w.u00 = prepare_winograd_weights_s8(g00, tr, u00_scale);

  // Rect phases: the remaining five taps, packed [5*C, K] in lowering order
  // (channel-major, tap-minor) so the per-forward GEMM consumes them as one
  // im2row operand.
  float amax = 0.F;
  for (std::int64_t k = 0; k < K; ++k) {
    for (std::int64_t c = 0; c < C; ++c) {
      for (const auto& ab : kRectTaps) {
        amax = std::max(amax, std::fabs(weights_fp32.at(((k * C + c) * 3 + ab[0]) * 3 + ab[1])));
      }
    }
  }
  w.rect_scale = rect_scale > 0.F ? rect_scale : quant::scale_for(amax, quant::QuantSpec{8});
  count_weight_repack();
  w.rect_wt.resize(static_cast<std::size_t>(5 * C * K));
  for (std::int64_t c = 0; c < C; ++c) {
    for (std::int64_t tap = 0; tap < 5; ++tap) {
      for (std::int64_t k = 0; k < K; ++k) {
        const float v =
            weights_fp32.at(((k * C + c) * 3 + kRectTaps[tap][0]) * 3 + kRectTaps[tap][1]);
        w.rect_wt[static_cast<std::size_t>((c * 5 + tap) * K + k)] = clamp_s8(v / w.rect_scale);
      }
    }
  }
  return w;
}

QTensor strided_winograd_conv_s8_prepared(const QTensor& input,
                                          const StridedWinogradWeightsS8& weights,
                                          const ConvGeometry& g, const wino::Transforms& tr,
                                          const WinogradStageScales& scales, const Tensor* bias,
                                          std::vector<std::int8_t>* reuse_storage) {
  g.validate();
  if (g.stride != 2 || g.kernel != 3 || g.groups != 1) {
    throw std::invalid_argument("strided_winograd_conv_s8: requires stride 2, kernel 3, groups 1");
  }
  if (tr.r != 2 || weights.u00.tile != tr.tile) {
    throw std::invalid_argument("strided_winograd_conv_s8: transforms must match the 2x2 phase");
  }
  if (weights.out_channels != g.out_channels || weights.in_channels != g.in_channels) {
    throw std::invalid_argument("strided_winograd_conv_s8: prepared weights do not match geometry");
  }
  if (!scales.input_transformed_taps.empty() || !scales.hadamard_taps.empty() ||
      !scales.weights_transformed_taps.empty()) {
    throw std::invalid_argument("strided_winograd_conv_s8: per-tap scales are not supported");
  }
  if (scales.weights_transformed > 0.F && scales.weights_transformed != weights.u00.scale) {
    throw std::invalid_argument(
        "strided_winograd_conv_s8: weights_transformed scale does not match the prepared weights");
  }
  if (input.shape != Shape{g.batch, g.in_channels, g.height, g.width}) {
    throw std::invalid_argument("strided_winograd_conv_s8: input shape " + to_string(input.shape) +
                                " does not match geometry");
  }
  const std::int64_t oh = g.out_height(), ow = g.out_width();
  const std::int64_t C = g.in_channels, K = g.out_channels;
  // Even/even subplane of the PADDED input: e[u, v] = xp[2u, 2v], so the 3x3
  // stride-2 conv's (0,0)-parity taps become a stride-1 VALID 2x2 conv on e.
  // ceil((H + 2p) / 2) rows always yields exactly oh = (H + 2p - 3)/2 + 1
  // valid outputs (h00 - 1 == oh for every parity of H + 2p).
  const std::int64_t h00 = (g.height + 2 * g.pad + 1) / 2;
  const std::int64_t w00 = (g.width + 2 * g.pad + 1) / 2;
  if (h00 - 1 != oh || w00 - 1 != ow) {
    throw std::logic_error("strided_winograd_conv_s8: polyphase geometry mismatch");
  }

  ScratchArena& arena = ScratchArena::for_thread();
  ScratchArena::Scope frame(arena);
  const auto& kt = simd::kernels();

  std::int8_t* sub = arena.alloc<std::int8_t>(g.batch * C * h00 * w00);
#pragma omp parallel for schedule(static)
  for (std::int64_t nc = 0; nc < g.batch * C; ++nc) {
    const std::int8_t* plane = input.data.data() + nc * g.height * g.width;
    std::int8_t* dst = sub + nc * h00 * w00;
    for (std::int64_t u = 0; u < h00; ++u) {
      const std::int64_t ii = 2 * u - g.pad;
      for (std::int64_t v = 0; v < w00; ++v) {
        const std::int64_t jj = 2 * v - g.pad;
        dst[u * w00 + v] = (ii >= 0 && ii < g.height && jj >= 0 && jj < g.width)
                               ? plane[ii * g.width + jj]
                               : std::int8_t{0};
      }
    }
  }

  // Phase (0,0) runs the standard flat Winograd sequence on the subplanes
  // (pad already baked into e, so the scatter sees pad 0), gathered to fp32
  // so the rect-phase partials can join before the single output quantize.
  const std::int64_t t = tr.tile, m = tr.m, t2 = t * t;
  const std::int64_t th = (oh + m - 1) / m, tw = (ow + m - 1) / m;
  const std::int64_t tiles = g.batch * th * tw;
  const float su = weights.u00.scale;
  const float in_scale = input.scale;

  float* v_f = arena.alloc<float>(t2 * C * tiles);
#pragma omp parallel for schedule(static)
  for (std::int64_t nc = 0; nc < g.batch * C; ++nc) {
    const std::int64_t n = nc / C, c = nc % C;
    kt.wino_scatter_f32(sub + nc * h00 * w00, h00, w00, /*pad=*/0, in_scale, tr.bt_mat.raw(), t,
                        m, th, tw, v_f + c * tiles + n * th * tw, C * tiles);
  }
  float sv = scales.input_transformed;
  if (sv <= 0.F) {
    float amax = 0.F;
    for (std::int64_t i = 0; i < t2 * C * tiles; ++i) amax = std::max(amax, std::fabs(v_f[i]));
    sv = quant::scale_for(amax, quant::QuantSpec{8});
  }
  std::int8_t* v_q = arena.alloc<std::int8_t>(t2 * C * tiles);
  const float v_inv = 1.F / sv;
  parallel_flat(t2 * C * tiles, [&](std::int64_t begin, std::int64_t len) {
    kt.quantize_f32_s8(v_f + begin, v_q + begin, len, v_inv);
  });

  std::int32_t* m_acc = arena.alloc<std::int32_t>(t2 * K * tiles);
#pragma omp parallel for schedule(static)
  for (std::int64_t xy = 0; xy < t2; ++xy) {
    gemm_s8_s32(K, tiles, C, weights.u00.u_q.data() + xy * K * C, v_q + xy * C * tiles,
                m_acc + xy * K * tiles);
  }

  const float m_acc_scale = su * sv;
  float sm = scales.hadamard;
  if (sm <= 0.F) {
    std::int32_t amax = 0;
    for (std::int64_t i = 0; i < t2 * K * tiles; ++i) amax = std::max(amax, std::abs(m_acc[i]));
    sm = std::max(m_acc_scale * static_cast<float>(amax), 1e-12F) / 127.F;
  }
  const auto m_mult = quant::quantize_multiplier(static_cast<double>(m_acc_scale) / sm);
  std::int8_t* m_q = arena.alloc<std::int8_t>(t2 * K * tiles);
  parallel_flat(t2 * K * tiles, [&](std::int64_t begin, std::int64_t len) {
    kt.requant_s32_s8(m_acc + begin, m_q + begin, len, m_mult);
  });

  const std::vector<float> sm_taps(static_cast<std::size_t>(t2), sm);
  const bool has_bias = bias != nullptr && !bias->empty();
  if (has_bias && bias->numel() != g.out_channels) {
    throw std::invalid_argument("strided_winograd_conv_s8: bias/channel mismatch");
  }
  float* out_f = arena.alloc<float>(g.batch * K * oh * ow);
#pragma omp parallel for schedule(static)
  for (std::int64_t nk = 0; nk < g.batch * K; ++nk) {
    const std::int64_t n = nk / K, k = nk % K;
    const float bv = has_bias ? bias->at(k) : 0.F;
    kt.wino_gather_f32(m_q + k * tiles + n * th * tw, K * tiles, sm_taps.data(), tr.at_mat.raw(),
                       t, m, th, tw, oh, ow, bv, out_f + nk * oh * ow);
  }

  // Rect phases: the five odd-parity taps lower to one [rows, 5*C] im2row
  // GEMM straight from the (strided) original input, whose int32 partials
  // join the fp32 plane before quantization.
  const std::int64_t rows = g.batch * oh * ow;
  const std::int64_t patch = 5 * C;
  std::int8_t* lowered = arena.alloc<std::int8_t>(rows * patch);
#pragma omp parallel for collapse(2) schedule(static)
  for (std::int64_t n = 0; n < g.batch; ++n) {
    for (std::int64_t i = 0; i < oh; ++i) {
      for (std::int64_t j = 0; j < ow; ++j) {
        std::int8_t* dst = lowered + ((n * oh + i) * ow + j) * patch;
        for (std::int64_t c = 0; c < C; ++c) {
          const std::int8_t* plane = input.data.data() + (n * C + c) * g.height * g.width;
          for (const auto& ab : kRectTaps) {
            const std::int64_t ii = 2 * i + ab[0] - g.pad;
            const std::int64_t jj = 2 * j + ab[1] - g.pad;
            *dst++ = (ii >= 0 && ii < g.height && jj >= 0 && jj < g.width)
                         ? plane[ii * g.width + jj]
                         : std::int8_t{0};
          }
        }
      }
    }
  }
  std::int32_t* racc = arena.alloc<std::int32_t>(rows * K);
  gemm_s8_s32(rows, K, patch, lowered, weights.rect_wt.data(), racc);

  const float rect_acc_scale = in_scale * weights.rect_scale;
#pragma omp parallel for collapse(2) schedule(static)
  for (std::int64_t n = 0; n < g.batch; ++n) {
    for (std::int64_t i = 0; i < oh; ++i) {
      for (std::int64_t j = 0; j < ow; ++j) {
        const std::int32_t* src = racc + ((n * oh + i) * ow + j) * K;
        for (std::int64_t k = 0; k < K; ++k) {
          out_f[((n * K + k) * oh + i) * ow + j] += static_cast<float>(src[k]) * rect_acc_scale;
        }
      }
    }
  }

  float so = scales.output;
  if (so <= 0.F) {
    float amax = 0.F;
    for (std::int64_t i = 0; i < g.batch * K * oh * ow; ++i) {
      amax = std::max(amax, std::fabs(out_f[i]));
    }
    so = quant::scale_for(amax, quant::QuantSpec{8});
  }
  QTensor out;
  out.shape = Shape{g.batch, K, oh, ow};
  out.scale = so;
  // Both the subplane build and the rect lowering have fully consumed the
  // input, so a donated buffer aliasing it is safe to take over here.
  out.data = take_output_storage(reuse_storage, g.batch * K * oh * ow);
  const float o_inv = 1.F / so;
  parallel_flat(g.batch * K * oh * ow, [&](std::int64_t begin, std::int64_t len) {
    kt.quantize_f32_s8(out_f + begin, out.data.data() + begin, len, o_inv);
  });
  return out;
}

}  // namespace wa::backend
