#include "backend/qtensor16.hpp"

#include <cmath>

namespace wa::backend {

QTensor16 quantize_s16(const Tensor& t, float scale_override) {
  QTensor16 q;
  q.shape = t.shape();
  q.scale =
      scale_override > 0.F ? scale_override : quant::scale_for(t.abs_max(), quant::QuantSpec{16});
  q.data.resize(static_cast<std::size_t>(t.numel()));
  const float inv = 1.F / q.scale;
  const auto src = t.data();
  for (std::size_t i = 0; i < q.data.size(); ++i) {
    float v = std::nearbyint(src[i] * inv);
    v = std::min(32767.F, std::max(-32767.F, v));
    q.data[i] = static_cast<std::int16_t>(v);
  }
  return q;
}

Tensor dequantize(const QTensor16& q) {
  Tensor t(q.shape);
  auto dst = t.data();
  for (std::size_t i = 0; i < q.data.size(); ++i) {
    dst[i] = static_cast<float>(q.data[i]) * q.scale;
  }
  return t;
}

}  // namespace wa::backend
