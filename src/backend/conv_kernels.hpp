// FP32 convolution kernels: direct, im2row, im2col and Winograd-GEMM.
//
// These are the deployment-side algorithms the paper benchmarks against each
// other (Figs. 7/8, Table 3). All use NCHW activations and [K, C, r, r]
// weights, stride 1 (the evaluated networks replace strided convolutions
// with pool + dense conv, following the paper) and symmetric zero padding.
#pragma once

#include <cstdint>

#include "tensor/tensor.hpp"
#include "winograd/cook_toom.hpp"

namespace wa::backend {

/// Static geometry of a convolution layer.
struct ConvGeometry {
  std::int64_t batch = 1;
  std::int64_t in_channels = 1;
  std::int64_t height = 1;
  std::int64_t width = 1;
  std::int64_t out_channels = 1;
  std::int64_t kernel = 3;
  std::int64_t pad = 1;
  std::int64_t groups = 1;
  std::int64_t stride = 1;

  std::int64_t out_height() const { return (height + 2 * pad - kernel) / stride + 1; }
  std::int64_t out_width() const { return (width + 2 * pad - kernel) / stride + 1; }
  void validate() const;
};

/// Naive direct convolution (reference; O(N K C r² H W) scalar loop).
Tensor direct_conv(const Tensor& input, const Tensor& weights, const ConvGeometry& g);

/// Lower input patches to a row-major [N*outH*outW, C*r*r] matrix.
Tensor im2row_lower(const Tensor& input, const ConvGeometry& g);
/// im2row + GEMM convolution.
Tensor im2row_conv(const Tensor& input, const Tensor& weights, const ConvGeometry& g);

/// Lower to the column-major variant [C*r*r, N*outH*outW].
Tensor im2col_lower(const Tensor& input, const ConvGeometry& g);
/// im2col + GEMM convolution (same result, different data movement).
Tensor im2col_conv(const Tensor& input, const Tensor& weights, const ConvGeometry& g);

/// Winograd convolution via t² batched GEMMs over transformed tiles
/// (the region-wise GEMM formulation of Maji et al. 2019).
/// Requires weights kernel == tr.r and groups == 1.
Tensor winograd_conv(const Tensor& input, const Tensor& weights, const ConvGeometry& g,
                     const wino::Transforms& tr);

/// Winograd convolution from pre-transformed weights `u` [t*t, K, C]
/// (winograd_transform_weights output). This is the serving path: U is
/// computed once at load and reused across forwards, and every intermediate
/// (V, M) lives in the calling thread's ScratchArena instead of fresh
/// heap allocations.
Tensor winograd_conv_prepared(const Tensor& input, const Tensor& u, const ConvGeometry& g,
                              const wino::Transforms& tr);

/// Transform weights [K, C, r, r] to the Winograd domain: [t*t, K, C],
/// laid out so that slice (xy) is the [K, C] GEMM operand. This is the
/// "GgGᵀ, amortized across inferences" precomputation.
Tensor winograd_transform_weights(const Tensor& weights, const wino::Transforms& tr);

}  // namespace wa::backend
