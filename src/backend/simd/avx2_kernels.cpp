// AVX2 kernels for the multi-backend dispatch layer (kernel_table.hpp).
//
// Registered when the build targets x86 (CMake compiles this file with
// -mavx2 -mfma) and the CPU reports AVX2+FMA at runtime (kernel_table.cpp
// checks CPUID before ever calling into this table; the unsupported-ISA stub
// at the bottom keeps non-x86 builds linking).
//
// Bit-exactness with the scalar reference (scalar_kernels.cpp) is a hard
// contract, enforced per-kernel and end-to-end by tests/test_simd_backends:
//   - integer kernels (gemm_s8_s32, requant_s32_s8) accumulate in the same
//     width as the scalar code, so lane order is irrelevant;
//   - requant_s32_s8 re-derives gemmlowp's SaturatingRoundingDoublingHighMul
//     with 64-bit lane arithmetic (trunc-toward-zero division emulated with
//     a sign fix-up) and takes the scalar path for the rare shift regimes
//     (shift <= 0 or > 31) the vector code does not model;
//   - fp32 transform kernels replay the scalar per-element operation
//     sequence exactly — same multiply/add order, explicit mul+add (never
//     FMA), the same av == 0 skip as wino::smm_nn — with SIMD lanes running
//     across Winograd tiles. This file is compiled with -ffp-contract=off so
//     its scalar tail loops cannot be contracted either.
//   - gemm_f32_packed_nn is the one deliberate exception: it uses FMA for
//     throughput, and fp32 GEMM consumers carry tolerances, not bit checks.
#include "backend/simd/kernel_table.hpp"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "backend/simd/requant_common.hpp"
#include "tensor/arena.hpp"
#include "winograd/small_mat.hpp"

namespace wa::backend::simd {
namespace {

// ---- int8 GEMM --------------------------------------------------------------
//
// Register-blocked 4 (rows) x 16 (columns), two k steps per iteration: int8
// B rows are sign-extended to int16 and interleaved so one _mm256_madd_epi16
// accumulates a (k, k+1) pair for 8 columns. Accumulators stay in int32
// registers across the whole k loop, exactly like the scalar kernel's int32
// row accumulation, so results are identical.

void gemm_s8_s32_avx2(std::int64_t m, std::int64_t n, std::int64_t k, const std::int8_t* a,
                      const std::int8_t* b, std::int32_t* c) {
  const std::int64_t mblocks = (m + 3) / 4;
#pragma omp parallel for schedule(static) if (m >= 8)
  for (std::int64_t blk = 0; blk < mblocks; ++blk) {
    const std::int64_t i0 = blk * 4;
    const std::int64_t mr = std::min<std::int64_t>(4, m - i0);
    std::int64_t j0 = 0;
    for (; j0 + 16 <= n; j0 += 16) {
      __m256i acc_lo[4], acc_hi[4];
      for (int r = 0; r < 4; ++r) {
        acc_lo[r] = _mm256_setzero_si256();
        acc_hi[r] = _mm256_setzero_si256();
      }
      std::int64_t kk = 0;
      for (; kk + 2 <= k; kk += 2) {
        const __m256i b0 = _mm256_cvtepi8_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + kk * n + j0)));
        const __m256i b1 = _mm256_cvtepi8_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + (kk + 1) * n + j0)));
        const __m256i lo = _mm256_unpacklo_epi16(b0, b1);
        const __m256i hi = _mm256_unpackhi_epi16(b0, b1);
        for (std::int64_t r = 0; r < mr; ++r) {
          const std::int32_t a0 = a[(i0 + r) * k + kk];
          const std::int32_t a1 = a[(i0 + r) * k + kk + 1];
          const __m256i av = _mm256_set1_epi32((a1 << 16) | (a0 & 0xFFFF));
          acc_lo[r] = _mm256_add_epi32(acc_lo[r], _mm256_madd_epi16(av, lo));
          acc_hi[r] = _mm256_add_epi32(acc_hi[r], _mm256_madd_epi16(av, hi));
        }
      }
      if (kk < k) {  // odd-k tail: pair the last row with an implicit zero row
        const __m256i b0 = _mm256_cvtepi8_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + kk * n + j0)));
        const __m256i zero = _mm256_setzero_si256();
        const __m256i lo = _mm256_unpacklo_epi16(b0, zero);
        const __m256i hi = _mm256_unpackhi_epi16(b0, zero);
        for (std::int64_t r = 0; r < mr; ++r) {
          const std::int32_t a0 = a[(i0 + r) * k + kk];
          const __m256i av = _mm256_set1_epi32(a0 & 0xFFFF);
          acc_lo[r] = _mm256_add_epi32(acc_lo[r], _mm256_madd_epi16(av, lo));
          acc_hi[r] = _mm256_add_epi32(acc_hi[r], _mm256_madd_epi16(av, hi));
        }
      }
      // acc_lo holds columns {0..3, 8..11}, acc_hi {4..7, 12..15}; recombine.
      for (std::int64_t r = 0; r < mr; ++r) {
        std::int32_t* crow = c + (i0 + r) * n + j0;
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(crow),
                            _mm256_permute2x128_si256(acc_lo[r], acc_hi[r], 0x20));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(crow + 8),
                            _mm256_permute2x128_si256(acc_lo[r], acc_hi[r], 0x31));
      }
    }
    // 4-column tail: the Winograd Hadamard GEMM runs with n = tile count,
    // which is 4 on the smallest Fig. 7 shapes — without this path those
    // GEMMs would be entirely scalar.
    for (; j0 + 4 <= n; j0 += 4) {
      __m128i acc4[4];
      for (int r = 0; r < 4; ++r) acc4[r] = _mm_setzero_si128();
      const auto load4 = [](const std::int8_t* p) {
        std::int32_t raw;
        std::memcpy(&raw, p, 4);
        return _mm_cvtepi8_epi16(_mm_cvtsi32_si128(raw));  // 4 int16 in the low half
      };
      std::int64_t kk = 0;
      for (; kk + 2 <= k; kk += 2) {
        const __m128i lo = _mm_unpacklo_epi16(load4(b + kk * n + j0), load4(b + (kk + 1) * n + j0));
        for (std::int64_t r = 0; r < mr; ++r) {
          const std::int32_t a0 = a[(i0 + r) * k + kk];
          const std::int32_t a1 = a[(i0 + r) * k + kk + 1];
          acc4[r] = _mm_add_epi32(acc4[r],
                                  _mm_madd_epi16(_mm_set1_epi32((a1 << 16) | (a0 & 0xFFFF)), lo));
        }
      }
      if (kk < k) {
        const __m128i lo = _mm_unpacklo_epi16(load4(b + kk * n + j0), _mm_setzero_si128());
        for (std::int64_t r = 0; r < mr; ++r) {
          const std::int32_t a0 = a[(i0 + r) * k + kk];
          acc4[r] = _mm_add_epi32(acc4[r], _mm_madd_epi16(_mm_set1_epi32(a0 & 0xFFFF), lo));
        }
      }
      for (std::int64_t r = 0; r < mr; ++r) {
        _mm_storeu_si128(reinterpret_cast<__m128i*>(c + (i0 + r) * n + j0), acc4[r]);
      }
    }
    if (j0 < n) {  // last 1-3 columns: scalar, identical to the reference kernel
      for (std::int64_t r = 0; r < mr; ++r) {
        std::int32_t* crow = c + (i0 + r) * n;
        for (std::int64_t j = j0; j < n; ++j) crow[j] = 0;
        for (std::int64_t kk = 0; kk < k; ++kk) {
          const std::int32_t av = a[(i0 + r) * k + kk];
          if (av == 0) continue;
          const std::int8_t* brow = b + kk * n;
          for (std::int64_t j = j0; j < n; ++j) crow[j] += av * static_cast<std::int32_t>(brow[j]);
        }
      }
    }
  }
}

// ---- fp32 GEMM micro-kernel -------------------------------------------------

void gemm_f32_packed_nn_avx2(std::int64_t mb, std::int64_t n, std::int64_t k, float alpha,
                             const float* a, std::int64_t lda, const float* b, std::int64_t ldb,
                             float beta, float* c, std::int64_t ldc) {
  for (std::int64_t i = 0; i < mb; ++i) {
    float* crow = c + i * ldc;
    if (beta == 0.F) {
      std::fill(crow, crow + n, 0.F);
    } else if (beta != 1.F) {
      for (std::int64_t j = 0; j < n; ++j) crow[j] *= beta;
    }
    const float* arow = a + i * lda;
    std::int64_t j0 = 0;
    for (; j0 + 32 <= n; j0 += 32) {
      __m256 c0 = _mm256_loadu_ps(crow + j0);
      __m256 c1 = _mm256_loadu_ps(crow + j0 + 8);
      __m256 c2 = _mm256_loadu_ps(crow + j0 + 16);
      __m256 c3 = _mm256_loadu_ps(crow + j0 + 24);
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float av = alpha * arow[kk];
        if (av == 0.F) continue;
        const __m256 avv = _mm256_set1_ps(av);
        const float* brow = b + kk * ldb + j0;
        c0 = _mm256_fmadd_ps(avv, _mm256_loadu_ps(brow), c0);
        c1 = _mm256_fmadd_ps(avv, _mm256_loadu_ps(brow + 8), c1);
        c2 = _mm256_fmadd_ps(avv, _mm256_loadu_ps(brow + 16), c2);
        c3 = _mm256_fmadd_ps(avv, _mm256_loadu_ps(brow + 24), c3);
      }
      _mm256_storeu_ps(crow + j0, c0);
      _mm256_storeu_ps(crow + j0 + 8, c1);
      _mm256_storeu_ps(crow + j0 + 16, c2);
      _mm256_storeu_ps(crow + j0 + 24, c3);
    }
    if (j0 < n) {
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float av = alpha * arow[kk];
        if (av == 0.F) continue;
        const float* brow = b + kk * ldb;
        for (std::int64_t j = j0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

// ---- flat float -> int8 quantization ---------------------------------------

// 32-bit chunk order that undoes packs_epi32 + packs_epi16 lane interleave.
inline __m256i pack_s32x4_to_s8(__m256i q0, __m256i q1, __m256i q2, __m256i q3) {
  const __m256i perm = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
  const __m256i p01 = _mm256_packs_epi32(q0, q1);
  const __m256i p23 = _mm256_packs_epi32(q2, q3);
  return _mm256_permutevar8x32_epi32(_mm256_packs_epi16(p01, p23), perm);
}

void quantize_f32_s8_avx2(const float* src, std::int8_t* dst, std::int64_t n, float inv_scale) {
  const __m256 inv = _mm256_set1_ps(inv_scale);
  const __m256 lo = _mm256_set1_ps(-127.F);
  const __m256 hi = _mm256_set1_ps(127.F);
  std::int64_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i q[4];
    for (int v = 0; v < 4; ++v) {
      // Operand order matters on NaN: maxps/minps return the SECOND operand
      // on unordered, so putting the data first makes the clamp constants
      // win — a NaN input clamps to -127 exactly like the scalar reference's
      // std::max(-127.F, NaN) (which returns its first argument).
      const __m256 x = _mm256_min_ps(
          _mm256_max_ps(_mm256_mul_ps(_mm256_loadu_ps(src + i + 8 * v), inv), lo), hi);
      q[v] = _mm256_cvtps_epi32(x);  // MXCSR default: round to nearest even
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        pack_s32x4_to_s8(q[0], q[1], q[2], q[3]));
  }
  // Tail: the canonical scalar reference, so there is exactly one
  // implementation of the bit-exactness-critical loop.
  if (i < n) scalar_kernels().quantize_f32_s8(src + i, dst + i, n - i, inv_scale);
}

// ---- fixed-point requantization --------------------------------------------

void requant_s32_s8_avx2(const std::int32_t* acc, std::int8_t* dst, std::int64_t n,
                         quant::FixedPointMultiplier mult) {
  // Regime guard and rounding mask shared with the other backends
  // (requant_common.hpp); out-of-regime multipliers take the scalar
  // reference.
  if (!requant_vector_regime(mult)) {
    scalar_kernels().requant_s32_s8(acc, dst, n, mult);
    return;
  }
  const int s = mult.shift;
  const std::int32_t mask32 = requant_round_mask(s);
  const __m256i m0 = _mm256_set1_epi32(mult.m0);
  const __m256i pos_nudge = _mm256_set1_epi64x(std::int64_t{1} << 30);
  const __m256i neg_nudge = _mm256_set1_epi64x(1 - (std::int64_t{1} << 30));
  const __m256i trunc_fix = _mm256_set1_epi64x((std::int64_t{1} << 31) - 1);
  const __m256i maskv = _mm256_set1_epi32(mask32);
  const __m256i halfv = _mm256_set1_epi32(mask32 >> 1);
  const __m256i lo127 = _mm256_set1_epi32(-127);
  const __m256i hi127 = _mm256_set1_epi32(127);
  const __m256i zero = _mm256_setzero_si256();

  // (prod + nudge) / 2^31 with C++ trunc-toward-zero semantics: for negative
  // products add 2^31 - 1 first, then the logical 64-bit shift's low 32 bits
  // equal the arithmetic result (|high| < 2^31 always fits).
  const auto high31 = [&](__m256i prod) {
    const __m256i neg = _mm256_cmpgt_epi64(zero, prod);
    __m256i t = _mm256_add_epi64(prod, _mm256_blendv_epi8(pos_nudge, neg_nudge, neg));
    t = _mm256_add_epi64(t, _mm256_and_si256(neg, trunc_fix));
    return _mm256_srli_epi64(t, 31);
  };
  const auto apply8 = [&](__m256i av) {
    const __m256i pe = _mm256_mul_epi32(av, m0);                         // lanes 0,2,4,6
    const __m256i po = _mm256_mul_epi32(_mm256_srli_epi64(av, 32), m0);  // lanes 1,3,5,7
    const __m256i he = high31(pe);
    const __m256i ho = high31(po);
    const __m256i high = _mm256_blend_epi32(he, _mm256_slli_epi64(ho, 32), 0xAA);
    // Rounding right shift, gemmlowp semantics (round half away from zero).
    const __m256i rem = _mm256_and_si256(high, maskv);
    const __m256i thr = _mm256_add_epi32(halfv, _mm256_srli_epi32(high, 31));
    const __m256i shifted = _mm256_srai_epi32(high, s);
    const __m256i res = _mm256_sub_epi32(shifted, _mm256_cmpgt_epi32(rem, thr));
    return _mm256_min_epi32(hi127, _mm256_max_epi32(lo127, res));
  };

  std::int64_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i q[4];
    for (int v = 0; v < 4; ++v) {
      q[v] = apply8(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i + 8 * v)));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        pack_s32x4_to_s8(q[0], q[1], q[2], q[3]));
  }
  if (i < n) scalar_kernels().requant_s32_s8(acc + i, dst + i, n - i, mult);
}

void quantize_f32_s8_taps_avx2(const float* src, std::int8_t* dst, std::int64_t taps,
                               std::int64_t per_tap, const float* inv_scales) {
  quantize_f32_s8_taps_with(quantize_f32_s8_avx2, src, dst, taps, per_tap, inv_scales);
}

void requant_s32_s8_taps_avx2(const std::int32_t* acc, std::int8_t* dst, std::int64_t taps,
                              std::int64_t per_tap, const quant::FixedPointMultiplier* mults) {
  requant_s32_s8_taps_with(requant_s32_s8_avx2, acc, dst, taps, per_tap, mults);
}

// ---- Winograd scatter (input transform) ------------------------------------
//
// SIMD lanes run across 8 consecutive tiles of one tile row; each lane
// replays the scalar smm_sandwich arithmetic element by element (mul+add
// only, same av == 0 skip in the first product), so results are bit-equal.
// The vector path handles t <= 8 (F2/F4/F6 for r=3, F4 for r=5); larger
// tiles take the scalar per-tile path.

constexpr std::int64_t kMaxVecTile = 8;

void wino_scatter_f32_avx2(const std::int8_t* plane, std::int64_t height, std::int64_t width,
                           std::int64_t pad, float in_scale, const float* bt, std::int64_t t,
                           std::int64_t m, std::int64_t th, std::int64_t tw, float* v_base,
                           std::int64_t ab_stride) {
  ScratchArena& arena = ScratchArena::for_thread();
  ScratchArena::Scope frame(arena);
  const std::int64_t fw = (tw - 1) * m + t;
  float* fbuf = arena.alloc<float>(t * fw);
  const __m256 scale = _mm256_set1_ps(in_scale);
  const __m256i vidx =
      _mm256_mullo_epi32(_mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7),
                         _mm256_set1_epi32(static_cast<int>(m)));
  float patch[wino::kSmallMatCap], tmp[wino::kSmallMatCap], out[wino::kSmallMatCap];
  __m256 X[kMaxVecTile * kMaxVecTile], TMP[kMaxVecTile * kMaxVecTile];

  for (std::int64_t ti = 0; ti < th; ++ti) {
    const std::int64_t i0 = ti * m - pad;
    // Stage the t input rows as dequantized floats with padding materialized.
    for (std::int64_t a = 0; a < t; ++a) {
      float* row = fbuf + a * fw;
      const std::int64_t ii = i0 + a;
      if (ii < 0 || ii >= height) {
        std::fill(row, row + fw, 0.F);
        continue;
      }
      const std::int8_t* src = plane + ii * width;
      const std::int64_t p0 = std::min(pad, fw);
      std::fill(row, row + p0, 0.F);
      const std::int64_t len = std::min(width, fw - p0);
      std::int64_t x = 0;
      for (; x + 8 <= len; x += 8) {
        const __m256i lv = _mm256_cvtepi8_epi32(
            _mm_loadl_epi64(reinterpret_cast<const __m128i*>(src + x)));
        _mm256_storeu_ps(row + p0 + x, _mm256_mul_ps(_mm256_cvtepi32_ps(lv), scale));
      }
      for (; x < len; ++x) row[p0 + x] = static_cast<float>(src[x]) * in_scale;
      std::fill(row + p0 + std::max<std::int64_t>(len, 0), row + fw, 0.F);
    }

    std::int64_t tj = 0;
    if (t <= kMaxVecTile) {
      for (; tj + 8 <= tw; tj += 8) {
        for (std::int64_t a = 0; a < t; ++a) {
          const float* base = fbuf + a * fw + tj * m;
          for (std::int64_t b = 0; b < t; ++b) {
            X[a * t + b] = _mm256_i32gather_ps(base + b, vidx, 4);
          }
        }
        for (std::int64_t i = 0; i < t; ++i) {  // TMP = Bt * X (smm_nn: skip zeros)
          for (std::int64_t j = 0; j < t; ++j) {
            __m256 acc = _mm256_setzero_ps();
            for (std::int64_t kk = 0; kk < t; ++kk) {
              const float av = bt[i * t + kk];
              if (av == 0.F) continue;
              acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(av), X[kk * t + j]));
            }
            TMP[i * t + j] = acc;
          }
        }
        float* dst = v_base + ti * tw + tj;
        for (std::int64_t i = 0; i < t; ++i) {  // V = TMP * Bt^T (smm_nt: no skip)
          for (std::int64_t j = 0; j < t; ++j) {
            __m256 acc = _mm256_setzero_ps();
            for (std::int64_t kk = 0; kk < t; ++kk) {
              acc = _mm256_add_ps(acc, _mm256_mul_ps(TMP[i * t + kk], _mm256_set1_ps(bt[j * t + kk])));
            }
            _mm256_storeu_ps(dst + (i * t + j) * ab_stride, acc);
          }
        }
      }
    }
    for (; tj < tw; ++tj) {  // remaining tiles: scalar reference path
      for (std::int64_t a = 0; a < t; ++a) {
        for (std::int64_t b = 0; b < t; ++b) patch[a * t + b] = fbuf[a * fw + tj * m + b];
      }
      wino::smm_sandwich(bt, static_cast<int>(t), static_cast<int>(t), patch, tmp, out);
      float* dst = v_base + ti * tw + tj;
      for (std::int64_t ab = 0; ab < t * t; ++ab) dst[ab * ab_stride] = out[ab];
    }
  }
}

// ---- Winograd gather (output transform) ------------------------------------

// Interleave 2 lane-vectors (a, b) into 16 contiguous floats a0 b0 a1 b1 ...
inline void store_interleave2(float* dst, __m256 a, __m256 b) {
  const __m256 lo = _mm256_unpacklo_ps(a, b);
  const __m256 hi = _mm256_unpackhi_ps(a, b);
  _mm256_storeu_ps(dst, _mm256_permute2f128_ps(lo, hi, 0x20));
  _mm256_storeu_ps(dst + 8, _mm256_permute2f128_ps(lo, hi, 0x31));
}

// Interleave 4 lane-vectors into 32 contiguous floats a0 b0 c0 d0 a1 ...
inline void store_interleave4(float* dst, __m256 a, __m256 b, __m256 c, __m256 d) {
  const __m256 t0 = _mm256_unpacklo_ps(a, b);
  const __m256 t1 = _mm256_unpackhi_ps(a, b);
  const __m256 t2 = _mm256_unpacklo_ps(c, d);
  const __m256 t3 = _mm256_unpackhi_ps(c, d);
  const __m256 u0 = _mm256_shuffle_ps(t0, t2, 0x44);
  const __m256 u1 = _mm256_shuffle_ps(t0, t2, 0xEE);
  const __m256 u2 = _mm256_shuffle_ps(t1, t3, 0x44);
  const __m256 u3 = _mm256_shuffle_ps(t1, t3, 0xEE);
  _mm256_storeu_ps(dst, _mm256_permute2f128_ps(u0, u1, 0x20));
  _mm256_storeu_ps(dst + 8, _mm256_permute2f128_ps(u2, u3, 0x20));
  _mm256_storeu_ps(dst + 16, _mm256_permute2f128_ps(u0, u1, 0x31));
  _mm256_storeu_ps(dst + 24, _mm256_permute2f128_ps(u2, u3, 0x31));
}

// 128-bit variants of the two interleaves, for the 4-tile groups below.
inline void store_interleave2_128(float* dst, __m128 a, __m128 b) {
  _mm_storeu_ps(dst, _mm_unpacklo_ps(a, b));
  _mm_storeu_ps(dst + 4, _mm_unpackhi_ps(a, b));
}

inline void store_interleave4_128(float* dst, __m128 a, __m128 b, __m128 c, __m128 d) {
  const __m128 t0 = _mm_unpacklo_ps(a, b);
  const __m128 t1 = _mm_unpacklo_ps(c, d);
  const __m128 t2 = _mm_unpackhi_ps(a, b);
  const __m128 t3 = _mm_unpackhi_ps(c, d);
  _mm_storeu_ps(dst, _mm_movelh_ps(t0, t1));
  _mm_storeu_ps(dst + 4, _mm_movehl_ps(t1, t0));
  _mm_storeu_ps(dst + 8, _mm_movelh_ps(t2, t3));
  _mm_storeu_ps(dst + 12, _mm_movehl_ps(t3, t2));
}

void wino_gather_f32_avx2(const std::int8_t* m_base, std::int64_t ab_stride, const float* sm,
                          const float* at, std::int64_t t, std::int64_t m, std::int64_t th,
                          std::int64_t tw, std::int64_t oh, std::int64_t ow, float bias,
                          float* oplane) {
  const __m256 bv = _mm256_set1_ps(bias);
  float mtile[wino::kSmallMatCap], tmp[wino::kSmallMatCap], y[wino::kSmallMatCap];
  __m256 M[kMaxVecTile * kMaxVecTile], TMP[kMaxVecTile * kMaxVecTile], Y[kMaxVecTile];
  const bool vec_ok = t <= kMaxVecTile && (m == 2 || m == 4);

  for (std::int64_t ti = 0; ti < th; ++ti) {
    const bool rows_full = ti * m + m <= oh;
    std::int64_t tj = 0;
    if (vec_ok && rows_full) {
      for (; tj + 8 <= tw && (tj + 8) * m <= ow; tj += 8) {
        const std::int8_t* src = m_base + ti * tw + tj;
        for (std::int64_t ab = 0; ab < t * t; ++ab) {
          const __m256i lv = _mm256_cvtepi8_epi32(
              _mm_loadl_epi64(reinterpret_cast<const __m128i*>(src + ab * ab_stride)));
          M[ab] = _mm256_mul_ps(_mm256_cvtepi32_ps(lv), _mm256_set1_ps(sm[ab]));
        }
        for (std::int64_t i = 0; i < m; ++i) {  // TMP = At * M (smm_nn: skip zeros)
          for (std::int64_t j = 0; j < t; ++j) {
            __m256 acc = _mm256_setzero_ps();
            for (std::int64_t kk = 0; kk < t; ++kk) {
              const float av = at[i * t + kk];
              if (av == 0.F) continue;
              acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(av), M[kk * t + j]));
            }
            TMP[i * t + j] = acc;
          }
        }
        for (std::int64_t a = 0; a < m; ++a) {
          for (std::int64_t b = 0; b < m; ++b) {  // Y = TMP * At^T (smm_nt: no skip)
            __m256 acc = _mm256_setzero_ps();
            for (std::int64_t kk = 0; kk < t; ++kk) {
              acc = _mm256_add_ps(acc, _mm256_mul_ps(TMP[a * t + kk], _mm256_set1_ps(at[b * t + kk])));
            }
            Y[b] = _mm256_add_ps(acc, bv);
          }
          float* orow = oplane + (ti * m + a) * ow + tj * m;
          if (m == 2) {
            store_interleave2(orow, Y[0], Y[1]);
          } else {
            store_interleave4(orow, Y[0], Y[1], Y[2], Y[3]);
          }
        }
      }
    }
    for (; tj < tw; ++tj) {  // edge tiles: scalar reference path
      const std::int8_t* src = m_base + ti * tw + tj;
      for (std::int64_t ab = 0; ab < t * t; ++ab) {
        mtile[ab] = static_cast<float>(src[ab * ab_stride]) * sm[ab];
      }
      wino::smm_sandwich(at, static_cast<int>(m), static_cast<int>(t), mtile, tmp, y);
      for (std::int64_t a = 0; a < m && ti * m + a < oh; ++a) {
        for (std::int64_t b = 0; b < m && tj * m + b < ow; ++b) {
          oplane[(ti * m + a) * ow + tj * m + b] = y[a * m + b] + bias;
        }
      }
    }
  }
}

// ---- Blocked-layout kernels (streaming tile-block Winograd path) -----------

// Blocked scatter: the flat AVX2 scatter's vector groups, restricted to the
// tile range [tile0, tile0+ntiles). Rows are staged per tile-row segment with
// the same per-element dequant expression; after the 8-tile groups a 4-tile
// 128-bit group picks up narrow tile rows (out=8 F2 and out=16 F4 grids run
// at tw <= 4, which the flat kernel leaves entirely scalar). Leftover tiles
// take the scalar reference kernel so the bit-exactness-critical path has
// exactly one scalar implementation.
void wino_scatter_block_f32_avx2(const std::int8_t* plane, std::int64_t height,
                                 std::int64_t width, std::int64_t pad, float in_scale,
                                 const float* bt, std::int64_t t, std::int64_t m, std::int64_t th,
                                 std::int64_t tw, std::int64_t tile0, std::int64_t ntiles,
                                 float* v_block, std::int64_t block_stride) {
  ScratchArena& arena = ScratchArena::for_thread();
  ScratchArena::Scope frame(arena);
  float* fbuf = arena.alloc<float>(t * ((tw - 1) * m + t));
  const __m256 scale = _mm256_set1_ps(in_scale);
  const __m256i vidx = _mm256_mullo_epi32(_mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7),
                                          _mm256_set1_epi32(static_cast<int>(m)));
  const __m128i vidx4 = _mm_mullo_epi32(_mm_setr_epi32(0, 1, 2, 3),
                                        _mm_set1_epi32(static_cast<int>(m)));
  __m256 X[kMaxVecTile * kMaxVecTile], TMP[kMaxVecTile * kMaxVecTile];
  __m128 X4[kMaxVecTile * kMaxVecTile], TMP4[kMaxVecTile * kMaxVecTile];

  std::int64_t tile = tile0;
  const std::int64_t tend = tile0 + ntiles;
  while (tile < tend) {
    const std::int64_t ti = tile / tw;
    const std::int64_t tjb = tile % tw;
    const std::int64_t tje = std::min(tw, tjb + (tend - tile));
    std::int64_t tj = tjb;
    if (t <= kMaxVecTile && tjb + 4 <= tje) {
      const std::int64_t seg = (tje - 1 - tjb) * m + t;
      const std::int64_t i0 = ti * m - pad;
      const std::int64_t x0 = tjb * m;  // fbuf column 0 is input column x0 - pad
      for (std::int64_t a = 0; a < t; ++a) {
        float* row = fbuf + a * seg;
        const std::int64_t ii = i0 + a;
        if (ii < 0 || ii >= height) {
          std::fill(row, row + seg, 0.F);
          continue;
        }
        const std::int8_t* src = plane + ii * width;
        const std::int64_t p0 = std::min(std::max<std::int64_t>(pad - x0, 0), seg);
        std::fill(row, row + p0, 0.F);
        const std::int64_t j0 = x0 + p0 - pad;  // first in-bounds input column
        const std::int64_t len = std::min(width - j0, seg - p0);
        std::int64_t x = 0;
        for (; x + 8 <= len; x += 8) {
          const __m256i lv = _mm256_cvtepi8_epi32(
              _mm_loadl_epi64(reinterpret_cast<const __m128i*>(src + j0 + x)));
          _mm256_storeu_ps(row + p0 + x, _mm256_mul_ps(_mm256_cvtepi32_ps(lv), scale));
        }
        for (; x < len; ++x) row[p0 + x] = static_cast<float>(src[j0 + x]) * in_scale;
        std::fill(row + p0 + std::max<std::int64_t>(len, 0), row + seg, 0.F);
      }
      for (; tj + 8 <= tje; tj += 8) {
        for (std::int64_t a = 0; a < t; ++a) {
          const float* base = fbuf + a * seg + (tj - tjb) * m;
          for (std::int64_t b = 0; b < t; ++b) {
            X[a * t + b] = _mm256_i32gather_ps(base + b, vidx, 4);
          }
        }
        for (std::int64_t i = 0; i < t; ++i) {  // TMP = Bt * X (smm_nn: skip zeros)
          for (std::int64_t j = 0; j < t; ++j) {
            __m256 acc = _mm256_setzero_ps();
            for (std::int64_t kk = 0; kk < t; ++kk) {
              const float av = bt[i * t + kk];
              if (av == 0.F) continue;
              acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(av), X[kk * t + j]));
            }
            TMP[i * t + j] = acc;
          }
        }
        float* dst = v_block + (ti * tw + tj - tile0);
        for (std::int64_t i = 0; i < t; ++i) {  // V = TMP * Bt^T (smm_nt: no skip)
          for (std::int64_t j = 0; j < t; ++j) {
            __m256 acc = _mm256_setzero_ps();
            for (std::int64_t kk = 0; kk < t; ++kk) {
              acc = _mm256_add_ps(acc,
                                  _mm256_mul_ps(TMP[i * t + kk], _mm256_set1_ps(bt[j * t + kk])));
            }
            _mm256_storeu_ps(dst + (i * t + j) * block_stride, acc);
          }
        }
      }
      for (; tj + 4 <= tje; tj += 4) {  // narrow rows: 4 tiles in 128-bit lanes
        for (std::int64_t a = 0; a < t; ++a) {
          const float* base = fbuf + a * seg + (tj - tjb) * m;
          for (std::int64_t b = 0; b < t; ++b) {
            X4[a * t + b] = _mm_i32gather_ps(base + b, vidx4, 4);
          }
        }
        for (std::int64_t i = 0; i < t; ++i) {
          for (std::int64_t j = 0; j < t; ++j) {
            __m128 acc = _mm_setzero_ps();
            for (std::int64_t kk = 0; kk < t; ++kk) {
              const float av = bt[i * t + kk];
              if (av == 0.F) continue;
              acc = _mm_add_ps(acc, _mm_mul_ps(_mm_set1_ps(av), X4[kk * t + j]));
            }
            TMP4[i * t + j] = acc;
          }
        }
        float* dst = v_block + (ti * tw + tj - tile0);
        for (std::int64_t i = 0; i < t; ++i) {
          for (std::int64_t j = 0; j < t; ++j) {
            __m128 acc = _mm_setzero_ps();
            for (std::int64_t kk = 0; kk < t; ++kk) {
              acc = _mm_add_ps(acc, _mm_mul_ps(TMP4[i * t + kk], _mm_set1_ps(bt[j * t + kk])));
            }
            _mm_storeu_ps(dst + (i * t + j) * block_stride, acc);
          }
        }
      }
    }
    if (tj < tje) {  // remaining tiles of this row: scalar reference path
      scalar_kernels().wino_scatter_block_f32(plane, height, width, pad, in_scale, bt, t, m, th,
                                              tw, ti * tw + tj, tje - tj,
                                              v_block + (ti * tw + tj - tile0), block_stride);
    }
    tile += tje - tjb;
  }
}

// Blocked offset-binary GEMM. One madd accumulates a column's (k, k+1) or
// (k+2, k+3) partial pair; pairs stay split across the k loop (col j lives in
// int32 lanes 2j and 2j+1) and are combined once at the end. The offset is
// removed with a per-column sum: c = sum(a*b) - 128*colsum, exactly
// sum((a-128)*b) in int32.
void gemm_u8s8_s32_k4_avx2(std::int64_t m, std::int64_t n, std::int64_t kpad,
                           const std::uint8_t* a, const std::int8_t* b, std::int32_t* c) {
  ScratchArena& arena = ScratchArena::for_thread();
  ScratchArena::Scope frame(arena);
  const std::int64_t kq = kpad / 4;
  std::int32_t* colsum = arena.alloc<std::int32_t>(n);
  const __m256i perm = _mm256_setr_epi32(0, 1, 4, 5, 2, 3, 6, 7);
  {
    // Vector colsum pass: madd against an all-1s vector sums each column's
    // k-pairs, reusing the exact lane layout (and final hadd+permute fixup)
    // of the accumulator loop below.
    const __m256i ones16 = _mm256_set1_epi16(1);
    std::int64_t j0 = 0;
    for (; j0 + 8 <= n; j0 += 8) {
      __m256i cs_lo = _mm256_setzero_si256();
      __m256i cs_hi = _mm256_setzero_si256();
      for (std::int64_t q = 0; q < kq; ++q) {
        const __m256i braw =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + (q * n + j0) * 4));
        cs_lo = _mm256_add_epi32(
            cs_lo, _mm256_madd_epi16(ones16, _mm256_cvtepi8_epi16(_mm256_castsi256_si128(braw))));
        cs_hi = _mm256_add_epi32(
            cs_hi,
            _mm256_madd_epi16(ones16, _mm256_cvtepi8_epi16(_mm256_extracti128_si256(braw, 1))));
      }
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(colsum + j0),
                          _mm256_permutevar8x32_epi32(_mm256_hadd_epi32(cs_lo, cs_hi), perm));
    }
    for (; j0 + 4 <= n; j0 += 4) {
      __m256i cs = _mm256_setzero_si256();
      for (std::int64_t q = 0; q < kq; ++q) {
        const __m256i b03 = _mm256_cvtepi8_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + (q * n + j0) * 4)));
        cs = _mm256_add_epi32(cs, _mm256_madd_epi16(ones16, b03));
      }
      _mm_storeu_si128(
          reinterpret_cast<__m128i*>(colsum + j0),
          _mm_hadd_epi32(_mm256_castsi256_si128(cs), _mm256_extracti128_si256(cs, 1)));
    }
    for (; j0 < n; ++j0) {
      std::int32_t cs = 0;
      for (std::int64_t q = 0; q < kq; ++q) {
        const std::int8_t* bq = b + (q * n + j0) * 4;
        cs += static_cast<std::int32_t>(bq[0]) + static_cast<std::int32_t>(bq[1]) +
              static_cast<std::int32_t>(bq[2]) + static_cast<std::int32_t>(bq[3]);
      }
      colsum[j0] = cs;
    }
  }
#pragma omp parallel for schedule(static) if (m >= 8)
  for (std::int64_t i = 0; i < m; ++i) {
    const std::uint8_t* arow = a + i * kpad;
    std::int32_t* crow = c + i * n;
    std::int64_t j0 = 0;
    for (; j0 + 8 <= n; j0 += 8) {
      __m256i acc_lo = _mm256_setzero_si256();  // cols j0..j0+3, as lane pairs
      __m256i acc_hi = _mm256_setzero_si256();  // cols j0+4..j0+7
      for (std::int64_t q = 0; q < kq; ++q) {
        const __m256i braw = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(b + (q * n + j0) * 4));
        const __m256i b01 = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(braw));
        const __m256i b23 = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(braw, 1));
        const std::uint8_t* aq = arow + q * 4;
        const long long quad = static_cast<long long>(aq[0]) |
                               (static_cast<long long>(aq[1]) << 16) |
                               (static_cast<long long>(aq[2]) << 32) |
                               (static_cast<long long>(aq[3]) << 48);
        const __m256i av = _mm256_set1_epi64x(quad);
        acc_lo = _mm256_add_epi32(acc_lo, _mm256_madd_epi16(av, b01));
        acc_hi = _mm256_add_epi32(acc_hi, _mm256_madd_epi16(av, b23));
      }
      // hadd yields [c0 c1 c4 c5 | c2 c3 c6 c7]; permute back to order.
      const __m256i sums =
          _mm256_permutevar8x32_epi32(_mm256_hadd_epi32(acc_lo, acc_hi), perm);
      const __m256i cs =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(colsum + j0));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(crow + j0),
                          _mm256_sub_epi32(sums, _mm256_slli_epi32(cs, 7)));
    }
    // 4-column tail: the same madd-pair scheme on one 128-bit load. The
    // smallest Fig. 7 planes run whole tap GEMMs at n = 4, so this step is
    // what keeps them off the scalar loop below.
    for (; j0 + 4 <= n; j0 += 4) {
      __m256i acc = _mm256_setzero_si256();  // col j in int32 lanes 2j, 2j+1
      for (std::int64_t q = 0; q < kq; ++q) {
        const __m256i b03 = _mm256_cvtepi8_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + (q * n + j0) * 4)));
        const std::uint8_t* aq = arow + q * 4;
        const long long quad = static_cast<long long>(aq[0]) |
                               (static_cast<long long>(aq[1]) << 16) |
                               (static_cast<long long>(aq[2]) << 32) |
                               (static_cast<long long>(aq[3]) << 48);
        acc = _mm256_add_epi32(_mm256_madd_epi16(_mm256_set1_epi64x(quad), b03), acc);
      }
      const __m128i sums =
          _mm_hadd_epi32(_mm256_castsi256_si128(acc), _mm256_extracti128_si256(acc, 1));
      const __m128i cs = _mm_loadu_si128(reinterpret_cast<const __m128i*>(colsum + j0));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(crow + j0),
                       _mm_sub_epi32(sums, _mm_slli_epi32(cs, 7)));
    }
    for (; j0 < n; ++j0) {  // last 1-3 columns: scalar, identical integer sums
      std::int32_t acc = 0;
      for (std::int64_t q = 0; q < kq; ++q) {
        const std::int8_t* bq = b + (q * n + j0) * 4;
        for (std::int64_t r = 0; r < 4; ++r) {
          acc += (static_cast<std::int32_t>(arow[q * 4 + r]) - 128) *
                 static_cast<std::int32_t>(bq[r]);
        }
      }
      crow[j0] = acc;
    }
  }
}

// Blocked gather with the output quantization fused in: the flat AVX2
// gather's vector transform produces Y + bias for 8 tiles, which is staged
// contiguously (the same interleave the flat kernel stores to the plane) and
// pushed through quantize_f32_s8 — elementwise and bit-exact across
// backends, so fused and flat bytes agree. A 4-tile 128-bit group follows
// the 8-tile groups for narrow tile rows (tw <= 4 grids the flat kernel
// leaves scalar); edge/partial tiles take the scalar reference kernel.
void wino_gather_q_s8_avx2(const std::int8_t* m_block, std::int64_t block_stride, const float* sm,
                           const float* at, std::int64_t t, std::int64_t m, std::int64_t th,
                           std::int64_t tw, std::int64_t tile0, std::int64_t ntiles,
                           std::int64_t oh, std::int64_t ow, float bias, float o_inv,
                           std::int8_t* oplane) {
  const __m256 bv = _mm256_set1_ps(bias);
  const __m128 bv4 = _mm_set1_ps(bias);
  __m256 M[kMaxVecTile * kMaxVecTile], TMP[kMaxVecTile * kMaxVecTile], Y[kMaxVecTile];
  __m128 M4[kMaxVecTile * kMaxVecTile], TMP4[kMaxVecTile * kMaxVecTile], Y4[kMaxVecTile];
  float frows[4 * 32];      // m rows x 8 tiles x m cols, m <= 4
  std::int8_t qrows[4 * 32];
  const bool vec_ok = t <= kMaxVecTile && (m == 2 || m == 4);

  std::int64_t tile = tile0;
  const std::int64_t tend = tile0 + ntiles;
  while (tile < tend) {
    const std::int64_t ti = tile / tw;
    const std::int64_t tjb = tile % tw;
    const std::int64_t tje = std::min(tw, tjb + (tend - tile));
    std::int64_t tj = tjb;
    if (vec_ok && ti * m + m <= oh) {
      for (; tj + 8 <= tje && (tj + 8) * m <= ow; tj += 8) {
        const std::int8_t* src = m_block + (ti * tw + tj - tile0);
        for (std::int64_t ab = 0; ab < t * t; ++ab) {
          const __m256i lv = _mm256_cvtepi8_epi32(
              _mm_loadl_epi64(reinterpret_cast<const __m128i*>(src + ab * block_stride)));
          M[ab] = _mm256_mul_ps(_mm256_cvtepi32_ps(lv), _mm256_set1_ps(sm[ab]));
        }
        for (std::int64_t i = 0; i < m; ++i) {  // TMP = At * M (smm_nn: skip zeros)
          for (std::int64_t j = 0; j < t; ++j) {
            __m256 acc = _mm256_setzero_ps();
            for (std::int64_t kk = 0; kk < t; ++kk) {
              const float av = at[i * t + kk];
              if (av == 0.F) continue;
              acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(av), M[kk * t + j]));
            }
            TMP[i * t + j] = acc;
          }
        }
        for (std::int64_t a = 0; a < m; ++a) {
          for (std::int64_t b = 0; b < m; ++b) {  // Y = TMP * At^T (smm_nt: no skip)
            __m256 acc = _mm256_setzero_ps();
            for (std::int64_t kk = 0; kk < t; ++kk) {
              acc = _mm256_add_ps(acc,
                                  _mm256_mul_ps(TMP[a * t + kk], _mm256_set1_ps(at[b * t + kk])));
            }
            Y[b] = _mm256_add_ps(acc, bv);
          }
          if (m == 2) {
            store_interleave2(frows + a * 16, Y[0], Y[1]);
          } else {
            store_interleave4(frows + a * 32, Y[0], Y[1], Y[2], Y[3]);
          }
        }
        quantize_f32_s8_avx2(frows, qrows, m * 8 * m, o_inv);
        for (std::int64_t a = 0; a < m; ++a) {
          std::memcpy(oplane + (ti * m + a) * ow + tj * m, qrows + a * 8 * m,
                      static_cast<std::size_t>(8 * m));
        }
      }
      for (; tj + 4 <= tje && (tj + 4) * m <= ow; tj += 4) {  // 4-tile group
        const std::int8_t* src = m_block + (ti * tw + tj - tile0);
        for (std::int64_t ab = 0; ab < t * t; ++ab) {
          std::int32_t raw;  // 4-byte load: loadl would read past the block
          std::memcpy(&raw, src + ab * block_stride, 4);
          const __m128i lv = _mm_cvtepi8_epi32(_mm_cvtsi32_si128(raw));
          M4[ab] = _mm_mul_ps(_mm_cvtepi32_ps(lv), _mm_set1_ps(sm[ab]));
        }
        for (std::int64_t i = 0; i < m; ++i) {
          for (std::int64_t j = 0; j < t; ++j) {
            __m128 acc = _mm_setzero_ps();
            for (std::int64_t kk = 0; kk < t; ++kk) {
              const float av = at[i * t + kk];
              if (av == 0.F) continue;
              acc = _mm_add_ps(acc, _mm_mul_ps(_mm_set1_ps(av), M4[kk * t + j]));
            }
            TMP4[i * t + j] = acc;
          }
        }
        for (std::int64_t a = 0; a < m; ++a) {
          for (std::int64_t b = 0; b < m; ++b) {
            __m128 acc = _mm_setzero_ps();
            for (std::int64_t kk = 0; kk < t; ++kk) {
              acc = _mm_add_ps(acc, _mm_mul_ps(TMP4[a * t + kk], _mm_set1_ps(at[b * t + kk])));
            }
            Y4[b] = _mm_add_ps(acc, bv4);
          }
          if (m == 2) {
            store_interleave2_128(frows + a * 8, Y4[0], Y4[1]);
          } else {
            store_interleave4_128(frows + a * 16, Y4[0], Y4[1], Y4[2], Y4[3]);
          }
        }
        quantize_f32_s8_avx2(frows, qrows, m * 4 * m, o_inv);
        for (std::int64_t a = 0; a < m; ++a) {
          std::memcpy(oplane + (ti * m + a) * ow + tj * m, qrows + a * 4 * m,
                      static_cast<std::size_t>(4 * m));
        }
      }
    }
    if (tj < tje) {  // edge/partial tiles: scalar reference path
      scalar_kernels().wino_gather_q_s8(m_block + (ti * tw + tj - tile0), block_stride, sm, at, t,
                                        m, th, tw, ti * tw + tj, tje - tj, oh, ow, bias, o_inv,
                                        oplane);
    }
    tile += tje - tjb;
  }
}

}  // namespace

const KernelTable* avx2_kernel_table() {
  static const KernelTable table = [] {
    KernelTable t;
    t.name = "avx2";
    t.gemm_s8_s32 = gemm_s8_s32_avx2;
    t.gemm_f32_packed_nn = gemm_f32_packed_nn_avx2;
    t.quantize_f32_s8 = quantize_f32_s8_avx2;
    t.quantize_f32_s8_taps = quantize_f32_s8_taps_avx2;
    t.requant_s32_s8 = requant_s32_s8_avx2;
    t.requant_s32_s8_taps = requant_s32_s8_taps_avx2;
    t.wino_scatter_f32 = wino_scatter_f32_avx2;
    t.wino_gather_f32 = wino_gather_f32_avx2;
    t.wino_scatter_block_f32 = wino_scatter_block_f32_avx2;
    t.gemm_u8s8_s32_k4 = gemm_u8s8_s32_k4_avx2;
    t.wino_gather_q_s8 = wino_gather_q_s8_avx2;
    return t;
  }();
  return &table;
}

}  // namespace wa::backend::simd

#else  // !(__AVX2__ && __FMA__): not an x86 build (or the compiler lacks -mavx2)

namespace wa::backend::simd {
const KernelTable* avx2_kernel_table() { return nullptr; }
}  // namespace wa::backend::simd

#endif
