// Runtime-dispatched multi-backend kernel layer for the int8 hot paths.
//
// Every function the deployment engine spends real time in — the int8 GEMM
// under both im2row convolution and the batched Winograd Hadamard stage, the
// Winograd scatter/gather data transforms, the flat fixed-point
// requantization loops, and the fp32 GEMM micro-kernel — is reached through a
// per-process KernelTable instead of a fixed symbol. The table is selected
// once, lazily, from CPU feature detection (AVX2 and AVX-512/VNNI on x86-64,
// NEON-dotprod on AArch64 when compiled in), with a
// `WA_BACKEND=scalar|avx2|avx512|neon` environment
// override; the scalar table is the always-available bit-exact reference and
// every SIMD backend is validated against it kernel-by-kernel AND
// end-to-end (bit-identical Int8Pipeline logits) in
// tests/test_simd_backends.cpp.
//
// Bit-exactness contract: for a fixed input, every table entry must produce
// byte-identical output on every backend. Integer kernels are exact by
// construction; the fp32 transform kernels achieve it by mirroring the
// scalar reference's per-element operation sequence (same multiply/add
// order, no FMA contraction — the files are compiled with -ffp-contract=off)
// so each SIMD lane replays the scalar arithmetic exactly. docs/NUMERICS.md
// explains why the engine's numerics make this both possible and required.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "quant/requant.hpp"

namespace wa::backend::simd {

/// One backend's kernel set. Entries left null fall back to the scalar
/// reference when the table is registered (per-kernel fallback: a backend may
/// accelerate only the kernels its ISA is good at).
struct KernelTable {
  const char* name = "scalar";

  /// C_int32[m,n] = A_int8[m,k] x B_int8[k,n], all row-major, C overwritten.
  void (*gemm_s8_s32)(std::int64_t m, std::int64_t n, std::int64_t k, const std::int8_t* a,
                      const std::int8_t* b, std::int32_t* c) = nullptr;

  /// fp32 GEMM micro-kernel on a packed row-major A panel [mb,k] (leading
  /// dimension lda) and row-major B [k,n] (ldb): C = alpha*A*B + beta*C.
  /// This is the inner kernel of wa::gemm_f32 (tensor/gemm.cpp).
  void (*gemm_f32_packed_nn)(std::int64_t mb, std::int64_t n, std::int64_t k, float alpha,
                             const float* a, std::int64_t lda, const float* b, std::int64_t ldb,
                             float beta, float* c, std::int64_t ldc) = nullptr;

  /// dst[i] = int8(nearbyint(min(127, max(-127, src[i] * inv_scale)))).
  /// The engine's flat float->int8 quantization loop (Winograd V and Y
  /// stages). NOTE: multiplies by the reciprocal — callers pass 1/scale.
  void (*quantize_f32_s8)(const float* src, std::int8_t* dst, std::int64_t n,
                          float inv_scale) = nullptr;

  /// Per-tap quantization: `taps` contiguous blocks of `per_tap` floats,
  /// block ab quantized at inv_scales[ab]. Exactly equivalent to `taps`
  /// calls of quantize_f32_s8 (the tap loop lives inside the backend TU so
  /// the blocked executor's short tap-major V rows don't pay a dispatch per
  /// tap; requant_common.hpp builds the driver once per backend).
  void (*quantize_f32_s8_taps)(const float* src, std::int8_t* dst, std::int64_t taps,
                               std::int64_t per_tap, const float* inv_scales) = nullptr;

  /// dst[i] = saturate_8(apply_multiplier(acc[i], mult)) — the fixed-point
  /// requantization loop under every int32 accumulator (im2row conv, linear,
  /// Winograd M stage). Must match quant::apply_multiplier bit-for-bit for
  /// every (acc, mult), including shift <= 0 and shift > 31 regimes.
  void (*requant_s32_s8)(const std::int32_t* acc, std::int8_t* dst, std::int64_t n,
                         quant::FixedPointMultiplier mult) = nullptr;

  /// Per-tap (vector-of-ratios) requantization: `taps` contiguous blocks of
  /// `per_tap` accumulators, block ab requantized with mults[ab]. Exactly
  /// equivalent to `taps` calls of requant_s32_s8 — the Winograd executors
  /// lay M out tap-major ([t*t, ...]), so each tap's multiplier is
  /// loop-invariant over its block and the backend's flat vector loop runs
  /// unchanged per tap (requant_common.hpp builds this driver once; each
  /// backend instantiates it with its own flat kernel).
  void (*requant_s32_s8_taps)(const std::int32_t* acc, std::int8_t* dst, std::int64_t taps,
                              std::int64_t per_tap,
                              const quant::FixedPointMultiplier* mults) = nullptr;

  /// Winograd input transform (scatter) for one (batch, channel) plane:
  /// dequantize each t x t input tile at in_scale, apply V = Bt d B (bt is
  /// the row-major [t,t] Bt matrix), and scatter the t*t results of tile
  /// (ti,tj) to v_base[ab * ab_stride + ti*tw + tj] for ab in [0, t*t).
  /// Tiles step by m with symmetric zero padding `pad`.
  void (*wino_scatter_f32)(const std::int8_t* plane, std::int64_t height, std::int64_t width,
                           std::int64_t pad, float in_scale, const float* bt, std::int64_t t,
                           std::int64_t m, std::int64_t th, std::int64_t tw, float* v_base,
                           std::int64_t ab_stride) = nullptr;

  /// Winograd output transform (gather) for one (batch, out-channel) plane:
  /// gather the t*t requantized Hadamard levels of tile (ti,tj) from
  /// m_base[ab * ab_stride + ti*tw + tj], dequantize tap ab at sm[ab], apply
  /// Y = At M A (at is row-major [m,t]), add `bias`, and write the m x m
  /// output tile into oplane [oh, ow] (edge tiles are clipped). `sm` points
  /// at t*t per-tap M scales; the legacy per-tensor case passes a splat
  /// vector, which is bit-identical to the old scalar-sm kernel (same
  /// per-element multiply, same value in every lane).
  void (*wino_gather_f32)(const std::int8_t* m_base, std::int64_t ab_stride, const float* sm,
                          const float* at, std::int64_t t, std::int64_t m, std::int64_t th,
                          std::int64_t tw, std::int64_t oh, std::int64_t ow, float bias,
                          float* oplane) = nullptr;

  // --- Blocked-layout entries (the streaming tile-block Winograd path) -------
  //
  // The fused executor (winograd_conv_s8_blocked) processes one block of
  // consecutive tiles of one (batch, channel) plane at a time so the V and M
  // intermediates stay in a small L1/L2-resident scratch slab. Tiles are
  // indexed flat over the th x tw grid; a block is the range
  // [tile0, tile0 + ntiles). Per-element arithmetic is identical to the flat
  // kernels above, so flat and blocked executions are bit-identical.

  /// Blocked wino_scatter_f32: transform only tiles [tile0, tile0+ntiles) of
  /// one plane and write the t*t results of block-local tile `idx` to
  /// v_block[ab * block_stride + idx].
  void (*wino_scatter_block_f32)(const std::int8_t* plane, std::int64_t height,
                                 std::int64_t width, std::int64_t pad, float in_scale,
                                 const float* bt, std::int64_t t, std::int64_t m, std::int64_t th,
                                 std::int64_t tw, std::int64_t tile0, std::int64_t ntiles,
                                 float* v_block, std::int64_t block_stride) = nullptr;

  /// Channel-blocked int8 GEMM in offset-binary form, the Hadamard core of
  /// the fused path (and the layout vpdpbusd consumes directly):
  ///   c[i,j] = sum_kk (a[i*kpad + kk] - 128) * b[(kk/4)*n*4 + j*4 + kk%4]
  /// A is u8 row-major [m, kpad] holding int8 levels + 128 (kpad a multiple
  /// of 4, pad entries 128 == level 0); B interleaves groups of 4 k values
  /// per column ([kpad/4, n, 4], pad rows 0). Accumulation is int32, exact.
  void (*gemm_u8s8_s32_k4)(std::int64_t m, std::int64_t n, std::int64_t kpad,
                           const std::uint8_t* a, const std::int8_t* b,
                           std::int32_t* c) = nullptr;

  /// Blocked wino_gather_f32 with the output quantization fused in: gather
  /// tiles [tile0, tile0+ntiles) from m_block[ab * block_stride + idx],
  /// dequantize tap ab at sm[ab] (t*t entries, splat for the per-tensor
  /// case), Y = At M A + bias, then write int8 levels
  /// nearbyint(min(127, max(-127, y * o_inv))) into oplane (edge tiles
  /// clipped). o_inv is the reciprocal of the output scale, exactly as
  /// quantize_f32_s8 would receive it on the flat path.
  void (*wino_gather_q_s8)(const std::int8_t* m_block, std::int64_t block_stride, const float* sm,
                           const float* at, std::int64_t t, std::int64_t m, std::int64_t th,
                           std::int64_t tw, std::int64_t tile0, std::int64_t ntiles,
                           std::int64_t oh, std::int64_t ow, float bias, float o_inv,
                           std::int8_t* oplane) = nullptr;
};

/// A compiled-in backend and whether this machine can run it.
struct BackendDesc {
  std::string name;
  bool available = false;
};

/// The active table. Resolved once on first use: the WA_BACKEND environment
/// variable names a backend explicitly (unknown or unavailable names warn on
/// stderr and fall back), otherwise the fastest available backend wins.
/// Every entry is non-null (nulls were filled from the scalar reference).
const KernelTable& kernels();

/// The always-available scalar reference table (every entry non-null).
const KernelTable& scalar_kernels();

/// Every compiled-in backend, in preference order (scalar first), with its
/// runtime availability. Unavailable backends (e.g. an AVX2 build running on
/// a non-AVX2 CPU) are listed but cannot be selected.
std::vector<BackendDesc> registered_backends();

/// Names of the backends that can actually run here.
std::vector<std::string> available_backends();

/// Select a backend by name. Returns false (and changes nothing) when the
/// name is unknown or the CPU lacks the ISA. This is a testing/bench hook —
/// production selection happens once via WA_BACKEND / feature detection. Not
/// safe to race with in-flight forwards: switch between runs, not during.
bool set_backend(const std::string& name);

/// Name of the active table (resolving it on first use).
std::string active_backend();

}  // namespace wa::backend::simd
