// Shared fixed-point requantization logic for the SIMD backends.
//
// Before the per-tap refactor, the scalar reference loop's contract plus the
// vector-path regime guard and rounding-mask derivation were restated in
// three TUs (scalar/avx2/avx512, and again in neon). They are
// bit-exactness-critical — a backend that disagrees with the scalar
// reference on any (acc, mult) pair corrupts logits silently — so the per-tap
// vector-of-ratios entry point is built here ONCE and instantiated per
// backend, instead of growing a fourth copy.
#pragma once

#include <cstdint>
#include <limits>

#include "quant/requant.hpp"

namespace wa::backend::simd {

/// The canonical requantization loop: dst[i] =
/// saturate_8(apply_multiplier(acc[i], mult)). This is THE reference every
/// SIMD kernel must match byte-for-byte; scalar_kernels.cpp registers exactly
/// this function, and every SIMD backend's tail/fallback routes here (via
/// scalar_kernels(), so there is one compiled definition of the loop).
inline void requant_s32_s8_ref(const std::int32_t* acc, std::int8_t* dst, std::int64_t n,
                               quant::FixedPointMultiplier mult) {
  for (std::int64_t i = 0; i < n; ++i) {
    dst[i] = static_cast<std::int8_t>(quant::saturate(quant::apply_multiplier(acc[i], mult), 8));
  }
}

/// True when `mult` is in the regime the SIMD lanes model: a positive Q31
/// multiplier (quantize_multiplier yields m0 in [2^30, 2^31)) and a rounding
/// right shift in [1, 31]. Anything else — ratio >= 1 (shift <= 0), a ratio
/// so tiny the shift exceeds 31 — is rare enough that every backend takes the
/// scalar reference for it.
constexpr bool requant_vector_regime(quant::FixedPointMultiplier mult) {
  return mult.shift >= 1 && mult.shift <= 31 && mult.m0 >= (std::int32_t{1} << 30);
}

/// Low-bits mask of the rounding right shift by `s` (gemmlowp semantics,
/// round half away from zero): rem = high & mask, threshold = mask/2 +
/// (high < 0), result = (high >> s) + (rem > threshold). s == 31 needs the
/// INT32_MAX special case because 1 << 31 overflows.
constexpr std::int32_t requant_round_mask(int s) {
  return (s == 31) ? std::numeric_limits<std::int32_t>::max()
                   : ((std::int32_t{1} << s) - 1);
}

/// Per-tap driver: requantize `taps` contiguous blocks of `per_tap`
/// accumulators, block ab with mults[ab]. The blocked Winograd executor's t^2
/// tap GEMMs land their int32 accumulators per-tap-contiguous, so each tap's
/// multiplier is loop-invariant across its whole sweep and the backend's flat
/// vector kernel applies unchanged per block. Instantiated by each backend
/// with its own flat kernel so the per-tap entry inherits that backend's
/// vector path (and its scalar fallback for out-of-regime multipliers).
template <typename RequantFn>
inline void requant_s32_s8_taps_with(RequantFn&& requant, const std::int32_t* acc,
                                     std::int8_t* dst, std::int64_t taps, std::int64_t per_tap,
                                     const quant::FixedPointMultiplier* mults) {
  for (std::int64_t ab = 0; ab < taps; ++ab) {
    requant(acc + ab * per_tap, dst + ab * per_tap, per_tap, mults[ab]);
  }
}

/// Per-tap quantize driver, same shape as requant_s32_s8_taps_with: `taps`
/// contiguous blocks of `per_tap` floats, block ab quantized at
/// inv_scales[ab]. Keeping the tap loop inside the backend TU matters: the
/// blocked executor's V slabs are tap-major with short rows (one per tile
/// block), so a per-call dispatch per tap would dominate the sweep.
template <typename QuantizeFn>
inline void quantize_f32_s8_taps_with(QuantizeFn&& quantize, const float* src, std::int8_t* dst,
                                      std::int64_t taps, std::int64_t per_tap,
                                      const float* inv_scales) {
  for (std::int64_t ab = 0; ab < taps; ++ab) {
    quantize(src + ab * per_tap, dst + ab * per_tap, per_tap, inv_scales[ab]);
  }
}

}  // namespace wa::backend::simd
