// Scalar reference kernels: the always-available, bit-exact baseline of the
// multi-backend dispatch layer (kernel_table.hpp).
//
// Every SIMD backend must reproduce these byte-for-byte. The fp32 transform
// kernels are therefore compiled with -ffp-contract=off (see CMakeLists.txt):
// a contracted fused multiply-add here would round differently from the
// explicit multiply+add the vector lanes perform, and a 1-ulp difference in
// a transform feeds a rounding boundary in the very next quantization.
#include <algorithm>
#include <cmath>

#include "backend/simd/kernel_table.hpp"
#include "backend/simd/requant_common.hpp"
#include "tensor/arena.hpp"
#include "winograd/small_mat.hpp"

namespace wa::backend::simd {

namespace {

void gemm_s8_s32_scalar(std::int64_t m, std::int64_t n, std::int64_t k, const std::int8_t* a,
                        const std::int8_t* b, std::int32_t* c) {
#pragma omp parallel for schedule(static) if (m >= 8)
  for (std::int64_t i = 0; i < m; ++i) {
    std::int32_t* crow = c + i * n;
    for (std::int64_t j = 0; j < n; ++j) crow[j] = 0;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const std::int32_t av = a[i * k + kk];
      if (av == 0) continue;
      const std::int8_t* brow = b + kk * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * static_cast<std::int32_t>(brow[j]);
    }
  }
}

void gemm_f32_packed_nn_scalar(std::int64_t mb, std::int64_t n, std::int64_t k, float alpha,
                               const float* a, std::int64_t lda, const float* b, std::int64_t ldb,
                               float beta, float* c, std::int64_t ldc) {
  for (std::int64_t i = 0; i < mb; ++i) {
    float* crow = c + i * ldc;
    if (beta == 0.F) {
      std::fill(crow, crow + n, 0.F);
    } else if (beta != 1.F) {
      for (std::int64_t j = 0; j < n; ++j) crow[j] *= beta;
    }
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float av = alpha * a[i * lda + kk];
      if (av == 0.F) continue;
      const float* brow = b + kk * ldb;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void quantize_f32_s8_scalar(const float* src, std::int8_t* dst, std::int64_t n, float inv_scale) {
  for (std::int64_t i = 0; i < n; ++i) {
    const float x = std::min(127.F, std::max(-127.F, src[i] * inv_scale));
    dst[i] = static_cast<std::int8_t>(static_cast<std::int32_t>(std::nearbyintf(x)));
  }
}

void quantize_f32_s8_taps_scalar(const float* src, std::int8_t* dst, std::int64_t taps,
                                 std::int64_t per_tap, const float* inv_scales) {
  quantize_f32_s8_taps_with(quantize_f32_s8_scalar, src, dst, taps, per_tap, inv_scales);
}

void requant_s32_s8_scalar(const std::int32_t* acc, std::int8_t* dst, std::int64_t n,
                           quant::FixedPointMultiplier mult) {
  requant_s32_s8_ref(acc, dst, n, mult);
}

void requant_s32_s8_taps_scalar(const std::int32_t* acc, std::int8_t* dst, std::int64_t taps,
                                std::int64_t per_tap, const quant::FixedPointMultiplier* mults) {
  requant_s32_s8_taps_with(requant_s32_s8_scalar, acc, dst, taps, per_tap, mults);
}

void wino_scatter_f32_scalar(const std::int8_t* plane, std::int64_t height, std::int64_t width,
                             std::int64_t pad, float in_scale, const float* bt, std::int64_t t,
                             std::int64_t m, std::int64_t th, std::int64_t tw, float* v_base,
                             std::int64_t ab_stride) {
  ScratchArena& arena = ScratchArena::for_thread();
  ScratchArena::Scope frame(arena);
  // Stage the t input rows of one tile row as dequantized floats with the
  // zero padding materialized, so the per-tile loop reads without bounds
  // checks: fbuf[a][x] holds the value at (i0 + a, x - pad).
  const std::int64_t fw = (tw - 1) * m + t;
  float* fbuf = arena.alloc<float>(t * fw);
  float patch[wino::kSmallMatCap], tmp[wino::kSmallMatCap], out[wino::kSmallMatCap];
  for (std::int64_t ti = 0; ti < th; ++ti) {
    const std::int64_t i0 = ti * m - pad;
    for (std::int64_t a = 0; a < t; ++a) {
      float* row = fbuf + a * fw;
      const std::int64_t ii = i0 + a;
      if (ii < 0 || ii >= height) {
        std::fill(row, row + fw, 0.F);
        continue;
      }
      const std::int8_t* src = plane + ii * width;
      for (std::int64_t x = 0; x < fw; ++x) {
        const std::int64_t jj = x - pad;
        row[x] = (jj >= 0 && jj < width) ? static_cast<float>(src[jj]) * in_scale : 0.F;
      }
    }
    for (std::int64_t tj = 0; tj < tw; ++tj) {
      for (std::int64_t a = 0; a < t; ++a) {
        for (std::int64_t b = 0; b < t; ++b) patch[a * t + b] = fbuf[a * fw + tj * m + b];
      }
      wino::smm_sandwich(bt, static_cast<int>(t), static_cast<int>(t), patch, tmp, out);
      float* dst = v_base + ti * tw + tj;
      for (std::int64_t ab = 0; ab < t * t; ++ab) dst[ab * ab_stride] = out[ab];
    }
  }
}

void wino_gather_f32_scalar(const std::int8_t* m_base, std::int64_t ab_stride, const float* sm,
                            const float* at, std::int64_t t, std::int64_t m, std::int64_t th,
                            std::int64_t tw, std::int64_t oh, std::int64_t ow, float bias,
                            float* oplane) {
  float mtile[wino::kSmallMatCap], tmp[wino::kSmallMatCap], y[wino::kSmallMatCap];
  for (std::int64_t ti = 0; ti < th; ++ti) {
    for (std::int64_t tj = 0; tj < tw; ++tj) {
      const std::int8_t* src = m_base + ti * tw + tj;
      for (std::int64_t ab = 0; ab < t * t; ++ab) {
        mtile[ab] = static_cast<float>(src[ab * ab_stride]) * sm[ab];
      }
      wino::smm_sandwich(at, static_cast<int>(m), static_cast<int>(t), mtile, tmp, y);
      for (std::int64_t a = 0; a < m && ti * m + a < oh; ++a) {
        for (std::int64_t b = 0; b < m && tj * m + b < ow; ++b) {
          oplane[(ti * m + a) * ow + tj * m + b] = y[a * m + b] + bias;
        }
      }
    }
  }
}

// ---- Blocked-layout kernels (streaming tile-block Winograd path) -----------
//
// Same per-element arithmetic as the flat kernels above — a tile's transform
// does not depend on which other tiles share the call — so the fused blocked
// executor reproduces the flat path byte-for-byte.

void wino_scatter_block_f32_scalar(const std::int8_t* plane, std::int64_t height,
                                   std::int64_t width, std::int64_t pad, float in_scale,
                                   const float* bt, std::int64_t t, std::int64_t m,
                                   std::int64_t th, std::int64_t tw, std::int64_t tile0,
                                   std::int64_t ntiles, float* v_block,
                                   std::int64_t block_stride) {
  ScratchArena& arena = ScratchArena::for_thread();
  ScratchArena::Scope frame(arena);
  // Stage only the columns the block's tiles of one tile row touch; each
  // staged element is computed exactly as in wino_scatter_f32_scalar.
  float* fbuf = arena.alloc<float>(t * ((tw - 1) * m + t));
  float patch[wino::kSmallMatCap], tmp[wino::kSmallMatCap], out[wino::kSmallMatCap];
  std::int64_t tile = tile0;
  const std::int64_t tend = tile0 + ntiles;
  while (tile < tend) {
    const std::int64_t ti = tile / tw;
    const std::int64_t tjb = tile % tw;
    const std::int64_t tje = std::min(tw, tjb + (tend - tile));
    const std::int64_t seg = (tje - 1 - tjb) * m + t;
    const std::int64_t i0 = ti * m - pad;
    const std::int64_t x0 = tjb * m;  // fbuf column 0 is input column x0 - pad
    for (std::int64_t a = 0; a < t; ++a) {
      float* row = fbuf + a * seg;
      const std::int64_t ii = i0 + a;
      if (ii < 0 || ii >= height) {
        std::fill(row, row + seg, 0.F);
        continue;
      }
      const std::int8_t* src = plane + ii * width;
      for (std::int64_t x = 0; x < seg; ++x) {
        const std::int64_t jj = x0 + x - pad;
        row[x] = (jj >= 0 && jj < width) ? static_cast<float>(src[jj]) * in_scale : 0.F;
      }
    }
    for (std::int64_t tj = tjb; tj < tje; ++tj) {
      for (std::int64_t a = 0; a < t; ++a) {
        for (std::int64_t b = 0; b < t; ++b) patch[a * t + b] = fbuf[a * seg + (tj - tjb) * m + b];
      }
      wino::smm_sandwich(bt, static_cast<int>(t), static_cast<int>(t), patch, tmp, out);
      float* dst = v_block + (ti * tw + tj - tile0);
      for (std::int64_t ab = 0; ab < t * t; ++ab) dst[ab * block_stride] = out[ab];
    }
    tile += tje - tjb;
  }
}

void gemm_u8s8_s32_k4_scalar(std::int64_t m, std::int64_t n, std::int64_t kpad,
                             const std::uint8_t* a, const std::int8_t* b, std::int32_t* c) {
#pragma omp parallel for schedule(static) if (m >= 8)
  for (std::int64_t i = 0; i < m; ++i) {
    std::int32_t* crow = c + i * n;
    for (std::int64_t j = 0; j < n; ++j) crow[j] = 0;
    const std::uint8_t* arow = a + i * kpad;
    for (std::int64_t kq = 0; kq < kpad / 4; ++kq) {
      const std::int8_t* bq = b + kq * n * 4;
      for (std::int64_t r = 0; r < 4; ++r) {
        // Offset-binary A: level = stored byte - 128, so pad bytes (128)
        // contribute nothing, mirroring the flat kernel's av == 0 skip.
        const std::int32_t av = static_cast<std::int32_t>(arow[kq * 4 + r]) - 128;
        if (av == 0) continue;
        for (std::int64_t j = 0; j < n; ++j) {
          crow[j] += av * static_cast<std::int32_t>(bq[j * 4 + r]);
        }
      }
    }
  }
}

void wino_gather_q_s8_scalar(const std::int8_t* m_block, std::int64_t block_stride,
                             const float* sm, const float* at, std::int64_t t, std::int64_t m,
                             std::int64_t th, std::int64_t tw, std::int64_t tile0,
                             std::int64_t ntiles, std::int64_t oh, std::int64_t ow, float bias,
                             float o_inv, std::int8_t* oplane) {
  (void)th;
  float mtile[wino::kSmallMatCap], tmp[wino::kSmallMatCap], y[wino::kSmallMatCap];
  for (std::int64_t idx = 0; idx < ntiles; ++idx) {
    const std::int64_t ti = (tile0 + idx) / tw, tj = (tile0 + idx) % tw;
    const std::int8_t* src = m_block + idx;
    for (std::int64_t ab = 0; ab < t * t; ++ab) {
      mtile[ab] = static_cast<float>(src[ab * block_stride]) * sm[ab];
    }
    wino::smm_sandwich(at, static_cast<int>(m), static_cast<int>(t), mtile, tmp, y);
    for (std::int64_t a = 0; a < m && ti * m + a < oh; ++a) {
      for (std::int64_t b = 0; b < m && tj * m + b < ow; ++b) {
        // Exactly the flat path's two steps: out_f = y + bias, then the
        // quantize_f32_s8 element expression on out_f * o_inv.
        const float x = std::min(127.F, std::max(-127.F, (y[a * m + b] + bias) * o_inv));
        oplane[(ti * m + a) * ow + tj * m + b] =
            static_cast<std::int8_t>(static_cast<std::int32_t>(std::nearbyintf(x)));
      }
    }
  }
}

}  // namespace

const KernelTable& scalar_kernels() {
  static const KernelTable table = [] {
    KernelTable t;
    t.name = "scalar";
    t.gemm_s8_s32 = gemm_s8_s32_scalar;
    t.gemm_f32_packed_nn = gemm_f32_packed_nn_scalar;
    t.quantize_f32_s8 = quantize_f32_s8_scalar;
    t.quantize_f32_s8_taps = quantize_f32_s8_taps_scalar;
    t.requant_s32_s8 = requant_s32_s8_scalar;
    t.requant_s32_s8_taps = requant_s32_s8_taps_scalar;
    t.wino_scatter_f32 = wino_scatter_f32_scalar;
    t.wino_gather_f32 = wino_gather_f32_scalar;
    t.wino_scatter_block_f32 = wino_scatter_block_f32_scalar;
    t.gemm_u8s8_s32_k4 = gemm_u8s8_s32_k4_scalar;
    t.wino_gather_q_s8 = wino_gather_q_s8_scalar;
    return t;
  }();
  return table;
}

}  // namespace wa::backend::simd
