// Backend registry and runtime dispatch (see kernel_table.hpp).
//
// Selection policy, resolved once on first kernels() call:
//   1. WA_BACKEND=<name> picks that backend if it is compiled in AND the CPU
//      supports it; otherwise a one-line stderr warning explains the fall
//      back. This is how CI pins the scalar reference job and the AVX2 job.
//   2. Otherwise the most specialized available backend wins (registration
//      order is preference order: scalar, then ISA backends).
// set_backend() re-points the dispatch at runtime for tests and benches; it
// must not race with in-flight forwards (switch between runs).
#include "backend/simd/kernel_table.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace wa::backend::simd {

// Defined in avx2_kernels.cpp / avx512_kernels.cpp / neon_kernels.cpp; null
// when the ISA is not compiled in (wrong architecture or compiler without
// the -m flags).
const KernelTable* avx2_kernel_table();
const KernelTable* avx512_kernel_table();
const KernelTable* neon_kernel_table();

namespace {

bool cpu_supports_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool cpu_supports_avx512() {
#if defined(__x86_64__) || defined(__i386__)
  // The avx512 table's kernels use foundation + BW/VL (integer ops on 256/512
  // vectors) + VNNI (vpdpbusd / vpdpwssd); its null entries are filled from
  // the AVX2 table, so AVX2+FMA must be runnable too.
  return __builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512bw") &&
         __builtin_cpu_supports("avx512vl") && __builtin_cpu_supports("avx512vnni") &&
         cpu_supports_avx2();
#else
  return false;
#endif
}

struct Entry {
  KernelTable resolved;  // raw table with null slots filled from scalar
  bool available = false;
};

std::vector<Entry>& entries() {
  static std::vector<Entry> list = [] {
    std::vector<Entry> l;
    const KernelTable& s = scalar_kernels();
    // Fill a table's null slots from `base` (per-kernel fallback). Backends
    // default to the scalar reference; avx512 chains through the resolved
    // avx2 entry instead, so the kernels it does not specialize still run
    // vectorized (avx512 -> avx2 -> scalar).
    const auto add = [&l](const KernelTable* raw, bool available, const KernelTable& base) {
      if (raw == nullptr) return;
      Entry e;
      e.resolved = *raw;
      e.available = available;
      if (e.resolved.gemm_s8_s32 == nullptr) e.resolved.gemm_s8_s32 = base.gemm_s8_s32;
      if (e.resolved.gemm_f32_packed_nn == nullptr) {
        e.resolved.gemm_f32_packed_nn = base.gemm_f32_packed_nn;
      }
      if (e.resolved.quantize_f32_s8 == nullptr) e.resolved.quantize_f32_s8 = base.quantize_f32_s8;
      if (e.resolved.quantize_f32_s8_taps == nullptr) {
        e.resolved.quantize_f32_s8_taps = base.quantize_f32_s8_taps;
      }
      if (e.resolved.requant_s32_s8 == nullptr) e.resolved.requant_s32_s8 = base.requant_s32_s8;
      if (e.resolved.requant_s32_s8_taps == nullptr) {
        e.resolved.requant_s32_s8_taps = base.requant_s32_s8_taps;
      }
      if (e.resolved.wino_scatter_f32 == nullptr) {
        e.resolved.wino_scatter_f32 = base.wino_scatter_f32;
      }
      if (e.resolved.wino_gather_f32 == nullptr) e.resolved.wino_gather_f32 = base.wino_gather_f32;
      if (e.resolved.wino_scatter_block_f32 == nullptr) {
        e.resolved.wino_scatter_block_f32 = base.wino_scatter_block_f32;
      }
      if (e.resolved.gemm_u8s8_s32_k4 == nullptr) {
        e.resolved.gemm_u8s8_s32_k4 = base.gemm_u8s8_s32_k4;
      }
      if (e.resolved.wino_gather_q_s8 == nullptr) {
        e.resolved.wino_gather_q_s8 = base.wino_gather_q_s8;
      }
      l.push_back(e);
    };
    add(&s, true, s);
    add(avx2_kernel_table(), cpu_supports_avx2(), s);
    // cpu_supports_avx512() implies AVX2, so when the avx512 table is usable
    // its avx2 base is too; chaining through the resolved avx2 entry is safe.
    add(avx512_kernel_table(), cpu_supports_avx512(),
        avx2_kernel_table() != nullptr ? l.back().resolved : s);
    // A NEON table is only compiled in on AArch64, where baseline NEON is
    // architectural (and a dotprod-enabled build already requires a dotprod
    // CPU to run at all), so presence implies availability.
    add(neon_kernel_table(), true, s);
    return l;
  }();
  return list;
}

std::atomic<const KernelTable*> g_active{nullptr};

const KernelTable* pick_default() {
  auto& l = entries();
  const KernelTable* best = &l.front().resolved;
  for (const Entry& e : l) {
    if (e.available) best = &e.resolved;  // later registration = more specialized
  }
  const char* env = std::getenv("WA_BACKEND");
  if (env == nullptr || *env == '\0') return best;
  for (const Entry& e : l) {
    if (std::string(env) == e.resolved.name) {
      if (e.available) return &e.resolved;
      std::fprintf(stderr,
                   "wa: WA_BACKEND=%s is compiled in but this CPU cannot run it; using %s\n", env,
                   best->name);
      return best;
    }
  }
  std::string known;
  for (const Entry& e : l) {
    if (!known.empty()) known += "|";
    known += e.resolved.name;
  }
  std::fprintf(stderr, "wa: unknown WA_BACKEND=%s (compiled in: %s); using %s\n", env,
               known.c_str(), best->name);
  return best;
}

void ensure_active() {
  static std::once_flag once;
  std::call_once(once, [] { g_active.store(pick_default(), std::memory_order_release); });
}

}  // namespace

const KernelTable& kernels() {
  const KernelTable* t = g_active.load(std::memory_order_acquire);
  if (t != nullptr) return *t;
  ensure_active();
  return *g_active.load(std::memory_order_acquire);
}

std::vector<BackendDesc> registered_backends() {
  std::vector<BackendDesc> out;
  for (const Entry& e : entries()) out.push_back({e.resolved.name, e.available});
  return out;
}

std::vector<std::string> available_backends() {
  std::vector<std::string> out;
  for (const Entry& e : entries()) {
    if (e.available) out.push_back(e.resolved.name);
  }
  return out;
}

bool set_backend(const std::string& name) {
  for (Entry& e : entries()) {
    if (name == e.resolved.name) {
      if (!e.available) return false;
      g_active.store(&e.resolved, std::memory_order_release);
      return true;
    }
  }
  return false;
}

std::string active_backend() { return kernels().name; }

}  // namespace wa::backend::simd
