// NEON kernels for the multi-backend dispatch layer (kernel_table.hpp).
//
// Compiled in only on AArch64 (the #else stub keeps every other architecture
// linking). The int8 GEMM uses the SDOT (vdotq_s32) path when the build
// enables the dot-product extension (__ARM_FEATURE_DOT_PRODUCT — configure
// with -DWA_NEON_DOTPROD=ON, which adds -march=armv8.2-a+dotprod; the
// Cortex-A75/A55 class cores the paper's latency model targets support it);
// otherwise it falls back to widening multiply-accumulates (vmlal_s16),
// which every ARMv8-A core executes.
//
// The Winograd transform kernels are left null here: the registry fills them
// from the scalar reference per-kernel, so this backend accelerates the
// integer hot path (GEMM + requantization + quantization) and inherits
// bit-exact scalar transforms. The blocked-executor entries
// (wino_scatter_block_f32 / gemm_u8s8_s32_k4 / wino_gather_q_s8) are null
// for the same reason — the fused path still runs on NEON hosts, just with
// scalar transforms and a scalar k4 GEMM; a UDOT (vdotq_u32 on the
// offset-binary u8 side) port of gemm_u8s8_s32_k4 is the natural next
// NEON-specific win. This table cannot be exercised on the x86 CI
// runners; tests/test_simd_backends validates it on any AArch64 host that
// builds it, against the same conformance suite as AVX2.
#include "backend/simd/kernel_table.hpp"

#if defined(__aarch64__)

#include <arm_neon.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "backend/simd/requant_common.hpp"

namespace wa::backend::simd {
namespace {

#if defined(__ARM_FEATURE_DOT_PRODUCT)

// SDOT path: interleave four consecutive int8 B rows so each 32-bit lane
// holds the (k..k+3) column group one vdotq_s32 reduces. Accumulation is
// int32, same as the scalar kernel, so results are identical.
void gemm_rows_dotprod(std::int64_t i, std::int64_t n, std::int64_t k, const std::int8_t* a,
                       const std::int8_t* b, std::int32_t* c) {
  std::int32_t* crow = c + i * n;
  for (std::int64_t j = 0; j < n; ++j) crow[j] = 0;
  std::int64_t kk = 0;
  for (; kk + 4 <= k; kk += 4) {
    std::int32_t quad;
    std::memcpy(&quad, a + i * k + kk, 4);  // a[kk..kk+3] as one 32-bit group
    const int8x16_t av = vreinterpretq_s8_s32(vdupq_n_s32(quad));
    const std::int8_t* r0 = b + kk * n;
    const std::int8_t* r1 = r0 + n;
    const std::int8_t* r2 = r1 + n;
    const std::int8_t* r3 = r2 + n;
    std::int64_t j = 0;
    for (; j + 4 <= n; j += 4) {
      // Transpose the 4x4 int8 block [rows kk..kk+3, cols j..j+3] so lane g
      // holds column j+g's (k..k+3) group, then let SDOT do the reduction
      // (the grouping stores are cheap next to the 16 MACs one vdotq folds).
      std::int8_t groups[16];
      for (int g = 0; g < 4; ++g) {
        groups[4 * g + 0] = r0[j + g];
        groups[4 * g + 1] = r1[j + g];
        groups[4 * g + 2] = r2[j + g];
        groups[4 * g + 3] = r3[j + g];
      }
      const int32x4_t prev = vld1q_s32(crow + j);
      vst1q_s32(crow + j, vdotq_s32(prev, av, vld1q_s8(groups)));
    }
    for (; j < n; ++j) {
      std::int32_t acc = crow[j];
      acc += static_cast<std::int32_t>(a[i * k + kk]) * r0[j];
      acc += static_cast<std::int32_t>(a[i * k + kk + 1]) * r1[j];
      acc += static_cast<std::int32_t>(a[i * k + kk + 2]) * r2[j];
      acc += static_cast<std::int32_t>(a[i * k + kk + 3]) * r3[j];
      crow[j] = acc;
    }
  }
  for (; kk < k; ++kk) {  // k tail
    const std::int32_t av = a[i * k + kk];
    if (av == 0) continue;
    const std::int8_t* brow = b + kk * n;
    for (std::int64_t j = 0; j < n; ++j) crow[j] += av * static_cast<std::int32_t>(brow[j]);
  }
}

#endif  // __ARM_FEATURE_DOT_PRODUCT

// Widening multiply-accumulate path: per k, broadcast a[i,k] and vmlal over
// 8 int8 B columns widened to int16.
void gemm_rows_mlal(std::int64_t i, std::int64_t n, std::int64_t k, const std::int8_t* a,
                    const std::int8_t* b, std::int32_t* c) {
  std::int32_t* crow = c + i * n;
  for (std::int64_t j = 0; j < n; ++j) crow[j] = 0;
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const std::int16_t av = a[i * k + kk];
    if (av == 0) continue;
    const std::int8_t* brow = b + kk * n;
    std::int64_t j = 0;
    for (; j + 8 <= n; j += 8) {
      const int16x8_t bw = vmovl_s8(vld1_s8(brow + j));
      int32x4_t lo = vld1q_s32(crow + j);
      int32x4_t hi = vld1q_s32(crow + j + 4);
      lo = vmlal_n_s16(lo, vget_low_s16(bw), av);
      hi = vmlal_n_s16(hi, vget_high_s16(bw), av);
      vst1q_s32(crow + j, lo);
      vst1q_s32(crow + j + 4, hi);
    }
    for (; j < n; ++j) crow[j] += static_cast<std::int32_t>(av) * brow[j];
  }
}

void gemm_s8_s32_neon(std::int64_t m, std::int64_t n, std::int64_t k, const std::int8_t* a,
                      const std::int8_t* b, std::int32_t* c) {
#pragma omp parallel for schedule(static) if (m >= 8)
  for (std::int64_t i = 0; i < m; ++i) {
#if defined(__ARM_FEATURE_DOT_PRODUCT)
    gemm_rows_dotprod(i, n, k, a, b, c);
#else
    gemm_rows_mlal(i, n, k, a, b, c);
#endif
  }
}

void quantize_f32_s8_neon(const float* src, std::int8_t* dst, std::int64_t n, float inv_scale) {
  const float32x4_t lo = vdupq_n_f32(-127.F);
  const float32x4_t hi = vdupq_n_f32(127.F);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    // vmaxnm/vminnm (not vmax/vmin): FMAXNM returns the number when one
    // operand is NaN, so a NaN input clamps to -127 exactly like the scalar
    // reference's std::max(-127.F, NaN); plain FMAX would propagate the NaN
    // into vcvtnq and emit 0 instead.
    const float32x4_t x0 =
        vminnmq_f32(vmaxnmq_f32(vmulq_n_f32(vld1q_f32(src + i), inv_scale), lo), hi);
    const float32x4_t x1 =
        vminnmq_f32(vmaxnmq_f32(vmulq_n_f32(vld1q_f32(src + i + 4), inv_scale), lo), hi);
    // vcvtnq: round to nearest even — the scalar reference's nearbyintf.
    const int16x8_t q16 = vcombine_s16(vqmovn_s32(vcvtnq_s32_f32(x0)),
                                       vqmovn_s32(vcvtnq_s32_f32(x1)));
    vst1_s8(dst + i, vqmovn_s16(q16));
  }
  // Tail: the canonical scalar reference, so there is exactly one
  // implementation of the bit-exactness-critical loop.
  if (i < n) scalar_kernels().quantize_f32_s8(src + i, dst + i, n - i, inv_scale);
}

void requant_s32_s8_neon(const std::int32_t* acc, std::int8_t* dst, std::int64_t n,
                         quant::FixedPointMultiplier mult) {
  // Regime guard and rounding mask shared with the x86 backends
  // (requant_common.hpp); everything else is handled by the scalar reference.
  if (!requant_vector_regime(mult)) {
    scalar_kernels().requant_s32_s8(acc, dst, n, mult);
    return;
  }
  const int s = mult.shift;
  const std::int32_t mask32 = requant_round_mask(s);
  const int32x4_t maskv = vdupq_n_s32(mask32);
  const int32x4_t halfv = vdupq_n_s32(mask32 >> 1);
  const int32x4_t sneg = vdupq_n_s32(-s);
  const int32x4_t lo127 = vdupq_n_s32(-127);
  const int32x4_t hi127 = vdupq_n_s32(127);
  const auto apply4 = [&](int32x4_t av) {
    // SQRDMULH is *exactly* apply_multiplier's saturating rounding doubling
    // high multiply (gemmlowp mirrors the ARM instruction).
    const int32x4_t high = vqrdmulhq_n_s32(av, mult.m0);
    const int32x4_t rem = vandq_s32(high, maskv);
    // threshold = mask/2 + (high < 0): vshrq by 31 gives -1 for negatives.
    const int32x4_t thr = vsubq_s32(halfv, vshrq_n_s32(high, 31));
    const int32x4_t shifted = vshlq_s32(high, sneg);  // arithmetic shift right by s
    const int32x4_t res =
        vsubq_s32(shifted, vreinterpretq_s32_u32(vcgtq_s32(rem, thr)));
    return vminq_s32(hi127, vmaxq_s32(lo127, res));
  };
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const int32x4_t q0 = apply4(vld1q_s32(acc + i));
    const int32x4_t q1 = apply4(vld1q_s32(acc + i + 4));
    vst1_s8(dst + i, vqmovn_s16(vcombine_s16(vqmovn_s32(q0), vqmovn_s32(q1))));
  }
  if (i < n) scalar_kernels().requant_s32_s8(acc + i, dst + i, n - i, mult);
}

void quantize_f32_s8_taps_neon(const float* src, std::int8_t* dst, std::int64_t taps,
                               std::int64_t per_tap, const float* inv_scales) {
  quantize_f32_s8_taps_with(quantize_f32_s8_neon, src, dst, taps, per_tap, inv_scales);
}

void requant_s32_s8_taps_neon(const std::int32_t* acc, std::int8_t* dst, std::int64_t taps,
                              std::int64_t per_tap, const quant::FixedPointMultiplier* mults) {
  requant_s32_s8_taps_with(requant_s32_s8_neon, acc, dst, taps, per_tap, mults);
}

}  // namespace

const KernelTable* neon_kernel_table() {
  static const KernelTable table = [] {
    KernelTable t;
    t.name = "neon";
    t.gemm_s8_s32 = gemm_s8_s32_neon;
    t.quantize_f32_s8 = quantize_f32_s8_neon;
    t.quantize_f32_s8_taps = quantize_f32_s8_taps_neon;
    t.requant_s32_s8 = requant_s32_s8_neon;
    t.requant_s32_s8_taps = requant_s32_s8_taps_neon;
    // gemm_f32_packed_nn / wino_scatter_f32 / wino_gather_f32 stay null: the
    // registry fills them from the scalar reference.
    return t;
  }();
  return &table;
}

}  // namespace wa::backend::simd

#else  // !__aarch64__

namespace wa::backend::simd {
const KernelTable* neon_kernel_table() { return nullptr; }
}  // namespace wa::backend::simd

#endif
