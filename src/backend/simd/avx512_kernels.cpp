// AVX-512/VNNI kernels for the multi-backend dispatch layer
// (kernel_table.hpp).
//
// Compiled with -mavx512f -mavx512bw -mavx512vl -mavx512dq -mavx512vnni (see
// CMakeLists.txt) whenever the compiler supports the flags — even on hosts
// that cannot run it, so CI always builds this TU. kernel_table.cpp gates
// registration on CPUID (F+BW+VL+VNNI) and fills the entries this table does
// not specialize from the resolved AVX2 table (avx512 -> avx2 -> scalar).
//
// This table specializes the int8 GEMM cores and the two elementwise
// (de)quantization sweeps the fused blocked executor leans on:
//   - gemm_s8_s32: the flat row-major GEMM, ported from the AVX2 madd
//     structure to 512-bit lanes with vpdpwssd fusing the madd+add;
//   - gemm_u8s8_s32_k4: the channel-blocked Hadamard core of the fused
//     Winograd path, one vpdpbusd per (row, 16 columns, 4 channels) step.
//     vpdpbusd multiplies unsigned x signed bytes, which is why the blocked
//     U cache stores offset-binary u8 (level + 128); the offset is removed
//     exactly with a per-column sum (see the kernel comment);
//   - quantize_f32_s8 / requant_s32_s8: 16-lane ports of the AVX2 kernels.
//     Per tile block these touch every V and M element, so their width sets a
//     floor on the fused path's cost.
// The GEMMs accumulate in int32 with no saturation, and the elementwise
// kernels replay the scalar rounding exactly, so all results are
// bit-identical to the scalar reference.
#include "backend/simd/kernel_table.hpp"

#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512VL__) && \
    defined(__AVX512VNNI__)

#include <immintrin.h>

#include <algorithm>
#include <cstring>
#include <limits>

#include "backend/simd/requant_common.hpp"
#include "tensor/arena.hpp"

// GCC expands many 512-bit intrinsics through their masked builtins with an
// undefined pass-through operand, which -Wmaybe-uninitialized flags inside
// avx512fintrin.h (GCC bug 105593). The operand is dead by construction —
// the mask is all-ones — so silence the false positive for this TU.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace wa::backend::simd {
namespace {

// ---- elementwise quantization ----------------------------------------------
//
// 16 floats per step: multiply, clamp, vcvtps2dq (round to nearest even under
// the default MXCSR), then vpmovdb narrows the in-range int32 straight to
// int8. Same instruction semantics as the scalar reference and the AVX2 port,
// so bytes are identical; the tail reuses the scalar kernel outright.

void quantize_f32_s8_avx512(const float* src, std::int8_t* dst, std::int64_t n,
                            float inv_scale) {
  const __m512 inv = _mm512_set1_ps(inv_scale);
  const __m512 lo = _mm512_set1_ps(-127.F);
  const __m512 hi = _mm512_set1_ps(127.F);
  std::int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    // Operand order matters on NaN: vmaxps/vminps return the SECOND operand
    // on unordered, so putting the data first makes the clamp constants win —
    // a NaN input clamps to -127 exactly like the scalar reference.
    const __m512 x =
        _mm512_min_ps(_mm512_max_ps(_mm512_mul_ps(_mm512_loadu_ps(src + i), inv), lo), hi);
    const __m512i q = _mm512_cvtps_epi32(x);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), _mm512_cvtepi32_epi8(q));
  }
  if (i < n) scalar_kernels().quantize_f32_s8(src + i, dst + i, n - i, inv_scale);
}

// ---- fixed-point requantization --------------------------------------------
//
// The AVX2 port widened to 16 lanes, with the sign blends turned into mask
// ops; the arithmetic is otherwise step-for-step identical.

void requant_s32_s8_avx512(const std::int32_t* acc, std::int8_t* dst, std::int64_t n,
                           quant::FixedPointMultiplier mult) {
  // Regime guard and rounding mask shared with the other backends
  // (requant_common.hpp); out-of-regime multipliers take the scalar
  // reference.
  if (!requant_vector_regime(mult)) {
    scalar_kernels().requant_s32_s8(acc, dst, n, mult);
    return;
  }
  const int s = mult.shift;
  const std::int32_t mask32 = requant_round_mask(s);
  const __m512i m0 = _mm512_set1_epi32(mult.m0);
  const __m512i pos_nudge = _mm512_set1_epi64(std::int64_t{1} << 30);
  const __m512i neg_nudge = _mm512_set1_epi64(1 - (std::int64_t{1} << 30));
  const __m512i trunc_fix = _mm512_set1_epi64((std::int64_t{1} << 31) - 1);
  const __m512i maskv = _mm512_set1_epi32(mask32);
  const __m512i halfv = _mm512_set1_epi32(mask32 >> 1);
  const __m512i lo127 = _mm512_set1_epi32(-127);
  const __m512i hi127 = _mm512_set1_epi32(127);
  const __m512i zero = _mm512_setzero_si512();
  const __m512i one = _mm512_set1_epi32(1);

  // (prod + nudge) / 2^31 with C++ trunc-toward-zero semantics: for negative
  // products add 2^31 - 1 first, then the logical 64-bit shift's low 32 bits
  // equal the arithmetic result (|high| < 2^31 always fits).
  const auto high31 = [&](__m512i prod) {
    const __mmask8 neg = _mm512_cmpgt_epi64_mask(zero, prod);
    __m512i t = _mm512_add_epi64(prod, _mm512_mask_blend_epi64(neg, pos_nudge, neg_nudge));
    t = _mm512_mask_add_epi64(t, neg, t, trunc_fix);
    return _mm512_srli_epi64(t, 31);
  };
  const auto apply16 = [&](__m512i av) {
    const __m512i pe = _mm512_mul_epi32(av, m0);                         // lanes 0,2,...,14
    const __m512i po = _mm512_mul_epi32(_mm512_srli_epi64(av, 32), m0);  // odd lanes
    const __m512i he = high31(pe);
    const __m512i ho = high31(po);
    const __m512i high = _mm512_mask_blend_epi32(0xAAAA, he, _mm512_slli_epi64(ho, 32));
    // Rounding right shift, gemmlowp semantics (round half away from zero).
    const __m512i rem = _mm512_and_si512(high, maskv);
    const __m512i thr = _mm512_add_epi32(halfv, _mm512_srli_epi32(high, 31));
    const __m512i shifted = _mm512_srai_epi32(high, static_cast<unsigned>(s));
    const __mmask16 up = _mm512_cmpgt_epi32_mask(rem, thr);
    const __m512i res = _mm512_mask_add_epi32(shifted, up, shifted, one);
    return _mm512_min_epi32(hi127, _mm512_max_epi32(lo127, res));
  };

  std::int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512i q = apply16(_mm512_loadu_si512(acc + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), _mm512_cvtepi32_epi8(q));
  }
  if (i < n) scalar_kernels().requant_s32_s8(acc + i, dst + i, n - i, mult);
}

void quantize_f32_s8_taps_avx512(const float* src, std::int8_t* dst, std::int64_t taps,
                                 std::int64_t per_tap, const float* inv_scales) {
  quantize_f32_s8_taps_with(quantize_f32_s8_avx512, src, dst, taps, per_tap, inv_scales);
}

void requant_s32_s8_taps_avx512(const std::int32_t* acc, std::int8_t* dst, std::int64_t taps,
                                std::int64_t per_tap, const quant::FixedPointMultiplier* mults) {
  requant_s32_s8_taps_with(requant_s32_s8_avx512, acc, dst, taps, per_tap, mults);
}

// ---- flat int8 GEMM ---------------------------------------------------------
//
// 4 (rows) x 32 (columns) register blocks, two k steps per iteration: int8 B
// rows sign-extended to int16 and interleaved so one vpdpwssd accumulates a
// (k, k+1) pair for 16 columns. The 512-bit unpack works within 128-bit
// chunks, so acc_lo holds columns {0-3, 8-11, 16-19, 24-27} and acc_hi the
// rest; a single permutex2var per store undoes the interleave.

void gemm_s8_s32_avx512(std::int64_t m, std::int64_t n, std::int64_t k, const std::int8_t* a,
                        const std::int8_t* b, std::int32_t* c) {
  const __m512i idx_first =
      _mm512_setr_epi32(0, 1, 2, 3, 16, 17, 18, 19, 4, 5, 6, 7, 20, 21, 22, 23);
  const __m512i idx_second =
      _mm512_setr_epi32(8, 9, 10, 11, 24, 25, 26, 27, 12, 13, 14, 15, 28, 29, 30, 31);
  const std::int64_t mblocks = (m + 3) / 4;
#pragma omp parallel for schedule(static) if (m >= 8)
  for (std::int64_t blk = 0; blk < mblocks; ++blk) {
    const std::int64_t i0 = blk * 4;
    const std::int64_t mr = std::min<std::int64_t>(4, m - i0);
    std::int64_t j0 = 0;
    for (; j0 + 32 <= n; j0 += 32) {
      __m512i acc_lo[4], acc_hi[4];
      for (int r = 0; r < 4; ++r) {
        acc_lo[r] = _mm512_setzero_si512();
        acc_hi[r] = _mm512_setzero_si512();
      }
      std::int64_t kk = 0;
      for (; kk + 2 <= k; kk += 2) {
        const __m512i b0 = _mm512_cvtepi8_epi16(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + kk * n + j0)));
        const __m512i b1 = _mm512_cvtepi8_epi16(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + (kk + 1) * n + j0)));
        const __m512i lo = _mm512_unpacklo_epi16(b0, b1);
        const __m512i hi = _mm512_unpackhi_epi16(b0, b1);
        for (std::int64_t r = 0; r < mr; ++r) {
          const std::int32_t a0 = a[(i0 + r) * k + kk];
          const std::int32_t a1 = a[(i0 + r) * k + kk + 1];
          const __m512i av = _mm512_set1_epi32((a1 << 16) | (a0 & 0xFFFF));
          acc_lo[r] = _mm512_dpwssd_epi32(acc_lo[r], av, lo);
          acc_hi[r] = _mm512_dpwssd_epi32(acc_hi[r], av, hi);
        }
      }
      if (kk < k) {  // odd-k tail: pair the last row with an implicit zero row
        const __m512i b0 = _mm512_cvtepi8_epi16(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + kk * n + j0)));
        const __m512i zero = _mm512_setzero_si512();
        const __m512i lo = _mm512_unpacklo_epi16(b0, zero);
        const __m512i hi = _mm512_unpackhi_epi16(b0, zero);
        for (std::int64_t r = 0; r < mr; ++r) {
          const std::int32_t a0 = a[(i0 + r) * k + kk];
          const __m512i av = _mm512_set1_epi32(a0 & 0xFFFF);
          acc_lo[r] = _mm512_dpwssd_epi32(acc_lo[r], av, lo);
          acc_hi[r] = _mm512_dpwssd_epi32(acc_hi[r], av, hi);
        }
      }
      for (std::int64_t r = 0; r < mr; ++r) {
        std::int32_t* crow = c + (i0 + r) * n + j0;
        _mm512_storeu_si512(crow, _mm512_permutex2var_epi32(acc_lo[r], idx_first, acc_hi[r]));
        _mm512_storeu_si512(crow + 16,
                            _mm512_permutex2var_epi32(acc_lo[r], idx_second, acc_hi[r]));
      }
    }
    // 16-column tail: the AVX2-shaped 256-bit block (VL), vpdpwssd-fused.
    for (; j0 + 16 <= n; j0 += 16) {
      __m256i acc_lo[4], acc_hi[4];
      for (int r = 0; r < 4; ++r) {
        acc_lo[r] = _mm256_setzero_si256();
        acc_hi[r] = _mm256_setzero_si256();
      }
      std::int64_t kk = 0;
      for (; kk + 2 <= k; kk += 2) {
        const __m256i b0 = _mm256_cvtepi8_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + kk * n + j0)));
        const __m256i b1 = _mm256_cvtepi8_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + (kk + 1) * n + j0)));
        const __m256i lo = _mm256_unpacklo_epi16(b0, b1);
        const __m256i hi = _mm256_unpackhi_epi16(b0, b1);
        for (std::int64_t r = 0; r < mr; ++r) {
          const std::int32_t a0 = a[(i0 + r) * k + kk];
          const std::int32_t a1 = a[(i0 + r) * k + kk + 1];
          const __m256i av = _mm256_set1_epi32((a1 << 16) | (a0 & 0xFFFF));
          acc_lo[r] = _mm256_dpwssd_epi32(acc_lo[r], av, lo);
          acc_hi[r] = _mm256_dpwssd_epi32(acc_hi[r], av, hi);
        }
      }
      if (kk < k) {
        const __m256i b0 = _mm256_cvtepi8_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + kk * n + j0)));
        const __m256i zero = _mm256_setzero_si256();
        const __m256i lo = _mm256_unpacklo_epi16(b0, zero);
        const __m256i hi = _mm256_unpackhi_epi16(b0, zero);
        for (std::int64_t r = 0; r < mr; ++r) {
          const std::int32_t a0 = a[(i0 + r) * k + kk];
          const __m256i av = _mm256_set1_epi32(a0 & 0xFFFF);
          acc_lo[r] = _mm256_dpwssd_epi32(acc_lo[r], av, lo);
          acc_hi[r] = _mm256_dpwssd_epi32(acc_hi[r], av, hi);
        }
      }
      for (std::int64_t r = 0; r < mr; ++r) {
        std::int32_t* crow = c + (i0 + r) * n + j0;
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(crow),
                            _mm256_permute2x128_si256(acc_lo[r], acc_hi[r], 0x20));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(crow + 8),
                            _mm256_permute2x128_si256(acc_lo[r], acc_hi[r], 0x31));
      }
    }
    // 4-column tail: 128-bit vpdpwssd (VL). The Winograd tap GEMMs run at
    // n = tiles-in-block, which is 4 on the smallest Fig. 7 planes — without
    // this step those shapes would fall through to the scalar loop below.
    for (; j0 + 4 <= n; j0 += 4) {
      __m128i acc[4];
      for (int r = 0; r < 4; ++r) acc[r] = _mm_setzero_si128();
      const auto load4_s8_to_s16 = [](const std::int8_t* p) {
        std::int32_t raw;
        std::memcpy(&raw, p, 4);
        return _mm_cvtepi8_epi16(_mm_cvtsi32_si128(raw));
      };
      std::int64_t kk = 0;
      for (; kk + 2 <= k; kk += 2) {
        const __m128i b0 = load4_s8_to_s16(b + kk * n + j0);
        const __m128i b1 = load4_s8_to_s16(b + (kk + 1) * n + j0);
        const __m128i pairs = _mm_unpacklo_epi16(b0, b1);
        for (std::int64_t r = 0; r < mr; ++r) {
          const std::int32_t a0 = a[(i0 + r) * k + kk];
          const std::int32_t a1 = a[(i0 + r) * k + kk + 1];
          const __m128i av = _mm_set1_epi32((a1 << 16) | (a0 & 0xFFFF));
          acc[r] = _mm_dpwssd_epi32(acc[r], av, pairs);
        }
      }
      if (kk < k) {
        const __m128i b0 = load4_s8_to_s16(b + kk * n + j0);
        const __m128i pairs = _mm_unpacklo_epi16(b0, _mm_setzero_si128());
        for (std::int64_t r = 0; r < mr; ++r) {
          const std::int32_t a0 = a[(i0 + r) * k + kk];
          const __m128i av = _mm_set1_epi32(a0 & 0xFFFF);
          acc[r] = _mm_dpwssd_epi32(acc[r], av, pairs);
        }
      }
      for (std::int64_t r = 0; r < mr; ++r) {
        _mm_storeu_si128(reinterpret_cast<__m128i*>(c + (i0 + r) * n + j0), acc[r]);
      }
    }
    if (j0 < n) {  // last 1-3 columns: scalar, identical to the reference kernel
      for (std::int64_t r = 0; r < mr; ++r) {
        std::int32_t* crow = c + (i0 + r) * n;
        for (std::int64_t j = j0; j < n; ++j) crow[j] = 0;
        for (std::int64_t kk = 0; kk < k; ++kk) {
          const std::int32_t av = a[(i0 + r) * k + kk];
          if (av == 0) continue;
          const std::int8_t* brow = b + kk * n;
          for (std::int64_t j = j0; j < n; ++j) crow[j] += av * static_cast<std::int32_t>(brow[j]);
        }
      }
    }
  }
}

// ---- blocked offset-binary GEMM (vpdpbusd) ---------------------------------
//
// B is already in vpdpbusd's native layout ([kpad/4, n, 4]): one instruction
// accumulates 4 channels for 16 columns. The u8 A side holds level + 128;
// since sum((a-128)*b) = sum(a*b) - 128*sum(b), subtracting 128*colsum once
// per column after the k loop removes the offset exactly in int32 (pad
// channels cancel for any B pad value — their a is exactly 128).

void gemm_u8s8_s32_k4_avx512(std::int64_t m, std::int64_t n, std::int64_t kpad,
                             const std::uint8_t* a, const std::int8_t* b, std::int32_t* c) {
  ScratchArena& arena = ScratchArena::for_thread();
  ScratchArena::Scope frame(arena);
  const std::int64_t kq = kpad / 4;
  std::int32_t* colsum = arena.alloc<std::int32_t>(n);
  {
    // Vector colsum pass: vpdpbusd against an all-1s "activation" sums each
    // column's quad (1 * b), so the offset correction costs one dot-product
    // per 16 columns per k-quad instead of a scalar sweep over B.
    const __m512i ones512 = _mm512_set1_epi8(1);
    std::int64_t j0 = 0;
    for (; j0 + 16 <= n; j0 += 16) {
      __m512i cs = _mm512_setzero_si512();
      for (std::int64_t q = 0; q < kq; ++q) {
        cs = _mm512_dpbusd_epi32(cs, ones512, _mm512_loadu_si512(b + (q * n + j0) * 4));
      }
      _mm512_storeu_si512(colsum + j0, cs);
    }
    for (; j0 + 4 <= n; j0 += 4) {
      __m128i cs = _mm_setzero_si128();
      for (std::int64_t q = 0; q < kq; ++q) {
        cs = _mm_dpbusd_epi32(
            cs, _mm_set1_epi8(1),
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + (q * n + j0) * 4)));
      }
      _mm_storeu_si128(reinterpret_cast<__m128i*>(colsum + j0), cs);
    }
    for (; j0 < n; ++j0) {
      std::int32_t cs = 0;
      for (std::int64_t q = 0; q < kq; ++q) {
        const std::int8_t* bq = b + (q * n + j0) * 4;
        cs += static_cast<std::int32_t>(bq[0]) + static_cast<std::int32_t>(bq[1]) +
              static_cast<std::int32_t>(bq[2]) + static_cast<std::int32_t>(bq[3]);
      }
      colsum[j0] = cs;
    }
  }
  const auto bcast_quad = [](const std::uint8_t* p) {
    std::int32_t raw;
    std::memcpy(&raw, p, 4);
    return raw;
  };
  const std::int64_t mblocks = (m + 3) / 4;
#pragma omp parallel for schedule(static) if (m >= 8)
  for (std::int64_t blk = 0; blk < mblocks; ++blk) {
    const std::int64_t i0 = blk * 4;
    const std::int64_t mr = std::min<std::int64_t>(4, m - i0);
    std::int64_t j0 = 0;
    for (; j0 + 16 <= n; j0 += 16) {
      __m512i acc[4];
      for (int r = 0; r < 4; ++r) acc[r] = _mm512_setzero_si512();
      for (std::int64_t q = 0; q < kq; ++q) {
        const __m512i bvec = _mm512_loadu_si512(b + (q * n + j0) * 4);
        for (std::int64_t r = 0; r < mr; ++r) {
          const __m512i av = _mm512_set1_epi32(bcast_quad(a + (i0 + r) * kpad + q * 4));
          acc[r] = _mm512_dpbusd_epi32(acc[r], av, bvec);
        }
      }
      const __m512i cs = _mm512_loadu_si512(colsum + j0);
      const __m512i corr = _mm512_slli_epi32(cs, 7);  // 128 * colsum
      for (std::int64_t r = 0; r < mr; ++r) {
        _mm512_storeu_si512(c + (i0 + r) * n + j0, _mm512_sub_epi32(acc[r], corr));
      }
    }
    for (; j0 + 4 <= n; j0 += 4) {  // 4-column tail: 128-bit vpdpbusd (VL)
      __m128i acc[4];
      for (int r = 0; r < 4; ++r) acc[r] = _mm_setzero_si128();
      for (std::int64_t q = 0; q < kq; ++q) {
        const __m128i bvec =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + (q * n + j0) * 4));
        for (std::int64_t r = 0; r < mr; ++r) {
          const __m128i av = _mm_set1_epi32(bcast_quad(a + (i0 + r) * kpad + q * 4));
          acc[r] = _mm_dpbusd_epi32(acc[r], av, bvec);
        }
      }
      const __m128i cs = _mm_loadu_si128(reinterpret_cast<const __m128i*>(colsum + j0));
      const __m128i corr = _mm_slli_epi32(cs, 7);
      for (std::int64_t r = 0; r < mr; ++r) {
        _mm_storeu_si128(reinterpret_cast<__m128i*>(c + (i0 + r) * n + j0),
                         _mm_sub_epi32(acc[r], corr));
      }
    }
    for (; j0 < n; ++j0) {  // last 1-3 columns: scalar, identical integer sums
      for (std::int64_t r = 0; r < mr; ++r) {
        const std::uint8_t* arow = a + (i0 + r) * kpad;
        std::int32_t acc = 0;
        for (std::int64_t q = 0; q < kq; ++q) {
          const std::int8_t* bq = b + (q * n + j0) * 4;
          for (std::int64_t rr = 0; rr < 4; ++rr) {
            acc += (static_cast<std::int32_t>(arow[q * 4 + rr]) - 128) *
                   static_cast<std::int32_t>(bq[rr]);
          }
        }
        c[(i0 + r) * n + j0] = acc;
      }
    }
  }
}

}  // namespace

const KernelTable* avx512_kernel_table() {
  static const KernelTable table = [] {
    KernelTable t;
    t.name = "avx512";
    t.gemm_s8_s32 = gemm_s8_s32_avx512;
    t.gemm_u8s8_s32_k4 = gemm_u8s8_s32_k4_avx512;
    t.quantize_f32_s8 = quantize_f32_s8_avx512;
    t.quantize_f32_s8_taps = quantize_f32_s8_taps_avx512;
    t.requant_s32_s8 = requant_s32_s8_avx512;
    t.requant_s32_s8_taps = requant_s32_s8_taps_avx512;
    // Everything else inherits the resolved AVX2 entries (kernel_table.cpp
    // fills nulls from avx2 when it is compiled in, else scalar).
    return t;
  }();
  return &table;
}

}  // namespace wa::backend::simd

#else  // ISA not compiled in: non-x86 build or compiler without -mavx512*

namespace wa::backend::simd {
const KernelTable* avx512_kernel_table() { return nullptr; }
}  // namespace wa::backend::simd

#endif
