#include "nn/layers.hpp"

#include <cmath>
#include <stdexcept>

#include "autograd/ops.hpp"

namespace wa::nn {

int winograd_m(ConvAlgo a) {
  switch (a) {
    case ConvAlgo::kWinograd2: return 2;
    case ConvAlgo::kWinograd4: return 4;
    case ConvAlgo::kWinograd6: return 6;
    default: throw std::invalid_argument("winograd_m: not a Winograd algorithm");
  }
}

std::string to_string(ConvAlgo a) {
  switch (a) {
    case ConvAlgo::kIm2row: return "im2row";
    case ConvAlgo::kIm2col: return "im2col";
    case ConvAlgo::kDirect: return "direct";
    case ConvAlgo::kWinograd2: return "F2";
    case ConvAlgo::kWinograd4: return "F4";
    case ConvAlgo::kWinograd6: return "F6";
  }
  return "unknown";
}

Tensor kaiming_normal(const Shape& shape, std::int64_t fan_in, Rng& rng) {
  const float stddev = std::sqrt(2.F / static_cast<float>(std::max<std::int64_t>(fan_in, 1)));
  return Tensor::randn(shape, rng, stddev);
}

Conv2d::Conv2d(Conv2dOptions opts, Rng& rng) : opts_(opts) {
  if (is_winograd(opts.algo)) {
    throw std::invalid_argument(
        "nn::Conv2d handles only im2row/im2col/direct; use core::WinogradAwareConv2d (via "
        "core::make_conv) for Winograd algorithms");
  }
  const std::int64_t cpg = opts.in_channels / opts.groups;
  const std::int64_t fan_in = cpg * opts.kernel * opts.kernel;
  weight_ = register_parameter(
      "weight", kaiming_normal({opts.out_channels, cpg, opts.kernel, opts.kernel}, fan_in, rng));
  if (opts.bias) {
    bias_ = register_parameter("bias", Tensor::zeros({opts.out_channels}));
  }
}

ag::Variable Conv2d::forward(const ag::Variable& input) {
  backend::ConvGeometry g;
  g.batch = input.shape()[0];
  g.in_channels = opts_.in_channels;
  g.height = input.shape()[2];
  g.width = input.shape()[3];
  g.out_channels = opts_.out_channels;
  g.kernel = opts_.kernel;
  g.pad = opts_.pad;
  g.groups = opts_.groups;

  ag::Variable x = quant::fake_quant_ste(input, in_obs_, opts_.qspec, training());
  ag::Variable w = opts_.per_channel_weights
                       ? quant::fake_quant_weights_ste(weight_, opts_.qspec, true)
                       : quant::fake_quant_ste(weight_, w_obs_, opts_.qspec, training());
  return conv2d_im2row(x, w, bias_, g);
}

BatchNorm2d::BatchNorm2d(std::int64_t channels) {
  gamma_ = register_parameter("gamma", Tensor::ones({channels}));
  beta_ = register_parameter("beta", Tensor::zeros({channels}));
  running_mean_ = register_buffer("running_mean", Tensor::zeros({channels}));
  running_var_ = register_buffer("running_var", Tensor::ones({channels}));
  state_.running_mean = Tensor::zeros({channels});
  state_.running_var = Tensor::ones({channels});
}

ag::Variable BatchNorm2d::forward(const ag::Variable& input) {
  // Keep registered buffers in sync with the live state so checkpoints
  // capture running statistics.
  state_.running_mean = running_mean_.value();
  state_.running_var = running_var_.value();
  ag::Variable out = batch_norm2d(input, gamma_, beta_, state_, training());
  running_mean_.value() = state_.running_mean;
  running_var_.value() = state_.running_var;
  return out;
}

ag::Variable ReLU::forward(const ag::Variable& input) { return ag::relu(input); }

ag::Variable MaxPool2d::forward(const ag::Variable& input) {
  return max_pool2d(input, kernel_, stride_);
}

ag::Variable GlobalAvgPool::forward(const ag::Variable& input) {
  return global_avg_pool(input);
}

ag::Variable Flatten::forward(const ag::Variable& input) {
  const auto& s = input.shape();
  std::int64_t features = 1;
  for (std::size_t i = 1; i < s.size(); ++i) features *= s[i];
  return ag::reshape(input, {s[0], features});
}

Linear::Linear(std::int64_t in_features, std::int64_t out_features, quant::QuantSpec qspec,
               Rng& rng)
    : qspec_(qspec) {
  weight_ = register_parameter("weight",
                               kaiming_normal({out_features, in_features}, in_features, rng));
  bias_ = register_parameter("bias", Tensor::zeros({out_features}));
}

ag::Variable Linear::forward(const ag::Variable& input) {
  ag::Variable x = quant::fake_quant_ste(input, in_obs_, qspec_, training());
  ag::Variable w = quant::fake_quant_ste(weight_, w_obs_, qspec_, training());
  return ag::linear(x, w, bias_);
}

}  // namespace wa::nn
