// Fused autograd ops for the standard (non-Winograd) layers:
// im2row convolution, max/average pooling and batch normalization.
#pragma once

#include "autograd/variable.hpp"
#include "backend/conv_kernels.hpp"

namespace wa::nn {

/// GEMM-lowered convolution (the paper's "im2row" baseline) with groups and
/// optional bias. Forward uses backend::im2row_conv; backward is the exact
/// adjoint (row2im scatter-add for the input gradient).
/// Pass an undefined Variable for `bias` to omit it.
ag::Variable conv2d_im2row(const ag::Variable& input, const ag::Variable& weight,
                           const ag::Variable& bias, const backend::ConvGeometry& geom);

/// Max pooling with square kernel/stride; saves argmax indices for backward.
ag::Variable max_pool2d(const ag::Variable& input, std::int64_t kernel, std::int64_t stride);

/// Mean over the spatial dimensions: [N,C,H,W] -> [N,C].
ag::Variable global_avg_pool(const ag::Variable& input);

/// Batch normalization state (running statistics live outside the graph).
struct BatchNormState {
  Tensor running_mean;  // [C]
  Tensor running_var;   // [C]
  float momentum = 0.1F;
  float eps = 1e-5F;
};

/// Batch norm over N,H,W per channel. In training mode uses batch statistics
/// and updates the running buffers; in eval mode uses the running buffers.
ag::Variable batch_norm2d(const ag::Variable& input, const ag::Variable& gamma,
                          const ag::Variable& beta, BatchNormState& state, bool training);

/// Scatter-add the adjoint of im2row_lower: rows [N*oh*ow, C*r*r] back into
/// an input-shaped tensor. Exposed for tests.
Tensor row2im_accumulate(const Tensor& rows, const backend::ConvGeometry& geom);

}  // namespace wa::nn
