// Standard layers: convolution (GEMM-lowered), batch-norm, pooling, linear.
#pragma once

#include <memory>

#include "nn/conv_config.hpp"
#include "nn/conv_ops.hpp"
#include "nn/module.hpp"
#include "quant/fake_quant_op.hpp"
#include "quant/observer.hpp"
#include "tensor/rng.hpp"

namespace wa::nn {

/// Convolution layer for the non-Winograd algorithms (im2row / im2col /
/// direct — numerically identical; the distinction matters for the latency
/// model, not for training). Supports quantization-aware training: inputs go
/// through an EMA-observed fake-quant, weights through a min-max one.
class Conv2d : public Module {
 public:
  Conv2d(Conv2dOptions opts, Rng& rng);

  ag::Variable forward(const ag::Variable& input) override;

  const Conv2dOptions& options() const { return opts_; }
  ag::Variable weight() { return weight_; }
  ag::Variable bias() { return bias_; }
  quant::RangeObserver& input_observer() { return in_obs_; }

 private:
  Conv2dOptions opts_;
  ag::Variable weight_;
  ag::Variable bias_;  // undefined when opts_.bias == false
  quant::RangeObserver in_obs_{quant::RangeObserver::Mode::kEma};
  quant::RangeObserver w_obs_{quant::RangeObserver::Mode::kMinMax};
};

/// Batch normalization over channels of NCHW input.
class BatchNorm2d : public Module {
 public:
  explicit BatchNorm2d(std::int64_t channels);
  ag::Variable forward(const ag::Variable& input) override;
  BatchNormState& state() { return state_; }

  // Frozen-statistics accessors for deployment compilers (bn folding or the
  // integer per-channel affine). The registered buffers are authoritative.
  ag::Variable gamma() { return gamma_; }
  ag::Variable beta() { return beta_; }
  const Tensor& running_mean() { return running_mean_.value(); }
  const Tensor& running_var() { return running_var_.value(); }
  float eps() const { return state_.eps; }

 private:
  ag::Variable gamma_;
  ag::Variable beta_;
  ag::Variable running_mean_;  // registered as buffers so checkpoints keep them
  ag::Variable running_var_;
  BatchNormState state_;
};

class ReLU : public Module {
 public:
  ag::Variable forward(const ag::Variable& input) override;
};

class MaxPool2d : public Module {
 public:
  MaxPool2d(std::int64_t kernel, std::int64_t stride) : kernel_(kernel), stride_(stride) {}
  ag::Variable forward(const ag::Variable& input) override;

  std::int64_t kernel() const { return kernel_; }
  std::int64_t stride() const { return stride_; }

 private:
  std::int64_t kernel_, stride_;
};

/// Global average pool + flatten: [N,C,H,W] -> [N,C].
class GlobalAvgPool : public Module {
 public:
  ag::Variable forward(const ag::Variable& input) override;
};

/// [N,C,H,W] -> [N, C*H*W].
class Flatten : public Module {
 public:
  ag::Variable forward(const ag::Variable& input) override;
};

/// Fully connected layer with optional quantization-aware training.
class Linear : public Module {
 public:
  Linear(std::int64_t in_features, std::int64_t out_features, quant::QuantSpec qspec, Rng& rng);
  ag::Variable forward(const ag::Variable& input) override;

  const quant::QuantSpec& qspec() const { return qspec_; }
  ag::Variable weight() { return weight_; }
  ag::Variable bias() { return bias_; }
  quant::RangeObserver& input_observer() { return in_obs_; }

 private:
  quant::QuantSpec qspec_;
  ag::Variable weight_;
  ag::Variable bias_;
  quant::RangeObserver in_obs_{quant::RangeObserver::Mode::kEma};
  quant::RangeObserver w_obs_{quant::RangeObserver::Mode::kMinMax};
};

/// Kaiming-normal initialization for conv/fc weights (He et al. 2015),
/// gain for ReLU networks.
Tensor kaiming_normal(const Shape& shape, std::int64_t fan_in, Rng& rng);

}  // namespace wa::nn
